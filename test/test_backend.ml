(** Backend registry and cross-ISA conformance tests: registry lookup
    errors name the registered set, all backends agree on canonical
    exit values, the zk-native backend has no spill path by
    construction, and both cost configs fail loudly on unpriced
    precompiles. *)

open Zkopt_ir
open Zkopt_core
module B = Builder
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry

let () = Zkopt_valida.Vbackend.ensure ()

(* ---- registry ------------------------------------------------------- *)

let test_registry_contents () =
  let names = Registry.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "risc0"; "sp1"; "valida" ];
  (* rv32 family shares one codegen schema; valida has its own *)
  let schema n = (Registry.find n).Backend.schema in
  Alcotest.(check string) "rv32 family shares a schema" (schema "risc0")
    (schema "sp1");
  Alcotest.(check bool) "valida schema is distinct" true
    (not (String.equal (schema "valida") (schema "risc0")));
  Alcotest.(check bool) "valida is zk-native" true
    (Registry.find "valida").Backend.zk_native;
  Alcotest.(check bool) "risc0 is not zk-native" false
    (Registry.find "risc0").Backend.zk_native

let test_registry_unknown_lists_options () =
  match Registry.find "no-such-vm" with
  | _ -> Alcotest.fail "lookup of unknown backend must raise"
  | exception Invalid_argument msg ->
    let contains sub =
      let n = String.length sub and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    List.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" n)
          true (contains n))
      [ "no-such-vm"; "risc0"; "sp1"; "valida" ]

(* ---- exit-value conformance ----------------------------------------- *)

let programs =
  [
    ( "collatz",
      fun () ->
        let m = Modul.create () in
        ignore
          (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
               let n = B.var b Ty.I32 (B.imm 27) in
               let steps = B.var b Ty.I32 (B.imm 0) in
               B.while_ b
                 (fun () -> B.icmp b Instr.Ne (Value.Reg n) (B.imm 1))
                 (fun () ->
                   let odd = B.and_ b (Value.Reg n) (B.imm 1) in
                   B.if_ b
                     (B.icmp b Instr.Ne odd (B.imm 0))
                     ~then_:(fun () ->
                       B.set b Ty.I32 n
                         (B.add b
                            (B.mul b (Value.Reg n) (B.imm 3))
                            (B.imm 1)))
                     ~else_:(fun () ->
                       B.set b Ty.I32 n (B.udiv b (Value.Reg n) (B.imm 2)))
                     ();
                   B.set b Ty.I32 steps (B.add b (Value.Reg steps) (B.imm 1)));
               B.ret b (Some (Value.Reg steps))));
        m );
    ( "i64-mix",
      fun () ->
        let m = Modul.create () in
        ignore
          (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
               let s = B.var b Ty.I64 (B.imm 0x9E3779B9) in
               B.for_ b ~from:(B.imm 0) ~bound:(B.imm 500) (fun i ->
                   let w = B.sext b i in
                   let p =
                     B.mul ~ty:Ty.I64 b (Value.Reg s) (B.imm 0x2545F4914F6CDD1D)
                   in
                   B.set b Ty.I64 s (B.xor ~ty:Ty.I64 b p w));
               B.ret b (Some (B.trunc b (Value.Reg s)))));
        m );
  ]

let test_exit_conformance () =
  List.iter
    (fun (name, build) ->
      List.iter
        (fun profile ->
          let m = Measure.prepare_ir ~build profile in
          let exits =
            List.map
              (fun (b : Backend.t) ->
                let c = b.Backend.compile m in
                let r = c.Backend.measure ~vm:b.Backend.name () in
                (match r.Backend.accounting with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "%s/%s accounting: %s" name b.Backend.name e);
                r.Backend.zk.Measure.exit_value)
              (Registry.all ())
          in
          match exits with
          | e0 :: rest ->
            List.iter
              (fun e ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s exits agree" name
                     (Profile.name profile))
                  true (Int64.equal e e0))
              rest
          | [] -> Alcotest.fail "no backends registered")
        [ Profile.Baseline; Profile.Level Zkopt_passes.Catalog.O3 ])
    programs

(* ---- the spill path vanishes on the zk-native ISA -------------------- *)

let test_valida_never_spills () =
  (* a register-pressure program that makes the RV32 allocator spill;
     the frame-machine backend reports no spills because the concept
     does not exist in its codegen *)
  let build () =
    let m = Modul.create () in
    ignore
      (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
           let vs =
             List.init 20 (fun k ->
                 let v = B.var b Ty.I64 (B.imm (k * 7 + 1)) in
                 v)
           in
           B.for_ b ~from:(B.imm 0) ~bound:(B.imm 50) (fun i ->
               let w = B.sext b i in
               List.iter
                 (fun v ->
                   B.set b Ty.I64 v
                     (B.add ~ty:Ty.I64 b (Value.Reg v)
                        (B.xor ~ty:Ty.I64 b w (Value.Reg v))))
                 vs);
           let sum =
             List.fold_left
               (fun acc v -> B.add ~ty:Ty.I64 b acc (Value.Reg v))
               (B.imm 0) vs
           in
           B.ret b (Some (B.trunc b sum))));
    m
  in
  let m = Measure.prepare_ir ~build Profile.Baseline in
  let spill_count name =
    let b = Registry.find name in
    let c = b.Backend.compile m in
    List.fold_left (fun a (_, n) -> a + n) 0 c.Backend.spills
  in
  Alcotest.(check bool) "rv32 spills under pressure" true
    (spill_count "risc0" > 0);
  Alcotest.(check int) "valida has no spill path" 0 (spill_count "valida")

(* ---- precompile pricing fails loudly -------------------------------- *)

let test_unpriced_precompile_raises () =
  (match
     Zkopt_zkvm.Config.precompile_cost Zkopt_zkvm.Config.risc0 "blake3"
   with
  | _ -> Alcotest.fail "rv32 config must raise on an unpriced precompile"
  | exception Invalid_argument _ -> ());
  match
    Zkopt_valida.Vconfig.precompile_cost Zkopt_valida.Vconfig.valida "blake3"
  with
  | _ -> Alcotest.fail "valida config must raise on an unpriced precompile"
  | exception Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "registry contents and schemas" `Quick
      test_registry_contents;
    Alcotest.test_case "unknown backend error lists options" `Quick
      test_registry_unknown_lists_options;
    Alcotest.test_case "exit values agree across backends" `Quick
      test_exit_conformance;
    Alcotest.test_case "no spill path on the zk-native ISA" `Quick
      test_valida_never_spills;
    Alcotest.test_case "unpriced precompile raises" `Quick
      test_unpriced_precompile_raises;
  ]
