(** Infrastructure tests: profiles, random-program determinism, reports,
    assembly listings, and the measurement pipeline's cross-checks. *)

open Zkopt_ir
open Zkopt_core

let test_profile_names () =
  Alcotest.(check int) "71 profiles" 71 (List.length Profile.all_71);
  Alcotest.(check string) "baseline" "baseline" (Profile.name Profile.Baseline);
  Alcotest.(check string) "-O3"
    "-O3" (Profile.name (Profile.Level Zkopt_passes.Catalog.O3));
  Alcotest.(check string) "zk" "-O3(zkvm)" (Profile.name Profile.Zkvm_o3);
  (* profile names are unique *)
  let names = List.map Profile.name Profile.all_71 in
  Alcotest.(check int) "unique" 71 (List.length (List.sort_uniq compare names))

let test_randprog_deterministic () =
  (* label numbering is process-global, so compare behaviour, not text *)
  let checksum seed =
    let m = Randprog.generate ~seed () in
    Zkopt_runtime.Runtime.link m;
    Interp.checksum m
  in
  Alcotest.(check int64) "same seed, same behaviour" (checksum 99) (checksum 99);
  Alcotest.(check bool) "different seed differs" false
    (Int64.equal (checksum 99) (checksum 100))

let test_measure_checksum_stable () =
  (* the measurement pipeline preserves a program's checksum across
     profiles — the invariant the sweep enforces *)
  let w = Zkopt_workloads.Workload.find "loop-sum" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let checksums =
    List.map
      (fun p ->
        let c = Measure.prepare ~build p in
        (Measure.run_zkvm Zkopt_zkvm.Config.risc0 c).Measure.exit_value)
      [ Profile.Baseline; Profile.Level Zkopt_passes.Catalog.O2;
        Profile.Single_pass "licm"; Profile.Zkvm_o3 ]
  in
  match checksums with
  | base :: rest ->
    List.iter (fun v -> Alcotest.(check int64) "stable" base v) rest
  | [] -> assert false

let test_asm_listing () =
  let w = Zkopt_workloads.Workload.find "fibonacci" in
  let m = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  Zkopt_runtime.Runtime.link m;
  let f = Modul.main m in
  let unit_, stats = Zkopt_riscv.Codegen.lower_func m f in
  let text = Zkopt_riscv.Asm.to_string unit_ in
  Alcotest.(check bool) "has remu" true (Astring_contains.contains text "remu");
  Alcotest.(check bool) "has ecall" true (Astring_contains.contains text "ecall");
  Alcotest.(check bool) "counted instrs" true (stats.Zkopt_riscv.Codegen.instrs > 10)

let test_report_table () =
  (* rendering smoke: alignment maths must not raise on ragged content *)
  Zkopt_report.Report.table
    ~headers:[ "a"; "bb"; "ccc" ]
    [ [ "x"; "1"; "2" ]; [ "longer-name"; "-3.5%"; "+100.0%" ] ];
  Alcotest.(check string) "pct" "+3.5%" (Zkopt_report.Report.pct 3.5);
  Alcotest.(check string) "neg pct" "-2.0%" (Zkopt_report.Report.pct (-2.0))

let test_autotune_deterministic () =
  let w = Zkopt_workloads.Workload.find "factorial" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let run () =
    (Zkopt_autotune.Autotune.run ~seed:7 ~iterations:10
       ~cycles:
         (Zkopt_autotune.Autotune.zkvm_cycles ~build Zkopt_zkvm.Config.sp1)
       ())
      .Zkopt_autotune.Autotune.best
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same fitness" a.Zkopt_autotune.Autotune.fitness
    b.Zkopt_autotune.Autotune.fitness;
  Alcotest.(check (list string)) "same genome" a.Zkopt_autotune.Autotune.genome
    b.Zkopt_autotune.Autotune.genome

let test_zkvm_deterministic () =
  let w = Zkopt_workloads.Workload.find "npb-is" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let c = Measure.prepare ~build Profile.Baseline in
  let a = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  let b = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  Alcotest.(check int) "cycles deterministic" a.Measure.cycles b.Measure.cycles;
  Alcotest.(check int) "paging deterministic" a.Measure.paging_cycles
    b.Measure.paging_cycles

let tests =
  [
    Alcotest.test_case "profile catalog" `Quick test_profile_names;
    Alcotest.test_case "randprog deterministic" `Quick test_randprog_deterministic;
    Alcotest.test_case "checksums stable across profiles" `Quick
      test_measure_checksum_stable;
    Alcotest.test_case "asm listing" `Quick test_asm_listing;
    Alcotest.test_case "report rendering" `Quick test_report_table;
    Alcotest.test_case "autotune deterministic" `Quick test_autotune_deterministic;
    Alcotest.test_case "zkvm accounting deterministic" `Quick
      test_zkvm_deterministic;
  ]
