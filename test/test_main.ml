let () =
  Alcotest.run "zkopt"
    [
      ("ir", Test_ir.tests);
      ("analysis", Test_analysis.tests);
      ("riscv", Test_riscv.tests);
      ("passes", Test_passes.tests);
      ("zkvm", Test_zkvm.tests);
      ("machine", Test_machine.tests);
      ("crypto", Test_crypto.tests);
      ("infra", Test_infra.tests);
      ("workloads", Test_workloads.tests);
      ("harness", Test_harness.tests);
      ("exec", Test_exec.tests);
      ("prof", Test_prof.tests);
      ("backend", Test_backend.tests);
      ("fuzz", Test_fuzz.tests);
      ("autotune", Test_autotune.tests);
      ("serve", Test_serve.tests);
      ("settle", Test_settle.tests);
    ]
