(** lib/fuzz: case codecs, the delta-debugging minimizer (classification
    preservation, fixpoint, well-formedness), campaign checkpoint
    kill/resume determinism, and the injected-miscompile end-to-end path
    (catch -> minimize -> persist -> replay). *)

open Zkopt_ir
module Case = Zkopt_fuzz.Case
module Minimize = Zkopt_fuzz.Minimize
module Corpus = Zkopt_fuzz.Corpus
module Campaign = Zkopt_fuzz.Campaign
module Faultplan = Zkopt_harness.Faultplan

let risc0 = Case.resolve_backend "risc0"

(* ---- codecs ---------------------------------------------------------- *)

let test_source_codec () =
  let roundtrip s =
    match Case.source_of_name (Case.source_name s) with
    | Some s' -> Alcotest.(check string) "round trip" (Case.source_name s) (Case.source_name s')
    | None -> Alcotest.fail ("unparseable: " ^ Case.source_name s)
  in
  roundtrip (Case.seed 42);
  roundtrip (Case.Workload "factorial");
  let knobs = { Randprog.default_knobs with Randprog.budget = 20; memory = false } in
  roundtrip (Case.seed ~knobs 7);
  Alcotest.(check string) "default knobs stay implicit" "seed:42"
    (Case.source_name (Case.seed 42));
  Alcotest.(check bool) "bad name rejected" true
    (Case.source_of_name "seed:abc" = None);
  (* non-default knobs change the generated program *)
  let a = Modul.instr_count (Case.build_source (Case.seed 3)) in
  let b =
    Modul.instr_count
      (Case.build_source
         (Case.seed ~knobs:{ knobs with Randprog.budget = 8 } 3))
  in
  Alcotest.(check bool) "knobs shrink generation" true (b < a)

let test_pipeline_spec () =
  let ok spec =
    match Case.pipeline_of_spec spec with
    | Ok p -> p.Case.spec
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "baseline" "baseline" (ok "baseline");
  Alcotest.(check string) "level" "O2" (ok "O2");
  Alcotest.(check string) "single pass" "licm" (ok "licm");
  Alcotest.(check string) "sequence" "inline;licm" (ok "inline;licm");
  Alcotest.(check string) "zk sequence" "zk:inline;licm" (ok "zk:inline;licm");
  (match Case.pipeline_of_spec "nosuchpass" with
  | Ok _ -> Alcotest.fail "unknown pass accepted"
  | Error _ -> ());
  match Case.pipeline_of_spec "licm;nosuchpass" with
  | Ok _ -> Alcotest.fail "unknown pass in sequence accepted"
  | Error _ -> ()

let test_row_codec () =
  let row = { Campaign.src = "seed:9"; spec = "zk:licm"; status = "risc0:miscompile"; detail = "checksum 0" } in
  (match Campaign.decode_row (Campaign.encode_row row) with
  | Some r -> Alcotest.(check bool) "round trip" true (r = row)
  | None -> Alcotest.fail "decode failed");
  (* a row truncated by a kill loses the "." terminal field *)
  let enc = Campaign.encode_row row in
  for cut = 1 to String.length enc - 1 do
    match Campaign.decode_row (String.sub enc 0 cut) with
    | Some r when r = row -> ()
    | Some r ->
      Alcotest.fail
        (Printf.sprintf "truncation at %d decoded as %s" cut (Campaign.encode_row r))
    | None -> ()
  done;
  Alcotest.(check bool) "header is not a row" true
    (Campaign.decode_row "zkopt-fuzzckpt-v1" = None)

let prop_step_codec =
  QCheck.Test.make ~name:"minimizer step codec round-trips" ~count:200
    QCheck.(quad (int_range 0 3) small_printable_string (int_range 0 40) (int_range 0 5))
    (fun (tag, name, index, operand) ->
      QCheck.assume (not (String.contains name ' '));
      QCheck.assume (String.length name > 0);
      let func = "f" ^ name and block = "b" ^ name in
      let step =
        match tag with
        | 0 -> Minimize.Drop_instr { func; block; index }
        | 1 -> Minimize.Drop_block { func; block }
        | 2 -> Minimize.Cbr_to_br { func; block; taken = index mod 2 = 0 }
        | _ -> Minimize.Imm_operand { func; block; index; operand }
      in
      Minimize.step_of_string (Minimize.step_to_string step) = Some step)

(* ---- minimizer properties -------------------------------------------- *)

(* A case that always diverges: Corrupt_exit_value xors the backend's
   exit value unconditionally, so the differential oracle fires on every
   program — ideal for exercising the shrinker on arbitrary seeds. *)
let corrupt_case seed =
  let case =
    { Case.source = Case.seed seed; pipeline = Case.baseline; backends = [ risc0 ] }
  in
  let fp =
    Faultplan.inject
      [
        ( { Faultplan.program = Case.source_name case.Case.source;
            profile = "baseline"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
      ]
  in
  (case, fp)

let prop_minimizer =
  QCheck.Test.make
    ~name:"shrunk case keeps its classification, reaches a fixpoint, verifies"
    ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let case, fp = corrupt_case seed in
      let base = Case.build_source case.Case.source in
      let key =
        match Case.run ~faultplan:fp ~fuel:2_000_000 case ~base with
        | Case.Diverged d -> Case.divergence_key d
        | Case.Agree -> QCheck.Test.fail_report "corrupt fault did not fire"
      in
      let repro m =
        match Case.run ~faultplan:fp ~fuel:2_000_000 case ~base:m with
        | Case.Diverged d -> String.equal (Case.divergence_key d) key
        | Case.Agree -> false
      in
      let m, steps = Minimize.minimize ~repro base in
      (* 1: the minimized program still reproduces the same key *)
      if not (repro m) then QCheck.Test.fail_report "classification lost";
      (* 2: fixpoint — a second minimize pass accepts nothing *)
      let m2, steps2 = Minimize.minimize ~repro m in
      if steps2 <> [] then QCheck.Test.fail_report "not a fixpoint";
      if Minimize.size m2 <> Minimize.size m then
        QCheck.Test.fail_report "fixpoint changed size";
      (* 3: the minimized module is Verify-well-formed *)
      let linked = Clone.modul m in
      Zkopt_runtime.Runtime.link linked;
      Verify.check linked;
      (* 4: the recorded trace rebuilds the minimized program *)
      let replayed = Case.build_source case.Case.source in
      if not (Minimize.apply_all replayed steps) then
        QCheck.Test.fail_report "trace does not re-apply";
      if Minimize.size replayed <> Minimize.size m then
        QCheck.Test.fail_report "trace replay differs from minimized module";
      true)

(* ---- campaign kill/resume -------------------------------------------- *)

let campaign_cfg ~checkpoint =
  {
    (Campaign.default ~backends:[ risc0 ]) with
    Campaign.sources = List.init 6 (fun i -> Case.seed (i + 1));
    pipelines =
      [
        Case.baseline;
        (match Case.pipeline_of_spec "O1" with Ok p -> p | Error e -> failwith e);
      ];
    jobs = 3;
    checkpoint = Some checkpoint;
    resume = true;
  }

let sorted_rows path =
  List.sort compare (List.map Campaign.encode_row (Campaign.load_rows path))

let test_kill_resume_determinism () =
  let path_a = Filename.temp_file "zkopt_fuzzckpt" ".a" in
  let path_b = Filename.temp_file "zkopt_fuzzckpt" ".b" in
  Sys.remove path_a;
  Sys.remove path_b;
  (* uninterrupted 3-domain run *)
  let full = Campaign.run (campaign_cfg ~checkpoint:path_a) in
  Alcotest.(check int) "12 cases" 12 full.Campaign.planned;
  Alcotest.(check int) "all ran" 12 full.Campaign.ran;
  (* killed mid-run: only the first 5 cases execute *)
  let partial =
    Campaign.run { (campaign_cfg ~checkpoint:path_b) with Campaign.limit = Some 5 }
  in
  Alcotest.(check int) "partial ran" 5 partial.Campaign.ran;
  (* simulate the kill shearing a row mid-write *)
  let oc = open_out_gen [ Open_append ] 0o644 path_b in
  output_string oc "seed:6\tO1\tagre";
  close_out oc;
  (* resume: the 5 done cases are skipped, the rest complete *)
  let resumed = Campaign.run (campaign_cfg ~checkpoint:path_b) in
  Alcotest.(check int) "resumed" 5 resumed.Campaign.resumed;
  Alcotest.(check int) "newly ran" 7 resumed.Campaign.ran;
  (* modulo arrival order, the checkpoint is byte-identical *)
  Alcotest.(check (list string)) "byte-identical sorted rows"
    (sorted_rows path_a) (sorted_rows path_b);
  Sys.remove path_a;
  Sys.remove path_b

let test_failure_budget () =
  (* every case diverges (corrupt fault at every site); budget 1 stops
     the campaign after the first finding *)
  let sources = List.init 4 (fun i -> Case.seed (i + 1)) in
  let fp =
    Faultplan.inject
      (List.map
         (fun s ->
           ( { Faultplan.program = Case.source_name s;
               profile = "baseline"; vm = "risc0" },
             Faultplan.Corrupt_exit_value ))
         sources)
  in
  let s =
    Campaign.run
      {
        (Campaign.default ~backends:[ risc0 ]) with
        Campaign.sources;
        faultplan = fp;
        failure_budget = Some 1;
        jobs = 1;
      }
  in
  Alcotest.(check bool) "budget hit" true s.Campaign.budget_hit;
  Alcotest.(check int) "one finding" 1 (List.length s.Campaign.findings);
  Alcotest.(check bool) "stopped early" true (s.Campaign.ran < s.Campaign.planned)

(* ---- injected miscompile: catch -> minimize -> persist -> replay ----- *)

let test_fault_end_to_end () =
  let dir = Filename.temp_file "zkopt_corpus" "" in
  Sys.remove dir;
  let fp =
    Faultplan.inject
      [
        ( { Faultplan.program = "seed:5"; profile = "O1"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
      ]
  in
  let s =
    Campaign.run
      {
        (Campaign.default ~backends:[ risc0 ]) with
        Campaign.sources = List.init 6 (fun i -> Case.seed (i + 1));
        pipelines =
          [
            Case.baseline;
            (match Case.pipeline_of_spec "O1" with Ok p -> p | Error e -> failwith e);
          ];
        faultplan = fp;
        minimize = true;
        corpus = Some dir;
        jobs = 2;
      }
  in
  (* exactly the faulted cell is caught *)
  (match s.Campaign.findings with
  | [ f ] ->
    Alcotest.(check string) "source" "seed:5"
      (Case.source_name f.Campaign.case.Case.source);
    Alcotest.(check string) "pipeline" "O1" f.Campaign.case.Case.pipeline.Case.spec;
    Alcotest.(check string) "classification" "risc0:miscompile"
      (Case.divergence_key f.Campaign.divergence);
    (* minimized strictly smaller than the generated program *)
    let orig = Modul.instr_count (Case.build_source f.Campaign.case.Case.source) in
    (match f.Campaign.minimized_instrs with
    | Some n -> Alcotest.(check bool) "strictly smaller" true (n < orig)
    | None -> Alcotest.fail "not minimized");
    (* persisted and replayable *)
    (match f.Campaign.corpus_path with
    | None -> Alcotest.fail "no corpus entry"
    | Some path -> (
      match Corpus.load_file path with
      | Error e -> Alcotest.fail e
      | Ok entry ->
        Alcotest.(check bool) "reduction trace recorded" true
          (entry.Corpus.steps <> []);
        Alcotest.(check string) "fault recorded" "corrupt-exit-value"
          (match entry.Corpus.fault with
          | Some (_, k) -> Faultplan.kind_name k
          | None -> "none");
        (match Corpus.replay entry with
        | Corpus.Reproduced -> ()
        | r -> Alcotest.fail ("replay: " ^ Corpus.replay_name r));
        (* corpus round trip is stable *)
        (match Corpus.of_string (Corpus.to_string entry ~program:None) with
        | Ok e' -> Alcotest.(check string) "codec stable" (Corpus.id entry) (Corpus.id e')
        | Error e -> Alcotest.fail e)))
  | fs -> Alcotest.fail (Printf.sprintf "%d findings, expected 1" (List.length fs)));
  (* clean divergence-free campaign over the same plan without the fault *)
  let clean =
    Campaign.run
      {
        (Campaign.default ~backends:[ risc0 ]) with
        Campaign.sources = List.init 6 (fun i -> Case.seed (i + 1));
        jobs = 2;
      }
  in
  Alcotest.(check int) "no findings without the fault" 0
    (List.length clean.Campaign.findings);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let property_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_step_codec; prop_minimizer ]

let tests =
  [
    Alcotest.test_case "source codec" `Quick test_source_codec;
    Alcotest.test_case "pipeline specs" `Quick test_pipeline_spec;
    Alcotest.test_case "checkpoint row codec" `Quick test_row_codec;
    Alcotest.test_case "kill/resume determinism" `Quick test_kill_resume_determinism;
    Alcotest.test_case "failure budget" `Quick test_failure_budget;
    Alcotest.test_case "injected miscompile end-to-end" `Quick test_fault_end_to_end;
  ]
  @ property_tests
