(** lib/prof: provenance maps, attribution conservation, diffing.

    The load-bearing properties: every cycle the executor accounts is
    attributed to exactly one provenance site (per dimension), and the
    source map survives the whole backend including regalloc's spill
    insertion. *)

open Zkopt_ir
open Zkopt_core
module B = Builder
module P = Zkopt_prof.Profile
module Site = Zkopt_prof.Site

let small_risc0 =
  (* a tiny segment limit so random programs close several segments and
     the per-segment attribution paths all run *)
  { Zkopt_zkvm.Config.risc0 with Zkopt_zkvm.Config.segment_limit = 1 lsl 12 }

(* ---- conservation properties -------------------------------------- *)

let prop_zk_conservation =
  QCheck.Test.make ~name:"attributed cycles reconcile with the executor"
    ~count:8
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let build () = Randprog.generate ~seed () in
      let profile =
        if seed mod 2 = 0 then Profile.Baseline else Profile.Single_pass "licm"
      in
      let c = Measure.prepare ~build profile in
      let m, p =
        Zkopt_prof.Driver.profile_zkvm ~label:"t" small_risc0 c
      in
      let e = m.Zkopt_zkvm.Vm.exec in
      let cfg = small_risc0 in
      let exec_sum = int_of_float (P.total p P.Exec) in
      let pin_sum = int_of_float (P.total p P.Paging_in) in
      let pout_sum = int_of_float (P.total p P.Paging_out) in
      let residue_sum = int_of_float (P.total p P.Segment) in
      let folded_sum =
        List.fold_left (fun a (_, v) -> a + v) 0 (P.folded_lines p)
      in
      let prove = Zkopt_zkvm.Prover.prove cfg e in
      exec_sum = e.Zkopt_zkvm.Executor.user_cycles
      && folded_sum = exec_sum
      && pin_sum
         = e.Zkopt_zkvm.Executor.page_ins * cfg.Zkopt_zkvm.Config.page_in_cost
      && pout_sum
         = e.Zkopt_zkvm.Executor.page_outs * cfg.Zkopt_zkvm.Config.page_out_cost
      && pin_sum + pout_sum = e.Zkopt_zkvm.Executor.paging_cycles
      && residue_sum
         = prove.Zkopt_zkvm.Prover.padded_cycles_total
           - e.Zkopt_zkvm.Executor.total_cycles)

let prop_cpu_conservation =
  QCheck.Test.make ~name:"attributed CPU cycles sum to the model's total"
    ~count:8
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let build () = Randprog.generate ~seed () in
      let c = Measure.prepare ~build Profile.Baseline in
      let m, p = Zkopt_prof.Driver.profile_cpu ~label:"t" c in
      let total = m.Measure.cpu_cycles in
      let attributed = P.total p P.Cpu in
      Float.abs (attributed -. total) <= 1e-6 *. Float.max 1.0 total)

(* ---- provenance units ---------------------------------------------- *)

(* 20 simultaneously-live products overflow the 13-register pool, so
   regalloc must insert spill code *)
let pressure_module () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let vals =
           List.init 20 (fun k ->
               B.mul b (B.imm (k + 1)) (B.imm ((k * 37) + 3)))
         in
         let sum = List.fold_left (fun acc v -> B.add b acc v) (B.imm 0) vals in
         B.ret b (Some sum)));
  m

let test_srcmap_covers_code () =
  let cg = Zkopt_riscv.Codegen.compile (pressure_module ()) in
  let prog = cg.Zkopt_riscv.Codegen.program in
  Alcotest.(check int)
    "one srcmap entry per code word"
    (Array.length prog.Zkopt_riscv.Asm.code)
    (Array.length prog.Zkopt_riscv.Asm.srcmap)

let test_spill_provenance () =
  let cg = Zkopt_riscv.Codegen.compile (pressure_module ()) in
  let spills =
    List.fold_left
      (fun a (s : Zkopt_riscv.Codegen.func_stats) ->
        a + s.Zkopt_riscv.Codegen.spill_loads
        + s.Zkopt_riscv.Codegen.spill_stores)
      0 cg.Zkopt_riscv.Codegen.stats
  in
  Alcotest.(check bool) "register pressure forced spills" true (spills > 0);
  let prog = cg.Zkopt_riscv.Codegen.program in
  (* every word — including the inserted spill loads/stores — still maps
     to the one function, and the hot block's marker survived *)
  Array.iter
    (fun (f, _) -> Alcotest.(check string) "spill code keeps its function" "main" f)
    prog.Zkopt_riscv.Asm.srcmap;
  let has_entry =
    Array.exists (fun (_, b) -> String.equal b "entry") prog.Zkopt_riscv.Asm.srcmap
  in
  Alcotest.(check bool) "entry block marker survived regalloc" true has_entry

let test_site_of_pc_bounds () =
  let cg = Zkopt_riscv.Codegen.compile (pressure_module ()) in
  let prog = cg.Zkopt_riscv.Codegen.program in
  let base = prog.Zkopt_riscv.Asm.base in
  Alcotest.(check bool)
    "in-range pc resolves" true
    (Option.is_some (Zkopt_riscv.Asm.site_of_pc prog base));
  Alcotest.(check bool)
    "out-of-range pc is None" true
    (Option.is_none (Zkopt_riscv.Asm.site_of_pc prog (Int32.sub base 4l)))

(* ---- diff + persistence units -------------------------------------- *)

let mk_profile label sites =
  let p = P.create ~vm:"risc0" ~label in
  List.iter
    (fun (f, b, exec) ->
      let c = P.counters p (Site.make f b) in
      c.P.exec <- exec)
    sites;
  p

let test_diff_ranking () =
  let base = mk_profile "base" [ ("m", "a", 100); ("m", "b", 10) ] in
  let cand = mk_profile "cand" [ ("m", "a", 50); ("m", "b", 200); ("m", "c", 5) ] in
  let entries = Zkopt_prof.Diff.by_dim P.Exec ~base ~cand in
  let deltas =
    List.map
      (fun (e : Zkopt_prof.Diff.entry) ->
        (Site.to_string e.Zkopt_prof.Diff.site, int_of_float e.Zkopt_prof.Diff.delta))
      entries
  in
  Alcotest.(check (list (pair string int)))
    "largest |delta| first"
    [ ("m:b", 190); ("m:a", -50); ("m:c", 5) ]
    deltas

let test_save_load_roundtrip () =
  let p = P.create ~vm:"sp1" ~label:"O2" in
  let c = P.counters p (Site.make "f" "loop.1") in
  c.P.exec <- 42;
  c.P.paging_in <- 110;
  c.P.paging_out <- 40;
  c.P.segment <- 7;
  c.P.cpu <- 12.5;
  c.P.retired <- 42;
  c.P.mem_ops <- 3;
  let c2 = P.counters p (Site.make "g" "") in
  c2.P.exec <- 1;
  P.fold_add p "f;g:entry" 9;
  let path = Filename.temp_file "zkprof" ".prof" in
  P.save p path;
  let q = P.load path in
  Sys.remove path;
  Alcotest.(check string) "vm" "sp1" q.P.vm;
  Alcotest.(check string) "label" "O2" q.P.label;
  let qc = P.counters q (Site.make "f" "loop.1") in
  Alcotest.(check int) "exec" 42 qc.P.exec;
  Alcotest.(check int) "paging_in" 110 qc.P.paging_in;
  Alcotest.(check int) "paging_out" 40 qc.P.paging_out;
  Alcotest.(check int) "segment" 7 qc.P.segment;
  Alcotest.(check int) "retired" 42 qc.P.retired;
  Alcotest.(check int) "mem_ops" 3 qc.P.mem_ops;
  Alcotest.(check (float 0.001)) "cpu" 12.5 qc.P.cpu;
  Alcotest.(check int) "second site" 1 (P.counters q (Site.make "g" "")).P.exec;
  Alcotest.(check (list (pair string int)))
    "folded" [ ("f;g:entry", 9) ] (P.folded_lines q)

let test_profiled_run_matches_unprofiled () =
  (* installing the sink must not change the measurement *)
  let w = Zkopt_workloads.Workload.find "loop-sum" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let c = Measure.prepare ~build Profile.Baseline in
  let plain = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  let m, _ =
    Zkopt_prof.Driver.profile_zkvm ~label:"t" Zkopt_zkvm.Config.risc0 c
  in
  Alcotest.(check int) "cycles" plain.Measure.cycles m.Zkopt_zkvm.Vm.cycles;
  Alcotest.(check int) "paging" plain.Measure.paging_cycles
    m.Zkopt_zkvm.Vm.paging_cycles;
  Alcotest.(check int) "segments" plain.Measure.segments
    m.Zkopt_zkvm.Vm.segments

let tests =
  [
    Alcotest.test_case "srcmap covers every code word" `Quick
      test_srcmap_covers_code;
    Alcotest.test_case "provenance survives spill insertion" `Quick
      test_spill_provenance;
    Alcotest.test_case "site_of_pc bounds" `Quick test_site_of_pc_bounds;
    Alcotest.test_case "diff ranks by |delta|" `Quick test_diff_ranking;
    Alcotest.test_case "profile save/load roundtrip" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "profiling is observation-only" `Quick
      test_profiled_run_matches_unprofiled;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_zk_conservation; prop_cpu_conservation ]
