(** Differential equivalence of the decoded-stream machine against the
    reference executor.

    {!Zkopt_zkvm.Machine} (reached through [Executor.run]) re-implements
    the zkVM semantics for raw speed: flat pre-decoded instruction
    stream, untagged native-int registers, epoch-stamped page bitmaps.
    Its contract is that every accounted quantity is bit-for-bit the
    reference executor's ([Executor.run_reference], the historical
    hook-driven implementation kept as the semantics oracle).  These
    properties push random {!Randprog} programs through both paths —
    on both cost configs and under every injected fault — and demand
    identical results, identical trap identity under starvation, and
    that installing a sink perturbs nothing while its event streams
    satisfy the documented accounting identities. *)

open Zkopt_ir
open Zkopt_core
module Config = Zkopt_zkvm.Config
module Executor = Zkopt_zkvm.Executor
module Machine = Zkopt_zkvm.Machine

let all_faults =
  [
    (Executor.No_fault, "none");
    (Executor.Silent_halt_on_boundary_jalr, "silent-halt");
    (Executor.Dropped_page_out, "dropped-page-out");
    (Executor.Truncated_final_segment, "truncated-final");
    (Executor.Corrupt_exit_value, "corrupt-exit");
  ]

let compile seed =
  let build () = Randprog.generate ~seed () in
  Measure.prepare ~build Profile.Baseline

(* Both executors share exception types; capture them so starvation and
   trap behavior compare alongside normal completion. *)
type outcome = Done of Executor.result | Raised of string

let outcome ?fault ?fuel run cfg (c : Measure.compiled) =
  match run ?fault ?fuel ?sink:None cfg c.Measure.codegen c.Measure.modul with
  | (r : Executor.result) -> Done r
  | exception Zkopt_riscv.Emulator.Trap m -> Raised ("trap: " ^ m)
  | exception Zkopt_riscv.Emulator.Out_of_fuel n ->
    Raised (Printf.sprintf "out-of-fuel %d" n)

let show_result (r : Executor.result) =
  Printf.sprintf
    "exit=%ld total=%d user=%d paging=%d in=%d out=%d retired=%d ld=%d \
     st=%d br=%d pre=%d faulted=%b segs=[%s]"
    r.Executor.exit_value r.Executor.total_cycles r.Executor.user_cycles
    r.Executor.paging_cycles r.Executor.page_ins r.Executor.page_outs
    r.Executor.retired r.Executor.loads r.Executor.stores r.Executor.branches
    r.Executor.precompile_calls r.Executor.faulted
    (String.concat ";"
       (List.map
          (fun (s : Executor.segment) ->
            Printf.sprintf "%d+%d" s.Executor.user_cycles
              s.Executor.paging_cycles)
          r.Executor.segments))

let show_outcome = function
  | Done r -> show_result r
  | Raised m -> "raised " ^ m

(* The result record is immutable ints / int32 / bool / a list of int
   records, so structural equality is exactly field-for-field equality
   (the per-segment trace included). *)
let same a b =
  match (a, b) with
  | Done x, Done y -> x = y
  | Raised x, Raised y -> String.equal x y
  | _ -> false

let prop_matches_reference =
  QCheck.Test.make
    ~name:"machine = reference on both configs under every fault" ~count:8
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let c = compile seed in
      List.for_all
        (fun cfg ->
          List.for_all
            (fun (fault, fname) ->
              let want = outcome ~fault Executor.run_reference cfg c in
              let got = outcome ~fault Executor.run cfg c in
              same want got
              || QCheck.Test.fail_reportf
                   "seed %d / %s / fault %s:\n  reference: %s\n  machine:   %s"
                   seed cfg.Config.name fname (show_outcome want)
                   (show_outcome got))
            all_faults)
        [ Config.risc0; Config.sp1 ])

let prop_fuel_starvation_matches =
  QCheck.Test.make ~name:"fuel starvation raises identically" ~count:6
    QCheck.(pair (int_range 1 100_000) (int_range 1 500))
    (fun (seed, fuel) ->
      let c = compile seed in
      let want = outcome ~fuel Executor.run_reference Config.risc0 c in
      let got = outcome ~fuel Executor.run Config.risc0 c in
      same want got
      || QCheck.Test.fail_reportf "seed %d fuel %d:\n  reference: %s\n  machine: %s"
           seed fuel (show_outcome want) (show_outcome got))

(* A sink that folds every channel into the accounting identities the
   interface documents. *)
type tally = {
  mutable retires : int;
  mutable retire_cost : int;
  mutable precompile_cost : int;
  mutable precompiles : int;
  mutable page_in_cost : int;
  mutable page_out_cost : int;
  mutable segs : (int * int) list;  (* reversed (user, paging) *)
}

let tally_sink () =
  let t =
    {
      retires = 0;
      retire_cost = 0;
      precompile_cost = 0;
      precompiles = 0;
      page_in_cost = 0;
      page_out_cost = 0;
      segs = [];
    }
  in
  let sink =
    Machine.sink
      ~on_retires:
        (Machine.iter_retires (fun ~pc:_ _ins ~cost ->
             t.retires <- t.retires + 1;
             t.retire_cost <- t.retire_cost + cost))
      ~on_precompile:(fun ~pc:_ ~name:_ ~cost ->
        t.precompiles <- t.precompiles + 1;
        t.precompile_cost <- t.precompile_cost + cost)
      ~on_page_in:(fun ~pc:_ ~cost -> t.page_in_cost <- t.page_in_cost + cost)
      ~on_page_out:(fun ~pc:_ ~cost ->
        t.page_out_cost <- t.page_out_cost + cost)
      ~on_segment:(fun ~pc:_ ~user ~paging ->
        t.segs <- (user, paging) :: t.segs)
      ()
  in
  (t, sink)

let prop_sink_transparent_and_conserving =
  QCheck.Test.make
    ~name:"sink observes without perturbing; event sums close" ~count:8
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let c = compile seed in
      List.for_all
        (fun cfg ->
          let plain =
            Executor.run cfg c.Measure.codegen c.Measure.modul
          in
          let t, sink = tally_sink () in
          let observed =
            Executor.run ~sink cfg c.Measure.codegen c.Measure.modul
          in
          let segs_seen = List.rev t.segs in
          let segs_real =
            List.map
              (fun (s : Executor.segment) ->
                (s.Executor.user_cycles, s.Executor.paging_cycles))
              observed.Executor.segments
          in
          (plain = observed
          && t.retires = observed.Executor.retired
          && t.precompiles = observed.Executor.precompile_calls
          && t.retire_cost + t.precompile_cost = observed.Executor.user_cycles
          && t.page_in_cost + t.page_out_cost
             = observed.Executor.paging_cycles
          && segs_seen = segs_real)
          || QCheck.Test.fail_reportf
               "seed %d / %s: sink broke an identity\n\
               \  plain:    %s\n\
               \  observed: %s\n\
               \  tally: retires=%d retire+pre=%d+%d pagein+out=%d+%d segs=%d"
               seed cfg.Config.name (show_result plain) (show_result observed)
               t.retires t.retire_cost t.precompile_cost t.page_in_cost
               t.page_out_cost (List.length segs_seen))
        [ Config.risc0; Config.sp1 ])

let prop_decode_once_run_many =
  QCheck.Test.make ~name:"one decode, repeated runs are deterministic"
    ~count:6
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let c = compile seed in
      let code =
        Machine.decode Config.sp1 c.Measure.codegen c.Measure.modul
      in
      let a = Machine.run code in
      let b = Machine.run code in
      let d1 = Machine.run ~fault:Executor.Dropped_page_out code in
      let d2 = Machine.run ~fault:Executor.Dropped_page_out code in
      (* a faulted run must never bill MORE paging than a healthy one *)
      a = b
      && d1 = d2
      && d1.Executor.paging_cycles <= a.Executor.paging_cycles
      || QCheck.Test.fail_reportf "seed %d: repeated runs diverged" seed)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matches_reference;
      prop_fuel_starvation_matches;
      prop_sink_transparent_and_conserving;
      prop_decode_once_run_many;
    ]
