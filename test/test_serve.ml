(** Sweep-service tests: priority-queue ordering properties, wire
    protocol codec roundtrips (including the JSON parser the protocol
    rides on), and in-process daemon integration — two concurrent
    clients streaming disjoint jobs, warm-cache reuse across clients,
    disconnect-cancellation, and stop-mid-job restart with
    byte-identical resumed rows (plus a sheared checkpoint tail, the
    torn-write shape a real kill leaves). *)

module Job = Zkopt_serve.Job
module Jobq = Zkopt_serve.Jobq
module Proto = Zkopt_serve.Proto
module Daemon = Zkopt_serve.Daemon
module Client = Zkopt_serve.Client
module Json = Zkopt_report.Json

(* ---- priority queue -------------------------------------------------- *)

let qcheck_jobq_order =
  (* popping everything yields exactly the (priority, push-order) stable
     sort of what was pushed *)
  QCheck.Test.make ~name:"jobq pops in (priority, FIFO) order" ~count:200
    QCheck.(list (int_range 0 5))
    (fun prios ->
      let q = Jobq.create () in
      List.iteri (fun i p -> Jobq.push q ~priority:p (i, p)) prios;
      let rec drain acc =
        match Jobq.try_pop q with
        | Some v -> drain (v :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i p -> (i, p)) prios
        |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
      in
      popped = expected)

let test_jobq_blocking_and_close () =
  let q = Jobq.create () in
  let got = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec loop () =
          match Jobq.pop q with
          | Some v ->
            got := v :: !got;
            loop ()
          | None -> ()
        in
        loop ())
      ()
  in
  Jobq.push q ~priority:2 "b";
  Jobq.push q ~priority:1 "a";
  Thread.delay 0.05;
  Jobq.close q;
  Thread.join consumer;
  (* both consumed, and close woke the blocked pop with None *)
  Alcotest.(check (slist string compare))
    "all entries consumed" [ "a"; "b" ] !got;
  Alcotest.(check bool) "closed pop returns None" true (Jobq.pop q = None);
  Alcotest.check_raises "push after close rejected"
    (Invalid_argument "Jobq.push: queue is closed") (fun () ->
      Jobq.push q ~priority:0 "c")

let test_jobq_remove () =
  let q = Jobq.create () in
  List.iter (fun i -> Jobq.push q ~priority:(i mod 3) i) [ 1; 2; 3; 4; 5; 6 ];
  let removed = Jobq.remove q (fun i -> i mod 2 = 0) in
  Alcotest.(check (slist int compare)) "evens removed" [ 2; 4; 6 ] removed;
  Alcotest.(check (list int)) "odds keep pop order" [ 3; 1; 5 ]
    (Jobq.snapshot q)

(* ---- codecs ----------------------------------------------------------- *)

let spec_gen : Job.spec QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "factorial"; "sha256"; "npb-lu"; "loop-sum" ] in
  let names = opt (list_size (int_range 1 3) name) in
  let profile = oneofl [ "baseline"; "-O2"; "licm"; "-O3(zkvm)" ] in
  let vm = oneofl [ "risc0"; "sp1"; "valida" ] in
  oneof
    [
      (let* programs = names in
       let* profiles = opt (list_size (int_range 1 3) profile) in
       let* quick = bool in
       let* backends = opt (list_size (int_range 1 2) vm) in
       let* limit = opt (int_range 1 100) in
       return (Job.Sweep { programs; profiles; quick; backends; limit }));
      (let* program = name in
       let* profile in
       let* vm in
       let* quick = bool in
       return (Job.Profile_cell { program; profile; vm; quick }));
      (let* program = name in
       let* iters = int_range 1 200 in
       let* vm in
       let* quick = bool in
       let* seed = int_range 1 1000 in
       let* population = int_range 1 32 in
       return (Job.Autotune { program; iters; vm; quick; seed; population }));
      (let* seed_lo = int_range 1 50 in
       let* span = int_range 0 50 in
       let* pipelines = list_size (int_range 1 3) profile in
       let* backends = opt (list_size (int_range 1 2) vm) in
       let* limit = opt (int_range 1 100) in
       return
         (Job.Fuzz
            { seed_lo; seed_hi = seed_lo + span; pipelines; backends; limit }));
    ]

let qcheck_spec_roundtrip =
  QCheck.Test.make ~name:"job spec JSON codec roundtrips" ~count:300
    (QCheck.make spec_gen)
    (fun spec -> Job.spec_of_json (Job.spec_to_json spec) = Ok spec)

let request_gen : Proto.request QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      (let* spec = spec_gen in
       let* priority = int_range 0 100 in
       let* budget = opt (int_range 0 64) in
       let* watch = bool in
       return (Proto.Submit { spec; priority; budget; watch }));
      map (fun n -> Proto.Cancel (Printf.sprintf "job-%d" n)) (int_range 1 99);
      return Proto.Status;
      map (fun n -> Proto.Watch (Printf.sprintf "job-%d" n)) (int_range 1 99);
      return Proto.Shutdown;
    ]

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"wire requests roundtrip" ~count:300
    (QCheck.make request_gen)
    (fun r -> Proto.decode_request (Proto.encode_request r) = Ok r)

let event_gen : Proto.event QCheck.Gen.t =
  let open QCheck.Gen in
  let id = map (Printf.sprintf "job-%d") (int_range 1 99) in
  let text =
    string_size ~gen:(oneofl [ 'a'; 'Z'; '0'; ' '; '"'; '\\'; '\t'; '\n' ])
      (int_range 0 24)
  in
  oneof
    [
      map (fun id -> Proto.Ack { id }) id;
      map (fun msg -> Proto.Err { msg }) text;
      (let* id in
       let* data = text in
       return (Proto.Row { id; data }));
      (let* id in
       let* n = int_range 0 5 in
       return
         (Proto.Done { id; summary = Json.Obj [ ("rows", Json.Int n) ] }));
      map (fun n -> Proto.Status_report (Json.Obj [ ("queued", Json.Int n) ]))
        (int_range 0 9);
    ]

let qcheck_event_roundtrip =
  QCheck.Test.make ~name:"wire events roundtrip" ~count:300
    (QCheck.make event_gen)
    (fun e -> Proto.decode_event (Proto.encode_event e) = Ok e)

let json_gen : Json.t QCheck.Gen.t =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map
          (fun (a, b) -> Json.Float (float_of_int a /. float_of_int b))
          (pair (int_range (-10000) 10000) (int_range 1 1000));
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map (fun xs -> Json.Arr xs)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    2

let qcheck_json_print_parse_fixpoint =
  (* one print normalizes; after that, parse∘print is the identity on
     the printed form — the property the NDJSON protocol relies on *)
  QCheck.Test.make ~name:"Json to_string/of_string fixpoint" ~count:300
    (QCheck.make json_gen)
    (fun j ->
      let s = Json.to_string j in
      match Json.of_string s with
      | Error e -> QCheck.Test.fail_reportf "printed JSON unparseable: %s" e
      | Ok j' -> String.equal (Json.to_string j') s)

let test_decoders_never_raise () =
  List.iter
    (fun line ->
      (match Proto.decode_request line with Ok _ | Error _ -> ());
      match Proto.decode_event line with Ok _ | Error _ -> ())
    [
      "";
      "}";
      "{";
      "{\"op\":\"submit\"}";
      "{\"op\":\"submit\",\"job\":{\"kind\":\"nope\"}}";
      "{\"ev\":\"row\"}";
      "{\"ev\":42}";
      "garbage { not json";
      "{\"op\":\"cancel\"}";
      String.make 4096 '{';
    ]

(* ---- in-process daemon integration ----------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "zkserve-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let start_daemon dir = Daemon.start ~jobs:2 ~dir ()

let sock_of dir = Filename.concat dir "zkbench.sock"

let submit_collect ?priority ?budget dir spec :
    string list * [ `Done of Json.t | `Failed of string ] =
  let rows = ref [] in
  match
    Client.with_connection (sock_of dir) (fun c ->
        Client.submit_and_watch ?priority ?budget
          ~on_event:(function
            | Proto.Row { data; _ } -> rows := data :: !rows
            | _ -> ())
          c spec)
  with
  | Ok (_id, outcome) -> (List.rev !rows, outcome)
  | Error msg -> Alcotest.failf "submit failed: %s" msg

let small_sweep =
  Job.Sweep
    {
      programs = Some [ "factorial"; "loop-sum" ];
      profiles = Some [ "baseline"; "-O1" ];
      quick = true;
      backends = None;
      limit = None;
    }

let small_fuzz =
  Job.Fuzz
    {
      seed_lo = 1;
      seed_hi = 5;
      pipelines = [ "baseline" ];
      backends = Some [ "risc0"; "sp1" ];
      limit = None;
    }

let test_two_clients_interleave () =
  let dir = fresh_dir () in
  let d = start_daemon dir in
  Fun.protect ~finally:(fun () -> Daemon.stop d) @@ fun () ->
  let a = ref ([], `Failed "not run") and b = ref ([], `Failed "not run") in
  let ta = Thread.create (fun () -> a := submit_collect dir small_sweep) () in
  let tb = Thread.create (fun () -> b := submit_collect dir small_fuzz) () in
  Thread.join ta;
  Thread.join tb;
  let rows_a, out_a = !a and rows_b, out_b = !b in
  (match (out_a, out_b) with
  | `Done _, `Done _ -> ()
  | `Failed m, _ -> Alcotest.failf "sweep job failed: %s" m
  | _, `Failed m -> Alcotest.failf "fuzz job failed: %s" m);
  Alcotest.(check int) "sweep streamed its 4 cells" 4 (List.length rows_a);
  Alcotest.(check bool) "fuzz streamed rows" true (List.length rows_b > 0);
  (* row isolation: sweep rows are checkpoint points, fuzz rows are
     campaign rows — each client got only its own job's codec lines *)
  List.iter
    (fun r ->
      match Zkopt_harness.Checkpoint.decode_point r with
      | Some _ -> ()
      | None -> Alcotest.failf "client A received a non-sweep row: %s" r)
    rows_a;
  List.iter
    (fun r ->
      if List.exists (fun a -> String.equal a r) rows_a then
        Alcotest.failf "client B received client A's row: %s" r)
    rows_b

let test_warm_cache_across_clients () =
  let dir = fresh_dir () in
  let d = start_daemon dir in
  Fun.protect ~finally:(fun () -> Daemon.stop d) @@ fun () ->
  let rows1, _ = submit_collect dir small_sweep in
  (* a second client resubmits the same slice: every cell re-measures
     (fresh checkpoint) but every compile is served by the shared warm
     cache *)
  let rows2, out2 = submit_collect dir small_sweep in
  let summary =
    match out2 with
    | `Done s -> s
    | `Failed m -> Alcotest.failf "warm resubmit failed: %s" m
  in
  Alcotest.(check (slist string compare))
    "warm rows byte-identical to cold rows" rows1 rows2;
  let cache =
    match Json.member "cache" summary with
    | Some c -> c
    | None -> Alcotest.fail "summary has no cache stats"
  in
  Alcotest.(check int) "zero compiles on the warm pass" 0
    (Option.value ~default:(-1) (Json.int_member "misses" cache))

let rec wait_for ?(tries = 100) (p : unit -> bool) =
  if tries = 0 then Alcotest.fail "condition never became true"
  else if not (p ()) then begin
    Thread.delay 0.05;
    wait_for ~tries:(tries - 1) p
  end

let job_state dir id : string =
  match
    Client.with_connection (sock_of dir) (fun c ->
        match Client.send c Proto.Status with
        | Error e -> Error e
        | Ok () -> (
          match Client.recv c with
          | Ok (Proto.Status_report s) -> Ok s
          | _ -> Error "no status reply"))
  with
  | Error e -> Alcotest.failf "status failed: %s" e
  | Ok s -> (
    match Json.member "jobs" s with
    | Some (Json.Arr jobs) -> (
      match
        List.find_opt (fun j -> Json.str_member "id" j = Some id) jobs
      with
      | Some j -> Option.value ~default:"?" (Json.str_member "state" j)
      | None -> "absent")
    | _ -> "absent")

let test_disconnect_cancels_watched_job () =
  let dir = fresh_dir () in
  let d = start_daemon dir in
  Fun.protect ~finally:(fun () -> Daemon.stop d) @@ fun () ->
  let c =
    match Client.connect (sock_of dir) with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  let spec =
    Job.Sweep
      {
        programs = Some [ "factorial"; "loop-sum"; "sha256"; "tailcall" ];
        profiles = Some [ "baseline"; "-O1"; "-O2"; "-O3" ];
        quick = true;
        backends = None;
        limit = None;
      }
  in
  (match
     Client.send c
       (Proto.Submit { spec; priority = 10; budget = None; watch = true })
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send: %s" e);
  let id =
    match Client.recv c with
    | Ok (Proto.Ack { id }) -> id
    | _ -> Alcotest.fail "no ack"
  in
  (* wait for at least one streamed row, then vanish mid-stream *)
  (match Client.recv c with
  | Ok (Proto.Row _) -> ()
  | other ->
    Alcotest.failf "expected a row, got %s"
      (match other with
      | Ok ev -> Proto.encode_event ev
      | Error `Eof -> "eof"
      | Error (`Bad m) -> m));
  Client.close c;
  wait_for (fun () -> String.equal (job_state dir id) "cancelled")

(* stop the daemon mid-job, shear the checkpoint tail (torn-write
   shape), restart over the same directory: the job must resume and the
   final checkpoint must be byte-identical (as a set of lines) to an
   uninterrupted run's *)
let test_restart_resumes_byte_identical () =
  let dir = fresh_dir () in
  let spec =
    Job.Sweep
      {
        programs = Some [ "factorial"; "loop-sum"; "sha256"; "tailcall" ];
        profiles = Some [ "baseline"; "-O1"; "-O2"; "-O3" ];
        quick = true;
        backends = None;
        limit = None;
      }
  in
  (* uninterrupted reference, through the same daemon machinery *)
  let ref_dir = fresh_dir () in
  let dref = start_daemon ref_dir in
  let ref_rows, ref_out =
    Fun.protect
      ~finally:(fun () -> Daemon.stop dref)
      (fun () -> submit_collect ref_dir spec)
  in
  (match ref_out with
  | `Done _ -> ()
  | `Failed m -> Alcotest.failf "reference run failed: %s" m);
  (* interrupted run: stop after >= 3 streamed rows *)
  let d1 = start_daemon dir in
  let seen = Atomic.make 0 in
  let submitter =
    Thread.create
      (fun () ->
        ignore
          (Client.with_connection (sock_of dir) (fun c ->
               Client.submit_and_watch
                 ~on_event:(function
                   | Proto.Row _ -> Atomic.incr seen
                   | _ -> ())
                 c spec)))
      ()
  in
  wait_for (fun () -> Atomic.get seen >= 3);
  Daemon.stop ~drain:false d1;
  Thread.join submitter;
  let ckpt = Filename.concat dir "job-1.ckpt" in
  Alcotest.(check bool) "checkpoint exists after stop" true
    (Sys.file_exists ckpt);
  (* shear: drop the last line and leave a torn half-record behind *)
  let ic = open_in ckpt in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  (match !lines with
  | last :: rest when rest <> [] ->
    let oc = open_out ckpt in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      (List.rev rest);
    output_string oc (String.sub last 0 (String.length last / 2));
    close_out oc
  | _ -> ());
  (* restart over the same state directory: the registry re-enqueues
     job-1 and its checkpoint resumes it *)
  let d2 = start_daemon dir in
  Fun.protect ~finally:(fun () -> Daemon.stop d2) @@ fun () ->
  let final = ref ([], `Failed "not run") in
  let watcher =
    Thread.create
      (fun () ->
        let rows = ref [] in
        match
          Client.with_connection (sock_of dir) (fun c ->
              match Client.send c (Proto.Watch "job-1") with
              | Error e -> Error e
              | Ok () ->
                let rec loop () =
                  match Client.recv c with
                  | Ok (Proto.Row { data; _ }) ->
                    rows := data :: !rows;
                    loop ()
                  | Ok (Proto.Done { summary; _ }) -> Ok (`Done summary)
                  | Ok (Proto.Err { msg }) -> Ok (`Failed msg)
                  | Ok _ -> loop ()
                  | Error `Eof -> Error "eof mid-watch"
                  | Error (`Bad m) -> Error m
                in
                loop ())
        with
        | Ok outcome -> final := (List.rev !rows, outcome)
        | Error e -> final := ([], `Failed e))
      ()
  in
  Thread.join watcher;
  let rows, outcome = !final in
  (match outcome with
  | `Done _ -> ()
  | `Failed m -> Alcotest.failf "resumed job failed: %s" m);
  (* the watcher sees the full sequence: replayed resumed rows plus the
     freshly measured remainder, byte-identical to the reference *)
  Alcotest.(check (slist string compare))
    "resumed rows byte-identical to uninterrupted run" ref_rows rows;
  (* and the on-disk checkpoint healed to the same set of lines *)
  let ic = open_in ckpt in
  let ck = ref [] in
  (try
     while true do
       ck := input_line ic :: !ck
     done
   with End_of_file -> ());
  close_in ic;
  let ck_points = List.filter_map Zkopt_harness.Checkpoint.decode_point !ck in
  Alcotest.(check int) "checkpoint holds every cell" (List.length ref_rows)
    (List.length ck_points)

let tests =
  [
    Alcotest.test_case "jobq blocking pop and close" `Quick
      test_jobq_blocking_and_close;
    Alcotest.test_case "jobq remove rebuilds the heap" `Quick test_jobq_remove;
    Alcotest.test_case "decoders never raise" `Quick test_decoders_never_raise;
    Alcotest.test_case "two concurrent clients stream disjoint jobs" `Slow
      test_two_clients_interleave;
    Alcotest.test_case "shared cache is warm across clients" `Slow
      test_warm_cache_across_clients;
    Alcotest.test_case "disconnect cancels the watched job" `Slow
      test_disconnect_cancels_watched_job;
    Alcotest.test_case "restart resumes byte-identically" `Slow
      test_restart_resumes_byte_identical;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_jobq_order;
        qcheck_spec_roundtrip;
        qcheck_request_roundtrip;
        qcheck_event_roundtrip;
        qcheck_json_print_parse_fixpoint;
      ]
