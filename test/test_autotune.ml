(** Autotune engine tests: genome-operator well-formedness, fixed-seed
    determinism independent of the job count, failure-taxonomy-aware
    evaluation, the §4.2 sequence miner against brute-force oracles, the
    pool-backed search engine's byte-identical rows at any [jobs] with a
    live prefix cache, engine-level checkpoint resume, and the
    autotune-as-a-service kill/restart path (mirroring the sweep case in
    {!Test_serve}). *)

module A = Zkopt_autotune.Autotune
module Miner = Zkopt_autotune.Miner
module Tuned = Zkopt_autotune.Tuned
module Workload = Zkopt_workloads.Workload
module Job = Zkopt_serve.Job
module Proto = Zkopt_serve.Proto
module Daemon = Zkopt_serve.Daemon
module Client = Zkopt_serve.Client

(* ---- genome operators ------------------------------------------------- *)

let well_formed (g : A.genome) =
  g <> []
  && List.length g <= A.max_depth
  && List.for_all (fun p -> List.mem p A.gene_pool) g

let qcheck_operators_well_formed =
  QCheck.Test.make ~name:"random/mutate/crossover genomes stay well-formed"
    ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let a = A.random_genome rng in
      let b = A.random_genome rng in
      well_formed a && well_formed b
      && well_formed (A.mutate rng a)
      && well_formed (A.crossover rng a b))

(* ---- evaluate: failure taxonomy --------------------------------------- *)

let test_evaluate_classifies_failures () =
  (* expected measurement failures score worst instead of raising *)
  List.iter
    (fun (label, (e : exn)) ->
      Alcotest.(check int) label max_int
        (A.evaluate ~cycles:(fun _ -> raise e) [ "dce" ]))
    [
      ("fuel exhaustion scores max_int", Zkopt_ir.Interp.Out_of_fuel);
      ("ill-formed IR scores max_int", Zkopt_ir.Verify.Ill_formed "bad phi");
      ("emulator trap scores max_int", Zkopt_riscv.Emulator.Trap "misaligned");
    ];
  (* harness bugs and oracle violations must propagate *)
  let propagates label (e : exn) matches =
    match A.evaluate ~cycles:(fun _ -> raise e) [ "dce" ] with
    | _ -> Alcotest.failf "%s: exception was swallowed" label
    | exception e' ->
      Alcotest.(check bool) label true (matches e')
  in
  propagates "Stack_overflow propagates" Stack_overflow (( = ) Stack_overflow);
  propagates "assertion failure propagates"
    (Assert_failure ("t", 0, 0))
    (function Assert_failure _ -> true | _ -> false);
  propagates "accounting violation propagates"
    (Zkopt_harness.Error.Accounting "leaked cycles")
    (function Zkopt_harness.Error.Accounting _ -> true | _ -> false);
  (* success path is untouched *)
  Alcotest.(check int) "plain cycles pass through" 42
    (A.evaluate ~cycles:(fun _ -> 42) [ "dce" ])

(* ---- blind GA: determinism and history shape -------------------------- *)

(* a pure, cheap synthetic objective: deterministic in the genome *)
let synthetic_cycles (g : A.genome) = Hashtbl.hash g land 0xffff

let test_run_deterministic_across_jobs () =
  let go jobs =
    A.run ~seed:11 ~population:8 ~iterations:48 ~jobs
      ~cycles:synthetic_cycles ()
  in
  let r1 = go 1 and r4 = go 4 in
  Alcotest.(check int) "same best fitness" r1.A.best.A.fitness
    r4.A.best.A.fitness;
  Alcotest.(check (list string)) "same best genome" r1.A.best.A.genome
    r4.A.best.A.genome;
  Alcotest.(check (list int)) "same per-generation history" r1.A.history
    r4.A.history;
  Alcotest.(check int) "same evaluation count" r1.A.evaluations
    r4.A.evaluations

let qcheck_history_monotone =
  QCheck.Test.make ~name:"best-so-far history is monotone non-increasing"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r =
        A.run ~seed ~population:6 ~iterations:30 ~cycles:synthetic_cycles ()
      in
      r.A.history <> []
      && fst
           (List.fold_left
              (fun (ok, prev) b ->
                match prev with
                | None -> (ok, Some b)
                | Some p -> (ok && b <= p, Some b))
              (true, None) r.A.history))

(* ---- miner vs brute-force oracles ------------------------------------- *)

let seqs_gen : string list list QCheck.Gen.t =
  let open QCheck.Gen in
  let gene = oneofl [ "a"; "b"; "c" ] in
  list_size (int_range 1 8) (list_size (int_range 0 6) gene)

let qcheck_pair_equals_subsequence =
  (* the ordered-pair counter is exactly 2-element subsequence support,
     including the a = b case (two distinct occurrences required) *)
  QCheck.Test.make ~name:"count_ordered_pair = count_subsequence [a;b]"
    ~count:300
    (QCheck.make QCheck.Gen.(pair (pair (oneofl [ "a"; "b"; "c" ]) (oneofl [ "a"; "b"; "c" ])) seqs_gen))
    (fun ((a, b), seqs) ->
      A.count_ordered_pair a b seqs = Miner.count_subsequence [ a; b ] seqs)

let qcheck_pair_table_complete =
  QCheck.Test.make ~name:"pair_table lists every non-zero ordered pair"
    ~count:200 (QCheck.make seqs_gen)
    (fun seqs ->
      let table = Miner.pair_table seqs in
      let genes = [ "a"; "b"; "c" ] in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let c = A.count_ordered_pair a b seqs in
              let listed = List.assoc_opt (a, b) table in
              if c = 0 then listed = None else listed = Some c)
            genes)
        genes)

(* brute-force frequent-subsequence oracle: enumerate every candidate
   over the full alphabet up to max_len and keep those meeting the
   support floor *)
let brute_frequent ~min_support ~max_len seqs =
  let genes = Miner.alphabet seqs in
  let rec candidates len =
    if len = 0 then [ [] ]
    else
      let shorter = candidates (len - 1) in
      shorter
      @ List.concat_map
          (fun sq ->
            if List.length sq = len - 1 then
              List.map (fun g -> sq @ [ g ]) genes
            else [])
          shorter
  in
  List.filter_map
    (fun sq ->
      if sq = [] then None
      else
        let s = Miner.count_subsequence sq seqs in
        if s >= min_support then Some (sq, s) else None)
    (candidates max_len)

let qcheck_frequent_matches_bruteforce =
  QCheck.Test.make ~name:"level-wise miner = brute-force enumeration"
    ~count:100 (QCheck.make seqs_gen)
    (fun seqs ->
      let norm l = List.sort compare l in
      norm (Miner.frequent ~min_support:2 ~max_len:3 seqs)
      = norm (brute_frequent ~min_support:2 ~max_len:3 seqs))

let qcheck_maximal_sound =
  QCheck.Test.make ~name:"maximal keeps no proper subsequence of a kept seq"
    ~count:100 (QCheck.make seqs_gen)
    (fun seqs ->
      let mined = Miner.frequent ~min_support:2 ~max_len:3 seqs in
      let kept = Miner.maximal mined in
      (* soundness: no kept sequence is a proper subsequence of another *)
      List.for_all
        (fun (s, _) ->
          not
            (List.exists
               (fun (t, _) -> t <> s && Miner.is_subsequence s t)
               kept))
        kept
      (* completeness: every dropped sequence is subsumed by a kept one *)
      && List.for_all
           (fun (s, _) ->
             List.mem_assoc s kept
             || List.exists
                  (fun (t, _) -> t <> s && Miner.is_subsequence s t)
                  kept)
           mined)

let test_contrast_scores () =
  let best = [ [ "inline"; "licm" ]; [ "inline"; "dce"; "licm" ] ] in
  let worst = [ [ "licm"; "inline" ]; [ "reg2mem" ] ] in
  let cs = Miner.contrast_mine ~min_support:2 ~max_len:2 ~best ~worst () in
  let find sq = List.find_opt (fun c -> c.Miner.seq = sq) cs in
  (match find [ "inline"; "licm" ] with
  | Some c ->
    Alcotest.(check int) "inline..licm supports all best" 2 c.Miner.support_best;
    Alcotest.(check int) "inline..licm supports no worst" 0
      c.Miner.support_worst;
    Alcotest.(check (float 1e-9)) "inline..licm contrast +1.0" 1.0
      c.Miner.score
  | None -> Alcotest.fail "inline..licm not mined");
  (* sorted by score descending: the winning motif leads *)
  match cs with
  | top :: _ ->
    Alcotest.(check (list string)) "winning motif ranks first"
      [ "inline"; "licm" ] top.Miner.seq
  | [] -> Alcotest.fail "nothing mined"

(* ---- the search engine over a real backend target --------------------- *)

let factorial_target ?cache () =
  let w = Workload.find "factorial" in
  let build () = w.Workload.build Workload.Quick in
  let b = Zkopt_backend.Registry.find "risc0" in
  A.backend_target ?cache ~program:"factorial" ~build b

let run_search ?(jobs = 1) ?(iterations = 8) ?checkpoint ?(resume = false)
    ?(stop = fun () -> false) ?on_row () =
  let rows = ref [] in
  let record r =
    rows := r :: !rows;
    Option.iter (fun f -> f r) on_row
  in
  let cfg =
    {
      (A.default ~seed:7 ~population:4 ~iterations ~jobs ()) with
      A.checkpoint;
      resume;
      stop;
      on_row = Some record;
    }
  in
  let o = A.search cfg ~targets:[ factorial_target () ] in
  (o, List.rev !rows)

let test_search_rows_jobs_independent () =
  let o1, rows1 = run_search ~jobs:1 () in
  let o4, rows4 = run_search ~jobs:4 () in
  Alcotest.(check (list string)) "rows byte-identical at jobs 1 vs 4" rows1
    rows4;
  Alcotest.(check bool) "both runs completed" true
    (o1.A.completed && o4.A.completed);
  let r = Option.get o1.A.result in
  Alcotest.(check int) "8 evaluations over 2 generations" 8 r.A.evaluations;
  Alcotest.(check int) "two-entry history" 2 (List.length r.A.history);
  Alcotest.(check bool) "prefix cache saw hits" true
    (o1.A.cache_stats.A.prefix.Zkopt_exec.Cache.hits > 0)

let test_search_checkpoint_resume () =
  let ckpt = Filename.temp_file "zkopt-tune" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
  @@ fun () ->
  (* reference: uninterrupted 3-generation run *)
  let _, ref_rows = run_search ~iterations:12 () in
  (* interrupted: stop at the boundary after the second generation (the
     stop hook is polled between generations; G rows count them) *)
  let gens = ref 0 in
  let o1, _ =
    run_search ~iterations:12 ~checkpoint:ckpt
      ~stop:(fun () -> !gens >= 2)
      ~on_row:(fun r -> if String.length r > 0 && r.[0] = 'G' then incr gens)
      ()
  in
  Alcotest.(check bool) "interrupted run did not complete" false
    o1.A.completed;
  (* shear the checkpoint tail to the torn-write shape a kill leaves:
     the second generation loses its G row and must re-run live *)
  let ic = open_in ckpt in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  (match !lines with
  | last :: rest ->
    let oc = open_out ckpt in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      (List.rev rest);
    output_string oc (String.sub last 0 (String.length last / 2));
    close_out oc
  | [] -> Alcotest.fail "interrupted run left no checkpoint");
  (* resume over the sheared log: replayed + live rows must equal the
     uninterrupted reference byte-for-byte, in order *)
  let o2, rows = run_search ~iterations:12 ~checkpoint:ckpt ~resume:true () in
  Alcotest.(check bool) "resumed run completed" true o2.A.completed;
  Alcotest.(check bool) "resumed run replayed evaluations" true
    (o2.A.resumed > 0);
  Alcotest.(check (list string)) "resumed rows = uninterrupted rows" ref_rows
    rows

(* ---- tuned-profile persistence ---------------------------------------- *)

let test_tuned_roundtrip () =
  let path = Filename.temp_file "zkopt-tuned" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let entries =
    [
      Tuned.entry ~program:"factorial" ~vm:"risc0" ~cycles:123
        [ "inline"; "licm"; "dce" ];
      Tuned.entry ~program:"sha256" ~vm:"sp1" ~cycles:456 [ "mem2reg" ];
    ]
  in
  (match Tuned.save path entries with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  match Tuned.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok back ->
    Alcotest.(check int) "both entries survive" 2 (List.length back);
    List.iter2
      (fun (a : Tuned.entry) (b : Tuned.entry) ->
        Alcotest.(check string) "name" a.Tuned.name b.Tuned.name;
        Alcotest.(check (list string)) "passes" a.Tuned.passes b.Tuned.passes;
        Alcotest.(check int) "cycles" a.Tuned.cycles b.Tuned.cycles)
      entries back;
    let p = Tuned.to_profile (List.hd back) in
    Alcotest.(check string) "profile name carries the tuned tag"
      "tuned:factorial@risc0"
      (Zkopt_core.Profile.name p)

(* ---- autotune as a service: kill and resume --------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "zktune-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let sock_of dir = Filename.concat dir "zkbench.sock"

let submit_collect dir spec =
  let rows = ref [] in
  match
    Client.with_connection (sock_of dir) (fun c ->
        Client.submit_and_watch
          ~on_event:(function
            | Proto.Row { data; _ } -> rows := data :: !rows
            | _ -> ())
          c spec)
  with
  | Ok (_id, outcome) -> (List.rev !rows, outcome)
  | Error msg -> Alcotest.failf "submit failed: %s" msg

let rec wait_for ?(tries = 200) (p : unit -> bool) =
  if tries = 0 then Alcotest.fail "condition never became true"
  else if not (p ()) then begin
    Thread.delay 0.05;
    wait_for ~tries:(tries - 1) p
  end

let tune_spec =
  Job.Autotune
    {
      program = "factorial";
      iters = 16;
      vm = "risc0";
      quick = true;
      seed = 7;
      population = 4;
    }

let test_service_restart_resumes_byte_identical () =
  (* uninterrupted reference through the daemon machinery *)
  let ref_dir = fresh_dir () in
  let dref = Daemon.start ~jobs:2 ~dir:ref_dir () in
  let ref_rows, ref_out =
    Fun.protect
      ~finally:(fun () -> Daemon.stop dref)
      (fun () -> submit_collect ref_dir tune_spec)
  in
  (match ref_out with
  | `Done _ -> ()
  | `Failed m -> Alcotest.failf "reference tune failed: %s" m);
  Alcotest.(check bool) "reference streamed rows" true (ref_rows <> []);
  (* interrupted run: stop the daemon after the first streamed rows *)
  let dir = fresh_dir () in
  let d1 = Daemon.start ~jobs:2 ~dir () in
  let seen = Atomic.make 0 in
  let submitter =
    Thread.create
      (fun () ->
        ignore
          (Client.with_connection (sock_of dir) (fun c ->
               Client.submit_and_watch
                 ~on_event:(function
                   | Proto.Row _ -> Atomic.incr seen
                   | _ -> ())
                 c tune_spec)))
      ()
  in
  wait_for (fun () -> Atomic.get seen >= 5);
  Daemon.stop ~drain:false d1;
  Thread.join submitter;
  (* restart over the same state dir: the registry re-enqueues job-1 and
     its checkpoint replays the finished generations *)
  let d2 = Daemon.start ~jobs:2 ~dir () in
  Fun.protect ~finally:(fun () -> Daemon.stop d2) @@ fun () ->
  let rows = ref [] in
  let outcome =
    match
      Client.with_connection (sock_of dir) (fun c ->
          match Client.send c (Proto.Watch "job-1") with
          | Error e -> Error e
          | Ok () ->
            let rec loop () =
              match Client.recv c with
              | Ok (Proto.Row { data; _ }) ->
                rows := data :: !rows;
                loop ()
              | Ok (Proto.Done { summary; _ }) -> Ok (`Done summary)
              | Ok (Proto.Err { msg }) -> Ok (`Failed msg)
              | Ok _ -> loop ()
              | Error `Eof -> Error "eof mid-watch"
              | Error (`Bad m) -> Error m
            in
            loop ())
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "watch failed: %s" e
  in
  (match outcome with
  | `Done summary ->
    Alcotest.(check bool) "summary reports replayed evaluations" true
      (Option.value ~default:0
         (Zkopt_report.Json.int_member "resumed" summary)
      > 0)
  | `Failed m -> Alcotest.failf "resumed tune failed: %s" m);
  (* set-of-lines comparison, as in the sweep restart test: the watcher
     may attach after the restarted job already streamed its first
     replayed rows *)
  Alcotest.(check (slist string compare))
    "resumed rows byte-identical to uninterrupted run" ref_rows
    (List.rev !rows)

let tests =
  [
    Alcotest.test_case "evaluate classifies failures by taxonomy" `Quick
      test_evaluate_classifies_failures;
    Alcotest.test_case "blind GA deterministic at jobs 1 vs 4" `Quick
      test_run_deterministic_across_jobs;
    Alcotest.test_case "contrast mining scores best-camp motifs" `Quick
      test_contrast_scores;
    Alcotest.test_case "tuned profiles roundtrip through JSON" `Quick
      test_tuned_roundtrip;
    Alcotest.test_case "search rows byte-identical across jobs" `Slow
      test_search_rows_jobs_independent;
    Alcotest.test_case "search resumes from a sheared checkpoint" `Slow
      test_search_checkpoint_resume;
    Alcotest.test_case "service tune resumes byte-identically" `Slow
      test_service_restart_resumes_byte_identical;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_operators_well_formed;
        qcheck_history_monotone;
        qcheck_pair_equals_subsequence;
        qcheck_pair_table_complete;
        qcheck_frequent_matches_bruteforce;
        qcheck_maximal_sound;
      ]
