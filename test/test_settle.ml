(** Settlement-model tests: the §1 gas fixture is pinned exactly (and
    within the 1% reproduction tolerance), gas grows by exactly one
    sumcheck round plus one MSM point per circuit doubling, aggregation
    plans obey the depth law and are monotone in segment count, the
    settlement row codec roundtrips, and pricing real measurements is
    deterministic and invariant-clean across every registered backend. *)

open Zkopt_ir
module B = Builder
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Measure = Zkopt_core.Measure
module Profile = Zkopt_core.Profile
module Gas = Zkopt_settle.Gas
module Sparams = Zkopt_settle.Sparams
module Proofsize = Zkopt_settle.Proofsize
module Recursion = Zkopt_settle.Recursion
module S = Zkopt_settle.Settle

let () = Zkopt_valida.Vbackend.ensure ()

(* ---- the §1 gas fixture ---------------------------------------------- *)

(* The measured on-chain breakdown the model is calibrated to: 2^20
   circuit, 10,560-byte wrapped proof, 100 public inputs. *)
let test_gas_fixture () =
  let g = Gas.of_root 20 in
  Alcotest.(check int) "load+parse" 227_965 g.Gas.load_parse;
  Alcotest.(check int) "transcript" 310_881 g.Gas.transcript;
  Alcotest.(check int) "public inputs" 86_707 g.Gas.pi_delta;
  Alcotest.(check int) "sumcheck" 599_934 g.Gas.sumcheck;
  Alcotest.(check int) "shplemini" 1_599_679 g.Gas.shplemini;
  Alcotest.(check int) "total" 2_825_166 g.Gas.total;
  Alcotest.(check int) "msm size" 62 g.Gas.msm_size;
  Alcotest.(check int) "sumcheck rounds" 20 g.Gas.sumcheck_rounds;
  (* the acceptance tolerance: model within 1% of the measurement *)
  let err =
    Float.abs (float_of_int g.Gas.total /. 2_825_166.0 -. 1.0) *. 100.0
  in
  Alcotest.(check bool) "within 1% of the §1 measurement" true (err < 1.0)

let test_gas_per_doubling () =
  Alcotest.(check int) "per-doubling constant" 36_538 Gas.per_doubling_gas;
  for log_n = 1 to 40 do
    let d = (Gas.of_root (log_n + 1)).Gas.total - (Gas.of_root log_n).Gas.total in
    Alcotest.(check int)
      (Printf.sprintf "doubling at log_n=%d" log_n)
      Gas.per_doubling_gas d
  done

let qcheck_gas_monotone =
  QCheck.Test.make ~name:"gas monotone in log_n, proof bytes and inputs"
    ~count:200
    QCheck.(triple (int_range 1 40) (int_range 128 100_000) (int_range 0 500))
    (fun (log_n, bytes, pis) ->
      let g = Gas.of_root ~proof_bytes:bytes ~public_inputs:pis log_n in
      let bigger_n = Gas.of_root ~proof_bytes:bytes ~public_inputs:pis (log_n + 1) in
      let bigger_p = Gas.of_root ~proof_bytes:(bytes + 136) ~public_inputs:pis log_n in
      let bigger_i = Gas.of_root ~proof_bytes:bytes ~public_inputs:(pis + 1) log_n in
      g.Gas.total < bigger_n.Gas.total
      && g.Gas.total < bigger_p.Gas.total
      && g.Gas.total < bigger_i.Gas.total)

(* ---- proof size ------------------------------------------------------- *)

let qcheck_proofsize_log =
  (* doubling the padded area adds exactly [queries * path_bytes]: one
     more Merkle level per query, nothing else *)
  QCheck.Test.make ~name:"proof size is O(log N): +1 path level per doubling"
    ~count:100
    QCheck.(int_range 13 30)
    (fun po2 ->
      List.for_all
        (fun (p : Sparams.t) ->
          Proofsize.bytes p ~padded:(1 lsl (po2 + 1))
          - Proofsize.bytes p ~padded:(1 lsl po2)
          = p.Sparams.queries * p.Sparams.path_bytes)
        Sparams.all)

(* ---- aggregation ------------------------------------------------------ *)

let qcheck_depth_law =
  QCheck.Test.make ~name:"plan depth = ceil(log_arity segments)" ~count:300
    QCheck.(pair (int_range 1 400) (int_range 2 16))
    (fun (segs, arity) ->
      let seg_padded = List.init segs (fun _ -> 1 lsl 20) in
      let plan = Recursion.plan Sparams.risc0 ~arity ~seg_padded () in
      (* independent closed form: smallest d with arity^d >= segs *)
      let rec closed d cap = if cap >= segs then d else closed (d + 1) (cap * arity) in
      plan.Recursion.depth = closed 0 1
      && plan.Recursion.segments = segs
      && (segs = 1) = (plan.Recursion.nodes = 0))

let qcheck_agg_monotone =
  QCheck.Test.make ~name:"aggregation cost monotone in segment count"
    ~count:100
    QCheck.(pair (int_range 1 200) (int_range 2 12))
    (fun (segs, arity) ->
      List.for_all
        (fun (p : Sparams.t) ->
          let cost n =
            (Recursion.plan p ~arity
               ~seg_padded:(List.init n (fun _ -> 1 lsl 20))
               ())
              .Recursion.agg_total_s
          in
          cost segs <= cost (segs + 1))
        Sparams.all)

let test_single_segment_plan () =
  (* one segment needs no aggregation: the leaf is the root *)
  let plan = Recursion.plan Sparams.sp1 ~seg_padded:[ 1 lsl 21 ] () in
  Alcotest.(check int) "depth" 0 plan.Recursion.depth;
  Alcotest.(check int) "nodes" 0 plan.Recursion.nodes;
  Alcotest.(check int) "agg cycles" 0 plan.Recursion.agg_cycles;
  Alcotest.(check int) "root padded" (1 lsl 21) plan.Recursion.root_padded;
  Alcotest.(check int) "root bytes"
    (Proofsize.bytes Sparams.sp1 ~padded:(1 lsl 21))
    plan.Recursion.root_proof_bytes

(* ---- pricing and the row codec ---------------------------------------- *)

(* A synthetic measurement: enough structure for pricing, no execution. *)
let measurement ~vm ~prove_us ~seg_padded ~cycles : Backend.measurement =
  {
    Backend.zk =
      {
        Measure.vm;
        cycles;
        exec_time_s = 0.01;
        prove_time_s = float_of_int prove_us *. 1e-6;
        segments = List.length seg_padded;
        paging_cycles = 0;
        page_ins = 0;
        page_outs = 0;
        loads = 0;
        stores = 0;
        exit_value = 0L;
      };
    accounting = Ok ();
    faulted = false;
    seg_padded;
  }

let qcheck_row_roundtrip =
  QCheck.Test.make ~name:"settlement row codec roundtrips" ~count:300
    QCheck.(
      quad (int_range 1 40) (int_range 13 22) (int_range 0 100_000_000)
        (int_range 2 12))
    (fun (segs, po2, prove_us, arity) ->
      let backend = List.nth [ "risc0"; "sp1"; "valida" ] (segs mod 3) in
      let m =
        measurement ~vm:backend ~prove_us
          ~seg_padded:(List.init segs (fun i -> 1 lsl (max 13 (po2 - (i mod 3)))))
          ~cycles:(segs * 100_000)
      in
      let r = S.price ~arity ~backend m in
      let row = S.row_of_report ~program:"prog" ~profile:"-O2" r in
      match S.report_of_row row with
      | Some (p, pr, r') ->
        (* floats travel as micro-units, so structural equality holds
           up to re-encoding: a decoded report must print the same row
           and keep every integer field *)
        p = "prog" && pr = "-O2"
        && S.row_of_report ~program:p ~profile:pr r' = row
        && r'.S.settled_cost = r.S.settled_cost
        && r'.S.prover_cost = r.S.prover_cost
        && r'.S.agg_cost = r.S.agg_cost
        && r'.S.gas_cost = r.S.gas_cost
        && r'.S.plan.Recursion.depth = r.S.plan.Recursion.depth
        && r'.S.gas = r.S.gas
      | None -> false)

let test_row_rejects_torn () =
  let m =
    measurement ~vm:"risc0" ~prove_us:1_234_567
      ~seg_padded:[ 1 lsl 20; 1 lsl 14 ]
      ~cycles:1_100_000
  in
  let row =
    S.row_of_report ~program:"p" ~profile:"baseline"
      (S.price ~backend:"risc0" m)
  in
  Alcotest.(check bool) "full row decodes" true (S.report_of_row row <> None);
  for cut = 1 to String.length row - 1 do
    if S.report_of_row (String.sub row 0 cut) <> None then
      Alcotest.failf "torn prefix of length %d decoded" cut
  done

let qcheck_settled_dominates =
  QCheck.Test.make ~name:"settled cost >= each component" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 0 50_000_000))
    (fun (segs, prove_us) ->
      List.for_all
        (fun backend ->
          let m =
            measurement ~vm:backend ~prove_us
              ~seg_padded:(List.init segs (fun _ -> 1 lsl 18))
              ~cycles:(segs * 50_000)
          in
          let r = S.price ~backend m in
          r.S.settled_cost >= r.S.prover_cost
          && r.S.settled_cost >= r.S.agg_cost
          && r.S.settled_cost >= r.S.gas_cost
          && S.check_invariants ~backend m = Ok ())
        [ "risc0"; "sp1"; "valida" ])

let test_sparams_prefix_fallback () =
  Alcotest.(check string) "sp1-dense prices as sp1" "sp1"
    (Sparams.find "sp1-dense").Sparams.family;
  Alcotest.check_raises "unknown family raises"
    (Invalid_argument
       "no settlement parameters for backend \"cairo\" (families: risc0, \
        sp1, valida)")
    (fun () -> ignore (Sparams.find "cairo"))

(* ---- end to end over real measurements -------------------------------- *)

let small_program () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let s = B.var b Ty.I32 (B.imm 7) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm 200) (fun i ->
             B.set b Ty.I32 s (B.add b (Value.Reg s) (B.mul b i i)));
         B.ret b (Some (Value.Reg s))));
  m

let test_price_real_measurements () =
  List.iter
    (fun (b : Backend.t) ->
      let m = Measure.prepare_ir ~build:small_program Profile.Baseline in
      let c = b.Backend.compile m in
      let r = c.Backend.measure ~vm:b.Backend.name () in
      Alcotest.(check int)
        (b.Backend.name ^ " reports one padded area per segment")
        r.Backend.zk.Measure.segments
        (List.length r.Backend.seg_padded);
      List.iter
        (fun padded ->
          (* rv32 backends pad one table to a power of two; a multi-chip
             backend reports the sum over its tables *)
          let ok =
            padded > 0
            && (b.Backend.zk_native || padded land (padded - 1) = 0)
          in
          Alcotest.(check bool)
            (b.Backend.name ^ " padded areas are positive") true ok)
        r.Backend.seg_padded;
      (match S.check_invariants ~backend:b.Backend.name r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" b.Backend.name e);
      let r1 = S.price ~backend:b.Backend.name r in
      let r2 = S.price ~backend:b.Backend.name r in
      Alcotest.(check bool)
        (b.Backend.name ^ " pricing deterministic")
        true (r1 = r2))
    (Registry.all ())

let tests =
  [
    Alcotest.test_case "gas fixture (§1 breakdown, exact)" `Quick
      test_gas_fixture;
    Alcotest.test_case "gas per-doubling = 1 round + 1 MSM point" `Quick
      test_gas_per_doubling;
    QCheck_alcotest.to_alcotest qcheck_gas_monotone;
    QCheck_alcotest.to_alcotest qcheck_proofsize_log;
    QCheck_alcotest.to_alcotest qcheck_depth_law;
    QCheck_alcotest.to_alcotest qcheck_agg_monotone;
    Alcotest.test_case "single segment needs no aggregation" `Quick
      test_single_segment_plan;
    QCheck_alcotest.to_alcotest qcheck_row_roundtrip;
    Alcotest.test_case "torn rows never decode" `Quick test_row_rejects_torn;
    QCheck_alcotest.to_alcotest qcheck_settled_dominates;
    Alcotest.test_case "family prefix fallback" `Quick
      test_sparams_prefix_fallback;
    Alcotest.test_case "pricing real measurements (all backends)" `Quick
      test_price_real_measurements;
  ]
