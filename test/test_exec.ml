(** Multicore executor tests: work-stealing pool invariants (exactly-once
    execution, sequential order at [jobs = 1], poison propagation),
    content-addressed cache properties (digest stability under {!Clone},
    digest sensitivity to one-instruction edits, hit/compile metric
    equality), single-flight compilation, the LRU bound, and the on-disk
    store (round trip, corruption treated as a miss). *)

open Zkopt_ir
open Zkopt_core
module Pool = Zkopt_exec.Pool
module Cache = Zkopt_exec.Cache
module Fingerprint = Zkopt_exec.Fingerprint
module B = Builder

(* ---- pool invariants ------------------------------------------------ *)

let test_pool_exactly_once () =
  (* every submitted task runs exactly once, at any worker count *)
  let rng = Random.State.make [| 0xE4EC |] in
  for _trial = 1 to 6 do
    let jobs = 1 + Random.State.int rng 8 in
    let n = 50 + Random.State.int rng 200 in
    let counts = Array.make n 0 in
    let mu = Mutex.create () in
    Pool.run ~jobs
      (List.init n (fun i () ->
           Mutex.lock mu;
           counts.(i) <- counts.(i) + 1;
           Mutex.unlock mu));
    Array.iteri
      (fun i c ->
        if c <> 1 then
          Alcotest.failf "task %d ran %d times under %d workers" i c jobs)
      counts
  done

let test_pool_sequential_order () =
  (* a 1-worker pool executes tasks in exact submission order *)
  let order = ref [] in
  let n = 100 in
  Pool.run ~jobs:1 (List.init n (fun i () -> order := i :: !order));
  Alcotest.(check (list int)) "submission order" (List.init n Fun.id)
    (List.rev !order)

let test_pool_poison () =
  (* the first task exception reaches the submitter through [wait], and
     queued tasks are dropped rather than silently continued *)
  let pool = Pool.create ~jobs:4 in
  let ran = Atomic.make 0 in
  for i = 0 to 99 do
    Pool.submit pool (fun () ->
        if i = 10 then failwith "poisoned";
        Atomic.incr ran)
  done;
  (match Pool.wait pool with
  | () -> Alcotest.fail "expected the task exception to re-raise"
  | exception Failure msg -> Alcotest.(check string) "which" "poisoned" msg);
  Pool.shutdown pool;
  Alcotest.(check bool) "queued tasks were dropped" true (Atomic.get ran < 100)

(* ---- digest properties ---------------------------------------------- *)

let prop_clone_digest_stable =
  QCheck.Test.make ~name:"Clone'd modules digest identically" ~count:15
    QCheck.(pair (int_range 1 100_000) (int_range 0 5))
    (fun (seed, lvl_idx) ->
      (* both pristine and post-pipeline modules: cloning preserves
         names, labels and register numbering, so the structural digest
         must not move *)
      let m = Randprog.generate ~seed () in
      let pristine =
        String.equal (Fingerprint.of_modul m)
          (Fingerprint.of_modul (Clone.modul m))
      in
      Zkopt_passes.Catalog.run_level
        (List.nth Zkopt_passes.Catalog.all_levels lvl_idx)
        m;
      pristine
      && String.equal (Fingerprint.of_modul m)
           (Fingerprint.of_modul (Clone.modul m)))

let prop_one_instr_digest_differs =
  QCheck.Test.make ~name:"one-instruction edit changes the digest" ~count:15
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let m = Randprog.generate ~seed () in
      let c = Clone.modul m in
      let f = List.hd c.Modul.funcs in
      let b = Func.entry f in
      let dst = Func.fresh_reg f in
      b.Block.instrs <-
        Instr.Mov { dst; ty = Ty.I32; src = Value.Imm 0L } :: b.Block.instrs;
      not (String.equal (Fingerprint.of_modul m) (Fingerprint.of_modul c)))

let prop_attr_digest_differs =
  QCheck.Test.make ~name:"attribute flip changes the digest" ~count:10
    QCheck.(int_range 1 100_000)
    (fun seed ->
      (* attrs steer late pipeline stages; they are digested explicitly *)
      let m = Randprog.generate ~seed () in
      let c = Clone.modul m in
      let f = List.hd c.Modul.funcs in
      f.Func.attrs.Func.no_inline <- not f.Func.attrs.Func.no_inline;
      not (String.equal (Fingerprint.of_modul m) (Fingerprint.of_modul c)))

(* ---- cache behavior -------------------------------------------------- *)

(* The cache is polymorphic; the tests use a closure-free artifact of
   pure data so the default marshalling codec covers the disk store. *)
type artifact = { codegen : Zkopt_riscv.Codegen.t; static_instrs : int }

let compile_artifact m : artifact =
  let c = Measure.compile_ir m in
  { codegen = c.Measure.codegen; static_instrs = c.Measure.static_instrs }

let prop_cache_hit_matches_fresh_compile =
  QCheck.Test.make ~name:"cache hit executes identically to a fresh compile"
    ~count:6
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let build () = Randprog.generate ~seed () in
      let m = Measure.prepare_ir ~build Profile.Baseline in
      let digest = Fingerprint.of_modul m in
      let cache = Cache.create () in
      let miss =
        Cache.get_or_compile cache ~digest ~compile:(fun () ->
            compile_artifact m)
      in
      let hit =
        Cache.get_or_compile cache ~digest ~compile:(fun () ->
            QCheck.Test.fail_report "second lookup must not compile")
      in
      let fresh = Measure.compile_ir m in
      let run (art : artifact) =
        let c =
          {
            Measure.modul = m;
            codegen = art.codegen;
            static_instrs = art.static_instrs;
          }
        in
        Measure.run_zkvm Zkopt_zkvm.Config.risc0 c
      in
      let a = run miss
      and b = run hit
      and f =
        run
          {
            codegen = fresh.Measure.codegen;
            static_instrs = fresh.Measure.static_instrs;
          }
      in
      let s = Cache.stats cache in
      s.Cache.hits = 1 && s.Cache.misses = 1
      && a.Measure.cycles = b.Measure.cycles
      && a.Measure.cycles = f.Measure.cycles
      && Int64.equal a.Measure.exit_value f.Measure.exit_value)

let tiny_module () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let x = B.add b (B.imm 40) (B.imm 2) in
         B.ret b (Some x)));
  m

let test_cache_single_flight () =
  (* many domains asking for one digest: exactly one compile happens,
     everyone else blocks and picks up the result as a hit *)
  let m = Measure.prepare_ir ~build:tiny_module Profile.Baseline in
  let digest = Fingerprint.of_modul m in
  let cache = Cache.create () in
  let compiles = Atomic.make 0 in
  Pool.run ~jobs:4
    (List.init 8 (fun _ () ->
         ignore
           (Cache.get_or_compile cache ~digest ~compile:(fun () ->
                Atomic.incr compiles;
                Unix.sleepf 0.02;
                compile_artifact m))));
  Alcotest.(check int) "one compile" 1 (Atomic.get compiles);
  let s = Cache.stats cache in
  Alcotest.(check int) "seven hits" 7 s.Cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cache.misses

let test_cache_lru_eviction () =
  let m = Measure.prepare_ir ~build:tiny_module Profile.Baseline in
  let art = compile_artifact m in
  let cache = Cache.create ~capacity:2 () in
  let get d = ignore (Cache.get_or_compile cache ~digest:d ~compile:(fun () -> art)) in
  get "d1";
  get "d2";
  get "d3" (* capacity 2: evicts d1, the least recently used *);
  get "d3" (* hit *);
  get "d1" (* miss again: it was evicted *);
  let s = Cache.stats cache in
  Alcotest.(check int) "evictions" 2 s.Cache.evictions;
  Alcotest.(check int) "hit on resident digest" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 4 s.Cache.misses

let test_disk_cache_roundtrip () =
  let dir = Filename.temp_file "zkopt_cache" "" in
  Sys.remove dir;
  let m = Measure.prepare_ir ~build:tiny_module Profile.Baseline in
  let digest = Fingerprint.of_modul m in
  let codec = Cache.marshal_codec () in
  (* run 1 compiles and persists *)
  let c1 = Cache.create ~dir () in
  let a1 =
    Cache.get_or_compile ~codec c1 ~digest ~compile:(fun () ->
        compile_artifact m)
  in
  Alcotest.(check int) "first run compiles" 1 (Cache.stats c1).Cache.misses;
  (* run 2 (fresh process state) must load from disk, not compile *)
  let c2 = Cache.create ~dir () in
  let a2 =
    Cache.get_or_compile ~codec c2 ~digest ~compile:(fun () ->
        Alcotest.fail "second run must hit the disk store")
  in
  Alcotest.(check int) "disk hit" 1 (Cache.stats c2).Cache.disk_hits;
  let run (art : artifact) =
    Measure.run_zkvm Zkopt_zkvm.Config.sp1
      {
        Measure.modul = m;
        codegen = art.codegen;
        static_instrs = art.static_instrs;
      }
  in
  Alcotest.(check int) "deserialized artifact executes identically"
    (run a1).Measure.cycles (run a2).Measure.cycles;
  (* a corrupt artifact is a miss, never a failure *)
  let path = ref None in
  let rec walk p =
    if Sys.is_directory p then Array.iter (fun f -> walk (Filename.concat p f)) (Sys.readdir p)
    else path := Some p
  in
  walk dir;
  (match !path with
  | None -> Alcotest.fail "no artifact file written"
  | Some p ->
    let oc = open_out_bin p in
    output_string oc "garbage, not a marshalled artifact";
    close_out oc);
  let c3 = Cache.create ~dir () in
  let a3 =
    Cache.get_or_compile ~codec c3 ~digest ~compile:(fun () ->
        compile_artifact m)
  in
  Alcotest.(check int) "corrupt file treated as a miss" 1
    (Cache.stats c3).Cache.misses;
  Alcotest.(check int) "recompiled artifact still equal" (run a1).Measure.cycles
    (run a3).Measure.cycles

let tests =
  [
    Alcotest.test_case "pool runs each task exactly once" `Quick
      test_pool_exactly_once;
    Alcotest.test_case "1-worker pool preserves submission order" `Quick
      test_pool_sequential_order;
    Alcotest.test_case "task exception poisons the pool" `Quick test_pool_poison;
    Alcotest.test_case "cache single-flight compilation" `Quick
      test_cache_single_flight;
    Alcotest.test_case "cache LRU eviction bound" `Quick test_cache_lru_eviction;
    Alcotest.test_case "disk store roundtrip and corruption" `Quick
      test_disk_cache_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_clone_digest_stable;
        prop_one_instr_digest_differs;
        prop_attr_digest_differs;
        prop_cache_hit_matches_fresh_compile;
      ]
