(** zkVM executor / prover model and CPU model tests. *)

open Zkopt_ir
open Zkopt_core
module B = Builder

let check = Alcotest.check

let touch_pages_program pages =
  let m = Modul.create () in
  ignore (B.global_zero m "arr" (1024 * pages));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         (* one store into each 1 KB page *)
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm pages) (fun i ->
             let addr = B.addr b (Value.Glob "arr") ~index:i ~scale:1024 in
             B.store b ~addr (B.imm 1));
         B.ret b (Some (B.imm 0))));
  m

let test_paging_counts () =
  let build () = touch_pages_program 16 in
  let c = Measure.prepare ~build Profile.Baseline in
  let r = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  (* at least 16 data pages plus code/stack pages, all dirtied data pages
     written out at segment close *)
  Alcotest.(check bool) "page-ins >= 16" true (r.Measure.page_ins >= 16);
  Alcotest.(check bool) "page-outs >= 16" true (r.Measure.page_outs >= 16);
  Alcotest.(check bool) "paging cycles >= 1130*pages" true
    (r.Measure.paging_cycles >= 1130 * 16)

let test_paging_asymmetry () =
  (* the same program pays much more for paging on risc0 than on sp1 *)
  let build () = touch_pages_program 32 in
  let c = Measure.prepare ~build Profile.Baseline in
  let r0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  let s1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 c in
  Alcotest.(check bool) "risc0 paging >> sp1 paging" true
    (r0.Measure.paging_cycles > 4 * s1.Measure.paging_cycles)

let test_segmentation () =
  (* a long-running loop must split into several segments *)
  let m () =
    let m = Modul.create () in
    ignore
      (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
           let s = B.var b Ty.I32 (B.imm 0) in
           B.for_ b ~from:(B.imm 0) ~bound:(B.imm 400_000) (fun i ->
               B.set b Ty.I32 s (B.add b (Value.Reg s) i));
           B.ret b (Some (Value.Reg s))));
    m
  in
  let c = Measure.prepare ~build:m Profile.Baseline in
  let r = Measure.run_zkvm Zkopt_zkvm.Config.risc0 c in
  Alcotest.(check bool) "multi-segment" true (r.Measure.segments >= 2);
  Alcotest.(check bool) "cycles > limit" true
    (r.Measure.cycles > Zkopt_zkvm.Config.risc0.Zkopt_zkvm.Config.segment_limit)

let test_prover_monotone () =
  (* more cycles never prove faster *)
  let time n =
    let build () = touch_pages_program n in
    let c = Measure.prepare ~build Profile.Baseline in
    (Measure.run_zkvm Zkopt_zkvm.Config.risc0 c).Measure.prove_time_s
  in
  Alcotest.(check bool) "monotone" true (time 64 >= time 4)

let test_fault_injection_oracle () =
  (* with the injected SP1 bug and dense shard boundaries, the silently
     truncated run verifies but fails the differential oracle *)
  let w = Zkopt_workloads.Workload.find "factorial" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Full in
  let c = Measure.prepare ~build Profile.Baseline in
  let healthy = Measure.run_zkvm Zkopt_zkvm.Config.sp1 c in
  let dense =
    { Zkopt_zkvm.Config.sp1 with Zkopt_zkvm.Config.segment_limit = 1 lsl 12 }
  in
  let faulty =
    Measure.run_zkvm ~fault:Zkopt_zkvm.Executor.Silent_halt_on_boundary_jalr
      dense c
  in
  (* if the fault fired, the checksum differs and the cycle count shrank *)
  if faulty.Measure.exit_value <> healthy.Measure.exit_value then begin
    Alcotest.(check bool) "fewer cycles" true
      (faulty.Measure.cycles < healthy.Measure.cycles)
  end
  else
    (* boundary never hit a return — acceptable, the bug needs alignment *)
    ()

(* CPU model sanity *)

let test_cpu_div_expensive () =
  let build_with op () =
    let m = Modul.create () in
    ignore
      (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
           let s = B.var b Ty.I32 (B.imm 123456) in
           B.for_ b ~from:(B.imm 0) ~bound:(B.imm 5000) (fun i ->
               let v = B.bin b Ty.I32 op (Value.Reg s) (B.add b i (B.imm 3)) in
               B.set b Ty.I32 s v);
           B.ret b (Some (Value.Reg s))));
    m
  in
  let t op =
    let c = Measure.prepare ~build:(build_with op) Profile.Baseline in
    (Measure.run_cpu c).Measure.cpu_cycles
  in
  Alcotest.(check bool) "div slower than add on the CPU model" true
    (t Instr.Udiv > 2.0 *. t Instr.Add);
  (* ...but identical on the zkVM *)
  let zk op =
    let c = Measure.prepare ~build:(build_with op) Profile.Baseline in
    (Measure.run_zkvm Zkopt_zkvm.Config.sp1 c).Measure.cycles
  in
  Alcotest.(check int) "uniform cost on sp1" (zk Instr.Udiv) (zk Instr.Add)

(* ---- prover padding properties (qcheck) ---------------------------- *)

module Exec = Zkopt_zkvm.Executor
module Prover = Zkopt_zkvm.Prover
module Config = Zkopt_zkvm.Config

(* a synthetic executor result with the given per-segment user cycles:
   the prover model only reads the segment list *)
let synth_exec segs : Exec.result =
  let total = List.fold_left ( + ) 0 segs in
  {
    Exec.exit_value = 0l;
    total_cycles = total;
    user_cycles = total;
    paging_cycles = 0;
    page_ins = 0;
    page_outs = 0;
    segments =
      List.map (fun c -> { Exec.user_cycles = c; paging_cycles = 0 }) segs;
    retired = total;
    loads = 0;
    stores = 0;
    branches = 0;
    precompile_calls = 0;
    faulted = false;
  }

let prop_prover_min_po2_floor =
  QCheck.Test.make ~name:"every segment pads to at least 2^min_po2" ~count:100
    QCheck.(pair (int_range 8 16) (list_of_size Gen.(1 -- 8) (int_range 1 300_000)))
    (fun (po2, segs) ->
      let cfg = { Config.risc0 with Config.min_po2 = po2 } in
      let p = Prover.prove cfg (synth_exec segs) in
      p.Prover.padded_cycles_total >= List.length segs * (1 lsl po2)
      && p.Prover.segments = List.length segs)

let prop_prover_padding_monotone_minimal =
  QCheck.Test.make
    ~name:"pow2 padding is monotone in trace length, minimal, and a pow2"
    ~count:100
    QCheck.(pair (int_range 1 500_000) (int_range 0 100_000))
    (fun (c, d) ->
      let cfg = { Config.sp1 with Config.min_po2 = 10 } in
      let pad c =
        (Prover.prove cfg (synth_exec [ c ])).Prover.padded_cycles_total
      in
      let p = pad c in
      (* longer traces never pad to less *)
      pad (c + d) >= p
      (* minimality: never more than one doubling above max(actual, floor) *)
      && p < 2 * max c (1 lsl 10)
      (* and the padded size is an exact power of two *)
      && p land (p - 1) = 0)

let prop_prover_straggler_segment_cost =
  QCheck.Test.make
    ~name:"a straggler segment costs a full overhead + floor pad (fig. 13)"
    ~count:100
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 8) (int_range 1 2_000_000))
        (int_range 1 1_000) (int_range 0 1))
    (fun (segs, tail, which) ->
      (* Fig. 13's regex-match regression: the optimized build spills a
         few cycles past a shard boundary and the prover pays for a 20th
         shard instead of 16 — an entire extra overhead plus a table
         padded all the way up to the 2^min_po2 floor, for [tail] cycles
         of actual work *)
      let cfg = if which = 0 then Config.risc0 else Config.sp1 in
      let base = Prover.prove cfg (synth_exec segs) in
      let more = Prover.prove cfg (synth_exec (segs @ [ tail ])) in
      more.Prover.segments = base.Prover.segments + 1
      && more.Prover.padded_cycles_total
         >= base.Prover.padded_cycles_total + (1 lsl cfg.Config.min_po2)
      && more.Prover.time_s -. base.Prover.time_s
         >= cfg.Config.prove_segment_overhead_ns *. 1e-9)

let test_cache_and_predictor () =
  let cache = Zkopt_cpu.Cache.create () in
  (* sequential accesses: high hit rate after the first line touch *)
  for i = 0 to 4095 do
    ignore (Zkopt_cpu.Cache.access cache (Int32.of_int (4 * i)))
  done;
  Alcotest.(check bool) "mostly hits" true
    (cache.Zkopt_cpu.Cache.hits > 8 * cache.Zkopt_cpu.Cache.misses);
  let p = Zkopt_cpu.Predictor.create () in
  (* a always-taken branch becomes predictable *)
  for _ = 1 to 100 do
    ignore (Zkopt_cpu.Predictor.access p 0x1000l ~taken:true)
  done;
  Alcotest.(check bool) "learns" true (p.Zkopt_cpu.Predictor.mispredicts <= 2)

let tests =
  [
    Alcotest.test_case "paging counts" `Quick test_paging_counts;
    Alcotest.test_case "paging asymmetry r0/sp1" `Quick test_paging_asymmetry;
    Alcotest.test_case "segmentation" `Quick test_segmentation;
    Alcotest.test_case "prover monotone" `Quick test_prover_monotone;
    Alcotest.test_case "fault injection + oracle" `Quick test_fault_injection_oracle;
    Alcotest.test_case "cpu: div expensive, zk uniform" `Quick test_cpu_div_expensive;
    Alcotest.test_case "cache + predictor" `Quick test_cache_and_predictor;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_prover_min_po2_floor;
        prop_prover_padding_monotone_minimal;
        prop_prover_straggler_segment_cost;
      ]
