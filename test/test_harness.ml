(** Fault-tolerant sweep harness tests: error-taxonomy classification,
    retry with escalating fuel, checkpoint codec + kill/resume
    determinism, per-cell fault isolation, miscompile quarantine, the
    accounting oracles, and the failure budget. *)

open Zkopt_ir
open Zkopt_core
module H = Zkopt_harness.Harness
module Cell = Zkopt_harness.Cell
module Error = Zkopt_harness.Error
module Retry = Zkopt_harness.Retry
module Checkpoint = Zkopt_harness.Checkpoint
module Faultplan = Zkopt_harness.Faultplan
module B = Builder

let coord = { Error.program = "p"; profile = "prof"; vm = "-" }

(* A small sweep subset: 2 programs x 4 profiles = 8 cells, quick sizes. *)
let subset_programs = [ "fibonacci"; "factorial" ]

let subset_profiles =
  [
    Profile.Baseline;
    Profile.Single_pass "licm";
    Profile.Single_pass "mem2reg";
    Profile.Level Zkopt_passes.Catalog.O1;
  ]

let subset_cfg () =
  {
    (H.default ~size:Zkopt_workloads.Workload.Quick) with
    H.programs = Some subset_programs;
    profiles = Some subset_profiles;
  }

(** Canonical byte representation of an outcome's point set: one encoded
    line per point, sorted.  Two runs are "the same" iff these match. *)
let canonical (points : (string * string, Cell.point) Hashtbl.t) : string =
  Hashtbl.fold (fun _ p acc -> Checkpoint.encode_point p :: acc) points []
  |> List.sort compare |> String.concat "\n"

(* ---- error taxonomy ------------------------------------------------- *)

let test_classification () =
  let kind_of e =
    match Cell.protect ~coord (fun () -> raise e) with
    | Error err -> Error.kind_name err.Error.kind
    | Ok _ -> assert false
  in
  Alcotest.(check string) "emulator fuel" "out-of-fuel"
    (kind_of (Zkopt_riscv.Emulator.Out_of_fuel 42));
  Alcotest.(check string) "interp fuel" "out-of-fuel"
    (kind_of Interp.Out_of_fuel);
  Alcotest.(check string) "trap" "emulator-trap"
    (kind_of (Zkopt_riscv.Emulator.Trap "pc out of range"));
  Alcotest.(check string) "decode" "decode-error"
    (kind_of (Zkopt_riscv.Isa.Decode_error 0xdeadl));
  Alcotest.(check string) "asm" "asm-error"
    (kind_of (Zkopt_riscv.Asm.Asm_error "undefined symbol"));
  Alcotest.(check string) "isel" "isel-unsupported"
    (kind_of (Zkopt_riscv.Isel.Unsupported "i64 mulhu"));
  Alcotest.(check string) "verify" "ill-formed-ir"
    (kind_of (Verify.Ill_formed "use before def"));
  Alcotest.(check string) "divergence" "miscompile"
    (kind_of (Error.Divergence { expected = 1L; got = 2L; oracle = "test" }));
  Alcotest.(check string) "accounting" "accounting-violation"
    (kind_of (Error.Accounting "paging mismatch"));
  Alcotest.(check string) "other" "uncaught" (kind_of (Failure "boom"));
  (* retry policy keys off the taxonomy, not strings *)
  Alcotest.(check bool) "fuel retryable" true
    (Error.retryable (Error.classify (Zkopt_riscv.Emulator.Out_of_fuel 1)));
  Alcotest.(check bool) "trap not retryable" false
    (Error.retryable (Error.classify (Zkopt_riscv.Emulator.Trap "x")));
  (* the In_vm wrapper refines the vm coordinate and classifies through *)
  match
    Cell.protect ~coord (fun () ->
        raise (Error.In_vm ("sp1", Zkopt_riscv.Emulator.Trap "t")))
  with
  | Error err ->
    Alcotest.(check string) "vm refined" "sp1" err.Error.coord.Error.vm;
    Alcotest.(check string) "wrapped kind" "emulator-trap"
      (Error.kind_name err.Error.kind)
  | Ok _ -> assert false

(* ---- retry with escalating fuel ------------------------------------- *)

let test_retry_escalation () =
  let w = Zkopt_workloads.Workload.find "factorial" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let c = Measure.prepare ~build Profile.Baseline in
  let reference = Measure.run_zkvm Zkopt_zkvm.Config.sp1 c in
  (* an initial budget far too small for the workload must escalate *)
  let policy = { Retry.max_attempts = 24; initial_fuel = 100; growth = 2 } in
  let r, attempts =
    Retry.run policy (fun ~fuel -> Measure.run_zkvm ~fuel Zkopt_zkvm.Config.sp1 c)
  in
  Alcotest.(check bool) "needed escalation" true (attempts > 1);
  Alcotest.(check int) "same cycles as unbounded run" reference.Measure.cycles
    r.Measure.cycles;
  Alcotest.(check int64) "same checksum" reference.Measure.exit_value
    r.Measure.exit_value;
  (* deterministic faults are not retried *)
  let calls = ref 0 in
  (try
     ignore
       (Retry.run policy (fun ~fuel:_ ->
            incr calls;
            raise (Zkopt_riscv.Emulator.Trap "genuine fault")))
   with Zkopt_riscv.Emulator.Trap _ -> ());
  Alcotest.(check int) "no retry on trap" 1 !calls;
  (* a budget that can never stretch far enough gives up after max_attempts *)
  let calls = ref 0 in
  (try
     ignore
       (Retry.run
          { Retry.max_attempts = 3; initial_fuel = 1; growth = 2 }
          (fun ~fuel -> incr calls; raise (Zkopt_riscv.Emulator.Out_of_fuel fuel)))
   with Zkopt_riscv.Emulator.Out_of_fuel _ -> ());
  Alcotest.(check int) "bounded attempts" 3 !calls

let test_sweep_retries_fuel () =
  (* the harness retries a fuel-starved cell and still produces the same
     point as a generously fueled run *)
  let cfg =
    {
      (subset_cfg ()) with
      H.programs = Some [ "factorial" ];
      profiles = Some [ Profile.Baseline ];
      retry = { Retry.max_attempts = 24; initial_fuel = 1000; growth = 2 };
    }
  in
  let o = H.run cfg in
  Alcotest.(check int) "one point" 1 (Hashtbl.length o.H.points);
  Alcotest.(check bool) "fuel was escalated" true (o.H.retries > 0);
  Alcotest.(check (list string)) "nothing quarantined" []
    (List.map Error.to_string o.H.quarantined);
  let unconstrained = H.run { cfg with H.retry = Retry.default } in
  Alcotest.(check string) "same point either way"
    (canonical unconstrained.H.points)
    (canonical o.H.points)

(* ---- checkpoint codec + kill/resume --------------------------------- *)

let test_checkpoint_codec () =
  let o = H.run (subset_cfg ()) in
  Alcotest.(check int) "8 cells" 8 (Hashtbl.length o.H.points);
  Hashtbl.iter
    (fun _ p ->
      match Checkpoint.decode_point (Checkpoint.encode_point p) with
      | None -> Alcotest.fail "decode failed"
      | Some q ->
        Alcotest.(check string) "exact round trip"
          (Checkpoint.encode_point p) (Checkpoint.encode_point q);
        Alcotest.(check bool) "structural equality" true (p = q))
    o.H.points

let test_kill_resume_determinism () =
  let path = Filename.temp_file "zkopt_ckpt" ".txt" in
  Sys.remove path;
  let uninterrupted = H.run (subset_cfg ()) in
  (* phase 1: measure only 3 of the 8 cells, then "die" *)
  let cfg = { (subset_cfg ()) with H.checkpoint = Some path } in
  let partial = H.run { cfg with H.limit = Some 3; checkpoint_every = 1 } in
  Alcotest.(check bool) "stopped early" false partial.H.completed;
  Alcotest.(check int) "3 cells done" 3 (Hashtbl.length partial.H.points);
  (* simulate a kill mid-write: a truncated trailing line must be ignored *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "factorial\tmisc\ttruncated-by-kill";
  close_out oc;
  (* phase 2: resume — skips the 3 done cells, finishes the rest *)
  let resumed = H.run cfg in
  Alcotest.(check bool) "completed" true resumed.H.completed;
  Alcotest.(check int) "resumed cells" 3 resumed.H.resumed;
  Alcotest.(check int) "newly executed" 5 resumed.H.executed;
  Alcotest.(check string) "byte-identical to the uninterrupted run"
    (canonical uninterrupted.H.points)
    (canonical resumed.H.points);
  Sys.remove path

(* ---- fault injection, isolation, quarantine ------------------------- *)

let test_fault_isolation () =
  let clean = H.run (subset_cfg ()) in
  let plan =
    Faultplan.inject
      [
        ( { Faultplan.program = "factorial"; profile = "licm"; vm = "sp1" },
          Faultplan.Truncated_final_segment );
        ( { Faultplan.program = "fibonacci"; profile = "baseline"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
      ]
  in
  let faulty = H.run { (subset_cfg ()) with H.faultplan = plan } in
  (* the sweep survives and quarantines exactly the injected cells *)
  let cells =
    List.map
      (fun (e : Error.t) -> (e.Error.coord.Error.program, e.Error.coord.Error.profile))
      faulty.H.quarantined
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "quarantine names exactly the injected cells"
    [ ("factorial", "licm"); ("fibonacci", "baseline") ]
    cells;
  Alcotest.(check int) "other cells all survive" 6 (Hashtbl.length faulty.H.points);
  (* ...and their metrics are unchanged versus the clean run *)
  Hashtbl.iter
    (fun key p ->
      match Hashtbl.find_opt clean.H.points key with
      | None -> Alcotest.fail "unexpected extra point"
      | Some q ->
        Alcotest.(check string) "metrics unchanged"
          (Checkpoint.encode_point q) (Checkpoint.encode_point p))
    faulty.H.points

let test_miscompile_quarantined_not_fatal () =
  (* the old sweep died with [failwith "MISCOMPILE: ..."]; now a
     checksum-divergent cell is quarantined and the sweep finishes *)
  let plan =
    Faultplan.inject
      [
        ( { Faultplan.program = "factorial"; profile = "licm"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
      ]
  in
  let o = H.run { (subset_cfg ()) with H.faultplan = plan } in
  Alcotest.(check bool) "sweep completed" true o.H.completed;
  Alcotest.(check int) "one quarantined cell" 1 (List.length o.H.quarantined);
  (match o.H.quarantined with
  | [ { Error.kind = Error.Miscompile { oracle; _ }; _ } ] ->
    Alcotest.(check bool) "caught by a differential oracle" true
      (oracle = "risc0-vs-sp1" || oracle = "baseline-differential")
  | _ -> Alcotest.fail "expected a Miscompile classification");
  Alcotest.(check int) "remaining cells intact" 7 (Hashtbl.length o.H.points);
  Alcotest.(check bool) "report names the cell" true
    (Astring_contains.contains
       (H.quarantine_report o.H.quarantined)
       "factorial/licm")

(* ---- accounting oracles --------------------------------------------- *)

let touch_pages_program pages =
  let m = Modul.create () in
  ignore (B.global_zero m "arr" (1024 * pages));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm pages) (fun i ->
             let addr = B.addr b (Value.Glob "arr") ~index:i ~scale:1024 in
             B.store b ~addr (B.imm 1));
         B.ret b (Some (B.imm 0))));
  m

let test_accounting_oracle () =
  let build () = touch_pages_program 16 in
  let c = Measure.prepare ~build Profile.Baseline in
  let cfg = Zkopt_zkvm.Config.risc0 in
  let healthy = Measure.run cfg c in
  Alcotest.(check bool) "healthy run reconciles" true
    (Cell.check_accounting cfg healthy = Ok ());
  let dropped =
    Measure.run ~fault:Zkopt_zkvm.Executor.Dropped_page_out cfg c
  in
  Alcotest.(check bool) "dropped page-out caught" true
    (Result.is_error (Cell.check_accounting cfg dropped));
  let truncated =
    Measure.run ~fault:Zkopt_zkvm.Executor.Truncated_final_segment
      cfg c
  in
  Alcotest.(check bool) "truncated final segment caught" true
    (Result.is_error (Cell.check_accounting cfg truncated))

(* ---- failure budget -------------------------------------------------- *)

let test_failure_budget () =
  let plan =
    Faultplan.inject
      [
        ( { Faultplan.program = "fibonacci"; profile = "baseline"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
        ( { Faultplan.program = "factorial"; profile = "baseline"; vm = "risc0" },
          Faultplan.Corrupt_exit_value );
      ]
  in
  match
    H.run { (subset_cfg ()) with H.faultplan = plan; failure_budget = 1 }
  with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception H.Budget_exceeded errs ->
    Alcotest.(check int) "aborted at the second failure" 2 (List.length errs)

(* ---- deterministic seeded fault-site selector ----------------------- *)

let test_faultplan_selector () =
  let axes =
    Faultplan.random ~seed:11 ~count:4 ~programs:subset_programs
      ~profiles:[ "baseline"; "licm" ] ~vms:[ "risc0"; "sp1" ]
      ~kinds:[ Faultplan.Dropped_page_out; Faultplan.Corrupt_exit_value ]
  in
  let again =
    Faultplan.random ~seed:11 ~count:4 ~programs:subset_programs
      ~profiles:[ "baseline"; "licm" ] ~vms:[ "risc0"; "sp1" ]
      ~kinds:[ Faultplan.Dropped_page_out; Faultplan.Corrupt_exit_value ]
  in
  Alcotest.(check int) "4 sites" 4 (List.length (Faultplan.sites axes));
  Alcotest.(check bool) "same seed, same plan" true
    (Faultplan.sites axes = Faultplan.sites again);
  let sites = List.map fst (Faultplan.sites axes) in
  Alcotest.(check int) "sites distinct"
    (List.length sites)
    (List.length (List.sort_uniq compare sites))

(* ---- multicore: differential oracle, fault partition, resume -------- *)

(* A seeded sample of [n] profiles (baseline always included, for the
   baseline-differential oracle). *)
let seeded_profile_sample ~seed n =
  let rng = Random.State.make [| seed |] in
  let arr =
    Array.of_list (List.filter (fun p -> p <> Profile.Baseline) Profile.all_71)
  in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Profile.Baseline :: Array.to_list (Array.sub arr 0 (n - 1))

let test_parallel_matches_sequential () =
  (* the differential oracle for the multicore engine: 2 programs x 21
     seeded profiles = 42 cells; a 4-domain run must produce
     cell-for-cell identical metrics to the sequential run *)
  let profiles = seeded_profile_sample ~seed:2026 21 in
  let cfg jobs =
    {
      (H.default ~size:Zkopt_workloads.Workload.Quick) with
      H.programs = Some subset_programs;
      profiles = Some profiles;
      jobs;
    }
  in
  let seq = H.run (cfg 1) in
  let par = H.run (cfg 4) in
  Alcotest.(check int) "42 cells" 42 (Hashtbl.length seq.H.points);
  Alcotest.(check (list string)) "nothing quarantined" []
    (List.map Error.to_string par.H.quarantined);
  Alcotest.(check string) "cell-for-cell identical metrics"
    (canonical seq.H.points) (canonical par.H.points);
  (* the content-addressed cache dedupes profiles that leave a program
     untouched, and never changes results while doing so *)
  Alcotest.(check bool) "cache deduped some compiles" true
    (par.H.cache_stats.Zkopt_exec.Cache.hits > 0)

let test_parallel_faults_exactly_once () =
  (* under random worker counts and injected faults, every cell lands in
     exactly one of points / quarantine — none lost, none duplicated *)
  let rng = Random.State.make [| 31337 |] in
  let names = List.map Profile.name subset_profiles in
  for trial = 1 to 3 do
    let jobs = 1 + Random.State.int rng 8 in
    let plan =
      Faultplan.random ~seed:(100 + trial) ~count:3 ~programs:subset_programs
        ~profiles:names ~vms:[ "risc0"; "sp1" ]
        ~kinds:[ Faultplan.Dropped_page_out; Faultplan.Corrupt_exit_value ]
    in
    let o = H.run { (subset_cfg ()) with H.faultplan = plan; jobs } in
    let measured = Hashtbl.fold (fun k _ acc -> k :: acc) o.H.points []
    and failed =
      List.map
        (fun (e : Error.t) ->
          (e.Error.coord.Error.program, e.Error.coord.Error.profile))
        o.H.quarantined
    in
    let expected =
      List.concat_map
        (fun p -> List.map (fun prof -> (p, Profile.name prof)) subset_profiles)
        subset_programs
      |> List.sort compare
    in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "trial %d (jobs=%d): exact partition" trial jobs)
      expected
      (List.sort compare (measured @ failed))
  done

let test_parallel_kill_resume () =
  (* kill a 3-domain sweep mid-run; the resumed 3-domain run replays to
     the same completed-cell set as an uninterrupted sequential run *)
  let path = Filename.temp_file "zkopt_ckpt_par" ".txt" in
  Sys.remove path;
  let uninterrupted = H.run (subset_cfg ()) in
  let cfg = { (subset_cfg ()) with H.checkpoint = Some path; jobs = 3 } in
  let partial = H.run { cfg with H.limit = Some 3; checkpoint_every = 1 } in
  Alcotest.(check bool) "stopped early" false partial.H.completed;
  Alcotest.(check int) "3 cells done" 3 (Hashtbl.length partial.H.points);
  let resumed = H.run cfg in
  Alcotest.(check bool) "completed" true resumed.H.completed;
  Alcotest.(check int) "resumed cells" 3 resumed.H.resumed;
  Alcotest.(check int) "newly executed" 5 resumed.H.executed;
  Alcotest.(check string) "identical to the uninterrupted sequential run"
    (canonical uninterrupted.H.points)
    (canonical resumed.H.points);
  Sys.remove path

let tests =
  [
    Alcotest.test_case "error taxonomy classification" `Quick test_classification;
    Alcotest.test_case "retry escalates fuel" `Quick test_retry_escalation;
    Alcotest.test_case "sweep-level fuel retry" `Quick test_sweep_retries_fuel;
    Alcotest.test_case "checkpoint codec round trip" `Quick test_checkpoint_codec;
    Alcotest.test_case "kill/resume determinism" `Quick
      test_kill_resume_determinism;
    Alcotest.test_case "fault isolation across cells" `Quick test_fault_isolation;
    Alcotest.test_case "miscompile quarantined, sweep survives" `Quick
      test_miscompile_quarantined_not_fatal;
    Alcotest.test_case "accounting oracles" `Quick test_accounting_oracle;
    Alcotest.test_case "failure budget aborts" `Quick test_failure_budget;
    Alcotest.test_case "seeded faultplan selector" `Quick test_faultplan_selector;
    Alcotest.test_case "parallel sweep matches sequential (42 cells)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "no lost/duplicated cells under faults" `Quick
      test_parallel_faults_exactly_once;
    Alcotest.test_case "parallel kill/resume determinism" `Quick
      test_parallel_kill_resume;
  ]
