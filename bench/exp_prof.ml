(** Profile-diff versions of the paper's case studies: instead of
    reporting only that licm/inlining/simplifycfg moved the totals
    (Fig. 9 / Fig. 10 / Fig. 12), attribute every cycle to its IR site
    and show *where* the regression lives.

    - Fig. 9: licm's cycle growth is dominated by paging charged at the
      loop that now holds the hoisted (and spilled) address values.
    - Fig. 10: the inline delta is memory traffic at the loop body.  In
      this model the sign flips relative to the paper (our regalloc
      spills every value live across a call, so the *baseline* carries
      the per-call lw/sw and inlining deletes it), but the attribution
      shows the same mechanism: the moved cycles are spill loads/stores
      at the work loop, not call overhead.
    - Fig. 12: simplifycfg's select wins CPU cycles at the abs() site
      while losing zkVM exec cycles at the very same site. *)

open Zkopt_core
open Zkopt_report
module P = Zkopt_prof.Profile
module Diff = Zkopt_prof.Diff
module Render = Zkopt_prof.Render
module Driver = Zkopt_prof.Driver

let profile_pair ~build ~base_profile ~opt_profile cfg =
  let base_c = Measure.prepare ~build base_profile in
  let opt_c = Measure.prepare ~build opt_profile in
  let _, base_p =
    Driver.profile_all ~label:(Profile.name base_profile) cfg base_c
  in
  let _, opt_p =
    Driver.profile_all ~label:(Profile.name opt_profile) cfg opt_c
  in
  (base_p, opt_p)

let top_entry dim ~base ~cand =
  match Diff.by_dim dim ~base ~cand with
  | e :: _ when e.Diff.delta <> 0.0 -> Some e
  | _ -> None

let note_top dim ~base ~cand =
  match top_entry dim ~base ~cand with
  | Some e ->
    Report.note "top %s delta: %-24s %+.0f cycles" (P.dim_name dim)
      (Zkopt_prof.Site.to_string e.Diff.site)
      e.Diff.delta
  | None -> Report.note "top %s delta: (none moved)" (P.dim_name dim)

let licm () =
  Report.section "exp_prof — Fig. 9 mechanism: where licm's cycles went";
  Report.paper
    "licm hoists %d address computations past the register file; the \
     regression should be paging/spill traffic at the hoisted header, \
     not the loop bodies" 24;
  let build = Exp_cases.licm_program ~depth:1 ~arrays:24 ~n:300 in
  let base, cand =
    profile_pair ~build ~base_profile:Profile.Baseline
      ~opt_profile:
        (Profile.Custom ([ "licm" ], Zkopt_passes.Pass.standard_config))
      Zkopt_zkvm.Config.risc0
  in
  Render.diff ~top:5 ~base ~cand ();
  note_top P.Exec ~base ~cand;
  note_top P.Paging_in ~base ~cand;
  note_top P.Paging_out ~base ~cand;
  let paging_delta =
    Diff.total_delta P.Paging_in ~base ~cand
    +. Diff.total_delta P.Paging_out ~base ~cand
  in
  Report.note "paging delta %+.0f cycles (paper: licm inflates paging)"
    paging_delta

(* per-site mem_ops is not a Diff dimension (it is a count, not cycles),
   so rank it by hand *)
let top_mem_site ~(base : P.t) ~(cand : P.t) =
  let tbl = Hashtbl.create 32 in
  let add sign (p : P.t) =
    Hashtbl.iter
      (fun s (c : P.counters) ->
        let cur =
          match Hashtbl.find_opt tbl s with Some v -> v | None -> 0
        in
        Hashtbl.replace tbl s (cur + (sign * c.P.mem_ops)))
      p.P.sites
  in
  add (-1) base;
  add 1 cand;
  Hashtbl.fold
    (fun s d best ->
      match best with
      | Some (_, bd) when abs bd >= abs d -> best
      | _ -> Some (s, d))
    tbl None

let inline_spills () =
  Report.section "exp_prof — Fig. 10 mechanism: inlining and spill traffic";
  Report.paper
    "the paper's inline regression is spill lw/sw in the u64 work() \
     loop; our regalloc stacks live-across-call values instead, so the \
     same traffic sits on the baseline side — the diff localizes it to \
     the work loop either way";
  let w = Zkopt_workloads.Workload.find "tailcall" in
  let build () =
    w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Full
  in
  let cfg_inl =
    { Zkopt_passes.Pass.standard_config with inline_threshold = 5000 }
  in
  let base, cand =
    profile_pair ~build ~base_profile:Profile.Baseline
      ~opt_profile:(Profile.Custom ([ "inline" ], cfg_inl))
      Zkopt_zkvm.Config.risc0
  in
  Render.diff ~top:5 ~base ~cand ();
  note_top P.Exec ~base ~cand;
  (match top_mem_site ~base ~cand with
  | Some (s, d) ->
    Report.note "top memory-op delta: %-24s %+d lw/sw"
      (Zkopt_prof.Site.to_string s) d
  | None -> ());
  let mem_base =
    Hashtbl.fold (fun _ c a -> a + c.P.mem_ops) base.P.sites 0
  in
  let mem_cand =
    Hashtbl.fold (fun _ c a -> a + c.P.mem_ops) cand.P.sites 0
  in
  Report.note "attributed memory ops: baseline %d, inlined %d (x%.2f)"
    mem_base mem_cand
    (float_of_int mem_cand /. float_of_int (max 1 mem_base))

let simplifycfg () =
  Report.section "exp_prof — Fig. 12 mechanism: one site, two verdicts";
  Report.paper
    "simplifycfg's select removes mispredicts (CPU wins) but executes \
     both arms every iteration (zkVM loses) — the profile diff shows \
     both effects at the same abs() site";
  let build = Exp_cases.abs_program 40_000 in
  let base, cand =
    profile_pair ~build ~base_profile:Profile.Baseline
      ~opt_profile:(Profile.Single_pass "simplifycfg")
      Zkopt_zkvm.Config.risc0
  in
  Render.diff ~top:5 ~base ~cand ();
  note_top P.Exec ~base ~cand;
  note_top P.Cpu ~base ~cand;
  Report.note "zk exec delta %+.0f vs CPU delta %+.0f cycles"
    (Diff.total_delta P.Exec ~base ~cand)
    (Diff.total_delta P.Cpu ~base ~cand)

let run () =
  licm ();
  inline_spills ();
  simplifycfg ()
