(** Settlement experiment: the execution metric and the settled cost
    disagree on whether an optimization paid off.

    The kernel below has a tiny data working set but a hot inner loop
    whose body dominates execution.  Fully unrolling the inner loop
    removes its control overhead, so *user* cycles drop — but the
    unrolled body is ~16x the code, and on risc0's paging model (1 KB
    pages at 1130 cycles per page event, re-paged every segment) the
    extra code pages cost more than the overhead saved: total cycles —
    the sweep's cells metric — regress.

    Segments, however, close on user cycles alone (2^20 on risc0).
    Sized so the baseline lands just past one segment limit, the unroll
    pulls user cycles back under it: two segments become one, which
    deletes a ~0.9 s per-segment prover overhead *and* the entire
    aggregation level that folded the two segment proofs.  The settled
    cost (prover + aggregation + verification gas) drops by a third
    while the cells verdict calls the same transform a regression.

    The trip-count window where the boundary crossing happens is found
    by calibration (two probe runs per profile fit a linear cycle
    model), not baked in, so the experiment survives codegen changes. *)

open Zkopt_ir
open Zkopt_core
open Zkopt_report
module B = Builder
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module S = Zkopt_settle.Settle

let () = Zkopt_valida.Vbackend.ensure ()

(* ------------------------------------------------------------------ *)
(* The boundary kernel                                                 *)
(* ------------------------------------------------------------------ *)

(* [n] outer iterations of a [trip]-iteration inner loop whose body is
   [body] dependent xor/add pairs on one accumulator.  No arrays: the
   data working set stays a handful of pages, so code paging dominates
   the paging bill and segment re-paging is cheap. *)
let trip = 64
let body = 30

let kernel ~n () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let s = B.var b Ty.I32 (B.imm 1) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm trip) (fun j ->
                 let t = B.add b i j in
                 for k = 0 to body - 1 do
                   let v =
                     B.xor b (Value.Reg s)
                       (B.imm ((k * 2654435761) lor 0x1234567))
                   in
                   B.set b Ty.I32 s (B.add b v t)
                 done));
         B.ret b (Some (Value.Reg s))));
  m

(* full unroll of the inner loop only: trip * body_size must clear the
   threshold while the outer loop (huge body once unrolled) must not *)
let unroll_profile =
  Profile.Custom
    ( [ "loop-unroll"; "sccp"; "dce"; "simplifycfg" ],
      { Zkopt_passes.Pass.standard_config with unroll_threshold = 16_384 } )

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let measure (b : Backend.t) ~n profile =
  let m = Measure.prepare_ir ~build:(kernel ~n) profile in
  let c = b.Backend.compile m in
  let r = c.Backend.measure ~vm:b.Backend.name () in
  (match r.Backend.accounting with
  | Ok () -> ()
  | Error e -> failwith (b.Backend.name ^ ": accounting: " ^ e));
  r

let user_cycles (r : Backend.measurement) =
  r.Backend.zk.Measure.cycles - r.Backend.zk.Measure.paging_cycles

(* Fit user(n) ~ a + u*n from two probes and return the first n whose
   predicted user-cycle count crosses [limit]. *)
let crossing (b : Backend.t) profile ~limit =
  let n1 = 64 and n2 = 96 in
  let u1 = user_cycles (measure b ~n:n1 profile) in
  let u2 = user_cycles (measure b ~n:n2 profile) in
  let per = float_of_int (u2 - u1) /. float_of_int (n2 - n1) in
  let a = float_of_int u1 -. (per *. float_of_int n1) in
  (int_of_float (ceil ((float_of_int limit -. a) /. per)), per)

(* ------------------------------------------------------------------ *)
(* The study                                                           *)
(* ------------------------------------------------------------------ *)

let pct base v =
  (float_of_int v /. float_of_int base -. 1.0) *. 100.0

let run () =
  Report.section
    "Settlement — cells and settled cost disagree at a segment boundary";
  Report.paper
    "segments close on user cycles alone, so a code-growing unroll can \
     regress total cycles (paging) while deleting a segment: one fewer \
     0.9 s prover overhead and no aggregation level; the settled \
     objective flips the verdict";
  let b = Registry.find "risc0" in
  let limit = 1 lsl 20 in
  let n_base, per_base = crossing b Profile.Baseline ~limit in
  let n_unroll, per_unroll = crossing b unroll_profile ~limit in
  Report.note
    "calibration: baseline %.0f user cycles/outer-iter (crosses 2^20 at \
     n=%d); unrolled %.0f (crosses at n=%d); window width %d"
    per_base n_base per_unroll n_unroll (n_unroll - n_base);
  let inversions = ref 0 in
  let rows =
    List.map
      (fun n ->
        let rb = measure b ~n Profile.Baseline in
        let ru = measure b ~n unroll_profile in
        if
          not
            (Int64.equal rb.Backend.zk.Measure.exit_value
               ru.Backend.zk.Measure.exit_value)
        then failwith "exit divergence between baseline and unrolled";
        let sb = S.price ~backend:b.Backend.name rb in
        let su = S.price ~backend:b.Backend.name ru in
        let dcells = pct rb.Backend.zk.Measure.cycles ru.Backend.zk.Measure.cycles in
        let dsettled = pct sb.S.settled_cost su.S.settled_cost in
        let inverted =
          (dcells > 0.0 && dsettled < 0.0) || (dcells < 0.0 && dsettled > 0.0)
        in
        if inverted then incr inversions;
        [ string_of_int n;
          Printf.sprintf "%d+%d" (user_cycles rb)
            rb.Backend.zk.Measure.paging_cycles;
          Printf.sprintf "%d+%d" (user_cycles ru)
            ru.Backend.zk.Measure.paging_cycles;
          Printf.sprintf "%d->%d" sb.S.segments su.S.segments;
          Printf.sprintf "%+.2f%%" dcells;
          string_of_int sb.S.settled_cost;
          string_of_int su.S.settled_cost;
          Printf.sprintf "%+.1f%%" dsettled;
          (if inverted then "INVERTED" else "agree") ])
      (List.init 6 (fun i -> n_base - 1 + i))
  in
  Report.table
    ~headers:
      [ "n"; "base user+paging"; "unroll user+paging"; "segs";
        "cells delta"; "settled base"; "settled unroll"; "settled delta";
        "verdict" ]
    rows;
  Report.note
    "%d of 6 trip counts invert the verdict (cells regression, settled \
     win) on %s"
    !inversions b.Backend.name;
  if !inversions = 0 then
    Report.note
      "  (no inversion in this window: calibration drifted; widen the scan)"
