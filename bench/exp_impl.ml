(** Implication artifacts: Fig. 13 (zkVM-aware modified -O3 vs stock
    -O3 across all 58 programs), Fig. 14 (median durations, NPB,
    unoptimized) and Table 5 (baseline statistics). *)

open Zkopt_core
open Zkopt_report
module Stats = Zkopt_stats.Stats

let fig13 ~size sweep =
  Report.section "Fig. 13 — modified (zkVM-aware) -O3 vs stock -O3, all 58";
  Report.paper
    "R0: 39/58 programs at least +1%% exec (avg +4.6%%), up to +45%% \
     (fibonacci), 2 regressions; SP1: 19 improved (avg +1%%); prove \
     improves up to 13%% (SP1) / 7%% (R0); worst regression regex-match \
     +27.3%% prove on SP1 via 20 shards instead of 16";
  let rows = ref [] in
  let deltas_r0 = ref [] and deltas_sp1 = ref [] in
  let improved_r0 = ref 0 and improved_sp1 = ref 0 in
  let regressed_r0 = ref 0 and regressed_sp1 = ref 0 in
  List.iter
    (fun (w : Zkopt_workloads.Workload.t) ->
      let build () = w.Zkopt_workloads.Workload.build size in
      let o3 = Sweep.get sweep w.Zkopt_workloads.Workload.name "-O3" in
      let zk = Measure.prepare ~build Profile.Zkvm_o3 in
      let z0 = Measure.run_zkvm Zkopt_zkvm.Config.risc0 zk in
      let z1 = Measure.run_zkvm Zkopt_zkvm.Config.sp1 zk in
      let o3_r0 = Sweep.r0 o3 and o3_sp1 = Sweep.sp1 o3 in
      let d0 =
        Stats.improvement_pct ~base:o3_r0.Measure.exec_time_s
          z0.Measure.exec_time_s
      in
      let d1 =
        Stats.improvement_pct ~base:o3_sp1.Measure.exec_time_s
          z1.Measure.exec_time_s
      in
      let p0 =
        Stats.improvement_pct ~base:o3_r0.Measure.prove_time_s
          z0.Measure.prove_time_s
      in
      let p1 =
        Stats.improvement_pct ~base:o3_sp1.Measure.prove_time_s
          z1.Measure.prove_time_s
      in
      deltas_r0 := d0 :: !deltas_r0;
      deltas_sp1 := d1 :: !deltas_sp1;
      if d0 >= 1.0 then incr improved_r0;
      if d0 <= -1.0 then incr regressed_r0;
      if d1 >= 1.0 then incr improved_sp1;
      if d1 <= -1.0 then incr regressed_sp1;
      if Float.abs d0 >= 2.0 || Float.abs d1 >= 2.0 then
        rows :=
          [ w.Zkopt_workloads.Workload.name; Report.pct d0; Report.pct p0;
            Report.pct d1; Report.pct p1;
            Printf.sprintf "%d->%d" o3_sp1.Measure.segments
              z1.Measure.segments ]
          :: !rows)
    sweep.Sweep.programs;
  Report.table
    ~headers:
      [ "program (|effect|>=2%)"; "R0 exec"; "R0 prove"; "SP1 exec";
        "SP1 prove"; "SP1 shards" ]
    (List.rev !rows);
  Report.note
    "R0: %d/58 improved >=1%% (avg %s), %d regressed; SP1: %d improved, %d regressed"
    !improved_r0
    (Report.pct (Stats.mean !deltas_r0))
    !regressed_r0 !improved_sp1 !regressed_sp1;
  Report.note "SP1 average exec change: %s" (Report.pct (Stats.mean !deltas_sp1))

let fig14 sweep =
  Report.section "Fig. 14 — median durations, NPB suite, unoptimized";
  Report.paper
    "zkVM execution and proving are orders of magnitude slower than native \
     (milliseconds vs seconds-to-hours)";
  let npb =
    List.filter
      (fun (w : Zkopt_workloads.Workload.t) ->
        String.equal w.Zkopt_workloads.Workload.suite "npb")
      sweep.Sweep.programs
  in
  let med f =
    Stats.median
      (List.map
         (fun (w : Zkopt_workloads.Workload.t) ->
           f (Sweep.get sweep w.Zkopt_workloads.Workload.name "baseline"))
         npb)
  in
  let native =
    med (fun p ->
        match p.Zkopt_harness.Cell.cpu with
        | Some c -> c.Measure.cpu_time_s
        | None -> nan)
  in
  Report.table
    ~headers:[ "operation"; "median (s)"; "vs native" ]
    [ [ "native (CPU model)"; Printf.sprintf "%.6f" native; "1x" ];
      [ "R0 execution"; Printf.sprintf "%.4f" (med (fun p -> (Sweep.r0 p).Measure.exec_time_s));
        Printf.sprintf "%.0fx" (med (fun p -> (Sweep.r0 p).Measure.exec_time_s) /. native) ];
      [ "R0 proving"; Printf.sprintf "%.2f" (med (fun p -> (Sweep.r0 p).Measure.prove_time_s));
        Printf.sprintf "%.0fx" (med (fun p -> (Sweep.r0 p).Measure.prove_time_s) /. native) ];
      [ "SP1 execution"; Printf.sprintf "%.4f" (med (fun p -> (Sweep.sp1 p).Measure.exec_time_s));
        Printf.sprintf "%.0fx" (med (fun p -> (Sweep.sp1 p).Measure.exec_time_s) /. native) ];
      [ "SP1 proving"; Printf.sprintf "%.2f" (med (fun p -> (Sweep.sp1 p).Measure.prove_time_s));
        Printf.sprintf "%.0fx" (med (fun p -> (Sweep.sp1 p).Measure.prove_time_s) /. native) ] ]

let tab5 sweep =
  Report.section "Table 5 — baseline execution/proving statistics (all 58)";
  Report.paper
    "R0 exec 0.04/157.70/4.51/0.34 (min/max/mean/median s), prove \
     0.53/2071/60.85/3.83; SP1 exec 0.06/41.81/1.70/0.23, prove \
     0.38/205.87/8.89/1.90";
  let stats vm metric =
    let vals =
      List.map
        (fun (w : Zkopt_workloads.Workload.t) ->
          Sweep.value vm metric
            (Sweep.get sweep w.Zkopt_workloads.Workload.name "baseline"))
        sweep.Sweep.programs
    in
    (Stats.minimum vals, Stats.maximum vals, Stats.mean vals, Stats.median vals)
  in
  let row label vm metric =
    let mn, mx, mean, med = stats vm metric in
    [ label; Report.f2 mn; Report.f2 mx; Report.f2 mean; Report.f2 med ]
  in
  Report.table
    ~headers:[ ""; "min"; "max"; "mean"; "median" ]
    [ row "R0 exec (s)" `R0 Sweep.Exec;
      row "R0 prove (s)" `R0 Sweep.Prove;
      row "SP1 exec (s)" `Sp1 Sweep.Exec;
      row "SP1 prove (s)" `Sp1 Sweep.Prove ];
  Report.note
    "(magnitudes are smaller than the paper's testbed — the simulated \
     inputs are reduced further; the R0-vs-SP1 ratios and spreads are the \
     reproduced shape)"

let run ~size sweep =
  fig13 ~size sweep;
  fig14 sweep;
  tab5 sweep
