(** The shared measurement sweep: 58 programs x 71 profiles x 2 zkVMs,
    plus the CPU model for the baseline and single-pass profiles (RQ3).
    Results are computed once and shared by every RQ1/RQ2/RQ3 block.

    The sweep itself runs on the fault-tolerant harness ([lib/harness]):
    a cell that miscompiles, traps, or fails an accounting oracle is
    quarantined with a typed error instead of aborting the remaining
    ~8,000 cells, fuel exhaustion retries with an escalating budget, and
    an optional checkpoint file makes a killed sweep resumable. *)

open Zkopt_core
module Harness = Zkopt_harness.Harness

type point = Zkopt_harness.Cell.point = {
  program : string;
  suite : string;
  profile : string;
  r0 : Measure.zk_metrics;
  sp1 : Measure.zk_metrics;
  cpu : Measure.cpu_metrics option;
}

type t = {
  points : (string * string, point) Hashtbl.t; (* (program, profile) *)
  programs : Zkopt_workloads.Workload.t list;
  size : Zkopt_workloads.Workload.size;
  quarantined : Zkopt_harness.Error.t list;
}

let profile_names = List.map Profile.name Profile.all_71

(** Run the full sweep.  [checkpoint] streams completed points to an
    append-only file and (unless [resume] is false) skips cells already
    recorded there, so an interrupted campaign continues where it
    stopped.  Failed cells land in [quarantined]; more than
    [failure_budget] of them aborts with {!Harness.Budget_exceeded}.
    [jobs] worker domains execute cells in parallel (results are
    identical at any job count); [cache] shares compiled artifacts
    across profiles, VM configs, and — with a disk-backed cache —
    across runs. *)
let run ?(progress = true) ?checkpoint ?(resume = true)
    ?(faultplan = Zkopt_harness.Faultplan.none) ?(failure_budget = 32)
    ?(jobs = 1) ?cache ~size () : t =
  let cfg =
    {
      (Harness.default ~size) with
      Harness.progress;
      checkpoint;
      resume;
      faultplan;
      failure_budget;
      jobs;
      cache;
    }
  in
  let o = Harness.run cfg in
  if progress && o.Harness.quarantined <> [] then
    Printf.eprintf "%s\n%!" (Harness.quarantine_report o.Harness.quarantined);
  {
    points = o.Harness.points;
    programs = o.Harness.programs;
    size;
    quarantined = o.Harness.quarantined;
  }

let get t program profile = Hashtbl.find t.points (program, profile)

type metric = Cycles | Exec | Prove

let value vm metric (p : point) =
  let zk = match vm with `R0 -> p.r0 | `Sp1 -> p.sp1 in
  match metric with
  | Cycles -> float_of_int zk.Measure.cycles
  | Exec -> zk.Measure.exec_time_s
  | Prove -> zk.Measure.prove_time_s

(** Improvement (%) of [profile] over the baseline for one program. *)
let improvement t ~program ~profile ~vm ~metric =
  let base = value vm metric (get t program "baseline") in
  let v = value vm metric (get t program profile) in
  Zkopt_stats.Stats.improvement_pct ~base v

(** CPU-model improvement (%) over baseline (RQ3). *)
let cpu_improvement t ~program ~profile =
  match ((get t program "baseline").cpu, (get t program profile).cpu) with
  | Some base, Some v ->
    Some
      (Zkopt_stats.Stats.improvement_pct ~base:base.Measure.cpu_time_s
         v.Measure.cpu_time_s)
  | _ -> None

let all_programs t = List.map (fun w -> w.Zkopt_workloads.Workload.name) t.programs
