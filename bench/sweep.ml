(** The shared measurement sweep: 58 programs x 71 profiles x N backends,
    plus the CPU model for the baseline and single-pass profiles (RQ3).
    Results are computed once and shared by every RQ1/RQ2/RQ3 block.

    The default backend list is the paper's risc0 + sp1 pair; cross-ISA
    experiments ([exp_isa]) pass an explicit list that includes the
    zk-native valida backend.

    The sweep itself runs on the fault-tolerant harness ([lib/harness]):
    a cell that miscompiles, traps, or fails an accounting oracle is
    quarantined with a typed error instead of aborting the remaining
    ~8,000 cells, fuel exhaustion retries with an escalating budget, and
    an optional checkpoint file makes a killed sweep resumable. *)

open Zkopt_core
module Harness = Zkopt_harness.Harness
module Cell = Zkopt_harness.Cell

type point = Zkopt_harness.Cell.point

type t = {
  points : (string * string, point) Hashtbl.t; (* (program, profile) *)
  programs : Zkopt_workloads.Workload.t list;
  size : Zkopt_workloads.Workload.size;
  quarantined : Zkopt_harness.Error.t list;
}

let profile_names = List.map Profile.name Profile.all_71

(** Run the full sweep.  [checkpoint] streams completed points to an
    append-only file and (unless [resume] is false) skips cells already
    recorded there, so an interrupted campaign continues where it
    stopped.  Failed cells land in [quarantined]; more than
    [failure_budget] of them aborts with {!Harness.Budget_exceeded}.
    [jobs] worker domains execute cells in parallel (results are
    identical at any job count); [cache] shares compiled artifacts
    across profiles, backends of a codegen family, and — with a
    disk-backed cache — across runs.  [backends] selects the measured
    backend columns (default: registry risc0 + sp1). *)
let run ?(progress = true) ?checkpoint ?(resume = true)
    ?(faultplan = Zkopt_harness.Faultplan.none) ?(failure_budget = 32)
    ?(jobs = 1) ?cache ?backends ~size () : t =
  let cfg =
    {
      (Harness.default ~size) with
      Harness.progress;
      checkpoint;
      resume;
      faultplan;
      failure_budget;
      jobs;
      cache;
      backends;
    }
  in
  let o = Harness.run cfg in
  if progress && o.Harness.quarantined <> [] then
    Printf.eprintf "%s\n%!" (Harness.quarantine_report o.Harness.quarantined);
  {
    points = o.Harness.points;
    programs = o.Harness.programs;
    size;
    quarantined = o.Harness.quarantined;
  }

let get t program profile = Hashtbl.find t.points (program, profile)

(** Backend selectors.  The classic pair keeps its short variant names;
    [`Vm name] addresses any backend column in the point. *)
type vm = [ `R0 | `Sp1 | `Vm of string ]

let vm_name : vm -> string = function
  | `R0 -> "risc0"
  | `Sp1 -> "sp1"
  | `Vm s -> s

let zk (p : point) (name : string) = Cell.zk p name
let zk_of (p : point) (vm : vm) = Cell.zk p (vm_name vm)
let r0 (p : point) = zk p "risc0"
let sp1 (p : point) = zk p "sp1"

type metric = Cycles | Exec | Prove

let value (vm : vm) metric (p : point) =
  let zk = zk_of p vm in
  match metric with
  | Cycles -> float_of_int zk.Measure.cycles
  | Exec -> zk.Measure.exec_time_s
  | Prove -> zk.Measure.prove_time_s

(** Improvement (%) of [profile] over the baseline for one program. *)
let improvement t ~program ~profile ~vm ~metric =
  let base = value vm metric (get t program "baseline") in
  let v = value vm metric (get t program profile) in
  Zkopt_stats.Stats.improvement_pct ~base v

(** CPU-model improvement (%) over baseline (RQ3). *)
let cpu_improvement t ~program ~profile =
  match
    ((get t program "baseline").Cell.cpu, (get t program profile).Cell.cpu)
  with
  | Some base, Some v ->
    Some
      (Zkopt_stats.Stats.improvement_pct ~base:base.Measure.cpu_time_s
         v.Measure.cpu_time_s)
  | _ -> None

let all_programs t = List.map (fun w -> w.Zkopt_workloads.Workload.name) t.programs
