(** RQ2 artifacts: Fig. 5 (standard -O levels), Fig. 6 (autotuning vs
    -O3 on the NPB and crypto suites), and the best/worst subsequence
    mining. *)

open Zkopt_report
open Zkopt_stats
module Catalog = Zkopt_passes.Catalog

let fig5 sweep =
  Report.section "Fig. 5 — standard optimization levels vs baseline";
  Report.paper
    "avg exec +60.5%% (R0) / +47.3%% (SP1); prove +55.5%% / +51.1%%; -O3 \
     best, -Oz weakest; -O0 regresses 19 programs on R0 and 9 on SP1";
  let rows =
    List.map
      (fun lvl ->
        let name = Catalog.level_name lvl in
        let avg vm metric =
          Stats.mean
            (List.map
               (fun p -> Sweep.improvement sweep ~program:p ~profile:name ~vm ~metric)
               (Sweep.all_programs sweep))
        in
        let regressions vm =
          List.length
            (List.filter
               (fun p ->
                 Sweep.improvement sweep ~program:p ~profile:name ~vm
                   ~metric:Sweep.Exec
                 < -1.0)
               (Sweep.all_programs sweep))
        in
        [ name;
          Report.pct (avg `R0 Sweep.Exec); Report.pct (avg `R0 Sweep.Prove);
          Report.pct (avg `Sp1 Sweep.Exec); Report.pct (avg `Sp1 Sweep.Prove);
          Report.int_s (regressions `R0); Report.int_s (regressions `Sp1) ])
      Catalog.all_levels
  in
  Report.table
    ~headers:
      [ "level"; "R0 exec"; "R0 prove"; "SP1 exec"; "SP1 prove"; "R0 regr";
        "SP1 regr" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 6 — autotuning NPB + crypto                                    *)
(* ------------------------------------------------------------------ *)

let autotune_suites ~size ~iterations sweep =
  Report.section
    (Printf.sprintf
       "Fig. 6 — autotuned pass sequences vs -O3, NPB & crypto suites (GA, %d evals/prog)"
       iterations);
  Report.paper
    "NPB: ~+17-19%% exec/prove on both zkVMs, npb-sp >2x; crypto: +10-12%% \
     exec, +3.5-6.8%% prove (precompiles flatten gains)";
  Report.note
    "(the paper runs OpenTuner for 1600 evaluations; scale with ZKOPT_GA_ITERS)";
  let progs =
    Zkopt_workloads.Workload.by_suite "npb"
    @ Zkopt_workloads.Workload.by_suite "a16z"
    @ Zkopt_workloads.Workload.by_suite "succinct"
  in
  let results = ref [] in
  let rows =
    List.concat_map
      (fun (w : Zkopt_workloads.Workload.t) ->
        List.map
          (fun (label, vm_cfg, vm) ->
            let build () = w.Zkopt_workloads.Workload.build size in
            let ga =
              Zkopt_autotune.Autotune.run ~seed:(Hashtbl.hash w.name)
                ~iterations
                ~cycles:(Zkopt_autotune.Autotune.zkvm_cycles ~build vm_cfg)
                ()
            in
            results := (w.name, label, ga) :: !results;
            (* measure the best genome end-to-end vs -O3 *)
            let o3 =
              Sweep.get sweep w.Zkopt_workloads.Workload.name "-O3"
            in
            let best_profile =
              Zkopt_core.Profile.Custom
                (ga.Zkopt_autotune.Autotune.best.genome,
                 Zkopt_passes.Pass.standard_config)
            in
            let c = Zkopt_core.Measure.prepare ~build best_profile in
            let tuned = Zkopt_core.Measure.run_zkvm vm_cfg c in
            let o3m = Sweep.zk_of o3 vm in
            let exec_speedup =
              Stats.improvement_pct
                ~base:o3m.Zkopt_core.Measure.exec_time_s
                tuned.Zkopt_core.Measure.exec_time_s
            in
            let prove_speedup =
              Stats.improvement_pct
                ~base:o3m.Zkopt_core.Measure.prove_time_s
                tuned.Zkopt_core.Measure.prove_time_s
            in
            [ w.Zkopt_workloads.Workload.name; label;
              Report.pct exec_speedup; Report.pct prove_speedup;
              string_of_int (List.length ga.Zkopt_autotune.Autotune.best.genome) ])
          [ ("risc0", Zkopt_zkvm.Config.risc0, `R0);
            ("sp1", Zkopt_zkvm.Config.sp1, `Sp1) ])
      progs
  in
  Report.table
    ~headers:[ "program"; "zkVM"; "exec vs -O3"; "prove vs -O3"; "seq len" ]
    rows;
  !results

let subsequences results =
  Report.section "§4.2 — pass frequencies in best/worst tuned sequences";
  Report.paper
    "inline in 573/580 best sequences; licm in 385 worst; inline-then-licm \
     appears in both camps (context-sensitive)";
  let best_seqs =
    List.concat_map
      (fun (_, _, (ga : Zkopt_autotune.Autotune.result)) ->
        List.map (fun i -> i.Zkopt_autotune.Autotune.genome) ga.top5)
      results
  in
  let worst_seqs =
    List.concat_map
      (fun (_, _, (ga : Zkopt_autotune.Autotune.result)) ->
        List.map (fun i -> i.Zkopt_autotune.Autotune.genome) ga.bottom5)
      results
  in
  let nb = List.length best_seqs and nw = List.length worst_seqs in
  let row pass =
    [ pass;
      Printf.sprintf "%d/%d" (Zkopt_autotune.Autotune.count_containing pass best_seqs) nb;
      Printf.sprintf "%d/%d" (Zkopt_autotune.Autotune.count_containing pass worst_seqs) nw ]
  in
  Report.table ~headers:[ "pass"; "in best-5 seqs"; "in worst-5 seqs" ]
    (List.map row
       [ "inline"; "licm"; "mem2reg"; "simplifycfg"; "loop-unroll"; "reg2mem";
         "loop-extract"; "dce" ]);
  Report.note "ordered pair (a before b):";
  Report.note "  inline..licm  in best: %d   in worst: %d"
    (Zkopt_autotune.Autotune.count_ordered_pair "inline" "licm" best_seqs)
    (Zkopt_autotune.Autotune.count_ordered_pair "inline" "licm" worst_seqs);
  Report.note "  licm..inline  in best: %d   in worst: %d"
    (Zkopt_autotune.Autotune.count_ordered_pair "licm" "inline" best_seqs)
    (Zkopt_autotune.Autotune.count_ordered_pair "licm" "inline" worst_seqs)

let run ~size ~iterations sweep =
  fig5 sweep;
  let results = autotune_suites ~size ~iterations sweep in
  subsequences results
