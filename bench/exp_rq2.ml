(** RQ2 artifacts: Fig. 5 (standard -O levels), Fig. 6 (autotuning vs
    -O3 on the NPB and crypto suites), and the best/worst subsequence
    mining. *)

open Zkopt_report
open Zkopt_stats
module Catalog = Zkopt_passes.Catalog

let fig5 sweep =
  Report.section "Fig. 5 — standard optimization levels vs baseline";
  Report.paper
    "avg exec +60.5%% (R0) / +47.3%% (SP1); prove +55.5%% / +51.1%%; -O3 \
     best, -Oz weakest; -O0 regresses 19 programs on R0 and 9 on SP1";
  let rows =
    List.map
      (fun lvl ->
        let name = Catalog.level_name lvl in
        let avg vm metric =
          Stats.mean
            (List.map
               (fun p -> Sweep.improvement sweep ~program:p ~profile:name ~vm ~metric)
               (Sweep.all_programs sweep))
        in
        let regressions vm =
          List.length
            (List.filter
               (fun p ->
                 Sweep.improvement sweep ~program:p ~profile:name ~vm
                   ~metric:Sweep.Exec
                 < -1.0)
               (Sweep.all_programs sweep))
        in
        [ name;
          Report.pct (avg `R0 Sweep.Exec); Report.pct (avg `R0 Sweep.Prove);
          Report.pct (avg `Sp1 Sweep.Exec); Report.pct (avg `Sp1 Sweep.Prove);
          Report.int_s (regressions `R0); Report.int_s (regressions `Sp1) ])
      Catalog.all_levels
  in
  Report.table
    ~headers:
      [ "level"; "R0 exec"; "R0 prove"; "SP1 exec"; "SP1 prove"; "R0 regr";
        "SP1 regr" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 6 — autotuning NPB + crypto                                    *)
(* ------------------------------------------------------------------ *)

let autotune_suites ~size ~iterations ?(jobs = 1) sweep =
  let module A = Zkopt_autotune.Autotune in
  let module Tuned = Zkopt_autotune.Tuned in
  let module Cache = Zkopt_exec.Cache in
  Report.section
    (Printf.sprintf
       "Fig. 6 — autotuned pass sequences vs -O3, NPB & crypto suites \
        (search engine, %d evals/prog, %d jobs)"
       iterations jobs);
  Report.paper
    "NPB: ~+17-19%% exec/prove on both zkVMs, npb-sp >2x; crypto: +10-12%% \
     exec, +3.5-6.8%% prove (precompiles flatten gains)";
  Report.note
    "(the paper runs OpenTuner for 1600 evaluations; scale with ZKOPT_GA_ITERS)";
  let progs =
    Zkopt_workloads.Workload.by_suite "npb"
    @ Zkopt_workloads.Workload.by_suite "a16z"
    @ Zkopt_workloads.Workload.by_suite "succinct"
  in
  (* one warm pool + compile/prefix caches across every (program, backend)
     search: genomes sharing pipeline prefixes — across seeds, too — reuse
     partially-optimized modules, and structurally identical results reuse
     compiled artifacts *)
  let artifacts = Cache.create ~capacity:1024 () in
  let prefixes = Cache.create ~capacity:2048 () in
  let pool = if jobs > 1 then Some (Zkopt_exec.Pool.create ~jobs) else None in
  let results = ref [] in
  let entries = ref [] in
  let rows =
    Fun.protect
      ~finally:(fun () ->
        match pool with Some p -> Zkopt_exec.Pool.shutdown p | None -> ())
      (fun () ->
        List.concat_map
          (fun (w : Zkopt_workloads.Workload.t) ->
            List.map
              (fun (label, vm_cfg, vm) ->
                let build () = w.Zkopt_workloads.Workload.build size in
                let b = Zkopt_backend.Registry.find label in
                let target =
                  A.backend_target ~cache:artifacts ~program:w.name ~build b
                in
                let cfg =
                  {
                    (A.default ~seed:(Hashtbl.hash w.name) ~iterations ~jobs ())
                    with
                    A.pool;
                    prefix_cache = Some prefixes;
                  }
                in
                let o = A.search cfg ~targets:[ target ] in
                let ga = Option.get o.A.result in
                results := (w.name, label, ga) :: !results;
                let entry =
                  Tuned.entry ~program:w.name ~vm:label
                    ~cycles:ga.A.best.A.fitness ga.A.best.A.genome
                in
                entries := entry :: !entries;
                (* measure the winning sequence end-to-end vs -O3, under its
                   published profile name *)
                let o3 =
                  Sweep.get sweep w.Zkopt_workloads.Workload.name "-O3"
                in
                let c =
                  Zkopt_core.Measure.prepare ~build (Tuned.to_profile entry)
                in
                let tuned = Zkopt_core.Measure.run_zkvm vm_cfg c in
                let o3m = Sweep.zk_of o3 vm in
                let exec_speedup =
                  Stats.improvement_pct
                    ~base:o3m.Zkopt_core.Measure.exec_time_s
                    tuned.Zkopt_core.Measure.exec_time_s
                in
                let prove_speedup =
                  Stats.improvement_pct
                    ~base:o3m.Zkopt_core.Measure.prove_time_s
                    tuned.Zkopt_core.Measure.prove_time_s
                in
                [ entry.Tuned.name;
                  Report.pct exec_speedup; Report.pct prove_speedup;
                  string_of_int (List.length ga.A.best.A.genome) ])
              [ ("risc0", Zkopt_zkvm.Config.risc0, `R0);
                ("sp1", Zkopt_zkvm.Config.sp1, `Sp1) ])
          progs)
  in
  Report.table
    ~headers:[ "tuned profile"; "exec vs -O3"; "prove vs -O3"; "seq len" ]
    rows;
  let ps = Cache.stats prefixes and cs = Cache.stats artifacts in
  Report.note
    "engine: prefix cache %d hits / %d compiles (%.1f%%); artifact cache %d \
     hits / %d compiles (%.1f%%)"
    ps.Cache.hits ps.Cache.misses (Cache.hit_rate_pct ps) cs.Cache.hits
    cs.Cache.misses (Cache.hit_rate_pct cs);
  (match Tuned.save "tuned_profiles.json" (List.rev !entries) with
  | Ok () ->
    Report.note
      "published %d tuned profiles to tuned_profiles.json (consume with \
       `zkbench sweepall --tuned tuned_profiles.json`)"
      (List.length !entries)
  | Error msg -> Report.note "tuned-profile publication failed: %s" msg);
  !results

let subsequences results =
  Report.section "§4.2 — pass frequencies in best/worst tuned sequences";
  Report.paper
    "inline in 573/580 best sequences; licm in 385 worst; inline-then-licm \
     appears in both camps (context-sensitive)";
  let best_seqs =
    List.concat_map
      (fun (_, _, (ga : Zkopt_autotune.Autotune.result)) ->
        List.map (fun i -> i.Zkopt_autotune.Autotune.genome) ga.top5)
      results
  in
  let worst_seqs =
    List.concat_map
      (fun (_, _, (ga : Zkopt_autotune.Autotune.result)) ->
        List.map (fun i -> i.Zkopt_autotune.Autotune.genome) ga.bottom5)
      results
  in
  let nb = List.length best_seqs and nw = List.length worst_seqs in
  let row pass =
    [ pass;
      Printf.sprintf "%d/%d" (Zkopt_autotune.Autotune.count_containing pass best_seqs) nb;
      Printf.sprintf "%d/%d" (Zkopt_autotune.Autotune.count_containing pass worst_seqs) nw ]
  in
  Report.table ~headers:[ "pass"; "in best-5 seqs"; "in worst-5 seqs" ]
    (List.map row
       [ "inline"; "licm"; "mem2reg"; "simplifycfg"; "loop-unroll"; "reg2mem";
         "loop-extract"; "dce" ]);
  Report.note "ordered pair (a before b):";
  Report.note "  inline..licm  in best: %d   in worst: %d"
    (Zkopt_autotune.Autotune.count_ordered_pair "inline" "licm" best_seqs)
    (Zkopt_autotune.Autotune.count_ordered_pair "inline" "licm" worst_seqs);
  Report.note "  licm..inline  in best: %d   in worst: %d"
    (Zkopt_autotune.Autotune.count_ordered_pair "licm" "inline" best_seqs)
    (Zkopt_autotune.Autotune.count_ordered_pair "licm" "inline" worst_seqs);
  let module M = Zkopt_autotune.Miner in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  Report.note "most frequent ordered pairs mined from best-5 sequences:";
  List.iter
    (fun ((a, b), c) -> Report.note "  %-14s .. %-14s : %d" a b c)
    (take 6 (M.pair_table best_seqs));
  let contrasts = M.contrast_mine ~best:best_seqs ~worst:worst_seqs () in
  if contrasts <> [] then
    Report.table
      ~headers:[ "mined subsequence"; "best"; "worst"; "contrast" ]
      (List.map
         (fun (c : M.contrast) ->
           [ String.concat ".." c.M.seq;
             Printf.sprintf "%d/%d" c.M.support_best nb;
             Printf.sprintf "%d/%d" c.M.support_worst nw;
             Printf.sprintf "%+.2f" c.M.score ])
         (take 8 contrasts))

let run ~size ~iterations ?(jobs = 1) sweep =
  fig5 sweep;
  let results = autotune_suites ~size ~iterations ~jobs sweep in
  subsequences results
