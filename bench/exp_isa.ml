(** Cross-ISA experiment: the paper's register-pair spill mechanism
    inverts on a zk-native ISA.

    On the RV32 backends, loop unrolling (plus GVN over the unrolled
    copies) extends the live ranges of 64-bit temporaries across the
    whole unrolled region; the register allocator runs out of pairs and
    inserts spill lw/sw traffic, so the "optimization" regresses
    execution (Fig. 10/11's mechanism, here triggered by the unroller).
    The Valida-style backend has no register file — every IR register is
    a frame cell — so the spill path does not exist *by construction*:
    the same IR transform only removes loop-overhead rows and the effect
    inverts.  Everything below is measured from the two simulators
    (static spill counts from codegen, cycle/row counts from execution);
    no constants are baked in. *)

open Zkopt_ir
open Zkopt_core
open Zkopt_report
module B = Builder
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Stats = Zkopt_stats.Stats

let () = Zkopt_valida.Vbackend.ensure ()

(* ------------------------------------------------------------------ *)
(* The pressure program                                                *)
(* ------------------------------------------------------------------ *)

(* [streams] 64-bit products of a loop-invariant seed are recomputed in
   a short inner loop of [trip] iterations.  Rolled, each product is
   born and dies inside one iteration (no pressure).  Fully unrolled,
   GVN recognizes the copies as the same pure expression and reuses the
   first copy's value, keeping [streams] register *pairs* live across
   the whole unrolled region — more than the RV32 allocator's pool. *)
let pressure_program ~streams ~trip ~n () =
  let m = Modul.create () in
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let seed = B.sext b (B.imm 0x1234567) in
         let s = B.var b Ty.I64 (B.imm 0) in
         B.for_ b ~from:(B.imm 0) ~bound:(B.imm n) (fun i ->
             B.for_ b ~from:(B.imm 0) ~bound:(B.imm trip) (fun j ->
                 let t = B.sext b (B.add b i j) in
                 for k = 0 to streams - 1 do
                   let v =
                     B.xor ~ty:Ty.I64 b seed
                       (B.imm ((k * 2654435761) lor 0x9E3779B9))
                   in
                   (* three uses of the loop-invariant [v] per copy: once
                      unrolled copies share one CSE'd definition, every
                      use is a pair reload if [v] lost its registers *)
                   let a1 = B.add ~ty:Ty.I64 b (Value.Reg s) v in
                   let a2 = B.xor ~ty:Ty.I64 b v t in
                   let a3 = B.and_ ~ty:Ty.I64 b v (B.imm 0x0F0F0F0F) in
                   B.set b Ty.I64 s
                     (B.add ~ty:Ty.I64 b a1 (B.xor ~ty:Ty.I64 b a2 a3))
                 done));
         B.ret b (Some (B.trunc b (Value.Reg s)))));
  m

let unroll_profile =
  Profile.Custom
    ( [ "loop-unroll"; "gvn" ],
      { Zkopt_passes.Pass.standard_config with unroll_threshold = 400 } )

(* ------------------------------------------------------------------ *)
(* Generic measurement over the registry                               *)
(* ------------------------------------------------------------------ *)

let spill_count (c : Backend.compiled) =
  List.fold_left (fun a (_, n) -> a + n) 0 c.Backend.spills

let measure_on (b : Backend.t) ~build profile =
  let m = Measure.prepare_ir ~build profile in
  let c = b.Backend.compile m in
  let r = c.Backend.measure ~vm:b.Backend.name () in
  (match r.Backend.accounting with
  | Ok () -> ()
  | Error e -> failwith (b.Backend.name ^ ": accounting: " ^ e));
  (c, r.Backend.zk)

let study ~label ~build ~profile backends =
  Report.note "%s" label;
  let exits = ref [] in
  let rows =
    List.map
      (fun (b : Backend.t) ->
        let cb, zb = measure_on b ~build Profile.Baseline in
        let cu, zu = measure_on b ~build profile in
        exits := (b.Backend.name, zb.Measure.exit_value, zu.Measure.exit_value)
                 :: !exits;
        let dcycles =
          (float_of_int zu.Measure.cycles /. float_of_int zb.Measure.cycles
          -. 1.0)
          *. 100.0
        in
        let dmem =
          zu.Measure.loads + zu.Measure.stores
          - (zb.Measure.loads + zb.Measure.stores)
        in
        [ b.Backend.name;
          (if b.Backend.zk_native then "yes" else "no");
          string_of_int (spill_count cb);
          string_of_int (spill_count cu);
          Printf.sprintf "%+.1f%%" dcycles;
          Printf.sprintf "%+d" dmem;
          Report.pct
            (Stats.improvement_pct ~base:zb.Measure.exec_time_s
               zu.Measure.exec_time_s) ])
      backends
  in
  Report.table
    ~headers:
      [ "backend"; "zk-native"; "spills base"; "spills unrolled";
        "cycles delta"; "mem-op delta"; "exec speedup" ]
    rows;
  (* the backends disagree on nothing but cost: exit values must match *)
  (match !exits with
  | (_, e0b, e0u) :: rest ->
    List.iter
      (fun (name, eb, eu) ->
        if not (Int64.equal eb e0b && Int64.equal eu e0u) then
          failwith ("cross-backend exit divergence on " ^ name))
      rest;
    Report.note "  exit values agree across all %d backends (0x%Lx / 0x%Lx)"
      (List.length !exits) e0b e0u
  | [] -> ())

let run () =
  Report.section
    "Cross-ISA — the unroll spill regression inverts on a zk-native ISA";
  Report.paper
    "RV32 zkVMs inherit the CPU register file, so live-range growth from \
     unrolling turns into register-pair spill traffic; a zk-native \
     frame-machine ISA has no registers to spill";
  let backends =
    [ Registry.find "risc0"; Registry.find "sp1"; Registry.find "valida" ]
  in
  study
    ~label:
      "u64 pressure kernel: baseline vs loop-unroll+gvn (spills measured \
       from codegen, cycles from execution)"
    ~build:(pressure_program ~streams:8 ~trip:4 ~n:12_000)
    ~profile:unroll_profile backends;
  study ~label:"fig. 11 matvec kernel under loop-unroll+gvn"
    ~build:Exp_cases.matvec_program ~profile:unroll_profile backends
