(** The bench harness: regenerates every table and figure of the paper
    (see DESIGN.md's experiment index) and prints each next to the
    paper's reported values.

    Usage:
      dune exec bench/main.exe                 # full run
      dune exec bench/main.exe -- --quick      # reduced sizes (CI)
      dune exec bench/main.exe -- --only fig13 # one experiment
      dune exec bench/main.exe -- --jobs 4     # parallel sweep cells
      dune exec bench/main.exe -- --list       # experiment ids

    The shared 58x71 sweep runs on the multicore harness; --jobs (or
    ZKOPT_JOBS) sets the worker-domain count, defaulting to the
    machine's recommended domain count. *)

let experiments =
  [ "fig2"; "fig3"; "tab1"; "fig4"; "corr"; "fig5"; "fig6"; "subseq"; "fig7";
    "fig8"; "fig9"; "fig10"; "fig11"; "tab2"; "fig12"; "inlthr"; "fig13";
    "fig14"; "tab5"; "sp1bug"; "isa"; "settle"; "prof"; "micro" ]

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: tl -> find tl
      | [] -> None
    in
    find args
  in
  if List.mem "--list" args then begin
    List.iter print_endline experiments;
    exit 0
  end;
  (match only with
  | Some id when not (List.mem id experiments) ->
    Printf.eprintf "unknown experiment %s; try --list\n" id;
    exit 1
  | _ -> ());
  let size =
    if quick then Zkopt_workloads.Workload.Quick else Zkopt_workloads.Workload.Full
  in
  let ga_iters =
    match Sys.getenv_opt "ZKOPT_GA_ITERS" with
    | Some s -> int_of_string s
    | None -> if quick then 24 else 120
  in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> Some (int_of_string n)
      | _ :: tl -> find tl
      | [] -> None
    in
    match (find args, Sys.getenv_opt "ZKOPT_JOBS") with
    | Some n, _ -> max 1 n
    | None, Some s -> max 1 (int_of_string s)
    | None, None -> Zkopt_exec.Pool.recommended_jobs ()
  in
  let want id = match only with None -> true | Some o -> String.equal o id in
  let needs_sweep =
    List.exists want
      [ "fig3"; "tab1"; "fig4"; "corr"; "fig5"; "fig6"; "subseq"; "fig7";
        "fig8"; "fig13"; "fig14"; "tab5" ]
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "zkopt bench — reproducing 'Evaluating Compiler Optimization Impacts on \
     zkVM Performance'\n";
  Printf.printf "mode: %s sizes; GA evaluations per program: %d\n"
    (if quick then "quick" else "full")
    ga_iters;
  let sweep =
    if needs_sweep then begin
      Printf.eprintf "running the 58x71 profile sweep (%d jobs)...\n%!" jobs;
      let s = Sweep.run ~jobs ~size () in
      Printf.eprintf "sweep done in %.1fs\n%!" (Unix.gettimeofday () -. t0);
      Some s
    end
    else None
  in
  let with_sweep f = Option.iter f sweep in
  if want "fig2" then begin
    Exp_cases.fig2a ();
    Exp_cases.fig2b ()
  end;
  if want "fig3" then with_sweep Exp_rq1.fig3;
  if want "tab1" then with_sweep Exp_rq1.tab1;
  if want "fig4" then with_sweep Exp_rq1.fig4;
  if want "corr" then with_sweep Exp_rq1.correlation;
  if want "fig5" then with_sweep Exp_rq2.fig5;
  if want "fig6" || want "subseq" then
    with_sweep (fun s ->
        let results =
          Exp_rq2.autotune_suites ~size ~iterations:ga_iters ~jobs s
        in
        Exp_rq2.subsequences results);
  if want "fig7" then with_sweep Exp_rq3.fig7;
  if want "fig8" then with_sweep Exp_rq3.fig8;
  if want "fig9" then Exp_cases.fig9 ();
  if want "fig10" then Exp_cases.fig10 ();
  if want "fig11" then Exp_cases.fig11 ();
  if want "tab2" then Exp_cases.tab2 ();
  if want "fig12" then Exp_cases.fig12 ();
  if want "inlthr" then Exp_cases.inline_threshold ~size ();
  if want "fig13" then with_sweep (Exp_impl.fig13 ~size);
  if want "fig14" then with_sweep Exp_impl.fig14;
  if want "tab5" then with_sweep Exp_impl.tab5;
  if want "sp1bug" then Exp_sp1bug.run ~size ();
  if want "isa" then Exp_isa.run ();
  if want "settle" then Exp_settle.run ();
  if want "prof" then Exp_prof.run ();
  if want "micro" then Micro.run ();
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
