(** Settlement-engine smoke gate.

    Asserts the three contracts the settlement subsystem ships with:

    - the §1 gas fixture: the EVM verification-gas model reproduces the
      measured 2,825,166-gas breakdown exactly;
    - determinism: a fixed settlement sweep (2 programs x 2 profiles x
      every registered backend, quick sizes) streams byte-identical
      rows at [jobs = 1] and [jobs = 4], and resumes from a sheared
      checkpoint tail to the same byte-identical stream;
    - the settled objective: a fixed-seed [settled_target] autotune
      checkpoints, and resuming after its log is sheared mid-row
      replays to the same best genome.

    Part of the @smoke alias; see dev/check.sh. *)

module A = Zkopt_autotune.Autotune
module Cache = Zkopt_exec.Cache
module Workload = Zkopt_workloads.Workload
module Profile = Zkopt_core.Profile
module Registry = Zkopt_backend.Registry
module Gas = Zkopt_settle.Gas
module Ssweep = Zkopt_settle.Ssweep
module Seedfmt = Zkopt_devutil.Seedfmt

let () = Zkopt_valida.Vbackend.ensure ()

let tool = "settlecheck"
let seed = 7

(* ---- §1 gas fixture --------------------------------------------------- *)

let check_gas_fixture () =
  let g = Gas.of_root 20 in
  if g.Gas.total <> 2_825_166 then
    Seedfmt.fail ~tool ~seed "gas fixture drifted: %d <> 2825166 at log_n=20"
      g.Gas.total;
  if Gas.per_doubling_gas <> 36_538 then
    Seedfmt.fail ~tool ~seed "per-doubling gas drifted: %d <> 36538"
      Gas.per_doubling_gas

(* ---- sweep determinism + resume --------------------------------------- *)

let sweep_config ?checkpoint ~jobs () =
  let program name =
    let w = Workload.find name in
    (name, fun () -> w.Workload.build Workload.Quick)
  in
  let profile p = (Profile.name p, p) in
  {
    (Ssweep.default ~jobs ()) with
    Ssweep.programs = [ program "factorial"; program "loop-sum" ];
    profiles =
      [ profile Profile.Baseline;
        profile (Profile.Level Zkopt_passes.Catalog.O2) ];
    backends = Registry.all ();
    cache = Some (Cache.create ~capacity:256 ());
    checkpoint;
  }

(* Drop the last complete row and leave a torn fragment of the one
   before it — the shape a kill mid-write leaves on disk. *)
let shear path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let all = really_input_string ic n in
  close_in ic;
  let lines = String.split_on_char '\n' all in
  let lines = List.filter (fun l -> l <> "") lines in
  let keep = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  match List.rev keep with
  | [] -> Seedfmt.fail ~tool ~seed "checkpoint too short to shear"
  | last :: prefix ->
    let torn = String.sub last 0 (String.length last / 2) in
    let oc = open_out_bin path in
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      (List.rev prefix);
    output_string oc torn (* no newline: torn tail *);
    close_out oc

let check_sweep () =
  let o1 = Ssweep.run (sweep_config ~jobs:1 ()) in
  let o4 = Ssweep.run (sweep_config ~jobs:4 ()) in
  if o1.Ssweep.rows <> o4.Ssweep.rows then
    Seedfmt.fail ~tool ~seed
      "settlement rows diverge across jobs: %d at jobs=1 vs %d at jobs=4"
      (List.length o1.Ssweep.rows)
      (List.length o4.Ssweep.rows);
  if not (o1.Ssweep.completed && o4.Ssweep.completed) then
    Seedfmt.fail ~tool ~seed "sweep did not complete";
  (* checkpoint, shear, resume: the resumed stream must be byte-identical
     and must actually replay from the surviving rows *)
  let ckpt = Filename.temp_file "settlecheck" ".ckpt" in
  let oc = Ssweep.run (sweep_config ~checkpoint:ckpt ~jobs:4 ()) in
  if oc.Ssweep.rows <> o1.Ssweep.rows then
    Seedfmt.fail ~tool ~seed "checkpointed rows diverge from plain run";
  shear ckpt;
  let orr = Ssweep.run (sweep_config ~checkpoint:ckpt ~jobs:4 ()) in
  Sys.remove ckpt;
  if orr.Ssweep.rows <> o1.Ssweep.rows then
    Seedfmt.fail ~tool ~seed "resumed rows diverge from the original stream";
  if orr.Ssweep.replayed = 0 then
    Seedfmt.fail ~tool ~seed "resume replayed nothing from the checkpoint";
  if orr.Ssweep.cells = 0 then
    Seedfmt.fail ~tool ~seed "shear left nothing to re-price";
  List.length o1.Ssweep.rows

(* ---- the settled autotune objective ----------------------------------- *)

let check_settled_tune () =
  let w = Workload.find "fibonacci" in
  let build () = w.Workload.build Workload.Quick in
  let artifacts = Cache.create ~capacity:256 () in
  let target =
    A.settled_target ~cache:artifacts ~program:"fibonacci" ~build
      (Registry.find "risc0")
  in
  let ckpt = Filename.temp_file "settlecheck" ".tune" in
  let run () =
    A.search
      {
        (A.default ~seed ~population:4 ~iterations:8 ~jobs:2 ()) with
        A.checkpoint = Some ckpt;
        resume = true;
      }
      ~targets:[ target ]
  in
  let o1 = run () in
  let best1 =
    match o1.A.result with
    | Some ga -> ga.A.best
    | None ->
      Seedfmt.fail ~tool ~seed "settled tune produced no result";
      Seedfmt.finish tool;
      exit 1
  in
  if best1.A.fitness <= 0 then
    Seedfmt.fail ~tool ~seed "settled fitness %d not positive"
      best1.A.fitness;
  shear ckpt;
  let o2 = run () in
  Sys.remove ckpt;
  (match o2.A.result with
  | Some ga ->
    if ga.A.best.A.genome <> best1.A.genome
       || ga.A.best.A.fitness <> best1.A.fitness
    then
      Seedfmt.fail ~tool ~seed
        "resumed settled tune diverged: %d vs %d micro-units"
        ga.A.best.A.fitness best1.A.fitness
  | None -> Seedfmt.fail ~tool ~seed "resumed settled tune has no result");
  if o2.A.resumed = 0 then
    Seedfmt.fail ~tool ~seed "resumed settled tune replayed nothing";
  best1.A.fitness

let () =
  Zkopt_workloads.Suite.check_composition ();
  check_gas_fixture ();
  let rows = check_sweep () in
  let fitness = check_settled_tune () in
  Printf.printf
    "settlecheck: gas fixture exact, %d sweep rows stable across jobs and \
     resume, settled tune best %d micro-units\n"
    rows fitness;
  Seedfmt.finish tool
