(* Profiler-overhead gate: the attribution hooks in the zkVM executor
   must be free when no sink is installed.

   The reference below is the executor hot loop exactly as it was before
   attribution landed (no [attr] checks, no current-pc tracking, dirty
   pages as a set rather than page->pc).  We bechamel both over the same
   workload and fail if the live executor's disabled-hooks path is more
   than ZKOPT_PROFCHECK_MAX percent slower (default 5%). *)

open Bechamel
open Toolkit
open Zkopt_riscv
open Zkopt_zkvm
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "profcheck"

let reference_run ?(fuel = 500_000_000) (cfg : Config.t) (cg : Codegen.t)
    (m : Zkopt_ir.Modul.t) : int =
  let user = ref 0 and paging = ref 0 in
  let total_user = ref 0 and total_paging = ref 0 in
  let page_ins = ref 0 and page_outs = ref 0 in
  let loads = ref 0 and stores = ref 0 and branches = ref 0 in
  let touched = Hashtbl.create 64 in
  let dirty = Hashtbl.create 64 in
  let touch ~write addr =
    let page = Int32.to_int addr land 0xFFFF_FFFF / cfg.Config.page_bytes in
    if not (Hashtbl.mem touched page) then begin
      Hashtbl.replace touched page ();
      paging := !paging + cfg.Config.page_in_cost;
      incr page_ins
    end;
    if write then Hashtbl.replace dirty page ()
  in
  let close_segment () =
    let outs = Hashtbl.length dirty in
    paging := !paging + (outs * cfg.Config.page_out_cost);
    page_outs := !page_outs + outs;
    total_user := !total_user + !user;
    total_paging := !total_paging + !paging;
    user := 0;
    paging := 0;
    Hashtbl.reset touched;
    Hashtbl.reset dirty
  in
  let hooks = Emulator.no_hooks () in
  let boundary_pending = ref false in
  hooks.on_instr <-
    (fun ~pc ins ->
      touch ~write:false pc;
      user := !user + Config.instr_cost cfg ins;
      (match ins with
      | Isa.Load _ -> incr loads
      | Isa.Store _ -> incr stores
      | Isa.Branch _ | Jal _ | Jalr _ -> incr branches
      | _ -> ());
      if !user >= cfg.Config.segment_limit then boundary_pending := true);
  hooks.on_mem <- (fun ~write addr _bytes -> touch ~write addr);
  hooks.on_precompile <-
    (fun name -> user := !user + Config.precompile_cost cfg name);
  let emu = Emulator.create ~hooks cg.Codegen.program m in
  let budget = ref fuel in
  while not emu.Emulator.halted do
    if !budget <= 0 then raise (Emulator.Out_of_fuel fuel);
    decr budget;
    Emulator.step emu;
    if !boundary_pending then begin
      boundary_pending := false;
      close_segment ()
    end
  done;
  close_segment ();
  !total_user + !total_paging

let ns_per_run test =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let est = ref nan in
  Hashtbl.iter
    (fun _ raw ->
      let stats =
        Analyze.one
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      match Analyze.OLS.estimates stats with
      | Some [ e ] -> est := e
      | _ -> ())
    results;
  !est

let () =
  let max_pct =
    match Sys.getenv_opt "ZKOPT_PROFCHECK_MAX" with
    | Some s -> float_of_string s
    | None -> 5.0
  in
  Zkopt_workloads.Suite.check_composition ();
  let w = Zkopt_workloads.Workload.find "loop-sum" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick in
  let c = Zkopt_core.Measure.prepare ~build Zkopt_core.Profile.Baseline in
  let cg = c.Zkopt_core.Measure.codegen and m = c.Zkopt_core.Measure.modul in
  let cfg = Config.risc0 in
  (* keep the reference honest: both executors must account identically *)
  let live = Executor.run cfg cg m in
  let ref_cycles = reference_run cfg cg m in
  if live.Executor.total_cycles <> ref_cycles then begin
    Seedfmt.fail ~tool "reference diverged (%d vs %d cycles) on workload %s"
      ref_cycles live.Executor.total_cycles w.Zkopt_workloads.Workload.name;
    Seedfmt.finish tool
  end;
  let t_ref =
    ns_per_run
      (Test.make ~name:"reference" (Staged.stage (fun () -> ignore (reference_run cfg cg m))))
  in
  let t_live =
    ns_per_run
      (Test.make ~name:"live" (Staged.stage (fun () -> ignore (Executor.run cfg cg m))))
  in
  let pct = ((t_live /. t_ref) -. 1.0) *. 100.0 in
  Printf.printf
    "profcheck: reference %.0f ns/run, live (hooks disabled) %.0f ns/run: \
     %+.1f%% (budget %.1f%%)\n"
    t_ref t_live pct max_pct;
  if pct > max_pct then
    Seedfmt.fail ~tool
      "disabled-hooks executor regressed %+.1f%%, budget %.1f%%" pct max_pct;
  Seedfmt.finish tool
