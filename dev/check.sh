#!/bin/sh
# CI / pre-push check: build, full test suite, then short seeded smoke
# runs of the differential fuzzers (the same properties run in
# `dune runtest` with smaller budgets; these catch linkage/CLI rot).
set -e
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (25 seeds) =="
dune exec dev/fuzz.exe -- 25

echo "== passfuzz smoke (3 seeds) =="
dune exec dev/passfuzz.exe -- 3

echo "== sweepall resume smoke =="
ckpt=$(mktemp /tmp/zkopt-check-XXXXXX.ckpt)
rm -f "$ckpt"
dune exec bin/zkbench.exe -- sweepall --quick --limit 3 --checkpoint "$ckpt" > /dev/null
dune exec bin/zkbench.exe -- sweepall --quick --limit 3 --checkpoint "$ckpt"
rm -f "$ckpt"

echo "check.sh: all green"
