#!/bin/sh
# CI / pre-push check.  `dune build @smoke` covers the full build, the
# test suite, seeded smoke runs of the differential fuzzers, the
# profiler-overhead gate (dev/profcheck.ml), and an in-sandbox sweepall
# checkpoint/resume smoke.  The out-of-sandbox sweep below additionally
# exercises the real CLI with a checkpoint on disk.
set -e
cd "$(dirname "$0")/.."

# all scratch state lives in one private directory; no fixed /tmp names,
# no mktemp/rm window where another instance can grab the same path
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

echo "== dune build @smoke =="
dune build @smoke

echo "== sweepall resume smoke (CLI) =="
ckpt="$tmpdir/sweep.ckpt"
dune exec bin/zkbench.exe -- sweepall --quick --limit 3 --checkpoint "$ckpt" > /dev/null
dune exec bin/zkbench.exe -- sweepall --quick --limit 3 --checkpoint "$ckpt"

echo "check.sh: all green"
