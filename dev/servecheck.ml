(* Sweep-service smoke gate (dune build @smoke):

   1. fidelity — two concurrent clients (a sweep and a fuzz campaign)
      stream rows from an in-process daemon that must match the
      one-shot harness/campaign engines byte-for-byte;
   2. warm cache — a second client resubmitting an overlapping sweep
      slice must be served >= 90% from the shared compile cache
      (in practice 100%: every digest is resident);
   3. drain/restart — stopping the daemon mid-job and restarting over
      the same state directory must re-enqueue the job from the
      registry, resume it from its checkpoint, and finish with rows
      byte-identical to an uninterrupted run. *)

open Zkopt_core
module H = Zkopt_harness.Harness
module Checkpoint = Zkopt_harness.Checkpoint
module Campaign = Zkopt_fuzz.Campaign
module Case = Zkopt_fuzz.Case
module Job = Zkopt_serve.Job
module Proto = Zkopt_serve.Proto
module Daemon = Zkopt_serve.Daemon
module Client = Zkopt_serve.Client
module Json = Zkopt_report.Json
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "servecheck"
let () = Zkopt_valida.Vbackend.ensure ()

let programs = [ "factorial"; "loop-sum"; "sha256" ]
let profile_names = [ "baseline"; "-O2" ]
let profiles =
  [ Profile.Baseline; Profile.Level Zkopt_passes.Catalog.O2 ]

let fuzz_seeds = (1, 10)

let sweep_spec =
  Job.Sweep
    {
      programs = Some programs;
      profiles = Some profile_names;
      quick = true;
      backends = None;
      limit = None;
    }

let fuzz_spec =
  let lo, hi = fuzz_seeds in
  Job.Fuzz
    {
      seed_lo = lo;
      seed_hi = hi;
      pipelines = [ "baseline" ];
      backends = Some [ "risc0"; "sp1" ];
      limit = None;
    }

let sorted xs = List.sort compare xs

let sock_of dir = Filename.concat dir "zkbench.sock"

(* submit over the socket, collect streamed rows until the terminal
   event *)
let submit_collect dir spec : string list * Json.t =
  let rows = ref [] in
  match
    Client.with_connection (sock_of dir) (fun c ->
        Client.submit_and_watch
          ~on_event:(function
            | Proto.Row { data; _ } -> rows := data :: !rows
            | _ -> ())
          c spec)
  with
  | Ok (_, `Done summary) -> (List.rev !rows, summary)
  | Ok (id, `Failed m) ->
    Seedfmt.fail ~tool "job %s failed: %s" id m;
    ([], Json.Null)
  | Error m ->
    Seedfmt.fail ~tool "submit failed: %s" m;
    ([], Json.Null)

let mkdir d = try Sys.mkdir d 0o755 with Sys_error _ -> ()

let () =
  let state = "servecheck-state" in
  mkdir state;

  (* one-shot references, run through the engines directly *)
  let oneshot_sweep =
    let o =
      H.run
        {
          (H.default ~size:Zkopt_workloads.Workload.Quick) with
          H.programs = Some programs;
          profiles = Some profiles;
          jobs = 2;
        }
    in
    Hashtbl.fold (fun _ p acc -> Checkpoint.encode_point p :: acc) o.H.points []
    |> sorted
  in
  let oneshot_fuzz_rows = ref [] in
  let _ =
    let lo, hi = fuzz_seeds in
    Campaign.run
      {
        (Campaign.default
           ~backends:
             [ Case.resolve_backend "risc0"; Case.resolve_backend "sp1" ])
        with
        Campaign.sources = List.init (hi - lo + 1) (fun i -> Case.seed (lo + i));
        pipelines =
          [
            (match Case.pipeline_of_spec "baseline" with
            | Ok p -> p
            | Error e -> failwith e);
          ];
        jobs = 2;
        on_row =
          Some
            (fun r -> oneshot_fuzz_rows := Campaign.encode_row r :: !oneshot_fuzz_rows);
      }
  in
  let oneshot_fuzz = sorted !oneshot_fuzz_rows in

  (* 1. two concurrent clients against one daemon *)
  let d = Daemon.start ~jobs:2 ~dir:state () in
  let a = ref ([], Json.Null) and b = ref ([], Json.Null) in
  let ta = Thread.create (fun () -> a := submit_collect state sweep_spec) () in
  let tb = Thread.create (fun () -> b := submit_collect state fuzz_spec) () in
  Thread.join ta;
  Thread.join tb;
  let sweep_rows, _ = !a and fuzz_rows, _ = !b in
  if sorted sweep_rows <> oneshot_sweep then
    Seedfmt.fail ~tool
      "streamed sweep rows diverge from the one-shot harness (%d vs %d rows)"
      (List.length sweep_rows)
      (List.length oneshot_sweep);
  if sorted fuzz_rows <> oneshot_fuzz then
    Seedfmt.fail ~tool
      "streamed fuzz rows diverge from the one-shot campaign (%d vs %d rows)"
      (List.length fuzz_rows)
      (List.length oneshot_fuzz);

  (* 2. overlapping resubmission rides the warm shared cache *)
  let warm_rows, warm_summary = submit_collect state sweep_spec in
  if sorted warm_rows <> oneshot_sweep then
    Seedfmt.fail ~tool "warm-cache sweep rows diverge from the one-shot run";
  (match Json.member "cache" warm_summary with
  | Some cache ->
    let rate =
      match Json.member "hit_rate_pct" cache with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> 0.0
    in
    if rate < 90.0 then
      Seedfmt.fail ~tool "warm-cache hit rate %.1f%% < 90%%" rate
  | None -> Seedfmt.fail ~tool "sweep summary carries no cache stats");
  Daemon.stop d;

  (* 3. stop mid-job, restart over the same state dir, resume *)
  let state2 = "servecheck-state-2" in
  mkdir state2;
  let big_sweep =
    Job.Sweep
      {
        programs = Some (programs @ [ "tailcall" ]);
        profiles = Some (profile_names @ [ "-O1"; "-O3" ]);
        quick = true;
        backends = None;
        limit = None;
      }
  in
  (* uninterrupted reference through the daemon machinery *)
  let ref_dir = "servecheck-state-ref" in
  mkdir ref_dir;
  let dref = Daemon.start ~jobs:2 ~dir:ref_dir () in
  let ref_rows, _ = submit_collect ref_dir big_sweep in
  Daemon.stop dref;
  (* interrupted run *)
  let d1 = Daemon.start ~jobs:2 ~dir:state2 () in
  let seen = Atomic.make 0 in
  let submitter =
    Thread.create
      (fun () ->
        ignore
          (Client.with_connection (sock_of state2) (fun c ->
               Client.submit_and_watch
                 ~on_event:(function
                   | Proto.Row _ -> Atomic.incr seen
                   | _ -> ())
                 c big_sweep)))
      ()
  in
  let rec wait tries =
    if tries = 0 then Seedfmt.fail ~tool "no rows streamed before the stop"
    else if Atomic.get seen < 3 then begin
      Thread.delay 0.05;
      wait (tries - 1)
    end
  in
  wait 400;
  Daemon.stop d1;
  Thread.join submitter;
  (* restart: the registry re-enqueues the job, the checkpoint resumes
     it; watch it to completion *)
  let d2 = Daemon.start ~jobs:2 ~dir:state2 () in
  let resumed = ref [] in
  (match
     Client.with_connection (sock_of state2) (fun c ->
         match Client.send c (Proto.Watch "job-1") with
         | Error e -> Error e
         | Ok () ->
           let rec loop () =
             match Client.recv c with
             | Ok (Proto.Row { data; _ }) ->
               resumed := data :: !resumed;
               loop ()
             | Ok (Proto.Done _) -> Ok ()
             | Ok (Proto.Err { msg }) -> Error msg
             | Ok _ -> loop ()
             | Error `Eof -> Error "eof mid-watch"
             | Error (`Bad m) -> Error m
           in
           loop ())
   with
  | Ok () -> ()
  | Error m -> Seedfmt.fail ~tool "resumed watch failed: %s" m);
  Daemon.stop d2;
  if sorted !resumed <> sorted ref_rows then
    Seedfmt.fail ~tool
      "resumed rows diverge from the uninterrupted run (%d vs %d rows)"
      (List.length !resumed) (List.length ref_rows);
  Seedfmt.finish tool
