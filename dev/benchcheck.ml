(* Throughput regression gate (dune build @smoke):

   re-measures the fixed 16-cell bench slice (the same
   programs x profiles `zkbench bench` uses), writes a fresh
   BENCH_<date>.json next to the sandbox cwd, and fails if the
   warm-cache cells/s fell more than ZKOPT_BENCHCHECK_MAX percent
   (default 10) below the best committed BENCH_*.json baseline —
   baseline files are passed as command-line arguments.

   The warm row is the gated one: it is compile-free, so it tracks the
   executor + harness hot path rather than codegen.  The cold and emul
   rows ride along in the written file for trend visibility. *)

open Zkopt_core
module H = Zkopt_harness.Harness
module Json = Zkopt_report.Json
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "benchcheck"
let slice_programs = [ "factorial"; "loop-sum"; "sha256"; "tailcall" ]

let slice_profiles =
  [
    Profile.Baseline;
    Profile.Level Zkopt_passes.Catalog.O1;
    Profile.Level Zkopt_passes.Catalog.O2;
    Profile.Level Zkopt_passes.Catalog.O3;
  ]

let num_member k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

(* best committed warm-sweep cells/s across the given baseline files;
   unparsable files are skipped (a corrupt baseline must not mask a
   regression in the others).  Baselines are keyed by machine
   fingerprint: a number measured on a different machine class says
   nothing about this host, so docs whose "machine" field is absent
   (pre-fingerprint baselines) or different are skipped and counted,
   never compared. *)
let best_baseline ~machine files =
  let skipped = ref 0 in
  let best =
    List.fold_left
      (fun best path ->
        let contents =
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        match Json.of_string contents with
        | Error _ -> best
        | Ok doc ->
          if Json.str_member "machine" doc <> Some machine then begin
            incr skipped;
            best
          end
          else (
            match Json.member "rows" doc with
            | Some (Json.Arr rows) ->
              List.fold_left
                (fun best row ->
                  match (Json.str_member "family" row, num_member "cells_per_second" row) with
                  | Some "sweep-warm", Some v -> max best v
                  | _ -> best)
                best rows
            | _ -> best))
      0.0 files
  in
  (best, !skipped)

let phase cache name =
  let t0 = Unix.gettimeofday () in
  let cfg =
    {
      (H.default ~size:Zkopt_workloads.Workload.Quick) with
      H.programs = Some slice_programs;
      profiles = Some slice_profiles;
      jobs = 2;
      cache = Some cache;
    }
  in
  let o = H.run cfg in
  let dt = Unix.gettimeofday () -. t0 in
  let cells = Hashtbl.length o.H.points in
  let cps = float_of_int cells /. dt in
  let row =
    Json.Obj
      [
        ("family", Json.Str name);
        ("cells", Json.Int cells);
        ("avg_seconds", Json.Float (dt /. float_of_int (max 1 cells)));
        ("cells_per_second", Json.Float cps);
      ]
  in
  (cells, cps, row)

let emul_row () =
  let codes =
    List.map
      (fun name ->
        let w = Zkopt_workloads.Workload.find name in
        let build () =
          w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick
        in
        let c = Measure.prepare ~build Profile.Baseline in
        Zkopt_zkvm.Machine.decode Zkopt_zkvm.Config.risc0 c.Measure.codegen
          c.Measure.modul)
      slice_programs
  in
  let t0 = Unix.gettimeofday () in
  let retired = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.5 do
    List.iter
      (fun code ->
        let r = Zkopt_zkvm.Machine.run code in
        retired := !retired + r.Zkopt_zkvm.Machine.retired)
      codes
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let ips = float_of_int !retired /. dt in
  ( ips,
    Json.Obj
      [
        ("family", Json.Str "emul");
        ("retired", Json.Int !retired);
        ("instrs_per_second", Json.Float ips);
      ] )

let () =
  let baselines = List.tl (Array.to_list Sys.argv) in
  let max_regress_pct =
    match Sys.getenv_opt "ZKOPT_BENCHCHECK_MAX" with
    | Some s -> (try float_of_string s with _ -> 10.0)
    | None -> 10.0
  in
  let machine = Zkopt_exec.Pool.machine_fingerprint () in
  let best, skipped = best_baseline ~machine baselines in
  if skipped > 0 then
    Printf.printf
      "benchcheck: skipped %d baseline(s) from a different machine class \
       (this host: %s)\n"
      skipped machine;
  let cache = Zkopt_exec.Cache.create () in
  let cells, cold_cps, cold = phase cache "sweep-cold" in
  let expected =
    List.length slice_programs * List.length slice_profiles
  in
  if cells <> expected then
    Seedfmt.fail ~tool "slice measured %d of %d cells" cells expected;
  let _, warm_cps, warm = phase cache "sweep-warm" in
  let ips, emul = emul_row () in
  let date =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "zkbench-bench-v1");
        ("date", Json.Str date);
        ("machine", Json.Str machine);
        ("jobs", Json.Int 2);
        ( "slice",
          Json.Obj
            [
              ( "programs",
                Json.Arr (List.map (fun p -> Json.Str p) slice_programs) );
              ( "profiles",
                Json.Arr
                  (List.map
                     (fun p -> Json.Str (Profile.name p))
                     slice_profiles) );
            ] );
        ("rows", Json.Arr [ cold; warm; emul ]);
      ]
  in
  (* append to the series, never clobber: a committed same-date baseline
     must survive so the gate keeps comparing against it *)
  let path =
    let base = "BENCH_" ^ date in
    if not (Sys.file_exists (base ^ ".json")) then base ^ ".json"
    else begin
      let n = ref 2 in
      while Sys.file_exists (Printf.sprintf "%s-%d.json" base !n) do
        incr n
      done;
      Printf.sprintf "%s-%d.json" base !n
    end
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "benchcheck: cold %.1f / warm %.1f cells/s, emul %.2fM instrs/s -> %s\n"
    cold_cps warm_cps (ips /. 1e6) path;
  if best > 0.0 then begin
    let floor = best *. (1.0 -. (max_regress_pct /. 100.0)) in
    Printf.printf
      "benchcheck: best committed warm baseline %.1f cells/s (floor %.1f at \
       -%.0f%%)\n"
      best floor max_regress_pct;
    if warm_cps < floor then
      Seedfmt.fail ~tool
        "warm sweep throughput regressed: %.1f cells/s < %.1f (best %.1f \
         - %.0f%%)"
        warm_cps floor best max_regress_pct
  end
  else
    Printf.printf
      "benchcheck: no committed BENCH_*.json baseline for this machine \
       class (%s)\n"
      machine;
  Seedfmt.finish tool
