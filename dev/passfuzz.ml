(** Pass-pipeline metamorphic fuzzer, rebased onto the campaign engine:
    for every seed the oracle stack checks each single pass, every
    standard level, the zkVM-aware -O3, and three random pass sequences
    (both cost models) — pass-applied vs unapplied must agree in the
    interpreter, and the risc0 backend must agree with both.
    Usage: [passfuzz.exe [N | A..B]]. *)

module Seedfmt = Zkopt_devutil.Seedfmt
module Case = Zkopt_fuzz.Case
module Campaign = Zkopt_fuzz.Campaign

let tool = "passfuzz"

let () =
  let lo, hi = Seedfmt.seed_range ~tool ~default:60 Sys.argv in
  let passes = Zkopt_passes.Catalog.all_passes () in
  Printf.printf "testing %d passes + levels + zk-o3 + 3 random seqs/seed\n%!"
    (List.length passes);
  let pipelines =
    List.map
      (fun spec ->
        match Case.pipeline_of_spec spec with
        | Ok p -> p
        | Error e -> failwith e)
      (passes @ [ "O0"; "O1"; "O2"; "O3"; "Os"; "Oz"; "zk-o3" ])
  in
  let cfg =
    {
      (Campaign.default ~backends:[ Case.resolve_backend "risc0" ]) with
      Campaign.sources = List.init (hi - lo + 1) (fun i -> Case.seed (lo + i));
      pipelines;
      random_seqs = 3;
    }
  in
  let s = Campaign.run cfg in
  List.iter
    (fun (f : Campaign.finding) ->
      let seed =
        match f.Campaign.case.Case.source with
        | Case.Seed { seed; _ } -> Some seed
        | Case.Workload _ -> None
      in
      Seedfmt.fail ~tool ?seed "pipeline %s: %s: %s"
        f.Campaign.case.Case.pipeline.Case.spec
        (Case.divergence_key f.Campaign.divergence)
        (Case.divergence_detail f.Campaign.divergence))
    s.Campaign.findings;
  Printf.printf "%s\n" (Campaign.describe s);
  Seedfmt.finish tool
