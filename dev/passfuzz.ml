open Zkopt_ir
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "passfuzz"

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60 in
  let passes = Zkopt_passes.Catalog.all_passes () in
  Printf.printf "testing %d passes: %s\n%!" (List.length passes) (String.concat " " passes);
  for seed = 1 to n do
    let base = Randprog.generate ~seed () in
    Zkopt_runtime.Runtime.link base;
    let expected = Interp.checksum base in
    List.iter (fun pname ->
      let m = Clone.modul base in
      (try
        ignore (Zkopt_passes.Pass.run_one pname m);
        (try Verify.check m
         with Verify.Ill_formed msg ->
           Seedfmt.fail ~tool ~seed "pass %s ILLFORMED: %s" pname msg);
        let got = Interp.checksum m in
        if not (Int64.equal got expected) then
          Seedfmt.fail ~tool ~seed "pass %s WRONG: %Lx vs %Lx" pname got expected;
        (* codegen differential too *)
        let ev, _ = Zkopt_riscv.Codegen.run m in
        let ev = Eval.norm32 (Int64.of_int32 ev) in
        if not (Int64.equal ev expected) then
          Seedfmt.fail ~tool ~seed "pass %s CODEGEN WRONG: %Lx vs %Lx" pname ev expected
      with e ->
        Seedfmt.fail ~tool ~seed "pass %s EXN: %s" pname (Printexc.to_string e)))
      passes;
    (* standard levels and the zkVM-aware pipeline *)
    List.iter (fun lvl ->
      let m = Clone.modul base in
      try
        Zkopt_passes.Catalog.run_level lvl m;
        Verify.check m;
        let got = Interp.checksum m in
        let ev, _ = Zkopt_riscv.Codegen.run m in
        let ev = Eval.norm32 (Int64.of_int32 ev) in
        if not (Int64.equal got expected && Int64.equal ev expected) then
          Seedfmt.fail ~tool ~seed "level %s WRONG %Lx/%Lx vs %Lx"
            (Zkopt_passes.Catalog.level_name lvl) got ev expected
      with e ->
        Seedfmt.fail ~tool ~seed "level %s EXN %s"
          (Zkopt_passes.Catalog.level_name lvl) (Printexc.to_string e))
      Zkopt_passes.Catalog.all_levels;
    (let m = Clone.modul base in
     try
       Zkopt_passes.Catalog.run_zkvm_o3 m;
       Verify.check m;
       let got = Interp.checksum m in
       let ev, _ = Zkopt_riscv.Codegen.run m in
       let ev = Eval.norm32 (Int64.of_int32 ev) in
       if not (Int64.equal got expected && Int64.equal ev expected) then
         Seedfmt.fail ~tool ~seed "zkvm-O3 WRONG %Lx/%Lx vs %Lx" got ev expected
     with e ->
       Seedfmt.fail ~tool ~seed "zkvm-O3 EXN %s" (Printexc.to_string e));
    (* random pass sequences, both cost models *)
    let rng = Random.State.make [| seed * 7919 |] in
    for _ = 1 to 3 do
      let len = 1 + Random.State.int rng 8 in
      let seq = List.init len (fun _ -> List.nth passes (Random.State.int rng (List.length passes))) in
      let config = if Random.State.bool rng then Zkopt_passes.Pass.standard_config
                   else Zkopt_passes.Pass.zkvm_config in
      let m = Clone.modul base in
      try
        ignore (Zkopt_passes.Pass.run_sequence ~config seq m);
        Verify.check m;
        let got = Interp.checksum m in
        let ev, _ = Zkopt_riscv.Codegen.run m in
        let ev = Eval.norm32 (Int64.of_int32 ev) in
        if not (Int64.equal got expected) || not (Int64.equal ev expected) then
          Seedfmt.fail ~tool ~seed "seq [%s] WRONG interp=%Lx emu=%Lx expect=%Lx"
            (String.concat ";" seq) got ev expected
      with e ->
        Seedfmt.fail ~tool ~seed "seq [%s] EXN: %s" (String.concat ";" seq)
          (Printexc.to_string e)
    done
  done;
  Seedfmt.finish tool
