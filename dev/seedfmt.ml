(** Canonical failure reporting for the dev fuzzers and gates.

    Every failure path in [dev/] goes through {!fail}, which prints one
    grep-able line in a single shared format:

      FAIL tool=<tool> seed=<n> <message>

    so a red run always surfaces the reproducer seed (tools without a
    seed axis omit the field), and {!finish} turns any recorded failure
    into a non-zero exit — a fuzzer that found a bug can no longer look
    green to the smoke alias. *)

let failures = ref 0

let fail ~tool ?seed fmt =
  incr failures;
  let prefix =
    match seed with
    | Some s -> Printf.sprintf "FAIL tool=%s seed=%d " tool s
    | None -> Printf.sprintf "FAIL tool=%s " tool
  in
  Printf.ksprintf (fun msg -> Printf.printf "%s%s\n%!" prefix msg) fmt

let count () = !failures

(** Print the run summary; exit 1 if any {!fail} was recorded. *)
let finish tool =
  Printf.printf "%s done, %d failure(s)\n%!" tool !failures;
  if !failures > 0 then exit 1

(* ---- seed-range argv parsing ----------------------------------------- *)

(** Parse a seed specification: ["N"] is the range [1..N], ["A..B"] the
    inclusive range.  [None] on anything malformed or empty. *)
let range_of_string (s : string) : (int * int) option =
  let len = String.length s in
  let rec dots i =
    if i + 1 >= len then None
    else if s.[i] = '.' && s.[i + 1] = '.' then Some i
    else dots (i + 1)
  in
  match dots 0 with
  | Some i -> (
    let a = String.sub s 0 i in
    let b = String.sub s (i + 2) (len - i - 2) in
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some a, Some b when a <= b -> Some (a, b)
    | _ -> None)
  | None -> (
    match int_of_string_opt s with Some n when n >= 1 -> Some (1, n) | None | Some _ -> None)

(** Shared argv handling for the seed-driven dev fuzzers: no argument
    means [1..default]; a malformed argument prints usage and exits 2
    instead of dying in [int_of_string]. *)
let seed_range ~tool ~default (argv : string array) : int * int =
  if Array.length argv <= 1 then (1, default)
  else
    match range_of_string argv.(1) with
    | Some r -> r
    | None ->
      Printf.eprintf "usage: %s [N | A..B]   (seed count or inclusive range; got %S)\n"
        tool argv.(1);
      exit 2
