(** Canonical failure reporting for the dev fuzzers and gates.

    Every failure path in [dev/] goes through {!fail}, which prints one
    grep-able line in a single shared format:

      FAIL tool=<tool> seed=<n> <message>

    so a red run always surfaces the reproducer seed (tools without a
    seed axis omit the field), and {!finish} turns any recorded failure
    into a non-zero exit — a fuzzer that found a bug can no longer look
    green to the smoke alias. *)

let failures = ref 0

let fail ~tool ?seed fmt =
  incr failures;
  let prefix =
    match seed with
    | Some s -> Printf.sprintf "FAIL tool=%s seed=%d " tool s
    | None -> Printf.sprintf "FAIL tool=%s " tool
  in
  Printf.ksprintf (fun msg -> Printf.printf "%s%s\n%!" prefix msg) fmt

let count () = !failures

(** Print the run summary; exit 1 if any {!fail} was recorded. *)
let finish tool =
  Printf.printf "%s done, %d failure(s)\n%!" tool !failures;
  if !failures > 0 then exit 1
