open Zkopt_ir
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "wlcheck"

let () =
  let size = if Array.length Sys.argv > 1 && Sys.argv.(1) = "full" then Zkopt_workloads.Workload.Full else Zkopt_workloads.Workload.Quick in
  List.iter (fun (w : Zkopt_workloads.Workload.t) ->
    let t0 = Unix.gettimeofday () in
    try
      let m = w.build size in
      Zkopt_runtime.Runtime.link m;
      Verify.check m;
      let iv = Interp.checksum m in
      let ev, retired = Zkopt_riscv.Codegen.run m in
      let ev = Eval.norm32 (Int64.of_int32 ev) in
      let ok = Int64.equal iv ev in
      if not ok then
        Seedfmt.fail ~tool "workload %s MISMATCH interp=%Lx emu=%Lx" w.name iv ev;
      Printf.printf "%-28s %-10s interp=%Lx emu=%Lx retired=%-9d %.2fs %s\n%!"
        w.name w.suite iv ev retired (Unix.gettimeofday () -. t0)
        (if ok then "ok" else "MISMATCH")
    with e ->
      Seedfmt.fail ~tool "workload %s EXN %s" w.name (Printexc.to_string e))
    (Zkopt_workloads.Suite.all ());
  Seedfmt.finish tool
