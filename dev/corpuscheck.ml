(** Corpus regression gate: replay every persisted bug entry across its
    recorded backend set and require the divergence to reproduce under
    the same classification key.  A bug that silently stops reproducing
    (or reproduces differently) fails the gate — the corpus is the
    regression suite for every miscompile the fuzzer ever caught.
    Usage: [corpuscheck.exe [DIR]] (default [corpus]). *)

module Seedfmt = Zkopt_devutil.Seedfmt
module Case = Zkopt_fuzz.Case
module Corpus = Zkopt_fuzz.Corpus

let tool = "corpuscheck"

(* replaying valida-backed entries needs the self-registering backend *)
let () = Zkopt_valida.Vbackend.ensure ()

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "corpus" in
  let entries = Corpus.load_dir dir in
  if entries = [] then
    Printf.printf "corpuscheck: no corpus entries under %s\n%!" dir;
  List.iter
    (fun (path, r) ->
      let name = Filename.basename path in
      match r with
      | Error msg -> Seedfmt.fail ~tool "%s: unreadable: %s" name msg
      | Ok e -> (
        let seed =
          match e.Corpus.source with
          | Case.Seed { seed; _ } -> Some seed
          | Case.Workload _ -> None
        in
        match Corpus.replay e with
        | Corpus.Reproduced ->
          Printf.printf "ok %s  %s / %s -> %s\n%!" name
            (Case.source_name e.Corpus.source)
            e.Corpus.pipeline.Case.spec e.Corpus.key
        | Corpus.Broken msg -> Seedfmt.fail ~tool ?seed "%s: broken: %s" name msg
        | r ->
          Seedfmt.fail ~tool ?seed "%s: %s (recorded %s)" name
            (Corpus.replay_name r) e.Corpus.key))
    entries;
  Seedfmt.finish tool
