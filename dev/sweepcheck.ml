(* Multicore sweep smoke gate (dune build @smoke):

   1. determinism — a 2-domain mini-sweep (3 programs x 9 profiles) must
      reproduce the sequential run cell-for-cell;
   2. memoization — re-running the same cells through a shared compile
      cache must serve >90% of lookups without compiling (in practice
      100%: every digest is resident after the first pass). *)

open Zkopt_core
module H = Zkopt_harness.Harness
module Checkpoint = Zkopt_harness.Checkpoint
module Cache = Zkopt_exec.Cache
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "sweepcheck"

let canonical (points : (string * string, Zkopt_harness.Cell.point) Hashtbl.t) =
  Hashtbl.fold (fun _ p acc -> Checkpoint.encode_point p :: acc) points []
  |> List.sort compare |> String.concat "\n"

let () =
  let programs = [ "fibonacci"; "factorial"; "loop-sum" ] in
  let profiles =
    [
      Profile.Baseline;
      Profile.Single_pass "licm";
      Profile.Single_pass "mem2reg";
      Profile.Single_pass "gvn";
      Profile.Single_pass "inline";
      Profile.Single_pass "simplifycfg";
      Profile.Level Zkopt_passes.Catalog.O1;
      Profile.Level Zkopt_passes.Catalog.O2;
      Profile.Level Zkopt_passes.Catalog.O3;
    ]
  in
  let cfg jobs cache =
    {
      (H.default ~size:Zkopt_workloads.Workload.Quick) with
      H.programs = Some programs;
      profiles = Some profiles;
      jobs;
      cache;
    }
  in
  let cells = List.length programs * List.length profiles in
  let seq = H.run (cfg 1 None) in
  if Hashtbl.length seq.H.points <> cells then
    Seedfmt.fail ~tool "sequential run measured %d of %d cells"
      (Hashtbl.length seq.H.points) cells;
  let shared = Cache.create () in
  let par = H.run (cfg 2 (Some shared)) in
  if not (String.equal (canonical seq.H.points) (canonical par.H.points)) then
    Seedfmt.fail ~tool "2-domain sweep diverged from the sequential run";
  (* second pass over the same cells: the shared cache is warm, so
     (almost) nothing may compile *)
  let again = H.run (cfg 2 (Some shared)) in
  if not (String.equal (canonical seq.H.points) (canonical again.H.points)) then
    Seedfmt.fail ~tool "warm-cache sweep diverged from the sequential run";
  let rate = Cache.hit_rate_pct again.H.cache_stats in
  if rate <= 90.0 then
    Seedfmt.fail ~tool "warm-cache hit rate %.1f%% (need >90%%)" rate;
  Printf.printf
    "sweepcheck: %d cells, 2-domain run deterministic, warm-cache hit rate \
     %.1f%%\n"
    cells rate;
  Seedfmt.finish tool
