(** Autotune-engine smoke gate.

    Runs a small fixed-seed tune (2 generations, risc0 + sp1 targets)
    three times and asserts the engine's two core contracts:

    - determinism: the checkpoint row stream is byte-identical at
      [jobs = 1] and [jobs = 4] over fresh caches, with the prefix
      cache live (hits > 0) in both runs;
    - warm reuse: re-running the same tune over the warm prefix cache
      serves at least half its module lookups from cache.

    Part of the @smoke alias; see dev/check.sh. *)

module A = Zkopt_autotune.Autotune
module Cache = Zkopt_exec.Cache
module Workload = Zkopt_workloads.Workload
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "tunecheck"

let targets ~artifacts =
  let w = Workload.find "fibonacci" in
  let build () = w.Workload.build Workload.Quick in
  List.map
    (fun vm ->
      A.backend_target ~cache:artifacts ~program:"fibonacci" ~build
        (Zkopt_backend.Registry.find vm))
    [ "risc0"; "sp1" ]

let tune ~jobs ~prefixes ~targets =
  let rows = ref [] in
  let cfg =
    {
      (A.default ~seed:7 ~population:4 ~iterations:8 ~jobs ()) with
      A.prefix_cache = Some prefixes;
      on_row = Some (fun r -> rows := r :: !rows);
    }
  in
  let o = A.search cfg ~targets in
  (o, List.rev !rows)

let () =
  (* referencing Suite forces the workload registrations to link *)
  Zkopt_workloads.Suite.check_composition ();
  let artifacts = Cache.create ~capacity:256 () in
  let ts = targets ~artifacts in
  let cold1 = Cache.create ~capacity:1024 () in
  let cold4 = Cache.create ~capacity:1024 () in
  let o1, rows1 = tune ~jobs:1 ~prefixes:cold1 ~targets:ts in
  let o4, rows4 = tune ~jobs:4 ~prefixes:cold4 ~targets:ts in
  if rows1 <> rows4 then
    Seedfmt.fail ~tool ~seed:7
      "rows diverge across jobs: %d rows at jobs=1 vs %d at jobs=4"
      (List.length rows1) (List.length rows4);
  (match (o1.A.result, o4.A.result) with
  | Some r1, Some r4 ->
    if r1.A.best.A.genome <> r4.A.best.A.genome then
      Seedfmt.fail ~tool ~seed:7 "best genome diverges across jobs";
    if List.length r1.A.history <> 2 then
      Seedfmt.fail ~tool ~seed:7 "expected 2 generations, saw %d"
        (List.length r1.A.history)
  | _ -> Seedfmt.fail ~tool ~seed:7 "search produced no result");
  List.iter
    (fun (label, (o : A.outcome)) ->
      if o.A.cache_stats.A.prefix.Cache.hits <= 0 then
        Seedfmt.fail ~tool ~seed:7 "prefix cache never hit at %s" label)
    [ ("jobs=1", o1); ("jobs=4", o4) ];
  (* warm pass: identical seed over the jobs=4 prefix cache must serve
     at least half its lookups from cache *)
  let ow, rows_w = tune ~jobs:4 ~prefixes:cold4 ~targets:ts in
  if rows_w <> rows4 then
    Seedfmt.fail ~tool ~seed:7 "warm rerun rows diverge from cold run";
  let ps = ow.A.cache_stats.A.prefix in
  let rate = Cache.hit_rate_pct ps in
  if rate < 50.0 then
    Seedfmt.fail ~tool ~seed:7
      "warm prefix hit rate %.1f%% < 50%% (%d hits / %d misses)" rate
      ps.Cache.hits ps.Cache.misses;
  Printf.printf
    "tunecheck: %d rows, warm prefix hit rate %.1f%% (%d hits / %d misses)\n"
    (List.length rows1) rate ps.Cache.hits ps.Cache.misses;
  Seedfmt.finish tool
