open Zkopt_ir
let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1500 in
  let bad = ref 0 in
  for seed = 1 to n do
    let m = Randprog.generate ~seed () in
    Zkopt_runtime.Runtime.link m;
    (try Verify.check m with Verify.Ill_formed msg ->
      incr bad; Printf.printf "seed %d ILLFORMED: %s\n" seed msg);
    (try
      let iv = Interp.checksum m in
      let ev, _ = Zkopt_riscv.Codegen.run m in
      let ev = Eval.norm32 (Int64.of_int32 ev) in
      if not (Int64.equal iv ev) then begin
        incr bad;
        Printf.printf "seed %d MISMATCH interp=%Ld emu=%Ld\n" seed iv ev
      end
    with e -> incr bad; Printf.printf "seed %d EXN %s\n" seed (Printexc.to_string e))
  done;
  Printf.printf "done, %d bad\n" !bad
