(** Seeded random-program differential fuzzer, rebased onto the
    campaign engine: every seed runs the full {!Zkopt_fuzz.Case} oracle
    stack (verify + interp reference, metamorphic baseline pipeline,
    risc0 backend differential) instead of the old hand-rolled
    interp-vs-codegen loop.  Usage: [fuzz.exe [N | A..B]]. *)

module Seedfmt = Zkopt_devutil.Seedfmt
module Case = Zkopt_fuzz.Case
module Campaign = Zkopt_fuzz.Campaign

let tool = "fuzz"

let () =
  let lo, hi = Seedfmt.seed_range ~tool ~default:1500 Sys.argv in
  let cfg =
    {
      (Campaign.default ~backends:[ Case.resolve_backend "risc0" ]) with
      Campaign.sources = List.init (hi - lo + 1) (fun i -> Case.seed (lo + i));
    }
  in
  let s = Campaign.run cfg in
  List.iter
    (fun (f : Campaign.finding) ->
      let seed =
        match f.Campaign.case.Case.source with
        | Case.Seed { seed; _ } -> Some seed
        | Case.Workload _ -> None
      in
      Seedfmt.fail ~tool ?seed "%s: %s"
        (Case.divergence_key f.Campaign.divergence)
        (Case.divergence_detail f.Campaign.divergence))
    s.Campaign.findings;
  Printf.printf "%s\n" (Campaign.describe s);
  Seedfmt.finish tool
