open Zkopt_ir
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "fuzz"

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1500 in
  for seed = 1 to n do
    let m = Randprog.generate ~seed () in
    Zkopt_runtime.Runtime.link m;
    (try Verify.check m
     with Verify.Ill_formed msg -> Seedfmt.fail ~tool ~seed "ILLFORMED %s" msg);
    try
      let iv = Interp.checksum m in
      let ev, _ = Zkopt_riscv.Codegen.run m in
      let ev = Eval.norm32 (Int64.of_int32 ev) in
      if not (Int64.equal iv ev) then
        Seedfmt.fail ~tool ~seed "MISMATCH interp=%Ld emu=%Ld" iv ev
    with e -> Seedfmt.fail ~tool ~seed "EXN %s" (Printexc.to_string e)
  done;
  Seedfmt.finish tool
