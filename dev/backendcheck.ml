(* Backend conformance gate (dune build @smoke):

   every registered backend must produce the same canonical exit value
   as every other on the whole workload suite — the backends are allowed
   to disagree about cost, never about the answer.  Each program is
   checked under the unoptimized baseline and under -O3, so both the
   straight and the heavily transformed codegen paths are exercised.
   Exit values are compared as the canonical int64 encoding
   (Measure.exit64), which every backend produces at its boundary. *)

open Zkopt_core
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Seedfmt = Zkopt_devutil.Seedfmt

let tool = "backendcheck"

let () = Zkopt_valida.Vbackend.ensure ()

let () =
  Zkopt_workloads.Suite.check_composition ();
  let backends = Registry.all () in
  if List.length backends < 3 then
    Seedfmt.fail ~tool "expected >=3 registered backends, found %d"
      (List.length backends);
  let profiles =
    [ Profile.Baseline; Profile.Level Zkopt_passes.Catalog.O3 ]
  in
  let checked = ref 0 in
  List.iter
    (fun (w : Zkopt_workloads.Workload.t) ->
      let build () =
        w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick
      in
      List.iter
        (fun profile ->
          match Measure.prepare_ir ~build profile with
          | exception e ->
            Seedfmt.fail ~tool "%s/%s: prepare failed: %s"
              w.Zkopt_workloads.Workload.name (Profile.name profile)
              (Printexc.to_string e)
          | m ->
            let arts : (string, Backend.compiled) Hashtbl.t =
              Hashtbl.create 4
            in
            let exits =
              List.map
                (fun (b : Backend.t) ->
                  let c =
                    match Hashtbl.find_opt arts b.Backend.schema with
                    | Some c -> c
                    | None ->
                      let c = b.Backend.compile m in
                      Hashtbl.add arts b.Backend.schema c;
                      c
                  in
                  let r = c.Backend.measure ~vm:b.Backend.name () in
                  (match r.Backend.accounting with
                  | Ok () -> ()
                  | Error e ->
                    Seedfmt.fail ~tool "%s/%s: %s accounting: %s"
                      w.Zkopt_workloads.Workload.name (Profile.name profile)
                      b.Backend.name e);
                  (b.Backend.name, r.Backend.zk.Measure.exit_value))
                backends
            in
            incr checked;
            (match exits with
            | (ref_name, ref_exit) :: rest ->
              List.iter
                (fun (name, exit_) ->
                  if not (Int64.equal exit_ ref_exit) then
                    Seedfmt.fail ~tool
                      "%s/%s: %s exit 0x%Lx disagrees with %s exit 0x%Lx"
                      w.Zkopt_workloads.Workload.name (Profile.name profile)
                      name exit_ ref_name ref_exit)
                rest
            | [] -> ()))
        profiles)
    (Zkopt_workloads.Workload.all ());
  Printf.printf
    "backendcheck: %d program/profile cells agree across %d backends (%s)\n"
    !checked (List.length backends)
    (String.concat ", " (Registry.names ()));
  Seedfmt.finish tool
