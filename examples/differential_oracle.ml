(** The paper's zkVM-testing proposal (§6.2): use optimized vs
    unoptimized runs as a test oracle — two equivalent binaries must
    produce identical results, so any divergence flags a zkVM bug.

    We arm the injected SP1 silent-halt fault (the shape of the
    security-critical bug the paper found) and show the oracle catching
    it even though the proof "verifies".

    Run with: dune exec examples/differential_oracle.exe *)

open Zkopt_core

let () =
  Zkopt_workloads.Suite.check_composition ();
  let w = Zkopt_workloads.Workload.find "factorial" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Full in
  (* reference: healthy executor, unoptimized *)
  let reference =
    Measure.run_zkvm Zkopt_zkvm.Config.sp1 (Measure.prepare ~build Profile.Baseline)
  in
  Printf.printf "reference checksum: %Lx (%d cycles)\n\n"
    reference.Measure.exit_value reference.Measure.cycles;
  (* a buggy executor build with dense shard boundaries *)
  let buggy_vm =
    { Zkopt_zkvm.Config.sp1 with
      Zkopt_zkvm.Config.name = "sp1-buggy";
      segment_limit = 1 lsl 12 }
  in
  let caught = ref false in
  List.iter
    (fun seq ->
      if not !caught then begin
        let profile =
          Profile.Custom (seq, Zkopt_passes.Pass.standard_config)
        in
        let c = Measure.prepare ~build profile in
        let r =
          Measure.run_zkvm
            ~fault:Zkopt_zkvm.Executor.Silent_halt_on_boundary_jalr buggy_vm c
        in
        Printf.printf "sequence [%-28s] checksum %Lx, %7d cycles -> %s\n"
          (String.concat ";" seq) r.Measure.exit_value r.Measure.cycles
          (if Int64.equal r.Measure.exit_value reference.Measure.exit_value
           then "consistent"
           else "ORACLE VIOLATION (zkVM bug!)");
        if not (Int64.equal r.Measure.exit_value reference.Measure.exit_value)
        then caught := true
      end)
    [ [ "mem2reg" ]; [ "inline" ]; [ "inline"; "licm" ];
      [ "simplifycfg"; "inline" ]; [ "tailcallelim" ] ];
  if !caught then begin
    print_endline "\nthe truncated execution still produced a 'verifying'";
    print_endline "proof — only the optimized-vs-unoptimized differential";
    print_endline "oracle exposed the soundness gap, as the paper proposes."
  end
  else
    print_endline
      "\nno sequence aligned a shard boundary with a return this time —\n\
       the bug needs specific alignment, exactly as in the paper.";
  (* ---- the generalized fault family (lib/harness) ------------------- *)
  (* Accounting bugs don't change the checksum, so the checksum oracle
     is blind to them; the harness's conservation oracles catch them
     instead: paging cycles must reconcile with page events, and the
     per-segment trace must sum to the reported totals. *)
  print_endline "\ngeneralized faults vs the accounting oracles:";
  let c = Measure.prepare ~build Profile.Baseline in
  List.iter
    (fun (name, fault) ->
      let raw = Measure.run ?fault Zkopt_zkvm.Config.risc0 c in
      match Zkopt_harness.Cell.check_accounting Zkopt_zkvm.Config.risc0 raw with
      | Ok () -> Printf.printf "  %-24s accounting reconciles\n" name
      | Error msg -> Printf.printf "  %-24s CAUGHT: %s\n" name msg)
    [ ("healthy", None);
      ("dropped-page-out", Some Zkopt_zkvm.Executor.Dropped_page_out);
      ("truncated-final-segment",
       Some Zkopt_zkvm.Executor.Truncated_final_segment) ]
