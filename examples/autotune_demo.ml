(** Autotuning demo (the paper's RQ2 workflow in miniature): search pass
    sequences for one program with the genetic tuner, using cycle count
    as the fitness proxy, then compare the best sequence against -O3.

    Run with: dune exec examples/autotune_demo.exe *)

open Zkopt_core

let () =
  Zkopt_workloads.Suite.check_composition ();
  let w = Zkopt_workloads.Workload.find "npb-mg" in
  let build () = w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Full in
  print_endline "autotuning npb-mg for RISC Zero (60 evaluations)...\n";
  let ga =
    Zkopt_autotune.Autotune.run ~seed:42 ~iterations:60
      ~cycles:
        (Zkopt_autotune.Autotune.zkvm_cycles ~build Zkopt_zkvm.Config.risc0)
      ()
  in
  let best = ga.Zkopt_autotune.Autotune.best in
  Printf.printf "best sequence (%d cycles):\n  %s\n\n"
    best.Zkopt_autotune.Autotune.fitness
    (String.concat " -> " best.Zkopt_autotune.Autotune.genome);
  let measure profile =
    let c = Measure.prepare ~build profile in
    Measure.run_zkvm Zkopt_zkvm.Config.risc0 c
  in
  let base = measure Profile.Baseline in
  let o3 = measure (Profile.Level Zkopt_passes.Catalog.O3) in
  let tuned =
    measure (Profile.Custom (best.genome, Zkopt_passes.Pass.standard_config))
  in
  Printf.printf "baseline: %9d cycles   prove %6.2fs\n" base.Measure.cycles
    base.Measure.prove_time_s;
  Printf.printf "-O3:      %9d cycles   prove %6.2fs\n" o3.Measure.cycles
    o3.Measure.prove_time_s;
  Printf.printf "tuned:    %9d cycles   prove %6.2fs\n" tuned.Measure.cycles
    tuned.Measure.prove_time_s;
  Printf.printf "\ncycle count is a faithful proxy: its improvements carry \n";
  Printf.printf "over to proving time (the paper measures r > 0.98).\n"
