(** Traditional-CPU timing model (the paper's RQ3 "x86" contrast point).

    The same RV32 instruction stream is replayed through a classic cost
    model: variable instruction latencies (division is expensive),
    register-dependence-limited superscalar issue, an L1 LRU cache with a
    miss penalty, and a 2-bit branch predictor with a misprediction
    bubble.  This reproduces every qualitative divergence the paper leans
    on — div-to-shifts wins here and loses on zkVMs, branchless selects
    beat unpredictable branches, unrolling benefits from ILP, and loop
    fission benefits locality.

    Substitution note (see DESIGN.md): the paper measured native x86
    binaries; we replay RISC-V code under an x86-class cost model, which
    preserves the *direction and rough magnitude* of optimization effects
    without building a second backend. *)

open Zkopt_riscv

type params = {
  issue_width : float;           (* instructions per cycle, dependence permitting *)
  lat_default : float;
  lat_mul : float;
  lat_div : float;
  lat_load_hit : float;
  lat_store : float;
  miss_penalty : float;
  mispredict_penalty : float;
  ghz : float;
  precompile_native_cycles : string -> float;
      (* native cost of the primitive a zkVM precompile replaces *)
}

let default_params =
  {
    issue_width = 4.0;
    lat_default = 1.0;
    lat_mul = 3.0;
    lat_div = 24.0;
    lat_load_hit = 4.0;
    lat_store = 1.0;
    miss_penalty = 90.0;
    mispredict_penalty = 14.0;
    ghz = 3.0;
    precompile_native_cycles =
      (fun name ->
        match name with
        | "sha256_compress" -> 1200.0
        | "keccakf" -> 1400.0
        | "ecdsa_verify" -> 220_000.0
        | "ed25519_verify" -> 140_000.0
        | "bigint_mulmod" -> 900.0
        | _ -> 1000.0);
  }

type result = {
  cycles : float;
  time_s : float;
  retired : int;
  cache_hits : int;
  cache_misses : int;
  mispredicts : int;
  exit_value : int32;
}

let lat_of params (i : Isa.t) =
  match i with
  | Isa.Op ((Isa.DIV | DIVU | REM | REMU), _, _, _) -> params.lat_div
  | Op ((Isa.MUL | MULH | MULHSU | MULHU), _, _, _) -> params.lat_mul
  | Store _ -> params.lat_store
  | _ -> params.lat_default

(** Replay module [m] (compiled as [cg]) through the CPU model.

    [sink] optionally attributes CPU cycles to the pc that spent them
    (through {!Zkopt_zkvm.Machine.sink}'s [on_cpu_retire] channel): each
    instruction is charged its issue-clock advance, and the trailing
    memory-port drain is charged to the last retired pc, so the attributed
    costs sum exactly to the reported [cycles]. *)
let run ?(params = default_params) ?(fuel = 500_000_000)
    ?(sink : Zkopt_zkvm.Machine.sink option)
    (cg : Codegen.t) (m : Zkopt_ir.Modul.t) : result =
  let cache = Cache.create () in
  let pred = Predictor.create () in
  (* per-instruction source/destination register lists, precomputed per
     code index so the hot loop neither rebuilds an [Asm.item] nor
     re-derives the lists on every retire (same lists, same order — the
     float folds below are order-sensitive and checkpoint-pinned) *)
  let code = cg.Codegen.program.Asm.code in
  let uses_of = Array.map (fun i -> Regalloc.item_uses (Asm.Ins i)) code in
  let defs_of = Array.map (fun i -> Regalloc.item_defs (Asm.Ins i)) code in
  (* ready.(r) = cycle at which register r's value is available *)
  let ready = Array.make 32 0.0 in
  let clock = ref 0.0 in        (* last issue cycle *)
  let fetch_stall = ref 0.0 in  (* earliest next issue due to mispredicts *)
  let div_busy_until = ref 0.0 in  (* the divider is not pipelined *)
  let mem_busy_until = ref 0.0 in  (* one outstanding cache miss at a time *)
  let hooks = Emulator.no_hooks () in
  (* events recorded during the step, consumed when timing it *)
  let mem_events = ref [] in
  let branch_event = ref None in
  let precompile_event = ref None in
  hooks.on_mem <- (fun ~write addr bytes -> mem_events := (write, addr, bytes) :: !mem_events);
  hooks.on_branch <- (fun ~pc ~taken target -> branch_event := Some (pc, taken, target));
  hooks.on_precompile <- (fun name -> precompile_event := Some name);
  let emu = Emulator.create ~hooks cg.Codegen.program m in
  let time_instr idx (i : Isa.t) =
    let issue_gap = 1.0 /. params.issue_width in
    let srcs = uses_of.(idx) in
    let dsts = defs_of.(idx) in
    let dep_ready =
      List.fold_left (fun acc r -> Float.max acc ready.(r)) 0.0 srcs
    in
    let is_div =
      match i with
      | Isa.Op ((Isa.DIV | DIVU | REM | REMU), _, _, _) -> true
      | _ -> false
    in
    let issue = Float.max (!clock +. issue_gap) (Float.max dep_ready !fetch_stall) in
    let issue = if is_div then Float.max issue !div_busy_until else issue in
    clock := issue;
    let lat = ref (lat_of params i) in
    if is_div then div_busy_until := issue +. params.lat_div;
    (* memory: cache hit/miss on each access; misses serialize on the
       memory port (fill-buffer bandwidth), and store misses consume
       bandwidth without stalling dependents *)
    List.iter
      (fun (write, addr, _bytes) ->
        let hit = Cache.access cache addr in
        if not hit then begin
          let start = Float.max issue !mem_busy_until in
          mem_busy_until := start +. params.miss_penalty;
          if not write then
            lat := !lat +. (!mem_busy_until -. issue)
        end
        else if not write then lat := Float.max !lat params.lat_load_hit)
      !mem_events;
    mem_events := [];
    (* precompile: native cost of the primitive *)
    (match !precompile_event with
    | Some name ->
      lat := !lat +. params.precompile_native_cycles name;
      precompile_event := None
    | None -> ());
    (* branches: conditional mispredicts stall the front end *)
    (match (!branch_event, i) with
    | Some (pc, taken, _), Isa.Branch _ ->
      if not (Predictor.access pred pc ~taken) then
        fetch_stall := issue +. params.mispredict_penalty;
      branch_event := None
    | Some _, _ -> branch_event := None
    | None, _ -> ());
    let completion = issue +. !lat in
    List.iter (fun r -> if r <> 0 then ready.(r) <- completion) dsts
  in
  let budget = ref fuel in
  let last = ref None in
  while not emu.Emulator.halted do
    if !budget <= 0 then raise (Emulator.Out_of_fuel fuel);
    decr budget;
    let pc = emu.Emulator.pc in
    let idx =
      Int32.to_int (Int32.sub pc cg.Codegen.program.Asm.base) / 4
    in
    let ins = code.(idx) in
    Emulator.step emu;
    (match sink with
    | Some s ->
      let before = !clock in
      time_instr idx ins;
      s.Zkopt_zkvm.Machine.on_cpu_retire ~pc ins ~cost:(!clock -. before);
      last := Some (pc, ins)
    | None -> time_instr idx ins)
  done;
  let cycles = Float.max !clock !mem_busy_until in
  (match (sink, !last) with
  | Some s, Some (pc, ins) when cycles > !clock ->
    s.Zkopt_zkvm.Machine.on_cpu_retire ~pc ins ~cost:(cycles -. !clock)
  | _ -> ());
  {
    cycles;
    time_s = cycles /. (params.ghz *. 1e9);
    retired = emu.Emulator.retired;
    cache_hits = cache.Cache.hits;
    cache_misses = cache.Cache.misses;
    mispredicts = pred.Predictor.mispredicts;
    exit_value = emu.Emulator.exit_value;
  }

(** Compile and run through the CPU model. *)
let compile_and_run ?params ?fuel (m : Zkopt_ir.Modul.t) : result =
  let cg = Codegen.compile m in
  run ?params ?fuel cg m
