(** Attribution collector: implements the executor's and CPU model's
    attribution sinks, resolving each charged pc to a provenance site
    through the binary's source map and maintaining a shadow call stack
    for folded-flamegraph output.

    The shadow stack mirrors the RISC-V calling convention the code
    generator emits: a call is always [jal ra, off] (static target) or
    [jalr ra, ...] (indirect — none are emitted today, but the collector
    tolerates them), and a return is [jalr x0, 0(ra)].  The call
    instruction itself is charged to the caller's frame; the push/pop
    happens after charging. *)

open Zkopt_riscv

type t = {
  site_of_pc : int32 -> (string * string) option;
      (* the backend's provenance map: pc -> (function, IR block) *)
  profile : Profile.t;
  mutable stack : string list;  (* call frames, innermost first *)
}

let create ~site_of_pc profile = { site_of_pc; profile; stack = [] }

(** Collector over an assembled RV32 program (the pre-backend entry
    point, kept for direct callers). *)
let of_program prog profile =
  create ~site_of_pc:(fun pc -> Asm.site_of_pc prog pc) profile

let site_at c pc =
  match c.site_of_pc pc with
  | Some (f, b) -> Site.make f b
  | None -> Site.unknown

let fold_key c (s : Site.t) =
  String.concat ";" (List.rev_append c.stack [ Site.to_string s ])

let charge_instr c ~pc (ins : Isa.t) ~cost =
  let s = site_at c pc in
  let k = Profile.counters c.profile s in
  k.Profile.exec <- k.Profile.exec + cost;
  k.Profile.retired <- k.Profile.retired + 1;
  (match ins with
  | Isa.Load _ | Isa.Store _ -> k.Profile.mem_ops <- k.Profile.mem_ops + 1
  | _ -> ());
  Profile.fold_add c.profile (fold_key c s) cost;
  match ins with
  | Isa.Jal (rd, off) when rd = Isa.ra ->
    let callee = site_at c (Int32.add pc (Int32.of_int off)) in
    c.stack <- callee.Site.func :: c.stack
  | Isa.Jalr (rd, _, _) when rd = Isa.ra -> c.stack <- "<indirect>" :: c.stack
  | Isa.Jalr (0, rs1, _) when rs1 = Isa.ra -> (
    match c.stack with _ :: tl -> c.stack <- tl | [] -> ())
  | _ -> ()

(** The zkVM-side sink.  [segment_pad] turns a segment close event (its
    trace-row/cycle count) into the backend's prover padding residue,
    mirroring that backend's prover — for the RV32 single-table model,
    pow2 padding above the min_po2 floor
    ({!Zkopt_backend.Backend.t.segment_pad}).

    Retires may arrive batched ({!Zkopt_zkvm.Machine.retire_batch});
    they are folded immediately, in retirement order, because
    {!charge_instr}'s shadow call stack is order-sensitive. *)
let zk_sink c ~(segment_pad : int -> int) : Zkopt_zkvm.Machine.sink =
  Zkopt_zkvm.Machine.sink
    ~on_retires:
      (Zkopt_zkvm.Machine.iter_retires (fun ~pc ins ~cost ->
           charge_instr c ~pc ins ~cost))
    ~on_precompile:(fun ~pc ~name:_ ~cost ->
      (* the ecall itself was already charged as a retire; the
         precompile's cycle bill rides on the same site *)
      let s = site_at c pc in
      let k = Profile.counters c.profile s in
      k.Profile.exec <- k.Profile.exec + cost;
      Profile.fold_add c.profile (fold_key c s) cost)
    ~on_page_in:(fun ~pc ~cost ->
      let k = Profile.counters c.profile (site_at c pc) in
      k.Profile.paging_in <- k.Profile.paging_in + cost)
    ~on_page_out:(fun ~pc ~cost ->
      let k = Profile.counters c.profile (site_at c pc) in
      k.Profile.paging_out <- k.Profile.paging_out + cost)
    ~on_segment:(fun ~pc ~user ~paging ->
      let k = Profile.counters c.profile (site_at c pc) in
      k.Profile.segment <- k.Profile.segment + segment_pad (user + paging))
    ()

(** The CPU-model sink (float cycles, no paging/segment dimensions). *)
let cpu_sink c : Zkopt_zkvm.Machine.sink =
  Zkopt_zkvm.Machine.sink
    ~on_cpu_retire:(fun ~pc (_ins : Isa.t) ~cost ->
      let k = Profile.counters c.profile (site_at c pc) in
      k.Profile.cpu <- k.Profile.cpu +. cost)
    ()
