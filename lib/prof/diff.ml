(** Profile diffing: given a baseline and a candidate profile, rank
    provenance sites by how much of a cost dimension they gained or
    lost.  This is what turns "licm made risc0 slower" into "licm made
    the hoisted loads page in at the loop header" (the paper's Fig. 9
    mechanism). *)

type entry = {
  site : Site.t;
  base : float;
  cand : float;
  delta : float;  (* cand - base; positive = candidate costs more *)
}

(** Entries for one dimension over the union of both profiles' sites,
    largest |delta| first (ties broken toward regressions, then by site
    name so output is deterministic). *)
let by_dim (dim : Profile.dim) ~(base : Profile.t) ~(cand : Profile.t) :
    entry list =
  let union = Hashtbl.create 64 in
  let add t side =
    Hashtbl.iter
      (fun s c ->
        let b, ca =
          match Hashtbl.find_opt union s with
          | Some (b, ca) -> (b, ca)
          | None -> (0.0, 0.0)
        in
        let v = Profile.get dim c in
        Hashtbl.replace union s
          (if side = `Base then (v, ca) else (b, v)))
      t.Profile.sites
  in
  add base `Base;
  add cand `Cand;
  let entries =
    Hashtbl.fold
      (fun site (b, ca) acc ->
        { site; base = b; cand = ca; delta = ca -. b } :: acc)
      union []
  in
  List.sort
    (fun a b ->
      match compare (Float.abs b.delta) (Float.abs a.delta) with
      | 0 -> (
        match compare b.delta a.delta with
        | 0 -> Site.compare a.site b.site
        | n -> n)
      | n -> n)
    entries

(** Dimension totals, candidate minus baseline. *)
let total_delta dim ~base ~cand = Profile.total cand dim -. Profile.total base dim
