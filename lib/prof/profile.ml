(** The profile model: per-site counters across every cost dimension the
    zkVM cost model distinguishes, plus folded call stacks for
    flamegraph output.

    Conservation identities (asserted by test/test_prof.ml):
    - sum of per-site [exec] = the executor's [user_cycles]
    - sum of [paging_in] = page_ins * page_in_cost, and likewise for
      [paging_out] — together they equal [paging_cycles]
    - sum of [segment] = the prover's pow2 padding residue over all
      segments
    - sum of [cpu] = the CPU model's reported float cycle count *)

type counters = {
  mutable exec : int;        (* zk user cycles: instructions + precompiles *)
  mutable paging_in : int;   (* page-in cycles charged to first-touch pcs *)
  mutable paging_out : int;  (* page-out cycles charged to first-dirty pcs *)
  mutable segment : int;     (* prover pow2 padding residue, in cycles *)
  mutable cpu : float;       (* CPU-model cycles (RQ3 contrast point) *)
  mutable retired : int;
  mutable mem_ops : int;
}

let fresh () =
  {
    exec = 0;
    paging_in = 0;
    paging_out = 0;
    segment = 0;
    cpu = 0.0;
    retired = 0;
    mem_ops = 0;
  }

type t = {
  vm : string;     (* cost-model name: "risc0", "sp1", "cpu" *)
  label : string;  (* what was profiled, e.g. "licm" or "O2" *)
  sites : (Site.t, counters) Hashtbl.t;
  folded : (string, int) Hashtbl.t;
      (* "frame;frame;func:block" -> exec cycles, flamegraph.pl format *)
}

let create ~vm ~label =
  { vm; label; sites = Hashtbl.create 64; folded = Hashtbl.create 64 }

let counters t site =
  match Hashtbl.find_opt t.sites site with
  | Some c -> c
  | None ->
    let c = fresh () in
    Hashtbl.replace t.sites site c;
    c

let fold_add t key cost =
  let cur = match Hashtbl.find_opt t.folded key with Some n -> n | None -> 0 in
  Hashtbl.replace t.folded key (cur + cost)

(* -- dimensions ------------------------------------------------------- *)

type dim = Exec | Paging_in | Paging_out | Segment | Cpu

let dims = [ Exec; Paging_in; Paging_out; Segment; Cpu ]

let dim_name = function
  | Exec -> "exec"
  | Paging_in -> "page-in"
  | Paging_out -> "page-out"
  | Segment -> "padding"
  | Cpu -> "cpu"

let dim_of_name = function
  | "exec" -> Some Exec
  | "page-in" | "pagein" -> Some Paging_in
  | "page-out" | "pageout" -> Some Paging_out
  | "padding" | "segment" -> Some Segment
  | "cpu" -> Some Cpu
  | _ -> None

let get dim (c : counters) =
  match dim with
  | Exec -> float_of_int c.exec
  | Paging_in -> float_of_int c.paging_in
  | Paging_out -> float_of_int c.paging_out
  | Segment -> float_of_int c.segment
  | Cpu -> c.cpu

(** Per-site zk cycles: what the prover ultimately pays for this site,
    excluding the shared padding residue. *)
let zk (c : counters) = c.exec + c.paging_in + c.paging_out

let total t dim =
  Hashtbl.fold (fun _ c acc -> acc +. get dim c) t.sites 0.0

(** All sites with their counters, hottest (by {!zk}) first. *)
let sites t =
  let l = Hashtbl.fold (fun s c acc -> (s, c) :: acc) t.sites [] in
  List.sort
    (fun (s1, c1) (s2, c2) ->
      match compare (zk c2) (zk c1) with
      | 0 -> Site.compare s1 s2
      | n -> n)
    l

let folded_lines t =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.folded [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* -- persistence ------------------------------------------------------ *)

(* Tab-separated text, one record per line:
     zkprof <version>
     vm <name>
     label <label>
     site <func> <block> <exec> <pin> <pout> <seg> <cpu> <retired> <memops>
     fold <stack> <cycles>
   Field values never contain tabs (function/block names come from the
   IR, which forbids them). *)

let save t path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "zkprof\t1\n";
  pr "vm\t%s\n" t.vm;
  pr "label\t%s\n" t.label;
  List.iter
    (fun ((s : Site.t), c) ->
      pr "site\t%s\t%s\t%d\t%d\t%d\t%d\t%.3f\t%d\t%d\n" s.Site.func
        s.Site.block c.exec c.paging_in c.paging_out c.segment c.cpu
        c.retired c.mem_ops)
    (sites t);
  List.iter (fun (k, v) -> pr "fold\t%s\t%d\n" k v) (folded_lines t);
  close_out oc

let load path =
  let ic = open_in path in
  let vm = ref "" and label = ref "" in
  let sites = Hashtbl.create 64 in
  let folded = Hashtbl.create 64 in
  let bad line = failwith (Printf.sprintf "%s: bad profile line %S" path line) in
  (try
     while true do
       let line = input_line ic in
       if not (String.equal line "") then
         match String.split_on_char '\t' line with
         | [ "zkprof"; "1" ] -> ()
         | [ "zkprof"; v ] ->
           failwith (Printf.sprintf "%s: unsupported profile version %s" path v)
         | [ "vm"; v ] -> vm := v
         | [ "label"; v ] -> label := v
         | [ "site"; f; b; exec; pin; pout; seg; cpu; retired; memops ] ->
           Hashtbl.replace sites (Site.make f b)
             {
               exec = int_of_string exec;
               paging_in = int_of_string pin;
               paging_out = int_of_string pout;
               segment = int_of_string seg;
               cpu = float_of_string cpu;
               retired = int_of_string retired;
               mem_ops = int_of_string memops;
             }
         | [ "fold"; k; v ] -> Hashtbl.replace folded k (int_of_string v)
         | _ -> bad line
     done
   with
  | End_of_file -> close_in ic
  | e ->
    close_in ic;
    raise e);
  { vm = !vm; label = !label; sites; folded }
