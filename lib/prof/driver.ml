(** One-call profiling drivers: run a compiled program under a zkVM
    configuration (or the CPU model) with an attribution collector
    installed, and return both the ordinary metrics and the profile.

    The profiled run is bit-identical to an unprofiled one — the sink
    only observes costs the executor was already accounting — so the
    metrics returned here match what [Measure.run_zkvm] reports without
    a profiler attached. *)

module Measure = Zkopt_core.Measure
module Backend = Zkopt_backend.Backend

let collector c profile =
  Collect.of_program c.Measure.codegen.Zkopt_riscv.Codegen.program profile

let rv32_segment_pad (cfg : Zkopt_zkvm.Config.t) n =
  Zkopt_zkvm.Prover.next_pow2 (max (1 lsl cfg.Zkopt_zkvm.Config.min_po2) n) - n

(** Profile one zkVM run.  [label] names the profile (e.g. the profile /
    pass under test); the vm name is taken from [cfg]. *)
let profile_zkvm ?fuel ~label (cfg : Zkopt_zkvm.Config.t)
    (c : Measure.compiled) : Zkopt_zkvm.Vm.metrics * Profile.t =
  let p = Profile.create ~vm:cfg.Zkopt_zkvm.Config.name ~label in
  let col = collector c p in
  let sink = Collect.zk_sink col ~segment_pad:(rv32_segment_pad cfg) in
  let r = Measure.run ?fuel ~sink cfg c in
  (r, p)

(** Profile one CPU-model run (fills only the [cpu] dimension). *)
let profile_cpu ?fuel ~label (c : Measure.compiled) :
    Measure.cpu_metrics * Profile.t =
  let p = Profile.create ~vm:"cpu" ~label in
  let col = collector c p in
  let r = Measure.run_cpu ?fuel ~sink:(Collect.cpu_sink col) c in
  (r, p)

(** Profile a zkVM run and fold the CPU dimension into the same profile,
    so one profile carries every dimension for diffing. *)
let profile_all ?fuel ~label (cfg : Zkopt_zkvm.Config.t)
    (c : Measure.compiled) : Zkopt_zkvm.Vm.metrics * Profile.t =
  let r, p = profile_zkvm ?fuel ~label cfg c in
  let col = collector c p in
  ignore (Measure.run_cpu ?fuel ~sink:(Collect.cpu_sink col) c);
  (r, p)

(** Profile one run of an arbitrary registered backend: the collector
    resolves provenance through the backend's own [site_of_pc] and
    mirrors its prover via [segment_pad], so the same four-dimensional
    profile (exec/paging/padding/cpu) works for zk-native ISAs.  When
    the backend can drive the CPU model, its dimension is folded into
    the same profile. *)
let profile_backend ?fuel ~label (b : Backend.t) (c : Backend.compiled) :
    Backend.measurement * Profile.t =
  let p = Profile.create ~vm:b.Backend.name ~label in
  let col = Collect.create ~site_of_pc:c.Backend.site_of_pc p in
  let sink = Collect.zk_sink col ~segment_pad:b.Backend.segment_pad in
  let r = c.Backend.measure ~vm:b.Backend.name ?fuel ~sink () in
  (match c.Backend.measure_cpu with
  | Some run ->
    let col = Collect.create ~site_of_pc:c.Backend.site_of_pc p in
    ignore (run ?fuel ~sink:(Collect.cpu_sink col) ())
  | None -> ());
  (r, p)
