(** One-call profiling drivers: run a compiled program under a zkVM
    configuration (or the CPU model) with an attribution collector
    installed, and return both the ordinary metrics and the profile.

    The profiled run is bit-identical to an unprofiled one — the sink
    only observes costs the executor was already accounting — so the
    metrics returned here match what [Measure.run_zkvm] reports without
    a profiler attached. *)

module Measure = Zkopt_core.Measure

let collector c profile =
  Collect.create
    c.Measure.codegen.Zkopt_riscv.Codegen.program
    profile

(** Profile one zkVM run.  [label] names the profile (e.g. the profile /
    pass under test); the vm name is taken from [cfg]. *)
let profile_zkvm ?fuel ~label (cfg : Zkopt_zkvm.Config.t)
    (c : Measure.compiled) : Zkopt_zkvm.Vm.metrics * Profile.t =
  let p = Profile.create ~vm:cfg.Zkopt_zkvm.Config.name ~label in
  let col = collector c p in
  let attr = Collect.zk_attr col cfg in
  let r = Measure.run_zkvm_raw ?fuel ~attr cfg c in
  (r, p)

(** Profile one CPU-model run (fills only the [cpu] dimension). *)
let profile_cpu ?fuel ~label (c : Measure.compiled) :
    Measure.cpu_metrics * Profile.t =
  let p = Profile.create ~vm:"cpu" ~label in
  let col = collector c p in
  let r = Measure.run_cpu ?fuel ~attr:(Collect.cpu_attr col) c in
  (r, p)

(** Profile a zkVM run and fold the CPU dimension into the same profile,
    so one profile carries every dimension for diffing. *)
let profile_all ?fuel ~label (cfg : Zkopt_zkvm.Config.t)
    (c : Measure.compiled) : Zkopt_zkvm.Vm.metrics * Profile.t =
  let r, p = profile_zkvm ?fuel ~label cfg c in
  let col = collector c p in
  ignore (Measure.run_cpu ?fuel ~attr:(Collect.cpu_attr col) c);
  (r, p)
