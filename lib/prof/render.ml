(** Profile renderers: ASCII tables (via lib/report), folded-stack text
    for flamegraph.pl, and JSON for external tooling. *)

open Zkopt_report

let fmt_int f = Printf.sprintf "%.0f" f
let fmt_delta f = Printf.sprintf "%+.0f" f

(** Hottest-site table: one row per site, every dimension as a column,
    sorted by zk cycles (exec + paging). *)
let table ?(top = 20) (p : Profile.t) =
  Report.section
    (Printf.sprintf "profile: %s  [vm=%s]" p.Profile.label p.Profile.vm);
  let all = Profile.sites p in
  let shown = List.filteri (fun i _ -> i < top) all in
  Report.table
    ~headers:
      [ "site"; "zk"; "exec"; "page-in"; "page-out"; "padding"; "cpu";
        "retired"; "mem" ]
    (List.map
       (fun (s, (c : Profile.counters)) ->
         [
           Site.to_string s;
           string_of_int (Profile.zk c);
           string_of_int c.Profile.exec;
           string_of_int c.Profile.paging_in;
           string_of_int c.Profile.paging_out;
           string_of_int c.Profile.segment;
           Printf.sprintf "%.0f" c.Profile.cpu;
           string_of_int c.Profile.retired;
           string_of_int c.Profile.mem_ops;
         ])
       shown);
  if List.length all > top then
    Report.note "(%d more sites below --top %d)" (List.length all - top) top;
  Report.note
    "totals: exec=%s  page-in=%s  page-out=%s  padding=%s  cpu=%s"
    (fmt_int (Profile.total p Profile.Exec))
    (fmt_int (Profile.total p Profile.Paging_in))
    (fmt_int (Profile.total p Profile.Paging_out))
    (fmt_int (Profile.total p Profile.Segment))
    (fmt_int (Profile.total p Profile.Cpu))

(** Diff tables: one per dimension that actually moved, top sites by
    |delta|.  [base]/[cand] label the two profiles in the header. *)
let diff ?(top = 10) ~(base : Profile.t) ~(cand : Profile.t) () =
  Report.section
    (Printf.sprintf "profile diff: %s -> %s  [vm=%s]" base.Profile.label
       cand.Profile.label cand.Profile.vm);
  List.iter
    (fun dim ->
      let entries = Diff.by_dim dim ~base ~cand in
      let moved = List.filter (fun (e : Diff.entry) -> e.delta <> 0.0) entries in
      if moved <> [] then begin
        Report.note "";
        Report.note "%s: total %s cycles" (Profile.dim_name dim)
          (fmt_delta (Diff.total_delta dim ~base ~cand));
        Report.table
          ~headers:[ "site"; base.Profile.label; cand.Profile.label; "delta" ]
          (List.filteri (fun i _ -> i < top) moved
          |> List.map (fun (e : Diff.entry) ->
                 [
                   Site.to_string e.site;
                   fmt_int e.base;
                   fmt_int e.cand;
                   fmt_delta e.delta;
                 ]))
      end)
    Profile.dims

(** Folded stacks in flamegraph.pl input format, one "stack cycles" per
    line. *)
let folded oc (p : Profile.t) =
  List.iter
    (fun (k, v) -> Printf.fprintf oc "%s %d\n" k v)
    (Profile.folded_lines p)

(* -- JSON ------------------------------------------------------------- *)

let json_of_counters (c : Profile.counters) : Json.t =
  Json.Obj
    [
      ("exec", Json.Int c.Profile.exec);
      ("page_in", Json.Int c.Profile.paging_in);
      ("page_out", Json.Int c.Profile.paging_out);
      ("padding", Json.Int c.Profile.segment);
      ("cpu", Json.Float c.Profile.cpu);
      ("retired", Json.Int c.Profile.retired);
      ("mem_ops", Json.Int c.Profile.mem_ops);
    ]

let json_of_profile (p : Profile.t) : Json.t =
  Json.Obj
    [
      ("vm", Json.Str p.Profile.vm);
      ("label", Json.Str p.Profile.label);
      ( "sites",
        Json.Arr
          (List.map
             (fun (s, c) ->
               Json.Obj
                 [
                   ("func", Json.Str s.Site.func);
                   ("block", Json.Str s.Site.block);
                   ("counters", json_of_counters c);
                 ])
             (Profile.sites p)) );
      ( "folded",
        Json.Arr
          (List.map
             (fun (k, v) ->
               Json.Obj [ ("stack", Json.Str k); ("cycles", Json.Int v) ])
             (Profile.folded_lines p)) );
    ]

let json_of_diff ~(base : Profile.t) ~(cand : Profile.t) () : Json.t =
  Json.Obj
    [
      ("vm", Json.Str cand.Profile.vm);
      ("base", Json.Str base.Profile.label);
      ("cand", Json.Str cand.Profile.label);
      ( "dims",
        Json.Arr
          (List.map
             (fun dim ->
               Json.Obj
                 [
                   ("dim", Json.Str (Profile.dim_name dim));
                   ("total_delta", Json.Float (Diff.total_delta dim ~base ~cand));
                   ( "sites",
                     Json.Arr
                       (Diff.by_dim dim ~base ~cand
                       |> List.filter (fun (e : Diff.entry) -> e.delta <> 0.0)
                       |> List.map (fun (e : Diff.entry) ->
                              Json.Obj
                                [
                                  ("site", Json.Str (Site.to_string e.site));
                                  ("base", Json.Float e.base);
                                  ("cand", Json.Float e.cand);
                                  ("delta", Json.Float e.delta);
                                ])) );
                 ])
             Profile.dims) );
    ]
