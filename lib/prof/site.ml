(** A provenance site: the IR location a machine cost is charged to.

    Sites come from the [Loc] markers the instruction selector plants in
    the assembly stream (see lib/riscv/asm.ml) — one per IR basic block,
    plus the synthetic ["<prologue>"]/["<epilogue>"] blocks that codegen
    wraps around every function. *)

type t = {
  func : string;
  block : string;  (* "" when the cost lands before the first marker *)
}

let make func block = { func; block }

(** Costs at addresses outside the program image (should not happen in a
    healthy run, but the profiler must not crash on them). *)
let unknown = { func = "<unknown>"; block = "" }

let compare a b =
  match String.compare a.func b.func with
  | 0 -> String.compare a.block b.block
  | c -> c

let equal a b = compare a b = 0

let to_string s =
  if String.equal s.block "" then s.func else s.func ^ ":" ^ s.block
