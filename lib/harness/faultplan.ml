(** Generalized fault injection for the sweep, in the style of
    systematic zkVM soundness testing (Arguzz): a plan maps specific
    (program, profile, vm) sites to executor faults, and a deterministic
    seeded selector can scatter faults across a matrix.  The harness
    knows nothing about which cells are faulted — its differential and
    accounting oracles must *catch* the injected faults, which is what
    the tests assert. *)

type kind =
  | Silent_halt_on_boundary_jalr
  | Dropped_page_out
  | Truncated_final_segment
  | Corrupt_exit_value

type site = { program : string; profile : string; vm : string }

type t = { sites : (site * kind) list }

let none = { sites = [] }

let inject sites = { sites }

let is_empty t = t.sites = []

let sites t = t.sites

let kind_name = function
  | Silent_halt_on_boundary_jalr -> "silent-halt-on-boundary-jalr"
  | Dropped_page_out -> "dropped-page-out"
  | Truncated_final_segment -> "truncated-final-segment"
  | Corrupt_exit_value -> "corrupt-exit-value"

let all_kinds =
  [ Silent_halt_on_boundary_jalr; Dropped_page_out; Truncated_final_segment;
    Corrupt_exit_value ]

(** Inverse of {!kind_name}; the fuzz corpus codec round-trips injected
    faults through their names. *)
let kind_of_name name =
  List.find_opt (fun k -> String.equal (kind_name k) name) all_kinds

let to_executor_fault : kind -> Zkopt_zkvm.Executor.fault = function
  | Silent_halt_on_boundary_jalr ->
    Zkopt_zkvm.Executor.Silent_halt_on_boundary_jalr
  | Dropped_page_out -> Zkopt_zkvm.Executor.Dropped_page_out
  | Truncated_final_segment -> Zkopt_zkvm.Executor.Truncated_final_segment
  | Corrupt_exit_value -> Zkopt_zkvm.Executor.Corrupt_exit_value

(** The fault (if any) this plan injects at one measurement site. *)
let executor_fault t ~program ~profile ~vm : Zkopt_zkvm.Executor.fault option =
  List.find_map
    (fun (s, k) ->
      if
        String.equal s.program program
        && String.equal s.profile profile
        && String.equal s.vm vm
      then Some (to_executor_fault k)
      else None)
    t.sites

(** Deterministic seeded site selector: pick [count] distinct sites from
    the given axes.  The same seed always selects the same sites (no
    global [Random] state), so fuzz campaigns are reproducible. *)
let random ~seed ~count ~programs ~profiles ~vms ~kinds : t =
  if programs = [] || profiles = [] || vms = [] || kinds = [] then none
  else begin
    let state = ref (((seed * 2654435761) land 0x3FFFFFFF) lor 1) in
    let next n =
      (* LCG low bits have tiny periods; draw from the high bits *)
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (!state lsr 16) mod n
    in
    let pick l = List.nth l (next (List.length l)) in
    let sites = ref [] in
    let attempts = ref 0 in
    while List.length !sites < count && !attempts < count * 100 do
      incr attempts;
      let s = { program = pick programs; profile = pick profiles; vm = pick vms } in
      if not (List.mem_assoc s !sites) then sites := (s, pick kinds) :: !sites
    done;
    { sites = List.rev !sites }
  end

let describe t =
  match t.sites with
  | [] -> "faultplan: none"
  | sites ->
    "faultplan:\n"
    ^ String.concat "\n"
        (List.map
           (fun (s, k) ->
             Printf.sprintf "  %s @ %s/%s/%s" (kind_name k) s.program
               s.profile s.vm)
           sites)
