(** The fault-tolerant sweep engine.

    Turns the 58-program x 71-profile x N-backend measurement campaign
    into a resumable, multicore job engine.  Backends are
    {!Zkopt_backend.Backend.t} values (default: the risc0 + sp1 pair
    from the registry), so the engine is generic over ISAs — a zk-native
    backend slots in as a third column, not a new code path:

    - cells execute on a work-stealing domain pool ({!Zkopt_exec.Pool});
      [jobs = 1] reproduces the old sequential walk exactly, [jobs = N]
      runs cells concurrently with identical results — cells are
      independent measurements, the one cross-cell dependency (the
      baseline-differential oracle) is honored by scheduling every
      program's baseline cell in a first wave;
    - each structurally distinct compilation happens once: the optimized
      module is digested ({!Zkopt_exec.Fingerprint}) and the assembled
      program fetched from a content-addressed cache
      ({!Zkopt_exec.Cache}) shared by every backend of a codegen family,
      by profiles that leave a program untouched, and (with a disk
      store) by successive runs;
    - every cell runs under an exception barrier ({!Cell.protect}) and
      either yields a point or lands in a quarantine list with a typed
      {!Error.t} — one miscompile no longer kills the remaining ~8,000
      cells;
    - fuel exhaustion retries with an escalating budget ({!Retry});
      deterministic faults do not retry;
    - two oracles guard every measured cell: the differential checksum
      oracle (every backend vs. the head backend within the cell, and
      profile-vs-baseline across cells) and each backend's own
      accounting conservation oracle
      ({!Zkopt_backend.Backend.measurement});
    - completed points stream to an append-only checkpoint file through
      a single dedicated writer domain — rows are whole lines in
      completion order, so the log is byte-deterministic modulo row
      order — and a resumed run skips already-done cells
      ({!Checkpoint});
    - a per-sweep failure budget bounds degradation: exceed it and the
      sweep aborts with a summary ({!Budget_exceeded});
    - graceful degradation: a CPU-model failure downgrades the cell to
      zkVM-only metrics instead of discarding it. *)

open Zkopt_core
module Pool = Zkopt_exec.Pool
module Cache = Zkopt_exec.Cache
module Fingerprint = Zkopt_exec.Fingerprint
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry

type config = {
  size : Zkopt_workloads.Workload.size;
  programs : string list option;  (** [None] = the full 58-program suite *)
  profiles : Profile.t list option;  (** [None] = all 71 profiles *)
  failure_budget : int;
      (** quarantined cells tolerated before the sweep aborts *)
  checkpoint : string option;  (** append-only checkpoint file *)
  resume : bool;  (** load already-done cells from [checkpoint] *)
  checkpoint_every : int;  (** flush cadence, in cells *)
  retry : Retry.policy;
  faultplan : Faultplan.t;  (** injected faults (testing) *)
  progress : bool;
  limit : int option;
      (** measure at most this many new cells, then stop gracefully
          (time-slicing; the checkpoint keeps the rest resumable) *)
  jobs : int;  (** worker domains; 1 = sequential cell order *)
  cache : Backend.compiled Cache.t option;
      (** compile cache to use; [None] = a fresh private in-memory
          cache per run.  Pass a shared cache to memoize across runs. *)
  backends : Backend.t list option;
      (** backends to measure each cell on, in order; the head backend
          is the differential-oracle reference.  [None] = the classic
          risc0 + sp1 pair from the registry. *)
  pool : Pool.t option;
      (** external worker pool to run cells on; [None] = a private pool
          of [jobs] domains created and destroyed by this run.  A
          service passes its long-lived pool so every job shares one
          warm set of domains; the harness never shuts it down. *)
  on_point : (Cell.point -> unit) option;
      (** streaming hook, called once per accepted point — both points
          resumed from the checkpoint (before any cell runs) and points
          measured by this run, in completion order.  Called from worker
          domains concurrently; the callback must be thread-safe. *)
  stop : unit -> bool;
      (** cooperative cancellation, polled before each cell: once it
          returns [true], remaining cells are skipped (no point, no
          checkpoint row) and the outcome reports [completed = false],
          so a later run resumes exactly where this one drained. *)
}

let default ~size =
  {
    size;
    programs = None;
    profiles = None;
    failure_budget = 32;
    checkpoint = None;
    resume = true;
    checkpoint_every = 25;
    retry = Retry.default;
    faultplan = Faultplan.none;
    progress = false;
    limit = None;
    jobs = 1;
    cache = None;
    backends = None;
    pool = None;
    on_point = None;
    stop = (fun () -> false);
  }

(** Resolve the sweep's backend list (non-empty, unique names). *)
let backends_of (cfg : config) : Backend.t list =
  let bs =
    match cfg.backends with
    | Some [] -> invalid_arg "Harness: empty backend list"
    | Some bs -> bs
    | None -> [ Registry.find "risc0"; Registry.find "sp1" ]
  in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (b : Backend.t) ->
      if Hashtbl.mem seen b.Backend.name then
        invalid_arg ("Harness: duplicate backend " ^ b.Backend.name);
      Hashtbl.replace seen b.Backend.name ())
    bs;
  bs

type outcome = {
  points : (string * string, Cell.point) Hashtbl.t;  (** (program, profile) *)
  programs : Zkopt_workloads.Workload.t list;
  quarantined : Error.t list;  (** failed cells, in discovery order *)
  degraded : (Error.coord * string) list;
      (** cells kept with partial metrics *)
  executed : int;  (** cells measured by this invocation *)
  resumed : int;  (** cells loaded from the checkpoint *)
  retries : int;  (** extra attempts spent on fuel escalation *)
  completed : bool;  (** false when stopped by [limit] *)
  cache_stats : Cache.stats;  (** compile-cache traffic of this run *)
}

let quarantine_report (errs : Error.t list) : string =
  match errs with
  | [] -> "quarantine: empty (all cells healthy)"
  | errs ->
    let counts = Hashtbl.create 8 in
    List.iter
      (fun (e : Error.t) ->
        let k = Error.kind_name e.Error.kind in
        Hashtbl.replace counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      errs;
    let summary =
      Hashtbl.fold (fun k n acc -> Printf.sprintf "%s=%d" k n :: acc) counts []
      |> List.sort compare |> String.concat ", "
    in
    Printf.sprintf "quarantine: %d cell(s) (%s)\n%s" (List.length errs)
      summary
      (String.concat "\n"
         (List.map (fun e -> "  " ^ Error.to_string e) errs))

exception Budget_exceeded of Error.t list

(** Measure one cell under the harness policies.  Compilation goes
    through the content-addressed [cache], keyed by module digest plus
    the backend's codegen-schema tag — backends sharing a codegen family
    (risc0/sp1) share one artifact per cell; execution is always fresh.
    Returns the point, the attempts consumed, and an optional
    degradation note (CPU model failed; zkVM metrics kept). *)
let measure_cell (cfg : config) (cache : Backend.compiled Cache.t)
    (w : Zkopt_workloads.Workload.t) (profile : Profile.t) :
    Cell.point * int * string option =
  let pname = Profile.name profile in
  let build () = w.Zkopt_workloads.Workload.build cfg.size in
  let backends = backends_of cfg in
  let with_cpu =
    match profile with
    | Profile.Baseline | Profile.Single_pass _ -> true
    | _ -> false
  in
  let (point, degraded), attempts =
    Retry.run cfg.retry (fun ~fuel ->
        let m = Measure.prepare_ir ~build profile in
        let digest = Fingerprint.of_modul m in
        (* per-cell memo over the shared cache so every backend of a
           codegen family resolves its artifact exactly once per attempt *)
        let arts : (string, Backend.compiled) Hashtbl.t = Hashtbl.create 4 in
        let compiled_for (b : Backend.t) : Backend.compiled =
          match Hashtbl.find_opt arts b.Backend.schema with
          | Some c -> c
          | None ->
            let codec =
              {
                Cache.enc = (fun (c : Backend.compiled) -> c.Backend.encode ());
                dec = (fun s -> b.Backend.decode m s);
              }
            in
            let c =
              Cache.get_or_compile cache
                ~digest:(digest ^ "+" ^ b.Backend.schema)
                ~codec
                ~compile:(fun () -> b.Backend.compile m)
            in
            Hashtbl.replace arts b.Backend.schema c;
            c
        in
        let zk_of (b : Backend.t) =
          let vm = b.Backend.name in
          try
            let c = compiled_for b in
            let fault =
              Faultplan.executor_fault cfg.faultplan ~program:w.name
                ~profile:pname ~vm
            in
            let r = c.Backend.measure ~vm ?fault ~fuel () in
            (match r.Backend.accounting with
            | Ok () -> ()
            | Error msg -> raise (Error.Accounting msg));
            r.Backend.zk
          with e -> raise (Error.In_vm (vm, e))
        in
        let zk = List.map zk_of backends in
        (* the CPU contrast model runs off the first backend that can
           drive it (an RV32 instruction stream); a zk-native-only sweep
           simply has no CPU column *)
        let run_cpu =
          if not with_cpu then None
          else
            List.find_map
              (fun (b : Backend.t) -> (compiled_for b).Backend.measure_cpu)
              backends
        in
        let cpu, degraded =
          match run_cpu with
          | None -> (None, None)
          | Some run -> (
            match run ~fuel () with
            | m -> (Some m, None)
            | exception Zkopt_riscv.Emulator.Out_of_fuel f ->
              (* transient: let the retry policy escalate the budget *)
              raise (Error.In_vm ("cpu", Zkopt_riscv.Emulator.Out_of_fuel f))
            | exception e ->
              (* deterministic CPU-model failure: degrade gracefully and
                 keep the zkVM metrics rather than losing the cell *)
              (None, Some (Printexc.to_string e)))
        in
        ( {
            Cell.program = w.Zkopt_workloads.Workload.name;
            suite = w.Zkopt_workloads.Workload.suite;
            profile = pname;
            zk;
            cpu;
          },
          degraded ))
  in
  (point, attempts, degraded)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let run (cfg : config) : outcome =
  let all = Zkopt_workloads.Suite.all () in
  let programs =
    match cfg.programs with
    | None -> all
    | Some names -> List.map Zkopt_workloads.Workload.find names
  in
  let profiles =
    match cfg.profiles with None -> Profile.all_71 | Some ps -> ps
  in
  let points = Hashtbl.create 4096 in
  let resumed = ref 0 in
  (match cfg.checkpoint with
  | Some path when cfg.resume ->
    List.iter
      (fun (p : Cell.point) ->
        Hashtbl.replace points (p.Cell.program, p.Cell.profile) p;
        incr resumed;
        (* resumed points stream too, so a subscriber that attaches
           after a restart still sees the full row sequence *)
        Option.iter (fun f -> f p) cfg.on_point)
      (Checkpoint.load path)
  | _ -> ());
  (* Pending cells in the canonical (program-major, profile-minor)
     order.  [limit] slices a deterministic prefix of this order, so a
     limited parallel run measures exactly the cells a limited
     sequential run would. *)
  let pending =
    List.concat_map
      (fun (w : Zkopt_workloads.Workload.t) ->
        List.filter_map
          (fun profile ->
            let key = (w.Zkopt_workloads.Workload.name, Profile.name profile) in
            if Hashtbl.mem points key then None else Some (w, profile))
          profiles)
      programs
  in
  let pending, completed =
    match cfg.limit with
    | Some n when List.length pending > n -> (take n pending, false)
    | _ -> (pending, true)
  in
  let cache =
    match cfg.cache with Some c -> c | None -> Cache.create ()
  in
  let stats0 = Cache.stats cache in
  let writer =
    Option.map (Checkpoint.async ~every:cfg.checkpoint_every) cfg.checkpoint
  in
  (* Shared mutable sweep state; [mu] guards all of it plus [points]. *)
  let mu = Mutex.create () in
  let quarantined = ref [] in
  let nquarantined = ref 0 in
  let degraded = ref [] in
  let executed = ref 0 in
  let retries = ref 0 in
  let total = List.length programs * List.length profiles in
  let quarantine (err : Error.t) =
    Mutex.lock mu;
    quarantined := err :: !quarantined;
    incr nquarantined;
    if cfg.progress then
      Printf.eprintf "  sweep: QUARANTINE %s\n%!" (Error.to_string err);
    let burst =
      if !nquarantined > cfg.failure_budget then Some (List.rev !quarantined)
      else None
    in
    Mutex.unlock mu;
    match burst with
    | Some errs -> raise (Budget_exceeded errs)
    | None -> ()
  in
  let stopped = ref false in
  let process_cell ((w : Zkopt_workloads.Workload.t), profile) =
    let wname = w.Zkopt_workloads.Workload.name in
    let pname = Profile.name profile in
    let coord = { Error.program = wname; profile = pname; vm = "-" } in
    let result =
      Cell.protect ~coord (fun () -> measure_cell cfg cache w profile)
    in
    (match result with
    | Error err -> quarantine err
    | Ok (p, attempts, deg) -> (
      Mutex.lock mu;
      retries := !retries + attempts - 1;
      Option.iter
        (fun d ->
          degraded := ({ coord with Error.vm = "cpu" }, d) :: !degraded)
        deg;
      (* the baseline point is stable here: baseline cells all complete
         in wave 1, before any non-baseline cell runs *)
      let baseline = Hashtbl.find_opt points (wname, "baseline") in
      Mutex.unlock mu;
      (* differential checksum oracles: every backend must agree with
         the head backend within the cell, and every profile must
         preserve the program's baseline checksum *)
      let head, others =
        match p.Cell.zk with h :: t -> (h, t) | [] -> assert false
      in
      let diverging =
        List.find_opt
          (fun (z : Measure.zk_metrics) ->
            not (Int64.equal head.Measure.exit_value z.Measure.exit_value))
          others
      in
      match diverging with
      | Some z ->
        quarantine
          {
            Error.coord = { coord with Error.vm = z.Measure.vm };
            kind =
              Error.Miscompile
                {
                  expected = head.Measure.exit_value;
                  got = z.Measure.exit_value;
                  oracle = head.Measure.vm ^ "-vs-" ^ z.Measure.vm;
                };
          }
      | None -> (
        match baseline with
        | Some (base : Cell.point)
          when (not (String.equal pname "baseline"))
               && not
                    (Int64.equal
                       (List.hd base.Cell.zk).Measure.exit_value
                       head.Measure.exit_value) ->
          quarantine
            {
              Error.coord = coord;
              kind =
                Error.Miscompile
                  {
                    expected = (List.hd base.Cell.zk).Measure.exit_value;
                    got = head.Measure.exit_value;
                    oracle = "baseline-differential";
                  };
            }
        | _ ->
          Mutex.lock mu;
          Hashtbl.replace points (wname, pname) p;
          Mutex.unlock mu;
          Option.iter (fun wr -> Checkpoint.async_append wr p) writer;
          Option.iter (fun f -> f p) cfg.on_point)));
    Mutex.lock mu;
    incr executed;
    let report =
      if cfg.progress && !executed mod 200 = 0 then
        Some (Hashtbl.length points, !executed)
      else None
    in
    Mutex.unlock mu;
    match report with
    | Some (done_, ex) ->
      Printf.eprintf "  sweep: %d/%d (this run: %d)\n%!" done_ total ex
    | None -> ()
  in
  (* every queued cell polls the cancellation hook first: a drained run
     skips the remainder (no rows) so a later resume picks them up *)
  let process cell () =
    if cfg.stop () then begin
      Mutex.lock mu;
      stopped := true;
      Mutex.unlock mu
    end
    else process_cell cell
  in
  (* Two waves: baselines first so the baseline-differential oracle sees
     a program's baseline checksum (when measured at all) regardless of
     how the scheduler interleaves the rest. *)
  let wave1, wave2 =
    List.partition
      (fun (_, profile) -> String.equal (Profile.name profile) "baseline")
      pending
  in
  let pool, owned_pool =
    match cfg.pool with
    | Some p -> (p, false)  (* shared service pool: never shut down *)
    | None -> (Pool.create ~jobs:cfg.jobs, true)
  in
  let finish () =
    if owned_pool then Pool.shutdown pool;
    Option.iter Checkpoint.async_close writer
  in
  (try
     List.iter (fun cell -> Pool.submit pool (process cell)) wave1;
     Pool.wait pool;
     List.iter (fun cell -> Pool.submit pool (process cell)) wave2;
     Pool.wait pool
   with e ->
     finish ();
     raise e);
  finish ();
  {
    points;
    programs;
    quarantined = List.rev !quarantined;
    degraded = List.rev !degraded;
    executed = !executed;
    resumed = !resumed;
    retries = !retries;
    completed = completed && not !stopped;
    cache_stats = Cache.sub_stats (Cache.stats cache) stats0;
  }
