(** Retry with escalating fuel — the repo's analog of timeout/backoff.

    A cell whose measurement runs out of fuel is retried with a doubled
    (by default) budget, up to [max_attempts] total attempts.
    Deterministic failures (traps, miscompiles, ill-formed IR, …) are
    never retried; they propagate on the first attempt.  Classification
    is structural ({!Error.retryable}), not string matching. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  initial_fuel : int;  (** instruction budget for the first attempt *)
  growth : int;        (** fuel multiplier between attempts *)
}

let default = { max_attempts = 4; initial_fuel = 500_000_000; growth = 2 }

(** [run policy f] calls [f ~fuel] with escalating fuel until it either
    succeeds, fails deterministically, or exhausts [max_attempts].
    Returns the result and the number of attempts consumed. *)
let run (p : policy) (f : fuel:int -> 'a) : 'a * int =
  let rec go attempt fuel =
    match f ~fuel with
    | v -> (v, attempt)
    | exception e
      when Error.retryable (Error.classify e) && attempt < p.max_attempts ->
      go (attempt + 1) (fuel * p.growth)
  in
  go 1 p.initial_fuel
