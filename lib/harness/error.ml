(** Typed error taxonomy for the fault-tolerant sweep harness.

    Every failure mode in the measurement stack — interpreter and
    emulator traps, fuel exhaustion, decoder/assembler/instruction-
    selection errors, IR verification failures, and the two oracle
    violations (checksum divergence, accounting divergence) — classifies
    into a structured {!kind}, tagged with the (program, profile, vm)
    coordinates of the sweep cell it originated from.  The taxonomy is
    what lets the retry policy distinguish transient failures (fuel
    exhaustion) from deterministic ones without string matching. *)

(** Where in the sweep matrix a failure happened.  [vm] is ["risc0"],
    ["sp1"], ["cpu"], or ["-"] when the failure is not VM-specific
    (e.g. the compile/optimize stage). *)
type coord = { program : string; profile : string; vm : string }

type kind =
  | Out_of_fuel of int  (** exhausted budget; 0 when unknown (IR interp) *)
  | Emulator_trap of string
  | Decode_error of int32
  | Asm_error of string
  | Isel_unsupported of string
  | Ill_formed of string
  | Miscompile of { expected : int64; got : int64; oracle : string }
      (** checksum divergence flagged by a differential oracle *)
  | Accounting_violation of string
      (** executor cost accounting failed a conservation check *)
  | Uncaught of string  (** anything else, stringified *)

type t = { coord : coord; kind : kind }

(** Raised by the harness's differential checksum oracle. *)
exception Divergence of { expected : int64; got : int64; oracle : string }

(** Raised by the harness's accounting conservation oracle. *)
exception Accounting of string

(** Wrapper used by the harness to tag an exception with the VM whose
    measurement raised it; [classify] unwraps it transparently. *)
exception In_vm of string * exn

let rec classify : exn -> kind = function
  | In_vm (_, e) -> classify e
  | Zkopt_riscv.Emulator.Out_of_fuel fuel -> Out_of_fuel fuel
  | Zkopt_ir.Interp.Out_of_fuel -> Out_of_fuel 0
  | Zkopt_riscv.Emulator.Trap msg -> Emulator_trap msg
  | Zkopt_riscv.Isa.Decode_error w -> Decode_error w
  | Zkopt_riscv.Asm.Asm_error msg -> Asm_error msg
  | Zkopt_riscv.Isel.Unsupported msg -> Isel_unsupported msg
  | Zkopt_ir.Verify.Ill_formed msg -> Ill_formed msg
  | Divergence { expected; got; oracle } -> Miscompile { expected; got; oracle }
  | Accounting msg -> Accounting_violation msg
  | e -> Uncaught (Printexc.to_string e)

let vm_of_exn : exn -> string option = function
  | In_vm (vm, _) -> Some vm
  | _ -> None

(** Only fuel exhaustion is transient: doubling the budget can fix it.
    Everything else is deterministic and retrying would just repeat the
    same failure. *)
let retryable = function Out_of_fuel _ -> true | _ -> false

let kind_name = function
  | Out_of_fuel _ -> "out-of-fuel"
  | Emulator_trap _ -> "emulator-trap"
  | Decode_error _ -> "decode-error"
  | Asm_error _ -> "asm-error"
  | Isel_unsupported _ -> "isel-unsupported"
  | Ill_formed _ -> "ill-formed-ir"
  | Miscompile _ -> "miscompile"
  | Accounting_violation _ -> "accounting-violation"
  | Uncaught _ -> "uncaught"

let kind_detail = function
  | Out_of_fuel fuel -> Printf.sprintf "budget %d exhausted" fuel
  | Emulator_trap msg -> msg
  | Decode_error w -> Printf.sprintf "cannot decode 0x%08lx" w
  | Asm_error msg -> msg
  | Isel_unsupported msg -> msg
  | Ill_formed msg -> msg
  | Miscompile { expected; got; oracle } ->
    Printf.sprintf "checksum %Lx, expected %Lx (%s oracle)" got expected oracle
  | Accounting_violation msg -> msg
  | Uncaught msg -> msg

let to_string { coord; kind } =
  Printf.sprintf "[%s/%s/%s] %s: %s" coord.program coord.profile coord.vm
    (kind_name kind) (kind_detail kind)
