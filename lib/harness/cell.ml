(** One cell of the sweep matrix: a (program, profile) pair measured on
    both zkVM cost models (plus the CPU model where the study needs it),
    together with the exception barrier and the accounting oracles that
    keep one bad cell from poisoning the rest of the campaign. *)

open Zkopt_core

type point = {
  program : string;
  suite : string;
  profile : string;
  r0 : Measure.zk_metrics;
  sp1 : Measure.zk_metrics;
  cpu : Measure.cpu_metrics option;
}

(** Exception barrier: run [f] and classify any escaping exception into
    an {!Error.t} carrying the cell's coordinates.  The [vm] coordinate
    is refined when the exception was raised inside a per-VM measurement
    (wrapped in {!Error.In_vm}). *)
let protect ~(coord : Error.coord) (f : unit -> 'a) : ('a, Error.t) result =
  try Ok (f ()) with
  | e ->
    let coord =
      match Error.vm_of_exn e with
      | Some vm -> { coord with Error.vm }
      | None -> coord
    in
    Error { Error.coord; kind = Error.classify e }

(** Accounting conservation oracles over a raw executor result.  In a
    healthy executor both identities hold exactly:

    - paging cycles = page-ins * page_in_cost + page-outs * page_out_cost
    - total cycles  = sum over segments of (user + paging) cycles

    A violation means the executor produced a trace whose cost totals do
    not reconcile with its own event journal — the accounting-bug shape
    of zkVM soundness failures (e.g. {!Zkopt_zkvm.Executor.fault}'s
    [Dropped_page_out] and [Truncated_final_segment]). *)
let check_accounting (cfg : Zkopt_zkvm.Config.t) (r : Zkopt_zkvm.Vm.metrics) :
    (unit, string) result =
  let e = r.Zkopt_zkvm.Vm.exec in
  let module E = Zkopt_zkvm.Executor in
  let expected_paging =
    (e.E.page_ins * cfg.Zkopt_zkvm.Config.page_in_cost)
    + (e.E.page_outs * cfg.Zkopt_zkvm.Config.page_out_cost)
  in
  if e.E.paging_cycles <> expected_paging then
    Error
      (Printf.sprintf
         "paging cycles %d do not reconcile with events (%d ins * %d + %d \
          outs * %d = %d)"
         e.E.paging_cycles e.E.page_ins cfg.Zkopt_zkvm.Config.page_in_cost
         e.E.page_outs cfg.Zkopt_zkvm.Config.page_out_cost expected_paging)
  else
    let seg_total =
      List.fold_left
        (fun acc (s : E.segment) -> acc + s.E.user_cycles + s.E.paging_cycles)
        0 e.E.segments
    in
    if seg_total <> e.E.total_cycles then
      Error
        (Printf.sprintf
           "segment trace sums to %d cycles but the executor reported %d"
           seg_total e.E.total_cycles)
    else Ok ()
