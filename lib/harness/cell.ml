(** One cell of the sweep matrix: a (program, profile) pair measured on
    every backend in the sweep's backend list (plus the CPU model where
    the study needs it), together with the exception barrier that keeps
    one bad cell from poisoning the rest of the campaign. *)

open Zkopt_core

type point = {
  program : string;
  suite : string;
  profile : string;
  zk : Measure.zk_metrics list;
      (** one entry per backend, in the sweep's backend order; the head
          backend is the differential-oracle reference *)
  cpu : Measure.cpu_metrics option;
}

(** The cell's metrics on backend [vm], if it was measured. *)
let zk_opt (p : point) (vm : string) : Measure.zk_metrics option =
  List.find_opt (fun (z : Measure.zk_metrics) -> String.equal z.Measure.vm vm) p.zk

let zk (p : point) (vm : string) : Measure.zk_metrics =
  match zk_opt p vm with
  | Some z -> z
  | None ->
    invalid_arg
      (Printf.sprintf "cell (%s, %s) has no %S metrics (measured: %s)"
         p.program p.profile vm
         (String.concat ", "
            (List.map (fun (z : Measure.zk_metrics) -> z.Measure.vm) p.zk)))

(** Exception barrier: run [f] and classify any escaping exception into
    an {!Error.t} carrying the cell's coordinates.  The [vm] coordinate
    is refined when the exception was raised inside a per-VM measurement
    (wrapped in {!Error.In_vm}). *)
let protect ~(coord : Error.coord) (f : unit -> 'a) : ('a, Error.t) result =
  try Ok (f ()) with
  | e ->
    let coord =
      match Error.vm_of_exn e with
      | Some vm -> { coord with Error.vm }
      | None -> coord
    in
    Error { Error.coord; kind = Error.classify e }

(** The RV32 accounting conservation oracle (see
    {!Zkopt_zkvm.Vm.check_accounting}, where it now lives; backends
    evaluate their own oracle inside {!Zkopt_backend.Backend.measurement}). *)
let check_accounting = Zkopt_zkvm.Vm.check_accounting
