(** Append-only checkpoint file for the sweep.

    Completed points stream to disk one line each; a resumed sweep loads
    the file, skips already-done cells, and appends the rest.  The codec
    is an exact round trip — floats are written in hexadecimal ([%h])
    notation — so a killed-and-resumed sweep reproduces the uninterrupted
    run byte for byte.  Undecodable lines (e.g. a final line truncated by
    a kill mid-write) are skipped on load, which makes resume safe after
    a crash at any byte offset.

    v2 rows carry a backend count followed by that many metric groups
    (a point measures an arbitrary backend list, not a fixed pair).
    v1 rows — which had exactly two unlabeled groups — fail the count
    parse and are skipped, so resuming over an old checkpoint simply
    re-measures those cells instead of mis-decoding them. *)

open Zkopt_core

let version = "zkopt-ckpt-v2"

let encode_zk (z : Measure.zk_metrics) : string =
  String.concat "\t"
    [
      z.Measure.vm;
      string_of_int z.Measure.cycles;
      Printf.sprintf "%h" z.Measure.exec_time_s;
      Printf.sprintf "%h" z.Measure.prove_time_s;
      string_of_int z.Measure.segments;
      string_of_int z.Measure.paging_cycles;
      string_of_int z.Measure.page_ins;
      string_of_int z.Measure.page_outs;
      string_of_int z.Measure.loads;
      string_of_int z.Measure.stores;
      Printf.sprintf "%Lx" z.Measure.exit_value;
    ]

let encode_cpu (c : Measure.cpu_metrics) : string =
  String.concat "\t"
    [
      Printf.sprintf "%h" c.Measure.cpu_cycles;
      Printf.sprintf "%h" c.Measure.cpu_time_s;
      string_of_int c.Measure.mispredicts;
      string_of_int c.Measure.cache_misses;
      Printf.sprintf "%Lx" c.Measure.cpu_exit_value;
    ]

let encode_point (p : Cell.point) : string =
  String.concat "\t"
    ([ p.Cell.program; p.Cell.suite; p.Cell.profile ]
    @ [ string_of_int (List.length p.Cell.zk) ]
    @ List.map encode_zk p.Cell.zk
    @ [
        (match p.Cell.cpu with
        | None -> "-"
        | Some c -> "cpu\t" ^ encode_cpu c);
      ])

(* field counts: 3 header + 1 count + 11 per zk + 1 "-" | 1 "cpu" + 5 *)

let decode_zk fields =
  match fields with
  | [ vm; cycles; exec; prove; segs; paging; pins; pouts; loads; stores; ev ]
    ->
    Some
      {
        Measure.vm;
        cycles = int_of_string cycles;
        exec_time_s = float_of_string exec;
        prove_time_s = float_of_string prove;
        segments = int_of_string segs;
        paging_cycles = int_of_string paging;
        page_ins = int_of_string pins;
        page_outs = int_of_string pouts;
        loads = int_of_string loads;
        stores = int_of_string stores;
        exit_value = Int64.of_string ("0x" ^ ev);
      }
  | _ -> None

let decode_cpu fields =
  match fields with
  | [ cycles; time; mis; misses; ev ] ->
    Some
      {
        Measure.cpu_cycles = float_of_string cycles;
        cpu_time_s = float_of_string time;
        mispredicts = int_of_string mis;
        cache_misses = int_of_string misses;
        cpu_exit_value = Int64.of_string ("0x" ^ ev);
      }
  | _ -> None

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec drop n l =
  if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let decode_point (line : string) : Cell.point option =
  match String.split_on_char '\t' line with
  | program :: suite :: profile :: count :: rest -> (
    try
      let n = int_of_string count in
      if n <= 0 || List.length rest < (n * 11) + 1 then None
      else
        let rec groups k rest acc =
          if k = 0 then Some (List.rev acc, rest)
          else
            match decode_zk (take 11 rest) with
            | Some z -> groups (k - 1) (drop 11 rest) (z :: acc)
            | None -> None
        in
        match groups n rest [] with
        | None -> None
        | Some (zk, rest) -> (
          let cpu =
            match rest with
            | [ "-" ] -> Some None
            | "cpu" :: cpu_fields -> Option.map Option.some (decode_cpu cpu_fields)
            | _ -> None
          in
          match cpu with
          | Some cpu -> Some { Cell.program; suite; profile; zk; cpu }
          | None -> None)
    with _ -> None)
  | _ -> None

(** Load every decodable point from [path]; missing file = no points.
    Corrupt or truncated lines are skipped, not fatal. *)
let load (path : string) : Cell.point list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let points = ref [] in
    (try
       while true do
         let line = input_line ic in
         match decode_point line with
         | Some p -> points := p :: !points
         | None -> () (* header, garbage, or a line truncated by a kill *)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !points
  end

type writer = {
  oc : out_channel;
  every : int;  (** flush to disk every [every] appended points *)
  mutable pending : int;
}

(* A kill can shear the final line.  [load] already skips the torn
   fragment, but appending straight after it would concatenate the next
   record onto the garbage and lose that row too — so seal a torn tail
   with a newline before the first append, turning the fragment into
   its own (skipped) line and letting resume converge byte-wise. *)
let seal_torn_tail (path : string) =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let sheared =
    n > 0
    && begin
         seek_in ic (n - 1);
         input_char ic <> '\n'
       end
  in
  close_in ic;
  if sheared then begin
    let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
    output_char oc '\n';
    close_out oc
  end

let create ?(every = 25) (path : string) : writer =
  let existed = Sys.file_exists path in
  if existed then seal_torn_tail path;
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  if not existed then begin
    output_string oc (version ^ "\n");
    flush oc
  end;
  { oc; every; pending = 0 }

let append (w : writer) (p : Cell.point) =
  output_string w.oc (encode_point p);
  output_char w.oc '\n';
  w.pending <- w.pending + 1;
  if w.pending >= w.every then begin
    flush w.oc;
    w.pending <- 0
  end

let close (w : writer) =
  flush w.oc;
  close_out w.oc

(* ---- single-writer domain -------------------------------------------- *)

(** Serialized checkpoint writer for the parallel sweep.

    Worker domains may complete cells concurrently, but the checkpoint
    file must stay an append-only sequence of whole lines — interleaved
    writes from two domains could shear a row.  All appends therefore
    flow through one dedicated writer domain that drains a queue and
    owns the [out_channel] exclusively; each queued point becomes one
    atomic line, so the log is byte-deterministic modulo row order.
    [async_close] drains the queue before closing, so every point
    appended before the close reaches disk. *)
type async_state = {
  q : Cell.point Queue.t;
  mu : Mutex.t;
  cond : Condition.t;  (** new work or close requested *)
  mutable closing : bool;
}

type async = { st : async_state; dom : unit Domain.t }

let async ?every (path : string) : async =
  let st =
    {
      q = Queue.create ();
      mu = Mutex.create ();
      cond = Condition.create ();
      closing = false;
    }
  in
  let dom =
    Domain.spawn (fun () ->
        let w = create ?every path in
        let rec loop () =
          Mutex.lock st.mu;
          while Queue.is_empty st.q && not st.closing do
            Condition.wait st.cond st.mu
          done;
          let batch = List.rev (Queue.fold (fun acc p -> p :: acc) [] st.q) in
          Queue.clear st.q;
          let stop = st.closing in
          Mutex.unlock st.mu;
          List.iter (append w) batch;
          if stop then close w else loop ()
        in
        loop ())
  in
  { st; dom }

let async_append (a : async) (p : Cell.point) =
  let st = a.st in
  Mutex.lock st.mu;
  Queue.push p st.q;
  Condition.signal st.cond;
  Mutex.unlock st.mu

(** Drain outstanding appends, close the file, and join the writer
    domain.  Call at most once. *)
let async_close (a : async) =
  let st = a.st in
  Mutex.lock st.mu;
  st.closing <- true;
  Condition.signal st.cond;
  Mutex.unlock st.mu;
  Domain.join a.dom
