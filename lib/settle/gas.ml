(** EVM verification-gas model.

    Calibrated to the measured on-chain breakdown in SNIPPETS.md §1: a
    wrapped (SNARK-style, constant-size) root proof of 10,560 bytes with
    100 public inputs over a 2^20 circuit verifies for 2,825,166 gas,
    split across five stages whose unit costs are the EVM precompile
    prices (MODEXP 1,595 / ECMUL 6,187 / ECADD 355 / ECPAIRING 113,581).

    Only two terms scale with the circuit: the sumcheck runs one round
    per log2(N), and the Shplemini batch-opening MSM grows one point per
    log2(N) — so doubling the padded circuit area adds one sumcheck
    round plus one ECMUL/ECADD pair (~36K gas) and everything else is a
    fixed ~2.8M floor.  The model is exact at the §1 operating point and
    monotone nondecreasing in both [log_n] and the proof size. *)

(* EVM precompile unit prices (§1). *)
let modexp_gas = 1_595
let ecmul_gas = 6_187
let ecadd_gas = 355
let ecpairing_gas = 113_581

(* Stage constants, solved from the §1 breakdown at log_n = 20,
   proof = 10,560 bytes, 100 public inputs. *)
let parse_base = 59_005
let parse_per_byte = 16
let keccak_rate = 136
let keccak_round_gas = 3_936
let transcript_base = 3_873
let pi_per_input = 866
let pi_base = 107
let sumcheck_round_gas = 29_996 (* = 2 MODEXP + 26,806 field work *)
let sumcheck_base = 14
let msm_base_points = 42
let modexp_calls = 48
let fold_base = 1_003_934

(** The wrapped root proof is constant-size: the recursion tree ends in
    a SNARK wrap whose proof is 330 field elements regardless of how big
    the wrapped circuit was (10,560 bytes, §1). *)
let wrap_proof_bytes = 10_560

type t = {
  log_n : int;  (** log2 of the wrapped circuit's padded area *)
  proof_bytes : int;
  public_inputs : int;
  sumcheck_rounds : int;  (** = [log_n] *)
  msm_size : int;  (** = [msm_base_points + log_n] *)
  load_parse : int;
  transcript : int;
  pi_delta : int;
  sumcheck : int;
  shplemini : int;
  total : int;
}

let ceil_div a b = (a + b - 1) / b

(** Gas to verify a wrapped proof of a circuit with [2^log_n] padded
    rows.  [proof_bytes] defaults to the constant wrap size;
    [public_inputs] to the §1 commitment count. *)
let of_root ?(proof_bytes = wrap_proof_bytes) ?(public_inputs = 100)
    (log_n : int) : t =
  let log_n = max 1 log_n in
  let load_parse = parse_base + (parse_per_byte * proof_bytes) in
  let transcript =
    transcript_base + (keccak_round_gas * ceil_div proof_bytes keccak_rate)
  in
  let pi_delta = pi_base + (pi_per_input * public_inputs) in
  let sumcheck_rounds = log_n in
  let sumcheck = sumcheck_base + (sumcheck_round_gas * sumcheck_rounds) in
  let msm_size = msm_base_points + log_n in
  let shplemini =
    (msm_size * (ecmul_gas + ecadd_gas))
    + ecpairing_gas
    + (modexp_calls * modexp_gas)
    + fold_base
  in
  {
    log_n;
    proof_bytes;
    public_inputs;
    sumcheck_rounds;
    msm_size;
    load_parse;
    transcript;
    pi_delta;
    sumcheck;
    shplemini;
    total = load_parse + transcript + pi_delta + sumcheck + shplemini;
  }

(** Gas added by one circuit doubling: one sumcheck round plus one MSM
    point (the "~36K gas per doubling" observation in §1). *)
let per_doubling_gas = sumcheck_round_gas + ecmul_gas + ecadd_gas
