(** Per-family settlement parameters.

    A backend family's settlement behaviour is described by two groups
    of constants:

    - {b proof encoding}: how a committed (padded) trace area turns into
      proof bytes — commitment roots, opened columns per FRI query,
      Merkle path hashes (one per level, so proof size is O(log N) in
      the padded area), and the final-polynomial tail;
    - {b recursion circuit}: how expensive it is to verify one child
      proof inside the family's own VM — a fixed verifier-circuit cost
      plus a per-byte absorption cost — priced by the {e same} prover
      constants ({!Zkopt_zkvm.Config} / {!Vconfig}) that price ordinary
      segments, so aggregation nodes cost exactly what the backend's
      prover says a trace of that length costs.

    Families are keyed by backend name with a prefix fallback, so ad-hoc
    config variants (["sp1-dense"]) price under their parent family. *)

type t = {
  family : string;  (** canonical family name: risc0 | sp1 | valida *)
  (* proof encoding *)
  field_bytes : int;  (** bytes per field element in the proof *)
  commit_roots : int;  (** Merkle roots committed (trace/quotient/FRI) *)
  commit_bytes : int;  (** bytes per Merkle root *)
  columns : int;  (** committed columns opened at each query point *)
  queries : int;  (** FRI query count (security parameter) *)
  path_bytes : int;  (** bytes per Merkle-path level per query *)
  fri_final_bytes : int;  (** final-polynomial + pow witness tail *)
  (* recursion circuit *)
  recur_base_cycles : int;  (** verifier circuit: fixed cycles per child *)
  recur_cycles_per_byte : int;  (** transcript absorption per proof byte *)
  (* the family's own prover model (mirrors the measurement configs) *)
  min_po2 : int;
  prove_ns_per_cycle : float;
  prove_witgen_ns_per_cycle : float;
  prove_segment_overhead_ns : float;
}

(* The RV32 families share the proof-encoding shape (both commit a
   single wide execution table over a 31-bit field) and differ in the
   prover constants they inherit from their measurement configs; valida
   commits three narrower chips, so fewer columns open per query. *)

let of_rv32 ~family ~columns ~queries ~recur_base_cycles
    (cfg : Zkopt_zkvm.Config.t) : t =
  {
    family;
    field_bytes = 4;
    commit_roots = 3;
    commit_bytes = 32;
    columns;
    queries;
    path_bytes = 32;
    fri_final_bytes = 256;
    recur_base_cycles;
    recur_cycles_per_byte = 6;
    min_po2 = cfg.Zkopt_zkvm.Config.min_po2;
    prove_ns_per_cycle = cfg.Zkopt_zkvm.Config.prove_ns_per_cycle;
    prove_witgen_ns_per_cycle = cfg.Zkopt_zkvm.Config.prove_witgen_ns_per_cycle;
    prove_segment_overhead_ns = cfg.Zkopt_zkvm.Config.prove_segment_overhead_ns;
  }

let risc0 =
  of_rv32 ~family:"risc0" ~columns:84 ~queries:50 ~recur_base_cycles:220_000
    Zkopt_zkvm.Config.risc0

let sp1 =
  of_rv32 ~family:"sp1" ~columns:96 ~queries:84 ~recur_base_cycles:180_000
    Zkopt_zkvm.Config.sp1

let valida =
  let cfg = Zkopt_valida.Vconfig.valida in
  {
    family = "valida";
    field_bytes = 4;
    commit_roots = 3;
    commit_bytes = 32;
    columns = 60;
    queries = 40;
    path_bytes = 32;
    fri_final_bytes = 128;
    recur_base_cycles = 150_000;
    recur_cycles_per_byte = 5;
    min_po2 = cfg.Zkopt_valida.Vconfig.min_po2;
    prove_ns_per_cycle = cfg.Zkopt_valida.Vconfig.prove_ns_per_row;
    prove_witgen_ns_per_cycle = cfg.Zkopt_valida.Vconfig.prove_witgen_ns_per_row;
    prove_segment_overhead_ns =
      cfg.Zkopt_valida.Vconfig.prove_segment_overhead_ns;
  }

let all = [ risc0; sp1; valida ]

(** Parameters for a backend name: exact family match, else the longest
    family prefix (["sp1-dense"] prices as [sp1]).  Unknown names raise
    — every backend a settlement report prices must map to a family
    explicitly, mirroring the fail-loudly rule of the cost configs. *)
let find (name : string) : t =
  let prefixed (p : t) =
    let f = p.family in
    String.length name > String.length f
    && String.equal (String.sub name 0 (String.length f)) f
  in
  match List.find_opt (fun p -> String.equal p.family name) all with
  | Some p -> p
  | None -> (
    match List.find_opt prefixed all with
    | Some p -> p
    | None ->
      invalid_arg
        (Printf.sprintf "no settlement parameters for backend %S (families: %s)"
           name
           (String.concat ", " (List.map (fun p -> p.family) all))))
