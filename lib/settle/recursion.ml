(** Recursion/aggregation planner.

    Folds the N per-segment proofs of one measurement into a single
    root proof through an arity-[k] tree: each internal node is a
    recursion program that verifies its children's proofs inside the
    family's own VM, so its trace length is

      [recur_base_cycles * children + recur_cycles_per_byte * child_bytes]

    and it is priced by the {e same} prover formula as an ordinary
    segment (pow2-padded above the family floor, N log N commitment
    cost plus witness generation plus the per-segment overhead).

    The plan reports depth (exactly [ceil (log_arity segments)] — the
    invariant the pricing oracle replays), total aggregation cycles,
    summed prover seconds, and a wall-model latency where each level's
    nodes prove in parallel and levels are sequential. *)

module P = Zkopt_zkvm.Prover

type plan = {
  arity : int;
  segments : int;
  depth : int;  (** tree levels above the leaves; 0 when [segments <= 1] *)
  nodes : int;  (** internal (aggregation) proofs produced *)
  agg_cycles : int;  (** total recursion-trace cycles over all nodes *)
  agg_total_s : float;  (** summed prover seconds over all nodes *)
  agg_wall_s : float;  (** critical path: levels serial, nodes parallel *)
  root_padded : int;  (** committed area of the final proof's trace *)
  root_proof_bytes : int;  (** size of the proof the verifier receives *)
}

let ceil_div a b = (a + b - 1) / b

(** [depth_for ~arity n]: levels needed to fold [n] proofs to one. *)
let depth_for ~(arity : int) (n : int) : int =
  if n <= 1 then 0
  else
    let rec go n d = if n <= 1 then d else go (ceil_div n arity) (d + 1) in
    go n 0

(* One aggregation node over [children] child proofs totalling
   [child_bytes]: (cycles, padded, prover seconds, proof bytes). *)
let node (p : Sparams.t) ~(children : int) ~(child_bytes : int) =
  let cycles =
    (p.Sparams.recur_base_cycles * children)
    + (p.Sparams.recur_cycles_per_byte * child_bytes)
  in
  let padded = P.next_pow2 (max (1 lsl p.Sparams.min_po2) cycles) in
  let seconds =
    ((float_of_int padded *. P.log2f padded *. p.Sparams.prove_ns_per_cycle)
    +. (float_of_int cycles *. p.Sparams.prove_witgen_ns_per_cycle)
    +. p.Sparams.prove_segment_overhead_ns)
    *. 1e-9
  in
  (cycles, padded, seconds, Proofsize.bytes p ~padded)

let rec chunk k = function
  | [] -> []
  | l ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: tl -> take (n - 1) (x :: acc) tl
    in
    let g, rest = take k [] l in
    g :: chunk k rest

(** Plan the aggregation of [seg_padded] (per-segment committed areas,
    execution order) down to one root proof. *)
let plan (p : Sparams.t) ?(arity = 8) ~(seg_padded : int list) () : plan =
  let arity = max 2 arity in
  let leaves =
    List.map (fun padded -> (padded, Proofsize.bytes p ~padded)) seg_padded
  in
  let segments = List.length leaves in
  let rec fold level ~nodes ~cycles ~total_s ~wall_s =
    match level with
    | [] -> (nodes, cycles, total_s, wall_s, 0, 0)
    | [ (padded, bytes) ] -> (nodes, cycles, total_s, wall_s, padded, bytes)
    | level ->
      let groups = chunk arity level in
      let level', level_wall, nodes, cycles, total_s =
        List.fold_left
          (fun (acc, w, nn, cc, tt) group ->
            let child_bytes =
              List.fold_left (fun a (_, b) -> a + b) 0 group
            in
            let ncycles, padded, seconds, bytes =
              node p ~children:(List.length group) ~child_bytes
            in
            ( (padded, bytes) :: acc,
              max w seconds,
              nn + 1,
              cc + ncycles,
              tt +. seconds ))
          ([], 0.0, nodes, cycles, total_s) groups
      in
      fold (List.rev level') ~nodes ~cycles ~total_s
        ~wall_s:(wall_s +. level_wall)
  in
  let nodes, agg_cycles, agg_total_s, agg_wall_s, root_padded, root_bytes =
    fold leaves ~nodes:0 ~cycles:0 ~total_s:0.0 ~wall_s:0.0
  in
  {
    arity;
    segments;
    depth = depth_for ~arity segments;
    nodes;
    agg_cycles;
    agg_total_s;
    agg_wall_s;
    root_padded;
    root_proof_bytes = root_bytes;
  }
