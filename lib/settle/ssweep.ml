(** The settlement sweep: price a (program x profile x backend) matrix
    end-to-end and stream one {!Settle} row per cell.

    Cells parallelize over the domain pool at (program x profile)
    granularity — the optimized module is prepared once and every
    backend prices it, with compiled artifacts shared through the
    content-addressed cache per codegen family — while rows are emitted
    through a reorder buffer: a finished cell's rows are held until
    every earlier cell has emitted, so the stream (and the checkpoint
    built from it) is byte-identical at any [jobs] count.

    The checkpoint is append-only with the standard torn-tail rules: a
    row is complete iff it decodes ({!Settle.report_of_row}'s terminal
    ["."] field), a resumed run replays complete rows and re-runs
    everything after the first gap, and an unterminated final line is
    sealed with a newline before appending. *)

module Backend = Zkopt_backend.Backend
module Measure = Zkopt_core.Measure
module Profile = Zkopt_core.Profile
module Pool = Zkopt_exec.Pool
module Cache = Zkopt_exec.Cache
module Fingerprint = Zkopt_exec.Fingerprint

type config = {
  programs : (string * (unit -> Zkopt_ir.Modul.t)) list;
      (** (name, fresh-module builder) pairs, sweep order *)
  profiles : (string * Profile.t) list;  (** (name, profile), sweep order *)
  backends : Backend.t list;  (** pricing columns, row order per cell *)
  jobs : int;
  pool : Pool.t option;  (** run over this shared pool instead *)
  cache : Backend.compiled Cache.t option;  (** shared artifact cache *)
  arity : int option;  (** aggregation fan-in *)
  weights : Settle.weights;
  fuel : int option;
  checkpoint : string option;
  on_row : (string -> unit) option;  (** live rows only, in order *)
  stop : unit -> bool;  (** polled per cell; [true] drains the sweep *)
}

let default ?(jobs = 1) () : config =
  {
    programs = [];
    profiles = [];
    backends = [];
    jobs;
    pool = None;
    cache = None;
    arity = None;
    weights = Settle.default_weights;
    fuel = None;
    checkpoint = None;
    on_row = None;
    stop = (fun () -> false);
  }

type outcome = {
  rows : string list;  (** every row of the sweep, in order (incl. replays) *)
  cells : int;  (** (program, profile) cells priced live this run *)
  replayed : int;  (** cells replayed from the checkpoint *)
  completed : bool;  (** false iff [stop] drained the sweep early *)
}

(* ---- checkpoint replay ---------------------------------------------- *)

(* Complete rows keyed by (program, profile, backend). *)
let load_checkpoint (path : string) : (string * string * string, string) Hashtbl.t =
  let t = Hashtbl.create 64 in
  (if Sys.file_exists path then
     try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           try
             while true do
               let line = input_line ic in
               match Settle.report_of_row line with
               | Some (program, profile, r) ->
                 Hashtbl.replace t (program, profile, r.Settle.backend) line
               | None -> ()
             done
           with End_of_file -> ())
     with Sys_error _ -> ());
  t

let open_append (path : string) : out_channel =
  let torn =
    Sys.file_exists path
    && (let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let n = in_channel_length ic in
            n > 0
            && (seek_in ic (n - 1);
                input_char ic <> '\n')))
  in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  if torn then output_char oc '\n';
  oc

(* ---- one cell -------------------------------------------------------- *)

(* Price every backend over one prepared module; rows in backend order. *)
let price_cell (cfg : config) ~(build : unit -> Zkopt_ir.Modul.t)
    ~(program : string) ~(profile_name : string) (profile : Profile.t) :
    string list =
  let m = Measure.prepare_ir ~build profile in
  let fp = Fingerprint.of_modul m in
  let compiled_for (b : Backend.t) =
    match cfg.cache with
    | None -> b.Backend.compile m
    | Some cache ->
      Cache.get_or_compile cache
        ~digest:(fp ^ "+" ^ b.Backend.schema)
        ~codec:
          {
            Cache.enc = (fun (c : Backend.compiled) -> c.Backend.encode ());
            dec = (fun s -> b.Backend.decode m s);
          }
        ~compile:(fun () -> b.Backend.compile m)
  in
  List.map
    (fun (b : Backend.t) ->
      let c = compiled_for b in
      let r = c.Backend.measure ~vm:b.Backend.name ?fuel:cfg.fuel () in
      (match r.Backend.accounting with
      | Ok () -> ()
      | Error msg ->
        failwith
          (Printf.sprintf "accounting violation pricing %s/%s on %s: %s"
             program profile_name b.Backend.name msg));
      Settle.row_of_report ~program ~profile:profile_name
        (Settle.price ?arity:cfg.arity ~weights:cfg.weights
           ~backend:b.Backend.name r))
    cfg.backends

(* ---- the sweep ------------------------------------------------------- *)

type slot =
  | Pending
  | Done of { rows : string list; fresh : bool }
      (** [fresh] rows append to the checkpoint and reach [on_row];
          replayed rows only re-enter the ordered stream *)
  | Drained

let run (cfg : config) : outcome =
  let cells =
    List.concat_map
      (fun (program, build) ->
        List.map
          (fun (pname, profile) -> (program, build, pname, profile))
          cfg.profiles)
      cfg.programs
  in
  let replay =
    match cfg.checkpoint with
    | Some path -> load_checkpoint path
    | None -> Hashtbl.create 1
  in
  let replayed_rows (program, _, pname, _) =
    let rows =
      List.filter_map
        (fun (b : Backend.t) ->
          Hashtbl.find_opt replay (program, pname, b.Backend.name))
        cfg.backends
    in
    if List.length rows = List.length cfg.backends then Some rows else None
  in
  let out =
    match cfg.checkpoint with
    | Some path -> Some (open_append path)
    | None -> None
  in
  let slots = Array.make (max 1 (List.length cells)) Pending in
  let mu = Mutex.create () in
  let watermark = ref 0 in
  let ordered = ref [] in
  let live = ref 0 and replayed = ref 0 and drained = ref false in
  (* emit the contiguous done-prefix; called with [mu] held *)
  let advance () =
    let n = List.length cells in
    let continue = ref true in
    while !continue && !watermark < n do
      match slots.(!watermark) with
      | Pending -> continue := false
      | Drained ->
        drained := true;
        continue := false
      | Done { rows; fresh } ->
        List.iter
          (fun row ->
            ordered := row :: !ordered;
            if fresh then begin
              (match out with
              | Some oc ->
                output_string oc row;
                output_char oc '\n';
                flush oc
              | None -> ());
              match cfg.on_row with Some f -> f row | None -> ()
            end)
          rows;
        incr watermark
    done
  in
  let finish i v =
    Mutex.lock mu;
    slots.(i) <- v;
    (match v with
    | Done { fresh = true; _ } -> incr live
    | Done { fresh = false; _ } -> incr replayed
    | _ -> ());
    advance ();
    Mutex.unlock mu
  in
  let task i ((program, build, pname, profile) as cell) () =
    match replayed_rows cell with
    | Some rows -> finish i (Done { rows; fresh = false })
    | None ->
      if cfg.stop () then finish i Drained
      else
        let rows = price_cell cfg ~build ~program ~profile_name:pname profile in
        finish i (Done { rows; fresh = true })
  in
  let owned, pool =
    match cfg.pool with
    | Some p -> (None, Some p)
    | None ->
      if cfg.jobs <= 1 then (None, None)
      else
        let p = Pool.create ~jobs:cfg.jobs in
        (Some p, Some p)
  in
  Fun.protect
    ~finally:(fun () ->
      (match owned with Some p -> Pool.shutdown p | None -> ());
      match out with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      match pool with
      | None -> List.iteri (fun i c -> task i c ()) cells
      | Some p ->
        List.iteri (fun i c -> Pool.submit p (task i c)) cells;
        Pool.wait p);
  {
    rows = List.rev !ordered;
    cells = !live;
    replayed = !replayed;
    completed = not !drained;
  }
