(** STARK proof-size model.

    A segment (or aggregation-node) proof over a padded trace area of
    [n] committed rows carries:

    - the commitment roots;
    - per FRI query: one opened row ([columns * field_bytes]) plus a
      Merkle authentication path of [ceil_log2 n] hashes;
    - the final-polynomial tail.

    The only non-constant term is the Merkle path depth, so proof size
    is monotone and O(log N) in the padded area — the property the
    pricing oracle checks and the gas model leans on. *)

(** [ceil_log2 n] for [n >= 1]; 0 for smaller inputs. *)
let ceil_log2 (n : int) : int =
  if n <= 1 then 0
  else
    let rec go p l = if p >= n then l else go (p * 2) (l + 1) in
    go 1 0

(** Proof bytes for one proof over [padded] committed rows. *)
let bytes (p : Sparams.t) ~(padded : int) : int =
  let depth = ceil_log2 padded in
  (p.Sparams.commit_roots * p.Sparams.commit_bytes)
  + p.Sparams.queries
    * ((p.Sparams.columns * p.Sparams.field_bytes)
      + (depth * p.Sparams.path_bytes))
  + p.Sparams.fri_final_bytes

(** Total proof bytes over a list of per-segment padded areas. *)
let total (p : Sparams.t) ~(seg_padded : int list) : int =
  List.fold_left (fun acc n -> acc + bytes p ~padded:n) 0 seg_padded
