(** Settlement pricing: one measurement -> cost to verified on-chain.

    A {!report} combines the three legs of the settlement pipeline —
    the backend's own prover time over its segments, the aggregation
    tree that folds the segment proofs to one root ({!Recursion}), and
    the EVM gas to verify the wrapped root ({!Gas}) — into a single
    scalar {!report.settled_cost} objective in integer micro-units
    (prover/aggregation seconds scale by 1e6; gas counts 1 unit per
    gas), so the autotuner and sweep engines consume it exactly like a
    cycle count.

    Pricing is a pure function of the {!Zkopt_backend.Backend.measurement}
    (no clocks, no randomness), so reports — and the row streams built
    from them — are byte-identical at any [--jobs]. *)

module Backend = Zkopt_backend.Backend
module Measure = Zkopt_core.Measure
module Json = Zkopt_report.Json

type weights = {
  w_prove : float;  (** segment proving seconds *)
  w_agg : float;  (** aggregation proving seconds (summed over nodes) *)
  w_gas : float;  (** verification gas units *)
}

let default_weights = { w_prove = 1.0; w_agg = 1.0; w_gas = 1.0 }

type report = {
  backend : string;
  family : string;  (** settlement-parameter family that priced it *)
  cycles : int;
  segments : int;
  prove_s : float;  (** the backend prover model's segment time *)
  seg_proof_bytes : int;  (** total size of the N segment proofs *)
  plan : Recursion.plan;
  gas : Gas.t;
  prover_cost : int;  (** micro-units: round(1e6 * w_prove * prove_s) *)
  agg_cost : int;  (** micro-units: round(1e6 * w_agg * agg_total_s) *)
  gas_cost : int;  (** micro-units: round(w_gas * gas.total) *)
  settled_cost : int;  (** the objective: prover + aggregation + gas *)
}

let micro x = int_of_float (Float.round (x *. 1e6))

(** Price one measurement for [backend].  [arity] is the aggregation
    fan-in (default 8); [weights] trade the three cost legs. *)
let price ?arity ?(weights = default_weights) ~(backend : string)
    (m : Backend.measurement) : report =
  let p = Sparams.find backend in
  let seg_padded = m.Backend.seg_padded in
  let plan = Recursion.plan p ?arity ~seg_padded () in
  let gas =
    Gas.of_root (Proofsize.ceil_log2 (max 2 plan.Recursion.root_padded))
  in
  let prove_s = m.Backend.zk.Measure.prove_time_s in
  let prover_cost = micro (weights.w_prove *. prove_s) in
  let agg_cost = micro (weights.w_agg *. plan.Recursion.agg_total_s) in
  let gas_cost =
    int_of_float (Float.round (weights.w_gas *. float_of_int gas.Gas.total))
  in
  {
    backend;
    family = p.Sparams.family;
    cycles = m.Backend.zk.Measure.cycles;
    segments = m.Backend.zk.Measure.segments;
    prove_s;
    seg_proof_bytes = Proofsize.total p ~seg_padded;
    plan;
    gas;
    prover_cost;
    agg_cost;
    gas_cost;
    settled_cost = prover_cost + agg_cost + gas_cost;
  }

(* ---- pricing invariants (the fuzz oracle and tests replay these) ---- *)

(** Check the metamorphic pricing invariants for a measurement: pricing
    is deterministic (same input priced twice gives the same report),
    the settled cost dominates its prover component, aggregation depth
    is exactly [ceil (log_arity segments)], and gas is monotone
    nondecreasing in the root proof's padded area. *)
let check_invariants ?arity ~(backend : string) (m : Backend.measurement) :
    (unit, string) result =
  let r1 = price ?arity ~backend m and r2 = price ?arity ~backend m in
  if r1 <> r2 then Error (backend ^ ": pricing is not deterministic")
  else if r1.settled_cost < r1.prover_cost then
    Error
      (Printf.sprintf "%s: settled cost %d < prover component %d" backend
         r1.settled_cost r1.prover_cost)
  else
    let expect =
      Recursion.depth_for ~arity:r1.plan.Recursion.arity
        r1.plan.Recursion.segments
    in
    if r1.plan.Recursion.depth <> expect then
      Error
        (Printf.sprintf
           "%s: aggregation depth %d <> ceil(log_%d %d) = %d" backend
           r1.plan.Recursion.depth r1.plan.Recursion.arity
           r1.plan.Recursion.segments expect)
    else
      let doubled = Gas.of_root (r1.gas.Gas.log_n + 1) in
      if doubled.Gas.total < r1.gas.Gas.total then
        Error
          (Printf.sprintf
             "%s: gas not monotone in root size (%d at log_n=%d, %d \
              doubled)"
             backend r1.gas.Gas.total r1.gas.Gas.log_n doubled.Gas.total)
      else Ok ()

(* ---- codecs ---------------------------------------------------------- *)

(** One settlement row: tab-separated, coordinate-first, terminal ["."]
    field so a torn tail from a kill never parses as a complete row.
    Floats travel as integer micro-units, making the encoding exact. *)
let row_of_report ~(program : string) ~(profile : string) (r : report) :
    string =
  String.concat "\t"
    [
      "S"; program; profile; r.backend; string_of_int r.cycles;
      string_of_int r.segments;
      string_of_int (micro r.prove_s);
      string_of_int r.seg_proof_bytes;
      string_of_int r.plan.Recursion.arity;
      string_of_int r.plan.Recursion.depth;
      string_of_int r.plan.Recursion.nodes;
      string_of_int r.plan.Recursion.agg_cycles;
      string_of_int (micro r.plan.Recursion.agg_total_s);
      string_of_int (micro r.plan.Recursion.agg_wall_s);
      string_of_int r.plan.Recursion.root_padded;
      string_of_int r.plan.Recursion.root_proof_bytes;
      string_of_int r.gas.Gas.log_n;
      string_of_int r.gas.Gas.total;
      string_of_int r.prover_cost;
      string_of_int r.agg_cost;
      string_of_int r.gas_cost;
      string_of_int r.settled_cost;
      ".";
    ]

(** Decode a row back to its coordinates and report.  The gas breakdown
    is regenerated from the encoded [log_n] (the model is pure);
    undecodable lines — including torn tails — return [None]. *)
let report_of_row (line : string) : (string * string * report) option =
  match String.split_on_char '\t' line with
  | [ "S"; program; profile; backend; cycles; segments; prove_us;
      seg_bytes; arity; depth; nodes; agg_cycles; agg_total_us;
      agg_wall_us; root_padded; root_bytes; log_n; gas_total; prover_cost;
      agg_cost; gas_cost; settled; "." ] -> (
    try
      let i = int_of_string in
      let gas = Gas.of_root (i log_n) in
      if gas.Gas.total <> i gas_total then None
      else
        Some
          ( program,
            profile,
            {
              backend;
              family = (Sparams.find backend).Sparams.family;
              cycles = i cycles;
              segments = i segments;
              prove_s = float_of_int (i prove_us) *. 1e-6;
              seg_proof_bytes = i seg_bytes;
              plan =
                {
                  Recursion.arity = i arity;
                  segments = i segments;
                  depth = i depth;
                  nodes = i nodes;
                  agg_cycles = i agg_cycles;
                  agg_total_s = float_of_int (i agg_total_us) *. 1e-6;
                  agg_wall_s = float_of_int (i agg_wall_us) *. 1e-6;
                  root_padded = i root_padded;
                  root_proof_bytes = i root_bytes;
                };
              gas;
              prover_cost = i prover_cost;
              agg_cost = i agg_cost;
              gas_cost = i gas_cost;
              settled_cost = i settled;
            } )
    with _ -> None)
  | _ -> None

let json_of_report ~(program : string) ~(profile : string) (r : report) :
    Json.t =
  Json.Obj
    [
      ("program", Json.Str program);
      ("profile", Json.Str profile);
      ("backend", Json.Str r.backend);
      ("family", Json.Str r.family);
      ("cycles", Json.Int r.cycles);
      ("segments", Json.Int r.segments);
      ("prove_s", Json.Float r.prove_s);
      ("seg_proof_bytes", Json.Int r.seg_proof_bytes);
      ( "aggregation",
        Json.Obj
          [
            ("arity", Json.Int r.plan.Recursion.arity);
            ("depth", Json.Int r.plan.Recursion.depth);
            ("nodes", Json.Int r.plan.Recursion.nodes);
            ("cycles", Json.Int r.plan.Recursion.agg_cycles);
            ("total_s", Json.Float r.plan.Recursion.agg_total_s);
            ("wall_s", Json.Float r.plan.Recursion.agg_wall_s);
            ("root_padded", Json.Int r.plan.Recursion.root_padded);
            ("root_proof_bytes", Json.Int r.plan.Recursion.root_proof_bytes);
          ] );
      ( "gas",
        Json.Obj
          [
            ("log_n", Json.Int r.gas.Gas.log_n);
            ("load_parse", Json.Int r.gas.Gas.load_parse);
            ("transcript", Json.Int r.gas.Gas.transcript);
            ("pi_delta", Json.Int r.gas.Gas.pi_delta);
            ("sumcheck", Json.Int r.gas.Gas.sumcheck);
            ("shplemini", Json.Int r.gas.Gas.shplemini);
            ("total", Json.Int r.gas.Gas.total);
          ] );
      ("prover_cost", Json.Int r.prover_cost);
      ("agg_cost", Json.Int r.agg_cost);
      ("gas_cost", Json.Int r.gas_cost);
      ("settled_cost", Json.Int r.settled_cost);
    ]
