(** Structural content addressing for compiled artifacts.

    The compile cache keys on a digest of the *post-pipeline* IR module
    plus a codegen-scheme tag: two sweep cells whose pass pipelines
    produce structurally identical modules (a very common case — most
    single-pass profiles leave most programs untouched) share one
    compiled program, and an on-disk store can survive schema changes by
    versioning on the tag.

    The digest is structural, not physical: it covers globals (name,
    initializer bytes), function signatures, attributes, block labels,
    instructions and terminators — everything the code generator
    consumes — and nothing else.  In particular [Func.next_reg] (the
    fresh-register high-water mark) is excluded, and a {!Zkopt_ir.Clone}d
    module digests identically to its original because cloning preserves
    names, labels and register numbering. *)

open Zkopt_ir

(** Version tag for the canonical IR encoding below.  Codegen-family
    versioning lives in each backend's schema tag, which cache users
    append to the digest ([digest ^ "+" ^ backend.schema]); bump this
    tag when the encoding itself changes. *)
let schema = "zkopt-exec-v2"

let add_global buf (g : Modul.global) =
  Buffer.add_string buf "g ";
  Buffer.add_string buf g.Modul.gname;
  (match g.Modul.init with
  | Modul.Zero n ->
    Buffer.add_string buf " zero ";
    Buffer.add_string buf (string_of_int n)
  | Modul.Words ws ->
    Buffer.add_string buf " words";
    Array.iter
      (fun w ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%lx" w))
      ws);
  Buffer.add_char buf '\n'

let add_func buf (f : Func.t) =
  (* Printer.func covers name, params, return type, block labels,
     instructions and terminators in a deterministic rendering; function
     attributes are not printed, so append them explicitly — they can
     steer late pipeline stages and must not collide. *)
  Buffer.add_string buf (Printer.func f);
  let a = f.Func.attrs in
  Buffer.add_string buf
    (Printf.sprintf "attrs %b %b %b\n" a.Func.always_inline a.Func.no_inline
       a.Func.internal)

(** Canonical byte encoding of everything codegen-relevant in [m]. *)
let encode (m : Modul.t) : string =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf schema;
  Buffer.add_char buf '\n';
  List.iter (add_global buf) m.Modul.globals;
  List.iter (add_func buf) m.Modul.funcs;
  Buffer.contents buf

(** Hex digest of a module's canonical encoding. *)
let of_modul (m : Modul.t) : string = Digest.to_hex (Digest.string (encode m))

(** Hex digest of a pass-name pipeline prefix under a salt.  This is the
    autotuner's prefix-cache key: the module produced by building [salt]
    (a program identity) and running [passes] in order is fully
    determined by the pair, so genomes sharing a prefix share one
    partially-optimized module without ever materializing it first.
    Contrast with {!of_modul}, which addresses a module that is already
    in hand. *)
let of_pipeline ~(salt : string) (passes : string list) : string =
  Digest.to_hex (Digest.string (String.concat "\x00" (schema :: salt :: passes)))
