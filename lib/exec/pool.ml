(** Work-stealing domain pool.

    [jobs] worker domains each own a {!Deque}; submitted tasks are dealt
    round-robin across the deques, a worker drains its own deque in
    submission order and steals from the back of a sibling's deque when
    it runs dry.  All deques share one mutex/condition pair — tasks in
    this codebase are milliseconds of compile + simulate work, so lock
    traffic is noise — which keeps the scheduler small enough to reason
    about the invariants that matter:

    - every submitted task runs exactly once (no lost or duplicated
      work), unless a task raises first;
    - the first exception a task raises poisons the current wave:
      queued tasks are dropped, in-flight tasks finish, and {!wait}
      re-raises it on the submitting domain;
    - poison is scoped to the wave, not the pool: {!wait} clears it
      after re-raising and the workers stay alive, so the same pool
      serves the next wave — a long-running service multiplexes many
      independent jobs onto one warm set of domains and a failed job
      cannot brick the pool for the jobs behind it;
    - with [jobs = 1] tasks execute in exact submission order, so a
      1-worker pool reproduces the old sequential sweep behavior.

    The pool is reusable across waves: [submit]+[wait] any number of
    times, then [shutdown] to join the domains. *)

type task = unit -> unit

type t = {
  jobs : int;
  mu : Mutex.t;
  work : Condition.t;  (** new work, poison, or shutdown *)
  idle : Condition.t;  (** all submitted work finished, or poison *)
  deques : task Deque.t array;
  mutable rr : int;  (** round-robin submission cursor *)
  mutable unfinished : int;  (** submitted tasks not yet completed *)
  mutable stop : bool;
  mutable poison : exn option;  (** first task exception, re-raised by wait *)
  mutable workers : unit Domain.t list;
}

let recommended_jobs () = Domain.recommended_domain_count ()

(** Coarse host fingerprint for keying throughput baselines: numbers
    measured on a different machine class must not gate this one.
    Word size and core count are the two axes that actually move
    cells/s between hosts we run on. *)
let machine_fingerprint () =
  Printf.sprintf "%s-w%d-c%d" Sys.os_type Sys.word_size
    (Domain.recommended_domain_count ())

(* Poison the current wave: queued tasks are dropped, the exception is
   parked for [wait], and the workers stay alive for the next wave. *)
let poison_locked pool e =
  if pool.poison = None then begin
    pool.poison <- Some e;
    (* queued tasks will never run; stop counting them as pending *)
    Array.iter
      (fun d -> pool.unfinished <- pool.unfinished - Deque.clear d)
      pool.deques;
    if pool.unfinished = 0 then Condition.broadcast pool.idle
  end

(* Called with [pool.mu] held: the worker's own deque front, else steal
   from the back of the nearest non-empty sibling. *)
let take_locked pool id =
  match Deque.pop_front pool.deques.(id) with
  | Some _ as t -> t
  | None ->
    let rec scan k =
      if k = pool.jobs then None
      else
        match Deque.pop_back pool.deques.((id + k) mod pool.jobs) with
        | Some _ as t -> t
        | None -> scan (k + 1)
    in
    scan 1

let worker pool id =
  let rec loop () =
    Mutex.lock pool.mu;
    let rec next () =
      if pool.stop then begin
        Mutex.unlock pool.mu;
        None
      end
      else
        match take_locked pool id with
        | Some t ->
          Mutex.unlock pool.mu;
          Some t
        | None ->
          Condition.wait pool.work pool.mu;
          next ()
    in
    match next () with
    | None -> ()
    | Some task ->
      (match task () with
      | () -> ()
      | exception e ->
        Mutex.lock pool.mu;
        poison_locked pool e;
        Mutex.unlock pool.mu);
      Mutex.lock pool.mu;
      pool.unfinished <- pool.unfinished - 1;
      if pool.unfinished = 0 then Condition.broadcast pool.idle;
      Mutex.unlock pool.mu;
      loop ()
  in
  loop ()

let create ~jobs : t =
  let jobs = max 1 jobs in
  let pool =
    {
      jobs;
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      deques = Array.init jobs (fun _ -> Deque.create ());
      rr = 0;
      unfinished = 0;
      stop = false;
      poison = None;
      workers = [];
    }
  in
  pool.workers <- List.init jobs (fun id -> Domain.spawn (fun () -> worker pool id));
  pool

(** Submit a task.  Dropped silently if the pool is already poisoned or
    shut down (the poisoning exception still reaches the caller through
    {!wait}). *)
let submit pool task =
  Mutex.lock pool.mu;
  if (not pool.stop) && pool.poison = None then begin
    Deque.push pool.deques.(pool.rr) task;
    pool.rr <- (pool.rr + 1) mod pool.jobs;
    pool.unfinished <- pool.unfinished + 1;
    Condition.signal pool.work
  end;
  Mutex.unlock pool.mu

(** Block until the pool is quiescent (queued tasks done or dropped,
    in-flight tasks finished); re-raises the first exception any task
    raised and clears it, leaving the pool ready for the next wave. *)
let wait pool =
  Mutex.lock pool.mu;
  while pool.unfinished > 0 do
    Condition.wait pool.idle pool.mu
  done;
  let p = pool.poison in
  pool.poison <- None;
  Mutex.unlock pool.mu;
  match p with Some e -> raise e | None -> ()

(** Join the worker domains.  Idempotent. *)
let shutdown pool =
  Mutex.lock pool.mu;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let workers = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mu;
  List.iter Domain.join workers

(** [run ~jobs tasks]: one-shot pool over a task list. *)
let run ~jobs (tasks : task list) =
  let pool = create ~jobs in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      List.iter (submit pool) tasks;
      wait pool)
