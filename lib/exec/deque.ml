(** A double-ended work queue for the scheduler.

    Not thread-safe on its own — the pool serializes access with its
    mutex (see {!Pool}).  The owner drains from the front, i.e. in
    submission order, which makes a 1-worker pool process cells exactly
    like the old sequential sweep; thieves take from the back, the
    opposite end, so a steal disturbs the owner's order as little as
    possible.

    Implemented as the classic two-list functional deque: amortized O(1)
    at both ends, with an O(n) reversal when one side runs dry. *)

type 'a t = { mutable front : 'a list; mutable back : 'a list }

let create () = { front = []; back = [] }

let is_empty d = d.front = [] && d.back = []

let length d = List.length d.front + List.length d.back

(** Append at the back (newest end). *)
let push d x = d.back <- x :: d.back

(** Owner's end: oldest element first (submission order). *)
let pop_front d =
  match d.front with
  | x :: tl ->
    d.front <- tl;
    Some x
  | [] -> (
    match List.rev d.back with
    | [] -> None
    | x :: tl ->
      d.back <- [];
      d.front <- tl;
      Some x)

(** Thief's end: newest element first. *)
let pop_back d =
  match d.back with
  | x :: tl ->
    d.back <- tl;
    Some x
  | [] -> (
    match List.rev d.front with
    | [] -> None
    | x :: tl ->
      d.front <- [];
      d.back <- tl;
      Some x)

let clear d =
  let n = length d in
  d.front <- [];
  d.back <- [];
  n
