(** Content-addressed compile cache.

    Compiled artifacts are keyed by the {!Fingerprint} of the optimized
    IR module (suffixed by the owning backend's codegen-schema tag), so
    each structurally distinct (program, profile, codegen family)
    compilation happens once: backends that share a codegen path share
    one artifact within a cell, profiles that leave a program untouched
    share the baseline's artifact across cells, and an optional on-disk
    store under [_zkcache/] memoizes across runs.

    The cache is polymorphic in the artifact type.  Backend artifacts
    hold closures (execution captures the program image) and closures
    cannot be [Marshal]ed, so the disk half works through a per-call
    {!codec}: [enc] serializes the pure data inside the artifact
    ([None] = memory-only), [dec] rebinds closures around deserialized
    bytes.  The codec is passed per *call*, not per cache, because
    rebinding needs call-site context (the freshly prepared module).

    Safe for concurrent use from many domains.  A single mutex guards
    the table; compiles run outside the lock, and an in-flight set gives
    single-flight semantics — when several workers want the same digest
    at once, one compiles and the rest block on a condition variable and
    pick up the result as a hit.  Sharing is sound because compilation
    is deterministic and cached artifacts are immutable after assembly.

    The on-disk store is versioned by {!Fingerprint.schema}: artifacts
    live under [dir/<schema>/<digest>], so a schema bump simply starts a
    fresh namespace and stale artifacts are never deserialized.  Writes
    go through a temp file + rename, making concurrent writers and
    readers of the same digest safe (both produce identical bytes). *)

type 'a codec = {
  enc : 'a -> string option;  (** [None] = this artifact is memory-only *)
  dec : string -> 'a option;  (** [None] = stale/corrupt bytes: a miss *)
}

(** A codec for artifacts that are pure data (no closures). *)
let marshal_codec () =
  {
    enc = (fun a -> Some (Marshal.to_string a []));
    dec = (fun s -> try Some (Marshal.from_string s 0) with _ -> None);
  }

type stats = {
  hits : int;  (** served from memory (includes single-flight waiters) *)
  disk_hits : int;  (** deserialized from the on-disk store *)
  misses : int;  (** actual compiles performed *)
  evictions : int;  (** LRU entries dropped to respect [capacity] *)
}

let zero_stats = { hits = 0; disk_hits = 0; misses = 0; evictions = 0 }

let sub_stats a b =
  {
    hits = a.hits - b.hits;
    disk_hits = a.disk_hits - b.disk_hits;
    misses = a.misses - b.misses;
    evictions = a.evictions - b.evictions;
  }

(** Fraction (in %) of lookups that did not compile. *)
let hit_rate_pct s =
  let total = s.hits + s.disk_hits + s.misses in
  if total = 0 then 100.0
  else 100.0 *. float_of_int (s.hits + s.disk_hits) /. float_of_int total

type 'a entry = { art : 'a; mutable last_use : int }

type 'a t = {
  mu : Mutex.t;
  ready : Condition.t;  (** an in-flight compile completed *)
  capacity : int;  (** max in-memory entries; <= 0 = unbounded *)
  table : (string, 'a entry) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t;
  dir : string option;
  mutable tick : int;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 512) ?dir () : _ t =
  {
    mu = Mutex.create ();
    ready = Condition.create ();
    capacity;
    table = Hashtbl.create 256;
    inflight = Hashtbl.create 16;
    dir;
    tick = 0;
    hits = 0;
    disk_hits = 0;
    misses = 0;
    evictions = 0;
  }

(** Entries currently resident in memory (the service status surface
    reports this next to the hit/miss/evict counters). *)
let resident t : int =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mu;
  n

let stats t : stats =
  Mutex.lock t.mu;
  let s =
    {
      hits = t.hits;
      disk_hits = t.disk_hits;
      misses = t.misses;
      evictions = t.evictions;
    }
  in
  Mutex.unlock t.mu;
  s

(* ---- on-disk store -------------------------------------------------- *)

let schema_dirname =
  String.map (function ':' -> '-' | c -> c) Fingerprint.schema

let disk_path dir digest = Filename.concat (Filename.concat dir schema_dirname) digest

let mkdir_p path =
  let rec go p =
    if not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

let disk_load t codec digest : 'a option =
  match (t.dir, codec) with
  | None, _ | _, None -> None
  | Some dir, Some codec -> (
    let path = disk_path dir digest in
    if not (Sys.file_exists path) then None
    else
      try
        let ic = open_in_bin path in
        let bytes =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> In_channel.input_all ic)
        in
        codec.dec bytes
      with _ -> None (* truncated/corrupt artifact: treat as a miss *))

let disk_store t codec digest art =
  match (t.dir, codec) with
  | None, _ | _, None -> ()
  | Some dir, Some codec -> (
    try
      match codec.enc art with
      | None -> ()
      | Some bytes ->
        let path = disk_path dir digest in
        mkdir_p (Filename.dirname path);
        let tmp =
          Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
            (Domain.self () :> int)
        in
        let oc = open_out_bin tmp in
        output_string oc bytes;
        close_out oc;
        Sys.rename tmp path
    with _ -> () (* the disk store is an optimization, never a failure *))

(* ---- in-memory LRU (called with [mu] held) -------------------------- *)

let insert_locked t digest art =
  t.tick <- t.tick + 1;
  if t.capacity > 0 then
    while Hashtbl.length t.table >= t.capacity do
      let victim =
        Hashtbl.fold
          (fun k (e : _ entry) acc ->
            match acc with
            | Some (_, best) when best <= e.last_use -> acc
            | _ -> Some (k, e.last_use))
          t.table None
      in
      match victim with
      | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1
      | None -> Hashtbl.reset t.table
    done;
  Hashtbl.replace t.table digest { art; last_use = t.tick }

(* ---- lookup --------------------------------------------------------- *)

(** [get_or_compile t ~digest ?codec ~compile] returns the artifact for
    [digest], compiling with [compile] only when neither memory, disk,
    nor a concurrent in-flight compile can supply it.  Without [codec]
    the on-disk store is bypassed for this call. *)
let get_or_compile (type a) ?codec (t : a t) ~digest ~(compile : unit -> a) :
    a =
  Mutex.lock t.mu;
  let rec acquire () =
    match Hashtbl.find_opt t.table digest with
    | Some e ->
      t.tick <- t.tick + 1;
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      `Hit e.art
    | None ->
      if Hashtbl.mem t.inflight digest then begin
        (* another domain is compiling this digest: wait for it *)
        Condition.wait t.ready t.mu;
        acquire ()
      end
      else begin
        Hashtbl.replace t.inflight digest ();
        `Mine
      end
  in
  match acquire () with
  | `Hit art ->
    Mutex.unlock t.mu;
    art
  | `Mine -> (
    Mutex.unlock t.mu;
    let finish ~from_disk art =
      Mutex.lock t.mu;
      if from_disk then t.disk_hits <- t.disk_hits + 1
      else t.misses <- t.misses + 1;
      insert_locked t digest art;
      Hashtbl.remove t.inflight digest;
      Condition.broadcast t.ready;
      Mutex.unlock t.mu;
      art
    in
    match disk_load t codec digest with
    | Some art -> finish ~from_disk:true art
    | None -> (
      match compile () with
      | art ->
        let art = finish ~from_disk:false art in
        disk_store t codec digest art;
        art
      | exception e ->
        (* release waiters: one of them will take over the compile *)
        Mutex.lock t.mu;
        Hashtbl.remove t.inflight digest;
        Condition.broadcast t.ready;
        Mutex.unlock t.mu;
        raise e))
