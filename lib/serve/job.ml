(** Service job descriptions.

    A job is one unit of work the daemon's scheduler multiplexes onto
    the shared domain pool: a (slice of the) sweep matrix, a single
    profiled cell, an autotune search, or a differential fuzzing
    campaign.  Specs are pure data with a JSON codec — the same encoding
    travels over the wire protocol ({!Proto}) and into the daemon's
    append-only job registry, so a killed daemon re-reads exactly what
    its clients submitted. *)

module Json = Zkopt_report.Json

type spec =
  | Sweep of {
      programs : string list option;  (** [None] = the full suite *)
      profiles : string list option;  (** [None] = all 71 profiles *)
      quick : bool;
      backends : string list option;  (** [None] = the registry default pair *)
      limit : int option;
    }
  | Profile_cell of {
      program : string;
      profile : string;
      vm : string;
      quick : bool;
    }  (** one (program, profile, backend) cell, warmed by/warming the
           shared compile cache *)
  | Autotune of {
      program : string;
      iters : int;
      vm : string;
      quick : bool;
      seed : int;
      population : int;
    }
  | Fuzz of {
      seed_lo : int;
      seed_hi : int;
      pipelines : string list;  (** {!Zkopt_fuzz.Case.pipeline_of_spec} specs *)
      backends : string list option;  (** [None] = every registered backend *)
      limit : int option;
    }
  | Settle of {
      programs : string list option;  (** [None] = the full suite *)
      profiles : string list option;  (** [None] = the standard levels *)
      backends : string list option;  (** [None] = every registered backend *)
      quick : bool;
      arity : int;  (** aggregation fan-in of the recursion tree *)
    }  (** settlement-cost sweep: prover + aggregation + verification
           gas per (program, profile, backend) cell *)

let kind_name = function
  | Sweep _ -> "sweep"
  | Profile_cell _ -> "profile"
  | Autotune _ -> "autotune"
  | Fuzz _ -> "fuzz"
  | Settle _ -> "settle"

(** One submitted job.  [client] tags the submitting connection (the
    unit of failure-budget accounting); [priority] orders the queue
    (lower runs sooner, FIFO within a priority). *)
type t = {
  id : string;
  client : string;
  priority : int;
  budget : int option;  (** per-client failure budget, if declared *)
  spec : spec;
}

type state =
  | Queued
  | Running
  | Finished
  | Cancelled
  | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished -> "done"
  | Cancelled -> "cancelled"
  | Failed _ -> "failed"

(* ---- JSON codec ------------------------------------------------------ *)

let strs xs = Json.Arr (List.map (fun s -> Json.Str s) xs)

let opt_strs k = function None -> [] | Some xs -> [ (k, strs xs) ]
let opt_int k = function None -> [] | Some i -> [ (k, Json.Int i) ]

let spec_to_json : spec -> Json.t = function
  | Sweep { programs; profiles; quick; backends; limit } ->
    Json.Obj
      ([ ("kind", Json.Str "sweep"); ("quick", Json.Bool quick) ]
      @ opt_strs "programs" programs
      @ opt_strs "profiles" profiles
      @ opt_strs "backends" backends
      @ opt_int "limit" limit)
  | Profile_cell { program; profile; vm; quick } ->
    Json.Obj
      [
        ("kind", Json.Str "profile");
        ("program", Json.Str program);
        ("profile", Json.Str profile);
        ("vm", Json.Str vm);
        ("quick", Json.Bool quick);
      ]
  | Autotune { program; iters; vm; quick; seed; population } ->
    Json.Obj
      [
        ("kind", Json.Str "autotune");
        ("program", Json.Str program);
        ("iters", Json.Int iters);
        ("vm", Json.Str vm);
        ("quick", Json.Bool quick);
        ("seed", Json.Int seed);
        ("population", Json.Int population);
      ]
  | Fuzz { seed_lo; seed_hi; pipelines; backends; limit } ->
    Json.Obj
      ([
         ("kind", Json.Str "fuzz");
         ("seed_lo", Json.Int seed_lo);
         ("seed_hi", Json.Int seed_hi);
         ("pipelines", strs pipelines);
       ]
      @ opt_strs "backends" backends
      @ opt_int "limit" limit)
  | Settle { programs; profiles; backends; quick; arity } ->
    Json.Obj
      ([
         ("kind", Json.Str "settle");
         ("quick", Json.Bool quick);
         ("arity", Json.Int arity);
       ]
      @ opt_strs "programs" programs
      @ opt_strs "profiles" profiles
      @ opt_strs "backends" backends)

let strs_member k j =
  match Json.member k j with
  | Some (Json.Arr xs) ->
    Some
      (List.filter_map (function Json.Str s -> Some s | _ -> None) xs)
  | _ -> None

let spec_of_json (j : Json.t) : (spec, string) result =
  let quick = Option.value ~default:false (Json.bool_member "quick" j) in
  match Json.str_member "kind" j with
  | Some "sweep" ->
    Ok
      (Sweep
         {
           programs = strs_member "programs" j;
           profiles = strs_member "profiles" j;
           quick;
           backends = strs_member "backends" j;
           limit = Json.int_member "limit" j;
         })
  | Some "profile" -> (
    match (Json.str_member "program" j, Json.str_member "profile" j) with
    | Some program, Some profile ->
      Ok
        (Profile_cell
           {
             program;
             profile;
             vm = Option.value ~default:"risc0" (Json.str_member "vm" j);
             quick;
           })
    | _ -> Error "profile job needs \"program\" and \"profile\"")
  | Some "autotune" -> (
    match Json.str_member "program" j with
    | Some program ->
      Ok
        (Autotune
           {
             program;
             iters = Option.value ~default:80 (Json.int_member "iters" j);
             vm = Option.value ~default:"risc0" (Json.str_member "vm" j);
             quick;
             seed = Option.value ~default:1 (Json.int_member "seed" j);
             population =
               Option.value ~default:16 (Json.int_member "population" j);
           })
    | None -> Error "autotune job needs \"program\"")
  | Some "fuzz" -> (
    match (Json.int_member "seed_lo" j, Json.int_member "seed_hi" j) with
    | Some seed_lo, Some seed_hi when seed_lo <= seed_hi ->
      Ok
        (Fuzz
           {
             seed_lo;
             seed_hi;
             pipelines =
               Option.value ~default:[ "baseline" ]
                 (strs_member "pipelines" j);
             backends = strs_member "backends" j;
             limit = Json.int_member "limit" j;
           })
    | _ -> Error "fuzz job needs \"seed_lo\" <= \"seed_hi\""
  )
  | Some "settle" ->
    Ok
      (Settle
         {
           programs = strs_member "programs" j;
           profiles = strs_member "profiles" j;
           backends = strs_member "backends" j;
           quick;
           arity = Option.value ~default:8 (Json.int_member "arity" j);
         })
  | Some k -> Error (Printf.sprintf "unknown job kind %S" k)
  | None -> Error "job spec has no \"kind\""
