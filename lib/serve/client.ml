(** Client side of the service protocol: connect to the daemon's unix
    socket, send requests, read event lines.  Used by the [zkbench
    submit]/[status] subcommands and by the tests' in-process clients. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect (sock : string) : (t, string) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | () ->
    Ok
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s (is `zkbench serve` running?)"
         sock (Unix.error_message e))

let send (t : t) (r : Proto.request) : (unit, string) result =
  try
    output_string t.oc (Proto.encode_request r ^ "\n");
    flush t.oc;
    Ok ()
  with
  | Sys_error e -> Error e
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(** Next event from the daemon; [Error] covers both protocol noise and
    a closed connection ([`Eof]). *)
let recv (t : t) : (Proto.event, [ `Eof | `Bad of string ]) result =
  match input_line t.ic with
  | line -> (
    match Proto.decode_event line with
    | Ok ev -> Ok ev
    | Error msg -> Error (`Bad msg))
  | exception (End_of_file | Sys_error _) -> Error `Eof
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
    Error `Eof

let close (t : t) = try close_in_noerr t.ic with _ -> ()

let with_connection (sock : string) (f : t -> ('a, string) result) :
    ('a, string) result =
  match connect sock with
  | Error e -> Error e
  | Ok c ->
    let r = try f c with e -> close c; raise e in
    close c;
    r

(** Submit [spec] and, when [watch] (default), stream events until the
    job's terminal event, calling [on_event] per event.  Returns the
    job id and its terminal state. *)
let submit_and_watch ?(priority = 10) ?budget ?(watch = true)
    ?(on_event = fun (_ : Proto.event) -> ()) (c : t) (spec : Job.spec) :
    (string * [ `Done of Zkopt_report.Json.t | `Failed of string ], string)
    result =
  match send c (Proto.Submit { spec; priority; budget; watch }) with
  | Error e -> Error e
  | Ok () -> (
    let rec await_ack () =
      match recv c with
      | Ok (Proto.Ack { id }) -> Ok id
      | Ok (Proto.Err { msg }) -> Error msg
      | Ok _ -> await_ack ()
      | Error `Eof -> Error "daemon closed the connection"
      | Error (`Bad msg) -> Error msg
    in
    match await_ack () with
    | Error e -> Error e
    | Ok id ->
      if not watch then Ok (id, `Done Zkopt_report.Json.Null)
      else
        let rec drain () =
          match recv c with
          | Ok (Proto.Done { id = did; summary }) when String.equal did id ->
            Ok (id, `Done summary)
          | Ok (Proto.Err { msg }) -> Ok (id, `Failed msg)
          | Ok ev ->
            on_event ev;
            drain ()
          | Error `Eof -> Error "daemon closed the connection mid-stream"
          | Error (`Bad msg) -> Error msg
        in
        drain ())
