(** The service scheduler: one warm set of domains and one warm compile
    cache, multiplexed across every client's jobs.

    The scheduler owns the expensive state a one-shot CLI run rebuilds
    from scratch every time — the {!Zkopt_exec.Pool} of worker domains
    and the content-addressed {!Zkopt_exec.Cache} (in-memory
    [Fingerprint]→artifact LRU over the shared [_zkcache/] disk store) —
    and executes jobs pulled from a {!Jobq} priority queue on a single
    dispatcher thread.  Jobs run one at a time; {e cells} within a job
    run in parallel on the pool.  Each job's per-cell rows stream to
    its subscribers as they complete and to a per-job checkpoint file,
    so results survive the daemon and clients can attach late.

    {b Restart contract.}  Submissions append one line to an
    append-only registry ([jobs.reg], flushed per line, terminal-"."
    framed like the campaign checkpoint); terminal states append a
    second line.  A job interrupted by a drain or a kill has no
    terminal line, so the next daemon over the same state directory
    re-enqueues it and the job's harness/campaign checkpoint resumes it
    cell-exactly — the resumed rows are byte-identical to an
    uninterrupted run's, the same kill-safety contract the one-shot
    sweep has.

    {b Failure budgets.}  A submission may declare a per-client failure
    budget.  Quarantined cells (sweeps) and divergences (fuzz) spend
    from one ledger per client tag; once a client's ledger is
    exhausted, its queued and future jobs fail fast instead of burning
    pool time — the harness quarantine generalized across jobs. *)

module H = Zkopt_harness.Harness
module Checkpoint = Zkopt_harness.Checkpoint
module Cell = Zkopt_harness.Cell
module Campaign = Zkopt_fuzz.Campaign
module Case = Zkopt_fuzz.Case
module Pool = Zkopt_exec.Pool
module Cache = Zkopt_exec.Cache
module Fingerprint = Zkopt_exec.Fingerprint
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Workload = Zkopt_workloads.Workload
module Autotune = Zkopt_autotune.Autotune
module Json = Zkopt_report.Json
open Zkopt_core

type jobrec = {
  job : Job.t;
  mutable state : Job.state;
  cancel : bool Atomic.t;
  mutable rows : string list;  (** reversed row log, for watch replay *)
  mutable nrows : int;
  mutable sinks : (string * (Proto.event -> bool)) list;
      (** (session tag, send); a sink returning [false] is dropped *)
}

type t = {
  dir : string;
  pool : Pool.t;
  pool_jobs : int;
  cache : Backend.compiled Cache.t;
  tune_cache : Zkopt_ir.Modul.t Cache.t;
      (** autotune prefix-module cache, shared across tune jobs (memory
          only: modules are mutable graphs, never disk-cached) *)
  q : jobrec Jobq.t;
  jobs : (string, jobrec) Hashtbl.t;
  mutable order : string list;  (** job ids, newest first *)
  mu : Mutex.t;
  reg : out_channel;  (** append-only job registry, flushed per line *)
  spent : (string, int) Hashtbl.t;  (** failure-budget ledger per client *)
  mutable next_id : int;
  mutable draining : bool;
  log : string -> unit;
  mutable dispatcher : Thread.t option;
}

let ckpt_path t (jr : jobrec) =
  Filename.concat t.dir (jr.job.Job.id ^ ".ckpt")

(* ---- registry codec -------------------------------------------------- *)

(* `J <id> <client> <priority> <budget|-> <json spec> .` on submission,
   `D <id> <state> .` on a terminal state.  JSON escapes tabs, so the
   spec field never collides with the framing; the terminal "." makes a
   kill-truncated line undecodable rather than silently short. *)

let reg_name = "jobs.reg"

let encode_submit (j : Job.t) : string =
  String.concat "\t"
    [
      "J";
      j.Job.id;
      j.Job.client;
      string_of_int j.Job.priority;
      (match j.Job.budget with Some b -> string_of_int b | None -> "-");
      Json.to_string (Job.spec_to_json j.Job.spec);
      ".";
    ]

let encode_terminal (id : string) (st : Job.state) : string =
  let tag =
    match st with
    | Job.Finished -> "done"
    | Job.Cancelled -> "cancelled"
    | Job.Failed msg ->
      "failed:" ^ String.map (function '\t' | '\n' -> ' ' | c -> c) msg
    | Job.Queued | Job.Running -> invalid_arg "encode_terminal: not terminal"
  in
  String.concat "\t" [ "D"; id; tag; "." ]

type reg_line =
  | Submitted of Job.t
  | Terminal of string * Job.state

let decode_line (line : string) : reg_line option =
  match String.split_on_char '\t' line with
  | [ "J"; id; client; prio; budget; spec; "." ] -> (
    match
      ( int_of_string_opt prio,
        Json.of_string spec |> Result.map Job.spec_of_json )
    with
    | Some priority, Ok (Ok spec) ->
      Some
        (Submitted
           {
             Job.id;
             client;
             priority;
             budget = int_of_string_opt budget;
             spec;
           })
    | _ -> None)
  | [ "D"; id; tag; "." ] ->
    let st =
      match tag with
      | "done" -> Some Job.Finished
      | "cancelled" -> Some Job.Cancelled
      | _ ->
        if String.length tag >= 7 && String.sub tag 0 7 = "failed:" then
          Some (Job.Failed (String.sub tag 7 (String.length tag - 7)))
        else None
    in
    Option.map (fun st -> Terminal (id, st)) st
  | _ -> None

let load_registry (path : string) : reg_line list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         match decode_line (input_line ic) with
         | Some l -> lines := l :: !lines
         | None -> () (* kill-truncated or foreign line *)
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  end

let append_reg t (line : string) =
  output_string t.reg line;
  output_char t.reg '\n';
  flush t.reg

(* ---- construction / restart ------------------------------------------ *)

let mkdir_p path =
  let rec go p =
    if not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

let id_num (id : string) : int =
  match String.split_on_char '-' id with
  | [ "job"; n ] -> Option.value ~default:0 (int_of_string_opt n)
  | _ -> 0

(** Create a scheduler over [dir], reloading the job registry: jobs
    with no terminal line (queued or mid-run when the last daemon died)
    are re-enqueued in their original (priority, submission) order and
    resume from their checkpoints. *)
let create ~dir ~jobs ?(cache_dir = Some "_zkcache") ?(cache_capacity = 512)
    ~log () : t =
  mkdir_p dir;
  let lines = load_registry (Filename.concat dir reg_name) in
  let reg =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
      (Filename.concat dir reg_name)
  in
  let t =
    {
      dir;
      pool = Pool.create ~jobs;
      pool_jobs = jobs;
      cache = Cache.create ~capacity:cache_capacity ?dir:cache_dir ();
      tune_cache = Cache.create ~capacity:512 ();
      q = Jobq.create ();
      jobs = Hashtbl.create 32;
      order = [];
      mu = Mutex.create ();
      reg;
      spent = Hashtbl.create 8;
      next_id = 1;
      draining = false;
      log;
      dispatcher = None;
    }
  in
  List.iter
    (fun line ->
      match line with
      | Submitted j ->
        let jr =
          {
            job = j;
            state = Job.Queued;
            cancel = Atomic.make false;
            rows = [];
            nrows = 0;
            sinks = [];
          }
        in
        Hashtbl.replace t.jobs j.Job.id jr;
        t.order <- j.Job.id :: t.order;
        t.next_id <- max t.next_id (id_num j.Job.id + 1)
      | Terminal (id, st) -> (
        match Hashtbl.find_opt t.jobs id with
        | Some jr -> jr.state <- st
        | None -> ()))
    lines;
  (* re-enqueue the survivors, oldest first within a priority *)
  List.iter
    (fun id ->
      let jr = Hashtbl.find t.jobs id in
      if jr.state = Job.Queued then begin
        Jobq.push t.q ~priority:jr.job.Job.priority jr;
        t.log
          (Printf.sprintf "serve: re-enqueued %s (%s) from registry" id
             (Job.kind_name jr.job.Job.spec))
      end)
    (List.rev t.order);
  t

(* ---- event fan-out --------------------------------------------------- *)

(* Send [ev] to every sink of [jr], dropping sinks whose client went
   away.  Called with [t.mu] held so replay and live rows interleave
   consistently per subscriber. *)
let emit_locked (jr : jobrec) (ev : Proto.event) =
  jr.sinks <- List.filter (fun (_, sink) -> sink ev) jr.sinks

let push_row t (jr : jobrec) (data : string) =
  Mutex.lock t.mu;
  jr.rows <- data :: jr.rows;
  jr.nrows <- jr.nrows + 1;
  emit_locked jr (Proto.Row { id = jr.job.Job.id; data });
  Mutex.unlock t.mu

(* ---- job execution --------------------------------------------------- *)

let profile_of_name (name : string) : Profile.t =
  match name with
  | "baseline" -> Profile.Baseline
  | "zk-o3" | "zkvm-o3" | "-O3(zkvm)" -> Profile.Zkvm_o3
  | "O0" | "-O0" -> Profile.Level Zkopt_passes.Catalog.O0
  | "O1" | "-O1" -> Profile.Level Zkopt_passes.Catalog.O1
  | "O2" | "-O2" -> Profile.Level Zkopt_passes.Catalog.O2
  | "O3" | "-O3" -> Profile.Level Zkopt_passes.Catalog.O3
  | "Os" | "-Os" -> Profile.Level Zkopt_passes.Catalog.Os
  | "Oz" | "-Oz" -> Profile.Level Zkopt_passes.Catalog.Oz
  | p ->
    ignore (Zkopt_passes.Pass.find p) (* errors early on unknown names *);
    Profile.Single_pass p

let size_of_quick quick = if quick then Workload.Quick else Workload.Full

(* Remaining failure budget for this job, given what its client already
   spent, or [None] when the job declared none. *)
let remaining_budget t (jr : jobrec) : int option =
  match jr.job.Job.budget with
  | None -> None
  | Some b ->
    let used =
      Option.value ~default:0 (Hashtbl.find_opt t.spent jr.job.Job.client)
    in
    Some (b - used)

let spend t (jr : jobrec) (n : int) =
  if n > 0 then begin
    Mutex.lock t.mu;
    let used =
      Option.value ~default:0 (Hashtbl.find_opt t.spent jr.job.Job.client)
    in
    Hashtbl.replace t.spent jr.job.Job.client (used + n);
    Mutex.unlock t.mu
  end

type exec_result =
  | Completed of Json.t
  | Drained  (** interrupted by drain: no terminal record, resumes later *)
  | Was_cancelled
  | Crashed of string

(* The stop predicate every job polls at cell granularity. *)
let stop_for t (jr : jobrec) () = Atomic.get jr.cancel || t.draining

let interrupted t (jr : jobrec) : exec_result =
  if Atomic.get jr.cancel then Was_cancelled else if t.draining then Drained
  else Crashed "job stopped for no recorded reason"

let cache_stats_json (s : Cache.stats) ~resident : Json.t =
  Json.Obj
    [
      ("hits", Json.Int s.Cache.hits);
      ("disk_hits", Json.Int s.Cache.disk_hits);
      ("misses", Json.Int s.Cache.misses);
      ("evictions", Json.Int s.Cache.evictions);
      ("resident", Json.Int resident);
      ("hit_rate_pct", Json.Float (Cache.hit_rate_pct s));
    ]

let exec_sweep t jr ~programs ~profiles ~quick ~backends ~limit : exec_result =
  let profiles = Option.map (List.map profile_of_name) profiles in
  let backends = Option.map (List.map Registry.find) backends in
  let stats0 = Cache.stats t.cache in
  let cfg =
    {
      (H.default ~size:(size_of_quick quick)) with
      H.programs;
      profiles;
      backends;
      limit;
      checkpoint = Some (ckpt_path t jr);
      resume = true;
      failure_budget =
        (match remaining_budget t jr with
        | Some b -> b
        | None -> (H.default ~size:Workload.Quick).H.failure_budget);
      jobs = t.pool_jobs;
      cache = Some t.cache;
      pool = Some t.pool;
      on_point = Some (fun p -> push_row t jr (Checkpoint.encode_point p));
      stop = stop_for t jr;
    }
  in
  match H.run cfg with
  | o ->
    spend t jr (List.length o.H.quarantined);
    if (not o.H.completed) && stop_for t jr () then interrupted t jr
    else
      Completed
        (Json.Obj
           [
             ("points", Json.Int (Hashtbl.length o.H.points));
             ("resumed", Json.Int o.H.resumed);
             ("executed", Json.Int o.H.executed);
             ("quarantined", Json.Int (List.length o.H.quarantined));
             ("retries", Json.Int o.H.retries);
             ("completed", Json.Bool o.H.completed);
             ( "cache",
               cache_stats_json
                 (Cache.sub_stats (Cache.stats t.cache) stats0)
                 ~resident:(Cache.resident t.cache) );
           ])
  | exception H.Budget_exceeded errs ->
    spend t jr (List.length errs);
    Crashed
      (Printf.sprintf "failure budget exceeded after %d quarantined cells"
         (List.length errs))
  | exception e -> Crashed (Printexc.to_string e)

let exec_profile t jr ~program ~profile ~vm ~quick : exec_result =
  match
    let w = Workload.find program in
    let b = Registry.find vm in
    let build () = w.Workload.build (size_of_quick quick) in
    let profile_t = profile_of_name profile in
    let m = Measure.prepare_ir ~build profile_t in
    let digest = Fingerprint.of_modul m ^ "+" ^ b.Backend.schema in
    let codec =
      {
        Cache.enc = (fun (c : Backend.compiled) -> c.Backend.encode ());
        dec = (fun s -> b.Backend.decode m s);
      }
    in
    let c =
      Cache.get_or_compile t.cache ~digest ~codec ~compile:(fun () ->
          b.Backend.compile m)
    in
    let r = c.Backend.measure ~vm:b.Backend.name () in
    (match r.Backend.accounting with
    | Ok () -> ()
    | Error msg -> failwith ("accounting: " ^ msg));
    let point =
      {
        Cell.program = w.Workload.name;
        suite = w.Workload.suite;
        profile = Profile.name profile_t;
        zk = [ r.Backend.zk ];
        cpu = None;
      }
    in
    push_row t jr (Checkpoint.encode_point point);
    Json.Obj
      [
        ("program", Json.Str program);
        ("profile", Json.Str (Profile.name profile_t));
        ("vm", Json.Str vm);
        ("cycles", Json.Int r.Backend.zk.Measure.cycles);
        ("segments", Json.Int r.Backend.zk.Measure.segments);
      ]
  with
  | summary -> Completed summary
  | exception e ->
    spend t jr 1;
    Crashed (Printexc.to_string e)

let exec_autotune t jr ~program ~iters ~vm ~quick ~seed ~population :
    exec_result =
  match
    let w = Workload.find program in
    let b = Registry.find vm in
    let build () = w.Workload.build (size_of_quick quick) in
    (* one target pricing [program] on [vm], compiling through the shared
       artifact cache; the search engine streams every checkpoint row to
       subscribers and resumes the row log across daemon restarts *)
    let target = Autotune.backend_target ~cache:t.cache ~program ~build b in
    let cfg =
      {
        (Autotune.default ~seed ~population ~iterations:iters ()) with
        Autotune.jobs = t.pool_jobs;
        pool = Some t.pool;
        prefix_cache = Some t.tune_cache;
        checkpoint = Some (ckpt_path t jr);
        resume = true;
        on_row = Some (push_row t jr);
        stop = stop_for t jr;
      }
    in
    Autotune.search cfg ~targets:[ target ]
  with
  | o -> (
    if (not o.Autotune.completed) && stop_for t jr () then interrupted t jr
    else
      match o.Autotune.result with
      | None -> Crashed "autotune search produced no result"
      | Some ga ->
        let best = ga.Autotune.best in
        let cs = o.Autotune.cache_stats in
        Completed
          (Json.Obj
             [
               ("program", Json.Str program);
               ("vm", Json.Str vm);
               ("evaluations", Json.Int ga.Autotune.evaluations);
               ("resumed", Json.Int o.Autotune.resumed);
               ("generations", Json.Int (List.length ga.Autotune.history));
               ("best_cycles", Json.Int best.Autotune.fitness);
               ( "best_genome",
                 Json.Arr (List.map (fun p -> Json.Str p) best.Autotune.genome)
               );
               ("dedup_hits", Json.Int cs.Autotune.dedup_hits);
               ("pruned", Json.Int cs.Autotune.pruned);
               ("measured", Json.Int cs.Autotune.measured);
               ( "prefix_cache",
                 cache_stats_json cs.Autotune.prefix
                   ~resident:(Cache.resident t.tune_cache) );
             ]))
  | exception e ->
    spend t jr 1;
    Crashed (Printexc.to_string e)

let exec_fuzz t jr ~seed_lo ~seed_hi ~pipelines ~backends ~limit : exec_result
    =
  match
    let backends =
      match backends with
      | None -> Registry.all ()
      | Some ns -> List.map Case.resolve_backend ns
    in
    let pipelines =
      List.map
        (fun spec ->
          match Case.pipeline_of_spec spec with
          | Ok p -> p
          | Error e -> failwith e)
        pipelines
    in
    {
      (Campaign.default ~backends) with
      Campaign.sources =
        List.init (seed_hi - seed_lo + 1) (fun i -> Case.seed (seed_lo + i));
      pipelines;
      jobs = t.pool_jobs;
      checkpoint = Some (ckpt_path t jr);
      resume = true;
      failure_budget = remaining_budget t jr;
      limit;
      pool = Some t.pool;
      on_row =
        Some (fun r -> push_row t jr (Campaign.encode_row r));
      stop = stop_for t jr;
    }
  with
  | cfg -> (
    match Campaign.run cfg with
    | s ->
      spend t jr (List.length s.Campaign.findings);
      if stop_for t jr () && s.Campaign.ran < s.Campaign.planned then
        interrupted t jr
      else
        Completed
          (Json.Obj
             [
               ("planned", Json.Int s.Campaign.planned);
               ("resumed", Json.Int s.Campaign.resumed);
               ("ran", Json.Int s.Campaign.ran);
               ("agreed", Json.Int s.Campaign.agreed);
               ("diverged", Json.Int (List.length s.Campaign.findings));
               ("budget_hit", Json.Bool s.Campaign.budget_hit);
             ])
    | exception e -> Crashed (Printexc.to_string e))
  | exception e -> Crashed (Printexc.to_string e)

let exec_settle t jr ~programs ~profiles ~quick ~backends ~arity :
    exec_result =
  let module Ssweep = Zkopt_settle.Ssweep in
  match
    let size = size_of_quick quick in
    let program_names =
      match programs with Some ps -> ps | None -> Workload.names ()
    in
    let programs =
      List.map
        (fun name ->
          let w = Workload.find name in
          (name, fun () -> w.Workload.build size))
        program_names
    in
    let profile_names =
      match profiles with
      | Some ps -> ps
      | None -> [ "baseline"; "O1"; "O2"; "O3"; "Os"; "Oz"; "zk-o3" ]
    in
    let profiles =
      List.map (fun n -> (Profile.name (profile_of_name n), profile_of_name n))
        profile_names
    in
    let backends =
      match backends with
      | None -> Registry.all ()
      | Some ns -> List.map Registry.find ns
    in
    {
      (Ssweep.default ~jobs:t.pool_jobs ()) with
      Ssweep.programs;
      profiles;
      backends;
      pool = Some t.pool;
      cache = Some t.cache;
      arity = Some arity;
      checkpoint = Some (ckpt_path t jr);
      on_row = Some (push_row t jr);
      stop = stop_for t jr;
    }
  with
  | cfg -> (
    match Ssweep.run cfg with
    | o ->
      if (not o.Ssweep.completed) && stop_for t jr () then interrupted t jr
      else
        Completed
          (Json.Obj
             [
               ("rows", Json.Int (List.length o.Ssweep.rows));
               ("cells", Json.Int o.Ssweep.cells);
               ("resumed", Json.Int o.Ssweep.replayed);
               ("completed", Json.Bool o.Ssweep.completed);
             ])
    | exception e ->
      spend t jr 1;
      Crashed (Printexc.to_string e))
  | exception e -> Crashed (Printexc.to_string e)

let exec_job t (jr : jobrec) : exec_result =
  match remaining_budget t jr with
  | Some b when b <= 0 ->
    Crashed
      (Printf.sprintf "client %S failure budget exhausted" jr.job.Job.client)
  | _ -> (
    match jr.job.Job.spec with
    | Job.Sweep { programs; profiles; quick; backends; limit } ->
      exec_sweep t jr ~programs ~profiles ~quick ~backends ~limit
    | Job.Profile_cell { program; profile; vm; quick } ->
      exec_profile t jr ~program ~profile ~vm ~quick
    | Job.Autotune { program; iters; vm; quick; seed; population } ->
      exec_autotune t jr ~program ~iters ~vm ~quick ~seed ~population
    | Job.Fuzz { seed_lo; seed_hi; pipelines; backends; limit } ->
      exec_fuzz t jr ~seed_lo ~seed_hi ~pipelines ~backends ~limit
    | Job.Settle { programs; profiles; backends; quick; arity } ->
      exec_settle t jr ~programs ~profiles ~quick ~backends ~arity)

(* ---- dispatcher ------------------------------------------------------ *)

(* Record a terminal state (registry line + event fan-out). *)
let finish_job t (jr : jobrec) (st : Job.state) (summary : Json.t) =
  Mutex.lock t.mu;
  jr.state <- st;
  append_reg t (encode_terminal jr.job.Job.id st);
  let ev =
    match st with
    | Job.Failed msg -> Proto.Err { msg = jr.job.Job.id ^ ": " ^ msg }
    | _ -> Proto.Done { id = jr.job.Job.id; summary }
  in
  emit_locked jr ev;
  jr.sinks <- [];
  Mutex.unlock t.mu;
  t.log
    (Printf.sprintf "serve: %s %s (%d rows)" jr.job.Job.id
       (Job.state_name st) jr.nrows)

let state_json (st : Job.state) : Json.t =
  match st with
  | Job.Failed msg ->
    Json.Obj [ ("state", Json.Str "failed"); ("error", Json.Str msg) ]
  | st -> Json.Obj [ ("state", Json.Str (Job.state_name st)) ]

let rec dispatch_loop t =
  match Jobq.pop t.q with
  | None -> () (* queue closed: drained *)
  | Some jr ->
    if t.draining then () (* popped entry stays registered; resumes later *)
    else if Atomic.get jr.cancel then begin
      finish_job t jr Job.Cancelled (state_json Job.Cancelled);
      dispatch_loop t
    end
    else begin
      Mutex.lock t.mu;
      jr.state <- Job.Running;
      Mutex.unlock t.mu;
      t.log
        (Printf.sprintf "serve: running %s (%s, client %s)" jr.job.Job.id
           (Job.kind_name jr.job.Job.spec)
           jr.job.Job.client);
      (match exec_job t jr with
      | Completed summary -> finish_job t jr Job.Finished summary
      | Was_cancelled -> finish_job t jr Job.Cancelled (state_json Job.Cancelled)
      | Crashed msg -> finish_job t jr (Job.Failed msg) (state_json (Job.Failed msg))
      | Drained ->
        (* no terminal record: the restart re-enqueues and the job's
           checkpoint resumes it exactly where this daemon stopped *)
        Mutex.lock t.mu;
        jr.state <- Job.Queued;
        Mutex.unlock t.mu);
      dispatch_loop t
    end

let start t =
  match t.dispatcher with
  | Some _ -> invalid_arg "Scheduler.start: already started"
  | None -> t.dispatcher <- Some (Thread.create dispatch_loop t)

(* ---- client-facing operations ---------------------------------------- *)

let submit t ~client ?(priority = 10) ?budget (spec : Job.spec) :
    (string, string) result =
  Mutex.lock t.mu;
  if t.draining then begin
    Mutex.unlock t.mu;
    Error "daemon is draining"
  end
  else begin
    let id = Printf.sprintf "job-%d" t.next_id in
    t.next_id <- t.next_id + 1;
    let job = { Job.id; client; priority; budget; spec } in
    let jr =
      {
        job;
        state = Job.Queued;
        cancel = Atomic.make false;
        rows = [];
        nrows = 0;
        sinks = [];
      }
    in
    Hashtbl.replace t.jobs id jr;
    t.order <- id :: t.order;
    append_reg t (encode_submit job);
    Mutex.unlock t.mu;
    Jobq.push t.q ~priority jr;
    Ok id
  end

(** Cancel a job: queued jobs are discarded when the dispatcher reaches
    them, the running job stops at its next cell boundary.  Cancelling
    an already-terminal job is a no-op returning [false]. *)
let cancel t (id : string) : bool =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | Some jr when jr.state = Job.Queued || jr.state = Job.Running ->
      Atomic.set jr.cancel true;
      true
    | _ -> false
  in
  Mutex.unlock t.mu;
  r

(** Subscribe [sink] (tagged [sid]) to a job's stream: already-produced
    rows replay first, then live rows, then the terminal event — all in
    a consistent order.  A terminal job replays rows and its terminal
    event immediately. *)
let watch t ~sid (id : string) (sink : Proto.event -> bool) :
    (unit, string) result =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> Error (Printf.sprintf "no such job %S" id)
    | Some jr ->
      let replay_ok =
        List.for_all
          (fun data -> sink (Proto.Row { id; data }))
          (List.rev jr.rows)
      in
      (match jr.state with
      | Job.Queued | Job.Running ->
        if replay_ok then jr.sinks <- (sid, sink) :: jr.sinks
      | Job.Finished | Job.Cancelled ->
        ignore (sink (Proto.Done { id; summary = state_json jr.state }))
      | Job.Failed msg -> ignore (sink (Proto.Err { msg = id ^ ": " ^ msg })));
      Ok ()
  in
  Mutex.unlock t.mu;
  r

(** Drop every sink tagged [sid] and cancel the listed jobs — the
    disconnect path: a client that went away takes its watched jobs
    with it, cleanly. *)
let detach t ~sid ~(cancel_jobs : string list) =
  Mutex.lock t.mu;
  Hashtbl.iter
    (fun _ jr ->
      jr.sinks <- List.filter (fun (s, _) -> not (String.equal s sid)) jr.sinks)
    t.jobs;
  Mutex.unlock t.mu;
  List.iter (fun id -> ignore (cancel t id)) cancel_jobs

let job_json (jr : jobrec) : Json.t =
  Json.Obj
    [
      ("id", Json.Str jr.job.Job.id);
      ("kind", Json.Str (Job.kind_name jr.job.Job.spec));
      ("client", Json.Str jr.job.Job.client);
      ("priority", Json.Int jr.job.Job.priority);
      ("state", Json.Str (Job.state_name jr.state));
      ("rows", Json.Int jr.nrows);
    ]

(** The status surface: every known job (submission order) plus the
    shared-cache counters ({!Zkopt_exec.Cache.stats}: hit/miss/evict and
    residency) and pool shape — the warm-state telemetry `zkbench
    status` prints. *)
let status_json t : Json.t =
  Mutex.lock t.mu;
  let jobs =
    List.rev_map (fun id -> job_json (Hashtbl.find t.jobs id)) t.order
  in
  let draining = t.draining in
  Mutex.unlock t.mu;
  let s = Cache.stats t.cache in
  Json.Obj
    [
      ("jobs", Json.Arr jobs);
      ("queued", Json.Int (Jobq.length t.q));
      ("pool_jobs", Json.Int t.pool_jobs);
      ("draining", Json.Bool draining);
      ("cache", cache_stats_json s ~resident:(Cache.resident t.cache));
    ]

(** Graceful drain: refuse new submissions, stop the running job at its
    next cell boundary (checkpointed, no terminal record), join the
    dispatcher, and release the pool.  Everything unfinished resumes on
    the next daemon over this state directory. *)
let drain t =
  Mutex.lock t.mu;
  t.draining <- true;
  Mutex.unlock t.mu;
  Jobq.close t.q;
  (match t.dispatcher with Some th -> Thread.join th | None -> ());
  t.dispatcher <- None;
  Pool.shutdown t.pool;
  Mutex.lock t.mu;
  (try flush t.reg with Sys_error _ -> ());
  (try close_out_noerr t.reg with Sys_error _ -> ());
  Mutex.unlock t.mu
