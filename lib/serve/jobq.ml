(** Blocking priority queue for the sweep service's scheduler.

    A binary min-heap keyed by [(priority, sequence)]: lower priorities
    pop first, and within one priority entries pop in push order (the
    sequence number is a monotonic tiebreaker), so two clients at the
    same priority are served first-come-first-served while an urgent
    job overtakes a backlog of bulk work.

    [pop] blocks until an entry is available or the queue is closed;
    [close] wakes every blocked consumer with [None], which is the
    drain signal.  [remove] supports cancellation of queued entries.
    All operations are safe from any thread or domain. *)

type 'a item = { prio : int; seq : int; v : 'a }

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable heap : 'a item array;  (* slots [0, size) form the heap *)
  mutable size : int;
  mutable seq : int;
  mutable closed : bool;
}

let create () : _ t =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    heap = [||];
    size = 0;
    seq = 0;
    closed = false;
  }

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push_locked t ~priority v =
  if t.size = Array.length t.heap then begin
    let cap = max 8 (2 * t.size) in
    let bigger = Array.make cap { prio = 0; seq = 0; v } in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { prio = priority; seq = t.seq; v };
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(** Enqueue [v] at [priority] (lower pops sooner).  Raises
    [Invalid_argument] on a closed queue — submissions after a drain
    began are a caller bug. *)
let push t ~priority v =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    invalid_arg "Jobq.push: queue is closed"
  end;
  push_locked t ~priority v;
  Condition.signal t.nonempty;
  Mutex.unlock t.mu

let pop_locked t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  top.v

(** Non-blocking pop. *)
let try_pop t : 'a option =
  Mutex.lock t.mu;
  let r = if t.size = 0 then None else Some (pop_locked t) in
  Mutex.unlock t.mu;
  r

(** Blocking pop: the next entry in (priority, FIFO) order, or [None]
    once the queue is closed and empty. *)
let pop t : 'a option =
  Mutex.lock t.mu;
  while t.size = 0 && not t.closed do
    Condition.wait t.nonempty t.mu
  done;
  let r = if t.size = 0 then None else Some (pop_locked t) in
  Mutex.unlock t.mu;
  r

(** Remove every queued entry matching [pred]; returns the removed
    values (cancellation of not-yet-running jobs). *)
let remove t (pred : 'a -> bool) : 'a list =
  Mutex.lock t.mu;
  let kept = ref [] and removed = ref [] in
  for i = 0 to t.size - 1 do
    let it = t.heap.(i) in
    if pred it.v then removed := it.v :: !removed else kept := it :: !kept
  done;
  let kept = Array.of_list (List.rev !kept) in
  Array.blit kept 0 t.heap 0 (Array.length kept);
  t.size <- Array.length kept;
  (* rebuild the heap property bottom-up *)
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  Mutex.unlock t.mu;
  List.rev !removed

(** Queued entries in pop order (a snapshot; does not consume). *)
let snapshot t : 'a list =
  Mutex.lock t.mu;
  let items = Array.sub t.heap 0 t.size in
  Mutex.unlock t.mu;
  Array.to_list items
  |> List.sort (fun a b -> compare (a.prio, a.seq) (b.prio, b.seq))
  |> List.map (fun it -> it.v)

let length t =
  Mutex.lock t.mu;
  let n = t.size in
  Mutex.unlock t.mu;
  n

(** Close the queue: blocked and future [pop]s drain the remaining
    entries and then return [None]. *)
let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu
