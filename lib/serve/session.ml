(** One client connection to the daemon: a line-framed, mutex-guarded
    wrapper over the accepted socket.

    Sends go through raw [Unix.write] (not a buffered channel) so a
    peer that vanished surfaces immediately as [EPIPE] / [ECONNRESET]
    instead of lingering in a buffer; either error just marks the
    session dead — the daemon treats a dead session as that client
    hanging up, never as a reason to crash (SIGPIPE itself is ignored
    process-wide by {!Daemon}).  The send mutex keeps row events from
    the scheduler's dispatcher and replies from the session's own
    reader thread from interleaving mid-line. *)

type t = {
  fd : Unix.file_descr;
  sid : string;  (** unique session tag; the sink + failure-budget key *)
  ic : in_channel;  (** read side; line-framed requests *)
  send_mu : Mutex.t;
  mutable alive : bool;
  mutable watched : string list;
      (** job ids submitted on this connection with [watch = true];
          cancelled if the client disconnects before they finish *)
}

let counter = Atomic.make 0

let create (fd : Unix.file_descr) : t =
  {
    fd;
    sid = Printf.sprintf "s%d" (Atomic.fetch_and_add counter 1);
    ic = Unix.in_channel_of_descr fd;
    send_mu = Mutex.create ();
    alive = true;
    watched = [];
  }

let write_all fd (s : string) =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(** Send one event line.  Returns [false] — and marks the session dead —
    once the peer is gone; exactly the shape {!Scheduler.watch} expects
    of a sink, so a dead client self-removes from every job it watched. *)
let send (t : t) (ev : Proto.event) : bool =
  Mutex.lock t.send_mu;
  let ok =
    if not t.alive then false
    else
      try
        write_all t.fd (Proto.encode_event ev ^ "\n");
        true
      with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      | Sys_error _ ->
        t.alive <- false;
        false
  in
  Mutex.unlock t.send_mu;
  ok

(** Read the next request line; [None] on EOF or a dropped connection. *)
let recv_line (t : t) : string option =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> None

(** Wake this session's blocked reader and stop further sends, from any
    thread.  [Unix.shutdown] (not [close]) is load-bearing: the reader
    thread is blocked inside [input_line] {e holding the channel lock},
    so closing the channel from another thread would deadlock, and
    closing the raw fd would not interrupt the read — shutdown makes
    the pending read return EOF, after which the reader unwinds and
    closes its own channel. *)
let interrupt (t : t) =
  Mutex.lock t.send_mu;
  t.alive <- false;
  Mutex.unlock t.send_mu;
  try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
  with Unix.Unix_error _ -> ()

(** Release the session; only the session's own reader thread may call
    this (see {!interrupt}).  Closing the in_channel closes the fd. *)
let close (t : t) =
  interrupt t;
  try close_in_noerr t.ic with _ -> ()
