(** The service wire protocol: newline-delimited JSON, one value per
    line, in both directions over a unix-domain stream socket.

    Requests (client → daemon) are objects dispatched on ["op"]:
    {v
    {"op":"submit","job":{"kind":"sweep",...},"priority":1,
     "budget":32,"watch":true}
    {"op":"cancel","id":"job-3"}
    {"op":"status"}
    {"op":"watch","id":"job-3"}
    {"op":"shutdown"}
    v}

    Events (daemon → client) are objects dispatched on ["ev"]:
    {v
    {"ev":"ack","id":"job-3"}
    {"ev":"error","msg":"..."}
    {"ev":"row","id":"job-3","data":"<one checkpoint-codec line>"}
    {"ev":"done","id":"job-3","summary":{...}}
    {"ev":"status","status":{...}}
    v}

    Row payloads are deliberately the {e exact} checkpoint-codec lines
    ({!Zkopt_harness.Checkpoint.encode_point} for sweep/profile cells,
    {!Zkopt_fuzz.Campaign.encode_row} for fuzz cases): what a client
    streams is byte-identical to what the daemon persists and to what
    the one-shot CLI writes, so equality checks across all three are
    string comparisons, never lossy re-encodings.

    Neither decoder raises: malformed lines come back as [Error] so a
    hostile or buggy peer cannot take the daemon down. *)

module Json = Zkopt_report.Json

type request =
  | Submit of {
      spec : Job.spec;
      priority : int;
      budget : int option;
      watch : bool;  (** stream this job's rows back on this connection *)
    }
  | Cancel of string
  | Status
  | Watch of string  (** subscribe to a job's row stream (with replay) *)
  | Shutdown  (** graceful drain: checkpoint, persist the queue, exit *)

type event =
  | Ack of { id : string }
  | Err of { msg : string }
  | Row of { id : string; data : string }
  | Done of { id : string; summary : Json.t }
  | Status_report of Json.t

(* ---- requests -------------------------------------------------------- *)

let encode_request (r : request) : string =
  Json.to_string
    (match r with
    | Submit { spec; priority; budget; watch } ->
      Json.Obj
        ([
           ("op", Json.Str "submit");
           ("job", Job.spec_to_json spec);
           ("priority", Json.Int priority);
         ]
        @ (match budget with
          | Some b -> [ ("budget", Json.Int b) ]
          | None -> [])
        @ [ ("watch", Json.Bool watch) ])
    | Cancel id -> Json.Obj [ ("op", Json.Str "cancel"); ("id", Json.Str id) ]
    | Status -> Json.Obj [ ("op", Json.Str "status") ]
    | Watch id -> Json.Obj [ ("op", Json.Str "watch"); ("id", Json.Str id) ]
    | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ])

let decode_request (line : string) : (request, string) result =
  match Json.of_string line with
  | Error e -> Error ("bad request: " ^ e)
  | Ok j -> (
    match Json.str_member "op" j with
    | Some "submit" -> (
      match Json.member "job" j with
      | None -> Error "submit without \"job\""
      | Some spec_j -> (
        match Job.spec_of_json spec_j with
        | Error e -> Error e
        | Ok spec ->
          Ok
            (Submit
               {
                 spec;
                 priority =
                   Option.value ~default:10 (Json.int_member "priority" j);
                 budget = Json.int_member "budget" j;
                 watch =
                   Option.value ~default:true (Json.bool_member "watch" j);
               })))
    | Some "cancel" -> (
      match Json.str_member "id" j with
      | Some id -> Ok (Cancel id)
      | None -> Error "cancel without \"id\"")
    | Some "status" -> Ok Status
    | Some "watch" -> (
      match Json.str_member "id" j with
      | Some id -> Ok (Watch id)
      | None -> Error "watch without \"id\"")
    | Some "shutdown" -> Ok Shutdown
    | Some op -> Error (Printf.sprintf "unknown op %S" op)
    | None -> Error "request has no \"op\"")

(* ---- events ---------------------------------------------------------- *)

let encode_event (e : event) : string =
  Json.to_string
    (match e with
    | Ack { id } -> Json.Obj [ ("ev", Json.Str "ack"); ("id", Json.Str id) ]
    | Err { msg } ->
      Json.Obj [ ("ev", Json.Str "error"); ("msg", Json.Str msg) ]
    | Row { id; data } ->
      Json.Obj
        [ ("ev", Json.Str "row"); ("id", Json.Str id); ("data", Json.Str data) ]
    | Done { id; summary } ->
      Json.Obj
        [ ("ev", Json.Str "done"); ("id", Json.Str id); ("summary", summary) ]
    | Status_report s ->
      Json.Obj [ ("ev", Json.Str "status"); ("status", s) ])

let decode_event (line : string) : (event, string) result =
  match Json.of_string line with
  | Error e -> Error ("bad event: " ^ e)
  | Ok j -> (
    let id () =
      match Json.str_member "id" j with
      | Some id -> Ok id
      | None -> Error "event without \"id\""
    in
    match Json.str_member "ev" j with
    | Some "ack" -> Result.map (fun id -> Ack { id }) (id ())
    | Some "error" -> (
      match Json.str_member "msg" j with
      | Some msg -> Ok (Err { msg })
      | None -> Error "error event without \"msg\"")
    | Some "row" -> (
      match (id (), Json.str_member "data" j) with
      | Ok id, Some data -> Ok (Row { id; data })
      | Error e, _ -> Error e
      | _, None -> Error "row event without \"data\"")
    | Some "done" ->
      Result.map
        (fun id ->
          Done
            {
              id;
              summary = Option.value ~default:Json.Null (Json.member "summary" j);
            })
        (id ())
    | Some "status" -> (
      match Json.member "status" j with
      | Some s -> Ok (Status_report s)
      | None -> Error "status event without \"status\"")
    | Some ev -> Error (Printf.sprintf "unknown event %S" ev)
    | None -> Error "event has no \"ev\"")
