(** The zkbench service daemon: a unix-domain-socket front end over the
    {!Scheduler}.

    One accept-loop thread hands each connection to a session thread
    that reads newline-delimited requests ({!Proto}), dispatches them
    into the shared scheduler, and dies quietly when its client does.
    Robustness posture:

    - [SIGPIPE] is ignored process-wide, so a client that hangs up
      mid-stream surfaces as [EPIPE] on its own session's writes (a
      clean per-client cancel), never as process death.
    - A disconnect cancels exactly the jobs that connection submitted
      with [watch = true] — fire-and-forget submissions keep running.
    - [SIGTERM]/[SIGINT] trigger a graceful drain: the running job
      stops at its next cell boundary with its checkpoint flushed and
      no terminal registry record, so the next daemon over the same
      state directory resumes it byte-identically.

    {!start}/{!stop} run the daemon on background threads for
    in-process tests; {!run} is the blocking CLI entry point. *)

module Json = Zkopt_report.Json

type t = {
  sched : Scheduler.t;
  sock_path : string;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable sessions : (string * Session.t) list;
  sess_mu : Mutex.t;
  shutdown_req : bool Atomic.t;  (** set by SIGTERM or a shutdown request *)
  log : string -> unit;
}

let register_session t (s : Session.t) =
  Mutex.lock t.sess_mu;
  t.sessions <- (s.Session.sid, s) :: t.sessions;
  Mutex.unlock t.sess_mu

let forget_session t (s : Session.t) =
  Mutex.lock t.sess_mu;
  t.sessions <-
    List.filter (fun (sid, _) -> not (String.equal sid s.Session.sid)) t.sessions;
  Mutex.unlock t.sess_mu

(* ---- request dispatch ------------------------------------------------ *)

let handle_request t (s : Session.t) (line : string) =
  match Proto.decode_request line with
  | Error msg -> ignore (Session.send s (Proto.Err { msg }))
  | Ok (Proto.Submit { spec; priority; budget; watch }) -> (
    match
      Scheduler.submit t.sched ~client:s.Session.sid ~priority ?budget spec
    with
    | Error msg -> ignore (Session.send s (Proto.Err { msg }))
    | Ok id ->
      ignore (Session.send s (Proto.Ack { id }));
      if watch then begin
        s.Session.watched <- id :: s.Session.watched;
        ignore
          (Scheduler.watch t.sched ~sid:s.Session.sid id (Session.send s))
      end)
  | Ok (Proto.Cancel id) ->
    if Scheduler.cancel t.sched id then
      ignore (Session.send s (Proto.Ack { id }))
    else
      ignore
        (Session.send s
           (Proto.Err { msg = Printf.sprintf "cannot cancel %S" id }))
  | Ok Proto.Status ->
    ignore
      (Session.send s (Proto.Status_report (Scheduler.status_json t.sched)))
  | Ok (Proto.Watch id) -> (
    match Scheduler.watch t.sched ~sid:s.Session.sid id (Session.send s) with
    | Ok () -> ()
    | Error msg -> ignore (Session.send s (Proto.Err { msg })))
  | Ok Proto.Shutdown ->
    ignore (Session.send s (Proto.Ack { id = "shutdown" }));
    Atomic.set t.shutdown_req true

let session_loop t (s : Session.t) =
  register_session t s;
  let rec loop () =
    match Session.recv_line s with
    | Some line ->
      handle_request t s line;
      if s.Session.alive && not (Atomic.get t.shutdown_req) then loop ()
    | None -> ()
  in
  loop ();
  (* the client went away: its watched jobs go too.  Not on daemon
     shutdown — sessions torn down by a drain must leave their jobs
     queued (no terminal record) so the restart resumes them. *)
  let cancel_jobs =
    if Atomic.get t.shutdown_req then [] else s.Session.watched
  in
  Scheduler.detach t.sched ~sid:s.Session.sid ~cancel_jobs;
  forget_session t s;
  Session.close s

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      let s = Session.create fd in
      ignore (Thread.create (session_loop t) s);
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* listening socket shut down: daemon is stopping *)
    | exception Unix.Unix_error _ ->
      if Atomic.get t.shutdown_req then () else loop ()
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

(** Bind, listen, reload the registry, and start the scheduler
    dispatcher and the accept loop on background threads.  [dir] is the
    daemon's state directory (registry, job checkpoints); the socket
    lives at [dir ^ "/zkbench.sock"] unless [sock] overrides it. *)
let start ?(jobs = 4) ?sock ?(log = ignore) ~dir () : t =
  (* a dead client must be an EPIPE on its session, not process death *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let sched = Scheduler.create ~dir ~jobs ~log () in
  let sock_path =
    match sock with Some p -> p | None -> Filename.concat dir "zkbench.sock"
  in
  if Sys.file_exists sock_path then Sys.remove sock_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sock_path);
  Unix.listen listen_fd 16;
  let t =
    {
      sched;
      sock_path;
      listen_fd;
      accept_thread = None;
      sessions = [];
      sess_mu = Mutex.create ();
      shutdown_req = Atomic.make false;
      log;
    }
  in
  Scheduler.start sched;
  t.accept_thread <- Some (Thread.create accept_loop t);
  log (Printf.sprintf "serve: listening on %s (state %s, jobs %d)" sock_path
         dir jobs);
  t

(** Stop the daemon.  With [drain] (the default) the running job stops
    at its next cell boundary with its checkpoint flushed and no
    terminal registry record — the graceful SIGTERM path; the next
    daemon over the same state directory resumes it.  [~drain:false]
    simulates an abrupt kill for restart tests: the job is still halted
    at a cell boundary (in-process we cannot kill a thread mid-write;
    restart tests shear the checkpoint tail on top to model a torn
    write), but nothing is announced to connected clients. *)
let stop ?(drain = true) (t : t) =
  Atomic.set t.shutdown_req true;
  (* shut the listening socket down first (no new clients mid-drain);
     shutdown — not just close — is what wakes a blocked accept *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove t.sock_path with Sys_error _ -> ());
  (* both paths halt the scheduler (the dispatcher is a thread of this
     process and must not outlive the daemon); the interrupted job gets
     no terminal record either way, which is the resume contract *)
  Scheduler.drain t.sched;
  (* wake blocked session readers; each reader unwinds, detaches its
     sinks, and closes its own channel (see Session.interrupt) *)
  Mutex.lock t.sess_mu;
  let sessions = List.map snd t.sessions in
  Mutex.unlock t.sess_mu;
  List.iter Session.interrupt sessions;
  if drain then t.log "serve: drained and stopped"

(** Blocking CLI entry point: start, then run until a shutdown request
    or SIGTERM/SIGINT, then drain.  Polls the shutdown flag (signal
    handlers only set an atomic; all real work happens here). *)
let run ?(jobs = 4) ?sock ?(log = ignore) ~dir () =
  let t = start ~jobs ?sock ~log ~dir () in
  let request_stop _ = Atomic.set t.shutdown_req true in
  let restore =
    List.filter_map
      (fun sg ->
        try Some (sg, Sys.signal sg (Sys.Signal_handle request_stop))
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigterm; Sys.sigint ]
  in
  while not (Atomic.get t.shutdown_req) do
    Thread.delay 0.1
  done;
  log "serve: shutdown requested, draining";
  stop t;
  List.iter (fun (sg, h) -> try Sys.set_signal sg h with _ -> ()) restore
