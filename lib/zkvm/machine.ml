(** The decoded-stream zkVM machine: the raw-speed interpreter core.

    {!Executor.run} historically replayed the boxed reference emulator
    ({!Zkopt_riscv.Emulator}) under accounting hooks: every instruction
    re-matched a variant with boxed [int32] operands, every memory access
    hashed into page [Hashtbl]s, and every observer was an indirect call.
    This module replaces that hot path while reproducing its accounting
    bit-for-bit:

    - the program is pre-decoded once ({!decode}) into flat [int] arrays —
      a dense opcode, three operand slots and a packed cost/kind word per
      instruction — so the step dispatch is a jump table over small ints;
    - registers are untagged native ints normalized to sign-extended
      32-bit form at every write ([(v lsl 31) asr 31]), addresses are
      unsigned ints; no [Int32] is allocated anywhere in the loop;
    - page residency is tracked by epoch-stamped two-level int tables
      (segment close is one epoch bump, not a [Hashtbl.reset]) behind
      one-page caches for code fetch and data access;
    - observation is a single closed {!sink} interface selected once at
      {!run} entry.  Without a sink the loop performs zero per-instruction
      indirect calls; with one, retires are delivered in batches and every
      non-retire event is ordered exactly as the reference executor
      ordered its attribution callbacks.

    Equivalence with the reference path ({!Executor.run_reference}) —
    exit value, retired count, cycle/paging/segment accounting, event
    totals, trap messages, and behavior under every injected {!fault} —
    is enforced by [test/test_machine.ml]. *)

open Zkopt_ir
open Zkopt_riscv

type fault =
  | No_fault
  | Silent_halt_on_boundary_jalr
      (** §4.2: a shard boundary on an indirect jump silently drops the
          rest of the execution; checksum diverges. *)
  | Dropped_page_out
      (** Accounting bug: every other dirtied page's write-back cost is
          dropped at segment close even though the page-out itself is
          still counted — paging cycles no longer reconcile with the
          page-event counts. *)
  | Truncated_final_segment
      (** The final segment's tail is dropped from the reported cycle
          totals while the per-segment trace keeps the full count — the
          totals no longer reconcile with the segment list (a bogus
          "speedup"). *)
  | Corrupt_exit_value
      (** The journaled exit value is corrupted on halt — a direct
          miscompile shape, caught by the checksum differential oracle. *)

type segment = {
  user_cycles : int;
  paging_cycles : int;
}

type result = {
  exit_value : int32;
  total_cycles : int;
  user_cycles : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  segments : segment list;        (* in execution order *)
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  precompile_calls : int;
  faulted : bool;                 (* the injected bug fired *)
}

(* ------------------------------------------------------------------ *)
(* Sink: the one observation interface                                 *)
(* ------------------------------------------------------------------ *)

(** A run of retired instructions.  [Batch] views the machine's internal
    buffers directly — valid only for the duration of the callback, so
    consumers must fold immediately and must not retain the arrays.
    [One] carries a single retire (the reference executor and the Valida
    frame machine emit these). *)
type retire_batch =
  | Batch of {
      base : int32;               (* address of isa.(0) *)
      isa : Isa.t array;          (* decoded image, instruction-indexed *)
      idxs : int array;           (* retired instruction indexes *)
      costs : int array;          (* cycle cost charged per retire *)
      n : int;                    (* live prefix length of idxs/costs *)
    }
  | One of { pc : int32; ins : Isa.t; cost : int }

(** Event sink.  The identities a healthy run preserves, per dimension:

    - sum of retire + [on_precompile] costs = [user_cycles]
    - sum of [on_page_in] + [on_page_out] costs = [paging_cycles]
    - the [on_segment] events replay the segment list exactly

    Page-ins are charged to the pc whose fetch/access first touched the
    page; page-outs to the pc that first dirtied the page in the segment;
    segment events to the pc retiring when the segment closed.
    [on_cpu_retire] is the CPU timing model's channel (float cost in
    model cycles); zkVM machines never call it. *)
type sink = {
  on_retires : retire_batch -> unit;
  on_precompile : pc:int32 -> name:string -> cost:int -> unit;
  on_page_in : pc:int32 -> cost:int -> unit;
  on_page_out : pc:int32 -> cost:int -> unit;
  on_segment : pc:int32 -> user:int -> paging:int -> unit;
  on_cpu_retire : pc:int32 -> Isa.t -> cost:float -> unit;
}

(** Build a sink, defaulting every channel to a no-op. *)
let sink ?(on_retires = fun _ -> ()) ?(on_precompile = fun ~pc:_ ~name:_ ~cost:_ -> ())
    ?(on_page_in = fun ~pc:_ ~cost:_ -> ()) ?(on_page_out = fun ~pc:_ ~cost:_ -> ())
    ?(on_segment = fun ~pc:_ ~user:_ ~paging:_ -> ())
    ?(on_cpu_retire = fun ~pc:_ _ ~cost:_ -> ()) () =
  { on_retires; on_precompile; on_page_in; on_page_out; on_segment;
    on_cpu_retire }

let retire1 ~pc ins ~cost = One { pc; ins; cost }

(** Fold [f] over every retire of a batch, in retirement order. *)
let iter_retires f = function
  | One { pc; ins; cost } -> f ~pc ins ~cost
  | Batch b ->
    for i = 0 to b.n - 1 do
      let idx = Array.unsafe_get b.idxs i in
      f
        ~pc:(Int32.add b.base (Int32.of_int (4 * idx)))
        (Array.unsafe_get b.isa idx)
        ~cost:(Array.unsafe_get b.costs i)
    done

(* ------------------------------------------------------------------ *)
(* Pre-decoded code                                                    *)
(* ------------------------------------------------------------------ *)

(* Dense opcode space.  ALU families keep their sub-op index so the
   inner dispatch is one subtraction; control/memory ops are singletons. *)
let op_base_rr = 0 (* .. 17: Op, rop_index *)
let op_base_ri = 18 (* .. 26: Opi, iop_index *)
let op_lui = 27
let op_auipc = 28
let op_jal = 29
let op_jalr = 30
let op_base_branch = 31 (* .. 36: Branch, bcond_index *)
let op_base_load = 37 (* .. 41: Load, lwidth_index *)
let op_base_store = 42 (* .. 44: Store, swidth_index *)
let op_ecall = 45

type code = {
  cfg : Config.t;
  prog : Asm.program;
  modul : Modul.t;
  n : int;
  ops : int array;                (* dense opcode *)
  x1 : int array;                 (* rd / rs1 / rs2-src, per family *)
  x2 : int array;                 (* rs1 / rs2, per family *)
  x3 : int array;                 (* imm / offset / rs2, per family *)
  costk : int array;              (* (instr_cost lsl 2) lor kind *)
  isa : Isa.t array;              (* the original decoded form (= prog.code) *)
  image : Bytes.t;                (* encoded code image, installed per run *)
  base : int;                     (* unsigned address of isa.(0) *)
  base32 : int32;
  entry : int;                    (* unsigned entry pc *)
  globals : (int32 * Modul.init) list;  (* resolved global images *)
  pre_cost : int array;
      (* precompile cycle price by syscall index; -1 = unpriced on this
         config (the price lookup is deferred to call time so the error
         is identical to the reference path's lazy [Invalid_argument]) *)
}

(* kind bits of costk: what the retire prologue must count *)
let k_load = 1
let k_store = 2
let k_branch = 3

let u32 = 0xFFFF_FFFF
let[@inline] sext32 v = (v lsl 31) asr 31

(** Pre-decode [cg]'s program for [cfg].  The decoded stream is
    config-specific only through the packed cost words; everything else
    is pure program structure. *)
let decode (cfg : Config.t) (cg : Codegen.t) (m : Modul.t) : code =
  if Sys.int_size < 63 then
    failwith "Machine: requires 63-bit native ints (64-bit platform)";
  let prog = cg.Codegen.program in
  let isa = prog.Asm.code in
  let n = Array.length isa in
  let ops = Array.make n 0
  and x1 = Array.make n 0
  and x2 = Array.make n 0
  and x3 = Array.make n 0
  and costk = Array.make n 0 in
  let image = Bytes.create (n * 4) in
  for i = 0 to n - 1 do
    let ins = isa.(i) in
    Bytes.set_int32_le image (i * 4) (Isa.encode ins);
    let kind =
      match ins with
      | Isa.Load _ -> k_load
      | Store _ -> k_store
      | Branch _ | Jal _ | Jalr _ -> k_branch
      | _ -> 0
    in
    costk.(i) <- (Config.instr_cost cfg ins lsl 2) lor kind;
    (match ins with
    | Isa.Op (op, rd, rs1, rs2) ->
      ops.(i) <- op_base_rr + Isa.rop_index op;
      x1.(i) <- rd;
      x2.(i) <- rs1;
      x3.(i) <- rs2
    | Opi (op, rd, rs1, imm) ->
      ops.(i) <- op_base_ri + Isa.iop_index op;
      x1.(i) <- rd;
      x2.(i) <- rs1;
      x3.(i) <- imm
    | Lui (rd, imm) ->
      ops.(i) <- op_lui;
      x1.(i) <- rd;
      x3.(i) <- Int32.to_int imm
    | Auipc (rd, imm) ->
      ops.(i) <- op_auipc;
      x1.(i) <- rd;
      x3.(i) <- Int32.to_int imm
    | Jal (rd, off) ->
      ops.(i) <- op_jal;
      x1.(i) <- rd;
      x3.(i) <- off
    | Jalr (rd, rs1, imm) ->
      ops.(i) <- op_jalr;
      x1.(i) <- rd;
      x2.(i) <- rs1;
      x3.(i) <- imm
    | Branch (c, rs1, rs2, off) ->
      ops.(i) <- op_base_branch + Isa.bcond_index c;
      x1.(i) <- rs1;
      x2.(i) <- rs2;
      x3.(i) <- off
    | Load (w, rd, rs1, imm) ->
      ops.(i) <- op_base_load + Isa.lwidth_index w;
      x1.(i) <- rd;
      x2.(i) <- rs1;
      x3.(i) <- imm
    | Store (w, rs2, rs1, imm) ->
      ops.(i) <- op_base_store + Isa.swidth_index w;
      x1.(i) <- rs2;
      x2.(i) <- rs1;
      x3.(i) <- imm
    | Ecall -> ops.(i) <- op_ecall)
  done;
  let entry =
    match Hashtbl.find_opt prog.Asm.symbols "main" with
    | Some a -> Int32.to_int a land u32
    | None -> raise (Emulator.Trap "no main symbol")
  in
  let globals =
    List.filter_map
      (fun (g : Modul.global) ->
        match Hashtbl.find_opt prog.Asm.symbols g.gname with
        | Some addr -> Some (addr, g.init)
        | None -> None)
      m.Modul.globals
  in
  let pre_cost =
    Array.map
      (fun (name, _arity) ->
        match List.assoc_opt name cfg.Config.precompile_costs with
        | Some c -> c
        | None -> -1)
      Emulator.precompile_signatures
  in
  { cfg; prog; modul = m; n; ops; x1; x2; x3; costk; isa; image;
    base = Int32.to_int prog.Asm.base land u32; base32 = prog.Asm.base;
    entry; globals; pre_cost }

(* ------------------------------------------------------------------ *)
(* Run state                                                           *)
(* ------------------------------------------------------------------ *)

(* Epoch-stamped page tables: pages are numbered addr / page_bytes and
   stamped through a two-level int directory (rows of 1024, allocated on
   first use).  "Touched / dirtied this segment" is "stamp = current
   epoch"; closing a segment bumps the epoch, resetting every page in
   O(1). *)
let prow_bits = 10
let prow_size = 1 lsl prow_bits
let no_prow : int array = [||]

let buf_cap = 4096

type st = {
  c : code;
  mem : Memory.t;
  regs : int array;               (* sign-extended native ints; x0 pinned 0 *)
  mutable pc : int;               (* unsigned *)
  mutable halted : bool;
  mutable exit_value : int;       (* sign-extended *)
  mutable retired : int;
  (* segment accumulators *)
  mutable user : int;
  mutable paging : int;
  mutable total_user : int;
  mutable total_paging : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable segs : segment list;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable precompiles : int;
  mutable faulted : bool;
  mutable pending : bool;         (* segment boundary reached mid-step *)
  mutable silent : bool;          (* the silent-halt fault fired *)
  mutable cur_pc : int;           (* pc of the retiring instruction *)
  (* paging *)
  page_bytes : int;
  page_shift : int;               (* lsr shift when page_bytes is 2^k, else -1 *)
  in_cost : int;
  out_cost : int;
  seg_limit : int;
  tep : int array array;          (* touched-epoch directory *)
  dep : int array array;          (* dirtied-epoch directory *)
  mutable epoch : int;
  mutable dirty_pcs : int array;  (* first-dirtying pc, segment insertion order *)
  mutable dirty_n : int;
  (* one-page caches, invalidated at segment close *)
  mutable code_lo : int;          (* fetch fast path: pc in [code_lo, code_hi) *)
  mutable code_hi : int;
  mutable data_page : int;
  mutable data_dirty : bool;      (* data_page known dirtied this segment *)
  (* sink retire buffer *)
  buf_idx : int array;
  buf_cost : int array;
  mutable buf_n : int;
}

let[@inline] page_of st a =
  if st.page_shift >= 0 then a lsr st.page_shift else a / st.page_bytes

let[@inline] rget st r = Array.unsafe_get st.regs r

let[@inline] rset st r v =
  if r <> 0 then Array.unsafe_set st.regs r v

let flush st (s : sink) =
  if st.buf_n > 0 then begin
    let n = st.buf_n in
    st.buf_n <- 0;
    s.on_retires
      (Batch { base = st.c.base32; isa = st.c.isa; idxs = st.buf_idx;
               costs = st.buf_cost; n })
  end

let prow dir hi =
  let r = Array.unsafe_get dir hi in
  if r != no_prow then r
  else begin
    let r = Array.make prow_size 0 in
    Array.unsafe_set dir hi r;
    r
  end

(* First-touch / first-dirty bookkeeping for [page]; out of line — the
   callers' cache checks keep this off the per-access path. *)
let touch_page st sink ~write page =
  let hi = page lsr prow_bits and lo = page land (prow_size - 1) in
  let tr = prow st.tep hi in
  if Array.unsafe_get tr lo <> st.epoch then begin
    Array.unsafe_set tr lo st.epoch;
    st.paging <- st.paging + st.in_cost;
    st.page_ins <- st.page_ins + 1;
    match sink with
    | Some s ->
      flush st s;
      s.on_page_in ~pc:(Int32.of_int st.cur_pc) ~cost:st.in_cost
    | None -> ()
  end;
  if write then begin
    let dr = prow st.dep hi in
    if Array.unsafe_get dr lo <> st.epoch then begin
      Array.unsafe_set dr lo st.epoch;
      if st.dirty_n = Array.length st.dirty_pcs then begin
        let bigger = Array.make (2 * st.dirty_n) 0 in
        Array.blit st.dirty_pcs 0 bigger 0 st.dirty_n;
        st.dirty_pcs <- bigger
      end;
      st.dirty_pcs.(st.dirty_n) <- st.cur_pc;
      st.dirty_n <- st.dirty_n + 1
    end
  end

(* Data-access touch with a one-page cache: loops that stay on one page
   (almost all of them) resolve in a compare and a branch. *)
let[@inline] touch_data st sink ~write a =
  let p = page_of st a in
  if p = st.data_page then begin
    if write && not st.data_dirty then begin
      touch_page st sink ~write:true p;
      st.data_dirty <- true
    end
  end
  else begin
    touch_page st sink ~write p;
    st.data_page <- p;
    st.data_dirty <- write
  end

let close_segment ~fault ~final st sink =
  (match sink with Some s -> flush st s | None -> ());
  let outs = st.dirty_n in
  let charged =
    match fault with
    | Dropped_page_out ->
      let charged = (outs + 1) / 2 in
      if charged < outs then st.faulted <- true;
      charged
    | _ -> outs
  in
  st.paging <- st.paging + (charged * st.out_cost);
  (match sink with
  | Some s ->
    (* charge write-backs to the first-dirtying pcs; under the injected
       accounting fault only the actually-charged count is attributed, so
       the attribution stays conserved against the (buggy) totals *)
    for i = 0 to charged - 1 do
      s.on_page_out ~pc:(Int32.of_int st.dirty_pcs.(i)) ~cost:st.out_cost
    done
  | None -> ());
  st.page_outs <- st.page_outs + outs;
  (match sink with
  | Some s ->
    s.on_segment ~pc:(Int32.of_int st.cur_pc) ~user:st.user ~paging:st.paging
  | None -> ());
  st.segs <- { user_cycles = st.user; paging_cycles = st.paging } :: st.segs;
  (match fault with
  | Truncated_final_segment when final && st.user > 1 ->
    st.faulted <- true;
    st.total_user <- st.total_user + (st.user / 2)
  | _ -> st.total_user <- st.total_user + st.user);
  st.total_paging <- st.total_paging + st.paging;
  st.user <- 0;
  st.paging <- 0;
  st.epoch <- st.epoch + 1;
  st.dirty_n <- 0;
  st.code_lo <- 1;
  st.code_hi <- 0;
  st.data_page <- -1;
  st.data_dirty <- false

(* ------------------------------------------------------------------ *)
(* The step                                                            *)
(* ------------------------------------------------------------------ *)

let pc_out_of_range pc =
  raise
    (Emulator.Trap
       (Printf.sprintf "pc out of range: 0x%08lx" (Int32.of_int pc)))

(* Extern precompiles speak the int32 memory interface; accesses touch
   pages for paging costs but do not count as load/store instructions. *)
let extern_mem st sink =
  {
    Extern.load32 =
      (fun a ->
        touch_data st sink ~write:false (Int32.to_int a land u32);
        Memory.load32 st.mem a);
    store32 =
      (fun a v ->
        touch_data st sink ~write:true (Int32.to_int a land u32);
        Memory.store32 st.mem a v);
  }

let do_ecall st sink =
  let id = rget st Isa.a7 in
  if id = Emulator.syscall_halt then begin
    st.halted <- true;
    st.exit_value <- rget st Isa.a0
  end
  else begin
    let i = id - Emulator.syscall_precompile_base in
    if i < 0 || i >= Array.length Emulator.precompile_signatures then
      raise (Emulator.Trap (Printf.sprintf "unknown syscall %d" id));
    let name, arity = Array.unsafe_get Emulator.precompile_signatures i in
    st.precompiles <- st.precompiles + 1;
    let cost =
      let c = st.c.pre_cost.(i) in
      if c >= 0 then c else Config.precompile_cost st.c.cfg name
    in
    st.user <- st.user + cost;
    (match sink with
    | Some s ->
      flush st s;
      s.on_precompile ~pc:(Int32.of_int st.cur_pc) ~name ~cost
    | None -> ());
    let args =
      Array.init arity (fun k -> Int64.of_int (rget st (Isa.a0 + k) land u32))
    in
    match Extern.run name (extern_mem st sink) args with
    | Some v -> rset st Isa.a0 (sext32 (Int64.to_int v))
    | None -> ()
  end

let step st sink fault_silent =
  let c = st.c in
  let pc = st.pc in
  let off = sext32 (pc - c.base) in
  let idx = off / 4 in
  if idx < 0 || idx >= c.n then pc_out_of_range pc;
  st.cur_pc <- pc;
  (* fetch touches the code page (one-page cache fast path) *)
  if pc < st.code_lo || pc >= st.code_hi then begin
    let p = page_of st pc in
    touch_page st sink ~write:false p;
    st.code_lo <- p * st.page_bytes;
    st.code_hi <- st.code_lo + st.page_bytes
  end;
  let ck = Array.unsafe_get c.costk idx in
  let cost = ck lsr 2 in
  (match sink with
  | Some s ->
    if st.buf_n = buf_cap then flush st s;
    Array.unsafe_set st.buf_idx st.buf_n idx;
    Array.unsafe_set st.buf_cost st.buf_n cost;
    st.buf_n <- st.buf_n + 1
  | None -> ());
  st.retired <- st.retired + 1;
  st.user <- st.user + cost;
  let kind = ck land 3 in
  if kind <> 0 then
    if kind = k_load then st.loads <- st.loads + 1
    else if kind = k_store then st.stores <- st.stores + 1
    else st.branches <- st.branches + 1;
  if st.user >= st.seg_limit then begin
    st.pending <- true;
    if fault_silent && Array.unsafe_get c.ops idx = op_jalr then begin
      (* the shard boundary landed on an indirect jump (a function
         return): the buggy executor drops the rest of the execution on
         the floor yet still emits a provable, verifying trace *)
      st.faulted <- true;
      st.silent <- true
    end
  end;
  let op = Array.unsafe_get c.ops idx in
  let next = pc + 4 in
  if op < op_base_ri then begin
    (* register-register ALU *)
    let rd = Array.unsafe_get c.x1 idx in
    let a = rget st (Array.unsafe_get c.x2 idx) in
    let b = rget st (Array.unsafe_get c.x3 idx) in
    let v =
      match op with
      | 0 (* ADD *) -> sext32 (a + b)
      | 1 (* SUB *) -> sext32 (a - b)
      | 2 (* SLL *) -> sext32 (a lsl (b land 31))
      | 3 (* SLT *) -> if a < b then 1 else 0
      | 4 (* SLTU *) -> if a land u32 < b land u32 then 1 else 0
      | 5 (* XOR *) -> a lxor b
      | 6 (* SRL *) -> sext32 ((a land u32) lsr (b land 31))
      | 7 (* SRA *) -> a asr (b land 31)
      | 8 (* OR *) -> a lor b
      | 9 (* AND *) -> a land b
      | 10 (* MUL *) -> sext32 (a * b)
      | 11 (* MULH *) ->
        Int64.to_int
          (Int64.shift_right (Int64.mul (Int64.of_int a) (Int64.of_int b)) 32)
      | 12 (* MULHSU *) ->
        Int64.to_int
          (Int64.shift_right
             (Int64.mul (Int64.of_int a) (Int64.of_int (b land u32)))
             32)
      | 13 (* MULHU *) ->
        sext32
          (Int64.to_int
             (Int64.shift_right_logical
                (Int64.mul (Int64.of_int (a land u32)) (Int64.of_int (b land u32)))
                32))
      | 14 (* DIV *) ->
        if b = 0 then -1
        else if a = -0x8000_0000 && b = -1 then -0x8000_0000
        else a / b
      | 15 (* DIVU *) ->
        if b = 0 then -1 else sext32 ((a land u32) / (b land u32))
      | 16 (* REM *) ->
        if b = 0 then a
        else if a = -0x8000_0000 && b = -1 then 0
        else a mod b
      | _ (* REMU *) ->
        if b = 0 then a else sext32 ((a land u32) mod (b land u32))
    in
    rset st rd v;
    st.pc <- next
  end
  else if op < op_lui then begin
    (* register-immediate ALU; imm is pre-sign-extended at decode *)
    let rd = Array.unsafe_get c.x1 idx in
    let a = rget st (Array.unsafe_get c.x2 idx) in
    let imm = Array.unsafe_get c.x3 idx in
    let v =
      match op - op_base_ri with
      | 0 (* ADDI *) -> sext32 (a + imm)
      | 1 (* SLTI *) -> if a < imm then 1 else 0
      | 2 (* SLTIU *) -> if a land u32 < imm land u32 then 1 else 0
      | 3 (* XORI *) -> a lxor imm
      | 4 (* ORI *) -> a lor imm
      | 5 (* ANDI *) -> a land imm
      | 6 (* SLLI *) -> sext32 (a lsl (imm land 31))
      | 7 (* SRLI *) -> sext32 ((a land u32) lsr (imm land 31))
      | _ (* SRAI *) -> a asr (imm land 31)
    in
    rset st rd v;
    st.pc <- next
  end
  else
    match op with
    | 27 (* Lui *) ->
      rset st (Array.unsafe_get c.x1 idx) (Array.unsafe_get c.x3 idx);
      st.pc <- next
    | 28 (* Auipc *) ->
      rset st (Array.unsafe_get c.x1 idx)
        (sext32 (pc + Array.unsafe_get c.x3 idx));
      st.pc <- next
    | 29 (* Jal *) ->
      rset st (Array.unsafe_get c.x1 idx) (sext32 next);
      st.pc <- (pc + Array.unsafe_get c.x3 idx) land u32
    | 30 (* Jalr *) ->
      let target =
        (rget st (Array.unsafe_get c.x2 idx) + Array.unsafe_get c.x3 idx)
        land 0xFFFF_FFFE
      in
      rset st (Array.unsafe_get c.x1 idx) (sext32 next);
      if target = 0 then begin
        (* return past main: halt with a0; pc deliberately unchanged *)
        st.halted <- true;
        st.exit_value <- rget st Isa.a0
      end
      else st.pc <- target
    | 31 | 32 | 33 | 34 | 35 | 36 ->
      let a = rget st (Array.unsafe_get c.x1 idx) in
      let b = rget st (Array.unsafe_get c.x2 idx) in
      let taken =
        match op - op_base_branch with
        | 0 (* BEQ *) -> a = b
        | 1 (* BNE *) -> a <> b
        | 2 (* BLT *) -> a < b
        | 3 (* BGE *) -> a >= b
        | 4 (* BLTU *) -> a land u32 < b land u32
        | _ (* BGEU *) -> a land u32 >= b land u32
      in
      st.pc <-
        (if taken then (pc + Array.unsafe_get c.x3 idx) land u32 else next)
    | 37 | 38 | 39 | 40 | 41 ->
      let addr =
        (rget st (Array.unsafe_get c.x2 idx) + Array.unsafe_get c.x3 idx)
        land u32
      in
      (* paging is charged to the page of [addr] even for multi-byte
         accesses, exactly as the reference executor's hook did *)
      touch_data st sink ~write:false addr;
      let v =
        match op - op_base_load with
        | 0 (* LB *) -> (Memory.get8 st.mem addr lxor 0x80) - 0x80
        | 1 (* LH *) ->
          let lo = Memory.get8 st.mem addr in
          let hi = Memory.get8 st.mem ((addr + 1) land u32) in
          (((hi lsl 8) lor lo) lxor 0x8000) - 0x8000
        | 2 (* LW *) -> Memory.get32s st.mem addr
        | 3 (* LBU *) -> Memory.get8 st.mem addr
        | _ (* LHU *) ->
          let lo = Memory.get8 st.mem addr in
          let hi = Memory.get8 st.mem ((addr + 1) land u32) in
          (hi lsl 8) lor lo
      in
      rset st (Array.unsafe_get c.x1 idx) v;
      st.pc <- next
    | 42 | 43 | 44 ->
      let addr =
        (rget st (Array.unsafe_get c.x2 idx) + Array.unsafe_get c.x3 idx)
        land u32
      in
      touch_data st sink ~write:true addr;
      let v = rget st (Array.unsafe_get c.x1 idx) in
      (match op - op_base_store with
      | 0 (* SB *) -> Memory.set8 st.mem addr v
      | 1 (* SH *) ->
        Memory.set8 st.mem addr v;
        Memory.set8 st.mem ((addr + 1) land u32) (v lsr 8)
      | _ (* SW *) -> Memory.set32 st.mem addr v);
      st.pc <- next
    | _ (* 45 Ecall *) ->
      do_ecall st sink;
      st.pc <- next

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)
(* ------------------------------------------------------------------ *)

let fresh_state (c : code) : st =
  let mem = Memory.create () in
  Memory.store_image mem c.base c.image;
  List.iter (fun (addr, init) -> Memory.init_global mem addr init) c.globals;
  let regs = Array.make 32 0 in
  regs.(Isa.sp) <- Int32.to_int Zkopt_ir.Layout.stack_top;
  let page_bytes = c.cfg.Config.page_bytes in
  let page_shift =
    if page_bytes > 0 && page_bytes land (page_bytes - 1) = 0 then begin
      let s = ref 0 in
      while 1 lsl !s < page_bytes do incr s done;
      !s
    end
    else -1
  in
  let top = ((u32 / page_bytes) + 1 + (prow_size - 1)) / prow_size in
  {
    c; mem; regs; pc = c.entry; halted = false; exit_value = 0; retired = 0;
    user = 0; paging = 0; total_user = 0; total_paging = 0;
    page_ins = 0; page_outs = 0; segs = []; loads = 0; stores = 0;
    branches = 0; precompiles = 0; faulted = false;
    pending = false; silent = false; cur_pc = 0;
    page_bytes; page_shift;
    in_cost = c.cfg.Config.page_in_cost;
    out_cost = c.cfg.Config.page_out_cost;
    seg_limit = c.cfg.Config.segment_limit;
    tep = Array.make top no_prow; dep = Array.make top no_prow; epoch = 1;
    dirty_pcs = Array.make 256 0; dirty_n = 0;
    code_lo = 1; code_hi = 0; data_page = -1; data_dirty = false;
    buf_idx = Array.make buf_cap 0; buf_cost = Array.make buf_cap 0;
    buf_n = 0;
  }

let exec_loop st sink fault fuel =
  let fault_silent = fault = Silent_halt_on_boundary_jalr in
  let budget = ref fuel in
  while (not st.halted) && not st.silent do
    if !budget <= 0 then raise (Emulator.Out_of_fuel fuel);
    decr budget;
    step st sink fault_silent;
    if st.pending && not st.silent then begin
      st.pending <- false;
      close_segment ~fault ~final:false st sink
    end
  done;
  close_segment ~fault ~final:true st sink

(** Execute pre-decoded [c].  The sink is selected here, once: without
    one the loop makes zero per-instruction indirect calls; with one,
    retires arrive batched and every other event is delivered in the
    reference executor's order. *)
let run ?(fault = No_fault) ?(fuel = 500_000_000) ?sink (c : code) : result =
  let st = fresh_state c in
  (match sink with
  | None -> exec_loop st None fault fuel
  | Some s -> (
    (* deliver buffered retires even when the guest traps or runs out of
       fuel: the reference path reported events eagerly, so a consumer
       observing a partial run must still see every retired instruction *)
    try exec_loop st sink fault fuel
    with e ->
      flush st s;
      raise e));
  let exit_value =
    match fault with
    | Corrupt_exit_value ->
      st.faulted <- true;
      Int32.logxor (Int32.of_int st.exit_value) 0x5A5A5A5Al
    | _ -> Int32.of_int st.exit_value
  in
  {
    exit_value;
    total_cycles = st.total_user + st.total_paging;
    user_cycles = st.total_user;
    paging_cycles = st.total_paging;
    page_ins = st.page_ins;
    page_outs = st.page_outs;
    segments = List.rev st.segs;
    retired = st.retired;
    loads = st.loads;
    stores = st.stores;
    branches = st.branches;
    precompile_calls = st.precompiles;
    faulted = st.faulted;
  }
