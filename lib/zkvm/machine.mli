(** The decoded-stream zkVM machine: the raw-speed interpreter core and
    the closed event interface every measurement path observes through.

    A guest program is pre-decoded once ({!decode}) into a flat
    instruction stream (dense opcodes, operand slots and packed cost
    words in [int] arrays), then executed ({!run}) with untagged
    native-int registers, unsigned-int addressing and epoch-stamped page
    residency — no [Int32] allocation and no hashing anywhere in the hot
    loop.  Accounting is bit-for-bit identical to the reference path
    ({!Executor.run_reference}); [test/test_machine.ml] enforces the
    equivalence, including under every injected {!fault}. *)

open Zkopt_ir
open Zkopt_riscv

type fault =
  | No_fault
  | Silent_halt_on_boundary_jalr
      (** §4.2: a shard boundary on an indirect jump silently drops the
          rest of the execution; checksum diverges. *)
  | Dropped_page_out
      (** Accounting bug: every other dirtied page's write-back cost is
          dropped at segment close even though the page-out itself is
          still counted. *)
  | Truncated_final_segment
      (** The final segment's tail is dropped from the reported cycle
          totals while the per-segment trace keeps the full count. *)
  | Corrupt_exit_value
      (** The journaled exit value is corrupted on halt. *)

type segment = {
  user_cycles : int;
  paging_cycles : int;
}

type result = {
  exit_value : int32;
  total_cycles : int;
  user_cycles : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  segments : segment list;        (* in execution order *)
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  precompile_calls : int;
  faulted : bool;                 (* the injected bug fired *)
}

(** {1 The sink interface}

    One closed observation surface replaces the old trio of emulator
    hooks, [Executor.attr] records and CPU-model callbacks.  A sink is
    selected once at run entry; with none installed the machine's loop
    performs zero per-instruction indirect calls. *)

(** A run of retired instructions.  [Batch] views the machine's internal
    buffers directly — valid only for the duration of the callback;
    consumers must fold immediately (see {!iter_retires}) and must not
    retain the arrays.  [One] carries a single retire (the reference
    executor and the Valida frame machine emit these). *)
type retire_batch =
  | Batch of {
      base : int32;               (* address of isa.(0) *)
      isa : Isa.t array;          (* decoded image, instruction-indexed *)
      idxs : int array;           (* retired instruction indexes *)
      costs : int array;          (* cycle cost charged per retire *)
      n : int;                    (* live prefix length of idxs/costs *)
    }
  | One of { pc : int32; ins : Isa.t; cost : int }

(** Event sink.  The identities a healthy run preserves, per dimension:

    - sum of retire + [on_precompile] costs = [user_cycles]
    - sum of [on_page_in] + [on_page_out] costs = [paging_cycles]
    - the [on_segment] events replay the segment list exactly

    Page-ins are charged to the pc whose fetch/access first touched the
    page; page-outs to the pc that first dirtied the page in the segment;
    segment events to the pc retiring when the segment closed.
    [on_cpu_retire] is the CPU timing model's channel (float cost in
    model cycles); zkVM machines never call it. *)
type sink = {
  on_retires : retire_batch -> unit;
  on_precompile : pc:int32 -> name:string -> cost:int -> unit;
  on_page_in : pc:int32 -> cost:int -> unit;
  on_page_out : pc:int32 -> cost:int -> unit;
  on_segment : pc:int32 -> user:int -> paging:int -> unit;
  on_cpu_retire : pc:int32 -> Isa.t -> cost:float -> unit;
}

(** Build a sink; every omitted channel is a no-op. *)
val sink :
  ?on_retires:(retire_batch -> unit) ->
  ?on_precompile:(pc:int32 -> name:string -> cost:int -> unit) ->
  ?on_page_in:(pc:int32 -> cost:int -> unit) ->
  ?on_page_out:(pc:int32 -> cost:int -> unit) ->
  ?on_segment:(pc:int32 -> user:int -> paging:int -> unit) ->
  ?on_cpu_retire:(pc:int32 -> Isa.t -> cost:float -> unit) ->
  unit ->
  sink

(** Wrap a single retire as a batch. *)
val retire1 : pc:int32 -> Isa.t -> cost:int -> retire_batch

(** Fold over every retire of a batch, in retirement order. *)
val iter_retires :
  (pc:int32 -> Isa.t -> cost:int -> unit) -> retire_batch -> unit

(** {1 Decode and run} *)

(** A program pre-decoded for one {!Config.t} (the config enters only
    through the packed per-instruction cost words). *)
type code

(** Pre-decode [cg]'s assembled program.  Raises
    [Zkopt_riscv.Emulator.Trap] when the program has no [main]. *)
val decode : Config.t -> Codegen.t -> Modul.t -> code

(** Execute pre-decoded code on a fresh machine.  Accounting, trap
    messages and fault behavior are bit-for-bit those of
    {!Executor.run_reference}; a sink observes them without perturbing
    them. *)
val run : ?fault:fault -> ?fuel:int -> ?sink:sink -> code -> result
