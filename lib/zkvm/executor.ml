(** The zkVM executor: replays a guest binary while accounting cycles,
    paging events and segmentation under a {!Config.t}.

    Paging model (RISC Zero-style, parameterized): guest memory is split
    into [page_bytes] pages.  Within a segment, the first touch of a page
    charges [page_in_cost]; at segment close, every dirtied page charges
    [page_out_cost] and the touched-set resets (the next segment must
    page everything in again).  Instruction fetch touches the code page.

    {!run} executes on the decoded-stream machine ({!Machine}); the
    historical implementation — the boxed reference emulator replayed
    under accounting hooks — survives verbatim as {!run_reference}, the
    semantics oracle the machine is differentially tested against.

    The optional [fault] injects one of a family of executor soundness /
    accounting bugs (see {!Machine.fault}).
    [Silent_halt_on_boundary_jalr] is the silent-halt soundness bug the
    paper found in SP1 (§4.2): when a segment boundary lands exactly on
    an indirect jump, the executor stops mid-run but still reports
    success — the differential oracle in
    [examples/differential_oracle.ml] and the [sp1bug] bench catch it.
    The other faults model the same *class* of bug (a wrong-but-verifying
    trace) and are caught by the harness's accounting and checksum
    oracles ([lib/harness]). *)

open Zkopt_ir
open Zkopt_riscv

type fault = Machine.fault =
  | No_fault
  | Silent_halt_on_boundary_jalr
  | Dropped_page_out
  | Truncated_final_segment
  | Corrupt_exit_value

type segment = Machine.segment = {
  user_cycles : int;
  paging_cycles : int;
}

type result = Machine.result = {
  exit_value : int32;
  total_cycles : int;
  user_cycles : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  segments : segment list;
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  precompile_calls : int;
  faulted : bool;
}

(** Execute module [m] (already compiled to [cg]) under configuration
    [cfg] on the decoded-stream machine.  [sink] optionally observes
    every accounted event (see {!Machine.sink}); without it the machine
    runs its indirect-call-free loop. *)
let run ?fault ?fuel ?sink (cfg : Config.t) (cg : Codegen.t) (m : Modul.t) :
    result =
  Machine.run ?fault ?fuel ?sink (Machine.decode cfg cg m)

(* ------------------------------------------------------------------ *)
(* Reference path                                                      *)
(* ------------------------------------------------------------------ *)

type state = {
  cfg : Config.t;
  mutable user : int;             (* user cycles, current segment *)
  mutable paging : int;           (* paging cycles, current segment *)
  mutable total_user : int;
  mutable total_paging : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable segs : segment list;
  touched : (int, unit) Hashtbl.t;
  dirty : (int, int32) Hashtbl.t;   (* page -> pc that first dirtied it *)
  mutable cur_pc : int32;           (* pc of the currently retiring instr *)
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable precompiles : int;
  mutable faulted : bool;
}

(* the no-sink fast path: the hot-loop body the executor always ran
   (the 0l dirty marker is a static constant — no per-write allocation) *)
let touch st ~write addr =
  let page = Int32.to_int addr land 0xFFFF_FFFF / st.cfg.Config.page_bytes in
  if not (Hashtbl.mem st.touched page) then begin
    Hashtbl.replace st.touched page ();
    st.paging <- st.paging + st.cfg.Config.page_in_cost;
    st.page_ins <- st.page_ins + 1
  end;
  if write && not (Hashtbl.mem st.dirty page) then
    Hashtbl.replace st.dirty page 0l

let touch_attr (s : Machine.sink) st ~write addr =
  let page = Int32.to_int addr land 0xFFFF_FFFF / st.cfg.Config.page_bytes in
  if not (Hashtbl.mem st.touched page) then begin
    Hashtbl.replace st.touched page ();
    st.paging <- st.paging + st.cfg.Config.page_in_cost;
    st.page_ins <- st.page_ins + 1;
    s.Machine.on_page_in ~pc:st.cur_pc ~cost:st.cfg.Config.page_in_cost
  end;
  if write && not (Hashtbl.mem st.dirty page) then
    Hashtbl.replace st.dirty page st.cur_pc

let close_segment ?(fault = No_fault) ?(final = false) ?sink st =
  let outs = Hashtbl.length st.dirty in
  let out_cost = st.cfg.Config.page_out_cost in
  let charged =
    match fault with
    | Dropped_page_out ->
      let charged = (outs + 1) / 2 in
      if charged < outs then st.faulted <- true;
      charged
    | _ -> outs
  in
  st.paging <- st.paging + (charged * out_cost);
  (match sink with
  | Some (s : Machine.sink) ->
    (* charge write-backs to the first-dirtying pcs; under the injected
       accounting fault only the actually-charged count is attributed, so
       the attribution stays conserved against the (buggy) totals *)
    let remaining = ref charged in
    Hashtbl.iter
      (fun _page pc ->
        if !remaining > 0 then begin
          decr remaining;
          s.Machine.on_page_out ~pc ~cost:out_cost
        end)
      st.dirty
  | None -> ());
  st.page_outs <- st.page_outs + outs;
  (match sink with
  | Some (s : Machine.sink) ->
    s.Machine.on_segment ~pc:st.cur_pc ~user:st.user ~paging:st.paging
  | None -> ());
  st.segs <- { user_cycles = st.user; paging_cycles = st.paging } :: st.segs;
  (match fault with
  | Truncated_final_segment when final && st.user > 1 ->
    st.faulted <- true;
    st.total_user <- st.total_user + (st.user / 2)
  | _ -> st.total_user <- st.total_user + st.user);
  st.total_paging <- st.total_paging + st.paging;
  st.user <- 0;
  st.paging <- 0;
  Hashtbl.reset st.touched;
  Hashtbl.reset st.dirty

(** The historical executor: the boxed reference emulator
    ({!Zkopt_riscv.Emulator}) replayed under accounting hooks, with page
    residency in [Hashtbl]s.  Kept verbatim as the oracle the machine
    path is differentially tested against ([test/test_machine.ml]); slow
    but independently trustworthy. *)
let run_reference ?(fault = No_fault) ?(fuel = 500_000_000) ?sink
    (cfg : Config.t) (cg : Codegen.t) (m : Modul.t) : result =
  let st =
    {
      cfg;
      user = 0;
      paging = 0;
      total_user = 0;
      total_paging = 0;
      page_ins = 0;
      page_outs = 0;
      segs = [];
      touched = Hashtbl.create 64;
      dirty = Hashtbl.create 64;
      cur_pc = 0l;
      loads = 0;
      stores = 0;
      branches = 0;
      precompiles = 0;
      faulted = false;
    }
  in
  let hooks = Emulator.no_hooks () in
  let boundary_pending = ref false in
  let silent_halt = ref false in
  let boundary ins =
    if st.user >= cfg.Config.segment_limit then begin
      boundary_pending := true;
      match (fault, ins) with
      | Silent_halt_on_boundary_jalr, Isa.Jalr _ ->
        (* the shard boundary landed on an indirect jump (a function
           return): the buggy executor drops the rest of the execution
           on the floor yet still emits a provable, verifying trace *)
        st.faulted <- true;
        silent_halt := true
      | _ -> ()
    end
  in
  (* the sink is selected once, here: with no sink installed, the hook
     closures below are the pre-attribution ones — the disabled path
     does not test [sink] per event *)
  (match sink with
  | None ->
    hooks.on_instr <-
      (fun ~pc ins ->
        touch st ~write:false pc;
        st.user <- st.user + Config.instr_cost cfg ins;
        (match ins with
        | Isa.Load _ -> st.loads <- st.loads + 1
        | Isa.Store _ -> st.stores <- st.stores + 1
        | Isa.Branch _ | Jal _ | Jalr _ -> st.branches <- st.branches + 1
        | _ -> ());
        boundary ins);
    hooks.on_mem <- (fun ~write addr _bytes -> touch st ~write addr);
    hooks.on_precompile <-
      (fun name ->
        st.precompiles <- st.precompiles + 1;
        st.user <- st.user + Config.precompile_cost cfg name)
  | Some (s : Machine.sink) ->
    hooks.on_instr <-
      (fun ~pc ins ->
        st.cur_pc <- pc;
        touch_attr s st ~write:false pc;
        let cost = Config.instr_cost cfg ins in
        st.user <- st.user + cost;
        s.Machine.on_retires (Machine.retire1 ~pc ins ~cost);
        (match ins with
        | Isa.Load _ -> st.loads <- st.loads + 1
        | Isa.Store _ -> st.stores <- st.stores + 1
        | Isa.Branch _ | Jal _ | Jalr _ -> st.branches <- st.branches + 1
        | _ -> ());
        boundary ins);
    hooks.on_mem <- (fun ~write addr _bytes -> touch_attr s st ~write addr);
    hooks.on_precompile <-
      (fun name ->
        st.precompiles <- st.precompiles + 1;
        let cost = Config.precompile_cost cfg name in
        st.user <- st.user + cost;
        s.Machine.on_precompile ~pc:st.cur_pc ~name ~cost));
  let emu = Emulator.create ~hooks cg.Codegen.program m in
  let budget = ref fuel in
  while (not emu.Emulator.halted) && not !silent_halt do
    if !budget <= 0 then raise (Emulator.Out_of_fuel fuel);
    decr budget;
    Emulator.step emu;
    if !boundary_pending && not !silent_halt then begin
      boundary_pending := false;
      close_segment ~fault ?sink st
    end
  done;
  close_segment ~fault ~final:true ?sink st;
  let exit_value =
    match fault with
    | Corrupt_exit_value ->
      st.faulted <- true;
      Int32.logxor emu.Emulator.exit_value 0x5A5A5A5Al
    | _ -> emu.Emulator.exit_value
  in
  {
    exit_value;
    total_cycles = st.total_user + st.total_paging;
    user_cycles = st.total_user;
    paging_cycles = st.total_paging;
    page_ins = st.page_ins;
    page_outs = st.page_outs;
    segments = List.rev st.segs;
    retired = emu.Emulator.retired;
    loads = st.loads;
    stores = st.stores;
    branches = st.branches;
    precompile_calls = st.precompiles;
    faulted = st.faulted;
  }

(** Simulated executor wall-clock time in seconds. *)
let exec_time_s (cfg : Config.t) (r : result) =
  ((float_of_int r.total_cycles *. cfg.Config.exec_ns_per_cycle)
  +. cfg.Config.exec_overhead_ns)
  *. 1e-9
