(** zkVM cost configurations.

    Two concrete configurations mirror the paper's subjects:

    - [risc0]: 1 KB pages with expensive page-in/page-out (~1130 cycles,
      per the RISC Zero optimization guide the paper cites), 2^20-cycle
      segments, near-uniform instruction costs.
    - [sp1]: larger shards (2^21), much cheaper page events (SP1's
      offline memory-checking amortizes memory cost), higher per-shard
      aggregation overhead in the prover (the paper's Fig. 13 regex-match
      regression is shard-count-driven).

    The wall-clock models are calibrated so baseline magnitudes land in
    the same range as the paper's Table 5 (seconds for execution, tens of
    seconds for proving on RISC Zero), but only *relative* effects
    matter for the study. *)

open Zkopt_riscv

type t = {
  name : string;
  page_bytes : int;
  page_in_cost : int;
  page_out_cost : int;
  segment_limit : int;            (* user cycles per segment/shard *)
  div_cost : int;                 (* div/rem instructions *)
  mul_cost : int;
  mem_cost : int;                 (* loads/stores (page cost separate) *)
  default_cost : int;
  precompile_costs : (string * int) list;
  (* prover model: per segment, time = ns_per_cycle * padded * log2(padded)
     + segment_overhead; padded = next power of two of the segment's
     cycle count, at least 2^min_po2 *)
  prove_ns_per_cycle : float;
  prove_witgen_ns_per_cycle : float;
      (* witness generation scales with the unpadded trace length *)
  prove_segment_overhead_ns : float;
  min_po2 : int;
  (* executor wall-clock model *)
  exec_ns_per_cycle : float;
  exec_overhead_ns : float;
}

let instr_cost t (i : Isa.t) =
  match i with
  | Isa.Op ((Isa.DIV | DIVU | REM | REMU), _, _, _) -> t.div_cost
  | Op ((Isa.MUL | MULH | MULHSU | MULHU), _, _, _) -> t.mul_cost
  | Load _ | Store _ -> t.mem_cost
  | _ -> t.default_cost

(** Cycle price of a precompile call.  Unknown names raise: every
    precompile a config can execute must be priced explicitly, so a typo
    in a cost table (or a new precompile added to {!Zkopt_ir.Extern}
    without a price) fails loudly instead of being silently billed a
    magic constant. *)
let precompile_cost t name =
  match List.assoc_opt name t.precompile_costs with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "unpriced precompile %S on %s (priced: %s)" name t.name
         (String.concat ", " (List.map fst t.precompile_costs)))

let risc0 =
  {
    name = "risc0";
    page_bytes = 1024;
    page_in_cost = 1130;
    page_out_cost = 1130;
    segment_limit = 1 lsl 20;
    div_cost = 2;
    mul_cost = 1;
    mem_cost = 1;
    default_cost = 1;
    precompile_costs =
      [ ("sha256_compress", 68); ("keccakf", 220); ("ecdsa_verify", 4200);
        ("ed25519_verify", 3800); ("bigint_mulmod", 210) ];
    prove_ns_per_cycle = 2_600.0;
    prove_witgen_ns_per_cycle = 9_000.0;
    prove_segment_overhead_ns = 0.9e9;
    min_po2 = 13;
    exec_ns_per_cycle = 28.0;
    exec_overhead_ns = 0.035e9;
  }

let sp1 =
  {
    name = "sp1";
    page_bytes = 1024;
    page_in_cost = 110;
    page_out_cost = 40;
    segment_limit = 1 lsl 21;
    div_cost = 1;
    mul_cost = 1;
    mem_cost = 1;
    default_cost = 1;
    precompile_costs =
      [ ("sha256_compress", 60); ("keccakf", 180); ("ecdsa_verify", 3400);
        ("ed25519_verify", 3100); ("bigint_mulmod", 190) ];
    prove_ns_per_cycle = 380.0;
    prove_witgen_ns_per_cycle = 1_400.0;
    prove_segment_overhead_ns = 0.55e9;
    min_po2 = 14;
    exec_ns_per_cycle = 14.0;
    exec_overhead_ns = 0.05e9;
  }

let all = [ risc0; sp1 ]

let by_name name =
  match List.find_opt (fun c -> String.equal c.name name) all with
  | Some c -> c
  | None -> invalid_arg ("unknown zkVM config: " ^ name)
