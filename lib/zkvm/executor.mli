(** The zkVM executor: replays a guest binary while accounting cycles,
    paging events and segmentation under a {!Config.t}.

    {!run} executes on the decoded-stream machine ({!Machine});
    {!run_reference} is the historical hook-driven implementation, kept
    as the semantics oracle the machine is differentially tested
    against.  The fault / segment / result types are {!Machine}'s,
    re-exported so long-standing call sites keep reading naturally. *)

open Zkopt_ir
open Zkopt_riscv

type fault = Machine.fault =
  | No_fault
  | Silent_halt_on_boundary_jalr
      (** §4.2: a shard boundary on an indirect jump silently drops the
          rest of the execution; checksum diverges. *)
  | Dropped_page_out
      (** Accounting bug: every other dirtied page's write-back cost is
          dropped at segment close even though the page-out itself is
          still counted. *)
  | Truncated_final_segment
      (** The final segment's tail is dropped from the reported cycle
          totals while the per-segment trace keeps the full count. *)
  | Corrupt_exit_value
      (** The journaled exit value is corrupted on halt. *)

type segment = Machine.segment = {
  user_cycles : int;
  paging_cycles : int;
}

type result = Machine.result = {
  exit_value : int32;
  total_cycles : int;
  user_cycles : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  segments : segment list;        (* in execution order *)
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  precompile_calls : int;
  faulted : bool;                 (* the injected bug fired *)
}

(** Execute module [m] (already compiled to [cg]) under configuration
    [cfg] on the decoded-stream machine.  [sink] optionally observes
    every accounted event (see {!Machine.sink}); without it the machine
    runs its indirect-call-free loop. *)
val run :
  ?fault:fault ->
  ?fuel:int ->
  ?sink:Machine.sink ->
  Config.t ->
  Codegen.t ->
  Modul.t ->
  result

(** The historical executor: the boxed reference emulator replayed under
    accounting hooks, page residency in [Hashtbl]s.  Slow but
    independently trustworthy; [test/test_machine.ml] pins {!run} to it
    bit-for-bit. *)
val run_reference :
  ?fault:fault ->
  ?fuel:int ->
  ?sink:Machine.sink ->
  Config.t ->
  Codegen.t ->
  Modul.t ->
  result

(** Simulated executor wall-clock time in seconds. *)
val exec_time_s : Config.t -> result -> float
