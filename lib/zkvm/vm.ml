(** Convenience front door: compile once, execute + prove on a zkVM
    configuration, and collect the paper's three metrics (cycle count,
    executor wall time, proving wall time). *)

open Zkopt_ir
open Zkopt_riscv

type metrics = {
  vm : string;
  cycles : int;
  exec_time_s : float;
  prove_time_s : float;
  segments : int;
  paging_cycles : int;
  exit_value : int32;
  exec : Executor.result;
}

let measure ?fault ?fuel ?sink (cfg : Config.t) (cg : Codegen.t)
    (m : Modul.t) : metrics =
  let exec = Executor.run ?fault ?fuel ?sink cfg cg m in
  let prove = Prover.prove cfg exec in
  {
    vm = cfg.Config.name;
    cycles = exec.Executor.total_cycles;
    exec_time_s = Executor.exec_time_s cfg exec;
    prove_time_s = prove.Prover.time_s;
    segments = prove.Prover.segments;
    paging_cycles = exec.Executor.paging_cycles;
    exit_value = exec.Executor.exit_value;
    exec;
  }

(** Compile [m] and measure it on [cfg]. *)
let compile_and_measure ?fault ?fuel (cfg : Config.t) (m : Modul.t) : metrics =
  let cg = Codegen.compile m in
  measure ?fault ?fuel cfg cg m

(** Accounting conservation oracles over a raw executor result.  In a
    healthy executor both identities hold exactly:

    - paging cycles = page-ins * page_in_cost + page-outs * page_out_cost
    - total cycles  = sum over segments of (user + paging) cycles

    A violation means the executor produced a trace whose cost totals do
    not reconcile with its own event journal — the accounting-bug shape
    of zkVM soundness failures (e.g. {!Executor.fault}'s
    [Dropped_page_out] and [Truncated_final_segment]). *)
let check_accounting (cfg : Config.t) (r : metrics) : (unit, string) result =
  let e = r.exec in
  let expected_paging =
    (e.Executor.page_ins * cfg.Config.page_in_cost)
    + (e.Executor.page_outs * cfg.Config.page_out_cost)
  in
  if e.Executor.paging_cycles <> expected_paging then
    Error
      (Printf.sprintf
         "paging cycles %d do not reconcile with events (%d ins * %d + %d \
          outs * %d = %d)"
         e.Executor.paging_cycles e.Executor.page_ins cfg.Config.page_in_cost
         e.Executor.page_outs cfg.Config.page_out_cost expected_paging)
  else
    let seg_total =
      List.fold_left
        (fun acc (s : Executor.segment) ->
          acc + s.Executor.user_cycles + s.Executor.paging_cycles)
        0 e.Executor.segments
    in
    if seg_total <> e.Executor.total_cycles then
      Error
        (Printf.sprintf
           "segment trace sums to %d cycles but the executor reported %d"
           seg_total e.Executor.total_cycles)
    else Ok ()
