(** Convenience front door: compile once, execute + prove on a zkVM
    configuration, and collect the paper's three metrics (cycle count,
    executor wall time, proving wall time). *)

open Zkopt_ir
open Zkopt_riscv

type metrics = {
  vm : string;
  cycles : int;
  exec_time_s : float;
  prove_time_s : float;
  segments : int;
  paging_cycles : int;
  exit_value : int32;
  exec : Executor.result;
}

let measure ?fault ?fuel ?attr (cfg : Config.t) (cg : Codegen.t)
    (m : Modul.t) : metrics =
  let exec = Executor.run ?fault ?fuel ?attr cfg cg m in
  let prove = Prover.prove cfg exec in
  {
    vm = cfg.Config.name;
    cycles = exec.Executor.total_cycles;
    exec_time_s = Executor.exec_time_s cfg exec;
    prove_time_s = prove.Prover.time_s;
    segments = prove.Prover.segments;
    paging_cycles = exec.Executor.paging_cycles;
    exit_value = exec.Executor.exit_value;
    exec;
  }

(** Compile [m] and measure it on [cfg]. *)
let compile_and_measure ?fault ?fuel (cfg : Config.t) (m : Modul.t) : metrics =
  let cg = Codegen.compile m in
  measure ?fault ?fuel cfg cg m
