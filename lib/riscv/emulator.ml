(** RV32IM emulator.

    Executes an assembled {!Asm.program} against sparse guest memory.
    Cost models (zkVM executor, CPU timing model) observe execution
    through [hooks]; the emulator itself is purely functional semantics.

    Syscall convention (register a7):
    - 0: halt; a0 = exit value
    - 1000 + i: precompile number [i] in {!Zkopt_ir.Extern.signatures}
      order, pointer/scalar args in a0..a3, optional result in a0. *)

open Zkopt_ir

exception Trap of string

(** Raised when a bounded run exhausts its instruction budget; carries the
    budget that was exhausted.  Distinct from {!Trap} so callers (retry
    policies in particular) can tell fuel exhaustion apart from genuine
    faults without string matching. *)
exception Out_of_fuel of int

type hooks = {
  mutable on_instr : pc:int32 -> Isa.t -> unit;
  mutable on_mem : write:bool -> int32 -> int -> unit;  (* addr, bytes *)
  mutable on_branch : pc:int32 -> taken:bool -> int32 -> unit;
  mutable on_precompile : string -> unit;
}

let no_hooks () =
  {
    on_instr = (fun ~pc:_ _ -> ());
    on_mem = (fun ~write:_ _ _ -> ());
    on_branch = (fun ~pc:_ ~taken:_ _ -> ());
    on_precompile = (fun _ -> ());
  }

type t = {
  prog : Asm.program;
  mem : Memory.t;
  regs : int32 array;
  mutable pc : int32;
  mutable halted : bool;
  mutable exit_value : int32;
  mutable retired : int;
  hooks : hooks;
}

let syscall_halt = 0
let syscall_precompile_base = 1000

(* Precompile signatures as a flat array, computed once at module load:
   syscall dispatch indexes it directly instead of walking the signature
   list on every call. *)
let precompile_signatures : (string * int) array =
  Array.of_list Extern.signatures

let precompile_syscall_id name =
  let n = Array.length precompile_signatures in
  let rec find i =
    if i >= n then invalid_arg ("unknown precompile " ^ name)
    else if String.equal (fst precompile_signatures.(i)) name then i
    else find (i + 1)
  in
  syscall_precompile_base + find 0

let precompile_of_syscall id =
  let i = id - syscall_precompile_base in
  if i >= 0 && i < Array.length precompile_signatures then
    precompile_signatures.(i)
  else raise (Trap (Printf.sprintf "unknown syscall %d" id))

let create ?(hooks = no_hooks ()) (prog : Asm.program) (m : Modul.t) : t =
  let mem = Memory.create () in
  (* Install the code image so code pages participate in paging costs. *)
  Array.iteri
    (fun i ins ->
      Memory.store32 mem
        (Int32.add prog.Asm.base (Int32.of_int (4 * i)))
        (Isa.encode ins))
    prog.Asm.code;
  List.iter
    (fun (g : Modul.global) ->
      match Hashtbl.find_opt prog.Asm.symbols g.gname with
      | Some addr -> Memory.init_global mem addr g.init
      | None -> ())
    m.Modul.globals;
  let regs = Array.make 32 0l in
  regs.(Isa.sp) <- Layout.stack_top;
  let entry =
    match Hashtbl.find_opt prog.Asm.symbols "main" with
    | Some a -> a
    | None -> raise (Trap "no main symbol")
  in
  (* ra = 0 sentinel: returning from main jumps to 0, which we treat as
     halt-with-a0 for robustness; the codegen emits an explicit ecall. *)
  { prog; mem; regs; pc = entry; halted = false; exit_value = 0l;
    retired = 0; hooks }

let reg_get t r = if r = 0 then 0l else t.regs.(r)
let reg_set t r v = if r <> 0 then t.regs.(r) <- v

let fetch t =
  let idx = Int32.to_int (Int32.sub t.pc t.prog.Asm.base) / 4 in
  if idx < 0 || idx >= Array.length t.prog.Asm.code then
    raise (Trap (Printf.sprintf "pc out of range: 0x%08lx" t.pc))
  else t.prog.Asm.code.(idx)

let extern_mem t =
  {
    Extern.load32 =
      (fun a ->
        t.hooks.on_mem ~write:false a 4;
        Memory.load32 t.mem a);
    store32 =
      (fun a v ->
        t.hooks.on_mem ~write:true a 4;
        Memory.store32 t.mem a v);
  }

let do_syscall t =
  let id = Int32.to_int (reg_get t Isa.a7) in
  if id = syscall_halt then begin
    t.halted <- true;
    t.exit_value <- reg_get t Isa.a0
  end
  else begin
    let name, arity = precompile_of_syscall id in
    t.hooks.on_precompile name;
    let args =
      Array.init arity (fun i ->
          Eval.norm32 (Int64.of_int32 (reg_get t (Isa.a0 + i))))
    in
    match Extern.run name (extern_mem t) args with
    | Some v -> reg_set t Isa.a0 (Int64.to_int32 v)
    | None -> ()
  end

let s64 (v : int32) = Int64.of_int32 v
let u64 (v : int32) = Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL

let alu_op (op : Isa.rop) (a : int32) (b : int32) : int32 =
  match op with
  | Isa.ADD -> Int32.add a b
  | SUB -> Int32.sub a b
  | SLL -> Int32.shift_left a (Int32.to_int b land 31)
  | SLT -> if Int32.compare a b < 0 then 1l else 0l
  | SLTU -> if Int32.unsigned_compare a b < 0 then 1l else 0l
  | XOR -> Int32.logxor a b
  | SRL -> Int32.shift_right_logical a (Int32.to_int b land 31)
  | SRA -> Int32.shift_right a (Int32.to_int b land 31)
  | OR -> Int32.logor a b
  | AND -> Int32.logand a b
  | MUL -> Int32.mul a b
  | MULH ->
    Int64.to_int32 (Int64.shift_right (Int64.mul (s64 a) (s64 b)) 32)
  | MULHSU ->
    Int64.to_int32 (Int64.shift_right (Int64.mul (s64 a) (u64 b)) 32)
  | MULHU ->
    Int64.to_int32 (Int64.shift_right_logical (Int64.mul (u64 a) (u64 b)) 32)
  | DIV -> Int64.to_int32 (Eval.sdiv32 (u64 a) (u64 b))
  | DIVU -> Int64.to_int32 (Eval.udiv32 (u64 a) (u64 b))
  | REM -> Int64.to_int32 (Eval.srem32 (u64 a) (u64 b))
  | REMU -> Int64.to_int32 (Eval.urem32 (u64 a) (u64 b))

let alu_opi (op : Isa.iop) (a : int32) (imm : int) : int32 =
  let b = Int32.of_int imm in
  match op with
  | Isa.ADDI -> Int32.add a b
  | SLTI -> if Int32.compare a b < 0 then 1l else 0l
  | SLTIU -> if Int32.unsigned_compare a b < 0 then 1l else 0l
  | XORI -> Int32.logxor a b
  | ORI -> Int32.logor a b
  | ANDI -> Int32.logand a b
  | SLLI -> Int32.shift_left a (imm land 31)
  | SRLI -> Int32.shift_right_logical a (imm land 31)
  | SRAI -> Int32.shift_right a (imm land 31)

let branch_taken (c : Isa.bcond) a b =
  match c with
  | Isa.BEQ -> Int32.equal a b
  | BNE -> not (Int32.equal a b)
  | BLT -> Int32.compare a b < 0
  | BGE -> Int32.compare a b >= 0
  | BLTU -> Int32.unsigned_compare a b < 0
  | BGEU -> Int32.unsigned_compare a b >= 0

let step t =
  let pc = t.pc in
  let ins = fetch t in
  t.hooks.on_instr ~pc ins;
  t.retired <- t.retired + 1;
  let next = Int32.add pc 4l in
  (match ins with
  | Isa.Lui (rd, imm) ->
    reg_set t rd imm;
    t.pc <- next
  | Auipc (rd, imm) ->
    reg_set t rd (Int32.add pc imm);
    t.pc <- next
  | Jal (rd, off) ->
    let target = Int32.add pc (Int32.of_int off) in
    reg_set t rd next;
    t.hooks.on_branch ~pc ~taken:true target;
    t.pc <- target
  | Jalr (rd, rs1, imm) ->
    let target =
      Int32.logand (Int32.add (reg_get t rs1) (Int32.of_int imm)) 0xFFFF_FFFEl
    in
    reg_set t rd next;
    t.hooks.on_branch ~pc ~taken:true target;
    if Int32.equal target 0l then begin
      (* return past main: halt with a0 *)
      t.halted <- true;
      t.exit_value <- reg_get t Isa.a0
    end
    else t.pc <- target
  | Branch (c, rs1, rs2, off) ->
    let taken = branch_taken c (reg_get t rs1) (reg_get t rs2) in
    let target = Int32.add pc (Int32.of_int off) in
    t.hooks.on_branch ~pc ~taken target;
    t.pc <- (if taken then target else next)
  | Load (w, rd, rs1, imm) ->
    let addr = Int32.add (reg_get t rs1) (Int32.of_int imm) in
    let v =
      match w with
      | Isa.LW ->
        t.hooks.on_mem ~write:false addr 4;
        Memory.load32 t.mem addr
      | LB ->
        t.hooks.on_mem ~write:false addr 1;
        Int32.of_int ((Memory.load8 t.mem addr lxor 0x80) - 0x80)
      | LBU ->
        t.hooks.on_mem ~write:false addr 1;
        Int32.of_int (Memory.load8 t.mem addr)
      | LH ->
        t.hooks.on_mem ~write:false addr 2;
        let lo = Memory.load8 t.mem addr in
        let hi = Memory.load8 t.mem (Int32.add addr 1l) in
        Int32.of_int ((((hi lsl 8) lor lo) lxor 0x8000) - 0x8000)
      | LHU ->
        t.hooks.on_mem ~write:false addr 2;
        let lo = Memory.load8 t.mem addr in
        let hi = Memory.load8 t.mem (Int32.add addr 1l) in
        Int32.of_int ((hi lsl 8) lor lo)
    in
    reg_set t rd v;
    t.pc <- next
  | Store (w, rs2, rs1, imm) ->
    let addr = Int32.add (reg_get t rs1) (Int32.of_int imm) in
    let v = reg_get t rs2 in
    (match w with
    | Isa.SW ->
      t.hooks.on_mem ~write:true addr 4;
      Memory.store32 t.mem addr v
    | SB ->
      t.hooks.on_mem ~write:true addr 1;
      Memory.store8 t.mem addr (Int32.to_int v)
    | SH ->
      t.hooks.on_mem ~write:true addr 2;
      Memory.store8 t.mem addr (Int32.to_int v);
      Memory.store8 t.mem (Int32.add addr 1l) (Int32.to_int v lsr 8));
    t.pc <- next
  | Op (op, rd, rs1, rs2) ->
    reg_set t rd (alu_op op (reg_get t rs1) (reg_get t rs2));
    t.pc <- next
  | Opi (op, rd, rs1, imm) ->
    reg_set t rd (alu_opi op (reg_get t rs1) imm);
    t.pc <- next
  | Ecall ->
    do_syscall t;
    t.pc <- next);
  ()

(** Run until halt, raising [Out_of_fuel fuel] after [fuel] retired
    instructions. *)
let run ?(fuel = 500_000_000) t =
  let budget = ref fuel in
  while not t.halted do
    if !budget <= 0 then raise (Out_of_fuel fuel);
    decr budget;
    step t
  done;
  t.exit_value
