(** Linear-scan register allocation over the selector's virtual registers.

    x30/x31 are reserved as spill scratch, a-registers are argument/result
    plumbing emitted directly by the selector, and everything is
    caller-saved: any interval live across a call is assigned a stack
    slot.  This discipline is what makes the paper's backend-mediated
    effects reproducible — inlining removes call-crossing spills (Fig. 3),
    and pass-created register pressure (licm, Fig. 9) turns into genuine
    lw/sw traffic against stack pages. *)

type interval = {
  vreg : int;
  start_ : int;
  stop_ : int;
}

(* t0-t2, s0-s1, s2-s9: thirteen allocatable registers.  The remaining
   GPRs are the zero/ra/sp/gp/tp fixture, the a-registers (argument
   plumbing owned by the selector), x26-x29 (assembler/linker scratch in
   this toolchain) and x30/x31 (spill scratch).  The modest pool mirrors
   how much of the register file a simple RV32 codegen actually has free,
   and is what lets pass-induced live-range growth turn into the spill
   traffic the paper measures. *)
let pool = [ 5; 6; 7; 8; 9; 18; 19; 20; 21; 22; 23; 24; 25 ]
let scratch0 = 30 (* t5 *)
let scratch1 = 31 (* t6 *)

let item_defs (it : Asm.item) =
  match it with
  | Asm.Ins (Isa.Op (_, rd, _, _))
  | Ins (Isa.Opi (_, rd, _, _))
  | Ins (Isa.Lui (rd, _))
  | Ins (Isa.Auipc (rd, _))
  | Ins (Isa.Load (_, rd, _, _))
  | Li (rd, _)
  | La (rd, _) ->
    [ rd ]
  | Ins (Isa.Jal (rd, _)) | Ins (Isa.Jalr (rd, _, _)) -> [ rd ]
  | Ins (Isa.Store _) | Ins (Isa.Branch _) | Ins Isa.Ecall -> []
  | Label _ | J _ | Bc _ | CallSym _ | Ret | Loc _ -> []

let item_uses (it : Asm.item) =
  match it with
  | Asm.Ins (Isa.Op (_, _, rs1, rs2)) -> [ rs1; rs2 ]
  | Ins (Isa.Opi (_, _, rs1, _)) -> [ rs1 ]
  | Ins (Isa.Load (_, _, rs1, _)) -> [ rs1 ]
  | Ins (Isa.Store (_, rs2, rs1, _)) -> [ rs1; rs2 ]
  | Ins (Isa.Jalr (_, rs1, _)) -> [ rs1 ]
  | Ins (Isa.Branch (_, rs1, rs2, _)) -> [ rs1; rs2 ]
  | Bc (_, rs1, rs2, _) -> [ rs1; rs2 ]
  | Ins (Isa.Lui _) | Ins (Isa.Auipc _) | Ins (Isa.Jal _) | Ins Isa.Ecall
  | Li _ | La _ | Label _ | J _ | CallSym _ | Ret | Loc _ ->
    []

let map_item_regs f (it : Asm.item) : Asm.item =
  match it with
  | Asm.Ins (Isa.Op (op, rd, rs1, rs2)) -> Asm.Ins (Isa.Op (op, f rd, f rs1, f rs2))
  | Ins (Isa.Opi (op, rd, rs1, imm)) -> Ins (Isa.Opi (op, f rd, f rs1, imm))
  | Ins (Isa.Lui (rd, imm)) -> Ins (Isa.Lui (f rd, imm))
  | Ins (Isa.Auipc (rd, imm)) -> Ins (Isa.Auipc (f rd, imm))
  | Ins (Isa.Load (w, rd, rs1, imm)) -> Ins (Isa.Load (w, f rd, f rs1, imm))
  | Ins (Isa.Store (w, rs2, rs1, imm)) -> Ins (Isa.Store (w, f rs2, f rs1, imm))
  | Ins (Isa.Jal (rd, off)) -> Ins (Isa.Jal (f rd, off))
  | Ins (Isa.Jalr (rd, rs1, imm)) -> Ins (Isa.Jalr (f rd, f rs1, imm))
  | Ins (Isa.Branch (c, rs1, rs2, off)) -> Ins (Isa.Branch (c, f rs1, f rs2, off))
  | Li (rd, v) -> Li (f rd, v)
  | La (rd, s) -> La (f rd, s)
  | Bc (c, rs1, rs2, l) -> Bc (c, f rs1, f rs2, l)
  | Ins Isa.Ecall | Label _ | J _ | CallSym _ | Ret | Loc _ -> it

let is_vreg r = r >= Isel.vreg_base

(* ------------------------------------------------------------------ *)
(* Machine-level liveness                                              *)
(* ------------------------------------------------------------------ *)

module IS = Zkopt_analysis.Intset

(* Split items into leader-indexed blocks and compute successor indices. *)
let machine_blocks (items : Asm.item array) =
  let n = Array.length items in
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun i it ->
      match it with
      | Asm.Label _ -> leader.(i) <- true
      | J _ | Bc _ | Ret -> if i + 1 < n then leader.(i + 1) <- true
      | _ -> ())
    items;
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let block_of = Array.make n 0 in
  Array.iteri
    (fun bi s ->
      let e = if bi + 1 < nb then starts.(bi + 1) else n in
      for i = s to e - 1 do
        block_of.(i) <- bi
      done)
    starts;
  let label_block = Hashtbl.create 16 in
  Array.iteri
    (fun i it ->
      match it with
      | Asm.Label l -> Hashtbl.replace label_block l block_of.(i)
      | _ -> ())
    items;
  let succ = Array.make nb [] in
  Array.iteri
    (fun bi _start ->
      let e = if bi + 1 < nb then starts.(bi + 1) else n in
      let last = items.(e - 1) in
      let fallthrough = if bi + 1 < nb then [ bi + 1 ] else [] in
      succ.(bi) <-
        (match last with
        | Asm.J l -> [ Hashtbl.find label_block l ]
        | Bc (_, _, _, l) -> Hashtbl.find label_block l :: fallthrough
        | Ret -> []
        | _ -> fallthrough))
    starts;
  (starts, block_of, succ)

let intervals_of (items : Asm.item array) : interval list * IS.t =
  let n = Array.length items in
  let starts, _block_of, succ = machine_blocks items in
  let nb = Array.length starts in
  let block_range bi =
    let s = starts.(bi) in
    let e = if bi + 1 < nb then starts.(bi + 1) else n in
    (s, e)
  in
  (* block-level liveness over vregs *)
  let use = Array.make nb IS.empty and def = Array.make nb IS.empty in
  for bi = 0 to nb - 1 do
    let s, e = block_range bi in
    for i = s to e - 1 do
      List.iter
        (fun r ->
          if is_vreg r && not (IS.mem r def.(bi)) then use.(bi) <- IS.add r use.(bi))
        (item_uses items.(i));
      List.iter (fun r -> if is_vreg r then def.(bi) <- IS.add r def.(bi)) (item_defs items.(i))
    done
  done;
  let live_in = Array.make nb IS.empty and live_out = Array.make nb IS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = nb - 1 downto 0 do
      let out =
        List.fold_left (fun acc s -> IS.union acc live_in.(s)) IS.empty succ.(bi)
      in
      let inn = IS.union use.(bi) (IS.diff out def.(bi)) in
      if not (IS.equal out live_out.(bi) && IS.equal inn live_in.(bi)) then begin
        live_out.(bi) <- out;
        live_in.(bi) <- inn;
        changed := true
      end
    done
  done;
  (* intervals: min/max positions over defs, uses and live block edges *)
  let lo = Hashtbl.create 64 and hi = Hashtbl.create 64 in
  let note r pos =
    if is_vreg r then begin
      (match Hashtbl.find_opt lo r with
      | Some p when p <= pos -> ()
      | _ -> Hashtbl.replace lo r pos);
      match Hashtbl.find_opt hi r with
      | Some p when p >= pos -> ()
      | _ -> Hashtbl.replace hi r pos
    end
  in
  Array.iteri
    (fun i it ->
      List.iter (fun r -> note r i) (item_defs it);
      List.iter (fun r -> note r i) (item_uses it))
    items;
  for bi = 0 to nb - 1 do
    let s, e = block_range bi in
    IS.iter (fun r -> note r s) live_in.(bi);
    IS.iter (fun r -> note r (e - 1)) live_out.(bi)
  done;
  let call_positions = ref IS.empty in
  Array.iteri
    (fun i it -> match it with Asm.CallSym _ -> call_positions := IS.add i !call_positions | _ -> ())
    items;
  let intervals =
    Hashtbl.fold
      (fun r s acc -> { vreg = r; start_ = s; stop_ = Hashtbl.find hi r } :: acc)
      lo []
  in
  (List.sort (fun a b -> compare (a.start_, a.vreg) (b.start_, b.vreg)) intervals,
   !call_positions)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

type assignment =
  | Phys of int
  | Slot of int

type result = {
  items : Asm.item list;   (* physical registers only *)
  spill_slots : int;
  spill_loads : int;       (* reload instructions inserted *)
  spill_stores : int;
}

let crosses_call calls iv =
  IS.exists (fun p -> p >= iv.start_ && p < iv.stop_) calls

(** Allocate and rewrite.  [slot_base] is the sp-relative byte offset of
    spill slot 0 (just above the alloca area). *)
let allocate ~slot_base (items_list : Asm.item list) : result =
  let items = Array.of_list items_list in
  let intervals, calls = intervals_of items in
  let assignment : (int, assignment) Hashtbl.t = Hashtbl.create 64 in
  let next_slot = ref 0 in
  let new_slot () =
    let s = !next_slot in
    incr next_slot;
    s
  in
  (* call-crossing intervals go straight to slots *)
  let allocatable =
    List.filter
      (fun iv ->
        if crosses_call calls iv then begin
          Hashtbl.replace assignment iv.vreg (Slot (new_slot ()));
          false
        end
        else true)
      intervals
  in
  (* classic linear scan on the rest *)
  let active = ref [] in (* (stop, vreg, phys), sorted by stop *)
  let free = ref pool in
  let expire pos =
    let expired, still = List.partition (fun (e, _, _) -> e < pos) !active in
    List.iter (fun (_, _, p) -> free := p :: !free) expired;
    active := still
  in
  List.iter
    (fun iv ->
      expire iv.start_;
      match !free with
      | p :: rest ->
        free := rest;
        Hashtbl.replace assignment iv.vreg (Phys p);
        active := List.sort compare ((iv.stop_, iv.vreg, p) :: !active)
      | [] ->
        (* spill the interval that ends last *)
        let (e_last, v_last, p_last) = List.nth !active (List.length !active - 1) in
        if e_last > iv.stop_ then begin
          Hashtbl.replace assignment v_last (Slot (new_slot ()));
          Hashtbl.replace assignment iv.vreg (Phys p_last);
          active :=
            List.sort compare
              ((iv.stop_, iv.vreg, p_last)
              :: List.filter (fun (_, v, _) -> v <> v_last) !active)
        end
        else Hashtbl.replace assignment iv.vreg (Slot (new_slot ())))
    allocatable;
  (* rewrite *)
  let out = ref [] in
  let loads = ref 0 and stores = ref 0 in
  let emit it = out := it :: !out in
  let slot_off s =
    let off = slot_base + (4 * s) in
    if off > 2040 then
      failwith
        (Printf.sprintf "Regalloc: spill slot offset %d exceeds imm12 range" off);
    off
  in
  Array.iter
    (fun it ->
      let uses = List.filter is_vreg (item_uses it) in
      let defs = List.filter is_vreg (item_defs it) in
      (* scratch mapping for spilled regs in this item *)
      let scratch_map = Hashtbl.create 4 in
      let next_scratch = ref [ scratch0; scratch1 ] in
      let scratch_for v =
        match Hashtbl.find_opt scratch_map v with
        | Some s -> s
        | None ->
          (match !next_scratch with
          | s :: rest ->
            next_scratch := rest;
            Hashtbl.replace scratch_map v s;
            s
          | [] -> failwith "Regalloc: out of scratch registers")
      in
      (* reload spilled sources *)
      List.iter
        (fun v ->
          match Hashtbl.find_opt assignment v with
          | Some (Slot s) ->
            let sc = scratch_for v in
            incr loads;
            emit (Asm.Ins (Isa.Load (Isa.LW, sc, Isa.sp, slot_off s)))
          | _ -> ())
        (List.sort_uniq compare uses);
      (* allow the def to reuse a scratch (sources are consumed first) *)
      let def_spills =
        List.filter_map
          (fun v ->
            match Hashtbl.find_opt assignment v with
            | Some (Slot s) -> Some (v, s)
            | _ -> None)
          defs
      in
      List.iter
        (fun (v, _) ->
          (* the def may always reuse scratch0: source reads complete
             before the destination is written *)
          if not (Hashtbl.mem scratch_map v) then
            match !next_scratch with
            | s :: rest ->
              next_scratch := rest;
              Hashtbl.replace scratch_map v s
            | [] -> Hashtbl.replace scratch_map v scratch0)
        def_spills;
      let map r =
        if not (is_vreg r) then r
        else
          match Hashtbl.find_opt assignment r with
          | Some (Phys p) -> p
          | Some (Slot _) -> Hashtbl.find scratch_map r
          | None -> scratch0 (* dead def of a never-used vreg *)
      in
      emit (map_item_regs map it);
      List.iter
        (fun (v, s) ->
          incr stores;
          emit (Asm.Ins (Isa.Store (Isa.SW, Hashtbl.find scratch_map v, Isa.sp, slot_off s))))
        def_spills)
    items;
  {
    items = List.rev !out;
    spill_slots = !next_slot;
    spill_loads = !loads;
    spill_stores = !stores;
  }
