(** RV32IM reference emulator.

    The *semantics oracle* of the system: a boxed, hook-observed
    interpreter over {!Asm.program} whose behavior defines what the
    raw-speed decoded-stream machine ({!Zkopt_zkvm.Machine}) must
    reproduce bit-for-bit.  The CPU timing model also drives this
    interpreter, because its float cost sequence is order-sensitive and
    pinned by recorded checkpoints.

    Cost models observe execution through [hooks]; the emulator itself
    is purely functional semantics.

    Syscall convention (register a7):
    - 0: halt; a0 = exit value
    - 1000 + i: precompile number [i] in {!Zkopt_ir.Extern.signatures}
      order, pointer/scalar args in a0..a3, optional result in a0. *)

exception Trap of string

(** Raised when a bounded run exhausts its instruction budget; carries
    the budget that was exhausted.  Distinct from {!Trap} so callers
    (retry policies in particular) can tell fuel exhaustion apart from
    genuine faults without string matching. *)
exception Out_of_fuel of int

type hooks = {
  mutable on_instr : pc:int32 -> Isa.t -> unit;
  mutable on_mem : write:bool -> int32 -> int -> unit;  (* addr, bytes *)
  mutable on_branch : pc:int32 -> taken:bool -> int32 -> unit;
  mutable on_precompile : string -> unit;
}

val no_hooks : unit -> hooks

type t = {
  prog : Asm.program;
  mem : Zkopt_ir.Memory.t;
  regs : int32 array;
  mutable pc : int32;
  mutable halted : bool;
  mutable exit_value : int32;
  mutable retired : int;
  hooks : hooks;
}

val syscall_halt : int
val syscall_precompile_base : int

(** {!Zkopt_ir.Extern.signatures} as a flat array in syscall-id order,
    computed once at module load — syscall dispatch indexes it directly. *)
val precompile_signatures : (string * int) array

(** Syscall id of a precompile name; raises [Invalid_argument] on
    unknown names. *)
val precompile_syscall_id : string -> int

(** [(name, arity)] of a precompile syscall id; raises {!Trap} on
    unknown ids. *)
val precompile_of_syscall : int -> string * int

(** Install the code image and globals and position the machine at
    [main]. *)
val create : ?hooks:hooks -> Asm.program -> Zkopt_ir.Modul.t -> t

val reg_get : t -> Isa.reg -> int32
val reg_set : t -> Isa.reg -> int32 -> unit

(** Reference ALU/branch semantics, shared with tests and equivalence
    harnesses. *)
val alu_op : Isa.rop -> int32 -> int32 -> int32

val alu_opi : Isa.iop -> int32 -> int -> int32
val branch_taken : Isa.bcond -> int32 -> int32 -> bool

(** Execute one instruction (fires [hooks.on_instr] first). *)
val step : t -> unit

(** Run until halt, raising [Out_of_fuel fuel] after [fuel] retired
    instructions. *)
val run : ?fuel:int -> t -> int32
