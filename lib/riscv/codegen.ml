(** Code-generation driver: IR module -> assembled RV32 program.

    Pipeline per function: instruction selection -> linear-scan register
    allocation -> prologue/epilogue insertion.  [main] halts via ecall
    instead of returning.  Frame layout (from sp upward): alloca area,
    spill slots, saved ra. *)

open Zkopt_ir

type func_stats = {
  fname : string;
  instrs : int;          (* machine instructions after allocation *)
  spill_slots : int;
  spill_loads : int;
  spill_stores : int;
}

type t = {
  program : Asm.program;
  stats : func_stats list;
}

let frame_adjust items ~frame ~down =
  let amount = if down then -frame else frame in
  if frame = 0 then items
  else if Asm.fits_imm12 amount then
    Asm.Ins (Isa.Opi (Isa.ADDI, Isa.sp, Isa.sp, amount)) :: items
  else
    (* li t6, frame; sub/add sp, sp, t6 *)
    Asm.Li (Isa.t6, Int32.of_int frame)
    :: Asm.Ins (Isa.Op ((if down then Isa.SUB else Isa.ADD), Isa.sp, Isa.sp, Isa.t6))
    :: items

let lower_func (m : Modul.t) (f : Func.t) : Asm.unit_ * func_stats =
  let sel = Isel.select m f in
  let ra_result = Regalloc.allocate ~slot_base:sel.Isel.alloca_bytes sel.Isel.items in
  let frame_core = sel.Isel.alloca_bytes + (4 * ra_result.Regalloc.spill_slots) in
  let save_ra = sel.Isel.has_calls in
  let frame =
    Layout.align_up (frame_core + (if save_ra then 4 else 0)) 16
  in
  let is_main = String.equal f.Func.name "main" in
  let ra_slot_seq ~load =
    (* address the ra slot even when the frame exceeds the imm12 range *)
    if Asm.fits_imm12 (frame - 4) then
      if load then [ Asm.Ins (Isa.Load (Isa.LW, Isa.ra, Isa.sp, frame - 4)) ]
      else [ Asm.Ins (Isa.Store (Isa.SW, Isa.ra, Isa.sp, frame - 4)) ]
    else
      [ Asm.Li (Isa.t6, Int32.of_int (frame - 4));
        Asm.Ins (Isa.Op (Isa.ADD, Isa.t6, Isa.sp, Isa.t6));
        (if load then Asm.Ins (Isa.Load (Isa.LW, Isa.ra, Isa.t6, 0))
         else Asm.Ins (Isa.Store (Isa.SW, Isa.ra, Isa.t6, 0))) ]
  in
  let prologue =
    (* adjust sp first, then save ra into the new frame *)
    let save = if save_ra then ra_slot_seq ~load:false else [] in
    frame_adjust save ~frame ~down:true
  in
  let epilogue =
    let restore = if save_ra then ra_slot_seq ~load:true else [] in
    let unwind = List.rev (frame_adjust [] ~frame ~down:false) in
    let finish =
      if is_main then
        (* halt with the return value already in a0 *)
        [ Asm.Li (17, Int32.of_int Emulator.syscall_halt); Asm.Ins Isa.Ecall ]
      else [ Asm.Ret ]
    in
    restore @ unwind @ finish
  in
  let items =
    (Asm.Loc "<prologue>" :: prologue)
    @ ra_result.Regalloc.items
    @ (Asm.Loc "<epilogue>" :: epilogue)
  in
  let instrs =
    List.fold_left
      (fun acc it ->
        acc + (match it with Asm.Label _ | Asm.Loc _ -> 0 | _ -> 1))
      0 items
  in
  ( { Asm.name = f.Func.name; items },
    {
      fname = f.Func.name;
      instrs;
      spill_slots = ra_result.Regalloc.spill_slots;
      spill_loads = ra_result.Regalloc.spill_loads;
      spill_stores = ra_result.Regalloc.spill_stores;
    } )

(** Compile a whole module.  [main] is laid out first. *)
let compile (m : Modul.t) : t =
  let funcs =
    let mains, rest =
      List.partition (fun (f : Func.t) -> String.equal f.Func.name "main") m.Modul.funcs
    in
    mains @ rest
  in
  let lowered = List.map (lower_func m) funcs in
  let globals, data_end = Layout.place_globals m in
  let program = Asm.assemble ~globals ~data_end (List.map fst lowered) in
  { program; stats = List.map snd lowered }

(** Compile and run under the plain emulator (no cost model); returns the
    exit value and retired instruction count. *)
let run ?hooks ?fuel (m : Modul.t) : int32 * int =
  let cg = compile m in
  let emu = Emulator.create ?hooks cg.program m in
  let exit_value = Emulator.run ?fuel emu in
  (exit_value, emu.Emulator.retired)
