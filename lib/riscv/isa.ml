(** RV32IM instruction set: types, registers, and binary encode/decode.

    The emulator executes the decoded form; the encoder exists so that the
    toolchain produces genuine RV32IM words (and the round-trip is a good
    test of both directions). *)

type reg = int (* x0..x31 *)

(* ABI names used in assembly listings *)
let reg_name r =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0";
     "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6";
     "s7"; "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |].(r)

let zero = 0
let ra = 1
let sp = 2
let a0 = 10
let a7 = 17
let t5 = 30
let t6 = 31

type rop =
  | ADD | SUB | SLL | SLT | SLTU | XOR | SRL | SRA | OR | AND
  | MUL | MULH | MULHSU | MULHU | DIV | DIVU | REM | REMU

type iop = ADDI | SLTI | SLTIU | XORI | ORI | ANDI | SLLI | SRLI | SRAI

type lwidth = LB | LH | LW | LBU | LHU
type swidth = SB | SH | SW
type bcond = BEQ | BNE | BLT | BGE | BLTU | BGEU

type t =
  | Lui of reg * int32            (* rd, imm[31:12] already shifted *)
  | Auipc of reg * int32
  | Jal of reg * int              (* rd, byte offset from this pc *)
  | Jalr of reg * reg * int       (* rd, rs1, imm *)
  | Branch of bcond * reg * reg * int  (* rs1, rs2, byte offset *)
  | Load of lwidth * reg * reg * int   (* rd, base, imm *)
  | Store of swidth * reg * reg * int  (* rs2 (src), base, imm *)
  | Op of rop * reg * reg * reg        (* rd, rs1, rs2 *)
  | Opi of iop * reg * reg * int       (* rd, rs1, imm *)
  | Ecall

let is_branch = function Branch _ | Jal _ | Jalr _ -> true | _ -> false
let is_mem = function Load _ | Store _ -> true | _ -> false

(* Dense sub-opcode indexes.  Pre-decoded executors (lib/zkvm's machine)
   number the whole instruction space contiguously from these so dispatch
   compiles to a jump table over small ints instead of a variant match
   over boxed operands. *)
let rop_index = function
  | ADD -> 0 | SUB -> 1 | SLL -> 2 | SLT -> 3 | SLTU -> 4 | XOR -> 5
  | SRL -> 6 | SRA -> 7 | OR -> 8 | AND -> 9 | MUL -> 10 | MULH -> 11
  | MULHSU -> 12 | MULHU -> 13 | DIV -> 14 | DIVU -> 15 | REM -> 16
  | REMU -> 17

let iop_index = function
  | ADDI -> 0 | SLTI -> 1 | SLTIU -> 2 | XORI -> 3 | ORI -> 4 | ANDI -> 5
  | SLLI -> 6 | SRLI -> 7 | SRAI -> 8

let lwidth_index = function LB -> 0 | LH -> 1 | LW -> 2 | LBU -> 3 | LHU -> 4
let swidth_index = function SB -> 0 | SH -> 1 | SW -> 2

let bcond_index = function
  | BEQ -> 0 | BNE -> 1 | BLT -> 2 | BGE -> 3 | BLTU -> 4 | BGEU -> 5

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( <<< ) = Int32.shift_left
let ( ||| ) = Int32.logor
let i32 = Int32.of_int

let mask_imm12 imm = i32 (imm land 0xFFF)

let rop_funct = function
  | ADD -> (0, 0x00) | SUB -> (0, 0x20) | SLL -> (1, 0x00) | SLT -> (2, 0x00)
  | SLTU -> (3, 0x00) | XOR -> (4, 0x00) | SRL -> (5, 0x00) | SRA -> (5, 0x20)
  | OR -> (6, 0x00) | AND -> (7, 0x00)
  | MUL -> (0, 0x01) | MULH -> (1, 0x01) | MULHSU -> (2, 0x01)
  | MULHU -> (3, 0x01) | DIV -> (4, 0x01) | DIVU -> (5, 0x01)
  | REM -> (6, 0x01) | REMU -> (7, 0x01)

let iop_funct = function
  | ADDI -> 0 | SLTI -> 2 | SLTIU -> 3 | XORI -> 4 | ORI -> 6 | ANDI -> 7
  | SLLI -> 1 | SRLI -> 5 | SRAI -> 5

let lwidth_funct = function LB -> 0 | LH -> 1 | LW -> 2 | LBU -> 4 | LHU -> 5
let swidth_funct = function SB -> 0 | SH -> 1 | SW -> 2
let bcond_funct = function
  | BEQ -> 0 | BNE -> 1 | BLT -> 4 | BGE -> 5 | BLTU -> 6 | BGEU -> 7

let encode (ins : t) : int32 =
  match ins with
  | Lui (rd, imm) -> Int32.logand imm 0xFFFFF000l ||| (i32 rd <<< 7) ||| 0x37l
  | Auipc (rd, imm) -> Int32.logand imm 0xFFFFF000l ||| (i32 rd <<< 7) ||| 0x17l
  | Jal (rd, off) ->
    let imm20 = (off lsr 20) land 1 in
    let imm10_1 = (off lsr 1) land 0x3FF in
    let imm11 = (off lsr 11) land 1 in
    let imm19_12 = (off lsr 12) land 0xFF in
    (i32 imm20 <<< 31) ||| (i32 imm10_1 <<< 21) ||| (i32 imm11 <<< 20)
    ||| (i32 imm19_12 <<< 12) ||| (i32 rd <<< 7) ||| 0x6Fl
  | Jalr (rd, rs1, imm) ->
    (mask_imm12 imm <<< 20) ||| (i32 rs1 <<< 15) ||| (i32 rd <<< 7) ||| 0x67l
  | Branch (c, rs1, rs2, off) ->
    let imm12 = (off lsr 12) land 1 in
    let imm10_5 = (off lsr 5) land 0x3F in
    let imm4_1 = (off lsr 1) land 0xF in
    let imm11 = (off lsr 11) land 1 in
    (i32 imm12 <<< 31) ||| (i32 imm10_5 <<< 25) ||| (i32 rs2 <<< 20)
    ||| (i32 rs1 <<< 15) ||| (i32 (bcond_funct c) <<< 12)
    ||| (i32 imm4_1 <<< 8) ||| (i32 imm11 <<< 7) ||| 0x63l
  | Load (w, rd, rs1, imm) ->
    (mask_imm12 imm <<< 20) ||| (i32 rs1 <<< 15)
    ||| (i32 (lwidth_funct w) <<< 12) ||| (i32 rd <<< 7) ||| 0x03l
  | Store (w, rs2, rs1, imm) ->
    let imm11_5 = (imm lsr 5) land 0x7F in
    let imm4_0 = imm land 0x1F in
    (i32 imm11_5 <<< 25) ||| (i32 rs2 <<< 20) ||| (i32 rs1 <<< 15)
    ||| (i32 (swidth_funct w) <<< 12) ||| (i32 imm4_0 <<< 7) ||| 0x23l
  | Op (op, rd, rs1, rs2) ->
    let funct3, funct7 = rop_funct op in
    (i32 funct7 <<< 25) ||| (i32 rs2 <<< 20) ||| (i32 rs1 <<< 15)
    ||| (i32 funct3 <<< 12) ||| (i32 rd <<< 7) ||| 0x33l
  | Opi (op, rd, rs1, imm) ->
    let funct3 = iop_funct op in
    let imm =
      match op with
      | SLLI | SRLI -> imm land 0x1F
      | SRAI -> (imm land 0x1F) lor 0x400
      | _ -> imm
    in
    (mask_imm12 imm <<< 20) ||| (i32 rs1 <<< 15) ||| (i32 funct3 <<< 12)
    ||| (i32 rd <<< 7) ||| 0x13l
  | Ecall -> 0x73l

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Decode_error of int32

let bits w hi lo =
  Int32.to_int (Int32.logand (Int32.shift_right_logical w lo)
                  (Int32.of_int ((1 lsl (hi - lo + 1)) - 1)))

let sext v width = (v lxor (1 lsl (width - 1))) - (1 lsl (width - 1))

let decode (w : int32) : t =
  let opcode = bits w 6 0 in
  let rd = bits w 11 7 in
  let rs1 = bits w 19 15 in
  let rs2 = bits w 24 20 in
  let funct3 = bits w 14 12 in
  let funct7 = bits w 31 25 in
  match opcode with
  | 0x37 -> Lui (rd, Int32.logand w 0xFFFFF000l)
  | 0x17 -> Auipc (rd, Int32.logand w 0xFFFFF000l)
  | 0x6F ->
    let off =
      (bits w 31 31 lsl 20) lor (bits w 19 12 lsl 12) lor (bits w 20 20 lsl 11)
      lor (bits w 30 21 lsl 1)
    in
    Jal (rd, sext off 21)
  | 0x67 -> Jalr (rd, rs1, sext (bits w 31 20) 12)
  | 0x63 ->
    let off =
      (bits w 31 31 lsl 12) lor (bits w 7 7 lsl 11) lor (bits w 30 25 lsl 5)
      lor (bits w 11 8 lsl 1)
    in
    let c =
      match funct3 with
      | 0 -> BEQ | 1 -> BNE | 4 -> BLT | 5 -> BGE | 6 -> BLTU | 7 -> BGEU
      | _ -> raise (Decode_error w)
    in
    Branch (c, rs1, rs2, sext off 13)
  | 0x03 ->
    let wd =
      match funct3 with
      | 0 -> LB | 1 -> LH | 2 -> LW | 4 -> LBU | 5 -> LHU
      | _ -> raise (Decode_error w)
    in
    Load (wd, rd, rs1, sext (bits w 31 20) 12)
  | 0x23 ->
    let wd = match funct3 with 0 -> SB | 1 -> SH | 2 -> SW | _ -> raise (Decode_error w) in
    Store (wd, rs2, rs1, sext ((bits w 31 25 lsl 5) lor bits w 11 7) 12)
  | 0x33 ->
    let op =
      match (funct3, funct7) with
      | 0, 0x00 -> ADD | 0, 0x20 -> SUB | 1, 0x00 -> SLL | 2, 0x00 -> SLT
      | 3, 0x00 -> SLTU | 4, 0x00 -> XOR | 5, 0x00 -> SRL | 5, 0x20 -> SRA
      | 6, 0x00 -> OR | 7, 0x00 -> AND
      | 0, 0x01 -> MUL | 1, 0x01 -> MULH | 2, 0x01 -> MULHSU | 3, 0x01 -> MULHU
      | 4, 0x01 -> DIV | 5, 0x01 -> DIVU | 6, 0x01 -> REM | 7, 0x01 -> REMU
      | _ -> raise (Decode_error w)
    in
    Op (op, rd, rs1, rs2)
  | 0x13 ->
    let imm = sext (bits w 31 20) 12 in
    let op =
      match funct3 with
      | 0 -> ADDI | 2 -> SLTI | 3 -> SLTIU | 4 -> XORI | 6 -> ORI | 7 -> ANDI
      | 1 -> SLLI
      | 5 -> if funct7 land 0x20 <> 0 then SRAI else SRLI
      | _ -> raise (Decode_error w)
    in
    let imm = match op with SLLI | SRLI | SRAI -> rs2 | _ -> imm in
    Opi (op, rd, rs1, imm)
  | 0x73 -> Ecall
  | _ -> raise (Decode_error w)

(* ------------------------------------------------------------------ *)
(* Pretty printing (assembly listings)                                 *)
(* ------------------------------------------------------------------ *)

let rop_name = function
  | ADD -> "add" | SUB -> "sub" | SLL -> "sll" | SLT -> "slt" | SLTU -> "sltu"
  | XOR -> "xor" | SRL -> "srl" | SRA -> "sra" | OR -> "or" | AND -> "and"
  | MUL -> "mul" | MULH -> "mulh" | MULHSU -> "mulhsu" | MULHU -> "mulhu"
  | DIV -> "div" | DIVU -> "divu" | REM -> "rem" | REMU -> "remu"

let iop_name = function
  | ADDI -> "addi" | SLTI -> "slti" | SLTIU -> "sltiu" | XORI -> "xori"
  | ORI -> "ori" | ANDI -> "andi" | SLLI -> "slli" | SRLI -> "srli"
  | SRAI -> "srai"

let to_string (ins : t) =
  match ins with
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%lx" (reg_name rd) (Int32.shift_right_logical imm 12)
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%lx" (reg_name rd) (Int32.shift_right_logical imm 12)
  | Jal (rd, off) -> Printf.sprintf "jal %s, %d" (reg_name rd) off
  | Jalr (rd, rs1, imm) -> Printf.sprintf "jalr %s, %d(%s)" (reg_name rd) imm (reg_name rs1)
  | Branch (c, rs1, rs2, off) ->
    let n = match c with BEQ -> "beq" | BNE -> "bne" | BLT -> "blt"
                       | BGE -> "bge" | BLTU -> "bltu" | BGEU -> "bgeu" in
    Printf.sprintf "%s %s, %s, %d" n (reg_name rs1) (reg_name rs2) off
  | Load (w, rd, rs1, imm) ->
    let n = match w with LB -> "lb" | LH -> "lh" | LW -> "lw" | LBU -> "lbu" | LHU -> "lhu" in
    Printf.sprintf "%s %s, %d(%s)" n (reg_name rd) imm (reg_name rs1)
  | Store (w, rs2, rs1, imm) ->
    let n = match w with SB -> "sb" | SH -> "sh" | SW -> "sw" in
    Printf.sprintf "%s %s, %d(%s)" n (reg_name rs2) imm (reg_name rs1)
  | Op (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (rop_name op) (reg_name rd) (reg_name rs1) (reg_name rs2)
  | Opi (op, rd, rs1, imm) ->
    Printf.sprintf "%s %s, %s, %d" (iop_name op) (reg_name rd) (reg_name rs1) imm
  | Ecall -> "ecall"
