(** Instruction selection: IR functions to symbolic RV32 assembly over
    virtual registers (ids >= 32; 0..31 are the physical registers).

    The selector is deliberately naive — immediates are rematerialized at
    each use, compare+branch fusion is the only peephole — so that the
    performance effects of the IR-level optimization passes are visible in
    the generated code, as they are with a real -O0-style backend.

    64-bit IR values are expanded to register pairs; 64-bit division and
    variable shifts call the {!Zkopt_runtime} helper functions (which the
    driver links into every module). *)

open Zkopt_ir

exception Unsupported of string

let vreg_base = 32

type ctx = {
  f : Func.t;
  m : Modul.t;
  reg_types : (Value.reg, Ty.t) Hashtbl.t;
  mutable next_vreg : int;
  (* IR register -> machine vreg (lo) and, for I64, hi *)
  lo_of : (Value.reg, int) Hashtbl.t;
  hi_of : (Value.reg, int) Hashtbl.t;
  alloca_off : (Value.reg, int) Hashtbl.t;
  alloca_bytes : int;
  mutable items : Asm.item list;  (* reversed *)
  mutable has_calls : bool;
}

let fresh ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let emit ctx it = ctx.items <- it :: ctx.items

let emit_op ctx op rd rs1 rs2 = emit ctx (Asm.Ins (Isa.Op (op, rd, rs1, rs2)))
let emit_opi ctx op rd rs1 imm = emit ctx (Asm.Ins (Isa.Opi (op, rd, rs1, imm)))
let emit_li ctx rd v = emit ctx (Asm.Li (rd, v))
let emit_mv ctx rd rs = emit_opi ctx Isa.ADDI rd rs 0

let ty_of_reg ctx r =
  match Hashtbl.find_opt ctx.reg_types r with
  | Some t -> t
  | None -> Ty.I32 (* dead register never read; any type will do *)

let lo_vreg ctx r =
  match Hashtbl.find_opt ctx.lo_of r with
  | Some v -> v
  | None ->
    let v = fresh ctx in
    Hashtbl.replace ctx.lo_of r v;
    v

let hi_vreg ctx r =
  match Hashtbl.find_opt ctx.hi_of r with
  | Some v -> v
  | None ->
    let v = fresh ctx in
    Hashtbl.replace ctx.hi_of r v;
    v

(* Materialize a 32-bit value into a vreg. *)
let val32 ctx (v : Value.t) : int =
  match v with
  | Value.Reg r -> lo_vreg ctx r
  | Imm i ->
    let t = fresh ctx in
    emit_li ctx t (Int64.to_int32 i);
    t
  | Glob g ->
    let t = fresh ctx in
    emit ctx (Asm.La (t, g));
    t

(* Materialize a 64-bit value into a (lo, hi) vreg pair. *)
let val64 ctx (v : Value.t) : int * int =
  match v with
  | Value.Reg r -> (lo_vreg ctx r, hi_vreg ctx r)
  | Imm i ->
    let lo = fresh ctx and hi = fresh ctx in
    emit_li ctx lo (Int64.to_int32 i);
    emit_li ctx hi (Int64.to_int32 (Int64.shift_right_logical i 32));
    (lo, hi)
  | Glob _ -> raise (Unsupported "global address as i64")

let imm_of = function Value.Imm i -> Some (Int64.to_int i) | _ -> None

(* ------------------------------------------------------------------ *)
(* 32-bit operations                                                   *)
(* ------------------------------------------------------------------ *)

let bin32 ctx (op : Instr.binop) dst a b =
  let simple_iop =
    (* ops with an I-type form usable when b is a small immediate *)
    match op with
    | Instr.Add -> Some Isa.ADDI
    | And -> Some Isa.ANDI
    | Or -> Some Isa.ORI
    | Xor -> Some Isa.XORI
    | _ -> None
  in
  match (simple_iop, imm_of b) with
  | Some iop, Some i when Asm.fits_imm12 i ->
    let ra = val32 ctx a in
    emit_opi ctx iop dst ra i
  | _ -> begin
    match (op, imm_of b) with
    | Instr.Shl, Some i -> emit_opi ctx Isa.SLLI dst (val32 ctx a) (i land 31)
    | Lshr, Some i -> emit_opi ctx Isa.SRLI dst (val32 ctx a) (i land 31)
    | Ashr, Some i -> emit_opi ctx Isa.SRAI dst (val32 ctx a) (i land 31)
    | Sub, Some i when Asm.fits_imm12 (-i) ->
      emit_opi ctx Isa.ADDI dst (val32 ctx a) (-i)
    | _ ->
      let ra = val32 ctx a in
      let rb = val32 ctx b in
      let rop =
        match op with
        | Instr.Add -> Isa.ADD | Sub -> SUB | Mul -> MUL | Mulhu -> MULHU
        | Div -> DIV
        | Rem -> REM | Udiv -> DIVU | Urem -> REMU | And -> AND | Or -> OR
        | Xor -> XOR | Shl -> SLL | Lshr -> SRL | Ashr -> SRA
      in
      emit_op ctx rop dst ra rb
  end

let cmp32_into ctx (op : Instr.cmpop) dst ra rb =
  match op with
  | Instr.Eq ->
    emit_op ctx Isa.XOR dst ra rb;
    emit_opi ctx Isa.SLTIU dst dst 1
  | Ne ->
    emit_op ctx Isa.XOR dst ra rb;
    emit_op ctx Isa.SLTU dst Isa.zero dst
  | Slt -> emit_op ctx Isa.SLT dst ra rb
  | Ult -> emit_op ctx Isa.SLTU dst ra rb
  | Sgt -> emit_op ctx Isa.SLT dst rb ra
  | Ugt -> emit_op ctx Isa.SLTU dst rb ra
  | Sle ->
    emit_op ctx Isa.SLT dst rb ra;
    emit_opi ctx Isa.XORI dst dst 1
  | Ule ->
    emit_op ctx Isa.SLTU dst rb ra;
    emit_opi ctx Isa.XORI dst dst 1
  | Sge ->
    emit_op ctx Isa.SLT dst ra rb;
    emit_opi ctx Isa.XORI dst dst 1
  | Uge ->
    emit_op ctx Isa.SLTU dst ra rb;
    emit_opi ctx Isa.XORI dst dst 1

(* ------------------------------------------------------------------ *)
(* 64-bit operations                                                   *)
(* ------------------------------------------------------------------ *)

let bin64 ctx (op : Instr.binop) (dlo, dhi) a b =
  let runtime_call name =
    let alo, ahi = val64 ctx a in
    let blo, bhi = val64 ctx b in
    emit_mv ctx 10 alo; emit_mv ctx 11 ahi;
    emit_mv ctx 12 blo; emit_mv ctx 13 bhi;
    emit ctx (Asm.CallSym name);
    ctx.has_calls <- true;
    emit_mv ctx dlo 10;
    emit_mv ctx dhi 11
  in
  match op with
  | Instr.Add ->
    let alo, ahi = val64 ctx a in
    let blo, bhi = val64 ctx b in
    let carry = fresh ctx in
    (* dlo may alias alo/blo through register coalescing of IR movs; use a
       temp for the low word before the carry is computed from it *)
    let tlo = fresh ctx in
    emit_op ctx Isa.ADD tlo alo blo;
    emit_op ctx Isa.SLTU carry tlo alo;
    emit_op ctx Isa.ADD dhi ahi bhi;
    emit_op ctx Isa.ADD dhi dhi carry;
    emit_mv ctx dlo tlo
  | Sub ->
    let alo, ahi = val64 ctx a in
    let blo, bhi = val64 ctx b in
    let borrow = fresh ctx in
    emit_op ctx Isa.SLTU borrow alo blo;
    let tlo = fresh ctx in
    emit_op ctx Isa.SUB tlo alo blo;
    emit_op ctx Isa.SUB dhi ahi bhi;
    emit_op ctx Isa.SUB dhi dhi borrow;
    emit_mv ctx dlo tlo
  | Mul ->
    let alo, ahi = val64 ctx a in
    let blo, bhi = val64 ctx b in
    let t1 = fresh ctx and t2 = fresh ctx and thi = fresh ctx in
    emit_op ctx Isa.MULHU thi alo blo;
    emit_op ctx Isa.MUL t1 alo bhi;
    emit_op ctx Isa.ADD thi thi t1;
    emit_op ctx Isa.MUL t2 ahi blo;
    emit_op ctx Isa.ADD thi thi t2;
    emit_op ctx Isa.MUL dlo alo blo;
    emit_mv ctx dhi thi
  | And | Or | Xor ->
    let alo, ahi = val64 ctx a in
    let blo, bhi = val64 ctx b in
    let rop = match op with Instr.And -> Isa.AND | Or -> OR | _ -> XOR in
    emit_op ctx rop dlo alo blo;
    emit_op ctx rop dhi ahi bhi
  | Mulhu -> raise (Unsupported "i64 mulhu (use i32 or widen explicitly)")
  | Div -> runtime_call "__divdi3"
  | Rem -> runtime_call "__moddi3"
  | Udiv -> runtime_call "__udivdi3"
  | Urem -> runtime_call "__umoddi3"
  | Shl | Lshr | Ashr -> begin
    match imm_of b with
    | Some c ->
      let c = c land 63 in
      let alo, ahi = val64 ctx a in
      if c = 0 then begin
        emit_mv ctx dlo alo;
        emit_mv ctx dhi ahi
      end
      else if c < 32 then begin
        match op with
        | Instr.Shl ->
          let t = fresh ctx in
          emit_opi ctx Isa.SRLI t alo (32 - c);
          emit_opi ctx Isa.SLLI dhi ahi c;
          emit_op ctx Isa.OR dhi dhi t;
          emit_opi ctx Isa.SLLI dlo alo c
        | Lshr | Ashr ->
          let t = fresh ctx in
          emit_opi ctx Isa.SLLI t ahi (32 - c);
          emit_opi ctx Isa.SRLI dlo alo c;
          emit_op ctx Isa.OR dlo dlo t;
          emit_opi ctx (if op = Instr.Lshr then Isa.SRLI else Isa.SRAI) dhi ahi c
        | _ -> assert false
      end
      else begin
        match op with
        | Instr.Shl ->
          emit_opi ctx Isa.SLLI dhi alo (c - 32);
          emit_li ctx dlo 0l
        | Lshr ->
          emit_opi ctx Isa.SRLI dlo ahi (c - 32);
          emit_li ctx dhi 0l
        | Ashr ->
          emit_opi ctx Isa.SRAI dlo ahi (c - 32);
          emit_opi ctx Isa.SRAI dhi ahi 31
        | _ -> assert false
      end
    | None ->
      let name =
        match op with
        | Instr.Shl -> "__ashldi3"
        | Lshr -> "__lshrdi3"
        | _ -> "__ashrdi3"
      in
      runtime_call name
  end

let cmp64 ctx (op : Instr.cmpop) dst a b =
  let alo, ahi = val64 ctx a in
  let blo, bhi = val64 ctx b in
  match op with
  | Instr.Eq | Ne ->
    let t1 = fresh ctx and t2 = fresh ctx in
    emit_op ctx Isa.XOR t1 alo blo;
    emit_op ctx Isa.XOR t2 ahi bhi;
    emit_op ctx Isa.OR t1 t1 t2;
    if op = Instr.Eq then emit_opi ctx Isa.SLTIU dst t1 1
    else emit_op ctx Isa.SLTU dst Isa.zero t1
  | _ ->
    (* lexicographic: high word signed/unsigned per op, low word unsigned *)
    let swap, strict, hi_signed =
      match op with
      | Instr.Slt -> (false, true, true)
      | Ult -> (false, true, false)
      | Sgt -> (true, true, true)
      | Ugt -> (true, true, false)
      | Sle -> (true, false, true)    (* a <= b  ==  not (b < a) *)
      | Ule -> (true, false, false)
      | Sge -> (false, false, true)   (* a >= b  ==  not (a < b) *)
      | Uge -> (false, false, false)
      | Eq | Ne -> assert false
    in
    let alo, ahi, blo, bhi =
      if swap then (blo, bhi, alo, ahi) else (alo, ahi, blo, bhi)
    in
    let lt_hi = fresh ctx and eq_hi = fresh ctx and lt_lo = fresh ctx in
    emit_op ctx (if hi_signed then Isa.SLT else Isa.SLTU) lt_hi ahi bhi;
    emit_op ctx Isa.XOR eq_hi ahi bhi;
    emit_opi ctx Isa.SLTIU eq_hi eq_hi 1;
    emit_op ctx Isa.SLTU lt_lo alo blo;
    (* result = lt_hi | (eq_hi & lt_lo) *)
    emit_op ctx Isa.AND eq_hi eq_hi lt_lo;
    emit_op ctx Isa.OR dst lt_hi eq_hi;
    if not strict then emit_opi ctx Isa.XORI dst dst 1

(* Branchless select via mask = 0 - (cond != 0); the normalization keeps
   the lowering correct for any condition value, matching the IR's
   "nonzero is true" semantics. *)
let select32 ctx dst cond t f =
  let mask = fresh ctx and nmask = fresh ctx and tv = fresh ctx in
  let norm = fresh ctx in
  emit_op ctx Isa.SLTU norm Isa.zero cond;
  let cond = norm in
  emit_op ctx Isa.SUB mask Isa.zero cond;
  emit_opi ctx Isa.XORI nmask mask (-1);
  emit_op ctx Isa.AND tv t mask;
  emit_op ctx Isa.AND nmask f nmask;
  emit_op ctx Isa.OR dst tv nmask

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let move_args ctx args param_tys =
  (* scalars and i64 pairs packed into a0.. in order; assert <= 8 words *)
  let moves = ref [] in
  let word = ref 0 in
  List.iter2
    (fun v ty ->
      match (ty : Ty.t) with
      | Ty.I32 | Ptr ->
        let r = val32 ctx v in
        moves := (10 + !word, r) :: !moves;
        incr word
      | I64 ->
        let lo, hi = val64 ctx v in
        moves := (10 + !word + 1, hi) :: (10 + !word, lo) :: !moves;
        word := !word + 2)
    args param_tys;
  if !word > 8 then raise (Unsupported "more than 8 argument words");
  (* all sources are vregs; emit moves after evaluation so argument
     evaluation cannot clobber already-placed a-registers *)
  List.iter (fun (dst, src) -> emit_mv ctx dst src) (List.rev !moves)

let sel_instr ctx (i : Instr.t) =
  match i with
  | Instr.Bin { dst; ty; op; a; b } -> begin
    match ty with
    | Ty.I32 | Ptr -> bin32 ctx op (lo_vreg ctx dst) a b
    | I64 -> bin64 ctx op (lo_vreg ctx dst, hi_vreg ctx dst) a b
  end
  | Cmp { dst; ty; op; a; b } -> begin
    match ty with
    | Ty.I32 | Ptr ->
      let ra = val32 ctx a in
      let rb = val32 ctx b in
      cmp32_into ctx op (lo_vreg ctx dst) ra rb
    | I64 -> cmp64 ctx op (lo_vreg ctx dst) a b
  end
  | Select { dst; ty; cond; if_true; if_false } -> begin
    let c = val32 ctx cond in
    match ty with
    | Ty.I32 | Ptr ->
      let t = val32 ctx if_true and f = val32 ctx if_false in
      select32 ctx (lo_vreg ctx dst) c t f
    | I64 ->
      let tlo, thi = val64 ctx if_true in
      let flo, fhi = val64 ctx if_false in
      select32 ctx (lo_vreg ctx dst) c tlo flo;
      select32 ctx (hi_vreg ctx dst) c thi fhi
  end
  | Mov { dst; ty; src } -> begin
    match ty with
    | Ty.I32 | Ptr ->
      let s = val32 ctx src in
      emit_mv ctx (lo_vreg ctx dst) s
    | I64 ->
      let lo, hi = val64 ctx src in
      emit_mv ctx (lo_vreg ctx dst) lo;
      emit_mv ctx (hi_vreg ctx dst) hi
  end
  | Cast { dst; op; src } -> begin
    match op with
    | Instr.Zext ->
      let s = val32 ctx src in
      emit_mv ctx (lo_vreg ctx dst) s;
      emit_li ctx (hi_vreg ctx dst) 0l
    | Sext ->
      let s = val32 ctx src in
      emit_mv ctx (lo_vreg ctx dst) s;
      emit_opi ctx Isa.SRAI (hi_vreg ctx dst) s 31
    | Trunc ->
      let lo, _hi = val64 ctx src in
      emit_mv ctx (lo_vreg ctx dst) lo
  end
  | Load { dst; ty; addr } -> begin
    let base = val32 ctx addr in
    match ty with
    | Ty.I32 | Ptr -> emit ctx (Asm.Ins (Isa.Load (Isa.LW, lo_vreg ctx dst, base, 0)))
    | I64 ->
      emit ctx (Asm.Ins (Isa.Load (Isa.LW, lo_vreg ctx dst, base, 0)));
      emit ctx (Asm.Ins (Isa.Load (Isa.LW, hi_vreg ctx dst, base, 4)))
  end
  | Store { ty; addr; src } -> begin
    let base = val32 ctx addr in
    match ty with
    | Ty.I32 | Ptr ->
      let s = val32 ctx src in
      emit ctx (Asm.Ins (Isa.Store (Isa.SW, s, base, 0)))
    | I64 ->
      let lo, hi = val64 ctx src in
      emit ctx (Asm.Ins (Isa.Store (Isa.SW, lo, base, 0)));
      emit ctx (Asm.Ins (Isa.Store (Isa.SW, hi, base, 4)))
  end
  | Addr { dst; base; index; scale; offset } -> begin
    let d = lo_vreg ctx dst in
    let rb = val32 ctx base in
    let with_index =
      match (imm_of index, scale) with
      | Some 0, _ | _, 0 -> rb
      | Some i, s ->
        let t = fresh ctx in
        let disp = i * s in
        if Asm.fits_imm12 disp then emit_opi ctx Isa.ADDI t rb disp
        else begin
          let c = fresh ctx in
          emit_li ctx c (Int32.of_int disp);
          emit_op ctx Isa.ADD t rb c
        end;
        t
      | None, s ->
        let ri = val32 ctx index in
        let scaled =
          if s = 1 then ri
          else if s land (s - 1) = 0 then begin
            let t = fresh ctx in
            let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
            emit_opi ctx Isa.SLLI t ri (log2 s);
            t
          end
          else begin
            let c = fresh ctx and t = fresh ctx in
            emit_li ctx c (Int32.of_int s);
            emit_op ctx Isa.MUL t ri c;
            t
          end
        in
        let t = fresh ctx in
        emit_op ctx Isa.ADD t rb scaled;
        t
    in
    if offset = 0 then emit_mv ctx d with_index
    else if Asm.fits_imm12 offset then emit_opi ctx Isa.ADDI d with_index offset
    else begin
      let c = fresh ctx in
      emit_li ctx c (Int32.of_int offset);
      emit_op ctx Isa.ADD d with_index c
    end
  end
  | Alloca { dst; _ } ->
    let off = Hashtbl.find ctx.alloca_off dst in
    emit_opi ctx Isa.ADDI (lo_vreg ctx dst) Isa.sp off
  | Call { dst; callee; args } -> begin
    let callee_f = Modul.find_func_exn ctx.m callee in
    move_args ctx args (List.map snd callee_f.Func.params);
    emit ctx (Asm.CallSym callee);
    ctx.has_calls <- true;
    match (dst, callee_f.ret) with
    | Some d, Some Ty.I64 ->
      emit_mv ctx (lo_vreg ctx d) 10;
      emit_mv ctx (hi_vreg ctx d) 11
    | Some d, Some (Ty.I32 | Ptr) -> emit_mv ctx (lo_vreg ctx d) 10
    | Some _, None -> raise (Unsupported "binding void call")
    | None, _ -> ()
  end
  | Precompile { dst; name; args } -> begin
    let arg_regs = List.map (val32 ctx) args in
    List.iteri (fun i r -> emit_mv ctx (10 + i) r) arg_regs;
    emit_li ctx 17 (Int32.of_int (Emulator.precompile_syscall_id name));
    emit ctx (Asm.Ins Isa.Ecall);
    Option.iter (fun d -> emit_mv ctx (lo_vreg ctx d) 10) dst
  end

let ty_of_value ctx = function
  | Value.Reg r -> ty_of_reg ctx r
  | Value.Imm _ -> Ty.I32
  | Value.Glob _ -> Ty.Ptr

(* compare-and-branch fusion: when the condition is an [Instr.Cmp] defined
   as the last instruction of the same block with its only use in the
   terminator, branch directly on the comparison. *)
let sel_term ctx (b : Block.t) ~(use_counts : (Value.reg, int) Hashtbl.t)
    ~exit_label =
  let lbl l = l in
  match b.Block.term with
  | Instr.Ret None -> emit ctx (Asm.J exit_label)
  | Ret (Some v) -> begin
    (* the move is dictated by the declared return type, not by the
       operand's shape (an immediate can be returned from an i64 function) *)
    (match Option.value ~default:(ty_of_value ctx v) ctx.f.Func.ret with
    | Ty.I64 ->
      let lo, hi = val64 ctx v in
      emit_mv ctx 10 lo;
      emit_mv ctx 11 hi
    | I32 | Ptr ->
      let r = val32 ctx v in
      emit_mv ctx 10 r);
    emit ctx (Asm.J exit_label)
  end
  | Br l -> emit ctx (Asm.J (lbl l))
  | Cbr { cond; if_true; if_false } -> begin
    let fused =
      match (cond, List.rev b.Block.instrs) with
      | Value.Reg c, Instr.Cmp { dst; ty = Ty.I32 | Ptr; op; a; b = bb } :: _
        when dst = c && Hashtbl.find_opt use_counts c = Some 1 -> Some (op, a, bb)
      | _ -> None
    in
    match fused with
    | Some (op, a, bb) ->
      let ra = val32 ctx a in
      let rb = val32 ctx bb in
      let bc, ra, rb =
        match op with
        | Instr.Eq -> (Isa.BEQ, ra, rb)
        | Ne -> (Isa.BNE, ra, rb)
        | Slt -> (Isa.BLT, ra, rb)
        | Ult -> (Isa.BLTU, ra, rb)
        | Sge -> (Isa.BGE, ra, rb)
        | Uge -> (Isa.BGEU, ra, rb)
        | Sgt -> (Isa.BLT, rb, ra)
        | Ugt -> (Isa.BLTU, rb, ra)
        | Sle -> (Isa.BGE, rb, ra)
        | Ule -> (Isa.BGEU, rb, ra)
      in
      emit ctx (Asm.Bc (bc, ra, rb, lbl if_true));
      emit ctx (Asm.J (lbl if_false))
    | None ->
      let c = val32 ctx cond in
      emit ctx (Asm.Bc (Isa.BNE, c, Isa.zero, lbl if_true));
      emit ctx (Asm.J (lbl if_false))
  end

(* The fused Cmp is still emitted by sel_instr (its result may be unused
   after fusion but DCE at the machine level is out of scope); to avoid
   the duplicate we skip the trailing Cmp during block emission when it
   will be fused.  [instrs_to_emit] performs that check. *)
let instrs_to_emit (b : Block.t) ~(use_counts : (Value.reg, int) Hashtbl.t) =
  match (b.Block.term, List.rev b.Block.instrs) with
  | ( Instr.Cbr { cond = Value.Reg c; _ },
      Instr.Cmp { dst; ty = Ty.I32 | Ptr; _ } :: rest )
    when dst = c && Hashtbl.find_opt use_counts c = Some 1 ->
    List.rev rest
  | _ -> b.Block.instrs

type output = {
  items : Asm.item list;
  next_vreg : int;
  alloca_bytes : int;
  has_calls : bool;
}

(** Select one function.  Output still contains virtual registers. *)
let select (m : Modul.t) (f : Func.t) : output =
  (* assign alloca slots (bottom of the frame, sp+0 upward) *)
  let alloca_off = Hashtbl.create 4 in
  let alloca_bytes = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Alloca { dst; size } ->
        if not (Hashtbl.mem alloca_off dst) then begin
          Hashtbl.replace alloca_off dst !alloca_bytes;
          alloca_bytes := !alloca_bytes + Zkopt_ir.Layout.align_up size 8
        end
      | _ -> ());
  let ctx =
    {
      f;
      m;
      reg_types = Modul.reg_types m f;
      next_vreg = vreg_base;
      lo_of = Hashtbl.create 64;
      hi_of = Hashtbl.create 64;
      alloca_off;
      alloca_bytes = !alloca_bytes;
      items = [];
      has_calls = false;
    }
  in
  let use_counts = Zkopt_analysis.Defs.use_counts f in
  let exit_label = "__exit" in
  (* parameter intake from a0.., attributed to the entry block *)
  (match f.Func.blocks with
  | b :: _ -> emit ctx (Asm.Loc b.Block.label)
  | [] -> ());
  let word = ref 0 in
  List.iter
    (fun (r, ty) ->
      match (ty : Ty.t) with
      | Ty.I32 | Ptr ->
        emit_mv ctx (lo_vreg ctx r) (10 + !word);
        incr word
      | I64 ->
        emit_mv ctx (lo_vreg ctx r) (10 + !word);
        emit_mv ctx (hi_vreg ctx r) (10 + !word + 1);
        word := !word + 2)
    f.Func.params;
  if !word > 8 then raise (Unsupported "more than 8 parameter words");
  (* blocks in layout order; entry first.  Block labels are function-local. *)
  List.iter
    (fun (b : Block.t) ->
      emit ctx (Asm.Label b.Block.label);
      emit ctx (Asm.Loc b.Block.label);
      List.iter (sel_instr ctx) (instrs_to_emit b ~use_counts);
      sel_term ctx b ~use_counts ~exit_label)
    f.Func.blocks;
  emit ctx (Asm.Label exit_label);
  (* fallthrough elision: an unconditional jump to the label that
     immediately follows it is dropped, so block layout affects the
     dynamic instruction count as it does in real backends *)
  let rec elide = function
    | Asm.J l :: (Asm.Label l' :: _ as rest) when String.equal l l' -> elide rest
    | it :: rest -> it :: elide rest
    | [] -> []
  in
  {
    items = elide (List.rev ctx.items);
    next_vreg = ctx.next_vreg;
    alloca_bytes = ctx.alloca_bytes;
    has_calls = ctx.has_calls;
  }
