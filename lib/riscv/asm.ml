(** Symbolic RV32 assembly and the assembler.

    The code generator emits [item] lists with labels and pseudo
    instructions; the assembler lays out all functions, resolves symbols,
    relaxes out-of-range conditional branches (inverted branch over a
    [jal]) and produces a flat instruction image at {!Zkopt_ir.Layout.code_base}. *)

type item =
  | Label of string
  | Ins of Isa.t                      (* no unresolved references *)
  | Li of Isa.reg * int32             (* load 32-bit immediate *)
  | La of Isa.reg * string            (* load address of global/function *)
  | J of string                       (* jal x0, label *)
  | Bc of Isa.bcond * Isa.reg * Isa.reg * string
  | CallSym of string                 (* jal ra, symbol *)
  | Ret                               (* jalr x0, 0(ra) *)
  | Loc of string
      (* provenance marker: instructions that follow originate from this
         IR block (the enclosing function is the unit name).  Occupies no
         code space; the assembler folds the markers into the program's
         [srcmap] so cycle attribution can symbolize any pc. *)

type unit_ = {
  name : string;          (* function symbol *)
  items : item list;
}

type program = {
  code : Isa.t array;                   (* the final image, word-indexed *)
  base : int32;                         (* address of code.(0) *)
  symbols : (string, int32) Hashtbl.t;  (* function + global addresses *)
  data_end : int32;
  srcmap : (string * string) array;
      (* (function, IR block) provenance of code.(i); "" block means the
         unit carried no markers (hand-written assembly) *)
}

let fits_imm12 (v : int) = v >= -2048 && v <= 2047

let fits_imm12_32 (v : int32) =
  Int32.compare v (-2048l) >= 0 && Int32.compare v 2047l <= 0

(* Split a 32-bit constant into %hi/%lo parts such that
   (hi << 12) + sext(lo) = v, the standard lui+addi idiom. *)
let hi_lo (v : int32) =
  let lo = Int32.to_int (Int32.logand v 0xFFFl) in
  let lo = if lo >= 2048 then lo - 4096 else lo in
  let hi = Int32.sub v (Int32.of_int lo) in
  (hi, lo)

let expand_li rd (v : int32) =
  if fits_imm12_32 v then [ Isa.Opi (Isa.ADDI, rd, Isa.zero, Int32.to_int v) ]
  else
    let hi, lo = hi_lo v in
    if lo = 0 then [ Isa.Lui (rd, hi) ]
    else [ Isa.Lui (rd, hi); Isa.Opi (Isa.ADDI, rd, rd, lo) ]

(* Number of instruction words an item occupies.  [relaxed] marks Bc items
   (by identity index) that need the long form. *)
let item_size ~relaxed idx = function
  | Label _ | Loc _ -> 0
  | Ins _ | J _ | CallSym _ | Ret -> 1
  | Li (_, v) -> List.length (expand_li 0 v)
  | La _ -> 2
  | Bc _ -> if Hashtbl.mem relaxed idx then 2 else 1

let invert_bcond = function
  | Isa.BEQ -> Isa.BNE | BNE -> BEQ | BLT -> BGE | BGE -> BLT
  | BLTU -> BGEU | BGEU -> BLTU

exception Asm_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

(** Assemble all units into a program image.  [globals] is the placed
    global table (from {!Zkopt_ir.Layout.place_globals}). *)
let assemble ~(globals : (string, int32) Hashtbl.t) ~data_end (units : unit_ list) : program =
  let base = Zkopt_ir.Layout.code_base in
  (* Give every item a stable index for relaxation bookkeeping. *)
  let all_items =
    List.concat_map (fun u -> List.map (fun it -> (u.name, it)) u.items) units
  in
  let indexed = List.mapi (fun i (u, it) -> (i, u, it)) all_items in
  let relaxed = Hashtbl.create 16 in
  let symbols = Hashtbl.create 64 in
  Hashtbl.iter (fun k v -> Hashtbl.replace symbols k v) globals;

  (* Layout: compute the address of every item and label; then check
     branch ranges; iterate until no new relaxations appear. *)
  let labels = Hashtbl.create 64 in
  let addr_of_item = Hashtbl.create 256 in
  let layout () =
    Hashtbl.reset labels;
    Hashtbl.reset addr_of_item;
    let pc = ref (Int32.to_int base) in
    List.iter
      (fun (idx, uname, it) ->
        Hashtbl.replace addr_of_item idx !pc;
        (match it with
        | Label l -> Hashtbl.replace labels (uname ^ "$" ^ l) !pc
        | _ -> ());
        pc := !pc + (4 * item_size ~relaxed idx it))
      indexed;
    (* function entry = address of its first item *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (idx, uname, _) ->
        if not (Hashtbl.mem seen uname) then begin
          Hashtbl.replace seen uname ();
          Hashtbl.replace symbols uname (Int32.of_int (Hashtbl.find addr_of_item idx))
        end)
      indexed;
    !pc
  in
  let label_addr uname l =
    match Hashtbl.find_opt labels (uname ^ "$" ^ l) with
    | Some a -> a
    | None -> error "undefined label %s in %s" l uname
  in
  let rec fix () =
    let _end = layout () in
    let grew = ref false in
    List.iter
      (fun (idx, uname, it) ->
        match it with
        | Bc (_, _, _, l) when not (Hashtbl.mem relaxed idx) ->
          let here = Hashtbl.find addr_of_item idx in
          let target = label_addr uname l in
          let off = target - here in
          if not (off >= -4096 && off <= 4094) then begin
            Hashtbl.replace relaxed idx ();
            grew := true
          end
        | _ -> ())
      indexed;
    if !grew then fix ()
  in
  fix ();
  let code_end = layout () in

  (* Emission.  Every emitted word records the (function, block) site the
     last provenance marker named; units without markers map to
     (unit, ""). *)
  let out = ref [] in
  let src = ref [] in
  let cur_unit = ref "" in
  let cur_block = ref "" in
  let emit_at uname i =
    if not (String.equal uname !cur_unit) then begin
      cur_unit := uname;
      cur_block := ""
    end;
    out := i :: !out;
    src := (uname, !cur_block) :: !src
  in
  List.iter
    (fun (idx, uname, it) ->
      let here = Hashtbl.find addr_of_item idx in
      let emit i = emit_at uname i in
      match it with
      | Label _ -> ()
      | Loc b ->
        if not (String.equal uname !cur_unit) then cur_unit := uname;
        cur_block := b
      | Ins i -> emit i
      | Li (rd, v) -> List.iter emit (expand_li rd v)
      | La (rd, sym) -> begin
        match Hashtbl.find_opt symbols sym with
        | None -> error "undefined symbol %s" sym
        | Some a ->
          let hi, lo = hi_lo a in
          emit (Isa.Lui (rd, hi));
          emit (Isa.Opi (Isa.ADDI, rd, rd, lo))
      end
      | J l ->
        let off = label_addr uname l - here in
        if not (off >= -1048576 && off <= 1048574) then
          error "jump out of range in %s" uname;
        emit (Isa.Jal (Isa.zero, off))
      | Bc (c, rs1, rs2, l) ->
        let target = label_addr uname l in
        if Hashtbl.mem relaxed idx then begin
          (* inverted branch over a jal *)
          emit (Isa.Branch (invert_bcond c, rs1, rs2, 8));
          let off = target - (here + 4) in
          emit (Isa.Jal (Isa.zero, off))
        end
        else emit (Isa.Branch (c, rs1, rs2, target - here))
      | CallSym sym -> begin
        match Hashtbl.find_opt symbols sym with
        | None -> error "undefined function %s" sym
        | Some a -> emit (Isa.Jal (Isa.ra, Int32.to_int a - here))
      end
      | Ret -> emit (Isa.Jalr (Isa.zero, Isa.ra, 0)))
    indexed;
  ignore code_end;
  {
    code = Array.of_list (List.rev !out);
    base;
    symbols;
    data_end;
    srcmap = Array.of_list (List.rev !src);
  }

(** Provenance of an instruction address: [(function, block)], or [None]
    outside the code image. *)
let site_of_pc (p : program) (pc : int32) : (string * string) option =
  let idx = Int32.to_int (Int32.sub pc p.base) / 4 in
  if idx >= 0 && idx < Array.length p.srcmap then Some p.srcmap.(idx) else None

(** Assembly listing, for debugging and the manual-unroll experiments. *)
let to_string (u : unit_) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (u.name ^ ":\n");
  List.iter
    (fun it ->
      let line =
        match it with
        | Label l -> l ^ ":"
        | Ins i -> "  " ^ Isa.to_string i
        | Li (rd, v) -> Printf.sprintf "  li %s, %ld" (Isa.reg_name rd) v
        | La (rd, s) -> Printf.sprintf "  la %s, %s" (Isa.reg_name rd) s
        | J l -> "  j " ^ l
        | Bc (c, rs1, rs2, l) ->
          let n = match c with Isa.BEQ -> "beq" | BNE -> "bne" | BLT -> "blt"
                             | BGE -> "bge" | BLTU -> "bltu" | BGEU -> "bgeu" in
          Printf.sprintf "  %s %s, %s, %s" n (Isa.reg_name rs1) (Isa.reg_name rs2) l
        | CallSym s -> "  call " ^ s
        | Ret -> "  ret"
        | Loc b -> Printf.sprintf "  # loc %s" b
      in
      Buffer.add_string buf (line ^ "\n"))
    u.items;
  Buffer.contents buf
