(** Optimization profiles: the 71 configurations of the study — an
    unoptimized baseline, the 64 individual passes, and the six standard
    levels — plus custom sequences (used by the autotuner) and the
    zkVM-aware modified -O3 of §6.1. *)

open Zkopt_passes

type t =
  | Baseline
  | Single_pass of string
  | Level of Catalog.level
  | Custom of string list * Pass.config
  | Tuned of { tname : string; passes : string list }
      (** an autotuner-published pipeline that keeps its given name in
          every report row (a [Custom] sequence names itself after its
          pass list, which is useless for "the tuned profile for npb-sp
          on risc0") *)
  | Zkvm_o3

let name = function
  | Baseline -> "baseline"
  | Single_pass p -> p
  | Level l -> Catalog.level_name l
  | Custom (ps, _) -> "custom:" ^ String.concat "," ps
  | Tuned { tname; _ } -> tname
  | Zkvm_o3 -> "-O3(zkvm)"

(** The paper's 71 profiles. *)
let all_71 =
  (Baseline :: List.map (fun p -> Single_pass p) Catalog.swept_passes)
  @ List.map (fun l -> Level l) Catalog.all_levels

(** Apply a profile to a module in place (callers clone first). *)
let apply (t : t) (m : Zkopt_ir.Modul.t) =
  match t with
  | Baseline -> ()
  | Single_pass p -> ignore (Pass.run_one ~config:Pass.standard_config p m)
  | Level l -> Catalog.run_level l m
  | Custom (ps, config) -> ignore (Pass.run_sequence ~config ps m)
  | Tuned { passes; _ } ->
    ignore (Pass.run_sequence ~config:Pass.standard_config passes m)
  | Zkvm_o3 -> Catalog.run_zkvm_o3 m
