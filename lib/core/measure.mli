(** The measurement pipeline: build -> link runtime -> optimize under a
    profile -> prune -> verify -> compile -> execute on each zkVM cost
    model (and the CPU model for RQ3), collecting the paper's metrics.

    Execution funnels through exactly two raw paths — {!run} (zkVM,
    decoded-stream machine) and {!run_cpu} (CPU timing model) — both
    observed through an optional {!Zkopt_zkvm.Machine.sink}.  Everything
    else here is preparation (IR pipeline, codegen) or metric shaping. *)

open Zkopt_ir

type zk_metrics = {
  vm : string;
  cycles : int;
  exec_time_s : float;
  prove_time_s : float;
  segments : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  loads : int;
  stores : int;
  exit_value : int64;
}

type cpu_metrics = {
  cpu_cycles : float;
  cpu_time_s : float;
  mispredicts : int;
  cache_misses : int;
  cpu_exit_value : int64;
}

type compiled = {
  modul : Modul.t;
  codegen : Zkopt_riscv.Codegen.t;
  static_instrs : int;
}

(** The IR half of {!prepare}: build a fresh module, link the runtime
    (so the whole image is optimized together, like LTO), run the
    profile's pass pipeline, prune unreachable functions, verify.  Split
    out so a compile cache can digest the optimized module before paying
    for code generation. *)
val prepare_ir :
  ?verify:bool -> build:(unit -> Modul.t) -> Profile.t -> Modul.t

(** The codegen half of {!prepare}: lower an already-optimized module to
    an assembled RV32 program plus its static-size stat. *)
val compile_ir : Modul.t -> compiled

(** Materialize a program under a profile.  [build] must return a fresh
    module each call. *)
val prepare :
  ?verify:bool -> build:(unit -> Modul.t) -> Profile.t -> compiled

(** The one raw zkVM measurement path: every caller — summary metrics
    ({!run_zkvm}), harness accounting oracles, backends, the profiler —
    goes through here, differing only in the sink it installs.  Returns
    the full {!Zkopt_zkvm.Vm} result including the per-segment executor
    trace. *)
val run :
  ?fault:Zkopt_zkvm.Executor.fault ->
  ?fuel:int ->
  ?sink:Zkopt_zkvm.Machine.sink ->
  Zkopt_zkvm.Config.t ->
  compiled ->
  Zkopt_zkvm.Vm.metrics

(** The single int32 -> int64 exit-value normalization point: raw RV32
    executors journal a 32-bit word; everything above the backend
    boundary carries the canonical zero-extended int64. *)
val exit64 : int32 -> int64

(** Shape a raw {!Zkopt_zkvm.Vm} result into the paper's metric row. *)
val zk_of_vm : Zkopt_zkvm.Vm.metrics -> zk_metrics

val run_zkvm :
  ?fault:Zkopt_zkvm.Executor.fault ->
  ?fuel:int ->
  Zkopt_zkvm.Config.t ->
  compiled ->
  zk_metrics

(** The RQ3 traditional-CPU contrast model over the same RV32 image. *)
val run_cpu : ?fuel:int -> ?sink:Zkopt_zkvm.Machine.sink -> compiled -> cpu_metrics

(** Convenience: metrics on both zkVMs for one profile. *)
val measure_profile :
  ?fuel:int ->
  build:(unit -> Modul.t) ->
  Profile.t ->
  compiled * zk_metrics * zk_metrics
