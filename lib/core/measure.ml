(** The measurement pipeline: build -> link runtime -> optimize under a
    profile -> prune -> verify -> compile -> execute on each zkVM cost
    model (and the CPU model for RQ3), collecting the paper's metrics. *)

open Zkopt_ir

type zk_metrics = {
  vm : string;
  cycles : int;
  exec_time_s : float;
  prove_time_s : float;
  segments : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  loads : int;
  stores : int;
  exit_value : int64;
}

type cpu_metrics = {
  cpu_cycles : float;
  cpu_time_s : float;
  mispredicts : int;
  cache_misses : int;
  cpu_exit_value : int64;
}

type compiled = {
  modul : Modul.t;
  codegen : Zkopt_riscv.Codegen.t;
  static_instrs : int;
}

(** The IR half of {!prepare}: build a fresh module, link the runtime
    (so the whole image is optimized together, like LTO), run the
    profile's pass pipeline, prune unreachable functions, verify.  Split
    out so a compile cache can digest the optimized module before paying
    for code generation. *)
let prepare_ir ?(verify = true) ~(build : unit -> Modul.t)
    (profile : Profile.t) : Modul.t =
  let m = build () in
  Zkopt_runtime.Runtime.link m;
  Profile.apply profile m;
  ignore (Zkopt_passes.Pass.run_one "globaldce" m);
  if verify then Verify.check m;
  m

(** The codegen half of {!prepare}: lower an already-optimized module to
    an assembled RV32 program plus its static-size stat. *)
let compile_ir (m : Modul.t) : compiled =
  let codegen = Zkopt_riscv.Codegen.compile m in
  let static_instrs =
    List.fold_left
      (fun acc (s : Zkopt_riscv.Codegen.func_stats) ->
        acc + s.Zkopt_riscv.Codegen.instrs)
      0 codegen.Zkopt_riscv.Codegen.stats
  in
  { modul = m; codegen; static_instrs }

(** Materialize a program under a profile.  [build] must return a fresh
    module each call.  Unreachable functions are pruned for every
    profile including the baseline. *)
let prepare ?(verify = true) ~(build : unit -> Modul.t) (profile : Profile.t) :
    compiled =
  compile_ir (prepare_ir ~verify ~build profile)

(** The one raw zkVM measurement path: every caller — summary metrics
    ({!run_zkvm}), harness accounting oracles, backends, the profiler —
    goes through here, differing only in the {!Zkopt_zkvm.Machine.sink}
    it installs.  Returns the full {!Zkopt_zkvm.Vm} result including the
    per-segment executor trace. *)
let run ?fault ?fuel ?sink (cfg : Zkopt_zkvm.Config.t) (c : compiled) :
    Zkopt_zkvm.Vm.metrics =
  Zkopt_zkvm.Vm.measure ?fault ?fuel ?sink cfg c.codegen c.modul

(** The single int32 -> int64 exit-value normalization point.  Raw RV32
    executors journal a 32-bit word; everything above the backend boundary
    carries the canonical zero-extended int64 (the {!Zkopt_ir.Value}
    convention), so exit values from different backends compare with
    [Int64.equal] directly. *)
let exit64 (v : int32) : int64 = Eval.norm32 (Int64.of_int32 v)

let zk_of_vm (r : Zkopt_zkvm.Vm.metrics) : zk_metrics =
  let e = r.Zkopt_zkvm.Vm.exec in
  {
    vm = r.Zkopt_zkvm.Vm.vm;
    cycles = r.Zkopt_zkvm.Vm.cycles;
    exec_time_s = r.Zkopt_zkvm.Vm.exec_time_s;
    prove_time_s = r.Zkopt_zkvm.Vm.prove_time_s;
    segments = r.Zkopt_zkvm.Vm.segments;
    paging_cycles = r.Zkopt_zkvm.Vm.paging_cycles;
    page_ins = e.Zkopt_zkvm.Executor.page_ins;
    page_outs = e.Zkopt_zkvm.Executor.page_outs;
    loads = e.Zkopt_zkvm.Executor.loads;
    stores = e.Zkopt_zkvm.Executor.stores;
    exit_value = exit64 r.Zkopt_zkvm.Vm.exit_value;
  }

let run_zkvm ?fault ?fuel (cfg : Zkopt_zkvm.Config.t) (c : compiled) : zk_metrics =
  zk_of_vm (run ?fault ?fuel cfg c)

let run_cpu ?fuel ?sink (c : compiled) : cpu_metrics =
  let r = Zkopt_cpu.Timing.run ?fuel ?sink c.codegen c.modul in
  {
    cpu_cycles = r.Zkopt_cpu.Timing.cycles;
    cpu_time_s = r.Zkopt_cpu.Timing.time_s;
    mispredicts = r.Zkopt_cpu.Timing.mispredicts;
    cache_misses = r.Zkopt_cpu.Timing.cache_misses;
    cpu_exit_value = exit64 r.Zkopt_cpu.Timing.exit_value;
  }

(** Convenience: metrics on both zkVMs for one profile, with a checksum
    cross-check against the interpreter-free baseline expectation. *)
let measure_profile ?fuel ~build profile =
  let c = prepare ~build profile in
  let risc0 = run_zkvm ?fuel Zkopt_zkvm.Config.risc0 c in
  let sp1 = run_zkvm ?fuel Zkopt_zkvm.Config.sp1 c in
  (c, risc0, sp1)
