(** Valida-style executor: frame-cell machine with multi-chip row
    accounting.

    Execution state is just [(pc, fp, memory)] — there is no register
    file to model.  Every instruction appends rows to up to three chip
    tables:

    - cpu: exactly one row per retired instruction;
    - alu: rows for arithmetic work (2 for I64 ops — two 32-bit limbs —
      1 otherwise; precompiles charge their circuit's row count here);
    - mem: one row per 8-byte cell access, 2 for I64 heap values.  All
      operand reads, result writes and the call-frame traffic (saved
      pc/fp, argument copies, return values) land here, because on this
      ISA they *are* memory accesses.

    A segment closes when any one table reaches
    [Vconfig.table_limit] rows (the widest chip is the continuation
    bottleneck, not the sum).  There is no paging: re-entering a segment
    costs nothing beyond the per-segment prover overhead, which is the
    structural difference [bench/exp_isa.ml] measures against RV32.

    Fault injection mirrors {!Zkopt_zkvm.Executor.fault} so the harness
    exercises the same oracle classes on every backend:
    - [Silent_halt_on_boundary_jalr]: a segment boundary on a [Ret]
      silently drops the rest of the run (checksum oracle);
    - [Dropped_page_out]: with no paging to drop, the analogous
      accounting bug drops half the memory chip's rows from the totals
      at segment close (accounting oracle);
    - [Truncated_final_segment] / [Corrupt_exit_value]: as on RV32.

    Traps and fuel exhaustion reuse {!Zkopt_riscv.Emulator.Trap} and
    [Out_of_fuel] so [lib/harness]'s error classification works
    unchanged across backends. *)

open Zkopt_ir
open Zkopt_riscv

type segment = { cpu_rows : int; alu_rows : int; mem_rows : int }

let segment_rows s = s.cpu_rows + s.alu_rows + s.mem_rows

type result = {
  exit_value : int64;
  total_rows : int;  (** fault-adjusted sum over all tables *)
  cpu_rows : int;
  alu_rows : int;
  mem_rows : int;
  segments : segment list;  (** in execution order, un-adjusted *)
  retired : int;
  mem_read_rows : int;
  mem_write_rows : int;
  precompile_calls : int;
  faulted : bool;
}

type state = {
  cfg : Vconfig.t;
  p : Visa.program;
  mem : Memory.t;
  mutable fp : int32;
  mutable pc : int;
  mutable halted : bool;
  mutable exit_value : int64;
  mutable retired : int;
  mutable seg_cpu : int;
  mutable seg_alu : int;
  mutable seg_mem : int;
  mutable tot_cpu : int;
  mutable tot_alu : int;
  mutable tot_mem : int;
  mutable segs : segment list;
  mutable reads : int;
  mutable writes : int;
  mutable precompiles : int;
  mutable faulted : bool;
}

let trap fmt = Printf.ksprintf (fun s -> raise (Emulator.Trap s)) fmt

(* Rows a value of type [ty] occupies in a 32-bit-limb trace table. *)
let tyrows (ty : Ty.t) = match ty with Ty.I64 -> 2 | I32 | Ptr -> 1

let cell_addr fp i = Int32.sub fp (Int32.of_int (8 * (i + 1)))

(* Synthetic pc for provenance/attribution: 4 bytes per instruction. *)
let pc32 idx = Int32.of_int (4 * idx)

(* Shadow RV32 instruction reported to attribution sinks, chosen so the
   profiler's shared shadow-call-stack and mem-op classification logic
   (lib/prof/collect.ml) behaves identically on this backend: calls look
   like [jal ra], returns like [jalr zero, ra], heap traffic like
   loads/stores. *)
let shadow (ins : Visa.ins) idx : Isa.t =
  match ins with
  | Visa.Call c -> Isa.Jal (Isa.ra, 4 * (c.Visa.target - idx))
  | Ret _ -> Isa.Jalr (0, Isa.ra, 0)
  | Load _ -> Isa.Load (Isa.LW, 0, 0, 0)
  | Store _ -> Isa.Store (Isa.SW, 0, 0, 0)
  | Jump t -> Isa.Jal (0, 4 * (t - idx))
  | Cjump _ -> Isa.Branch (Isa.BEQ, 0, 0, 0)
  | Prec _ -> Isa.Ecall
  | Set _ | Bin _ | Cmp _ | Select _ | Cast _ | Lea _ | Frame _ ->
    Isa.Opi (Isa.ADDI, 0, 0, 0)

(* One instruction.  Returns [(ins, alu, memr, memw, precompile)] so the
   caller can report attribution and advance the chip tables. *)
let step st =
  let idx = st.pc in
  if idx < 0 || idx >= Array.length st.p.Visa.code then
    trap "pc %d out of code range" idx;
  let ins = st.p.Visa.code.(idx) in
  st.retired <- st.retired + 1;
  let alu = ref 0 and memr = ref 0 and memw = ref 0 in
  let prec = ref None in
  (* Operand reads charge the memory chip per cell limb; constants are
     committed in the program and cost no memory rows. *)
  let rd ty = function
    | Visa.Cell i ->
      memr := !memr + tyrows ty;
      Memory.load64 st.mem (cell_addr st.fp i)
    | Visa.Const k -> k
  in
  let wr ty d v =
    memw := !memw + tyrows ty;
    Memory.store64 st.mem (cell_addr st.fp d) v
  in
  let next () = st.pc <- idx + 1 in
  (match ins with
  | Visa.Set (ty, d, s) ->
    wr ty d (Eval.norm ty (rd ty s));
    next ()
  | Bin (ty, op, d, a, b) ->
    alu := tyrows ty;
    wr ty d (Eval.binop ty op (rd ty a) (rd ty b));
    next ()
  | Cmp (ty, op, d, a, b) ->
    alu := tyrows ty;
    wr Ty.I32 d (Eval.cmp ty op (rd ty a) (rd ty b));
    next ()
  | Select (ty, d, c, t, f) ->
    alu := 1;
    (* both arms are read (a circuit constrains both); selection is pure *)
    let tv = rd ty t and fv = rd ty f in
    wr ty d (Eval.norm ty (if Eval.to_bool (rd Ty.I32 c) then tv else fv));
    next ()
  | Cast (op, d, s) ->
    alu := 1;
    let sty, dty =
      match op with
      | Instr.Trunc -> (Ty.I64, Ty.I32)
      | Zext | Sext -> (Ty.I32, Ty.I64)
    in
    wr dty d (Eval.cast op (rd sty s));
    next ()
  | Lea (d, base, index, scale, offset) ->
    alu := 1;
    wr Ty.Ptr d (Eval.addr ~base:(rd Ty.Ptr base) ~index:(rd Ty.I32 index) ~scale ~offset);
    next ()
  | Load (ty, d, a) ->
    let addr = Int64.to_int32 (rd Ty.Ptr a) in
    memr := !memr + tyrows ty;
    wr ty d (Memory.load_ty st.mem ty addr);
    next ()
  | Store (ty, a, v) ->
    let addr = Int64.to_int32 (rd Ty.Ptr a) in
    let value = rd ty v in
    memw := !memw + tyrows ty;
    Memory.store_ty st.mem ty addr value;
    next ()
  | Frame (d, delta) ->
    alu := 1;
    wr Ty.Ptr d (Eval.norm32 (Int64.of_int32 (Int32.sub st.fp (Int32.of_int delta))));
    next ()
  | Call c ->
    let argv =
      try
        List.map2 (fun (pcell, ty) s -> (pcell, ty, rd ty s)) c.Visa.params c.Visa.args
      with Invalid_argument _ ->
        trap "%s: argument count mismatch (%d params, %d args)" c.Visa.callee
          (List.length c.Visa.params) (List.length c.Visa.args)
    in
    let new_fp = Int32.sub st.fp (Int32.of_int c.Visa.caller_frame) in
    memw := !memw + 2;
    Memory.store64 st.mem (cell_addr new_fp 0) (Int64.of_int (idx + 1));
    Memory.store64 st.mem (cell_addr new_fp 1) (Int64.of_int32 st.fp);
    List.iter
      (fun (pcell, ty, v) ->
        memw := !memw + tyrows ty;
        Memory.store64 st.mem (cell_addr new_fp pcell) (Eval.norm ty v))
      argv;
    st.fp <- new_fp;
    st.pc <- c.Visa.target
  | Ret r ->
    memr := !memr + 2;
    let saved_pc = Int64.to_int (Memory.load64 st.mem (cell_addr st.fp 0)) in
    let saved_fp = Int64.to_int32 (Memory.load64 st.mem (cell_addr st.fp 1)) in
    let v = Option.map (fun (ty, s) -> rd ty s) r in
    if saved_pc < 0 then begin
      (* main's sentinel frame: halt, journal the i32 checksum *)
      st.halted <- true;
      st.exit_value <- (match v with Some v -> Eval.norm32 v | None -> 0L)
    end
    else begin
      (match
         if saved_pc = 0 || saved_pc > Array.length st.p.Visa.code then None
         else
           match st.p.Visa.code.(saved_pc - 1) with
           | Visa.Call c -> Some c
           | _ -> None
       with
      | Some { Visa.ret = Some d; ret_ty; _ } ->
        let v =
          match v with
          | Some v -> v
          | None -> trap "returned no value to a binding call at %d" (saved_pc - 1)
        in
        memw := !memw + tyrows ret_ty;
        Memory.store64 st.mem (cell_addr saved_fp d) (Eval.norm ret_ty v)
      | Some { Visa.ret = None; _ } -> ()
      | None -> trap "return to non-call site %d" saved_pc);
      st.fp <- saved_fp;
      st.pc <- saved_pc
    end
  | Jump t -> st.pc <- t
  | Cjump (c, t, f) -> st.pc <- (if Eval.to_bool (rd Ty.I32 c) then t else f)
  | Prec { name; args; ret } ->
    st.precompiles <- st.precompiles + 1;
    let cost = Vconfig.precompile_cost st.cfg name in
    alu := !alu + cost;
    prec := Some (name, cost);
    let argv = Array.of_list (List.map (rd Ty.I32) args) in
    let emem =
      {
        Extern.load32 =
          (fun a ->
            memr := !memr + 1;
            Memory.load32 st.mem a);
        store32 =
          (fun a v ->
            memw := !memw + 1;
            Memory.store32 st.mem a v);
      }
    in
    (match (Extern.run name emem argv, ret) with
    | Some v, Some d -> wr Ty.I32 d (Eval.norm32 v)
    | None, Some _ -> trap "precompile %s returned no value to a binding call" name
    | _, None -> ());
    next ());
  (ins, !alu, !memr, !memw, !prec)

let close_segment ?(fault = Zkopt_zkvm.Executor.No_fault) ?(final = false) ?sink
    ~at_pc st =
  let seg = { cpu_rows = st.seg_cpu; alu_rows = st.seg_alu; mem_rows = st.seg_mem } in
  st.segs <- seg :: st.segs;
  (match sink with
  | Some (s : Zkopt_zkvm.Machine.sink) ->
    (* one segment event carrying all tables' rows; no paging dimension *)
    s.Zkopt_zkvm.Machine.on_segment ~pc:at_pc ~user:(segment_rows seg)
      ~paging:0
  | None -> ());
  let cpu, alu, mem =
    match fault with
    | Zkopt_zkvm.Executor.Truncated_final_segment when final && segment_rows seg > 1 ->
      st.faulted <- true;
      (seg.cpu_rows / 2, seg.alu_rows / 2, seg.mem_rows / 2)
    | Zkopt_zkvm.Executor.Dropped_page_out when seg.mem_rows > 1 ->
      (* multi-chip analogue of the write-back accounting bug: half the
         memory chip's rows vanish from the totals at segment close *)
      st.faulted <- true;
      (seg.cpu_rows, seg.alu_rows, seg.mem_rows / 2)
    | _ -> (seg.cpu_rows, seg.alu_rows, seg.mem_rows)
  in
  st.tot_cpu <- st.tot_cpu + cpu;
  st.tot_alu <- st.tot_alu + alu;
  st.tot_mem <- st.tot_mem + mem;
  st.seg_cpu <- 0;
  st.seg_alu <- 0;
  st.seg_mem <- 0

(** Execute a lowered program under configuration [cfg].  The optional
    [sink] receives every accounted row with its synthetic pc (see
    {!shadow}); [fault] injects the cross-backend bug family. *)
let run ?(fault = Zkopt_zkvm.Executor.No_fault) ?(fuel = 500_000_000) ?sink
    (cfg : Vconfig.t) (p : Visa.program) : result =
  let st =
    {
      cfg;
      p;
      mem = Memory.create ();
      fp = Layout.stack_top;
      pc = p.Visa.main_entry;
      halted = false;
      exit_value = 0L;
      retired = 0;
      seg_cpu = 0;
      seg_alu = 0;
      seg_mem = 0;
      tot_cpu = 0;
      tot_alu = 0;
      tot_mem = 0;
      segs = [];
      reads = 0;
      writes = 0;
      precompiles = 0;
      faulted = false;
    }
  in
  List.iter (fun (addr, init) -> Memory.init_global st.mem addr init) p.Visa.global_inits;
  (* main's frame: sentinel saved pc halts on its Ret *)
  Memory.store64 st.mem (cell_addr st.fp 0) (-1L);
  Memory.store64 st.mem (cell_addr st.fp 1) (Int64.of_int32 st.fp);
  let budget = ref fuel in
  let silent_halt = ref false in
  while (not st.halted) && not !silent_halt do
    if !budget <= 0 then raise (Emulator.Out_of_fuel fuel);
    decr budget;
    let idx = st.pc in
    let ins, alu, memr, memw, prec = step st in
    st.seg_cpu <- st.seg_cpu + 1;
    st.seg_alu <- st.seg_alu + alu;
    st.seg_mem <- st.seg_mem + memr + memw;
    st.reads <- st.reads + memr;
    st.writes <- st.writes + memw;
    (match sink with
    | Some (s : Zkopt_zkvm.Machine.sink) ->
      let pc = pc32 idx in
      let total = 1 + alu + memr + memw in
      (match prec with
      | Some (name, c) ->
        s.Zkopt_zkvm.Machine.on_retires
          (Zkopt_zkvm.Machine.retire1 ~pc (shadow ins idx) ~cost:(total - c));
        s.Zkopt_zkvm.Machine.on_precompile ~pc ~name ~cost:c
      | None ->
        s.Zkopt_zkvm.Machine.on_retires
          (Zkopt_zkvm.Machine.retire1 ~pc (shadow ins idx) ~cost:total))
    | None -> ());
    if
      (not st.halted)
      && (st.seg_cpu >= cfg.Vconfig.table_limit
         || st.seg_alu >= cfg.Vconfig.table_limit
         || st.seg_mem >= cfg.Vconfig.table_limit)
    then begin
      close_segment ~fault ?sink ~at_pc:(pc32 idx) st;
      match (fault, ins) with
      | Zkopt_zkvm.Executor.Silent_halt_on_boundary_jalr, Visa.Ret _ ->
        (* the continuation boundary landed on a return: the buggy
           executor stops mid-run yet reports a verifying trace *)
        st.faulted <- true;
        silent_halt := true
      | _ -> ()
    end
  done;
  close_segment ~fault ~final:true ?sink ~at_pc:(pc32 st.pc) st;
  let exit_value =
    match fault with
    | Zkopt_zkvm.Executor.Corrupt_exit_value ->
      st.faulted <- true;
      Int64.logxor st.exit_value 0x5A5A_5A5AL
    | _ -> st.exit_value
  in
  {
    exit_value;
    total_rows = st.tot_cpu + st.tot_alu + st.tot_mem;
    cpu_rows = st.tot_cpu;
    alu_rows = st.tot_alu;
    mem_rows = st.tot_mem;
    segments = List.rev st.segs;
    retired = st.retired;
    mem_read_rows = st.reads;
    mem_write_rows = st.writes;
    precompile_calls = st.precompiles;
    faulted = st.faulted;
  }

(** Simulated executor wall-clock time in seconds. *)
let exec_time_s (cfg : Vconfig.t) (r : result) =
  ((float_of_int r.total_rows *. cfg.Vconfig.exec_ns_per_row)
  +. cfg.Vconfig.exec_overhead_ns)
  *. 1e-9

(** Accounting identity a healthy run preserves: the totals equal the
    sum over segments of each chip's rows. *)
let check_accounting (r : result) : (unit, string) Stdlib.result =
  let c, a, m =
    List.fold_left
      (fun (c, a, mm) (s : segment) ->
        (c + s.cpu_rows, a + s.alu_rows, mm + s.mem_rows))
      (0, 0, 0) r.segments
  in
  if c + a + m <> r.total_rows then
    Error
      (Printf.sprintf "total rows %d <> segment sum %d (cpu %d alu %d mem %d)"
         r.total_rows (c + a + m) c a m)
  else if r.cpu_rows <> c then
    Error (Printf.sprintf "cpu rows %d <> segment sum %d" r.cpu_rows c)
  else Ok ()
