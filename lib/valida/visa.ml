(** Valida-style zk-native instruction set.

    The defining property (Valida ISA Spec, PAPERS.md): there is no
    general-purpose register file.  Every operand is a *frame slot* — a
    memory cell addressed relative to the frame pointer — so "register
    allocation" does not exist as a compilation stage and the
    register-pressure/spill mechanism the paper measures on RV32 zkVMs
    has nowhere to live.  Each machine value occupies one 8-byte cell
    (the canonical int64 encoding of {!Zkopt_ir.Value}); cell [i] of the
    current frame lives at [fp - 8*(i+1)].

    Frame layout (frames grow down from {!Zkopt_ir.Layout.stack_top}):

    {v
      fp ->  +------------------------+  (frame base, exclusive)
             | cell 0: saved pc       |
             | cell 1: saved fp       |
             | cell 2..: params, temps|  one cell per IR virtual register
             | alloca byte area       |
      fp - frame_bytes -> ------------+
    v}

    Calls are memory-mediated: the caller evaluates arguments in its own
    frame, writes them (plus the return pc and fp) into the callee's
    frame cells, and jumps; returns read the saved pc/fp back and write
    the return value into the caller's destination cell.  All of that
    traffic lands in the memory chip's trace table — the cost model
    follows the multi-chip geometry, not RV32 conventions.

    Code addresses are instruction indices; the "pc" reported to
    provenance/attribution sinks is [4 * index] so the source map and
    the shadow-call-stack logic shared with the RV32 toolchain work
    unchanged. *)

open Zkopt_ir

(** An operand: a frame cell of the current function, or a constant
    (global addresses are resolved to constants at assembly). *)
type src = Cell of int | Const of int64

type dst = int  (** a frame cell index of the current function *)

type call = {
  target : int;  (** callee entry, instruction index *)
  callee : string;
  caller_frame : int;  (** enclosing function's frame size, bytes *)
  callee_frame : int;  (** callee frame size, bytes *)
  params : (int * Ty.t) list;  (** callee param cells, in order *)
  args : src list;  (** evaluated in the caller's frame *)
  ret : dst option;  (** caller cell receiving the return value *)
  ret_ty : Ty.t;
}

type ins =
  | Set of Ty.t * dst * src
  | Bin of Ty.t * Instr.binop * dst * src * src
  | Cmp of Ty.t * Instr.cmpop * dst * src * src
  | Select of Ty.t * dst * src * src * src  (** cond, if_true, if_false *)
  | Cast of Instr.castop * dst * src
  | Lea of dst * src * src * int * int  (** base, index, scale, offset *)
  | Load of Ty.t * dst * src  (** heap load, address operand *)
  | Store of Ty.t * src * src  (** heap store: address, value *)
  | Frame of dst * int  (** dst := fp - delta (an alloca address) *)
  | Call of call
  | Ret of (Ty.t * src) option
  | Jump of int  (** unconditional, instruction index *)
  | Cjump of src * int * int  (** cond, if_true, if_false indices *)
  | Prec of { name : string; args : src list; ret : dst option }

type func_info = {
  entry : int;  (** instruction index of the function's first instr *)
  frame_bytes : int;
  ncells : int;
  params : (int * Ty.t) list;
  ret_ty : Ty.t option;
}

type program = {
  code : ins array;
  srcmap : (string * string) array;
      (** (function, IR block) provenance of code.(i) *)
  funcs : (string, func_info) Hashtbl.t;
  globals : (string, int32) Hashtbl.t;  (** placed global addresses *)
  global_inits : (int32 * Modul.init) list;
  data_end : int32;
  main_entry : int;
  main_frame : int;
  stats : (string * int) list;  (** per-function static instruction count *)
}

(** Provenance of a synthetic pc ([4 * instruction index]). *)
let site_of_pc (p : program) (pc : int32) : (string * string) option =
  let idx = Int32.to_int pc / 4 in
  if idx < 0 || idx >= Array.length p.srcmap then None
  else
    match p.srcmap.(idx) with
    | "", _ -> None
    | f, b -> Some (f, b)
