(** IR -> Valida-style lowering.

    The lowering is a direct 1:1 translation: every IR virtual register
    becomes a frame cell (cell [2 + r]), so there is no allocation, no
    liveness, no spilling — a function's frame is simply as wide as its
    register count.  This is where the paper's spill mechanism vanishes
    *by construction*: optimizations that raise register pressure (loop
    unrolling most of all) widen frames, which is free, instead of
    inserting spill loads/stores, which RV32 backends pay cycles for.

    All arithmetic semantics are delegated to {!Zkopt_ir.Eval} at
    execution time, the same evaluator the IR interpreter and the
    constant folder use — cross-backend exit-value conformance is by
    construction, not by calibration. *)

open Zkopt_ir

exception Lower_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

let cell r = 2 + r

(* Pre-assign a frame slot offset to each Alloca dst (one slot per
   static Alloca, matching the interpreter and the RV32 codegen). *)
let alloca_layout (f : Func.t) =
  let slots = Hashtbl.create 4 in
  let total = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Alloca { dst; size } ->
        if not (Hashtbl.mem slots dst) then begin
          Hashtbl.replace slots dst !total;
          total := !total + Layout.align_up size 8
        end
      | _ -> ());
  (slots, Layout.align_up !total 8)

type proto = {
  frame_bytes : int;
  ncells : int;
  p_params : (int * Ty.t) list;
  p_ret : Ty.t option;
  slots : (Value.reg, int) Hashtbl.t;
  alloca_total : int;
}

let proto_of (f : Func.t) : proto =
  let slots, alloca_total = alloca_layout f in
  let ncells = 2 + f.Func.next_reg in
  {
    frame_bytes = (8 * ncells) + alloca_total;
    ncells;
    p_params = List.map (fun (r, ty) -> (cell r, ty)) f.Func.params;
    p_ret = f.Func.ret;
    slots;
    alloca_total;
  }

type fixup =
  | FJump of string * string  (* function, label *)
  | FCjump of string * string * string
  | FCall of string

let lower (m : Modul.t) : Visa.program =
  let globals, data_end = Layout.place_globals m in
  let protos = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace protos f.Func.name (proto_of f))
    m.Modul.funcs;
  let proto name =
    match Hashtbl.find_opt protos name with
    | Some p -> p
    | None -> error "call to unknown function %s" name
  in
  let code = ref [] in
  let srcmap = ref [] in
  let n = ref 0 in
  let labels = Hashtbl.create 64 in
  let fixups = ref [] in
  let entries = Hashtbl.create 16 in
  let stats = ref [] in
  let sv = function
    | Value.Reg r -> Visa.Cell (cell r)
    | Value.Imm i -> Visa.Const i
    | Value.Glob g -> (
      match Hashtbl.find_opt globals g with
      | Some a -> Visa.Const (Eval.norm32 (Int64.of_int32 a))
      | None -> error "unknown global %s" g)
  in
  let lower_func (f : Func.t) =
    let fname = f.Func.name in
    let p = proto fname in
    Hashtbl.replace entries fname !n;
    let count0 = !n in
    let emit ~block ins =
      code := ins :: !code;
      srcmap := (fname, block) :: !srcmap;
      incr n
    in
    let fix kind =
      (* the fixup patches the instruction just emitted *)
      fixups := (!n - 1, kind) :: !fixups
    in
    Func.iter_blocks f (fun (b : Block.t) ->
        Hashtbl.replace labels (fname ^ "$" ^ b.Block.label) !n;
        let emit = emit ~block:b.Block.label in
        List.iter
          (fun (i : Instr.t) ->
            match i with
            | Instr.Bin { dst; ty; op; a; b } ->
              emit (Visa.Bin (ty, op, cell dst, sv a, sv b))
            | Cmp { dst; ty; op; a; b } ->
              emit (Visa.Cmp (ty, op, cell dst, sv a, sv b))
            | Select { dst; ty; cond; if_true; if_false } ->
              emit (Visa.Select (ty, cell dst, sv cond, sv if_true, sv if_false))
            | Mov { dst; ty; src } -> emit (Visa.Set (ty, cell dst, sv src))
            | Cast { dst; op; src } -> emit (Visa.Cast (op, cell dst, sv src))
            | Load { dst; ty; addr } -> emit (Visa.Load (ty, cell dst, sv addr))
            | Store { ty; addr; src } -> emit (Visa.Store (ty, sv addr, sv src))
            | Addr { dst; base; index; scale; offset } ->
              emit (Visa.Lea (cell dst, sv base, sv index, scale, offset))
            | Alloca { dst; _ } ->
              let off =
                match Hashtbl.find_opt p.slots dst with
                | Some o -> o
                | None -> error "%s: alloca slot for %%r%d missing" fname dst
              in
              (* address = fp - frame_bytes + off = fp - (frame_bytes - off) *)
              emit (Visa.Frame (cell dst, p.frame_bytes - off))
            | Call { dst; callee; args } ->
              let cp = proto callee in
              emit
                (Visa.Call
                   {
                     Visa.target = -1;
                     callee;
                     caller_frame = p.frame_bytes;
                     callee_frame = cp.frame_bytes;
                     params = cp.p_params;
                     args = List.map sv args;
                     ret = Option.map cell dst;
                     ret_ty = Option.value ~default:Ty.I32 cp.p_ret;
                   });
              fix (FCall callee)
            | Precompile { dst; name; args } ->
              emit
                (Visa.Prec
                   { name; args = List.map sv args; ret = Option.map cell dst }))
          b.Block.instrs;
        match b.Block.term with
        | Instr.Ret None -> emit (Visa.Ret None)
        | Ret (Some v) ->
          emit (Visa.Ret (Some (Option.value ~default:Ty.I32 p.p_ret, sv v)))
        | Br l ->
          emit (Visa.Jump (-1));
          fix (FJump (fname, l))
        | Cbr { cond; if_true; if_false } ->
          emit (Visa.Cjump (sv cond, -1, -1));
          fix (FCjump (fname, if_true, if_false)));
    stats := (fname, !n - count0) :: !stats
  in
  List.iter lower_func m.Modul.funcs;
  let code = Array.of_list (List.rev !code) in
  let srcmap = Array.of_list (List.rev !srcmap) in
  let label_idx fname l =
    match Hashtbl.find_opt labels (fname ^ "$" ^ l) with
    | Some i -> i
    | None -> error "undefined label %s in %s" l fname
  in
  List.iter
    (fun (i, kind) ->
      match (kind, code.(i)) with
      | FJump (f, l), Visa.Jump _ -> code.(i) <- Visa.Jump (label_idx f l)
      | FCjump (f, lt, lf), Visa.Cjump (c, _, _) ->
        code.(i) <- Visa.Cjump (c, label_idx f lt, label_idx f lf)
      | FCall callee, Visa.Call c ->
        code.(i) <- Visa.Call { c with Visa.target = Hashtbl.find entries callee }
      | _ -> error "fixup mismatch at %d" i)
    !fixups;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      let p = proto f.Func.name in
      Hashtbl.replace funcs f.Func.name
        {
          Visa.entry = Hashtbl.find entries f.Func.name;
          frame_bytes = p.frame_bytes;
          ncells = p.ncells;
          params = p.p_params;
          ret_ty = p.p_ret;
        })
    m.Modul.funcs;
  let main =
    match Hashtbl.find_opt funcs "main" with
    | Some fi -> fi
    | None -> error "no main function"
  in
  {
    Visa.code;
    srcmap;
    funcs;
    globals;
    global_inits =
      List.map
        (fun (g : Modul.global) ->
          (Hashtbl.find globals g.Modul.gname, g.Modul.init))
        m.Modul.globals;
    data_end;
    main_entry = main.Visa.entry;
    main_frame = main.Visa.frame_bytes;
    stats = List.rev !stats;
  }
