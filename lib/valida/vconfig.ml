(** Valida-style multi-chip cost configuration.

    Unlike the RV32 configs there is no paging dimension at all: the
    memory argument is an offline permutation/log-up check over the
    memory chip's trace rows, so "memory cost" is simply rows in a
    table, priced like any other rows.  Segmentation ("continuations")
    closes a segment when any chip's table reaches [table_limit] rows;
    each table is padded and committed independently (see {!Vprover}).

    The constants are calibrated to the same order of magnitude as the
    RV32 configs so cross-ISA comparisons in [bench/exp_isa.ml] are
    about *shape* (which mechanisms exist) rather than absolute scale. *)

type t = {
  name : string;
  table_limit : int;  (** max rows in any one chip's table per segment *)
  min_po2 : int;  (** per-table power-of-two padding floor *)
  prove_ns_per_row : float;  (** FFT/LDE + commitment, per padded row *)
  prove_witgen_ns_per_row : float;  (** witness generation, per real row *)
  prove_segment_overhead_ns : float;
  exec_ns_per_row : float;
  exec_overhead_ns : float;
  precompile_costs : (string * int) list;  (** ALU-chip rows per call *)
}

let valida =
  {
    name = "valida";
    table_limit = 1 lsl 21;
    min_po2 = 12;
    prove_ns_per_row = 700.0;
    prove_witgen_ns_per_row = 2_500.0;
    prove_segment_overhead_ns = 0.5e9;
    exec_ns_per_row = 20.0;
    exec_overhead_ns = 0.04e9;
    precompile_costs =
      [ ("sha256_compress", 64); ("keccakf", 200); ("ecdsa_verify", 3800);
        ("ed25519_verify", 3400); ("bigint_mulmod", 200) ];
  }

(** Rows a precompile call adds to the ALU chip.  Unknown names raise,
    matching {!Zkopt_zkvm.Config.precompile_cost}'s fail-loudly rule. *)
let precompile_cost t name =
  match List.assoc_opt name t.precompile_costs with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "unpriced precompile %S on %s (priced: %s)" name t.name
         (String.concat ", " (List.map fst t.precompile_costs)))
