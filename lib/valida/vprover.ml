(** Multi-chip STARK prover model.

    Each segment commits each chip's table independently: a table of [n]
    real rows is padded to [next_pow2 (max (2^min_po2, n))] and costs
    [padded * log2(padded) * prove_ns_per_row] for LDE/commitment plus
    [n * prove_witgen_ns_per_row] for witness generation.  The key
    geometric consequence (vs. the RV32 single-table model): a segment's
    cost is driven by its *widest* chip, and idle chips cost only their
    padding floor — so shifting work between chips (e.g. ALU ops vs.
    memory traffic) changes cost even at a constant total row count. *)

type result = {
  time_s : float;
  segments : int;
  padded_rows_total : int;  (** sum of padded table sizes over all chips *)
}

let prove (cfg : Vconfig.t) (exec : Vexec.result) : result =
  let module P = Zkopt_zkvm.Prover in
  let floor_rows = 1 lsl cfg.Vconfig.min_po2 in
  let table rows =
    let padded = P.next_pow2 (max floor_rows rows) in
    ( padded,
      (float_of_int padded *. P.log2f padded *. cfg.Vconfig.prove_ns_per_row)
      +. (float_of_int rows *. cfg.Vconfig.prove_witgen_ns_per_row) )
  in
  let segment (s : Vexec.segment) =
    let pc, tc = table s.Vexec.cpu_rows in
    let pa, ta = table s.Vexec.alu_rows in
    let pm, tm = table s.Vexec.mem_rows in
    (pc + pa + pm, tc +. ta +. tm +. cfg.Vconfig.prove_segment_overhead_ns)
  in
  let padded, ns =
    List.fold_left
      (fun (p, t) s ->
        let ps, ts = segment s in
        (p + ps, t +. ts))
      (0, 0.0) exec.Vexec.segments
  in
  {
    time_s = ns *. 1e-9;
    segments = List.length exec.Vexec.segments;
    padded_rows_total = padded;
  }

(** Rows of padding a table of [n] rows pays under this config. *)
let table_pad (cfg : Vconfig.t) n =
  Zkopt_zkvm.Prover.next_pow2 (max (1 lsl cfg.Vconfig.min_po2) n) - n
