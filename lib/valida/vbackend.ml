(** The Valida-style backend as a {!Zkopt_backend.Backend.t}.

    Registers itself under ["valida"] when this library is linked.
    Linkage is forced by callers invoking {!ensure} (dune drops
    libraries nothing references); the harness itself stays free of any
    valida dependency — it only sees {!Zkopt_backend.Backend.t} values. *)

open Zkopt_ir
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Measure = Zkopt_core.Measure

let schema = "valida-cg1"
let cfg = Vconfig.valida

let zk_of_run (r : Vexec.result) : Measure.zk_metrics =
  {
    Measure.vm = cfg.Vconfig.name;
    cycles = r.Vexec.total_rows;
    exec_time_s = Vexec.exec_time_s cfg r;
    prove_time_s = (Vprover.prove cfg r).Vprover.time_s;
    segments = List.length r.Vexec.segments;
    (* no paging dimension exists on this ISA *)
    paging_cycles = 0;
    page_ins = 0;
    page_outs = 0;
    loads = r.Vexec.mem_read_rows;
    stores = r.Vexec.mem_write_rows;
    exit_value = r.Vexec.exit_value;
  }

let of_program (p : Visa.program) : Backend.compiled =
  let measure ~vm ?fault ?fuel ?sink () =
    if not (String.equal vm cfg.Vconfig.name) then
      invalid_arg
        (Printf.sprintf "valida artifact cannot price backend %S" vm);
    let r = Vexec.run ?fault ?fuel ?sink cfg p in
    (* per-segment committed area = the sum of the three chips' padded
       tables, exactly as {!Vprover.prove} prices them *)
    let floor = 1 lsl cfg.Vconfig.min_po2 in
    let pad rows = Zkopt_zkvm.Prover.next_pow2 (max floor rows) in
    let seg_padded =
      List.map
        (fun (s : Vexec.segment) ->
          pad s.Vexec.cpu_rows + pad s.Vexec.alu_rows + pad s.Vexec.mem_rows)
        r.Vexec.segments
    in
    {
      Backend.zk = zk_of_run r;
      accounting = Vexec.check_accounting r;
      faulted = r.Vexec.faulted;
      seg_padded;
    }
  in
  {
    Backend.static_instrs = Array.length p.Visa.code;
    site_of_pc = Visa.site_of_pc p;
    (* no register file -> no allocator -> spills cannot exist *)
    spills = [];
    measure;
    measure_cpu = None;
    encode = (fun () -> Some (Marshal.to_string p []));
  }

let compile (m : Modul.t) : Backend.compiled = of_program (Vlower.lower m)

let decode (_m : Modul.t) (s : string) : Backend.compiled option =
  try Some (of_program (Marshal.from_string s 0)) with _ -> None

let backend : Backend.t =
  {
    Backend.name = cfg.Vconfig.name;
    doc = "zk-native frame-cell ISA, multi-chip prover (Valida-style)";
    zk_native = true;
    schema;
    segment_pad = Vprover.table_pad cfg;
    compile;
    decode;
  }

let () = Registry.register backend

(** Referencing this forces the library (and so the registration above)
    to be linked. *)
let ensure () = ()
