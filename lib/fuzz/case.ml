(** One differential-fuzzing case: a program source (a {!Randprog} seed
    with generator knobs, or a named workload at quick size), a pass
    pipeline, and a backend list.

    Running a case checks the Arguzz-style oracle stack, in a fixed
    order so a failing case always classifies deterministically:

    + {b base}: the untransformed program must verify and interpret to a
      checksum (the reference value for everything below);
    + {b opt} (metamorphic): the pipeline-transformed program must
      verify and its interpreted checksum must equal the reference —
      pass-applied vs unapplied must agree;
    + {b per backend} (differential): each backend's measured
      {!Zkopt_core.Measure.exit64} must equal the reference, and the
      backend's own accounting-conservation oracle must hold;
    + {b pricing} (metamorphic): the agreeing backend's measurement,
      priced through the settlement models
      ({!Zkopt_settle.Settle.check_invariants}), must price
      deterministically, its settled cost must dominate the prover
      component, aggregation depth must equal [ceil (log_arity
      segments)], and gas must be monotone in the root proof size.

    Any exception or oracle violation classifies through the harness
    error taxonomy ({!Zkopt_harness.Error.kind}) tagged with the stage
    it fired in; the (stage, kind) pair is the divergence's identity —
    the minimizer shrinks a program while preserving exactly that key. *)

open Zkopt_ir
module Error = Zkopt_harness.Error
module Faultplan = Zkopt_harness.Faultplan
module Backend = Zkopt_backend.Backend
module Registry = Zkopt_backend.Registry
module Measure = Zkopt_core.Measure
module Profile = Zkopt_core.Profile

(* ---- program sources ------------------------------------------------ *)

type source =
  | Seed of { seed : int; knobs : Randprog.knobs }
  | Workload of string  (** a suite program, built at [Quick] size *)

let seed ?(knobs = Randprog.default_knobs) n = Seed { seed = n; knobs }

let knobs_to_string (k : Randprog.knobs) : string =
  Printf.sprintf "budget=%d,depth=%d,loop=%d,calls=%b,memory=%b,wide=%b"
    k.Randprog.budget k.Randprog.max_depth k.Randprog.max_loop_bound
    k.Randprog.calls k.Randprog.memory k.Randprog.wide

let knobs_of_string (s : string) : Randprog.knobs option =
  try
    Some
      (List.fold_left
         (fun (k : Randprog.knobs) kv ->
           match String.split_on_char '=' kv with
           | [ "budget"; v ] -> { k with Randprog.budget = int_of_string v }
           | [ "depth"; v ] -> { k with Randprog.max_depth = int_of_string v }
           | [ "loop"; v ] ->
             { k with Randprog.max_loop_bound = int_of_string v }
           | [ "calls"; v ] -> { k with Randprog.calls = bool_of_string v }
           | [ "memory"; v ] -> { k with Randprog.memory = bool_of_string v }
           | [ "wide"; v ] -> { k with Randprog.wide = bool_of_string v }
           | _ -> raise Exit)
         Randprog.default_knobs
         (String.split_on_char ',' s))
  with _ -> None

(** ["seed:42"], ["seed:42[budget=20,...]"] (non-default knobs), or
    ["workload:factorial"].  The string is the case's program coordinate
    everywhere: checkpoint rows, fault-plan sites, corpus entries. *)
let source_name = function
  | Seed { seed; knobs } ->
    if knobs = Randprog.default_knobs then Printf.sprintf "seed:%d" seed
    else Printf.sprintf "seed:%d[%s]" seed (knobs_to_string knobs)
  | Workload w -> "workload:" ^ w

let source_of_name (s : string) : source option =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let tag = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match tag with
    | "workload" when rest <> "" -> Some (Workload rest)
    | "seed" -> (
      match String.index_opt rest '[' with
      | None -> (
        match int_of_string_opt rest with
        | Some n -> Some (seed n)
        | None -> None)
      | Some j
        when String.length rest > j + 1
             && rest.[String.length rest - 1] = ']' -> (
        let n = String.sub rest 0 j in
        let ks = String.sub rest (j + 1) (String.length rest - j - 2) in
        match (int_of_string_opt n, knobs_of_string ks) with
        | Some n, Some knobs -> Some (Seed { seed = n; knobs })
        | _ -> None)
      | Some _ -> None)
    | _ -> None)

(** Build a fresh, unlinked module for a source.  The minimizer edits
    modules at exactly this stage — before the runtime is linked — so a
    recorded reduction trace replays against regenerated programs. *)
let build_source : source -> Modul.t = function
  | Seed { seed; knobs } -> Randprog.generate ~knobs ~seed ()
  | Workload name ->
    (* force linkage of the per-suite registration modules *)
    Zkopt_workloads.Suite.check_composition ();
    let w = Zkopt_workloads.Workload.find name in
    w.Zkopt_workloads.Workload.build Zkopt_workloads.Workload.Quick

(* ---- pipelines ------------------------------------------------------ *)

(** A pass pipeline under a canonical spec string:
    ["baseline"], a level (["O0"]..["Oz"]), ["zk-o3"], a single pass
    name, or a custom sequence ["a;b;c"] (standard cost model) /
    ["zk:a;b;c"] (zkVM-aware cost model). *)
type pipeline = { spec : string; profile : Profile.t }

let baseline = { spec = "baseline"; profile = Profile.Baseline }

let custom ?(zk = false) (passes : string list) : pipeline =
  let config =
    if zk then Zkopt_passes.Pass.zkvm_config
    else Zkopt_passes.Pass.standard_config
  in
  let spec = (if zk then "zk:" else "") ^ String.concat ";" passes in
  { spec; profile = Profile.Custom (passes, config) }

let pipeline_of_spec (spec : string) : (pipeline, string) result =
  let strip_prefix p s =
    if String.length s >= String.length p
       && String.equal (String.sub s 0 (String.length p)) p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let validate passes =
    match
      List.find_opt
        (fun p ->
          match Zkopt_passes.Pass.find p with
          | _ -> false
          | exception Invalid_argument _ -> true)
        passes
    with
    | Some bad -> Error (Printf.sprintf "unknown pass %S in %S" bad spec)
    | None -> Ok ()
  in
  match spec with
  | "baseline" -> Ok baseline
  | "zk-o3" | "zkvm-o3" -> Ok { spec = "zk-o3"; profile = Profile.Zkvm_o3 }
  | "O0" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.O0 }
  | "O1" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.O1 }
  | "O2" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.O2 }
  | "O3" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.O3 }
  | "Os" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.Os }
  | "Oz" -> Ok { spec; profile = Profile.Level Zkopt_passes.Catalog.Oz }
  | _ -> (
    let zk, body =
      match strip_prefix "zk:" spec with
      | Some body -> (true, body)
      | None -> (false, spec)
    in
    let passes = List.filter (fun p -> p <> "") (String.split_on_char ';' body) in
    match passes with
    | [] -> Error (Printf.sprintf "empty pipeline spec %S" spec)
    | [ p ] when not zk && not (String.contains spec ';') -> (
      match validate [ p ] with
      | Error e -> Error e
      | Ok () -> Ok { spec; profile = Profile.Single_pass p })
    | passes -> (
      match validate passes with
      | Error e -> Error e
      | Ok () -> Ok (custom ~zk passes)))

(* ---- backends ------------------------------------------------------- *)

(** The §4.2 reproduction configuration: SP1 pricing with shard
    boundaries every 2^10 user cycles, so even quick-size programs cross
    many segment boundaries — recursive call-heavy code then lands a
    boundary on an indirect jump (a return), the window the silent-halt
    bug needs.  Not a registry entry (it is a deliberately buggy-era
    config, not a measurement column); the fuzz engine resolves it by
    name. *)
let sp1_dense : Backend.t =
  Zkopt_backend.Rv32.backend ~fixed:true
    { Zkopt_zkvm.Config.sp1 with
      Zkopt_zkvm.Config.name = "sp1-dense";
      segment_limit = 1 lsl 10 }
    ~doc:"SP1 pricing with dense shard boundaries (§4.2 repro config)"

(** Resolve a backend name for a fuzz case: any registered backend, plus
    the pseudo-backend ["sp1-dense"]. *)
let resolve_backend (name : string) : Backend.t =
  if String.equal name "sp1-dense" then sp1_dense else Registry.find name

(* ---- the case and its verdict --------------------------------------- *)

type t = {
  source : source;
  pipeline : pipeline;
  backends : Backend.t list;  (** differential columns, in check order *)
}

type stage =
  | Base  (** the untransformed program itself failed an oracle *)
  | Opt  (** the pipeline broke verification or interpreted semantics *)
  | Vm of string  (** a backend diverged from the interpreter reference *)
  | Price of string
      (** a backend's settlement pricing broke a metamorphic invariant
          (determinism, cost dominance, depth law, gas monotonicity) *)

type divergence = { stage : stage; kind : Error.kind }

type verdict = Agree | Diverged of divergence

let stage_name = function
  | Base -> "base"
  | Opt -> "opt"
  | Vm vm -> vm
  | Price vm -> "price:" ^ vm

(** The divergence's identity: same key = same bug class at the same
    stage.  Deliberately excludes the concrete checksum values, which
    change as the minimizer shrinks the program. *)
let divergence_key (d : divergence) : string =
  stage_name d.stage ^ ":" ^ Error.kind_name d.kind

let divergence_detail (d : divergence) : string =
  Error.kind_detail d.kind

let default_fuel = 200_000_000

(** Run the oracle stack for [t] over the (unlinked) base module.  The
    base is never mutated: every stage works on a fresh
    {!Zkopt_ir.Clone} of it.  [faultplan] sites are looked up under the
    coordinates ([source_name], [pipeline.spec], backend name). *)
let run ?(faultplan = Faultplan.none) ?(fuel = default_fuel) (t : t)
    ~(base : Modul.t) : verdict =
  let src = source_name t.source in
  let diverge stage e = Diverged { stage; kind = Error.classify e } in
  (* base stage: the generated program itself must be sound *)
  match
    let m0 = Clone.modul base in
    Zkopt_runtime.Runtime.link m0;
    Verify.check m0;
    Interp.checksum ~fuel m0
  with
  | exception e -> diverge Base e
  | reference -> (
    (* opt stage: the pipeline must preserve interpreted semantics *)
    match
      let m =
        Measure.prepare_ir
          ~build:(fun () -> Clone.modul base)
          t.pipeline.profile
      in
      let got = Interp.checksum ~fuel m in
      if not (Int64.equal got reference) then
        raise
          (Error.Divergence
             { expected = reference; got; oracle = "metamorphic-interp" });
      m
    with
    | exception e -> diverge Opt e
    | m ->
      (* backend stage: every backend must agree with the reference;
         once a backend agrees, its measurement flows into the
         metamorphic pricing oracle (stage [Price]) — the settlement
         models must price the same trace deterministically and obey
         the cost-dominance / depth / gas-monotonicity laws *)
      let rec go = function
        | [] -> Agree
        | (b : Backend.t) :: rest -> (
          match
            let c = b.Backend.compile m in
            let fault =
              Faultplan.executor_fault faultplan ~program:src
                ~profile:t.pipeline.spec ~vm:b.Backend.name
            in
            let r = c.Backend.measure ~vm:b.Backend.name ?fault ~fuel () in
            (match r.Backend.accounting with
            | Ok () -> ()
            | Error msg -> raise (Error.Accounting msg));
            r
          with
          | exception e -> diverge (Vm b.Backend.name) e
          | r -> (
            let got = r.Backend.zk.Measure.exit_value in
            if not (Int64.equal got reference) then
              Diverged
                {
                  stage = Vm b.Backend.name;
                  kind =
                    Error.Miscompile
                      {
                        expected = reference;
                        got;
                        oracle = "interp-vs-" ^ b.Backend.name;
                      };
                }
            else
              match
                Zkopt_settle.Settle.check_invariants ~backend:b.Backend.name
                  r
              with
              | exception e -> diverge (Price b.Backend.name) e
              | Error msg ->
                Diverged
                  {
                    stage = Price b.Backend.name;
                    kind = Error.Accounting_violation msg;
                  }
              | Ok () -> go rest))
      in
      go t.backends)

(** Build the base from the source and run the oracle stack. *)
let run_case ?faultplan ?fuel (t : t) : verdict =
  match build_source t.source with
  | exception e -> Diverged { stage = Base; kind = Error.classify e }
  | base -> run ?faultplan ?fuel t ~base
