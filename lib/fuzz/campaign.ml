(** The differential fuzzing campaign engine.

    A campaign is a finite plan — (source × pipeline) cases over a fixed
    backend set — executed on a work-stealing domain pool.  Each case
    runs the full {!Case} oracle stack; divergences are classified,
    optionally minimized ({!Minimize}) and persisted ({!Corpus}), and
    every completed case streams one row to an append-only checkpoint so
    a killed campaign resumes without repeating work.

    {b Quarantine.}  Worker tasks never let an exception escape: a case
    that blows up in an unforeseen way (outside the classifying stages
    of {!Case.run}) is itself recorded as a base-stage divergence.  The
    pool's poison path is reserved for engine bugs, not fuzz findings —
    one pathological program cannot take down the other workers.

    {b Failure budget.}  With [failure_budget = Some n], the campaign
    stops scheduling new work once [n] divergences have been found this
    run.  Cases skipped by the budget write no checkpoint row, so a
    later resume picks them up.

    {b Checkpoint.}  One row per completed case, whole-line writes under
    a mutex, flushed per line, with a terminal ["."] field so a row
    truncated by a kill mid-write fails decoding instead of silently
    decoding short.  Row identity is (source, pipeline spec); rows are
    deterministic functions of the case, so kill+resume reproduces the
    uninterrupted run's rows byte-for-byte (modulo arrival order — sort
    to compare). *)

module Error = Zkopt_harness.Error
module Faultplan = Zkopt_harness.Faultplan
module Backend = Zkopt_backend.Backend
module Pool = Zkopt_exec.Pool

(* ---- checkpoint / streaming rows ------------------------------------- *)

(** One completed case, as streamed to subscribers and persisted to the
    checkpoint.  [status] is ["agree"] or a {!Case.divergence_key};
    [detail] is ["-"] or the sanitized divergence detail. *)
type row = {
  src : string;
  spec : string;
  status : string;
  detail : string;
}

(* ---- plan ------------------------------------------------------------ *)

type config = {
  sources : Case.source list;
  pipelines : Case.pipeline list;  (** fixed pipelines, every source *)
  random_seqs : int;
      (** per-source random pass sequences (passfuzz-style, derived from
          the source's own coordinate — deterministic across runs) *)
  backends : Backend.t list;
  jobs : int;
  checkpoint : string option;
  resume : bool;  (** load [checkpoint] and skip already-done cases *)
  failure_budget : int option;
  minimize : bool;
  corpus : string option;  (** persist minimized findings under this dir *)
  faultplan : Faultplan.t;
  fuel : int;
  limit : int option;  (** cap the plan after enumeration (tests) *)
  log : string -> unit;
  pool : Pool.t option;
      (** external worker pool to run cases on; [None] = a private pool
          of [jobs] domains.  A service passes its long-lived pool so
          campaigns share the warm domains with every other job kind;
          the campaign never shuts it down. *)
  on_row : (row -> unit) option;
      (** streaming hook, called once per completed-case row — rows
          resumed from the checkpoint first, then rows produced by this
          run in completion order.  Called from worker domains
          concurrently; the callback must be thread-safe. *)
  stop : unit -> bool;
      (** cooperative cancellation, polled before each case: once it
          returns [true], remaining cases are skipped (no row), so a
          later resume picks them up where this run drained. *)
}

let default ~backends =
  {
    sources = [];
    pipelines = [ Case.baseline ];
    random_seqs = 0;
    backends;
    jobs = 1;
    checkpoint = None;
    resume = false;
    failure_budget = None;
    minimize = false;
    corpus = None;
    faultplan = Faultplan.none;
    fuel = Case.default_fuel;
    limit = None;
    log = ignore;
    pool = None;
    on_row = None;
    stop = (fun () -> false);
  }

(* Deterministic per-source integer feeding the random-pipeline rng —
   the same idiom (and 7919 multiplier) as dev/passfuzz.ml, extended to
   workload sources. *)
let source_salt = function
  | Case.Seed { seed; _ } -> seed
  | Case.Workload w -> Hashtbl.hash w land 0xFFFF

let random_pipelines ~(count : int) (src : Case.source) : Case.pipeline list =
  if count <= 0 then []
  else begin
    let passes = Zkopt_passes.Catalog.all_passes () in
    let rng = Random.State.make [| source_salt src * 7919 |] in
    List.init count (fun _ ->
        let len = 1 + Random.State.int rng 8 in
        let seq =
          List.init len (fun _ ->
              List.nth passes (Random.State.int rng (List.length passes)))
        in
        let zk = Random.State.bool rng in
        Case.custom ~zk seq)
  end

(** Enumerate the plan in deterministic order (sources outer, fixed
    pipelines then random sequences inner), deduplicated by row key. *)
let plan (cfg : config) : Case.t list =
  let seen = Hashtbl.create 64 in
  let cases =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun p ->
            let k = Case.source_name src ^ "\t" ^ p.Case.spec in
            if Hashtbl.mem seen k then None
            else begin
              Hashtbl.add seen k ();
              Some { Case.source = src; pipeline = p; backends = cfg.backends }
            end)
          (cfg.pipelines @ random_pipelines ~count:cfg.random_seqs src))
      cfg.sources
  in
  match cfg.limit with
  | None -> cases
  | Some n -> List.filteri (fun i _ -> i < n) cases

(* ---- checkpoint rows ------------------------------------------------- *)

let ckpt_version = "zkopt-fuzzckpt-v1"

let row_key (r : row) = r.src ^ "\t" ^ r.spec

let case_key (c : Case.t) =
  Case.source_name c.Case.source ^ "\t" ^ c.Case.pipeline.Case.spec

let row_of_verdict (c : Case.t) (v : Case.verdict) : row =
  let src = Case.source_name c.Case.source in
  let spec = c.Case.pipeline.Case.spec in
  match v with
  | Case.Agree -> { src; spec; status = "agree"; detail = "-" }
  | Case.Diverged d ->
    {
      src;
      spec;
      status = Case.divergence_key d;
      detail = Corpus.sanitize (Case.divergence_detail d);
    }

(* the terminal "." field makes a kill-truncated row undecodable *)
let encode_row (r : row) : string =
  String.concat "\t" [ r.src; r.spec; r.status; r.detail; "." ]

let decode_row (line : string) : row option =
  match String.split_on_char '\t' line with
  | [ src; spec; status; detail; "." ] when status <> "" ->
    Some { src; spec; status; detail }
  | _ -> None

(** Every decodable row in [path]; missing file = none.  Header lines,
    garbage, and kill-truncated rows are skipped, not fatal. *)
let load_rows (path : string) : row list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rows = ref [] in
    (try
       while true do
         match decode_row (input_line ic) with
         | Some r -> rows := r :: !rows
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !rows
  end

type writer = { oc : out_channel; mu : Mutex.t }

let open_writer (path : string) : writer =
  let existed = Sys.file_exists path in
  (* heal a tail sheared by a kill mid-write: appends must start on a
     fresh line, or the first new row would fuse with the partial one
     and both would fail decoding *)
  if existed then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let sheared =
      n > 0
      && begin
           seek_in ic (n - 1);
           input_char ic <> '\n'
         end
    in
    close_in ic;
    if sheared then begin
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      output_char oc '\n';
      close_out oc
    end
  end;
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  if not existed then begin
    output_string oc (ckpt_version ^ "\n");
    flush oc
  end;
  { oc; mu = Mutex.create () }

let write_row (w : writer) (r : row) =
  Mutex.lock w.mu;
  output_string w.oc (encode_row r);
  output_char w.oc '\n';
  flush w.oc;
  Mutex.unlock w.mu

(* ---- running --------------------------------------------------------- *)

type finding = {
  case : Case.t;
  divergence : Case.divergence;
  corpus_path : string option;  (** where the minimized entry landed *)
  minimized_instrs : int option;  (** instr count after shrinking *)
}

type summary = {
  planned : int;
  resumed : int;  (** cases satisfied from the checkpoint *)
  ran : int;
  agreed : int;
  findings : finding list;  (** divergences found this run, plan order *)
  budget_hit : bool;
}

(* The injected fault relevant to this case, if any — recorded in the
   corpus entry so replay re-injects it. *)
let fault_for (plan : Faultplan.t) (c : Case.t) :
    (string * Faultplan.kind) option =
  let src = Case.source_name c.Case.source in
  let spec = c.Case.pipeline.Case.spec in
  List.find_map
    (fun ((s : Faultplan.site), k) ->
      if
        String.equal s.Faultplan.program src
        && String.equal s.Faultplan.profile spec
        && List.exists
             (fun (b : Backend.t) -> String.equal b.Backend.name s.Faultplan.vm)
             c.Case.backends
      then Some (s.Faultplan.vm, k)
      else None)
    (Faultplan.sites plan)

(* Minimize a diverged case and (optionally) persist it.  Every failure
   mode in here is quarantined: worst case the finding is recorded
   unminimized. *)
let shrink_and_persist (cfg : config) (c : Case.t) (d : Case.divergence) :
    string option * int option =
  let key = Case.divergence_key d in
  let entry_of steps =
    {
      Corpus.source = c.Case.source;
      pipeline = c.Case.pipeline;
      backends = List.map (fun (b : Backend.t) -> b.Backend.name) c.Case.backends;
      fault = fault_for cfg.faultplan c;
      key;
      detail = Case.divergence_detail d;
      steps;
    }
  in
  (* Shrink under a reduced fuel: a candidate reduction that turns a
     loop infinite must cost ~milliseconds (classified out-of-fuel and
     rejected), not the campaign's full fuel budget.  A case whose
     divergence needs more than this to reproduce is persisted
     unminimized — the repro check below fails on the original too. *)
  let shrink_fuel = min cfg.fuel 2_000_000 in
  let minimized =
    if not cfg.minimize then None
    else
      match Case.build_source c.Case.source with
      | exception _ -> None
      | base ->
        let repro m =
          match
            Case.run ~faultplan:cfg.faultplan ~fuel:shrink_fuel c ~base:m
          with
          | Case.Diverged d' -> String.equal (Case.divergence_key d') key
          | Case.Agree | (exception _) -> false
        in
        (try
           let m, steps = Minimize.minimize ~repro base in
           Some (Minimize.instr_count m, steps)
         with _ -> None)
  in
  let instrs, steps =
    match minimized with
    | Some (n, steps) -> (Some n, steps)
    | None -> (None, [])
  in
  let path =
    match cfg.corpus with
    | None -> None
    | Some dir -> (
      try Some (Corpus.save ~dir (entry_of steps)) with _ -> None)
  in
  (path, instrs)

(** Run the campaign to completion (or to the failure budget).  Returns
    the summary; side effects are the checkpoint rows and corpus
    entries. *)
let run (cfg : config) : summary =
  let cases = plan cfg in
  let done_rows = Hashtbl.create 64 in
  if cfg.resume then
    Option.iter
      (fun path ->
        List.iter
          (fun r -> Hashtbl.replace done_rows (row_key r) r)
          (load_rows path))
      cfg.checkpoint;
  let todo, resumed =
    List.partition (fun c -> not (Hashtbl.mem done_rows (case_key c))) cases
  in
  (* resumed rows stream too (in plan order), so a subscriber that
     attaches after a restart still sees the full row sequence *)
  Option.iter
    (fun f ->
      List.iter
        (fun c ->
          Option.iter f (Hashtbl.find_opt done_rows (case_key c)))
        resumed)
    cfg.on_row;
  let writer = Option.map open_writer cfg.checkpoint in
  let mu = Mutex.create () in
  let found = ref 0 in
  let agreed = ref 0 in
  let ran = ref 0 in
  let budget_hit = ref false in
  let results : (string, finding) Hashtbl.t = Hashtbl.create 16 in
  let budget_ok () =
    match cfg.failure_budget with
    | None -> true
    | Some n ->
      if !found >= n then begin
        budget_hit := true;
        false
      end
      else true
  in
  let task (c : Case.t) () =
    let proceed =
      Mutex.lock mu;
      let ok = budget_ok () in
      Mutex.unlock mu;
      ok && not (cfg.stop ())
    in
    if proceed then begin
      (* quarantine: Case.run_case classifies everything its stages can
         raise; this catch-all covers the engine around it so a worker
         never poisons the pool with a fuzz finding *)
      let verdict =
        try Case.run_case ~faultplan:cfg.faultplan ~fuel:cfg.fuel c
        with e ->
          Case.Diverged { Case.stage = Case.Base; kind = Error.classify e }
      in
      let extra =
        match verdict with
        | Case.Agree -> None
        | Case.Diverged d -> Some (d, shrink_and_persist cfg c d)
      in
      Mutex.lock mu;
      incr ran;
      (match extra with
      | None ->
        incr agreed;
        cfg.log (Printf.sprintf "ok    %s / %s" (Case.source_name c.Case.source)
                   c.Case.pipeline.Case.spec)
      | Some (d, (corpus_path, minimized_instrs)) ->
        incr found;
        Hashtbl.replace results (case_key c)
          { case = c; divergence = d; corpus_path; minimized_instrs };
        cfg.log
          (Printf.sprintf "FOUND %s / %s -> %s%s"
             (Case.source_name c.Case.source)
             c.Case.pipeline.Case.spec (Case.divergence_key d)
             (match corpus_path with
             | Some p -> " [" ^ Filename.basename p ^ "]"
             | None -> "")));
      Mutex.unlock mu;
      let row = row_of_verdict c verdict in
      Option.iter (fun w -> write_row w row) writer;
      Option.iter (fun f -> f row) cfg.on_row
    end
  in
  let pool, owned_pool =
    match cfg.pool with
    | Some p -> (p, false)  (* shared service pool: never shut down *)
    | None -> (Pool.create ~jobs:(max 1 cfg.jobs), true)
  in
  List.iter (fun c -> Pool.submit pool (task c)) todo;
  let finish () =
    Pool.wait pool;
    if owned_pool then Pool.shutdown pool
  in
  (match finish () with
  | () -> ()
  | exception e ->
    Option.iter (fun w -> close_out w.oc) writer;
    raise e);
  Option.iter (fun w -> close_out w.oc) writer;
  let findings =
    List.filter_map (fun c -> Hashtbl.find_opt results (case_key c)) cases
  in
  {
    planned = List.length cases;
    resumed = List.length resumed;
    ran = !ran;
    agreed = !agreed;
    findings;
    budget_hit = !budget_hit;
  }

let describe (s : summary) : string =
  Printf.sprintf
    "campaign: %d planned, %d resumed, %d ran, %d agreed, %d diverged%s"
    s.planned s.resumed s.ran s.agreed (List.length s.findings)
    (if s.budget_hit then " (failure budget hit)" else "")
