(** Delta-debugging minimizer over IR.

    Shrinks a failing case's base module while preserving the
    divergence's classification key (checked by a caller-supplied
    [repro] predicate that re-runs the whole oracle stack on each
    candidate).  Reductions are recorded as a replayable {!step} trace:
    a corpus entry stores the source plus its accepted steps, and replay
    regenerates the base and re-applies the trace — no IR parser needed.

    Candidate reductions, coarsest first:

    - drop a whole (unreferenced, non-entry) block;
    - collapse a conditional branch to one of its arms;
    - drop a single instruction;
    - replace a register operand with the immediate 0.

    Every accepted step strictly decreases the lexicographic size
    measure (blocks, instrs, conditional branches, register operands),
    so the greedy loop reaches a fixpoint: a full round in which no
    candidate both applies and reproduces terminates the search.
    Candidates that leave the module ill-formed are rejected
    automatically — the oracle stack classifies them as a [base]-stage
    ill-formed divergence, which cannot match a non-[base] key (and an
    originally ill-formed case must stay ill-formed to reproduce). *)

open Zkopt_ir

type step =
  | Drop_instr of { func : string; block : string; index : int }
  | Drop_block of { func : string; block : string }
  | Cbr_to_br of { func : string; block : string; taken : bool }
  | Imm_operand of { func : string; block : string; index : int; operand : int }
      (** replace the [operand]-th register operand (in {!Instr.map_values}
          traversal order) of instruction [index] with immediate 0 *)

let step_to_string = function
  | Drop_instr { func; block; index } ->
    Printf.sprintf "drop-instr %s %s %d" func block index
  | Drop_block { func; block } -> Printf.sprintf "drop-block %s %s" func block
  | Cbr_to_br { func; block; taken } ->
    Printf.sprintf "cbr-to-br %s %s %b" func block taken
  | Imm_operand { func; block; index; operand } ->
    Printf.sprintf "imm-operand %s %s %d %d" func block index operand

let step_of_string (s : string) : step option =
  match String.split_on_char ' ' s with
  | [ "drop-instr"; func; block; index ] ->
    Option.map
      (fun index -> Drop_instr { func; block; index })
      (int_of_string_opt index)
  | [ "drop-block"; func; block ] -> Some (Drop_block { func; block })
  | [ "cbr-to-br"; func; block; taken ] ->
    Option.map
      (fun taken -> Cbr_to_br { func; block; taken })
      (bool_of_string_opt taken)
  | [ "imm-operand"; func; block; index; operand ] -> (
    match (int_of_string_opt index, int_of_string_opt operand) with
    | Some index, Some operand ->
      Some (Imm_operand { func; block; index; operand })
    | _ -> None)
  | _ -> None

(** Apply one step to [m] in place.  Returns [false] (leaving [m]
    unchanged) when the step addresses a site that no longer exists —
    defensive, so a stale trace or a shifted index cannot corrupt the
    module, only fail to reduce it. *)
let apply (m : Modul.t) (s : step) : bool =
  let with_block func block k =
    match Modul.find_func m func with
    | None -> false
    | Some f -> (
      match Func.find_block f block with None -> false | Some b -> k f b)
  in
  match s with
  | Drop_instr { func; block; index } ->
    with_block func block (fun _ b ->
        if index < 0 || index >= List.length b.Block.instrs then false
        else begin
          b.Block.instrs <- List.filteri (fun i _ -> i <> index) b.Block.instrs;
          true
        end)
  | Drop_block { func; block } ->
    with_block func block (fun f _ ->
        let entry =
          match f.Func.blocks with b :: _ -> b.Block.label | [] -> ""
        in
        let referenced =
          List.exists
            (fun (b' : Block.t) ->
              (not (String.equal b'.Block.label block))
              && List.mem block (Block.successors b'))
            f.Func.blocks
        in
        if String.equal entry block || referenced then false
        else begin
          Func.remove_block f block;
          true
        end)
  | Cbr_to_br { func; block; taken } ->
    with_block func block (fun _ b ->
        match b.Block.term with
        | Instr.Cbr { if_true; if_false; _ } ->
          b.Block.term <- Instr.Br (if taken then if_true else if_false);
          true
        | _ -> false)
  | Imm_operand { func; block; index; operand } ->
    with_block func block (fun _ b ->
        match List.nth_opt b.Block.instrs index with
        | None -> false
        | Some i ->
          let count = ref 0 in
          let hit = ref false in
          let i' =
            Instr.map_values
              (fun v ->
                match v with
                | Value.Reg _ ->
                  let k = !count in
                  incr count;
                  if k = operand then begin
                    hit := true;
                    Value.Imm 0L
                  end
                  else v
                | _ -> v)
              i
          in
          if not !hit then false
          else begin
            b.Block.instrs <-
              List.mapi (fun j x -> if j = index then i' else x) b.Block.instrs;
            true
          end)

let apply_all (m : Modul.t) (steps : step list) : bool =
  List.for_all (fun s -> apply m s) steps

(* The strictly-decreasing size measure behind the fixpoint argument. *)
let size (m : Modul.t) : int =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          let instrs = List.length b.Block.instrs in
          let regops =
            List.fold_left
              (fun acc i -> acc + List.length (Instr.uses i))
              0 b.Block.instrs
          in
          let cbr = match b.Block.term with Instr.Cbr _ -> 1 | _ -> 0 in
          acc + 1 + instrs + regops + cbr)
        acc f.Func.blocks)
    0 m.Modul.funcs

let instr_count = Modul.instr_count

(* Candidate steps for the current module, coarsest reductions first. *)
let candidates (m : Modul.t) : step list =
  List.concat_map
    (fun (f : Func.t) ->
      let func = f.Func.name in
      let entry =
        match f.Func.blocks with b :: _ -> b.Block.label | [] -> ""
      in
      let block_drops =
        List.filter_map
          (fun (b : Block.t) ->
            if String.equal b.Block.label entry then None
            else Some (Drop_block { func; block = b.Block.label }))
          f.Func.blocks
      in
      let per_block =
        List.concat_map
          (fun (b : Block.t) ->
            let block = b.Block.label in
            let cbrs =
              match b.Block.term with
              | Instr.Cbr _ ->
                [
                  Cbr_to_br { func; block; taken = true };
                  Cbr_to_br { func; block; taken = false };
                ]
              | _ -> []
            in
            let drops =
              List.init (List.length b.Block.instrs) (fun index ->
                  Drop_instr { func; block; index })
            in
            let imms =
              List.concat
                (List.mapi
                   (fun index i ->
                     List.init (List.length (Instr.uses i)) (fun operand ->
                         Imm_operand { func; block; index; operand }))
                   b.Block.instrs)
            in
            cbrs @ drops @ imms)
          f.Func.blocks
      in
      block_drops @ per_block)
    m.Modul.funcs

(** Greedily shrink [base] (never mutated) under [repro].  Returns the
    minimized module and the accepted step trace, in application order.
    Within a round, accepted steps apply cumulatively; candidates whose
    indices went stale simply fail to apply or to reproduce, and the
    next round re-enumerates from the smaller module.  Terminates at a
    fixpoint because every accepted step strictly shrinks {!size}. *)
let minimize ~(repro : Modul.t -> bool) (base : Modul.t) :
    Modul.t * step list =
  let current = ref (Clone.modul base) in
  let steps = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun step ->
        let cand = Clone.modul !current in
        if apply cand step && size cand < size !current && repro cand then begin
          current := cand;
          steps := step :: !steps;
          progress := true
        end)
      (candidates !current)
  done;
  (!current, List.rev !steps)
