(** Persistent bug corpus.

    Every campaign-found (and minimized) divergence is stored as one
    self-describing file under a corpus directory: the program source
    coordinate, generator knobs, pipeline, backend set, any injected
    fault, the divergence classification key, and the minimizer's
    reduction trace.  There is no IR parser in this codebase, so the
    minimized program is reconstructed on replay by regenerating the
    source and re-applying the recorded reductions; the pretty-printed
    IR after the [---] separator is informational only and ignored by
    the loader.

    Corpus entries double as a regression gate: {!replay} re-runs the
    full oracle stack and checks that the divergence still classifies
    under the same key (see [dev/corpuscheck.ml], wired into [@smoke]).

    File format ([zkopt-bug-v1]):
    {v
    zkopt-bug-v1
    source: seed:42
    pipeline: zk:inline;licm
    backends: risc0,sp1,valida
    fault: sp1-dense:silent-halt-on-boundary-jalr
    divergence: sp1-dense:emulator-trap
    detail: shard boundary fault (jalr at 0x...)
    reduce: drop-block main bb3
    reduce: imm-operand main entry 2 0
    ---
    <pretty-printed minimized IR, informational>
    v} *)

open Zkopt_ir
module Faultplan = Zkopt_harness.Faultplan
module Backend = Zkopt_backend.Backend

type entry = {
  source : Case.source;
  pipeline : Case.pipeline;
  backends : string list;  (** backend names, resolved on replay *)
  fault : (string * Faultplan.kind) option;
      (** injected executor fault, as [(vm, kind)]; the site coordinates
          are the entry's own source/pipeline *)
  key : string;  (** {!Case.divergence_key} of the original finding *)
  detail : string;  (** human-readable detail of the original finding *)
  steps : Minimize.step list;  (** accepted reduction trace, in order *)
}

let version = "zkopt-bug-v1"

(** Stable identity (and filename stem) for an entry: a digest of the
    coordinates that make two findings "the same bug". *)
let id (e : entry) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            Case.source_name e.source;
            e.pipeline.Case.spec;
            String.concat "," e.backends;
            (match e.fault with
            | None -> "none"
            | Some (vm, k) -> vm ^ ":" ^ Faultplan.kind_name k);
            e.key;
          ]))

let sanitize (s : string) : string =
  String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) s

(** The entry's injected fault as a one-site plan keyed by the entry's
    own coordinates — exactly what {!Case.run} looks the fault up by. *)
let faultplan (e : entry) : Faultplan.t =
  match e.fault with
  | None -> Faultplan.none
  | Some (vm, kind) ->
    Faultplan.inject
      [
        ( {
            Faultplan.program = Case.source_name e.source;
            profile = e.pipeline.Case.spec;
            vm;
          },
          kind );
      ]

(** Rebuild the minimized program: regenerate the source and re-apply
    the reduction trace.  [Error] if the trace no longer applies (e.g.
    the generator changed under the corpus). *)
let build (e : entry) : (Modul.t, string) result =
  match Case.build_source e.source with
  | exception exn ->
    Error
      (Printf.sprintf "source %S failed to build: %s"
         (Case.source_name e.source) (Printexc.to_string exn))
  | m ->
    if Minimize.apply_all m e.steps then Ok m
    else Error "reduction trace no longer applies to the regenerated source"

let to_string (e : entry) ~(program : Modul.t option) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" version;
  line "source: %s" (Case.source_name e.source);
  line "pipeline: %s" e.pipeline.Case.spec;
  line "backends: %s" (String.concat "," e.backends);
  line "fault: %s"
    (match e.fault with
    | None -> "none"
    | Some (vm, k) -> vm ^ ":" ^ Faultplan.kind_name k);
  line "divergence: %s" e.key;
  line "detail: %s" (sanitize e.detail);
  List.iter (fun s -> line "reduce: %s" (Minimize.step_to_string s)) e.steps;
  (match program with
  | None -> ()
  | Some m ->
    line "---";
    Buffer.add_string buf (Printer.modul m));
  Buffer.contents buf

let of_string (s : string) : (entry, string) result =
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: rest when String.equal header version -> (
    let strip_prefix p s =
      let lp = String.length p in
      if String.length s >= lp && String.equal (String.sub s 0 lp) p then
        Some (String.sub s lp (String.length s - lp))
      else None
    in
    let source = ref None
    and pipeline = ref None
    and backends = ref None
    and fault = ref None
    and key = ref None
    and detail = ref ""
    and steps = ref []
    and err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
    (try
       List.iter
         (fun l ->
           if String.equal l "---" then raise Exit
           else if String.equal (String.trim l) "" then ()
           else
             match strip_prefix "source: " l with
             | Some v -> (
               match Case.source_of_name v with
               | Some s -> source := Some s
               | None -> fail "bad source %S" v)
             | None -> (
               match strip_prefix "pipeline: " l with
               | Some v -> (
                 match Case.pipeline_of_spec v with
                 | Ok p -> pipeline := Some p
                 | Error e -> fail "bad pipeline: %s" e)
               | None -> (
                 match strip_prefix "backends: " l with
                 | Some v ->
                   backends :=
                     Some
                       (List.filter
                          (fun b -> b <> "")
                          (String.split_on_char ',' v))
                 | None -> (
                   match strip_prefix "fault: " l with
                   | Some "none" -> fault := Some None
                   | Some v -> (
                     match String.index_opt v ':' with
                     | None -> fail "bad fault %S" v
                     | Some i -> (
                       let vm = String.sub v 0 i in
                       let kn =
                         String.sub v (i + 1) (String.length v - i - 1)
                       in
                       match Faultplan.kind_of_name kn with
                       | Some k -> fault := Some (Some (vm, k))
                       | None -> fail "unknown fault kind %S" kn))
                   | None -> (
                     match strip_prefix "divergence: " l with
                     | Some v -> key := Some v
                     | None -> (
                       match strip_prefix "detail: " l with
                       | Some v -> detail := v
                       | None -> (
                         match strip_prefix "reduce: " l with
                         | Some v -> (
                           match Minimize.step_of_string v with
                           | Some s -> steps := s :: !steps
                           | None -> fail "bad reduction step %S" v)
                         | None -> fail "unrecognized line %S" l)))))))
         rest
     with Exit -> ());
    match (!err, !source, !pipeline, !backends, !key) with
    | Some e, _, _, _, _ -> Error e
    | None, Some source, Some pipeline, Some backends, Some key ->
      Ok
        {
          source;
          pipeline;
          backends;
          fault = Option.value !fault ~default:None;
          key;
          detail = !detail;
          steps = List.rev !steps;
        }
    | None, _, _, _, _ -> Error "missing source/pipeline/backends/divergence")
  | _ -> Error (Printf.sprintf "missing %s header" version)

(* ---- directory I/O --------------------------------------------------- *)

let entry_path ~dir (e : entry) : string = Filename.concat dir (id e ^ ".bug")

(** Write [e] under [dir] (created if needed); returns the file path.
    Idempotent per {!id}: re-finding the same bug overwrites in place. *)
let save ~dir (e : entry) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = entry_path ~dir e in
  let program = match build e with Ok m -> Some m | Error _ -> None in
  let oc = open_out path in
  output_string oc (to_string e ~program);
  close_out oc;
  path

let load_file (path : string) : (entry, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s

(** All [*.bug] entries under [dir], sorted by filename so replay order
    is deterministic.  A missing directory is an empty corpus. *)
let load_dir (dir : string) : (string * (entry, string) result) list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".bug")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load_file path))

(* ---- replay ---------------------------------------------------------- *)

type replay =
  | Reproduced  (** same divergence key as recorded *)
  | Changed of string  (** diverged, but under a different key *)
  | Vanished  (** all oracles now agree *)
  | Broken of string  (** the entry could not be rebuilt *)

let replay_name = function
  | Reproduced -> "reproduced"
  | Changed k -> "changed:" ^ k
  | Vanished -> "vanished"
  | Broken _ -> "broken"

(** Re-run the full oracle stack on the rebuilt minimized program and
    compare classification keys. *)
let replay ?(fuel = Case.default_fuel) (e : entry) : replay =
  match build e with
  | Error msg -> Broken msg
  | Ok base -> (
    match List.map Case.resolve_backend e.backends with
    | exception exn ->
      Broken (Printf.sprintf "backend resolution failed: %s" (Printexc.to_string exn))
    | backends -> (
      let case = { Case.source = e.source; pipeline = e.pipeline; backends } in
      match Case.run ~faultplan:(faultplan e) ~fuel case ~base with
      | Case.Agree -> Vanished
      | Case.Diverged d ->
        let k = Case.divergence_key d in
        if String.equal k e.key then Reproduced else Changed k))
