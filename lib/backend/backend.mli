(** The first-class zkVM backend interface.

    A backend turns an optimized {!Zkopt_ir.Modul.t} into an executable
    artifact ({!compiled}), executes it to a segmented trace under a cost
    model, prices instructions/paging, and models the prover — the four
    stages the paper measures.  The two RV32 cost configs (risc0, sp1)
    and the zk-native Valida-style backend ([lib/valida]) are registry
    instances ({!Registry}); the harness, profiler, bench experiments and
    the [zkbench] CLI are generic over this interface, so a fourth
    backend is a registry entry, not a refactor.

    Design notes:

    - Backends that share a codegen path (risc0 and sp1 both execute the
      same assembled RV32 image) share a [schema] string: the compile
      cache keys on [digest ^ "+" ^ schema], so one {!compiled} serves
      every backend of the family, and {!compiled.measure} dispatches on
      the backend name it is asked to price for.
    - {!compiled} holds closures (it must: execution captures the
      program image), so it cannot be [Marshal]ed.  The [encode] /
      [decode] pair is the disk-cache codec: [encode] serializes the
      pure-data artifact inside the closure ([None] = not disk-cacheable)
      and [decode] rebinds closures around a deserialized artifact and a
      freshly prepared module.
    - Exit values cross this boundary exactly once, already normalized
      to the canonical int64 encoding ({!Zkopt_core.Measure.exit64}), so
      cross-backend conformance checks are a plain [Int64.equal].
    - [accounting] carries the backend's own conservation check (trace
      totals must reconcile with the per-segment journal), evaluated at
      measurement time where the raw trace is still in hand.
    - Every execution path — zkVM pricing and the CPU contrast model —
      observes through one {!Zkopt_zkvm.Machine.sink}; backends never
      expose bespoke callback surfaces. *)

open Zkopt_ir

type measurement = {
  zk : Zkopt_core.Measure.zk_metrics;
  accounting : (unit, string) result;
      (** the backend's cost-conservation oracle over this run's trace *)
  faulted : bool;  (** an injected executor fault fired during the run *)
  seg_padded : int list;
      (** per-segment padded trace area (committed rows after the
          backend's pow2 padding; a multi-chip backend reports the sum
          over its tables), in execution order — the proof-size input
          the settlement models consume *)
}

type compiled = {
  static_instrs : int;  (** static code size, backend instructions *)
  site_of_pc : int32 -> (string * string) option;
      (** provenance: pc -> (function, IR block), for the profiler *)
  spills : (string * int) list;
      (** per-function static spill instruction counts; empty by
          construction on register-free backends — the paper's
          register-pair-spilling mechanism has nowhere to exist *)
  measure :
    vm:string ->
    ?fault:Zkopt_zkvm.Executor.fault ->
    ?fuel:int ->
    ?sink:Zkopt_zkvm.Machine.sink ->
    unit ->
    measurement;
      (** execute + price + prove for backend [vm] (a name of this
          compiled artifact's family; RV32 artifacts serve both
          ["risc0"] and ["sp1"]); [sink] observes every accounted event *)
  measure_cpu :
    (?fuel:int ->
    ?sink:Zkopt_zkvm.Machine.sink ->
    unit ->
    Zkopt_core.Measure.cpu_metrics)
    option;
      (** the RQ3 traditional-CPU contrast model, where the backend's
          instruction stream can drive it; [None] otherwise *)
  encode : unit -> string option;
      (** disk-cache codec, serialize half; [None] = memory-only *)
}

type t = {
  name : string;  (** registry key; the [vm] string in metrics *)
  doc : string;  (** one-line description for [zkbench backends] *)
  zk_native : bool;
      (** true for ISAs designed for arithmetization (no register file,
          multi-chip trace); false for RV32 transpilation backends *)
  schema : string;
      (** codegen-family tag: backends with equal [schema] share
          compiled artifacts (and the disk-cache namespace) *)
  segment_pad : int -> int;
      (** prover padding residue added to a segment/table of [n] trace
          rows (pow2 padding above the backend's floor); the profiler's
          padding dimension mirrors the backend's prover with this *)
  compile : Modul.t -> compiled;
  decode : Modul.t -> string -> compiled option;
      (** disk-cache codec, deserialize half: rebind closures around an
          [encode]d artifact and a structurally identical module *)
}
