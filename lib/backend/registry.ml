(** Name-keyed backend registry.

    The two RV32 cost configs register here at module initialization;
    [lib/valida] self-registers when linked (callers force linkage with
    [Zkopt_valida.Vbackend.ensure ()]).  Registration happens at module
    init on the main domain; afterwards the table is read-only, so
    lookups from worker domains are safe. *)

module Config = Zkopt_zkvm.Config

let table : (string, Backend.t) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref []

let register (b : Backend.t) =
  if Hashtbl.mem table b.Backend.name then
    invalid_arg ("backend already registered: " ^ b.Backend.name);
  Hashtbl.replace table b.Backend.name b;
  order := !order @ [ b.Backend.name ]

(** Registered backend names, in registration order. *)
let names () = !order

let find_opt name = Hashtbl.find_opt table name

(** Look up a backend; the error message lists what is registered, so a
    mistyped [--vm] tells the user their options. *)
let find name =
  match find_opt name with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "unknown backend %S (registered: %s)" name
         (String.concat ", " (names ())))

(** All registered backends, in registration order. *)
let all () = List.map (fun n -> Hashtbl.find table n) !order

let () =
  register
    (Rv32.backend Config.risc0
       ~doc:"RV32 transpilation, RISC Zero-style paging + segment costs");
  register
    (Rv32.backend Config.sp1
       ~doc:"RV32 transpilation, SP1-style shard + memory-checking costs")
