(** The RV32 backend family: the existing codegen path (isel -> linear
    scan regalloc -> RV32 assembly -> paging/segmented executor ->
    single-trace STARK prover), instantiated once per cost config.

    [risc0] and [sp1] share one compiled artifact per module digest —
    they execute the identical instruction image and differ only in how
    {!Zkopt_zkvm.Config} prices it — so {!Backend.compiled.measure}
    resolves the config by backend name at measurement time. *)

open Zkopt_ir
module Measure = Zkopt_core.Measure
module Config = Zkopt_zkvm.Config

let schema = "rv32-cg1"

(** Wrap an assembled RV32 compilation as a family-shared artifact.
    [?config] pins the cost config instead of resolving it from the
    backend name at measurement time — used for ad-hoc config variants
    (e.g. the fuzz engine's dense-shard §4.2 reproduction) that are not
    in {!Config.all}. *)
let of_compiled ?config (c : Measure.compiled) : Backend.compiled =
  let measure ~vm ?fault ?fuel ?sink () =
    let cfg =
      match config with Some cfg -> cfg | None -> Config.by_name vm
    in
    let raw = Measure.run ?fault ?fuel ?sink cfg c in
    (* mirror the prover's per-segment padding exactly: the settlement
       models must price the trace the prover actually commits *)
    let floor = 1 lsl cfg.Config.min_po2 in
    let seg_padded =
      List.map
        (fun (s : Zkopt_zkvm.Executor.segment) ->
          Zkopt_zkvm.Prover.next_pow2
            (max floor
               (s.Zkopt_zkvm.Executor.user_cycles + s.paging_cycles)))
        raw.Zkopt_zkvm.Vm.exec.Zkopt_zkvm.Executor.segments
    in
    {
      Backend.zk = Measure.zk_of_vm raw;
      accounting = Zkopt_zkvm.Vm.check_accounting cfg raw;
      faulted = raw.Zkopt_zkvm.Vm.exec.Zkopt_zkvm.Executor.faulted;
      seg_padded;
    }
  in
  let program = c.Measure.codegen.Zkopt_riscv.Codegen.program in
  {
    Backend.static_instrs = c.Measure.static_instrs;
    site_of_pc = (fun pc -> Zkopt_riscv.Asm.site_of_pc program pc);
    spills =
      List.map
        (fun (s : Zkopt_riscv.Codegen.func_stats) ->
          ( s.Zkopt_riscv.Codegen.fname,
            s.Zkopt_riscv.Codegen.spill_loads
            + s.Zkopt_riscv.Codegen.spill_stores ))
        c.Measure.codegen.Zkopt_riscv.Codegen.stats;
    measure;
    measure_cpu = Some (fun ?fuel ?sink () -> Measure.run_cpu ?fuel ?sink c);
    encode =
      (fun () ->
        Some
          (Marshal.to_string
             (c.Measure.codegen, c.Measure.static_instrs)
             []));
  }

let compile ?config (m : Modul.t) : Backend.compiled =
  of_compiled ?config (Measure.compile_ir m)

let decode ?config (m : Modul.t) (s : string) : Backend.compiled option =
  try
    let (codegen : Zkopt_riscv.Codegen.t), (static_instrs : int) =
      Marshal.from_string s 0
    in
    Some (of_compiled ?config { Measure.modul = m; codegen; static_instrs })
  with _ -> None

(** [backend cfg ~doc] builds a registry-shape backend for a config in
    {!Config.all}; [~fixed:true] instead pins [cfg] into the artifact
    (and gives the backend a private schema so it never shares cached
    artifacts priced under another name's config). *)
let backend ?(fixed = false) (cfg : Config.t) ~doc : Backend.t =
  let config = if fixed then Some cfg else None in
  {
    Backend.name = cfg.Config.name;
    doc;
    zk_native = false;
    schema = (if fixed then schema ^ "@" ^ cfg.Config.name else schema);
    segment_pad =
      (fun n ->
        Zkopt_zkvm.Prover.next_pow2 (max (1 lsl cfg.Config.min_po2) n) - n);
    compile = compile ?config;
    decode = decode ?config;
  }
