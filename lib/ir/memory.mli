(** Byte-addressed guest memory over a direct-mapped page directory.

    Addresses are a 4 GiB unsigned space; storage is 4 KiB [Bytes]
    chunks behind a two-level directory with a one-entry last-chunk
    cache.  The representation is private: callers see two access APIs
    over the same storage.

    This module is purely functional storage — cost accounting (zkVM
    paging, CPU caches) is layered on top by observers. *)

type t

val create : unit -> t

(** Interpret an [int32] address as unsigned. *)
val addr_to_int : int32 -> int

(** {1 int32-addressed API}

    The historical interface, used by the IR interpreter, the reference
    emulator and the Valida frame machine.  Word accesses must be
    4-aligned and fail with ["Memory: misaligned word access at ..."]
    otherwise.  Loads of untouched memory read zero. *)

val load8 : t -> int32 -> int
val store8 : t -> int32 -> int -> unit
val load32 : t -> int32 -> int32
val store32 : t -> int32 -> int32 -> unit
val load64 : t -> int32 -> int64
val store64 : t -> int32 -> int64 -> unit

(** Load/store a value of IR type [ty] under the canonical int64
    encoding ([I32]/[Ptr] zero-extended in the low 32 bits). *)
val load_ty : t -> Ty.t -> int32 -> int64

val store_ty : t -> Ty.t -> int32 -> int64 -> unit

(** Copy an initialized global image into memory ([Zero] is free —
    memory reads zero by construction). *)
val init_global : t -> int32 -> Modul.init -> unit

(** {1 Unsigned-int API}

    The decoded-stream machine's access path: addresses are unsigned
    native ints, no [Int32] is allocated anywhere, and word loads come
    back sign-extended (the machine's register normal form).  Alignment
    failures raise the same exception as the int32 API. *)

(** Byte load at unsigned address. *)
val get8 : t -> int -> int

(** Byte store (low 8 bits of the value) at unsigned address. *)
val set8 : t -> int -> int -> unit

(** Aligned word load, sign-extended to a native int. *)
val get32s : t -> int -> int

(** Aligned word store of the low 32 bits of a native int. *)
val set32 : t -> int -> int -> unit

(** [store_image t base img] blits a pre-assembled little-endian image
    into memory at aligned unsigned address [base]. *)
val store_image : t -> int -> Bytes.t -> unit
