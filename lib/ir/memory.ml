(** Byte-addressed guest memory over a direct-mapped page directory.

    The 4 GiB guest address space is split into 4 KiB chunks addressed
    through a two-level directory (1024 x 1024 flat [Bytes] chunks,
    allocated on first touch) — a pointer chase and two masked indexes
    instead of the hash probe the original [Hashtbl] backing paid on
    every access.  The most recently touched chunk is cached so loops
    that stay within one chunk (almost all of them) resolve in a single
    compare.

    Two address APIs coexist:
    - the original [int32] API ([load8]/[store8]/[load32]/... ), kept
      verbatim for the IR interpreter, the reference emulator and the
      Valida frame machine;
    - an unsigned-[int] API ([get8]/[set8]/[get32s]/[set32]) for the
      decoded-stream machine ({!Zkopt_zkvm.Machine}): no [Int32] boxing
      anywhere on the access path, loads returned sign-extended so the
      caller's register file can stay in untagged native ints.

    This module is purely functional storage — cost accounting (zkVM
    paging, CPU caches) is layered on top by observers. *)

type t = {
  dir : Bytes.t array array;  (* dir.(hi).(lo) = 4 KiB chunk *)
  mutable last_idx : int;     (* chunk number of [last], -1 = none *)
  mutable last : Bytes.t;
}

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits
let l2_bits = 10 (* chunks per directory row *)
let l2_size = 1 lsl l2_bits
let top_size = 1 lsl (32 - chunk_bits - l2_bits)

(* Shared sentinels: a missing row / chunk is physical equality with
   these, so empty directories cost one word per top slot. *)
let no_row : Bytes.t array = [||]
let no_chunk = Bytes.create 0

let create () =
  { dir = Array.make top_size no_row; last_idx = -1; last = no_chunk }

let addr_to_int (a : int32) = Int32.to_int a land 0xFFFF_FFFF

(* Resolve (and allocate) the chunk holding chunk-number [n], refreshing
   the one-entry cache.  Out-of-line so the [chunk] fast path inlines. *)
let chunk_slow t n =
  let hi = n lsr l2_bits in
  let row =
    let r = Array.unsafe_get t.dir hi in
    if r != no_row then r
    else begin
      let r = Array.make l2_size no_chunk in
      Array.unsafe_set t.dir hi r;
      r
    end
  in
  let lo = n land (l2_size - 1) in
  let c = Array.unsafe_get row lo in
  let c =
    if c != no_chunk then c
    else begin
      let c = Bytes.make chunk_size '\000' in
      Array.unsafe_set row lo c;
      c
    end
  in
  t.last_idx <- n;
  t.last <- c;
  c

let[@inline] chunk t n = if n = t.last_idx then t.last else chunk_slow t n

(* ------------------------------------------------------------------ *)
(* Unsigned-int access path (no Int32 on the way)                      *)
(* ------------------------------------------------------------------ *)

let misaligned a =
  failwith
    (Printf.sprintf "Memory: misaligned word access at 0x%08lx"
       (Int32.of_int a))

(** [get8 t a] reads the byte at unsigned address [a]. *)
let[@inline] get8 t a =
  let c = chunk t (a lsr chunk_bits) in
  Char.code (Bytes.unsafe_get c (a land (chunk_size - 1)))

(** [set8 t a v] writes the low byte of [v] at unsigned address [a]. *)
let[@inline] set8 t a v =
  let c = chunk t (a lsr chunk_bits) in
  Bytes.unsafe_set c (a land (chunk_size - 1)) (Char.unsafe_chr (v land 0xff))

(** [get32s t a] reads the aligned word at unsigned address [a],
    sign-extended to a native int (the decoded machine's register
    normal form). *)
let[@inline] get32s t a =
  if a land 3 <> 0 then misaligned a;
  let c = chunk t (a lsr chunk_bits) in
  let o = a land (chunk_size - 1) in
  let b0 = Char.code (Bytes.unsafe_get c o)
  and b1 = Char.code (Bytes.unsafe_get c (o + 1))
  and b2 = Char.code (Bytes.unsafe_get c (o + 2))
  and b3 = Char.code (Bytes.unsafe_get c (o + 3)) in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (v lsl 31) asr 31

(** [set32 t a v] writes the low 32 bits of [v] at aligned unsigned
    address [a]. *)
let[@inline] set32 t a v =
  if a land 3 <> 0 then misaligned a;
  let c = chunk t (a lsr chunk_bits) in
  let o = a land (chunk_size - 1) in
  Bytes.unsafe_set c o (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set c (o + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set c (o + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set c (o + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

(** [store_image t base img] copies a pre-assembled image into memory
    starting at aligned unsigned address [base], chunk-blit at a time
    (the decoded machine installs the code image this way once per
    run). *)
let store_image t base img =
  let len = Bytes.length img in
  let pos = ref 0 in
  while !pos < len do
    let a = base + !pos in
    let c = chunk t (a lsr chunk_bits) in
    let o = a land (chunk_size - 1) in
    let n = min (chunk_size - o) (len - !pos) in
    Bytes.blit img !pos c o n;
    pos := !pos + n
  done

(* ------------------------------------------------------------------ *)
(* int32 API (unchanged semantics)                                     *)
(* ------------------------------------------------------------------ *)

let load8 t addr = get8 t (addr_to_int addr)
let store8 t addr v = set8 t (addr_to_int addr) v

(* Word accesses must be 4-aligned; the fast path stays within one chunk. *)
let check_aligned addr =
  if Int32.to_int addr land 3 <> 0 then
    failwith (Printf.sprintf "Memory: misaligned word access at 0x%08lx" addr)

let load32 t addr =
  check_aligned addr;
  let a = addr_to_int addr in
  let c = chunk t (a lsr chunk_bits) in
  Bytes.get_int32_le c (a land (chunk_size - 1))

let store32 t addr (v : int32) =
  check_aligned addr;
  let a = addr_to_int addr in
  let c = chunk t (a lsr chunk_bits) in
  Bytes.set_int32_le c (a land (chunk_size - 1)) v

(* 64-bit accesses as two word accesses, little-endian. *)
let load64 t addr =
  let lo = Int64.logand (Int64.of_int32 (load32 t addr)) 0xFFFF_FFFFL in
  let hi = Int64.of_int32 (load32 t (Int32.add addr 4l)) in
  Int64.logor lo (Int64.shift_left hi 32)

let store64 t addr (v : int64) =
  store32 t addr (Int64.to_int32 v);
  store32 t (Int32.add addr 4l) (Int64.to_int32 (Int64.shift_right_logical v 32))

(** Load/store value of IR type [ty] under the canonical int64 encoding. *)
let load_ty t (ty : Ty.t) addr =
  match ty with
  | Ty.I32 | Ptr -> Eval.norm32 (Int64.of_int32 (load32 t addr))
  | I64 -> load64 t addr

let store_ty t (ty : Ty.t) addr (v : int64) =
  match ty with
  | Ty.I32 | Ptr -> store32 t addr (Int64.to_int32 v)
  | I64 -> store64 t addr v

(** Copy an initialized global image into memory. *)
let init_global t addr (init : Modul.init) =
  match init with
  | Modul.Zero _ -> () (* memory is zero by construction *)
  | Words ws ->
    Array.iteri (fun i w -> store32 t (Int32.add addr (Int32.of_int (4 * i))) w) ws
