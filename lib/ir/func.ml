(** An IR function.

    Blocks are kept in a mutable ordered list; the first block is the
    entry.  [next_reg] is the virtual register allocator; always mint new
    registers through {!fresh_reg} so ids stay unique. *)

type attrs = {
  mutable always_inline : bool;
  mutable no_inline : bool;
  mutable internal : bool;
      (** not address-taken / externally visible; safe for globaldce,
          dead-arg elimination and signature rewrites *)
}

type t = {
  name : string;
  params : (Value.reg * Ty.t) list;
  ret : Ty.t option;
  mutable blocks : Block.t list;
  mutable next_reg : int;
  mutable next_label : int;
  attrs : attrs;
}

let default_attrs () = { always_inline = false; no_inline = false; internal = true }

let create ~name ~params ~ret =
  let next_reg =
    List.fold_left (fun acc (r, _) -> max acc (r + 1)) 0 params
  in
  { name; params; ret; blocks = []; next_reg; next_label = 0; attrs = default_attrs () }

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" f.name)

let find_block f label =
  List.find_opt (fun (b : Block.t) -> String.equal b.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: no block %S in %s" label f.name)

let add_block f b = f.blocks <- f.blocks @ [ b ]

let remove_block f label =
  f.blocks <- List.filter (fun (b : Block.t) -> not (String.equal b.label label)) f.blocks

let iter_blocks f fn = List.iter fn f.blocks

let iter_instrs f fn =
  List.iter (fun (b : Block.t) -> List.iter (fn b) b.instrs) f.blocks

let instr_count f =
  List.fold_left (fun acc b -> acc + Block.instr_count b) 0 f.blocks

(* Fresh label unique within the function; [hint] keeps names readable.
   The counter lives in the function record — not in shared module state —
   so generated names depend only on the function's own transformation
   history.  That keeps printed IR (and hence compile-cache digests)
   deterministic when sweep cells run on parallel worker domains. *)
let fresh_label f hint =
  let rec try_next () =
    f.next_label <- f.next_label + 1;
    let label = Printf.sprintf "%s.%d" hint f.next_label in
    if find_block f label = None then label else try_next ()
  in
  try_next ()

(** Registers assigned anywhere in the function, with static def counts.
    Registers with count 1 (and not a parameter) behave like SSA values. *)
let def_counts f =
  let counts = Hashtbl.create 64 in
  let bump r = Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)) in
  List.iter (fun (r, _) -> bump r) f.params;
  iter_instrs f (fun _ i -> Option.iter bump (Instr.def i));
  counts

(** The type of each register, reconstructed from definitions and params.
    The verifier guarantees consistency. *)
let reg_types f =
  let types = Hashtbl.create 64 in
  let set r ty = Hashtbl.replace types r ty in
  List.iter (fun (r, ty) -> set r ty) f.params;
  iter_instrs f (fun _ i ->
      match i with
      | Instr.Bin { dst; ty; _ } | Select { dst; ty; _ } | Mov { dst; ty; _ }
      | Load { dst; ty; _ } ->
        set dst ty
      | Cmp { dst; _ } -> set dst Ty.I32
      | Cast { dst; op; _ } ->
        set dst (match op with Instr.Trunc -> Ty.I32 | Zext | Sext -> Ty.I64)
      | Addr { dst; _ } | Alloca { dst; _ } -> set dst Ty.Ptr
      | Call { dst; _ } | Precompile { dst; _ } ->
        (* Calls return I32 or I64 depending on the callee; resolved by the
           caller of this function via the module when needed.  Default to
           I32 here and let [Modul.reg_types] refine. *)
        Option.iter (fun d -> if not (Hashtbl.mem types d) then set d Ty.I32) dst
      | Store _ -> ());
  types
