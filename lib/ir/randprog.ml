(** Seeded random well-formed program generator.

    Used by the property tests (and the pass-development workflow) as a
    differential oracle in the spirit of compiler-testing work the paper
    cites: for any generated program, every optimization pass must
    preserve the interpreted checksum, and the compiled RV32 binary must
    agree with the interpreter.

    Programs always terminate: loops are counted with small constant
    bounds, there are no while loops, and recursion is not generated.
    Memory accesses are masked in-bounds. *)

module B = Builder

(** Size/feature knobs for the generator.  [default_knobs] reproduces the
    historical generator byte-for-byte (same seed, same program), so the
    seeded fuzz corpora stay stable; a fuzz campaign can scale programs
    up ([budget]) or carve out feature subsets ([calls]/[memory]/[wide])
    to localize which construct a divergence needs. *)
type knobs = {
  budget : int;        (** instruction budget for [main]'s body *)
  max_depth : int;     (** loop/branch nesting limit *)
  max_loop_bound : int;(** loop trip counts are 1..this *)
  calls : bool;        (** emit calls to the helper function *)
  memory : bool;       (** emit global-array loads and stores *)
  wide : bool;         (** emit i64 variables and operations *)
}

let default_knobs =
  { budget = 60; max_depth = 3; max_loop_bound = 6;
    calls = true; memory = true; wide = true }

type gen = {
  rng : Random.State.t;
  knobs : knobs;
  mutable vars32 : Value.reg list;   (* mutable i32 variables *)
  mutable vars64 : Value.reg list;
  mutable ro32 : Value.reg list;     (* readable but never reassigned (loop ivs) *)
  mutable depth : int;
  mutable budget : int;              (* remaining instructions to emit *)
}

let array_words = 64 (* each global array holds 64 words *)

let pick g xs = List.nth xs (Random.State.int g.rng (List.length xs))

let rand_imm g =
  match Random.State.int g.rng 6 with
  | 0 -> B.imm 0
  | 1 -> B.imm 1
  | 2 -> B.imm (-1)
  | 3 -> B.imm (Random.State.int g.rng 64)
  | 4 -> B.imm (Random.State.int g.rng 1_000_000 - 500_000)
  | _ -> B.imm64 (Random.State.int64 g.rng Int64.max_int)

let rand_value32 g =
  let readable = g.ro32 @ g.vars32 in
  if readable <> [] && Random.State.bool g.rng then Value.Reg (pick g readable)
  else
    match rand_imm g with
    | Value.Imm i -> Value.Imm (Eval.norm32 i)
    | v -> v

let rand_value64 g =
  if g.vars64 <> [] && Random.State.bool g.rng then Value.Reg (pick g g.vars64)
  else rand_imm g

let binops64 =
  [| Instr.Add; Sub; Mul; Div; Rem; Udiv; Urem; And; Or; Xor; Shl; Lshr; Ashr |]

let binops32 = Array.append binops64 [| Instr.Mulhu |]

let cmpops = [| Instr.Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge |]

let rand_expr32 g b =
  match Random.State.int g.rng 10 with
  | 0 | 1 | 2 | 3 ->
    let op = binops32.(Random.State.int g.rng (Array.length binops32)) in
    B.bin b Ty.I32 op (rand_value32 g) (rand_value32 g)
  | 4 ->
    let op = cmpops.(Random.State.int g.rng (Array.length cmpops)) in
    B.icmp b op (rand_value32 g) (rand_value32 g)
  | 5 ->
    B.select b
      (B.icmp b Instr.Ne (rand_value32 g) (B.imm 0))
      (rand_value32 g) (rand_value32 g)
  | 6 when g.vars64 <> [] -> B.trunc b (rand_value64 g)
  | 7 when g.knobs.memory ->
    (* in-bounds load *)
    let idx = B.and_ b (rand_value32 g) (B.imm (array_words - 1)) in
    B.load b (B.addr b (Value.Glob "garr") ~index:idx)
  | _ -> rand_value32 g |> fun v -> B.add b v (B.imm 0)

let rand_expr64 g b =
  match Random.State.int g.rng 6 with
  | 0 | 1 | 2 ->
    let op = binops64.(Random.State.int g.rng (Array.length binops64)) in
    B.bin b Ty.I64 op (rand_value64 g) (rand_value64 g)
  | 3 -> B.zext b (rand_value32 g)
  | 4 -> B.sext b (rand_value32 g)
  | _ ->
    B.select ~ty:Ty.I64 b
      (B.icmp ~ty:Ty.I64 b Instr.Slt (rand_value64 g) (rand_value64 g))
      (rand_value64 g) (rand_value64 g)

let rec rand_stmt g b ~can_call =
  g.budget <- g.budget - 1;
  if g.budget <= 0 then ()
  else
    match Random.State.int g.rng 12 with
    | 0 | 1 | 2 ->
      let v = rand_expr32 g b in
      let r = B.var b Ty.I32 v in
      g.vars32 <- r :: g.vars32
    | 3 when g.knobs.wide ->
      let v = rand_expr64 g b in
      let r = B.var b Ty.I64 v in
      g.vars64 <- r :: g.vars64
    | 4 when g.vars32 <> [] ->
      B.set b Ty.I32 (pick g g.vars32) (rand_expr32 g b)
    | 5 when g.vars64 <> [] && g.knobs.wide ->
      B.set b Ty.I64 (pick g g.vars64) (rand_expr64 g b)
    | 6 when g.knobs.memory ->
      (* in-bounds store *)
      let idx = B.and_ b (rand_value32 g) (B.imm (array_words - 1)) in
      B.store b ~addr:(B.addr b (Value.Glob "garr") ~index:idx) (rand_value32 g)
    | 7 when g.depth < g.knobs.max_depth ->
      let bound = 1 + Random.State.int g.rng g.knobs.max_loop_bound in
      g.depth <- g.depth + 1;
      let saved32 = g.vars32 and saved64 = g.vars64 and saved_ro = g.ro32 in
      B.for_ b ~from:(B.imm 0) ~bound:(B.imm bound) (fun iv ->
          g.ro32 <- (match iv with Value.Reg r -> r :: saved_ro | _ -> saved_ro);
          let n = 1 + Random.State.int g.rng 3 in
          for _ = 1 to n do
            rand_stmt g b ~can_call
          done);
      g.vars32 <- saved32;
      g.vars64 <- saved64;
      g.ro32 <- saved_ro;
      g.depth <- g.depth - 1
    | 8 when g.depth < g.knobs.max_depth ->
      let c = B.icmp b Instr.Ne (rand_value32 g) (B.imm 0) in
      g.depth <- g.depth + 1;
      let saved32 = g.vars32 and saved64 = g.vars64 in
      let arm () =
        g.vars32 <- saved32;
        g.vars64 <- saved64;
        let n = 1 + Random.State.int g.rng 3 in
        for _ = 1 to n do
          rand_stmt g b ~can_call
        done
      in
      if Random.State.bool g.rng then B.if_ b c ~then_:arm ()
      else B.if_ b c ~then_:arm ~else_:arm ();
      g.vars32 <- saved32;
      g.vars64 <- saved64;
      g.depth <- g.depth - 1
    | 9 when can_call && g.knobs.calls ->
      let r = B.callv b "helper" [ rand_value32 g; rand_value64 g ] in
      g.vars32 <- (match r with Value.Reg r -> r :: g.vars32 | _ -> g.vars32)
    | _ ->
      let v = rand_expr32 g b in
      let r = B.var b Ty.I32 v in
      g.vars32 <- r :: g.vars32

let checksum_expr g b =
  let acc = B.var b Ty.I32 (B.imm 0x9E3779B9) in
  List.iter
    (fun r ->
      let mixed = B.mul b (Value.Reg acc) (B.imm 31) in
      B.set b Ty.I32 acc (B.xor b mixed (Value.Reg r)))
    g.vars32;
  List.iter
    (fun r ->
      let lo = B.trunc b (Value.Reg r) in
      let hi = B.trunc b (B.lshr ~ty:Ty.I64 b (Value.Reg r) (B.imm 32)) in
      let mixed = B.mul b (Value.Reg acc) (B.imm 33) in
      B.set b Ty.I32 acc (B.xor b mixed (B.add b lo hi)))
    g.vars64;
  (* fold the global array in as well *)
  B.for_ b ~from:(B.imm 0) ~bound:(B.imm array_words) (fun i ->
      let v = B.load b (B.addr b (Value.Glob "garr") ~index:i) in
      let mixed = B.mul b (Value.Reg acc) (B.imm 37) in
      B.set b Ty.I32 acc (B.xor b mixed v));
  Value.Reg acc

(** Generate a random module whose [main] returns a checksum of every
    live variable and the global array.  [probe] (debugging aid) returns
    the value of a single i32/i64 variable instead of the checksum. *)
let generate ?probe ?(knobs = default_knobs) ~seed () : Modul.t =
  let rng = Random.State.make [| seed |] in
  let m = Modul.create () in
  ignore
    (B.global_words m "garr"
       (Array.init array_words (fun i ->
            Int32.of_int (Random.State.int rng 0x3FFFFFFF + i))));
  (* a small helper so passes like inline/ipsccp/deadarg have material *)
  ignore
    (B.define m "helper" ~params:[ Ty.I32; Ty.I64 ] ~ret:Ty.I32 (fun b ps ->
         let g = { rng; knobs; vars32 = []; vars64 = []; ro32 = [];
                   depth = max 0 (knobs.max_depth - 1); budget = 8 } in
         (match ps with
         | [ Value.Reg a; Value.Reg b64 ] ->
           g.vars32 <- [ a ];
           g.vars64 <- [ b64 ]
         | _ -> ());
         for _ = 1 to 4 do
           rand_stmt g b ~can_call:false
         done;
         let acc = B.var b Ty.I32 (B.imm 17) in
         List.iter
           (fun r -> B.set b Ty.I32 acc (B.xor b (Value.Reg acc) (Value.Reg r)))
           g.vars32;
         B.ret b (Some (Value.Reg acc))));
  ignore
    (B.define m "main" ~params:[] ~ret:Ty.I32 (fun b _ ->
         let g = { rng; knobs; vars32 = []; vars64 = []; ro32 = []; depth = 0;
                   budget = knobs.budget } in
         let n = 6 + Random.State.int rng 10 in
         for _ = 1 to n do
           rand_stmt g b ~can_call:true
         done;
         match probe with
         | None -> B.ret b (Some (checksum_expr g b))
         | Some k ->
           let n32 = List.length g.vars32 in
           if k < n32 then B.ret b (Some (Value.Reg (List.nth g.vars32 k)))
           else begin
             let r = List.nth g.vars64 (k - n32) in
             let lo = B.trunc b (Value.Reg r) in
             let hi = B.trunc b (B.lshr ~ty:Ty.I64 b (Value.Reg r) (B.imm 32)) in
             B.ret b (Some (B.xor b lo (B.mul b hi (B.imm 2654435761))))
           end));
  m


