(** Deep copy of IR, so that each optimization profile starts from a
    pristine module. *)

let block (b : Block.t) : Block.t =
  { Block.label = b.label; instrs = b.instrs; term = b.term }

let func (f : Func.t) : Func.t =
  {
    Func.name = f.Func.name;
    params = f.params;
    ret = f.ret;
    blocks = List.map block f.blocks;
    next_reg = f.next_reg;
    next_label = f.next_label;
    attrs =
      {
        Func.always_inline = f.attrs.always_inline;
        no_inline = f.attrs.no_inline;
        internal = f.attrs.internal;
      };
  }

let modul (m : Modul.t) : Modul.t =
  { Modul.globals = m.globals; funcs = List.map func m.funcs }
