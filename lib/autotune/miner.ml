(** §4.2 sequence mining over tuned-genome populations.

    The paper's best/worst analysis asks which passes — and which
    *orderings* of passes — separate the sequences the autotuner keeps
    from the ones it discards ("inline in 573/580 best sequences; licm
    in 385 worst; inline-then-licm appears in both camps").  This module
    generalizes the original two counters to:

    - containment and ordered-pair counts (the original primitives,
      re-exported by {!Autotune} for compatibility), where an ordered
      pair [a..a] requires two distinct occurrences;
    - full non-contiguous subsequence containment ({!count_subsequence});
    - an exhaustive ordered-pair table over the observed alphabet;
    - level-wise mining of frequent common subsequences, filtered to the
      {e maximal} ones (no mined supersequence also meets the support
      floor);
    - best/worst {e contrast scores}: the support-rate difference
      [support_best/|best| - support_worst/|worst|], positive for
      motifs that characterize winning pipelines and negative for the
      losing camp's.

    Everything here is pure list crunching over [string list] genomes;
    the input sets are the [top5]/[bottom5] populations of a batch of
    {!Autotune.result}s, i.e. tens of sequences of length <= 20, so the
    level-wise miner's candidate growth is bounded by [max_len] rather
    than by cleverness. *)

(** How many of [sequences] contain pass [p]. *)
let count_containing p sequences =
  List.length (List.filter (fun s -> List.mem p s) sequences)

(** How many of [sequences] contain [a] followed (not necessarily
    adjacently) by [b].  When [a = b] this demands two occurrences. *)
let count_ordered_pair a b sequences =
  List.length
    (List.filter
       (fun s ->
         let rec scan saw_a = function
           | [] -> false
           | x :: tl ->
             if saw_a && String.equal x b then true
             else scan (saw_a || String.equal x a) tl
         in
         scan false s)
       sequences)

(** [is_subsequence sub s]: does [s] contain [sub] in order, not
    necessarily contiguously?  The empty sequence is a subsequence of
    everything. *)
let is_subsequence (sub : string list) (s : string list) : bool =
  let rec go sub s =
    match (sub, s) with
    | [], _ -> true
    | _, [] -> false
    | x :: subtl, y :: stl ->
      if String.equal x y then go subtl stl else go sub stl
  in
  go sub s

(** How many of [sequences] contain [sub] as an ordered, possibly
    non-contiguous subsequence. *)
let count_subsequence sub sequences =
  List.length (List.filter (is_subsequence sub) sequences)

(** The sorted, deduplicated set of passes appearing in [sequences]. *)
let alphabet (sequences : string list list) : string list =
  List.sort_uniq String.compare (List.concat sequences)

(** Every ordered pair (including [a..a]) with a non-zero count, sorted
    by count descending then pair name — the §4.2 pair table in one
    call. *)
let pair_table (sequences : string list list) :
    ((string * string) * int) list =
  let genes = alphabet sequences in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          let c = count_ordered_pair a b sequences in
          if c > 0 then Some ((a, b), c) else None)
        genes)
    genes
  |> List.sort (fun ((a1, b1), c1) ((a2, b2), c2) ->
         compare (c2, a1, b1) (c1, a2, b2))

(** Level-wise (Apriori-style) frequent-subsequence mining: all
    subsequences of length <= [max_len] over the frequent alphabet whose
    support (number of containing sequences) is >= [min_support],
    each with its support.  Candidates at level k+1 extend a frequent
    level-k sequence by one frequent gene, which is complete because
    support is antitone in subsequence extension. *)
let frequent ?(min_support = 2) ?(max_len = 4) (sequences : string list list)
    : (string list * int) list =
  let min_support = max 1 min_support in
  let support sub = count_subsequence sub sequences in
  let l1 =
    List.filter_map
      (fun g ->
        let s = support [ g ] in
        if s >= min_support then Some ([ g ], s) else None)
      (alphabet sequences)
  in
  let fgenes = List.map (fun (s, _) -> List.hd s) l1 in
  let rec grow level acc len =
    if len >= max_len || level = [] then acc
    else
      let next =
        List.concat_map
          (fun (sq, _) ->
            List.filter_map
              (fun g ->
                let c = sq @ [ g ] in
                let s = support c in
                if s >= min_support then Some (c, s) else None)
              fgenes)
          level
      in
      grow next (acc @ next) (len + 1)
  in
  grow l1 l1 1

(** Keep only the maximal mined sequences: drop any that is a proper
    subsequence of another mined sequence (the shorter one carries no
    information the longer one doesn't). *)
let maximal (mined : (string list * int) list) : (string list * int) list =
  List.filter
    (fun (s, _) ->
      not
        (List.exists
           (fun (t, _) -> (not (t = s)) && is_subsequence s t)
           mined))
    mined

(** One mined motif scored against the best and worst camps. *)
type contrast = {
  seq : string list;
  support_best : int;
  support_worst : int;
  score : float;
      (** [support_best/|best| - support_worst/|worst|]; +1.0 = in every
          best sequence and no worst one, -1.0 the reverse *)
}

(** Mine maximal common subsequences over [best @ worst] (so motifs
    common to either camp are candidates) and score each by its
    support-rate contrast.  [min_support] defaults to a majority of the
    best camp.  Sorted by score descending; ties break on the motif. *)
let contrast_mine ?min_support ?(max_len = 3) ~(best : string list list)
    ~(worst : string list list) () : contrast list =
  let nb = List.length best and nw = List.length worst in
  let ms =
    match min_support with Some m -> m | None -> max 2 ((nb + 1) / 2)
  in
  let mined = maximal (frequent ~min_support:ms ~max_len (best @ worst)) in
  let frac s n = if n = 0 then 0.0 else float_of_int s /. float_of_int n in
  List.map
    (fun (sq, _) ->
      let sb = count_subsequence sq best and sw = count_subsequence sq worst in
      {
        seq = sq;
        support_best = sb;
        support_worst = sw;
        score = frac sb nb -. frac sw nw;
      })
    mined
  |> List.sort (fun a b -> compare (b.score, a.seq) (a.score, b.seq))
