(** Genetic autotuner over pass sequences (the paper's RQ2 OpenTuner
    setup): genomes are pass-name sequences up to depth 20, fitness is
    the zkVM cycle count — cheap and strongly correlated with both
    execution and proving time (§4.1) — and search runs a fixed iteration
    budget with tournament selection, one-point crossover and
    insert/delete/replace/swap mutations. *)

open Zkopt_passes

type genome = string list

type individual = {
  genome : genome;
  fitness : int;  (* cycles; lower is better *)
}

type result = {
  best : individual;
  top5 : individual list;
  bottom5 : individual list;
  evaluations : int;
  history : int list;  (* best fitness per generation *)
}

let max_depth = 20

let gene_pool = Catalog.swept_passes

let random_gene rng = List.nth gene_pool (Random.State.int rng (List.length gene_pool))

let random_genome rng =
  let len = 1 + Random.State.int rng max_depth in
  List.init len (fun _ -> random_gene rng)

let mutate rng (g : genome) : genome =
  let g = Array.of_list g in
  let n = Array.length g in
  match Random.State.int rng 4 with
  | 0 when n < max_depth ->
    (* insert *)
    let pos = Random.State.int rng (n + 1) in
    Array.to_list (Array.concat [ Array.sub g 0 pos; [| random_gene rng |];
                                  Array.sub g pos (n - pos) ])
  | 1 when n > 1 ->
    (* delete *)
    let pos = Random.State.int rng n in
    Array.to_list (Array.append (Array.sub g 0 pos) (Array.sub g (pos + 1) (n - pos - 1)))
  | 2 ->
    (* replace *)
    let pos = Random.State.int rng n in
    g.(pos) <- random_gene rng;
    Array.to_list g
  | _ ->
    if n >= 2 then begin
      let i = Random.State.int rng n and j = Random.State.int rng n in
      let t = g.(i) in
      g.(i) <- g.(j);
      g.(j) <- t
    end;
    Array.to_list g

let crossover rng (a : genome) (b : genome) : genome =
  let a = Array.of_list a and b = Array.of_list b in
  let cut_a = Random.State.int rng (Array.length a + 1) in
  let cut_b = Random.State.int rng (Array.length b + 1) in
  let child =
    Array.to_list (Array.append (Array.sub a 0 cut_a)
                     (Array.sub b cut_b (Array.length b - cut_b)))
  in
  match child with
  | [] -> [ random_gene rng ]
  | c when List.length c > max_depth ->
    List.filteri (fun i _ -> i < max_depth) c
  | c -> c

(** Fitness closure for the classic path: zkVM cycle count under [vm]
    after applying the genome with the standard cost model. *)
let zkvm_cycles ?fuel ~(build : unit -> Zkopt_ir.Modul.t)
    (vm : Zkopt_zkvm.Config.t) (g : genome) : int =
  let profile = Zkopt_core.Profile.Custom (g, Pass.standard_config) in
  let c = Zkopt_core.Measure.prepare ~build profile in
  let m = Zkopt_core.Measure.run_zkvm ?fuel vm c in
  m.Zkopt_core.Measure.cycles

(** Fitness closure over an arbitrary registered backend: trace
    rows/cycles of the backend's own cost model, so the GA can tune for
    a zk-native ISA exactly as it tunes for the RV32 pair. *)
let backend_cycles ?fuel ~(build : unit -> Zkopt_ir.Modul.t)
    (b : Zkopt_backend.Backend.t) (g : genome) : int =
  let profile = Zkopt_core.Profile.Custom (g, Pass.standard_config) in
  let m = Zkopt_core.Measure.prepare_ir ~build profile in
  let c = b.Zkopt_backend.Backend.compile m in
  let r = c.Zkopt_backend.Backend.measure ~vm:b.Zkopt_backend.Backend.name ?fuel () in
  r.Zkopt_backend.Backend.zk.Zkopt_core.Measure.cycles

(** Guarded fitness: failures (pathological sequences blowing fuel, or
    any compile/execute error) score worst. *)
let evaluate ~(cycles : genome -> int) (g : genome) : int =
  try cycles g with _ -> max_int

(** Run the GA.  [iterations] counts genome evaluations (the paper uses
    160 for the broad sweep and 1600 for the NPB/crypto deep dives).
    [cycles] is the raw fitness — build one with {!zkvm_cycles} or
    {!backend_cycles}, or pass any [genome -> int]. *)
let run ?(seed = 1) ?(population = 16) ?(iterations = 160)
    ~(cycles : genome -> int) () : result =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    { genome = g; fitness = evaluate ~cycles g }
  in
  let cmp a b = compare a.fitness b.fitness in
  let pop = ref (List.sort cmp (List.init population (fun _ -> eval (random_genome rng)))) in
  let everyone = ref !pop in
  let history = ref [] in
  let tournament () =
    let pick () = List.nth !pop (Random.State.int rng (List.length !pop)) in
    let a = pick () and b = pick () in
    if a.fitness <= b.fitness then a else b
  in
  while !evaluations < iterations do
    let parent1 = tournament () and parent2 = tournament () in
    let child_g =
      let g = crossover rng parent1.genome parent2.genome in
      if Random.State.bool rng then mutate rng g else g
    in
    let child = eval child_g in
    everyone := child :: !everyone;
    (* steady-state replacement of the worst *)
    let sorted = List.sort cmp (child :: !pop) in
    pop := List.filteri (fun i _ -> i < population) sorted;
    history := (List.hd !pop).fitness :: !history
  done;
  let all_sorted = List.sort cmp !everyone in
  let take n l = List.filteri (fun i _ -> i < n) l in
  {
    best = List.hd all_sorted;
    top5 = take 5 all_sorted;
    bottom5 = take 5 (List.rev (List.filter (fun i -> i.fitness < max_int) all_sorted));
    evaluations = !evaluations;
    history = List.rev !history;
  }

(* ------------------------------------------------------------------ *)
(* Subsequence mining (RQ2's best/worst sequence analysis)             *)
(* ------------------------------------------------------------------ *)

(** How many of [sequences] contain pass [p]. *)
let count_containing p sequences =
  List.length (List.filter (fun s -> List.mem p s) sequences)

(** How many of [sequences] contain [a] followed (not necessarily
    adjacently) by [b]. *)
let count_ordered_pair a b sequences =
  List.length
    (List.filter
       (fun s ->
         let rec scan saw_a = function
           | [] -> false
           | x :: tl ->
             if saw_a && String.equal x b then true
             else scan (saw_a || String.equal x a) tl
         in
         scan false s)
       sequences)
