(** Parallel genetic autotuner over pass sequences (the paper's RQ2
    OpenTuner setup, at full budget).

    Genomes are pass-name sequences up to depth 20; fitness is the zkVM
    cycle count — cheap and strongly correlated with both execution and
    proving time (§4.1).  The search is generational: each generation
    breeds [population] children from the survivor pool (tournament
    selection, one-point crossover, insert/delete/replace/swap
    mutations), evaluates the whole batch in parallel over a
    {!Zkopt_exec.Pool}, and merges results back in submission order.

    Three properties distinguish this engine from a naive GA loop:

    - {b Determinism independent of [jobs].}  The RNG stream is consumed
      only on the coordinating domain (breeding), never during
      evaluation; batch results land in an index-keyed slot array, so
      survivor selection sees the same verdicts in the same order no
      matter how the pool interleaved the work.  A fixed seed therefore
      produces byte-identical checkpoint rows at any [--jobs].
    - {b Prefix-cached compilation.}  Applying a pipeline is
      left-to-right, so the module after [p1; p2; p3] extends the module
      after [p1; p2].  Partially-optimized modules are content-addressed
      by {!Zkopt_exec.Fingerprint.of_pipeline} (program salt + pass
      prefix) in a shared {!Zkopt_exec.Cache}: crossover children that
      inherit a parent's prefix — the common case — skip straight to the
      first novel pass.  Measured scores are additionally recorded per
      (target, structural fingerprint), so a genome whose final module
      is structurally identical to one already measured costs nothing
      ([dedup]), and a genome whose already-scored {e prefix} is no
      better than the current worst survivor can be discarded without
      measuring ([prune] — a heuristic: a suffix could still help, so
      pruning trades a little search fidelity for a lot of budget).
    - {b Kill-safe checkpointing.}  Each generation appends one row per
      child plus a generation summary row; {!search} with
      [resume = true] replays completed generations from the row log
      (consuming the identical RNG stream) and resumes live evaluation
      at the first incomplete generation, so an interrupted run
      continues byte-identically. *)

open Zkopt_passes
module Pool = Zkopt_exec.Pool
module Cache = Zkopt_exec.Cache
module Fingerprint = Zkopt_exec.Fingerprint
module Error = Zkopt_harness.Error
module Backend = Zkopt_backend.Backend
module Modul = Zkopt_ir.Modul

type genome = string list

type individual = {
  genome : genome;
  fitness : int;  (* cycles; lower is better *)
}

type result = {
  best : individual;
  top5 : individual list;
  bottom5 : individual list;
  evaluations : int;
  history : int list;  (* best fitness per generation *)
}

let max_depth = 20

let gene_pool = Catalog.swept_passes

let random_gene rng = List.nth gene_pool (Random.State.int rng (List.length gene_pool))

let random_genome rng =
  let len = 1 + Random.State.int rng max_depth in
  List.init len (fun _ -> random_gene rng)

let mutate rng (g : genome) : genome =
  let g = Array.of_list g in
  let n = Array.length g in
  match Random.State.int rng 4 with
  | 0 when n < max_depth ->
    (* insert *)
    let pos = Random.State.int rng (n + 1) in
    Array.to_list (Array.concat [ Array.sub g 0 pos; [| random_gene rng |];
                                  Array.sub g pos (n - pos) ])
  | 1 when n > 1 ->
    (* delete *)
    let pos = Random.State.int rng n in
    Array.to_list (Array.append (Array.sub g 0 pos) (Array.sub g (pos + 1) (n - pos - 1)))
  | 2 ->
    (* replace *)
    let pos = Random.State.int rng n in
    g.(pos) <- random_gene rng;
    Array.to_list g
  | _ ->
    if n >= 2 then begin
      let i = Random.State.int rng n and j = Random.State.int rng n in
      let t = g.(i) in
      g.(i) <- g.(j);
      g.(j) <- t
    end;
    Array.to_list g

let crossover rng (a : genome) (b : genome) : genome =
  let a = Array.of_list a and b = Array.of_list b in
  let cut_a = Random.State.int rng (Array.length a + 1) in
  let cut_b = Random.State.int rng (Array.length b + 1) in
  let child =
    Array.to_list (Array.append (Array.sub a 0 cut_a)
                     (Array.sub b cut_b (Array.length b - cut_b)))
  in
  match child with
  | [] -> [ random_gene rng ]
  | c when List.length c > max_depth ->
    List.filteri (fun i _ -> i < max_depth) c
  | c -> c

(* ------------------------------------------------------------------ *)
(* Failure classification                                              *)
(* ------------------------------------------------------------------ *)

(** Is [e] a failure mode a pathological pass sequence is {e expected}
    to produce (fuel exhaustion, compile/lowering errors, traps,
    ill-formed IR)?  Those score [max_int] and the search moves on.
    Everything that indicates a bug in the toolchain itself — checksum
    divergence, accounting violations, assertion failures,
    [Stack_overflow], unclassified exceptions — must propagate: folding
    a miscompile into a bad fitness score would make the autotuner
    silently search {e around} soundness bugs. *)
let expected_failure (e : exn) : bool =
  match e with
  | Stack_overflow | Assert_failure _ | Out_of_memory -> false
  | e -> (
    match Error.classify e with
    | Error.Out_of_fuel _ | Error.Emulator_trap _ | Error.Decode_error _
    | Error.Asm_error _ | Error.Isel_unsupported _ | Error.Ill_formed _ ->
      true
    | Error.Miscompile _ | Error.Accounting_violation _ | Error.Uncaught _ ->
      false)

(** Guarded fitness: expected failures score worst, toolchain bugs
    propagate (see {!expected_failure}). *)
let evaluate ~(cycles : genome -> int) (g : genome) : int =
  try cycles g with e when expected_failure e -> max_int

(* ------------------------------------------------------------------ *)
(* Objective closures                                                  *)
(* ------------------------------------------------------------------ *)

(** Fitness closure for the classic path: zkVM cycle count under [vm]
    after applying the genome with the standard cost model. *)
let zkvm_cycles ?fuel ~(build : unit -> Modul.t)
    (vm : Zkopt_zkvm.Config.t) (g : genome) : int =
  let profile = Zkopt_core.Profile.Custom (g, Pass.standard_config) in
  let c = Zkopt_core.Measure.prepare ~build profile in
  let m = Zkopt_core.Measure.run_zkvm ?fuel vm c in
  m.Zkopt_core.Measure.cycles

(** Fitness closure over an arbitrary registered backend: trace
    rows/cycles of the backend's own cost model, so the GA can tune for
    a zk-native ISA exactly as it tunes for the RV32 pair. *)
let backend_cycles ?fuel ~(build : unit -> Modul.t)
    (b : Backend.t) (g : genome) : int =
  let profile = Zkopt_core.Profile.Custom (g, Pass.standard_config) in
  let m = Zkopt_core.Measure.prepare_ir ~build profile in
  let c = b.Backend.compile m in
  let r = c.Backend.measure ~vm:b.Backend.name ?fuel () in
  r.Backend.zk.Zkopt_core.Measure.cycles

(** One measurement axis of the objective.  [tname] identifies the axis
    in score records and checkpoint rows; [pname] salts the prefix cache
    (targets over the same program share partially-optimized modules
    even when they price on different backends); [measure] receives a
    fully prepared (linked, optimized, pruned, verified) module plus its
    structural fingerprint and returns cycles. *)
type target = {
  tname : string;
  pname : string;
  weight : float;  (** contribution to the combined fitness *)
  build : unit -> Modul.t;
  measure : fp:string -> Modul.t -> int;
}

(** A target pricing [program] on backend [b], optionally compiling
    through the shared artifact [cache] (keyed structurally, so two
    genomes producing identical modules share one compiled artifact).
    An accounting violation raises {!Error.Accounting} — a conservation
    bug is never a legitimate fitness. *)
let backend_target ?fuel ?cache ?(weight = 1.0) ~(program : string)
    ~(build : unit -> Modul.t) (b : Backend.t) : target =
  let compiled ~fp (m : Modul.t) =
    match cache with
    | None -> b.Backend.compile m
    | Some cache ->
      Cache.get_or_compile cache
        ~digest:(fp ^ "+" ^ b.Backend.schema)
        ~codec:
          {
            Cache.enc = (fun (c : Backend.compiled) -> c.Backend.encode ());
            dec = (fun s -> b.Backend.decode m s);
          }
        ~compile:(fun () -> b.Backend.compile m)
  in
  let measure ~fp m =
    let c = compiled ~fp m in
    let r = c.Backend.measure ~vm:b.Backend.name ?fuel () in
    (match r.Backend.accounting with
    | Ok () -> ()
    | Error msg -> raise (Error.Accounting msg));
    r.Backend.zk.Zkopt_core.Measure.cycles
  in
  {
    tname = program ^ "@" ^ b.Backend.name;
    pname = program;
    weight;
    build;
    measure;
  }

(** A target pricing [program]'s full settlement cost on backend [b]:
    fitness is {!Zkopt_settle.Settle.report.settled_cost} (prover +
    aggregation + verification gas, integer micro-units) instead of raw
    cycles.  Same artifact-cache discipline as {!backend_target}, so the
    two objectives share compiled artifacts — a tune can be re-scored
    under either without recompiling. *)
let settled_target ?fuel ?cache ?(weight = 1.0) ?arity ?weights
    ~(program : string) ~(build : unit -> Modul.t) (b : Backend.t) : target =
  let base = backend_target ?fuel ?cache ~weight ~program ~build b in
  let measure ~fp m =
    let c =
      match cache with
      | None -> b.Backend.compile m
      | Some cache ->
        Cache.get_or_compile cache
          ~digest:(fp ^ "+" ^ b.Backend.schema)
          ~codec:
            {
              Cache.enc = (fun (c : Backend.compiled) -> c.Backend.encode ());
              dec = (fun s -> b.Backend.decode m s);
            }
          ~compile:(fun () -> b.Backend.compile m)
    in
    let r = c.Backend.measure ~vm:b.Backend.name ?fuel () in
    (match r.Backend.accounting with
    | Ok () -> ()
    | Error msg -> raise (Error.Accounting msg));
    (Zkopt_settle.Settle.price ?arity ?weights ~backend:b.Backend.name r)
      .Zkopt_settle.Settle.settled_cost
  in
  { base with tname = program ^ "@" ^ b.Backend.name ^ "+settled"; measure }

(** The multi-workload objective: one target per workload on backend
    [b], weighted by the reciprocal of each workload's baseline cycle
    count (normalized to the mean baseline) so a sequence is scored by
    the {e cells-weighted} speedup it delivers across the set rather
    than by whichever workload happens to burn the most cycles. *)
let cells_weighted ?fuel ?cache (b : Backend.t)
    (workloads : (string * (unit -> Modul.t)) list) : target list =
  let raw =
    List.map
      (fun (program, build) -> backend_target ?fuel ?cache ~program ~build b)
      workloads
  in
  let baselines =
    List.map
      (fun t ->
        let m = t.build () in
        Zkopt_runtime.Runtime.link m;
        ignore (Pass.run_one "globaldce" m);
        Zkopt_ir.Verify.check m;
        float_of_int (t.measure ~fp:(Fingerprint.of_modul m) m))
      raw
  in
  let mean =
    List.fold_left ( +. ) 0.0 baselines
    /. float_of_int (max 1 (List.length baselines))
  in
  List.map2
    (fun t base ->
      { t with weight = (if base > 0.0 then mean /. base else 1.0) })
    raw baselines

(* ------------------------------------------------------------------ *)
(* Prefix-cached pipeline application                                  *)
(* ------------------------------------------------------------------ *)

(** The module after applying [List.rev rev_prefix] to [pname]'s fresh
    linked build, memoized per prefix in [cache].  Each extension clones
    the cached parent before running its one new pass, so cached modules
    are never mutated; recursion happens inside [get_or_compile], which
    is deadlock-free because digests shorten strictly toward the root
    (single-flight waits form a DAG).  Modules handed out by this
    function are shared — callers must {!Zkopt_ir.Clone} before
    mutating. *)
let rec module_at (cache : Modul.t Cache.t) ~(pname : string)
    ~(build : unit -> Modul.t) (rev_prefix : string list) : Modul.t =
  let digest = Fingerprint.of_pipeline ~salt:pname (List.rev rev_prefix) in
  Cache.get_or_compile cache ~digest ~compile:(fun () ->
      match rev_prefix with
      | [] ->
        let m = build () in
        Zkopt_runtime.Runtime.link m;
        m
      | p :: rest ->
        let m = Zkopt_ir.Clone.modul (module_at cache ~pname ~build rest) in
        ignore (Pass.run_one ~config:Pass.standard_config p m);
        m)

(* ------------------------------------------------------------------ *)
(* Evaluation verdicts                                                 *)
(* ------------------------------------------------------------------ *)

(** One recorded measurement: target axis, structural fingerprint of the
    post-pipeline (pre-prune) module, cycles. *)
type score = { starget : string; sfp : string; scycles : int }

(** How one genome was scored: ['m']easured, ['d']eduped against
    recorded scores, ['p']runed from a prefix estimate, or ['f']ailed
    (expected failure on every path). *)
type verdict = { vkind : char; vfitness : int; vscores : score list }

(** Weighted combination of per-target cycles into one fitness.  Any
    failed axis fails the genome; saturates at [max_int] on overflow. *)
let combine (ws : (float * int) list) : int =
  if List.exists (fun (_, c) -> c = max_int) ws then max_int
  else
    let f =
      List.fold_left (fun acc (w, c) -> acc +. (w *. float_of_int c)) 0.0 ws
    in
    if Float.is_nan f || f >= float_of_int max_int then max_int
    else int_of_float (Float.round f)

(** Evaluate one genome against every target.  Pure reads of [scores]
    (frozen during a batch) plus prefix-cache traffic; safe to run from
    many domains at once, and deterministic per genome regardless of
    batch interleaving. *)
let eval_child ~(pcache : Modul.t Cache.t)
    ~(scores : (string * string, int) Hashtbl.t) ~(prune : bool)
    ~(threshold : int option) ~(targets : target list) (g : genome) : verdict
    =
  let rev = List.rev g in
  let prepared =
    List.map
      (fun t ->
        match module_at pcache ~pname:t.pname ~build:t.build rev with
        | m -> Some (t, m, Fingerprint.of_modul m)
        | exception e when expected_failure e -> None)
      targets
  in
  if List.exists Option.is_none prepared then
    { vkind = 'f'; vfitness = max_int; vscores = [] }
  else
    let lookups =
      List.map
        (fun o ->
          let t, m, fp = Option.get o in
          (t, m, fp, Hashtbl.find_opt scores (t.tname, fp)))
        prepared
    in
    if List.for_all (fun (_, _, _, r) -> Option.is_some r) lookups then
      (* every axis already measured a structurally identical module *)
      let vscores =
        List.map
          (fun (t, _, fp, r) ->
            { starget = t.tname; sfp = fp; scycles = Option.get r })
          lookups
      in
      let fit =
        combine (List.map (fun (t, _, _, r) -> (t.weight, Option.get r)) lookups)
      in
      { vkind = 'd'; vfitness = fit; vscores }
    else
      let prune_estimate =
        match threshold with
        | Some th when prune ->
          (* estimate each unmeasured axis from its longest already-scored
             proper prefix; if every axis has an exact score or estimate
             and the combination is no better than the worst survivor,
             discard without measuring *)
          let est_for (t, _, _, recorded) =
            match recorded with
            | Some c -> Some c
            | None -> (
              let rec walk rp =
                let m = module_at pcache ~pname:t.pname ~build:t.build rp in
                match
                  Hashtbl.find_opt scores (t.tname, Fingerprint.of_modul m)
                with
                | Some c -> Some c
                | None -> ( match rp with [] -> None | _ :: tl -> walk tl)
              in
              match rev with
              | [] -> None
              | _ :: tl -> ( try walk tl with e when expected_failure e -> None))
          in
          let ests = List.map est_for lookups in
          if List.for_all Option.is_some ests then
            let fit =
              combine
                (List.map2
                   (fun (t, _, _, _) e -> (t.weight, Option.get e))
                   lookups ests)
            in
            if fit >= th then Some fit else None
          else None
        | _ -> None
      in
      match prune_estimate with
      | Some fit -> { vkind = 'p'; vfitness = fit; vscores = [] }
      | None ->
        let vscores =
          List.map
            (fun (t, m, fp, recorded) ->
              match recorded with
              | Some c -> { starget = t.tname; sfp = fp; scycles = c }
              | None ->
                let c =
                  match
                    (* the cached module is shared: prune + verify +
                       measure on a private clone *)
                    let m' = Zkopt_ir.Clone.modul m in
                    ignore (Pass.run_one "globaldce" m');
                    Zkopt_ir.Verify.check m';
                    t.measure ~fp:(Fingerprint.of_modul m') m'
                  with
                  | c -> c
                  | exception e when expected_failure e -> max_int
                in
                { starget = t.tname; sfp = fp; scycles = c })
            lookups
        in
        let fit =
          combine
            (List.map2 (fun (t, _, _, _) s -> (t.weight, s.scycles)) lookups
               vscores)
        in
        { vkind = (if fit = max_int then 'f' else 'm'); vfitness = fit; vscores }

(* ------------------------------------------------------------------ *)
(* Checkpoint row codec                                                *)
(* ------------------------------------------------------------------ *)

(* One row per evaluated child:
     A \t gen \t idx \t kind \t fitness \t gene,gene,... \t scores \t .
   where scores is "-" or ";"-joined "tname=fp:cycles" entries, and the
   trailing "." detects torn tails.  One summary row per generation:
     G \t gen \t evals \t best \t .
   A generation without its G row is treated as never having run. *)

let row_of_child ~gen ~idx (g : genome) (v : verdict) : string =
  let details =
    match v.vscores with
    | [] -> "-"
    | ss ->
      String.concat ";"
        (List.map
           (fun s -> Printf.sprintf "%s=%s:%d" s.starget s.sfp s.scycles)
           ss)
  in
  Printf.sprintf "A\t%d\t%d\t%c\t%d\t%s\t%s\t." gen idx v.vkind v.vfitness
    (String.concat "," g) details

let row_of_generation ~gen ~evals ~best : string =
  Printf.sprintf "G\t%d\t%d\t%d\t." gen evals best

let parse_child_row (line : string) :
    (int * int * char * int * genome * score list) option =
  match String.split_on_char '\t' line with
  | [ "A"; gen; idx; kind; fitness; genome; details; "." ] -> (
    try
      let kind = if String.length kind = 1 then kind.[0] else raise Exit in
      let scores =
        if String.equal details "-" then []
        else
          List.map
            (fun part ->
              match (String.index_opt part '=', String.rindex_opt part ':') with
              | Some ei, Some ci when ei < ci ->
                {
                  starget = String.sub part 0 ei;
                  sfp = String.sub part (ei + 1) (ci - ei - 1);
                  scycles =
                    int_of_string
                      (String.sub part (ci + 1) (String.length part - ci - 1));
                }
              | _ -> raise Exit)
            (String.split_on_char ';' details)
      in
      Some
        ( int_of_string gen,
          int_of_string idx,
          kind,
          int_of_string fitness,
          String.split_on_char ',' genome,
          scores )
    with _ -> None)
  | _ -> None

let parse_generation_row (line : string) : int option =
  match String.split_on_char '\t' line with
  | [ "G"; gen; _evals; _best; "." ] -> int_of_string_opt gen
  | _ -> None

(** Replay tables from a row log: completed generations (those with a
    [G] row) and child verdicts keyed by [(gen, idx)], keep-last.
    Undecodable lines — a torn tail from a kill — are skipped. *)
let load_checkpoint (path : string) :
    (int, unit) Hashtbl.t * (int * int, char * int * genome * score list) Hashtbl.t
    =
  let greplay = Hashtbl.create 16 in
  let areplay = Hashtbl.create 64 in
  (if Sys.file_exists path then
     try
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           try
             while true do
               let line = input_line ic in
               match parse_child_row line with
               | Some (gen, idx, kind, fitness, genome, scores) ->
                 Hashtbl.replace areplay (gen, idx) (kind, fitness, genome, scores)
               | None -> (
                 match parse_generation_row line with
                 | Some gen -> Hashtbl.replace greplay gen ()
                 | None -> ())
             done
           with End_of_file -> ())
     with Sys_error _ -> ());
  (greplay, areplay)

(* ------------------------------------------------------------------ *)
(* The generational loop                                               *)
(* ------------------------------------------------------------------ *)

type loop_outcome = {
  lresult : result option;  (** [None] only if no generation ran *)
  lcompleted : bool;  (** false iff [stop] ended the search early *)
  lreplayed : int;
  ldedup : int;
  lpruned : int;
  lmeasured : int;
  lfailed : int;
}

(** The deterministic coordinator: breeds each generation from the RNG
    stream (consumed only here), hands the batch to [eval_batch], and
    merges verdicts in index order.  With a [checkpoint] path, rows are
    appended per generation; with [resume], generations already
    completed in the log are replayed (same RNG stream, recorded
    verdicts, no evaluation) before live search resumes. *)
let genloop ~seed ~population ~iterations ~(stop : unit -> bool)
    ~(checkpoint : string option) ~(resume : bool)
    ~(on_row : (string -> unit) option)
    ~(eval_batch : threshold:int option -> genome list -> verdict list)
    ~(record : verdict -> unit) : loop_outcome =
  let population = max 1 population and iterations = max 1 iterations in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let greplay, areplay =
    match checkpoint with
    | Some path when resume -> load_checkpoint path
    | _ -> (Hashtbl.create 1, Hashtbl.create 1)
  in
  (* the row log is opened lazily at the first live row, so a fully
     replayed prefix never reopens (or truncates) the file *)
  let out = ref None in
  let out_channel path =
    match !out with
    | Some oc -> oc
    | None ->
      let torn =
        resume && Sys.file_exists path
        && (let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let n = in_channel_length ic in
                n > 0
                && (seek_in ic (n - 1);
                    input_char ic <> '\n')))
      in
      let oc =
        open_out_gen
          [ Open_wronly; Open_creat;
            (if resume then Open_append else Open_trunc) ]
          0o644 path
      in
      if torn then output_char oc '\n';  (* seal a torn tail *)
      out := Some oc;
      oc
  in
  let emit ~live row =
    (match checkpoint with
    | Some path when live ->
      let oc = out_channel path in
      output_string oc row;
      output_char oc '\n'
    | _ -> ());
    match on_row with Some f -> f row | None -> ()
  in
  let ind_cmp a b = compare (a.fitness, a.genome) (b.fitness, b.genome) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let pop = ref [] in  (* best-first survivors, length <= population *)
  let everyone = ref [] in
  let history = ref [] in
  let evals = ref 0 in
  let gen = ref 0 in
  let replayed = ref 0 in
  let dedup = ref 0 and pruned = ref 0 and measured = ref 0 and failed = ref 0 in
  let completed = ref true in
  let replay_active = ref true in
  (try
     while !evals < iterations do
       if stop () then begin
         completed := false;
         raise Exit
       end;
       let n = min population (iterations - !evals) in
       (* breed first, unconditionally: the RNG stream must advance the
          same way whether this generation replays or runs live *)
       let genomes =
         if !gen = 0 then begin
           let a = Array.make n [] in
           for i = 0 to n - 1 do
             a.(i) <- random_genome rng
           done;
           Array.to_list a
         end
         else begin
           let parr = Array.of_list !pop in
           let np = Array.length parr in
           let tournament () =
             let a = parr.(Random.State.int rng np)
             and b = parr.(Random.State.int rng np) in
             if a.fitness <= b.fitness then a else b
           in
           let a = Array.make n [] in
           for i = 0 to n - 1 do
             let p1 = tournament () and p2 = tournament () in
             let g = crossover rng p1.genome p2.genome in
             a.(i) <- (if Random.State.bool rng then mutate rng g else g)
           done;
           Array.to_list a
         end
       in
       let threshold =
         if !gen = 0 || List.length !pop < population then None
         else
           match List.rev !pop with w :: _ -> Some w.fitness | [] -> None
       in
       let can_replay =
         !replay_active
         && Hashtbl.mem greplay !gen
         && List.for_all Fun.id
              (List.mapi
                 (fun i g ->
                   match Hashtbl.find_opt areplay (!gen, i) with
                   | Some (_, _, rg, _) -> rg = g
                   | None -> false)
                 genomes)
       in
       let verdicts =
         if can_replay then begin
           replayed := !replayed + n;
           List.mapi
             (fun i _ ->
               let kind, fitness, _, scores = Hashtbl.find areplay (!gen, i) in
               { vkind = kind; vfitness = fitness; vscores = scores })
             genomes
         end
         else begin
           replay_active := false;
           eval_batch ~threshold genomes
         end
       in
       List.iter record verdicts;
       List.iter
         (fun v ->
           match v.vkind with
           | 'd' -> incr dedup
           | 'p' -> incr pruned
           | 'f' -> incr failed
           | _ -> incr measured)
         verdicts;
       List.iteri
         (fun i (g, v) ->
           emit ~live:(not can_replay) (row_of_child ~gen:!gen ~idx:i g v))
         (List.combine genomes verdicts);
       evals := !evals + n;
       let children =
         List.map2 (fun g v -> { genome = g; fitness = v.vfitness }) genomes
           verdicts
       in
       everyone := children @ !everyone;
       pop := take population (List.sort ind_cmp (children @ !pop));
       let best = (List.hd !pop).fitness in
       history := best :: !history;
       emit ~live:(not can_replay) (row_of_generation ~gen:!gen ~evals:!evals ~best);
       (match !out with Some oc -> flush oc | None -> ());
       incr gen
     done
   with Exit -> ());
  (match !out with Some oc -> close_out_noerr oc | None -> ());
  let lresult =
    match !everyone with
    | [] -> None
    | all ->
      let all_sorted = List.sort ind_cmp all in
      Some
        {
          best = List.hd all_sorted;
          top5 = take 5 all_sorted;
          bottom5 =
            take 5
              (List.rev (List.filter (fun i -> i.fitness < max_int) all_sorted));
          evaluations = !evals;
          history = List.rev !history;
        }
  in
  {
    lresult;
    lcompleted = !completed;
    lreplayed = !replayed;
    ldedup = !dedup;
    lpruned = !pruned;
    lmeasured = !measured;
    lfailed = !failed;
  }

(* Evaluate a batch over an optional pool.  Results land in a slot array
   keyed by submission index, so the merge order is independent of
   completion order; [Pool.wait] re-raises the first task exception. *)
let batch_over (pool : Pool.t option) (eval_one : genome -> verdict)
    (genomes : genome list) : verdict list =
  match pool with
  | None -> List.map eval_one genomes
  | Some p ->
    let arr = Array.of_list genomes in
    let out = Array.make (Array.length arr) None in
    Array.iteri
      (fun i g -> Pool.submit p (fun () -> out.(i) <- Some (eval_one g)))
      arr;
    Pool.wait p;
    (* wait returned without raising: every slot is filled *)
    List.map Option.get (Array.to_list out)

(* ------------------------------------------------------------------ *)
(* The search engine                                                   *)
(* ------------------------------------------------------------------ *)

type cache_stats = {
  prefix : Cache.stats;  (** prefix-module cache traffic during this run *)
  dedup_hits : int;  (** genomes scored entirely from recorded scores *)
  pruned : int;  (** genomes discarded from a prefix estimate *)
  measured : int;  (** genomes actually measured *)
  failed : int;  (** genomes that failed on every path *)
}

type outcome = {
  result : result option;  (** [None] iff stopped before any generation *)
  cache_stats : cache_stats;
  completed : bool;
  resumed : int;  (** evaluations replayed from the checkpoint *)
}

type config = {
  seed : int;
  population : int;
  iterations : int;  (** total genome evaluations (the paper uses 1600) *)
  jobs : int;  (** worker domains when no [pool] is supplied *)
  pool : Pool.t option;  (** evaluate over this (shared, warm) pool *)
  prefix_cache : Modul.t Cache.t option;
      (** share partially-optimized modules across runs *)
  prune : bool;  (** enable prefix-estimate early exit *)
  checkpoint : string option;  (** row-log path *)
  resume : bool;  (** replay completed generations from the row log *)
  on_row : (string -> unit) option;  (** streamed copy of every row *)
  stop : unit -> bool;  (** polled at generation boundaries *)
}

let default ?(seed = 1) ?(population = 16) ?(iterations = 160) ?(jobs = 1) ()
    : config =
  {
    seed;
    population;
    iterations;
    jobs;
    pool = None;
    prefix_cache = None;
    prune = true;
    checkpoint = None;
    resume = false;
    on_row = None;
    stop = (fun () -> false);
  }

(** Run the full search engine over [targets] (see {!backend_target},
    {!cells_weighted}).  Deterministic at a fixed seed for any [jobs] /
    [pool]; see the module doc for the argument. *)
let search (cfg : config) ~(targets : target list) : outcome =
  if targets = [] then invalid_arg "Autotune.search: no targets";
  let pcache =
    match cfg.prefix_cache with
    | Some c -> c
    | None -> Cache.create ~capacity:1024 ()
  in
  let stats0 = Cache.stats pcache in
  (* (target, structural fingerprint) -> cycles; written only between
     batches (in [record]), read freely during them *)
  let scores : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let record v =
    List.iter
      (fun s -> Hashtbl.replace scores (s.starget, s.sfp) s.scycles)
      v.vscores
  in
  let owned, pool =
    match cfg.pool with
    | Some p -> (None, Some p)
    | None ->
      if cfg.jobs <= 1 then (None, None)
      else
        let p = Pool.create ~jobs:cfg.jobs in
        (Some p, Some p)
  in
  let eval_batch ~threshold genomes =
    batch_over pool
      (eval_child ~pcache ~scores ~prune:cfg.prune ~threshold ~targets)
      genomes
  in
  let lo =
    Fun.protect
      ~finally:(fun () ->
        match owned with Some p -> Pool.shutdown p | None -> ())
      (fun () ->
        genloop ~seed:cfg.seed ~population:cfg.population
          ~iterations:cfg.iterations ~stop:cfg.stop ~checkpoint:cfg.checkpoint
          ~resume:cfg.resume ~on_row:cfg.on_row ~eval_batch ~record)
  in
  {
    result = lo.lresult;
    cache_stats =
      {
        prefix = Cache.sub_stats (Cache.stats pcache) stats0;
        dedup_hits = lo.ldedup;
        pruned = lo.lpruned;
        measured = lo.lmeasured;
        failed = lo.lfailed;
      };
    completed = lo.lcompleted;
    resumed = lo.lreplayed;
  }

(** Run the GA over a raw fitness closure — build one with
    {!zkvm_cycles} or {!backend_cycles}, or pass any [genome -> int].
    [iterations] counts genome evaluations (the paper uses 160 for the
    broad sweep and 1600 for the NPB/crypto deep dives).  This is the
    blind path: no prefix cache, dedup, or pruning — the closure is
    opaque — but evaluation still batches over [jobs] domains (or a
    caller-supplied [pool]) with the same any-[jobs] determinism as
    {!search}. *)
let run ?(seed = 1) ?(population = 16) ?(iterations = 160) ?(jobs = 1) ?pool
    ~(cycles : genome -> int) () : result =
  let eval_one g =
    let f = evaluate ~cycles g in
    { vkind = (if f = max_int then 'f' else 'm'); vfitness = f; vscores = [] }
  in
  let owned, p =
    match pool with
    | Some p -> (None, Some p)
    | None ->
      if jobs <= 1 then (None, None)
      else
        let p = Pool.create ~jobs in
        (Some p, Some p)
  in
  let lo =
    Fun.protect
      ~finally:(fun () ->
        match owned with Some p -> Pool.shutdown p | None -> ())
      (fun () ->
        genloop ~seed ~population ~iterations
          ~stop:(fun () -> false)
          ~checkpoint:None ~resume:false ~on_row:None
          ~eval_batch:(fun ~threshold:_ genomes -> batch_over p eval_one genomes)
          ~record:(fun _ -> ()))
  in
  (* iterations is clamped >= 1, so at least one generation ran *)
  Option.get lo.lresult

(* ------------------------------------------------------------------ *)
(* Subsequence mining (RQ2's best/worst sequence analysis)             *)
(* ------------------------------------------------------------------ *)

(* The original counters now live in {!Miner} alongside the full
   frequent/maximal-subsequence and contrast mining; re-exported here
   for existing callers. *)

let count_containing = Miner.count_containing
let count_ordered_pair = Miner.count_ordered_pair
