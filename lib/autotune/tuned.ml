(** Tuned-profile publication: winning genomes as named profiles.

    The search engine's output is a pass sequence; the sweep matrix
    consumes {!Zkopt_core.Profile.t}s.  This module is the bridge: a
    [entry] records a winning sequence with its provenance (program,
    backend, best cycle count), converts to a [Profile.Tuned] whose name
    survives into every report row, and round-trips through a versioned
    JSON file so [zkbench tune --profile-out] output feeds
    [zkbench sweepall --tuned]. *)

module Json = Zkopt_report.Json

(** File-format version tag; bump on incompatible change. *)
let schema = "zkopt-tuned-v1"

type entry = {
  name : string;  (** profile name, e.g. ["tuned:npb-sp@risc0"] *)
  program : string;  (** workload the sequence was tuned on *)
  vm : string;  (** backend the objective priced *)
  cycles : int;  (** best fitness the search recorded *)
  passes : string list;  (** the winning genome *)
}

(** Canonical naming: [tuned:<program>@<vm>]. *)
let entry ~(program : string) ~(vm : string) ~(cycles : int)
    (passes : string list) : entry =
  { name = Printf.sprintf "tuned:%s@%s" program vm; program; vm; cycles; passes }

let to_profile (e : entry) : Zkopt_core.Profile.t =
  Zkopt_core.Profile.Tuned { tname = e.name; passes = e.passes }

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("program", Json.Str e.program);
      ("vm", Json.Str e.vm);
      ("cycles", Json.Int e.cycles);
      ("passes", Json.Arr (List.map (fun p -> Json.Str p) e.passes));
    ]

let entry_of_json (j : Json.t) : (entry, string) result =
  let ( let* ) = Result.bind in
  let req k =
    match Json.str_member k j with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "tuned entry: missing %S" k)
  in
  let* name = req "name" in
  let* program = req "program" in
  let* vm = req "vm" in
  let* cycles =
    match Json.int_member "cycles" j with
    | Some c -> Ok c
    | None -> Error "tuned entry: missing \"cycles\""
  in
  let* passes =
    match Json.member "passes" j with
    | Some (Json.Arr ps) ->
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match p with
          | Json.Str s -> Ok (s :: acc)
          | _ -> Error "tuned entry: non-string pass")
        (Ok []) ps
      |> Result.map List.rev
    | _ -> Error "tuned entry: missing \"passes\""
  in
  Ok { name; program; vm; cycles; passes }

let to_json (entries : entry list) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("profiles", Json.Arr (List.map entry_to_json entries));
    ]

let of_json (j : Json.t) : (entry list, string) result =
  let ( let* ) = Result.bind in
  let* () =
    match Json.str_member "schema" j with
    | Some s when String.equal s schema -> Ok ()
    | Some s -> Error (Printf.sprintf "tuned file: schema %S, want %S" s schema)
    | None -> Error "tuned file: missing \"schema\""
  in
  match Json.member "profiles" j with
  | Some (Json.Arr ps) ->
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* e = entry_of_json p in
        Ok (e :: acc))
      (Ok []) ps
    |> Result.map List.rev
  | _ -> Error "tuned file: missing \"profiles\""

(** Write [entries] to [path] (atomically via temp + rename). *)
let save (path : string) (entries : entry list) : (unit, string) result =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string (to_json entries));
        output_char oc '\n');
    Sys.rename tmp path;
    Ok ()
  with Sys_error msg -> Error msg

(** Load a tuned-profile file written by {!save}. *)
let load (path : string) : (entry list, string) result =
  let ( let* ) = Result.bind in
  let* text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (In_channel.input_all ic))
    with Sys_error msg -> Error msg
  in
  let* j = Json.of_string (String.trim text) in
  of_json j
