(** Minimal hand-rolled JSON printer for the machine-readable output
    modes ([zkbench run --json], [zkbench profile --json]).  Emission
    only — external tooling consumes these objects; nothing in the repo
    parses them back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string (v : t) =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
