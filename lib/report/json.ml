(** Minimal hand-rolled JSON printer and parser.

    The printer backs the machine-readable output modes ([zkbench run
    --json], [zkbench profile --json]) and the sweep service's wire
    protocol; the parser ({!of_string}) exists for the service side of
    that protocol — newline-delimited JSON requests and events — so it
    accepts exactly standard JSON, one value per call, and reports
    errors as [Error msg] rather than raising. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        write buf (Str k);
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string (v : t) =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing --------------------------------------------------------- *)

exception Parse of string

(** Recursive-descent parser over the whole input string.  Numbers with
    a '.', 'e', or 'E' (or outside OCaml's int range) parse as [Float],
    everything else as [Int], which round-trips everything {!to_string}
    emits.  Escapes beyond the single-character set decode [\uXXXX] to
    UTF-8. *)
let of_string (s : string) : (t, string) result =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let err fmt = Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then incr pos else err "expected %C" c
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else err "bad literal"
  in
  let utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then err "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= len then err "unterminated escape");
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > len then err "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> utf8 buf code
          | None -> err "bad \\u escape %S" hex)
        | _ -> err "bad escape %C" e);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let isfloat = ref false in
    if peek () = Some '-' then incr pos;
    while
      !pos < len
      && (match s.[!pos] with
         | '0' .. '9' -> true
         | '.' | 'e' | 'E' | '+' | '-' ->
           isfloat := true;
           true
         | _ -> false)
    do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    if !isfloat then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> err "bad number %S" lit
    else begin
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f (* out of int range *)
        | None -> err "bad number %S" lit)
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> err "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> err "expected ',' or ']'"
        in
        elems []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err "unexpected %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then err "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* ---- object helpers (used by the service protocol) ------------------- *)

let member (k : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_member k j = match member k j with Some (Str s) -> Some s | _ -> None
let int_member k j = match member k j with Some (Int i) -> Some i | _ -> None

let bool_member k j =
  match member k j with Some (Bool b) -> Some b | _ -> None
