(** IR operands.

    Runtime representation convention (shared by the interpreter, constant
    folding, and the RV32 emulator): every value is carried as an [int64].
    [I32]/[Ptr] values are kept zero-extended in the low 32 bits; [I64]
    values use the full word.  [Eval] implements all arithmetic under this
    convention. *)

type reg = int
(** Virtual register id, unique within a function. *)

type t =
  | Reg of reg            (** a virtual register *)
  | Imm of int64          (** an immediate (normalized per its use type) *)
  | Glob of string        (** the address of a named global *)

let reg r = Reg r
let imm i = Imm (Int64.of_int i)
let imm64 i = Imm i
let glob name = Glob name

let equal a b =
  match a, b with
  | Reg r1, Reg r2 -> r1 = r2
  | Imm i1, Imm i2 -> Int64.equal i1 i2
  | Glob g1, Glob g2 -> String.equal g1 g2
  | (Reg _ | Imm _ | Glob _), _ -> false

let is_const = function Imm _ | Glob _ -> true | Reg _ -> false

let to_string = function
  | Reg r -> Printf.sprintf "%%r%d" r
  | Imm i -> Int64.to_string i
  | Glob g -> "@" ^ g

let pp fmt v = Format.pp_print_string fmt (to_string v)
