(** IR well-formedness checker.

    Run after construction and after every pass in tests; catches dangling
    labels, type inconsistencies, undefined registers and malformed calls
    before they turn into silent interpreter/emulator divergence. *)

exception Ill_formed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let check_func (m : Modul.t) (f : Func.t) =
  if f.Func.blocks = [] then fail "%s: no blocks" f.name;
  (* unique labels *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem labels b.label then fail "%s: duplicate label %s" f.name b.label;
      Hashtbl.replace labels b.label ())
    f.blocks;
  (* branch targets exist *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun l ->
          if not (Hashtbl.mem labels l) then
            fail "%s: block %s branches to unknown label %s" f.name b.label l)
        (Block.successors b))
    f.blocks;
  (* register typing: one consistent type per register *)
  let types : (Value.reg, Ty.t) Hashtbl.t = Hashtbl.create 64 in
  let assign r ty =
    match Hashtbl.find_opt types r with
    | Some ty' when not (Ty.equal ty ty') ->
      fail "%s: register %%r%d defined as both %s and %s" f.name r
        (Ty.to_string ty') (Ty.to_string ty)
    | _ -> Hashtbl.replace types r ty
  in
  List.iter (fun (r, ty) -> assign r ty) f.params;
  (* next_reg covers all defs *)
  let check_reg_bound r =
    if r >= f.next_reg then
      fail "%s: register %%r%d >= next_reg %d" f.name r f.next_reg
  in
  Func.iter_instrs f (fun _ i ->
      Option.iter check_reg_bound (Instr.def i);
      match i with
      | Instr.Bin { dst; ty; _ } | Select { dst; ty; _ } | Mov { dst; ty; _ }
      | Load { dst; ty; _ } ->
        assign dst ty
      | Cmp { dst; _ } -> assign dst Ty.I32
      | Cast { dst; op; _ } ->
        assign dst (match op with Instr.Trunc -> Ty.I32 | Zext | Sext -> Ty.I64)
      | Addr { dst; _ } | Alloca { dst; _ } -> assign dst Ty.Ptr
      | Call { dst; callee; args } -> begin
        match Modul.find_func m callee with
        | None -> fail "%s: call to unknown function %s" f.name callee
        | Some callee_f ->
          if List.length args <> List.length callee_f.params then
            fail "%s: call to %s with %d args (expected %d)" f.name callee
              (List.length args)
              (List.length callee_f.params);
          (match (dst, callee_f.ret) with
          | Some d, Some ty -> assign d ty
          | Some _, None -> fail "%s: binding result of void function %s" f.name callee
          | None, _ -> ())
      end
      | Precompile { name; args; dst } -> begin
        match List.assoc_opt name Extern.signatures with
        | None -> fail "%s: unknown precompile %s" f.name name
        | Some arity ->
          if List.length args <> arity then
            fail "%s: precompile %s with %d args (expected %d)" f.name name
              (List.length args) arity;
          Option.iter (fun d -> assign d Ty.I32) dst
      end
      | Store _ -> ());
  (* operand width checking: i32/ptr are interchangeable words, i64 is
     distinct.  Immediates and globals fit anywhere. *)
  let width = function Ty.I32 | Ty.Ptr -> 32 | Ty.I64 -> 64 in
  let check_width ctx expect v =
    match v with
    | Value.Reg r -> begin
      match Hashtbl.find_opt types r with
      | Some ty when width ty <> width expect ->
        fail "%s: %s operand %%r%d has width %d, expected %d" f.name ctx r
          (width ty) (width expect)
      | _ -> ()
    end
    | Value.Imm _ | Value.Glob _ -> ()
  in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Bin { ty; op = _; a; b; _ } ->
        check_width "bin" ty a;
        check_width "bin" ty b
      | Cmp { ty; a; b; _ } ->
        check_width "cmp" ty a;
        check_width "cmp" ty b
      | Select { ty; if_true; if_false; _ } ->
        check_width "select" ty if_true;
        check_width "select" ty if_false
      | Mov { ty; src; _ } -> check_width "mov" ty src
      | Cast { op = Instr.Zext | Sext; src; _ } -> check_width "cast" Ty.I32 src
      | Cast { op = Instr.Trunc; src; _ } -> check_width "cast" Ty.I64 src
      | Load { addr; _ } -> check_width "load address" Ty.Ptr addr
      | Store { ty; addr; src } ->
        check_width "store address" Ty.Ptr addr;
        check_width "store" ty src
      | Addr { base; index; _ } ->
        check_width "addr base" Ty.Ptr base;
        check_width "addr index" Ty.I32 index
      | Alloca _ | Call _ | Precompile _ -> ());
  (* select/cbr conditions must be 32-bit (codegen lowers them as such) *)
  let check_cond ctx v =
    match v with
    | Value.Reg r -> begin
      match Hashtbl.find_opt types r with
      | Some Ty.I64 -> fail "%s: %s condition %%r%d has type i64" f.name ctx r
      | _ -> ()
    end
    | Value.Imm _ | Value.Glob _ -> ()
  in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Select { cond; _ } -> check_cond "select" cond
      | _ -> ());
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Cbr { cond; _ } -> check_cond "cbr" cond
      | _ -> ())
    f.blocks;
  (* every used register has some definition (or is a parameter) *)
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r ()) f.params;
  Func.iter_instrs f (fun _ i -> Option.iter (fun r -> Hashtbl.replace defined r ()) (Instr.def i));
  let check_use b r =
    if not (Hashtbl.mem defined r) then
      fail "%s: block %s uses undefined register %%r%d" f.name b r
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter (fun i -> List.iter (check_use b.label) (Instr.uses i)) b.instrs;
      List.iter (check_use b.label) (Instr.term_uses b.term))
    f.blocks;
  (* return type matches *)
  List.iter
    (fun (b : Block.t) ->
      match (b.term, f.ret) with
      | Instr.Ret None, Some _ -> fail "%s: ret void from non-void function" f.name
      | Instr.Ret (Some _), None -> fail "%s: ret value from void function" f.name
      | _ -> ())
    f.blocks

let check_module (m : Modul.t) =
  (* unique global names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : Modul.global) ->
      if Hashtbl.mem seen g.gname then fail "duplicate global %s" g.gname;
      Hashtbl.replace seen g.gname ())
    m.globals;
  (* globals referenced exist *)
  List.iter
    (fun (f : Func.t) ->
      let check_value = function
        | Value.Glob g when Modul.find_global m g = None ->
          fail "%s references unknown global %s" f.name g
        | _ -> ()
      in
      Func.iter_instrs f (fun _ i -> ignore (Instr.map_values (fun v -> check_value v; v) i)))
    m.funcs;
  List.iter (check_func m) m.funcs

(** [check m] raises {!Ill_formed} when [m] is malformed. *)
let check = check_module

let is_well_formed m =
  match check m with () -> true | exception Ill_formed _ -> false
