(** Reference IR interpreter.

    This is the semantic oracle: every workload is run under the
    interpreter and under the compiled RV32 emulator, and the results must
    agree; every optimization pass must preserve interpreter behaviour.

    Alloca slots are assigned statically per call frame (one slot per
    [Alloca] instruction), matching the code generator's frame layout
    discipline, so executing an [Alloca] twice yields the same address. *)

exception Trap of string
exception Out_of_fuel

type result = {
  return_value : int64 option;
  instrs_executed : int;
}

type state = {
  m : Modul.t;
  mem : Memory.t;
  globals : (string, int32) Hashtbl.t;
  mutable sp : int32;              (* bump stack for allocas *)
  mutable executed : int;
  mutable fuel : int;
  block_maps : (string, (string, Block.t) Hashtbl.t) Hashtbl.t;
  on_store : int32 -> int64 -> unit;  (* debugging/trace hook *)
}

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let eval_value st (env : int64 array) = function
  | Value.Reg r -> env.(r)
  | Value.Imm i -> i
  | Value.Glob g -> begin
    match Hashtbl.find_opt st.globals g with
    | Some a -> Eval.norm32 (Int64.of_int32 a)
    | None -> trap "unknown global %s" g
  end

let extern_mem st =
  { Extern.load32 = (fun a -> Memory.load32 st.mem a);
    store32 = (fun a v -> Memory.store32 st.mem a v) }

(* Pre-assign a frame slot offset to each Alloca dst in the function. *)
let alloca_layout (f : Func.t) =
  let slots = Hashtbl.create 4 in
  let total = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Alloca { dst; size } ->
        if not (Hashtbl.mem slots dst) then begin
          let aligned = Layout.align_up size 8 in
          Hashtbl.replace slots dst !total;
          total := !total + aligned
        end
      | _ -> ());
  (slots, Layout.align_up !total 8)

let rec run_func st (f : Func.t) (args : int64 list) : int64 option =
  let env = Array.make (max 1 f.Func.next_reg) 0L in
  List.iteri
    (fun i (r, ty) ->
      let v = try List.nth args i with _ -> trap "%s: missing argument %d" f.name i in
      env.(r) <- Eval.norm ty v)
    f.params;
  let slots, frame_size = alloca_layout f in
  let saved_sp = st.sp in
  st.sp <- Int32.sub st.sp (Int32.of_int frame_size);
  let frame_base = st.sp in
  let result = exec_block st f env ~slots ~frame_base (Func.entry f) in
  st.sp <- saved_sp;
  result

and exec_block st f env ~slots ~frame_base (block : Block.t) : int64 option =
  List.iter (fun i -> exec_instr st f env ~slots ~frame_base i) block.Block.instrs;
  match block.Block.term with
  | Instr.Ret v -> Option.map (eval_value st env) v
  | Br l -> exec_block st f env ~slots ~frame_base (find_block st f l)
  | Cbr { cond; if_true; if_false } ->
    let l = if Eval.to_bool (eval_value st env cond) then if_true else if_false in
    exec_block st f env ~slots ~frame_base (find_block st f l)

and find_block st (f : Func.t) label =
  let table =
    match Hashtbl.find_opt st.block_maps f.Func.name with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 16 in
      List.iter (fun (b : Block.t) -> Hashtbl.replace t b.label b) f.blocks;
      Hashtbl.replace st.block_maps f.Func.name t;
      t
  in
  match Hashtbl.find_opt table label with
  | Some b -> b
  | None -> trap "%s: no block %s" f.name label

and exec_instr st f env ~slots ~frame_base (i : Instr.t) =
  st.executed <- st.executed + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel;
  let ev = eval_value st env in
  match i with
  | Instr.Bin { dst; ty; op; a; b } -> env.(dst) <- Eval.binop ty op (ev a) (ev b)
  | Cmp { dst; ty; op; a; b } -> env.(dst) <- Eval.cmp ty op (ev a) (ev b)
  | Select { dst; ty; cond; if_true; if_false } ->
    env.(dst) <- Eval.norm ty (if Eval.to_bool (ev cond) then ev if_true else ev if_false)
  | Mov { dst; ty; src } -> env.(dst) <- Eval.norm ty (ev src)
  | Cast { dst; op; src } -> env.(dst) <- Eval.cast op (ev src)
  | Load { dst; ty; addr } ->
    env.(dst) <- Memory.load_ty st.mem ty (Int64.to_int32 (ev addr))
  | Store { ty; addr; src } ->
    let a = Int64.to_int32 (ev addr) in
    let v = ev src in
    st.on_store a v;
    Memory.store_ty st.mem ty a v
  | Addr { dst; base; index; scale; offset } ->
    env.(dst) <- Eval.addr ~base:(ev base) ~index:(ev index) ~scale ~offset
  | Alloca { dst; _ } ->
    let off = Hashtbl.find slots dst in
    env.(dst) <- Eval.norm32 (Int64.of_int32 (Int32.add frame_base (Int32.of_int off)))
  | Call { dst; callee; args } -> begin
    let callee_f =
      match Modul.find_func st.m callee with
      | Some g -> g
      | None -> trap "%s: call to unknown function %s" f.Func.name callee
    in
    let argv = List.map ev args in
    match (run_func st callee_f argv, dst) with
    | Some v, Some d ->
      env.(d) <- Eval.norm (Option.value ~default:Ty.I32 callee_f.ret) v
    | None, Some _ -> trap "%s returned no value to a binding call" callee
    | _, None -> ()
  end
  | Precompile { dst; name; args } -> begin
    let argv = Array.of_list (List.map ev args) in
    match (Extern.run name (extern_mem st) argv, dst) with
    | Some v, Some d -> env.(d) <- Eval.norm32 v
    | None, Some _ -> trap "precompile %s returned no value to a binding call" name
    | _, None -> ()
  end

(** Run [main] of module [m].  [fuel] bounds the executed instruction
    count (default 200M). *)
let run ?(fuel = 200_000_000) ?(on_store = fun _ _ -> ()) (m : Modul.t) : result =
  let mem = Memory.create () in
  let table, _end = Layout.place_globals m in
  List.iter
    (fun (g : Modul.global) ->
      Memory.init_global mem (Hashtbl.find table g.gname) g.init)
    m.globals;
  let st =
    { m; mem; globals = table; sp = Layout.stack_top; executed = 0; fuel;
      block_maps = Hashtbl.create 8; on_store }
  in
  let f = Modul.main m in
  let return_value = run_func st f [] in
  { return_value; instrs_executed = st.executed }

(** Convenience: the i32 checksum returned by [main]. *)
let checksum ?fuel m =
  match (run ?fuel m).return_value with
  | Some v -> Eval.norm32 v
  | None -> raise (Trap "main returned void")
