(** Imperative IR construction API, in the style of LLVM's IRBuilder.

    Provides raw block/terminator control plus structured helpers
    ([for_], [while_], [if_]) that emit the canonical loop shape the loop
    passes recognize:

    {v
      preheader:  iv := init ; br header
      header:     t := cmp iv bound ; cbr t, body, exit
      body:       ... ; iv := iv + step ; br header
      exit:
    v}

    Mutable loop variables are ordinary registers written more than once
    ([var] / [set]); the IR is not SSA. *)

type t = {
  func : Func.t;
  modul : Modul.t;
  mutable cur : Block.t;
  mutable sealed : bool;  (* current block already has its terminator *)
}

(* ------------------------------------------------------------------ *)
(* Function and block management                                       *)
(* ------------------------------------------------------------------ *)

let emit b instr =
  if b.sealed then
    invalid_arg
      (Printf.sprintf "Builder: emitting into sealed block %s in %s"
         b.cur.Block.label b.func.Func.name);
  b.cur.Block.instrs <- b.cur.Block.instrs @ [ instr ]

let set_term b term =
  if b.sealed then
    invalid_arg
      (Printf.sprintf "Builder: block %s already terminated" b.cur.Block.label);
  b.cur.Block.term <- term;
  b.sealed <- true

let fresh_label b hint = Func.fresh_label b.func hint

(** Create a block with [label] and make it current.  The previous block
    must already be terminated. *)
let start_block b label =
  if not b.sealed then
    invalid_arg
      (Printf.sprintf "Builder: starting %s but %s is unterminated" label
         b.cur.Block.label);
  let blk = Block.create label in
  Func.add_block b.func blk;
  b.cur <- blk;
  b.sealed <- false

let current_label b = b.cur.Block.label

(* ------------------------------------------------------------------ *)
(* Terminators                                                         *)
(* ------------------------------------------------------------------ *)

let ret b v = set_term b (Instr.Ret v)
let br b label = set_term b (Instr.Br label)
let cbr b cond if_true if_false = set_term b (Instr.Cbr { cond; if_true; if_false })

(* ------------------------------------------------------------------ *)
(* Value emission                                                      *)
(* ------------------------------------------------------------------ *)

let fresh_reg b = Func.fresh_reg b.func

let bin b ty op a bb =
  let dst = fresh_reg b in
  emit b (Instr.Bin { dst; ty; op; a; b = bb });
  Value.Reg dst

let add ?(ty = Ty.I32) b x y = bin b ty Instr.Add x y
let sub ?(ty = Ty.I32) b x y = bin b ty Instr.Sub x y
let mul ?(ty = Ty.I32) b x y = bin b ty Instr.Mul x y
let sdiv ?(ty = Ty.I32) b x y = bin b ty Instr.Div x y
let srem ?(ty = Ty.I32) b x y = bin b ty Instr.Rem x y
let udiv ?(ty = Ty.I32) b x y = bin b ty Instr.Udiv x y
let urem ?(ty = Ty.I32) b x y = bin b ty Instr.Urem x y
let and_ ?(ty = Ty.I32) b x y = bin b ty Instr.And x y
let or_ ?(ty = Ty.I32) b x y = bin b ty Instr.Or x y
let xor ?(ty = Ty.I32) b x y = bin b ty Instr.Xor x y
let shl ?(ty = Ty.I32) b x y = bin b ty Instr.Shl x y
let lshr ?(ty = Ty.I32) b x y = bin b ty Instr.Lshr x y
let ashr ?(ty = Ty.I32) b x y = bin b ty Instr.Ashr x y

let icmp ?(ty = Ty.I32) b op a bb =
  let dst = fresh_reg b in
  emit b (Instr.Cmp { dst; ty; op; a; b = bb });
  Value.Reg dst

let select ?(ty = Ty.I32) b cond if_true if_false =
  let dst = fresh_reg b in
  emit b (Instr.Select { dst; ty; cond; if_true; if_false });
  Value.Reg dst

let cast b op src =
  let dst = fresh_reg b in
  emit b (Instr.Cast { dst; op; src });
  Value.Reg dst

let zext b v = cast b Instr.Zext v
let sext b v = cast b Instr.Sext v
let trunc b v = cast b Instr.Trunc v

(** A mutable variable: a register initialized with [init], writable with
    {!set}. *)
let var b ty init =
  let dst = fresh_reg b in
  emit b (Instr.Mov { dst; ty; src = init });
  dst

let set b ty reg v = emit b (Instr.Mov { dst = reg; ty; src = v })

let load ?(ty = Ty.I32) b addr =
  let dst = fresh_reg b in
  emit b (Instr.Load { dst; ty; addr });
  Value.Reg dst

let store ?(ty = Ty.I32) b ~addr src = emit b (Instr.Store { ty; addr; src })

(** [addr b base ~index ~scale ~offset] computes [base + index*scale + offset]. *)
let addr ?(index = Value.Imm 0L) ?(scale = 4) ?(offset = 0) b base =
  let dst = fresh_reg b in
  emit b (Instr.Addr { dst; base; index; scale; offset });
  Value.Reg dst

let alloca b size =
  let dst = fresh_reg b in
  emit b (Instr.Alloca { dst; size });
  Value.Reg dst

let call b ?dst callee args =
  emit b (Instr.Call { dst; callee; args })

(** Call and bind the result. *)
let callv b callee args =
  let dst = fresh_reg b in
  emit b (Instr.Call { dst = Some dst; callee; args });
  Value.Reg dst

let precompile b ?dst name args = emit b (Instr.Precompile { dst; name; args })

let precompilev b name args =
  let dst = fresh_reg b in
  emit b (Instr.Precompile { dst = Some dst; name; args });
  Value.Reg dst

(* ------------------------------------------------------------------ *)
(* Structured control flow                                             *)
(* ------------------------------------------------------------------ *)

(** [for_ b ~from ~bound body] builds a canonical counted loop running
    [iv] from [from] while [iv < bound] (signed), stepping by [step]
    (default 1).  [body] receives the induction value. *)
let for_ ?(ty = Ty.I32) ?(step = Value.Imm 1L) ?(cmp = Instr.Slt) b ~from ~bound body =
  let header = fresh_label b "for.header" in
  let body_l = fresh_label b "for.body" in
  let exit_l = fresh_label b "for.exit" in
  let iv = var b ty from in
  br b header;
  start_block b header;
  let c = icmp ~ty b cmp (Value.Reg iv) bound in
  cbr b c body_l exit_l;
  start_block b body_l;
  body (Value.Reg iv);
  if not b.sealed then begin
    let next = bin b ty Instr.Add (Value.Reg iv) step in
    set b ty iv next;
    br b header
  end;
  start_block b exit_l

(** [while_ b cond body]: [cond] emits the condition into the header block
    each iteration; [body] emits the loop body. *)
let while_ b cond body =
  let header = fresh_label b "while.header" in
  let body_l = fresh_label b "while.body" in
  let exit_l = fresh_label b "while.exit" in
  br b header;
  start_block b header;
  let c = cond () in
  cbr b c body_l exit_l;
  start_block b body_l;
  body ();
  if not b.sealed then br b header;
  start_block b exit_l

(** [if_ b cond ~then_ ()] / [if_ b cond ~then_ ~else_ ()]. *)
let if_ b cond ~then_ ?else_ () =
  let then_l = fresh_label b "if.then" in
  let join_l = fresh_label b "if.join" in
  match else_ with
  | None ->
    cbr b cond then_l join_l;
    start_block b then_l;
    then_ ();
    if not b.sealed then br b join_l;
    start_block b join_l
  | Some else_fn ->
    let else_l = fresh_label b "if.else" in
    cbr b cond then_l else_l;
    start_block b then_l;
    then_ ();
    if not b.sealed then br b join_l;
    start_block b else_l;
    else_fn ();
    if not b.sealed then br b join_l;
    start_block b join_l

(* ------------------------------------------------------------------ *)
(* Module-level helpers                                                *)
(* ------------------------------------------------------------------ *)

(** Define function [name]; [body] receives the builder and the parameter
    values.  The entry block is created automatically. *)
let define m name ~params ?ret body =
  let param_regs = List.mapi (fun i ty -> (i, ty)) params in
  let f = Func.create ~name ~params:param_regs ~ret in
  let entry = Block.create "entry" in
  Func.add_block f entry;
  let b = { func = f; modul = m; cur = entry; sealed = false } in
  body b (List.map (fun (r, _) -> Value.Reg r) param_regs);
  if not b.sealed then
    invalid_arg (Printf.sprintf "Builder.define: %s left unterminated" name);
  Modul.add_func m f;
  f

let global_zero m name bytes =
  Modul.add_global m { Modul.gname = name; init = Modul.Zero bytes };
  Value.Glob name

let global_words m name words =
  Modul.add_global m { Modul.gname = name; init = Modul.Words words };
  Value.Glob name

let imm = Value.imm
let imm64 = Value.imm64
