(** An IR compilation unit: named globals plus functions.  ("module" is a
    keyword, hence [Modul].) *)

type init =
  | Zero of int              (** [n] zero bytes *)
  | Words of int32 array     (** little-endian 32-bit words *)

type global = {
  gname : string;
  init : init;
}

let global_size g =
  match g.init with Zero n -> n | Words w -> 4 * Array.length w

type t = {
  mutable globals : global list;
  mutable funcs : Func.t list;
}

let create () = { globals = []; funcs = [] }

let add_func m f =
  if List.exists (fun (g : Func.t) -> String.equal g.name f.Func.name) m.funcs then
    invalid_arg (Printf.sprintf "Modul.add_func: duplicate function %s" f.Func.name);
  m.funcs <- m.funcs @ [ f ]

let add_global m g =
  if List.exists (fun g' -> String.equal g'.gname g.gname) m.globals then
    invalid_arg (Printf.sprintf "Modul.add_global: duplicate global %s" g.gname);
  m.globals <- m.globals @ [ g ]

let find_func m name =
  List.find_opt (fun (f : Func.t) -> String.equal f.Func.name name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Modul.find_func: no function %S" name)

let find_global m name =
  List.find_opt (fun g -> String.equal g.gname name) m.globals

let main m = find_func_exn m "main"

let instr_count m =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 m.funcs

(** Per-register types for [f], with call results refined by callee return
    types.  Precompiles return I32. *)
let reg_types m (f : Func.t) =
  let types = Func.reg_types f in
  Func.iter_instrs f (fun _ i ->
      match i with
      | Instr.Call { dst = Some d; callee; _ } -> begin
        match find_func m callee with
        | Some callee_f ->
          Hashtbl.replace types d (Option.value ~default:Ty.I32 callee_f.ret)
        | None -> ()
      end
      | _ -> ());
  types
