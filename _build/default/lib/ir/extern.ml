(** Precompile semantics.

    zkVMs expose accelerated circuits ("precompiles") for heavy primitives;
    the guest invokes them and the proof charges a fixed circuit cost
    instead of per-instruction costs (paper §2, §4.2).  This module holds
    the *functional* semantics, shared bit-for-bit by the IR interpreter
    and the RV32 emulator; the *cost* of each precompile lives in the zkVM
    cost configurations.

    Signature-verification precompiles are simulated: a real secp256k1 /
    ed25519 implementation is out of scope (and irrelevant to compiler
    effects), so "signatures" are SHA-256-based tags over (message, key)
    with a per-scheme domain separator.  Deterministic, verifiable, and
    constant-cost — exactly the property the paper relies on. *)

type mem = {
  load32 : int32 -> int32;
  store32 : int32 -> int32 -> unit;
}

let load64 m a =
  Int64.logor
    (Int64.logand (Int64.of_int32 (m.load32 a)) 0xFFFF_FFFFL)
    (Int64.shift_left (Int64.of_int32 (m.load32 (Int32.add a 4l))) 32)

let store64 m a v =
  m.store32 a (Int64.to_int32 v);
  m.store32 (Int32.add a 4l) (Int64.to_int32 (Int64.shift_right_logical v 32))

(* ------------------------------------------------------------------ *)
(* SHA-256 compression                                                 *)
(* ------------------------------------------------------------------ *)

let sha256_k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let sha256_init_state =
  [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
     0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add

(* Compress one 16-word block into the 8-word state.  Note the block is
   taken as native little-endian words: guests fill word buffers directly,
   so no byte-order shuffling is modelled (irrelevant to compiler cost). *)
let sha256_compress_words (state : int32 array) (block : int32 array) =
  let w = Array.make 64 0l in
  Array.blit block 0 w 0 16;
  for t = 16 to 63 do
    let s0 =
      Int32.logxor (rotr w.(t - 15) 7)
        (Int32.logxor (rotr w.(t - 15) 18) (Int32.shift_right_logical w.(t - 15) 3))
    in
    let s1 =
      Int32.logxor (rotr w.(t - 2) 17)
        (Int32.logxor (rotr w.(t - 2) 19) (Int32.shift_right_logical w.(t - 2) 10))
    in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2)
  and d = ref state.(3) and e = ref state.(4) and f = ref state.(5)
  and g = ref state.(6) and h = ref state.(7) in
  for t = 0 to 63 do
    let s1 = Int32.logxor (rotr !e 6) (Int32.logxor (rotr !e 11) (rotr !e 25)) in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let t1 = !h +% s1 +% ch +% sha256_k.(t) +% w.(t) in
    let s0 = Int32.logxor (rotr !a 2) (Int32.logxor (rotr !a 13) (rotr !a 22)) in
    let maj =
      Int32.logxor (Int32.logand !a !b)
        (Int32.logxor (Int32.logand !a !c) (Int32.logand !b !c))
    in
    let t2 = s0 +% maj in
    h := !g; g := !f; f := !e; e := !d +% t1;
    d := !c; c := !b; b := !a; a := t1 +% t2
  done;
  state.(0) <- state.(0) +% !a; state.(1) <- state.(1) +% !b;
  state.(2) <- state.(2) +% !c; state.(3) <- state.(3) +% !d;
  state.(4) <- state.(4) +% !e; state.(5) <- state.(5) +% !f;
  state.(6) <- state.(6) +% !g; state.(7) <- state.(7) +% !h

(* Hash a word buffer with a trivial padding scheme (length word appended,
   zero-padded to a block boundary).  Used by the simulated signature
   precompiles; NOT byte-exact SHA-256 padding, which is irrelevant here. *)
let digest_words (words : int32 list) : int32 array =
  let words = words @ [ Int32.of_int (List.length words) ] in
  let state = Array.copy sha256_init_state in
  let block = Array.make 16 0l in
  let rec go = function
    | [] -> ()
    | rest ->
      Array.fill block 0 16 0l;
      let rec fill i = function
        | w :: tl when i < 16 -> block.(i) <- w; fill (i + 1) tl
        | tl -> tl
      in
      let rest = fill 0 rest in
      sha256_compress_words state block;
      if rest <> [] then go rest
  in
  go words;
  state

(* ------------------------------------------------------------------ *)
(* Keccak-f[1600]                                                      *)
(* ------------------------------------------------------------------ *)

let keccak_rc =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let keccak_rot =
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21;
     8; 18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f (st : int64 array) =
  let c = Array.make 5 0L and d = Array.make 5 0L and b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor st.(x)
          (Int64.logxor st.(x + 5)
             (Int64.logxor st.(x + 10) (Int64.logxor st.(x + 15) st.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1);
      for y = 0 to 4 do
        st.(x + (5 * y)) <- Int64.logxor st.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        b.(y + (5 * (((2 * x) + (3 * y)) mod 5))) <- rotl64 st.(i) keccak_rot.(i)
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let i = x + (5 * y) in
        st.(i) <-
          Int64.logxor b.(i)
            (Int64.logand (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    st.(0) <- Int64.logxor st.(0) keccak_rc.(round)
  done

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(** Names of all precompiles, with their argument counts. *)
let signatures =
  [ ("sha256_compress", 2)   (* state_ptr(8w), block_ptr(16w) *)
  ; ("keccakf", 1)           (* state_ptr(25 dwords) *)
  ; ("ecdsa_verify", 4)      (* msg_ptr, msg_words, sig_ptr(8w), key_ptr(8w) -> 0/1 *)
  ; ("ed25519_verify", 4)    (* ditto *)
  ; ("bigint_mulmod", 4)     (* out_ptr(8w), a_ptr(8w), b_ptr(8w), mod_ptr(8w) *)
  ]

let is_precompile name = List.mem_assoc name signatures

let read_words mem ptr n =
  List.init n (fun i -> mem.load32 (Int32.add ptr (Int32.of_int (4 * i))))

(* Simulated signature tag: SHA-256 digest of (separator :: msg ++ key). *)
let signature_tag ~separator mem ~msg_ptr ~msg_words ~key_ptr =
  let msg = read_words mem msg_ptr msg_words in
  let key = read_words mem key_ptr 8 in
  digest_words (separator :: (msg @ key))

let verify_sig ~separator mem args =
  let msg_ptr = Int64.to_int32 args.(0) in
  let msg_words = Int64.to_int args.(1) in
  let sig_ptr = Int64.to_int32 args.(2) in
  let key_ptr = Int64.to_int32 args.(3) in
  let tag = signature_tag ~separator mem ~msg_ptr ~msg_words ~key_ptr in
  let sigw = Array.of_list (read_words mem sig_ptr 8) in
  if Array.for_all2 (fun a b -> Int32.equal a b) tag sigw then 1L else 0L

(** Execute precompile [name] against guest memory.  Returns the result
    value for value-returning precompiles. *)
let run (name : string) (mem : mem) (args : int64 array) : int64 option =
  match name with
  | "sha256_compress" ->
    let state_ptr = Int64.to_int32 args.(0) and block_ptr = Int64.to_int32 args.(1) in
    let state = Array.of_list (read_words mem state_ptr 8) in
    let block = Array.of_list (read_words mem block_ptr 16) in
    sha256_compress_words state block;
    Array.iteri
      (fun i w -> mem.store32 (Int32.add state_ptr (Int32.of_int (4 * i))) w)
      state;
    None
  | "keccakf" ->
    let ptr = Int64.to_int32 args.(0) in
    let st = Array.init 25 (fun i -> load64 mem (Int32.add ptr (Int32.of_int (8 * i)))) in
    keccak_f st;
    Array.iteri (fun i v -> store64 mem (Int32.add ptr (Int32.of_int (8 * i))) v) st;
    None
  | "ecdsa_verify" -> Some (verify_sig ~separator:0x0ecd5a01l mem args)
  | "ed25519_verify" -> Some (verify_sig ~separator:0x0ed25519l mem args)
  | "bigint_mulmod" ->
    (* 256-bit (a * b) mod m over 8-word little-endian buffers.  Done via
       schoolbook multiply into 16 words then repeated subtraction-free
       Barrett-style reduction is overkill here: we reduce with simple
       long division by m. *)
    let out_ptr = Int64.to_int32 args.(0) in
    let rd p = read_words mem p 8 in
    let to_z words =
      (* words are LE int32; build an arbitrary-precision value as a pair
         list processed with int64 limbs (school arithmetic on 16-bit
         digits keeps everything in int range) *)
      List.concat_map
        (fun w ->
          let w = Int32.to_int w land 0xFFFF_FFFF in
          [ w land 0xFFFF; (w lsr 16) land 0xFFFF ])
        words
    in
    let a = to_z (rd (Int64.to_int32 args.(1))) in
    let b = to_z (rd (Int64.to_int32 args.(2))) in
    let m = to_z (rd (Int64.to_int32 args.(3))) in
    let mul a b =
      let la = List.length a and lb = List.length b in
      let res = Array.make (la + lb) 0 in
      List.iteri
        (fun i ai ->
          List.iteri
            (fun j bj ->
              let k = i + j in
              let v = res.(k) + (ai * bj) in
              res.(k) <- v land 0xFFFF;
              res.(k + 1) <- res.(k + 1) + (v lsr 16))
            b)
        a;
      (* propagate remaining carries *)
      for k = 0 to Array.length res - 2 do
        res.(k + 1) <- res.(k + 1) + (res.(k) lsr 16);
        res.(k) <- res.(k) land 0xFFFF
      done;
      Array.to_list res
    in
    let ge a b =
      (* compare big-endian-wise over equal length *)
      let n = max (List.length a) (List.length b) in
      let pad l = Array.init n (fun i -> try List.nth l i with _ -> 0) in
      let a = pad a and b = pad b in
      let rec cmp i = if i < 0 then true else if a.(i) <> b.(i) then a.(i) > b.(i) else cmp (i - 1) in
      cmp (n - 1)
    in
    let sub a b =
      let n = List.length a in
      let pad l = Array.init n (fun i -> try List.nth l i with _ -> 0) in
      let a = pad a and b = pad b in
      let borrow = ref 0 in
      Array.to_list
        (Array.init n (fun i ->
             let v = a.(i) - b.(i) - !borrow in
             if v < 0 then (borrow := 1; v + 0x10000) else (borrow := 0; v)))
    in
    let is_zero = List.for_all (( = ) 0) in
    (* shift left by [k] bits (binary), digit base 2^16 *)
    let shl_bits l k =
      let digit_shift = k / 16 and bit_shift = k mod 16 in
      let l = List.init digit_shift (fun _ -> 0) @ l @ [ 0 ] in
      let carry = ref 0 in
      List.map
        (fun d ->
          let v = (d lsl bit_shift) lor !carry in
          carry := v lsr 16;
          v land 0xFFFF)
        l
    in
    let bit_length l =
      let arr = Array.of_list l in
      let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
      let rec go i =
        if i < 0 then 0
        else if arr.(i) = 0 then go (i - 1)
        else (i * 16) + width arr.(i)
      in
      go (Array.length arr - 1)
    in
    (* binary shift-subtract modular reduction: O(bits) compare/subtracts *)
    let p = ref (mul a b) in
    if not (is_zero m) then begin
      let bm = bit_length m in
      let continue_reducing = ref true in
      while !continue_reducing do
        let bp = bit_length !p in
        if bp < bm || (bp = bm && not (ge !p m)) then continue_reducing := false
        else begin
          let s = bp - bm in
          let shifted = shl_bits m s in
          if ge !p shifted then p := sub !p shifted
          else p := sub !p (shl_bits m (s - 1))
        end
      done
    end;
    let digits = Array.of_list !p in
    for i = 0 to 7 do
      let lo = if 2 * i < Array.length digits then digits.(2 * i) else 0 in
      let hi = if (2 * i) + 1 < Array.length digits then digits.((2 * i) + 1) else 0 in
      mem.store32
        (Int32.add out_ptr (Int32.of_int (4 * i)))
        (Int32.of_int (lo lor (hi lsl 16)))
    done;
    None
  | _ -> invalid_arg (Printf.sprintf "Extern.run: unknown precompile %S" name)
