(** Shared arithmetic semantics.

    Used by the IR interpreter, constant folding, and the RV32 emulator so
    that all three agree bit-for-bit.  Values are [int64]; [I32]/[Ptr]
    values are kept zero-extended in the low 32 bits.

    Division follows RISC-V M-extension semantics (no traps):
    - x / 0 = -1 (all ones), x % 0 = x
    - min_int / -1 = min_int, min_int % -1 = 0 *)

let mask32 = 0xFFFF_FFFFL

(* Normalize an [I32]/[Ptr] result to the canonical zero-extended form. *)
let norm32 (x : int64) = Int64.logand x mask32

let norm ty x = match (ty : Ty.t) with I32 | Ptr -> norm32 x | I64 -> x

(* Sign-extend the low 32 bits of [x]. *)
let sext32 (x : int64) = Int64.of_int32 (Int64.to_int32 x)

let to_bool x = not (Int64.equal x 0L)
let of_bool b = if b then 1L else 0L

let sdiv32 a b =
  let a = Int64.to_int32 a and b = Int64.to_int32 b in
  if Int32.equal b 0l then mask32
  else if Int32.equal a Int32.min_int && Int32.equal b (-1l) then
    norm32 (Int64.of_int32 Int32.min_int)
  else norm32 (Int64.of_int32 (Int32.div a b))

let srem32 a b =
  let a32 = Int64.to_int32 a and b32 = Int64.to_int32 b in
  if Int32.equal b32 0l then norm32 a
  else if Int32.equal a32 Int32.min_int && Int32.equal b32 (-1l) then 0L
  else norm32 (Int64.of_int32 (Int32.rem a32 b32))

let udiv32 a b = if Int64.equal b 0L then mask32 else Int64.div a b
let urem32 a b = if Int64.equal b 0L then a else Int64.rem a b

let sdiv64 a b =
  if Int64.equal b 0L then -1L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
  else Int64.div a b

let srem64 a b =
  if Int64.equal b 0L then a
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
  else Int64.rem a b

let udiv64 a b = if Int64.equal b 0L then -1L else Int64.unsigned_div a b
let urem64 a b = if Int64.equal b 0L then a else Int64.unsigned_rem a b

let binop (ty : Ty.t) (op : Instr.binop) (a : int64) (b : int64) : int64 =
  match ty with
  | I32 | Ptr -> begin
    let sa = sext32 a and sb = sext32 b in
    match op with
    | Instr.Add -> norm32 (Int64.add a b)
    | Sub -> norm32 (Int64.sub a b)
    | Mul -> norm32 (Int64.mul a b)
    | Mulhu -> Int64.shift_right_logical (Int64.mul a b) 32
    | Div -> sdiv32 a b
    | Rem -> srem32 a b
    | Udiv -> udiv32 a b
    | Urem -> urem32 a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> norm32 (Int64.shift_left a (Int64.to_int (Int64.logand b 31L)))
    | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 31L))
    | Ashr ->
      norm32 (Int64.shift_right sa (Int64.to_int (Int64.logand sb 31L)))
  end
  | I64 -> begin
    match op with
    | Instr.Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Mulhu ->
      (* 64x64 -> high 64, via 32-bit limbs *)
      let mask = 0xFFFF_FFFFL in
      let al = Int64.logand a mask and ah = Int64.shift_right_logical a 32 in
      let bl = Int64.logand b mask and bh = Int64.shift_right_logical b 32 in
      let ll = Int64.mul al bl in
      let lh = Int64.mul al bh in
      let hl = Int64.mul ah bl in
      let hh = Int64.mul ah bh in
      let carry =
        Int64.shift_right_logical
          (Int64.add
             (Int64.add (Int64.logand lh mask) (Int64.logand hl mask))
             (Int64.shift_right_logical ll 32))
          32
      in
      Int64.add hh
        (Int64.add
           (Int64.add (Int64.shift_right_logical lh 32)
              (Int64.shift_right_logical hl 32))
           carry)
    | Div -> sdiv64 a b
    | Rem -> srem64 a b
    | Udiv -> udiv64 a b
    | Urem -> urem64 a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
    | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
    | Ashr -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
  end

let cmp (ty : Ty.t) (op : Instr.cmpop) (a : int64) (b : int64) : int64 =
  let sa, sb =
    match ty with
    | I32 | Ptr -> (sext32 a, sext32 b)
    | I64 -> (a, b)
  in
  (* For unsigned comparisons I32 values are already zero-extended; for I64
     use [unsigned_compare]. *)
  let ucmp =
    match ty with
    | I32 | Ptr -> Int64.compare a b
    | I64 -> Int64.unsigned_compare a b
  in
  of_bool
    (match op with
    | Instr.Eq -> Int64.equal a b
    | Ne -> not (Int64.equal a b)
    | Slt -> Int64.compare sa sb < 0
    | Sle -> Int64.compare sa sb <= 0
    | Sgt -> Int64.compare sa sb > 0
    | Sge -> Int64.compare sa sb >= 0
    | Ult -> ucmp < 0
    | Ule -> ucmp <= 0
    | Ugt -> ucmp > 0
    | Uge -> ucmp >= 0)

let cast (op : Instr.castop) (x : int64) : int64 =
  match op with
  | Instr.Zext -> norm32 x
  | Sext -> sext32 (norm32 x)
  | Trunc -> norm32 x

let addr ~base ~index ~scale ~offset =
  norm32
    (Int64.add base
       (Int64.add (Int64.mul index (Int64.of_int scale)) (Int64.of_int offset)))
