(** IR instructions and terminators.

    This is a register-machine IR rather than strict SSA: a virtual
    register may be assigned more than once (loop induction variables are
    written in both the preheader and the latch).  Passes that need
    def-uniqueness restrict themselves to registers with a single static
    definition; see {!Analysis} helpers in [zkopt_analysis]. *)

type binop =
  | Add | Sub | Mul
  | Mulhu              (** high word of the unsigned product *)
  | Div | Rem          (** signed; RISC-V semantics for /0 and overflow *)
  | Udiv | Urem
  | And | Or | Xor
  | Shl | Lshr | Ashr  (** shift amounts masked to the type width *)

type cmpop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type castop =
  | Zext   (** i32 -> i64, zero extension *)
  | Sext   (** i32 -> i64, sign extension *)
  | Trunc  (** i64 -> i32 *)

type t =
  | Bin of { dst : Value.reg; ty : Ty.t; op : binop; a : Value.t; b : Value.t }
  | Cmp of { dst : Value.reg; ty : Ty.t; op : cmpop; a : Value.t; b : Value.t }
      (** [ty] is the type of the operands; [dst] is an [I32] 0/1 *)
  | Select of { dst : Value.reg; ty : Ty.t; cond : Value.t;
                if_true : Value.t; if_false : Value.t }
  | Mov of { dst : Value.reg; ty : Ty.t; src : Value.t }
  | Cast of { dst : Value.reg; op : castop; src : Value.t }
  | Load of { dst : Value.reg; ty : Ty.t; addr : Value.t }
      (** word (I32/Ptr) or dword (I64) load from a 4-byte-aligned address *)
  | Store of { ty : Ty.t; addr : Value.t; src : Value.t }
  | Addr of { dst : Value.reg; base : Value.t; index : Value.t;
              scale : int; offset : int }
      (** getelementptr-like: [dst = base + index * scale + offset] *)
  | Alloca of { dst : Value.reg; size : int }
      (** reserve [size] bytes of stack, 8-aligned; [dst : Ptr] *)
  | Call of { dst : Value.reg option; callee : string; args : Value.t list }
  | Precompile of { dst : Value.reg option; name : string; args : Value.t list }
      (** accelerated builtin circuit (sha256 compression, keccak-f, ...) *)

type term =
  | Ret of Value.t option
  | Br of string
  | Cbr of { cond : Value.t; if_true : string; if_false : string }

(* ------------------------------------------------------------------ *)
(* Def/use structure                                                   *)
(* ------------------------------------------------------------------ *)

let def = function
  | Bin { dst; _ } | Cmp { dst; _ } | Select { dst; _ } | Mov { dst; _ }
  | Cast { dst; _ } | Load { dst; _ } | Addr { dst; _ } | Alloca { dst; _ } ->
    Some dst
  | Call { dst; _ } | Precompile { dst; _ } -> dst
  | Store _ -> None

let uses_of_value acc = function Value.Reg r -> r :: acc | Value.Imm _ | Value.Glob _ -> acc

let uses = function
  | Bin { a; b; _ } | Cmp { a; b; _ } -> uses_of_value (uses_of_value [] b) a
  | Select { cond; if_true; if_false; _ } ->
    uses_of_value (uses_of_value (uses_of_value [] if_false) if_true) cond
  | Mov { src; _ } | Cast { src; _ } | Load { addr = src; _ } -> uses_of_value [] src
  | Store { addr; src; _ } -> uses_of_value (uses_of_value [] src) addr
  | Addr { base; index; _ } -> uses_of_value (uses_of_value [] index) base
  | Alloca _ -> []
  | Call { args; _ } | Precompile { args; _ } ->
    List.fold_left uses_of_value [] args

let term_uses = function
  | Ret (Some v) -> uses_of_value [] v
  | Ret None | Br _ -> []
  | Cbr { cond; _ } -> uses_of_value [] cond

let successors = function
  | Ret _ -> []
  | Br l -> [ l ]
  | Cbr { if_true; if_false; _ } ->
    if String.equal if_true if_false then [ if_true ] else [ if_true; if_false ]

(** An instruction with no side effect: removable when its result is dead,
    and a candidate for hoisting/sinking/CSE.  Loads are not pure (they
    depend on memory); [Alloca] is not pure (it has an identity). *)
let is_pure = function
  | Bin _ | Cmp _ | Select _ | Mov _ | Cast _ | Addr _ -> true
  | Load _ | Store _ | Alloca _ | Call _ | Precompile _ -> false

(** Pure, or a load: has no effect on state other than defining [dst]. *)
let has_no_side_effect i = match i with Load _ -> true | _ -> is_pure i

(* Rewrite every operand with [f] (used by cloning, propagation, renaming). *)
let map_values f instr =
  match instr with
  | Bin r -> Bin { r with a = f r.a; b = f r.b }
  | Cmp r -> Cmp { r with a = f r.a; b = f r.b }
  | Select r ->
    Select { r with cond = f r.cond; if_true = f r.if_true; if_false = f r.if_false }
  | Mov r -> Mov { r with src = f r.src }
  | Cast r -> Cast { r with src = f r.src }
  | Load r -> Load { r with addr = f r.addr }
  | Store r -> Store { r with addr = f r.addr; src = f r.src }
  | Addr r -> Addr { r with base = f r.base; index = f r.index }
  | Alloca _ -> instr
  | Call r -> Call { r with args = List.map f r.args }
  | Precompile r -> Precompile { r with args = List.map f r.args }

let map_term_values f = function
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None as t -> t
  | Br _ as t -> t
  | Cbr r -> Cbr { r with cond = f r.cond }

let map_def f instr =
  match instr with
  | Bin r -> Bin { r with dst = f r.dst }
  | Cmp r -> Cmp { r with dst = f r.dst }
  | Select r -> Select { r with dst = f r.dst }
  | Mov r -> Mov { r with dst = f r.dst }
  | Cast r -> Cast { r with dst = f r.dst }
  | Load r -> Load { r with dst = f r.dst }
  | Addr r -> Addr { r with dst = f r.dst }
  | Alloca r -> Alloca { r with dst = f r.dst }
  | Call r -> Call { r with dst = Option.map f r.dst }
  | Precompile r -> Precompile { r with dst = Option.map f r.dst }
  | Store _ -> instr

let map_term_labels f = function
  | Ret _ as t -> t
  | Br l -> Br (f l)
  | Cbr r -> Cbr { r with if_true = f r.if_true; if_false = f r.if_false }

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Mulhu -> "mulhu"
  | Div -> "sdiv" | Rem -> "srem"
  | Udiv -> "udiv" | Urem -> "urem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt"
  | Sge -> "sge" | Ult -> "ult" | Ule -> "ule" | Ugt -> "ugt" | Uge -> "uge"

let is_commutative = function
  | Add | Mul | Mulhu | And | Or | Xor -> true
  | Sub | Div | Rem | Udiv | Urem | Shl | Lshr | Ashr -> false

(* Swap a comparison's operands: [a op b]  <=>  [b (swap op) a]. *)
let cmpop_swap = function
  | Eq -> Eq | Ne -> Ne
  | Slt -> Sgt | Sle -> Sge | Sgt -> Slt | Sge -> Sle
  | Ult -> Ugt | Ule -> Uge | Ugt -> Ult | Uge -> Ule

(* Negate a comparison: [not (a op b)] = [a (negate op) b]. *)
let cmpop_negate = function
  | Eq -> Ne | Ne -> Eq
  | Slt -> Sge | Sle -> Sgt | Sgt -> Sle | Sge -> Slt
  | Ult -> Uge | Ule -> Ugt | Ugt -> Ule | Uge -> Ult
