(** Types of IR values.

    The IR is deliberately small: zkVM guests target RV32IM, which has no
    native floating point, so the only first-class types are 32-bit
    integers, 64-bit integers and 32-bit pointers.  Floating point is
    provided by the softfloat runtime library operating on [I64] bit
    patterns, mirroring how zkVMs emulate FP (paper, Appendix A). *)

type t =
  | I32  (** 32-bit integer (also the type of booleans, as 0/1) *)
  | I64  (** 64-bit integer; lowered to a register pair on RV32 *)
  | Ptr  (** 32-bit byte address *)

let equal (a : t) (b : t) = a = b

(* Size in bytes of a value of this type when stored in guest memory. *)
let size_bytes = function I32 | Ptr -> 4 | I64 -> 8

let to_string = function I32 -> "i32" | I64 -> "i64" | Ptr -> "ptr"
let pp fmt t = Format.pp_print_string fmt (to_string t)
