(** Sparse byte-addressed guest memory.

    Backed by 4 KiB chunks allocated on first touch.  Addresses are
    int32 values interpreted as unsigned.  This module is purely
    functional storage — cost accounting (zkVM paging, CPU caches) is
    layered on top by observers. *)

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
}

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits

let create () = { chunks = Hashtbl.create 64 }

let addr_to_int (a : int32) = Int32.to_int a land 0xFFFF_FFFF

let chunk_for t key =
  match Hashtbl.find_opt t.chunks key with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_size '\000' in
    Hashtbl.replace t.chunks key c;
    c

let load8 t addr =
  let a = addr_to_int addr in
  match Hashtbl.find_opt t.chunks (a lsr chunk_bits) with
  | None -> 0
  | Some c -> Char.code (Bytes.unsafe_get c (a land (chunk_size - 1)))

let store8 t addr v =
  let a = addr_to_int addr in
  let c = chunk_for t (a lsr chunk_bits) in
  Bytes.unsafe_set c (a land (chunk_size - 1)) (Char.chr (v land 0xff))

(* Word accesses must be 4-aligned; the fast path stays within one chunk. *)
let check_aligned addr =
  if Int32.to_int addr land 3 <> 0 then
    failwith (Printf.sprintf "Memory: misaligned word access at 0x%08lx" addr)

let load32 t addr =
  check_aligned addr;
  let a = addr_to_int addr in
  let c = chunk_for t (a lsr chunk_bits) in
  Bytes.get_int32_le c (a land (chunk_size - 1))

let store32 t addr (v : int32) =
  check_aligned addr;
  let a = addr_to_int addr in
  let c = chunk_for t (a lsr chunk_bits) in
  Bytes.set_int32_le c (a land (chunk_size - 1)) v

(* 64-bit accesses as two word accesses, little-endian. *)
let load64 t addr =
  let lo = Int64.logand (Int64.of_int32 (load32 t addr)) 0xFFFF_FFFFL in
  let hi = Int64.of_int32 (load32 t (Int32.add addr 4l)) in
  Int64.logor lo (Int64.shift_left hi 32)

let store64 t addr (v : int64) =
  store32 t addr (Int64.to_int32 v);
  store32 t (Int32.add addr 4l) (Int64.to_int32 (Int64.shift_right_logical v 32))

(** Load/store value of IR type [ty] under the canonical int64 encoding. *)
let load_ty t (ty : Ty.t) addr =
  match ty with
  | Ty.I32 | Ptr -> Eval.norm32 (Int64.of_int32 (load32 t addr))
  | I64 -> load64 t addr

let store_ty t (ty : Ty.t) addr (v : int64) =
  match ty with
  | Ty.I32 | Ptr -> store32 t addr (Int64.to_int32 v)
  | I64 -> store64 t addr v

(** Copy an initialized global image into memory. *)
let init_global t addr (init : Modul.init) =
  match init with
  | Modul.Zero _ -> () (* memory is zero by construction *)
  | Words ws ->
    Array.iteri (fun i w -> store32 t (Int32.add addr (Int32.of_int (4 * i))) w) ws
