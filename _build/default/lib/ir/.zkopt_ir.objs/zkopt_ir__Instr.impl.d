lib/ir/instr.ml: List Option String Ty Value
