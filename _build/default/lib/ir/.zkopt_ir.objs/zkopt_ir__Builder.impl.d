lib/ir/builder.ml: Block Func Instr List Modul Printf Ty Value
