lib/ir/func.ml: Block Hashtbl Instr List Option Printf String Ty Value
