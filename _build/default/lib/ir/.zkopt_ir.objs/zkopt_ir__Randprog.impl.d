lib/ir/randprog.ml: Array Builder Eval Instr Int32 Int64 List Modul Random Ty Value
