lib/ir/printer.ml: Block Buffer Func Instr List Modul Printf String Ty Value
