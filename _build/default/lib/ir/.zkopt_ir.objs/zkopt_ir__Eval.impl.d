lib/ir/eval.ml: Instr Int32 Int64 Ty
