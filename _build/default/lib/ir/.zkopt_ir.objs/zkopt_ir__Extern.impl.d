lib/ir/extern.ml: Array Int32 Int64 List Printf
