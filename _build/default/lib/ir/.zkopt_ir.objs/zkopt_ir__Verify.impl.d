lib/ir/verify.ml: Block Extern Func Hashtbl Instr List Modul Option Printf Ty Value
