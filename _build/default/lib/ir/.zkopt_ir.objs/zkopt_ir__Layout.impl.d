lib/ir/layout.ml: Hashtbl Int32 List Modul
