lib/ir/memory.ml: Array Bytes Char Eval Hashtbl Int32 Int64 Modul Printf Ty
