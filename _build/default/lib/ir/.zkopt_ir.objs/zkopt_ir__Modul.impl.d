lib/ir/modul.ml: Array Func Hashtbl Instr List Option Printf String Ty
