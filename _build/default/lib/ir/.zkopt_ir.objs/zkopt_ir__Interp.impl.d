lib/ir/interp.ml: Array Block Eval Extern Func Hashtbl Instr Int32 Int64 Layout List Memory Modul Option Printf Ty Value
