lib/ir/clone.ml: Block Func List Modul
