(** Textual rendering of IR, for debugging and golden tests. *)

let value = Value.to_string

let instr (i : Instr.t) =
  match i with
  | Bin { dst; ty; op; a; b } ->
    Printf.sprintf "%%r%d = %s %s %s, %s" dst (Instr.binop_to_string op)
      (Ty.to_string ty) (value a) (value b)
  | Cmp { dst; ty; op; a; b } ->
    Printf.sprintf "%%r%d = icmp %s %s %s, %s" dst (Instr.cmpop_to_string op)
      (Ty.to_string ty) (value a) (value b)
  | Select { dst; ty; cond; if_true; if_false } ->
    Printf.sprintf "%%r%d = select %s %s, %s, %s" dst (Ty.to_string ty)
      (value cond) (value if_true) (value if_false)
  | Mov { dst; ty; src } ->
    Printf.sprintf "%%r%d = mov %s %s" dst (Ty.to_string ty) (value src)
  | Cast { dst; op; src } ->
    let name = match op with Instr.Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc" in
    Printf.sprintf "%%r%d = %s %s" dst name (value src)
  | Load { dst; ty; addr } ->
    Printf.sprintf "%%r%d = load %s, %s" dst (Ty.to_string ty) (value addr)
  | Store { ty; addr; src } ->
    Printf.sprintf "store %s %s, %s" (Ty.to_string ty) (value src) (value addr)
  | Addr { dst; base; index; scale; offset } ->
    Printf.sprintf "%%r%d = addr %s + %s*%d + %d" dst (value base) (value index)
      scale offset
  | Alloca { dst; size } -> Printf.sprintf "%%r%d = alloca %d" dst size
  | Call { dst; callee; args } ->
    let args = String.concat ", " (List.map value args) in
    (match dst with
    | Some d -> Printf.sprintf "%%r%d = call @%s(%s)" d callee args
    | None -> Printf.sprintf "call @%s(%s)" callee args)
  | Precompile { dst; name; args } ->
    let args = String.concat ", " (List.map value args) in
    (match dst with
    | Some d -> Printf.sprintf "%%r%d = precompile @%s(%s)" d name args
    | None -> Printf.sprintf "precompile @%s(%s)" name args)

let term (t : Instr.term) =
  match t with
  | Ret None -> "ret void"
  | Ret (Some v) -> Printf.sprintf "ret %s" (value v)
  | Br l -> Printf.sprintf "br %s" l
  | Cbr { cond; if_true; if_false } ->
    Printf.sprintf "cbr %s, %s, %s" (value cond) if_true if_false

let block (b : Block.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.label ^ ":\n");
  List.iter (fun i -> Buffer.add_string buf ("  " ^ instr i ^ "\n")) b.instrs;
  Buffer.add_string buf ("  " ^ term b.term ^ "\n");
  Buffer.contents buf

let func (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map (fun (r, ty) -> Printf.sprintf "%s %%r%d" (Ty.to_string ty) r) f.Func.params)
  in
  let ret = match f.ret with None -> "void" | Some t -> Ty.to_string t in
  Buffer.add_string buf (Printf.sprintf "func %s @%s(%s) {\n" ret f.name params);
  List.iter (fun b -> Buffer.add_string buf (block b)) f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modul (m : Modul.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g : Modul.global) ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %d bytes\n" g.gname (Modul.global_size g)))
    m.globals;
  List.iter (fun f -> Buffer.add_string buf ("\n" ^ func f)) m.funcs;
  Buffer.contents buf
