(** A basic block: a label, a straight-line instruction list and a
    terminator.  Blocks are mutable; passes edit them in place. *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.term;
}

let create ?(instrs = []) ?(term = Instr.Ret None) label =
  { label; instrs; term }

let successors b = Instr.successors b.term

let instr_count b = List.length b.instrs

(* Iterate over instructions including an index, used by passes that need
   stable positions within a block. *)
let iteri f b = List.iteri f b.instrs
