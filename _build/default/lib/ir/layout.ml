(** Guest address-space layout, shared by the IR interpreter and the RV32
    code generator so that programs behave identically under both.

    The layout mirrors the flat 32-bit space of RISC-V zkVM guests:
    code low, globals above it, stack at the top growing down. *)

let code_base = 0x0000_1000l
let globals_base = 0x0002_0000l
let stack_top = 0x0FF0_0000l

(** zkVM page granularity (RISC Zero uses 1 KB pages; paper §5). *)
let zk_page_bytes = 1024

let align_up n a = (n + a - 1) / a * a

(** Assign an address to every global, in declaration order, 16-aligned.
    Returns the address map and the end of the data segment. *)
let place_globals (m : Modul.t) =
  let table = Hashtbl.create 16 in
  let next = ref (Int32.to_int globals_base) in
  List.iter
    (fun (g : Modul.global) ->
      Hashtbl.replace table g.gname (Int32.of_int !next);
      next := align_up (!next + Modul.global_size g) 16)
    m.globals;
  (table, Int32.of_int !next)
