lib/cpu/predictor.ml: Array Int32
