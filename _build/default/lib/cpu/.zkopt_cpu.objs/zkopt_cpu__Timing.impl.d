lib/cpu/timing.ml: Array Asm Cache Codegen Emulator Float Int32 Isa List Predictor Regalloc Zkopt_ir Zkopt_riscv
