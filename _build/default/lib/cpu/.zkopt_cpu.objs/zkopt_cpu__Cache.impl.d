lib/cpu/cache.ml: Array Int32
