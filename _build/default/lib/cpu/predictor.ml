(** Two-bit saturating-counter branch predictor (per-PC table). *)

type t = {
  table : int array;     (* 0..3; >=2 predicts taken *)
  mask : int;
  mutable correct : int;
  mutable mispredicts : int;
}

let create ?(entries = 4096) () =
  { table = Array.make entries 1; mask = entries - 1; correct = 0; mispredicts = 0 }

let index t (pc : int32) = (Int32.to_int pc lsr 2) land t.mask

(** Predict and update; returns [true] if the prediction was correct. *)
let access t (pc : int32) ~(taken : bool) : bool =
  let i = index t pc in
  let counter = t.table.(i) in
  let predicted = counter >= 2 in
  if taken then t.table.(i) <- min 3 (counter + 1)
  else t.table.(i) <- max 0 (counter - 1);
  if predicted = taken then begin
    t.correct <- t.correct + 1;
    true
  end
  else begin
    t.mispredicts <- t.mispredicts + 1;
    false
  end
