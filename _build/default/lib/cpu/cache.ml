(** Set-associative LRU data-cache model (default: 32 KiB, 8-way, 64-byte
    lines — an L1d in the class of the paper's EPYC testbed). *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;      (* [set].[way] = tag, -1 empty *)
  ages : int array array;      (* LRU stamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  (* single-stream next-line prefetcher: a second sequential miss starts a
     stream and pulls the following lines in.  One tracker only, so
     interleaved streams defeat it -- the mechanism that makes loop
     fission profitable on the CPU model (paper Fig. 2b). *)
  mutable last_miss_line : int;
  mutable prefetches : int;
}

let create ?(size_bytes = 32 * 1024) ?(ways = 8) ?(line_bytes = 64) () =
  let sets = size_bytes / (ways * line_bytes) in
  {
    sets;
    ways;
    line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    ages = Array.init sets (fun _ -> Array.make ways 0);
    clock = 0;
    hits = 0;
    misses = 0;
    last_miss_line = min_int;
    prefetches = 0;
  }

let fill t line =
  let set = line mod t.sets in
  let tag = line / t.sets in
  let tags = t.tags.(set) and ages = t.ages.(set) in
  let rec present w =
    if w >= t.ways then false else tags.(w) = tag || present (w + 1)
  in
  if not (present 0) then begin
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if ages.(w) < ages.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    ages.(!victim) <- t.clock
  end

(** Access [addr]; returns [true] on hit.  Misses fill the LRU way and
    may trigger the stream prefetcher. *)
let access t (addr : int32) : bool =
  let a = Int32.to_int addr land 0xFFFF_FFFF in
  let line = a / t.line_bytes in
  let set = line mod t.sets in
  let tag = line / t.sets in
  t.clock <- t.clock + 1;
  let tags = t.tags.(set) and ages = t.ages.(set) in
  let rec find w = if w >= t.ways then None else if tags.(w) = tag then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
    ages.(w) <- t.clock;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    fill t line;
    if line > t.last_miss_line && line - t.last_miss_line <= 5 then begin
      (* sequential stream detected: run ahead *)
      for k = 1 to 4 do
        fill t (line + k)
      done;
      t.prefetches <- t.prefetches + 4
    end;
    t.last_miss_line <- line;
    false
