(** Definition-shape helpers for the non-SSA IR.

    A register with exactly one static definition and which is not a
    function parameter behaves like an SSA value: its defining instruction
    fully determines it.  Most scalar optimizations restrict themselves to
    such registers and treat multi-def registers (loop variables written
    by [Mov]) as barriers. *)

open Zkopt_ir

type t = {
  counts : (Value.reg, int) Hashtbl.t;
  def_instr : (Value.reg, Instr.t) Hashtbl.t;  (* only for single-def regs *)
  params : (Value.reg, unit) Hashtbl.t;
}

let compute (f : Func.t) : t =
  let counts = Func.def_counts f in
  let params = Hashtbl.create 8 in
  List.iter (fun (r, _) -> Hashtbl.replace params r ()) f.Func.params;
  let def_instr = Hashtbl.create 64 in
  Func.iter_instrs f (fun _ i ->
      match Instr.def i with
      | Some r when Hashtbl.find_opt counts r = Some 1 && not (Hashtbl.mem params r) ->
        Hashtbl.replace def_instr r i
      | _ -> ());
  { counts; def_instr; params }

let is_param t r = Hashtbl.mem t.params r

(** Register defined exactly once, by an instruction (not a parameter). *)
let is_single_def t r =
  Hashtbl.find_opt t.counts r = Some 1 && not (is_param t r)

let def_of t r = Hashtbl.find_opt t.def_instr r

(** A value that is the same wherever it is read: an immediate, a global
    address, a never-reassigned parameter, or a single-def register.
    (A parameter that is also written by an instruction has several defs
    and is *not* stable.) *)
let is_stable t = function
  | Value.Imm _ | Value.Glob _ -> true
  | Value.Reg r -> Hashtbl.find_opt t.counts r = Some 1

(** Count uses of every register across the function (operands of
    instructions and terminators). *)
let use_counts (f : Func.t) =
  let uses = Hashtbl.create 64 in
  let bump r = Hashtbl.replace uses r (1 + Option.value ~default:0 (Hashtbl.find_opt uses r)) in
  Func.iter_blocks f (fun b ->
      List.iter (fun i -> List.iter bump (Instr.uses i)) b.Block.instrs;
      List.iter bump (Instr.term_uses b.Block.term));
  uses
