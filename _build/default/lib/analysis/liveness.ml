(** Backward liveness dataflow over virtual registers, at block
    granularity. *)

open Zkopt_ir

module RegSet = Intset

type t = {
  live_in : RegSet.t array;
  live_out : RegSet.t array;
}

(* use[b] = regs read before any write in b; def[b] = regs written in b *)
let local_sets (b : Block.t) =
  let use = ref RegSet.empty and def = ref RegSet.empty in
  let visit_uses rs =
    List.iter (fun r -> if not (RegSet.mem r !def) then use := RegSet.add r !use) rs
  in
  List.iter
    (fun i ->
      visit_uses (Instr.uses i);
      Option.iter (fun d -> def := RegSet.add d !def) (Instr.def i))
    b.Block.instrs;
  visit_uses (Instr.term_uses b.Block.term);
  (!use, !def)

let compute (cfg : Cfg.t) : t =
  let n = Cfg.size cfg in
  let use = Array.make n RegSet.empty and def = Array.make n RegSet.empty in
  for i = 0 to n - 1 do
    let u, d = local_sets (Cfg.block cfg i) in
    use.(i) <- u;
    def.(i) <- d
  done;
  let live_in = Array.make n RegSet.empty in
  let live_out = Array.make n RegSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> RegSet.union acc live_in.(s))
          RegSet.empty cfg.Cfg.succ.(i)
      in
      let inn = RegSet.union use.(i) (RegSet.diff out def.(i)) in
      if not (RegSet.equal out live_out.(i)) || not (RegSet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }

(** Registers live on entry to any block other than the one defining them
    — i.e. live across a block boundary. *)
let cross_block_regs (t : t) =
  let acc = ref RegSet.empty in
  Array.iter (fun s -> acc := RegSet.union !acc s) t.live_in;
  !acc
