(** Small integer sets used throughout the analyses. *)

include Set.Make (Int)
