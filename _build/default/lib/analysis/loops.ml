(** Natural-loop discovery and counted-loop pattern matching.

    A natural loop is identified by a back edge [latch -> header] where
    [header] dominates [latch]; its body is every block that can reach the
    latch without passing through the header. *)

open Zkopt_ir

type t = {
  header : int;
  latches : int list;
  body : Intset.t;       (* includes header and latches *)
  depth : int;           (* 1 = outermost *)
}

let body_labels cfg loop =
  List.map (fun i -> Cfg.label cfg i) (Intset.elements loop.body)

(* Collect the body of the loop with the given header/latch back edges. *)
let loop_body (cfg : Cfg.t) header latches =
  let body = ref (Intset.singleton header) in
  let rec add i =
    if not (Intset.mem i !body) then begin
      body := Intset.add i !body;
      List.iter add cfg.Cfg.pred.(i)
    end
  in
  List.iter add latches;
  !body

(** All natural loops of [cfg], outermost first within each header, with
    nesting depths filled in.  Back edges sharing a header are merged into
    one loop, as LLVM does. *)
let find (cfg : Cfg.t) : t list =
  let dom = Dom.compute cfg in
  let n = Cfg.size cfg in
  let latches_of = Hashtbl.create 4 in
  for u = 0 to n - 1 do
    List.iter
      (fun h ->
        if Dom.dominates dom h u then
          Hashtbl.replace latches_of h
            (u :: Option.value ~default:[] (Hashtbl.find_opt latches_of h)))
      cfg.Cfg.succ.(u)
  done;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        { header; latches; body = loop_body cfg header latches; depth = 0 } :: acc)
      latches_of []
  in
  (* depth = number of loops containing this loop's header *)
  let with_depth =
    List.map
      (fun l ->
        let depth =
          List.length (List.filter (fun l' -> Intset.mem l.header l'.body) loops)
        in
        { l with depth })
      loops
  in
  List.sort (fun a b -> compare (a.depth, a.header) (b.depth, b.header)) with_depth

(** Blocks outside the loop reachable from inside it. *)
let exit_targets (cfg : Cfg.t) (l : t) =
  Intset.fold
    (fun i acc ->
      List.fold_left
        (fun acc s -> if Intset.mem s l.body then acc else Intset.add s acc)
        acc cfg.Cfg.succ.(i))
    l.body Intset.empty

(** A unique predecessor of the header from outside the loop, if any —
    the preheader. *)
let preheader (cfg : Cfg.t) (l : t) =
  match List.filter (fun p -> not (Intset.mem p l.body)) cfg.Cfg.pred.(l.header) with
  | [ p ] -> Some p
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Counted loops                                                       *)
(* ------------------------------------------------------------------ *)

type counted = {
  loop : t;
  iv : Value.reg;           (* induction variable (multi-def register) *)
  iv_ty : Ty.t;
  cmp_op : Instr.cmpop;
  bound : Value.t;          (* loop-invariant bound *)
  step : int64;             (* constant step added in the latch *)
  body_label : string;      (* successor taken while the loop continues *)
  exit_label : string;
  latch : int;
  incr_temp : Value.reg;    (* the register holding iv+step in the latch *)
}

(** Match the canonical shape emitted by {!Zkopt_ir.Builder.for_}:
    - single latch
    - header terminator: [cbr (icmp op iv bound), body, exit]
      (the compare is the last instruction of the header)
    - latch ends with [t := iv + step; iv := t; br header]
    - [iv] has exactly two defs (init outside, update in latch)
    - [bound] is stable (invariant by def-shape) *)
let as_counted (cfg : Cfg.t) (defs : Defs.t) (l : t) : counted option =
  match l.latches with
  | [ latch ] -> begin
    let header_block = Cfg.block cfg l.header in
    let latch_block = Cfg.block cfg latch in
    match header_block.Block.term with
    | Instr.Cbr { cond = Value.Reg cond_reg; if_true; if_false } -> begin
      (* which side stays in the loop? *)
      let body_label, exit_label, negated =
        let in_loop lbl =
          match Cfg.index_of cfg lbl with
          | Some i -> Intset.mem i l.body
          | None -> false
        in
        if in_loop if_true && not (in_loop if_false) then (if_true, if_false, false)
        else if in_loop if_false && not (in_loop if_true) then (if_false, if_true, true)
        else ("", "", false)
      in
      if String.equal body_label "" then None
      else
        (* the compare must be the last instruction of the header *)
        match List.rev header_block.Block.instrs with
        | Instr.Cmp { dst; ty; op; a = Value.Reg iv; b = bound } :: _
          when dst = cond_reg -> begin
          let op = if negated then Instr.cmpop_negate op else op in
          (* latch tail: Bin(t, Add, iv, step); Mov(iv, t) *)
          match List.rev latch_block.Block.instrs with
          | Instr.Mov { dst = iv'; src = Value.Reg t; _ }
            :: Instr.Bin { dst = t'; op = Instr.Add; a = Value.Reg iv''; b = Value.Imm step; ty = ty' }
            :: _
            when iv' = iv && t' = t && iv'' = iv && Ty.equal ty ty'
                 && Hashtbl.find_opt defs.Defs.counts iv = Some 2
                 && Defs.is_stable defs bound ->
            Some
              { loop = l; iv; iv_ty = ty; cmp_op = op; bound; step;
                body_label; exit_label; latch; incr_temp = t }
          | _ -> None
        end
        | _ -> None
    end
    | _ -> None
  end
  | _ -> None

(** Constant trip count, when init, bound and step are all immediates and
    the comparison is a simple [<]/[<=]/[!=] counting-up loop. *)
let trip_count (c : counted) ~(init : int64 option) : int option =
  match (init, c.bound, c.cmp_op) with
  | Some init, Value.Imm bound, (Instr.Slt | Instr.Ult) when c.step > 0L ->
    let diff = Int64.sub bound init in
    if Int64.compare diff 0L <= 0 then Some 0
    else
      Some
        (Int64.to_int
           (Int64.div (Int64.add diff (Int64.sub c.step 1L)) c.step))
  | Some init, Value.Imm bound, (Instr.Sle | Instr.Ule) when c.step > 0L ->
    let diff = Int64.add (Int64.sub bound init) 1L in
    if Int64.compare diff 0L <= 0 then Some 0
    else
      Some
        (Int64.to_int
           (Int64.div (Int64.add diff (Int64.sub c.step 1L)) c.step))
  | Some init, Value.Imm bound, Instr.Ne when c.step = 1L ->
    let diff = Int64.sub bound init in
    if Int64.compare diff 0L < 0 then None else Some (Int64.to_int diff)
  | _ -> None
