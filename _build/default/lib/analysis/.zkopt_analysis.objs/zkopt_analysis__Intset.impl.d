lib/analysis/intset.ml: Int Set
