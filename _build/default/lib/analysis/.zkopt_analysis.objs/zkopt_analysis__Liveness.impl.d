lib/analysis/liveness.ml: Array Block Cfg Instr Intset List Option Zkopt_ir
