lib/analysis/defs.ml: Block Func Hashtbl Instr List Option Value Zkopt_ir
