lib/analysis/cfg.ml: Array Block Func Hashtbl List Printf Zkopt_ir
