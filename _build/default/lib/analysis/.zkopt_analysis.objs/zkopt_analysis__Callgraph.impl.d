lib/analysis/callgraph.ml: Func Hashtbl Instr List Modul Option String Zkopt_ir
