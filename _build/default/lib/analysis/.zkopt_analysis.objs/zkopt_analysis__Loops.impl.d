lib/analysis/loops.ml: Array Block Cfg Defs Dom Hashtbl Instr Int64 Intset List Option String Ty Value Zkopt_ir
