lib/analysis/dom.ml: Array Cfg List
