(** Call graph over module functions. *)

open Zkopt_ir

type t = {
  callees : (string, string list) Hashtbl.t;
  callers : (string, string list) Hashtbl.t;
  call_sites : (string, int) Hashtbl.t;  (* callee -> number of call sites *)
}

let compute (m : Modul.t) : t =
  let callees = Hashtbl.create 16 in
  let callers = Hashtbl.create 16 in
  let call_sites = Hashtbl.create 16 in
  let add tbl k v =
    let old = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    if not (List.mem v old) then Hashtbl.replace tbl k (v :: old)
  in
  List.iter
    (fun (f : Func.t) ->
      if not (Hashtbl.mem callees f.Func.name) then
        Hashtbl.replace callees f.Func.name [];
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Call { callee; _ } ->
            add callees f.Func.name callee;
            add callers callee f.Func.name;
            Hashtbl.replace call_sites callee
              (1 + Option.value ~default:0 (Hashtbl.find_opt call_sites callee))
          | _ -> ()))
    m.Modul.funcs;
  { callees; callers; call_sites }

let callees t f = Option.value ~default:[] (Hashtbl.find_opt t.callees f)
let callers t f = Option.value ~default:[] (Hashtbl.find_opt t.callers f)
let call_site_count t f = Option.value ~default:0 (Hashtbl.find_opt t.call_sites f)

(** Is [f] (transitively) recursive?  Used to stop the inliner. *)
let is_recursive t fname =
  let rec reach seen g =
    if List.mem g seen then List.mem fname seen && String.equal g fname
    else
      List.exists
        (fun callee ->
          String.equal callee fname || reach (g :: seen) callee)
        (callees t g)
  in
  List.exists
    (fun callee -> String.equal callee fname || reach [ fname ] callee)
    (callees t fname)

(** Functions unreachable from [roots] (default: ["main"]). *)
let unreachable_funcs ?(roots = [ "main" ]) (m : Modul.t) (t : t) =
  let seen = Hashtbl.create 16 in
  let rec visit f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      List.iter visit (callees t f)
    end
  in
  List.iter visit roots;
  List.filter_map
    (fun (f : Func.t) ->
      if Hashtbl.mem seen f.Func.name then None else Some f.Func.name)
    m.Modul.funcs
