(** Dominator tree, computed with the Cooper–Harvey–Kennedy iterative
    algorithm over reverse postorder. *)

type t = {
  cfg : Cfg.t;
  idom : int array;   (* immediate dominator index; entry's idom is itself *)
  rpo_number : int array;
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.size cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_number = Array.make n max_int in
  List.iteri (fun ord i -> rpo_number.(i) <- ord) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_number.(!a) > rpo_number.(!b) do a := idom.(!a) done;
      while rpo_number.(!b) > rpo_number.(!a) do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> 0 then begin
          let preds = List.filter (fun p -> idom.(p) >= 0) cfg.Cfg.pred.(i) in
          match preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(i) <> new_idom then begin
              idom.(i) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { cfg; idom; rpo_number }

(** [dominates t a b]: does block [a] dominate block [b]?  Unreachable
    blocks dominate nothing and are dominated by nothing. *)
let dominates t a b =
  if t.idom.(b) < 0 || t.idom.(a) < 0 then false
  else begin
    let rec walk x = if x = a then true else if x = 0 then a = 0 else walk t.idom.(x) in
    walk b
  end

let idom t i = if i = 0 || t.idom.(i) < 0 then None else Some t.idom.(i)

(** Children lists of the dominator tree. *)
let children t =
  let n = Array.length t.idom in
  let kids = Array.make n [] in
  for i = n - 1 downto 1 do
    if t.idom.(i) >= 0 then kids.(t.idom.(i)) <- i :: kids.(t.idom.(i))
  done;
  kids
