(** Control-flow graph utilities over a function's block list. *)

open Zkopt_ir

type t = {
  func : Func.t;
  blocks : Block.t array;                    (* in layout order; entry first *)
  index : (string, int) Hashtbl.t;           (* label -> array index *)
  succ : int list array;
  pred : int list array;
}

let of_func (f : Func.t) : t =
  let blocks = Array.of_list f.Func.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i (b : Block.t) -> Hashtbl.replace index b.label i) blocks;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.filter_map (fun l -> Hashtbl.find_opt index l) (Block.successors b)
      in
      succ.(i) <- ss;
      List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss)
    blocks;
  { func = f; blocks; index; succ; pred }

let size t = Array.length t.blocks
let block t i = t.blocks.(i)
let label t i = t.blocks.(i).Block.label
let index_of t label = Hashtbl.find_opt t.index label

let index_of_exn t lbl =
  match index_of t lbl with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Cfg.index_of: no block %s" lbl)

(** Reverse postorder over blocks reachable from the entry. *)
let reverse_postorder t =
  let n = size t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succ.(i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  !order

(** Blocks unreachable from the entry (dead blocks). *)
let unreachable t =
  let n = size t in
  let reach = Array.make n false in
  List.iter (fun i -> reach.(i) <- true) (reverse_postorder t);
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not reach.(i) then out := i :: !out
  done;
  !out
