(** The zkVM executor: replays a guest binary while accounting cycles,
    paging events and segmentation under a {!Config.t}.

    Paging model (RISC Zero-style, parameterized): guest memory is split
    into [page_bytes] pages.  Within a segment, the first touch of a page
    charges [page_in_cost]; at segment close, every dirtied page charges
    [page_out_cost] and the touched-set resets (the next segment must
    page everything in again).  Instruction fetch touches the code page.

    The optional [fault] injects the silent-halt soundness bug the paper
    found in SP1 (§4.2): when a segment boundary lands exactly on an
    indirect jump, the executor stops mid-run but still reports success —
    the differential oracle in [examples/differential_oracle.ml] and the
    [sp1bug] bench catch it. *)

open Zkopt_ir
open Zkopt_riscv

type fault = No_fault | Silent_halt_on_boundary_jalr

type segment = {
  user_cycles : int;
  paging_cycles : int;
}

type result = {
  exit_value : int32;
  total_cycles : int;
  user_cycles : int;
  paging_cycles : int;
  page_ins : int;
  page_outs : int;
  segments : segment list;        (* in execution order *)
  retired : int;
  loads : int;
  stores : int;
  branches : int;
  precompile_calls : int;
  faulted : bool;                 (* the injected bug fired *)
}

type state = {
  cfg : Config.t;
  mutable user : int;             (* user cycles, current segment *)
  mutable paging : int;           (* paging cycles, current segment *)
  mutable total_user : int;
  mutable total_paging : int;
  mutable page_ins : int;
  mutable page_outs : int;
  mutable segs : segment list;
  touched : (int, unit) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable precompiles : int;
  mutable faulted : bool;
}

let touch st ~write addr =
  let page = Int32.to_int addr land 0xFFFF_FFFF / st.cfg.Config.page_bytes in
  if not (Hashtbl.mem st.touched page) then begin
    Hashtbl.replace st.touched page ();
    st.paging <- st.paging + st.cfg.Config.page_in_cost;
    st.page_ins <- st.page_ins + 1
  end;
  if write && not (Hashtbl.mem st.dirty page) then Hashtbl.replace st.dirty page ()

let close_segment st =
  let outs = Hashtbl.length st.dirty in
  st.paging <- st.paging + (outs * st.cfg.Config.page_out_cost);
  st.page_outs <- st.page_outs + outs;
  st.segs <- { user_cycles = st.user; paging_cycles = st.paging } :: st.segs;
  st.total_user <- st.total_user + st.user;
  st.total_paging <- st.total_paging + st.paging;
  st.user <- 0;
  st.paging <- 0;
  Hashtbl.reset st.touched;
  Hashtbl.reset st.dirty

(** Execute module [m] (already compiled to [cg]) under configuration
    [cfg]. *)
let run ?(fault = No_fault) ?(fuel = 500_000_000) (cfg : Config.t)
    (cg : Codegen.t) (m : Modul.t) : result =
  let st =
    {
      cfg;
      user = 0;
      paging = 0;
      total_user = 0;
      total_paging = 0;
      page_ins = 0;
      page_outs = 0;
      segs = [];
      touched = Hashtbl.create 64;
      dirty = Hashtbl.create 64;
      loads = 0;
      stores = 0;
      branches = 0;
      precompiles = 0;
      faulted = false;
    }
  in
  let hooks = Emulator.no_hooks () in
  let boundary_pending = ref false in
  hooks.on_instr <-
    (fun ~pc ins ->
      touch st ~write:false pc;
      st.user <- st.user + Config.instr_cost cfg ins;
      (match ins with
      | Isa.Load _ -> st.loads <- st.loads + 1
      | Isa.Store _ -> st.stores <- st.stores + 1
      | Isa.Branch _ | Jal _ | Jalr _ -> st.branches <- st.branches + 1
      | _ -> ());
      if st.user >= cfg.Config.segment_limit then begin
        boundary_pending := true;
        match (fault, ins) with
        | Silent_halt_on_boundary_jalr, Isa.Jalr _ ->
          (* the shard boundary landed on an indirect jump (a function
             return): the buggy executor drops the rest of the execution
             on the floor yet still emits a provable, verifying trace *)
          st.faulted <- true
        | _ -> ()
      end);
  hooks.on_mem <- (fun ~write addr _bytes -> touch st ~write addr);
  hooks.on_precompile <-
    (fun name ->
      st.precompiles <- st.precompiles + 1;
      st.user <- st.user + Config.precompile_cost cfg name);
  let emu = Emulator.create ~hooks cg.Codegen.program m in
  let budget = ref fuel in
  while (not emu.Emulator.halted) && not st.faulted do
    if !budget <= 0 then raise (Emulator.Trap "zkVM executor: out of fuel");
    decr budget;
    Emulator.step emu;
    if !boundary_pending && not st.faulted then begin
      boundary_pending := false;
      close_segment st
    end
  done;
  close_segment st;
  {
    exit_value = emu.Emulator.exit_value;
    total_cycles = st.total_user + st.total_paging;
    user_cycles = st.total_user;
    paging_cycles = st.total_paging;
    page_ins = st.page_ins;
    page_outs = st.page_outs;
    segments = List.rev st.segs;
    retired = emu.Emulator.retired;
    loads = st.loads;
    stores = st.stores;
    branches = st.branches;
    precompile_calls = st.precompiles;
    faulted = st.faulted;
  }

(** Simulated executor wall-clock time in seconds. *)
let exec_time_s (cfg : Config.t) (r : result) =
  ((float_of_int r.total_cycles *. cfg.Config.exec_ns_per_cycle)
  +. cfg.Config.exec_overhead_ns)
  *. 1e-9
