lib/zkvm/vm.ml: Codegen Config Executor Modul Prover Zkopt_ir Zkopt_riscv
