lib/zkvm/prover.ml: Config Executor List
