lib/zkvm/executor.ml: Codegen Config Emulator Hashtbl Int32 Isa List Modul Zkopt_ir Zkopt_riscv
