lib/zkvm/config.ml: Isa List String Zkopt_riscv
