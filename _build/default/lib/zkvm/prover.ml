(** Analytic STARK prover-time model.

    Each segment's execution trace is padded to a power of two; proving a
    segment costs [ns_per_cycle * padded * log2(padded)] (the FFT/LDE and
    commitment work scale as N log N) plus a fixed per-segment overhead
    covering setup and the recursion/aggregation step that folds the
    segment proof into the final one.  More segments therefore cost
    disproportionally more — the mechanism behind the paper's regex-match
    regression on SP1 (Fig. 13 discussion: 20 shards instead of 16). *)

type result = {
  time_s : float;
  segments : int;
  padded_cycles_total : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let log2f n = log (float_of_int n) /. log 2.0

let prove (cfg : Config.t) (exec : Executor.result) : result =
  let min_cycles = 1 lsl cfg.Config.min_po2 in
  let segment_time (s : Executor.segment) =
    let actual = s.Executor.user_cycles + s.paging_cycles in
    let cycles = max min_cycles actual in
    let padded = next_pow2 cycles in
    ( padded,
      (float_of_int padded *. log2f padded *. cfg.Config.prove_ns_per_cycle)
      +. (float_of_int actual *. cfg.Config.prove_witgen_ns_per_cycle)
      +. cfg.Config.prove_segment_overhead_ns )
  in
  let padded_total, ns =
    List.fold_left
      (fun (p, t) s ->
        let padded, time = segment_time s in
        (p + padded, t +. time))
      (0, 0.0) exec.Executor.segments
  in
  { time_s = ns *. 1e-9; segments = List.length exec.Executor.segments;
    padded_cycles_total = padded_total }

(** Simulated verification: checks the (modelled) proof's claimed exit
    value.  Deliberately mirrors the soundness gap of the injected SP1
    bug — a proof produced by a silently-halted execution still verifies,
    because the verifier sees a well-formed trace that ends in a halt. *)
let verify (_cfg : Config.t) (exec : Executor.result) (_p : result) : bool =
  (* A real verifier checks trace constraints; our model has no way to be
     unsound except via the injected fault, which by construction yields
     a "valid" truncated trace. *)
  ignore exec;
  true
