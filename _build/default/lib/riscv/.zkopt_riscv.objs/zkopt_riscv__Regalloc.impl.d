lib/riscv/regalloc.ml: Array Asm Hashtbl Isa Isel List Printf Zkopt_analysis
