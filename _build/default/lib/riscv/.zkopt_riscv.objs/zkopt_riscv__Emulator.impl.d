lib/riscv/emulator.ml: Array Asm Eval Extern Hashtbl Int32 Int64 Isa Layout List Memory Modul Printf String Zkopt_ir
