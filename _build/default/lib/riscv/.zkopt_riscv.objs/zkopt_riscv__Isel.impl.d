lib/riscv/isel.ml: Asm Block Emulator Func Hashtbl Instr Int32 Int64 Isa List Modul Option String Ty Value Zkopt_analysis Zkopt_ir
