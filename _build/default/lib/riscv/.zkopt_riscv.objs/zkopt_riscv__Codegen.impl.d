lib/riscv/codegen.ml: Asm Emulator Func Int32 Isa Isel Layout List Modul Regalloc String Zkopt_ir
