(** Constant folding, constant branch folding, and copy propagation. *)

open Zkopt_ir
open Zkopt_analysis

let fold_instr (i : Instr.t) : Instr.t option =
  match i with
  | Instr.Bin { dst; ty; op; a = Value.Imm a; b = Value.Imm b } ->
    Some (Instr.Mov { dst; ty; src = Value.Imm (Eval.binop ty op a b) })
  | Cmp { dst; ty; op; a = Value.Imm a; b = Value.Imm b } ->
    Some (Instr.Mov { dst; ty = Ty.I32; src = Value.Imm (Eval.cmp ty op a b) })
  | Select { dst; ty; cond = Value.Imm c; if_true; if_false } ->
    Some (Instr.Mov { dst; ty; src = (if Eval.to_bool c then if_true else if_false) })
  | Cast { dst; op; src = Value.Imm s } ->
    let ty = match op with Instr.Trunc -> Ty.I32 | _ -> Ty.I64 in
    Some (Instr.Mov { dst; ty; src = Value.Imm (Eval.cast op s) })
  | Addr { dst; base = Value.Imm b; index = Value.Imm i; scale; offset } ->
    Some
      (Instr.Mov
         { dst; ty = Ty.Ptr;
           src = Value.Imm (Eval.addr ~base:b ~index:i ~scale ~offset) })
  | _ -> None

let run_constfold (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks f (fun b ->
          (* fold instructions *)
          b.Block.instrs <-
            List.map
              (fun i ->
                match fold_instr i with
                | Some i' ->
                  changed := true;
                  i'
                | None -> i)
              b.Block.instrs;
          (* fold constant conditional branches *)
          match b.Block.term with
          | Instr.Cbr { cond = Value.Imm c; if_true; if_false } ->
            b.Block.term <- Instr.Br (if Eval.to_bool c then if_true else if_false);
            changed := true
          | Cbr { if_true; if_false; _ } when String.equal if_true if_false ->
            b.Block.term <- Instr.Br if_true;
            changed := true
          | _ -> ());
      if Util.remove_unreachable_blocks f then changed := true)
    m.Modul.funcs;
  !changed

(* Copy propagation: a single-def [Mov dst src] with stable [src] lets
   every use of [dst] read [src] directly. *)
let run_copyprop (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Mov { dst; src; ty = _ }
            when Defs.is_single_def defs dst && Defs.is_stable defs src
                 && src <> Value.Reg dst ->
            Util.replace_uses f ~from:dst ~to_:src;
            changed := true
          | _ -> ()))
    m.Modul.funcs;
  !changed

let () =
  Pass.register "constprop"
    "fold constant operations and constant conditional branches"
    run_constfold;
  Pass.register "copyprop" "propagate single-definition register copies"
    run_copyprop
