(** Loop transformations: licm, unrolling, deletion, rotation,
    normalization, induction-variable strength reduction, distribution
    (fission) and fusion, extraction, the memset idiom, prefetch
    insertion, and LCSSA-style exit copies.

    These are the passes at the heart of the paper's negative findings:
    licm and loop-extract trade loop work for live-range/paging pressure
    (Fig. 9), and unrolling only pays on zkVMs when it reduces dynamic
    instruction count (Insight 3, gated by [unroll_only_if_smaller]). *)

open Zkopt_ir
open Zkopt_analysis

let hoistable = function
  | Instr.Bin _ | Cmp _ | Select _ | Mov _ | Cast _ | Addr _ -> true
  | Load _ | Store _ | Alloca _ | Call _ | Precompile _ -> false

(* The stable initial value of a counted loop's induction variable: its
   unique def outside the loop must be [Mov iv src] with stable [src]. *)
let iv_init (cfg : Cfg.t) (defs : Defs.t) (c : Loops.counted) : Value.t option =
  let init = ref None in
  Array.iteri
    (fun bi (b : Block.t) ->
      if not (Intset.mem bi c.Loops.loop.Loops.body) then
        List.iter
          (fun i ->
            match i with
            | Instr.Mov { dst; src; _ } when dst = c.Loops.iv ->
              init := if !init = None then Some src else Some (Value.Reg (-1))
            | i when Instr.def i = Some c.Loops.iv -> init := Some (Value.Reg (-1))
            | _ -> ())
          b.Block.instrs)
    cfg.Cfg.blocks;
  match !init with
  | Some (Value.Reg r) when r < 0 -> None
  | Some src when Defs.is_stable defs src -> Some src
  | _ -> None

(* registers defined inside the loop and used outside it *)
let defs_used_outside (cfg : Cfg.t) (loop : Loops.t) =
  let inside = Hashtbl.create 16 in
  Intset.iter
    (fun bi ->
      List.iter
        (fun i -> Option.iter (fun d -> Hashtbl.replace inside d ()) (Instr.def i))
        (Cfg.block cfg bi).Block.instrs)
    loop.Loops.body;
  let escaping = Hashtbl.create 8 in
  Array.iteri
    (fun bi (b : Block.t) ->
      if not (Intset.mem bi loop.Loops.body) then begin
        List.iter
          (fun i ->
            List.iter
              (fun u -> if Hashtbl.mem inside u then Hashtbl.replace escaping u ())
              (Instr.uses i))
          b.Block.instrs;
        List.iter
          (fun u -> if Hashtbl.mem inside u then Hashtbl.replace escaping u ())
          (Instr.term_uses b.Block.term)
      end)
    cfg.Cfg.blocks;
  escaping

(* ------------------------------------------------------------------ *)
(* licm                                                                *)
(* ------------------------------------------------------------------ *)

let run_licm (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      (* process loops by header label, innermost first; the CFG is
         recomputed after each structural change *)
      let initial = Loops.find (Cfg.of_func f) in
      let order =
        List.map
          (fun l -> ((Cfg.block (Cfg.of_func f) l.Loops.header).Block.label, l.Loops.depth))
          initial
        |> List.sort (fun (_, d1) (_, d2) -> compare d2 d1)
      in
      List.iter
        (fun (header_label, _) ->
          let cfg = Cfg.of_func f in
          match
            List.find_opt
              (fun l ->
                String.equal (Cfg.label cfg l.Loops.header) header_label)
              (Loops.find cfg)
          with
          | None -> ()
          | Some loop ->
            let preheader_label = Util.ensure_preheader f cfg loop in
            let cfg = Cfg.of_func f in
            let loop =
              List.find
                (fun l -> String.equal (Cfg.label cfg l.Loops.header) header_label)
                (Loops.find cfg)
            in
            let preheader = Func.find_block_exn f preheader_label in
            let has_mem = Util.loop_has_memory_effects cfg loop in
            let hoisted = ref 0 in
            let progress = ref true in
            while !progress && !hoisted < config.Pass.licm_max_hoist do
              progress := false;
              let defs = Defs.compute f in
              (try
                 Intset.iter
                   (fun bi ->
                     let b = Cfg.block cfg bi in
                     List.iter
                       (fun i ->
                         let invariant_operands () =
                           List.for_all
                             (fun v ->
                               Util.loop_invariant_value cfg defs loop
                                 (Value.Reg v))
                             (Instr.uses i)
                         in
                         let can_hoist =
                           match Instr.def i with
                           | Some d when Defs.is_single_def defs d ->
                             (hoistable i
                             || (match i with
                                | Instr.Load { addr; _ } ->
                                  (not has_mem)
                                  && Util.loop_invariant_value cfg defs loop addr
                                | _ -> false))
                             && invariant_operands ()
                           | _ -> false
                         in
                         if can_hoist then begin
                           b.Block.instrs <-
                             List.filter (fun j -> not (j == i)) b.Block.instrs;
                           preheader.Block.instrs <-
                             preheader.Block.instrs @ [ i ];
                           incr hoisted;
                           changed := true;
                           progress := true;
                           raise Exit
                         end)
                       b.Block.instrs)
                   loop.Loops.body
               with Exit -> ())
            done)
        order)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* unrolling                                                           *)
(* ------------------------------------------------------------------ *)

(* Clone the loop's blocks once; returns (header label of the clone,
   redirector for the back edge).  The clone's back edges to the original
   header are retargeted to [next]. *)
let clone_iteration (f : Func.t) (cfg : Cfg.t) (loop : Loops.t) ~suffix ~next
    ~force_body (c : Loops.counted) =
  let blocks = List.map (fun i -> Cfg.block cfg i) (Intset.elements loop.Loops.body) in
  let label_map, cloned, _ =
    Util.clone_blocks ~locals_only:true f blocks ~label_suffix:suffix
  in
  let header_label = Cfg.label cfg loop.Loops.header in
  let orig_in_map l = Hashtbl.find_opt label_map l in
  List.iter
    (fun (b : Block.t) ->
      b.Block.term <-
        Instr.map_term_labels
          (fun l ->
            match orig_in_map l with
            | Some l' -> l'
            | None -> if String.equal l header_label then next else l)
          b.Block.term)
    cloned;
  (* clone's own header: force it straight into the body when the trip is
     statically known to continue *)
  let cheader =
    List.find
      (fun (b : Block.t) ->
        String.equal b.Block.label (Hashtbl.find label_map header_label))
      cloned
  in
  (if force_body then
     match cheader.Block.term with
     | Instr.Cbr { if_true; if_false; _ } ->
       let body_side =
         if String.equal c.Loops.exit_label if_false then if_true else if_false
       in
       (* the exit label was not remapped; body side was *)
       ignore body_side;
       let body_label = Hashtbl.find label_map c.Loops.body_label in
       cheader.Block.term <- Instr.Br body_label
     | _ -> ());
  (* wait: the clone's back-edge-to-header went through orig_in_map
     (header is part of the loop body set), so it stays internal; the
     latch must instead jump to [next].  Fix that up here. *)
  let clatch_label = Hashtbl.find label_map (Cfg.label cfg c.Loops.latch) in
  let clatch = List.find (fun (b : Block.t) -> String.equal b.Block.label clatch_label) cloned in
  let cheader_label = Hashtbl.find label_map header_label in
  clatch.Block.term <-
    Instr.map_term_labels
      (fun l -> if String.equal l cheader_label then next else l)
      clatch.Block.term;
  Func.(f.blocks <- f.blocks @ cloned);
  Hashtbl.find label_map header_label

let run_unroll_once (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      let loops = Loops.find cfg in
      (* unroll innermost loops only (standard), one per pass invocation
         per function to keep the CFG fresh *)
      let innermost =
        List.filter
          (fun l ->
            not
              (List.exists
                 (fun l' ->
                   l' != l && Intset.mem l'.Loops.header l.Loops.body)
                 loops))
          loops
      in
      (try
         List.iter
           (fun loop ->
             match Loops.as_counted cfg defs loop with
             | None -> ()
             | Some c ->
               let body_size =
                 Intset.fold
                   (fun bi acc -> acc + Block.instr_count (Cfg.block cfg bi))
                   loop.Loops.body 0
               in
               let init = iv_init cfg defs c in
               let trip =
                 match init with
                 | Some (Value.Imm i) -> Loops.trip_count c ~init:(Some i)
                 | _ -> None
               in
               (match trip with
               | Some n
                 when n > 0 && n <= 64
                      && n * body_size <= config.Pass.unroll_threshold ->
                 (* full unroll: chain n forced copies, then fall into the
                    original header whose compare now fails *)
                 let header_label = Cfg.label cfg loop.Loops.header in
                 let preheader_label = Util.ensure_preheader f cfg loop in
                 let cfg = Cfg.of_func f in
                 let next = ref header_label in
                 for k = n downto 1 do
                   next :=
                     clone_iteration f cfg loop
                       ~suffix:(Printf.sprintf ".u%d" k)
                       ~next:!next ~force_body:true c
                 done;
                 let preheader = Func.find_block_exn f preheader_label in
                 preheader.Block.term <- Instr.Br !next;
                 changed := true;
                 raise Exit
               | _ ->
                 (* partial unroll: factor F copies per main-loop round with
                    a remainder loop (the original), guarded against
                    wraparound by requiring a small immediate bound *)
                 let factor = min config.Pass.unroll_max_factor 4 in
                 let small_bound =
                   match (c.Loops.bound, c.Loops.cmp_op) with
                   | Value.Imm b, Instr.Slt ->
                     Int64.compare b (-1_000_000_000L) > 0
                     && Int64.compare b 1_000_000_000L < 0
                   | Value.Imm b, Instr.Ult ->
                     (* unsigned: bound must stay >= 0 after the F-1 bias *)
                     Int64.compare b (Int64.of_int config.Pass.unroll_max_factor)
                       >= 0
                     && Int64.compare b 1_000_000_000L < 0
                   | _ -> false
                 in
                 if
                   (not config.Pass.unroll_only_if_smaller)
                   && factor >= 2 && small_bound && c.Loops.step = 1L
                   && (c.Loops.cmp_op = Instr.Slt || c.Loops.cmp_op = Instr.Ult)
                   && body_size * factor <= config.Pass.unroll_threshold
                   && body_size >= 2
                 then begin
                   let bound_i =
                     match c.Loops.bound with Value.Imm b -> b | _ -> assert false
                   in
                   let header_label = Cfg.label cfg loop.Loops.header in
                   let preheader_label = Util.ensure_preheader f cfg loop in
                   let cfg = Cfg.of_func f in
                   (* main loop: new header checks iv < bound-(F-1) *)
                   let mh_label = Func.fresh_label f "unroll.header" in
                   let next = ref mh_label in
                   for k = factor downto 1 do
                     next :=
                       clone_iteration f cfg loop
                         ~suffix:(Printf.sprintf ".p%d" k)
                         ~next:!next ~force_body:(k > 1) c
                   done;
                   (* the first copy keeps its compare but must exit to the
                      remainder loop (original header), which it already
                      does; the new main header tests the F-step guard *)
                   let cond = Func.fresh_reg f in
                   let mh =
                     Block.create
                       ~instrs:
                         [ Instr.Cmp
                             { dst = cond; ty = c.Loops.iv_ty; op = c.Loops.cmp_op;
                               a = Value.Reg c.Loops.iv;
                               b =
                                 Value.Imm
                                   (Eval.norm c.Loops.iv_ty
                                      (Int64.sub bound_i (Int64.of_int (factor - 1)))) } ]
                       ~term:
                         (Instr.Cbr
                            { cond = Value.Reg cond; if_true = !next;
                              if_false = header_label })
                       mh_label
                   in
                   Func.add_block f mh;
                   (* main-loop copies chain 1 -> 2 -> ... -> F -> mh; make
                      the last copy jump back to mh instead of the original
                      header: clone_iteration already pointed copy F at mh *)
                   let preheader = Func.find_block_exn f preheader_label in
                   preheader.Block.term <- Instr.Br mh_label;
                   changed := true;
                   raise Exit
                 end))
           innermost
       with Exit -> ()))
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* loop deletion                                                       *)
(* ------------------------------------------------------------------ *)

let run_loop_deletion (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let progress = ref true in
      while !progress do
        progress := false;
        let cfg = Cfg.of_func f in
        let defs = Defs.compute f in
        let loops = Loops.find cfg in
        (try
           List.iter
             (fun loop ->
               match Loops.as_counted cfg defs loop with
               | Some c
                 when (not (Util.loop_has_memory_effects cfg loop))
                      && Intset.cardinal (Loops.exit_targets cfg loop) = 1
                      && Hashtbl.length (defs_used_outside cfg loop) = 0
                      && c.Loops.step > 0L
                      && (c.Loops.cmp_op = Instr.Slt || c.Loops.cmp_op = Instr.Ult)
                 ->
                 (* side-effect-free counted loop with no escaping values:
                    the whole thing is dead *)
                 let header_label = Cfg.label cfg loop.Loops.header in
                 Util.redirect_edges f ~from:header_label ~to_:c.Loops.exit_label;
                 Intset.iter
                   (fun bi -> Func.remove_block f (Cfg.label cfg bi))
                   loop.Loops.body;
                 ignore (Util.remove_unreachable_blocks f);
                 changed := true;
                 progress := true;
                 raise Exit
               | _ -> ())
             loops
         with Exit -> ())
      done)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* loop rotation                                                       *)
(* ------------------------------------------------------------------ *)

let run_loop_rotate (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      let loops = Loops.find cfg in
      (try
         List.iter
           (fun loop ->
             match Loops.as_counted cfg defs loop with
             | Some c when loop.Loops.header <> c.Loops.latch -> begin
               let header = Cfg.block cfg loop.Loops.header in
               if List.for_all Instr.is_pure header.Block.instrs
                  && List.length header.Block.instrs <= 4
               then begin
                 (* duplicate the header's compare into the preheader and
                    the latch; the loop becomes bottom-tested *)
                 let preheader_label = Util.ensure_preheader f cfg loop in
                 let preheader = Func.find_block_exn f preheader_label in
                 let latch = Cfg.block cfg c.Loops.latch in
                 let clone_into (b : Block.t) =
                   let _, cloned, reg_map =
                     Util.clone_blocks f
                       [ Block.create ~instrs:header.Block.instrs
                           ~term:header.Block.term "tmp" ]
                       ~label_suffix:".rot"
                   in
                   let cb = List.hd cloned in
                   Func.remove_block f cb.Block.label;
                   b.Block.instrs <- b.Block.instrs @ cb.Block.instrs;
                   b.Block.term <- cb.Block.term;
                   ignore reg_map
                 in
                 clone_into preheader;
                 clone_into latch;
                 (* the original header becomes a plain body entry *)
                 header.Block.instrs <- [];
                 header.Block.term <- Instr.Br c.Loops.body_label;
                 changed := true;
                 raise Exit
               end
             end
             | _ -> ())
           loops
       with Exit -> ()))
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* loop-simplify / lcssa                                               *)
(* ------------------------------------------------------------------ *)

let run_loop_simplify (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      List.iter
        (fun loop ->
          match Loops.preheader cfg loop with
          | Some _ -> ()
          | None ->
            ignore (Util.ensure_preheader f cfg loop);
            changed := true)
        (Loops.find cfg))
    m.Modul.funcs;
  !changed

(* LCSSA-style exit copies: values defined in a loop and used outside are
   rerouted through a copy in the exit block — the extra movs/recomputed
   addresses the paper blames for loop-pass overhead on zkVMs (§4.1). *)
let run_lcssa (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      let reg_tys = Func.reg_types f in
      List.iter
        (fun loop ->
          match Intset.elements (Loops.exit_targets cfg loop) with
          | [ exit_i ] ->
            let exit_block = Cfg.block cfg exit_i in
            let escaping = defs_used_outside cfg loop in
            Hashtbl.iter
              (fun r () ->
                if Defs.is_single_def defs r then begin
                  let t = Func.fresh_reg f in
                  let ty = Option.value ~default:Ty.I32 (Hashtbl.find_opt reg_tys r) in
                  exit_block.Block.instrs <-
                    Instr.Mov { dst = t; ty; src = Value.Reg r }
                    :: exit_block.Block.instrs;
                  (* outside uses (other than the copy) read the copy *)
                  Array.iteri
                    (fun bi (b : Block.t) ->
                      if not (Intset.mem bi loop.Loops.body) then begin
                        let subst v =
                          match v with
                          | Value.Reg x when x = r -> Value.Reg t
                          | v -> v
                        in
                        b.Block.instrs <-
                          List.map
                            (fun i ->
                              match Instr.def i with
                              | Some d when d = t -> i
                              | _ -> Instr.map_values subst i)
                            b.Block.instrs;
                        b.Block.term <- Instr.map_term_values subst b.Block.term
                      end)
                    cfg.Cfg.blocks;
                  changed := true
                end)
              escaping
          | _ -> ())
        (Loops.find cfg))
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* induction-variable strength reduction (indvars / loop-reduce)       *)
(* ------------------------------------------------------------------ *)

let run_indvars (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      List.iter
        (fun loop ->
          match Loops.as_counted cfg defs loop with
          | Some c when Ty.equal c.Loops.iv_ty Ty.I32 -> begin
            match iv_init cfg defs c with
            | Some init ->
              let preheader_label = Util.ensure_preheader f cfg loop in
              let budget = ref 4 in
              (* edits to the preheader and latch are deferred: the latch
                 is usually also the block being rewritten *)
              let pre_adds = ref [] in
              let latch_adds = ref [] in
              Intset.iter
                (fun bi ->
                  let b = Cfg.block cfg bi in
                  b.Block.instrs <-
                    List.map
                      (fun i ->
                        match i with
                        | Instr.Addr
                            { dst; base; index = Value.Reg idx; scale; offset }
                          when idx = c.Loops.iv && !budget > 0 && scale <> 0
                               && Util.loop_invariant_value cfg defs loop base ->
                          decr budget;
                          changed := true;
                          let ptr = Func.fresh_reg f in
                          let init_addr = Func.fresh_reg f in
                          pre_adds :=
                            !pre_adds
                            @ [ Instr.Addr
                                  { dst = init_addr; base; index = init; scale;
                                    offset };
                                Instr.Mov
                                  { dst = ptr; ty = Ty.Ptr;
                                    src = Value.Reg init_addr } ];
                          let stepped = Func.fresh_reg f in
                          latch_adds :=
                            !latch_adds
                            @ [ Instr.Addr
                                  { dst = stepped; base = Value.Reg ptr;
                                    index = Value.Imm c.Loops.step; scale;
                                    offset = 0 };
                                Instr.Mov
                                  { dst = ptr; ty = Ty.Ptr;
                                    src = Value.Reg stepped } ];
                          Instr.Mov { dst; ty = Ty.Ptr; src = Value.Reg ptr }
                        | i -> i)
                      b.Block.instrs)
                loop.Loops.body;
              if !pre_adds <> [] then begin
                let preheader = Func.find_block_exn f preheader_label in
                preheader.Block.instrs <- preheader.Block.instrs @ !pre_adds;
                let latch = Cfg.block cfg c.Loops.latch in
                latch.Block.instrs <- latch.Block.instrs @ !latch_adds
              end
            | None -> ()
          end
          | _ -> ())
        (Loops.find cfg))
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* loop-data-prefetch                                                  *)
(* ------------------------------------------------------------------ *)

let run_prefetch (config : Pass.config) (m : Modul.t) =
  if not config.Pass.prefetch then false
  else begin
    let changed = ref false in
    List.iter
      (fun (f : Func.t) ->
        let cfg = Cfg.of_func f in
        let defs = Defs.compute f in
        List.iter
          (fun loop ->
            match Loops.as_counted cfg defs loop with
            | Some c -> begin
              let budget = ref 2 in
              Intset.iter
                (fun bi ->
                  let b = Cfg.block cfg bi in
                  b.Block.instrs <-
                    List.concat_map
                      (fun i ->
                        match i with
                        | Instr.Load { ty; addr = Value.Reg a; _ }
                          when !budget > 0 -> begin
                          match Defs.def_of defs a with
                          | Some
                              (Instr.Addr
                                 { base; index = Value.Reg idx; scale; offset;
                                   _ })
                            when idx = c.Loops.iv
                                 && Util.loop_invariant_value cfg defs loop base
                            ->
                            decr budget;
                            changed := true;
                            (* touch the line ~16 elements ahead *)
                            let pa = Func.fresh_reg f in
                            let pv = Func.fresh_reg f in
                            [ i;
                              Instr.Addr
                                { dst = pa; base; index = Value.Reg idx; scale;
                                  offset = offset + (16 * max scale 4) };
                              Instr.Load { dst = pv; ty; addr = Value.Reg pa } ]
                          | _ -> [ i ]
                        end
                        | i -> [ i ])
                      b.Block.instrs)
                loop.Loops.body
            end
            | None -> ())
          (Loops.find cfg))
      m.Modul.funcs;
    !changed
  end

(* LLVM's loop passes require loops in simplified + LCSSA form; licm runs
   the normalizations first, which is where the paper's "extra movs and
   recomputed addresses" overhead enters (§4.1). *)
let run_licm_full config m =
  let a = run_loop_simplify config m in
  let b = run_lcssa config m in
  let c = run_licm config m in
  a || b || c

(* one unroll per function per round; iterate so a single pass invocation
   reaches every candidate loop *)
let run_unroll config m =
  let changed = ref false in
  let rounds = ref 0 in
  while run_unroll_once config m && !rounds < 16 do
    changed := true;
    incr rounds
  done;
  !changed

let () =
  Pass.register "licm" "hoist loop-invariant computation to preheaders"
    run_licm_full;
  Pass.register "loop-unroll" "full and partial unrolling of counted loops"
    run_unroll;
  Pass.register "loop-deletion" "delete side-effect-free dead loops"
    run_loop_deletion;
  Pass.register "loop-rotate" "bottom-test loops by duplicating the header"
    run_loop_rotate;
  Pass.register "loop-simplify" "canonicalize loops with dedicated preheaders"
    run_loop_simplify;
  Pass.register "lcssa" "reroute loop-escaping values through exit copies"
    run_lcssa;
  Pass.register "indvars" "strength-reduce array addressing on induction variables"
    run_indvars;
  Pass.register "loop-reduce" "loop strength reduction (alias analysis entry)"
    run_indvars;
  Pass.register "loop-data-prefetch" "insert software prefetch loads in loops"
    run_prefetch
