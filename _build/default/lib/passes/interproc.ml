(** Interprocedural and remaining scalar passes: sparse conditional
    constant propagation (sccp/ipsccp), global DCE, constant-global
    folding, dead-argument elimination, function merging, tail-call
    elimination, purity-based call CSE (function-attrs/attributor),
    div+rem pairing, constant hoisting, correlated propagation, sinking
    and speculative hoisting. *)

open Zkopt_ir
open Zkopt_analysis

(* ------------------------------------------------------------------ *)
(* sccp                                                                *)
(* ------------------------------------------------------------------ *)

(* constants of single-def regs, to a fixpoint, with branch folding *)
let run_sccp (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let progress = ref true in
      let rounds = ref 0 in
      while !progress && !rounds < 8 do
        progress := false;
        incr rounds;
        let defs = Defs.compute f in
        (* known constants: single-def regs whose def is Mov of Imm *)
        let consts = Hashtbl.create 16 in
        Func.iter_instrs f (fun _ i ->
            match i with
            | Instr.Mov { dst; src = Value.Imm c; _ }
              when Defs.is_single_def defs dst ->
              Hashtbl.replace consts dst c
            | _ -> ());
        let subst v =
          match v with
          | Value.Reg r -> begin
            match Hashtbl.find_opt consts r with
            | Some c -> Value.Imm c
            | None -> v
          end
          | v -> v
        in
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  let i' = Instr.map_values subst i in
                  let i' =
                    match Constfold.fold_instr i' with Some x -> x | None -> i'
                  in
                  if i' <> i then progress := true;
                  i')
                b.Block.instrs;
            let t' = Instr.map_term_values subst b.Block.term in
            let t' =
              match t' with
              | Instr.Cbr { cond = Value.Imm c; if_true; if_false } ->
                Instr.Br (if Eval.to_bool c then if_true else if_false)
              | t -> t
            in
            if t' <> b.Block.term then progress := true;
            b.Block.term <- t');
        if Util.remove_unreachable_blocks f then progress := true;
        if !progress then changed := true
      done)
    m.Modul.funcs;
  !changed

(* ipsccp: parameters that receive the same immediate at every call site
   become that constant inside the callee *)
let run_ipsccp (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  let arg_facts : (string * int, [ `Const of int64 | `Varies ]) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Call { callee; args; _ } ->
            List.iteri
              (fun k arg ->
                let key = (callee, k) in
                let fact =
                  match (arg, Hashtbl.find_opt arg_facts key) with
                  | Value.Imm c, None -> `Const c
                  | Value.Imm c, Some (`Const c') when Int64.equal c c' -> `Const c
                  | _ -> `Varies
                in
                Hashtbl.replace arg_facts key fact)
              args
          | _ -> ()))
    m.Modul.funcs;
  List.iter
    (fun (f : Func.t) ->
      if f.Func.attrs.Func.internal && not (String.equal f.Func.name "main")
      then begin
        let defs = Defs.compute f in
        List.iteri
          (fun k (p, _ty) ->
            match Hashtbl.find_opt arg_facts (f.Func.name, k) with
            | Some (`Const c)
              when Hashtbl.find_opt defs.Defs.counts p = Some 1 ->
              Util.replace_uses f ~from:p ~to_:(Value.Imm c);
              changed := true
            | _ -> ())
          f.Func.params
      end)
    m.Modul.funcs;
  if !changed then ignore (run_sccp config m);
  !changed

(* ------------------------------------------------------------------ *)
(* module-level cleanups                                               *)
(* ------------------------------------------------------------------ *)

(* functions the backend calls implicitly when lowering 64-bit division
   and variable shifts; they must survive DCE whenever such IR exists *)
let implicit_runtime_roots (m : Modul.t) =
  let roots = ref [] in
  let add n = if not (List.mem n !roots) then roots := n :: !roots in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Bin { ty = Ty.I64; op; b; _ } -> begin
            match (op, b) with
            | Instr.Div, _ -> add "__divdi3"; add "__udivdi3"
            | Instr.Rem, _ -> add "__moddi3"; add "__umoddi3"
            | Instr.Udiv, _ -> add "__udivdi3"
            | Instr.Urem, _ -> add "__umoddi3"
            | Instr.Shl, Value.Reg _ -> add "__ashldi3"
            | Instr.Lshr, Value.Reg _ -> add "__lshrdi3"
            | Instr.Ashr, Value.Reg _ -> add "__ashrdi3"
            | _ -> ()
          end
          | _ -> ()))
    m.Modul.funcs;
  !roots

let run_globaldce (_config : Pass.config) (m : Modul.t) =
  let cg = Callgraph.compute m in
  match
    Callgraph.unreachable_funcs
      ~roots:("main" :: implicit_runtime_roots m)
      m cg
  with
  | [] -> false
  | dead ->
    m.Modul.funcs <-
      List.filter (fun (f : Func.t) -> not (List.mem f.Func.name dead)) m.Modul.funcs;
    true

(* fold loads of never-written globals with initialized data *)
let run_globalopt (_config : Pass.config) (m : Modul.t) =
  (* taint analysis over store addresses *)
  let tainted = Hashtbl.create 8 in
  let taint_all = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let rec base_global v depth =
        if depth > 8 then None
        else
          match v with
          | Value.Glob g -> Some (`Glob g)
          | Value.Reg r -> begin
            match Defs.def_of defs r with
            | Some (Instr.Addr { base; _ }) -> base_global base (depth + 1)
            | Some (Instr.Alloca _) -> Some `Stack
            | Some (Instr.Mov { src; _ }) -> base_global src (depth + 1)
            | _ -> None
          end
          | Value.Imm _ -> None
      in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Store { addr; _ } -> begin
            match base_global addr 0 with
            | Some (`Glob g) -> Hashtbl.replace tainted g ()
            | Some `Stack -> ()
            | None -> taint_all := true
          end
          | Precompile { args; _ } ->
            (* precompiles write through pointer arguments *)
            List.iter
              (fun a ->
                match base_global a 0 with
                | Some (`Glob g) -> Hashtbl.replace tainted g ()
                | Some `Stack -> ()
                | None -> taint_all := true)
              args
          | _ -> ()))
    m.Modul.funcs;
  if !taint_all then false
  else begin
    let const_word g idx =
      match Modul.find_global m g with
      | Some { Modul.init = Modul.Words ws; _ }
        when idx >= 0 && idx < Array.length ws ->
        Some ws.(idx)
      | Some { Modul.init = Modul.Zero n; _ } when idx >= 0 && 4 * idx < n ->
        Some 0l
      | _ -> None
    in
    let changed = ref false in
    List.iter
      (fun (f : Func.t) ->
        let defs = Defs.compute f in
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  match i with
                  | Instr.Load { dst; ty = Ty.I32; addr = Value.Reg a } -> begin
                    match Defs.def_of defs a with
                    | Some
                        (Instr.Addr
                           { base = Value.Glob g; index = Value.Imm idx; scale;
                             offset; _ })
                      when not (Hashtbl.mem tainted g) -> begin
                      let byte = (Int64.to_int idx * scale) + offset in
                      if byte mod 4 = 0 then
                        match const_word g (byte / 4) with
                        | Some w ->
                          changed := true;
                          Instr.Mov
                            { dst; ty = Ty.I32;
                              src = Value.Imm (Eval.norm32 (Int64.of_int32 w)) }
                        | None -> i
                      else i
                    end
                    | _ -> i
                  end
                  | i -> i)
                b.Block.instrs))
      m.Modul.funcs;
    !changed
  end

let run_deadargelim (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      if f.Func.attrs.Func.internal && not (String.equal f.Func.name "main")
      then begin
        let uses = Defs.use_counts f in
        let defs = Defs.compute f in
        let dead_idx =
          List.mapi
            (fun k (p, _) ->
              if
                (not (Hashtbl.mem uses p))
                && Hashtbl.find_opt defs.Defs.counts p = Some 1
              then Some k
              else None)
            f.Func.params
          |> List.filter_map Fun.id
        in
        if dead_idx <> [] then begin
          changed := true;
          let keep k = not (List.mem k dead_idx) in
          let params' = List.filteri (fun k _ -> keep k) f.Func.params in
          (* rewriting params in place requires a fresh function record;
             mutate via Obj-free reconstruction: swap in the module *)
          let nf =
            {
              f with
              Func.params = params';
            }
          in
          m.Modul.funcs <-
            List.map (fun (g : Func.t) -> if g == f then nf else g) m.Modul.funcs;
          (* fix every call site *)
          List.iter
            (fun (g : Func.t) ->
              Func.iter_blocks g (fun b ->
                  b.Block.instrs <-
                    List.map
                      (fun i ->
                        match i with
                        | Instr.Call r when String.equal r.callee f.Func.name ->
                          Instr.Call
                            { r with args = List.filteri (fun k _ -> keep k) r.args }
                        | i -> i)
                      b.Block.instrs))
            m.Modul.funcs
        end
      end)
    m.Modul.funcs;
  !changed

(* structural function merging: identical bodies after canonical
   renaming collapse to one *)
let canonical_print (f : Func.t) =
  (* rename registers and labels in order of first appearance *)
  let reg_map = Hashtbl.create 32 in
  let next = ref 0 in
  let canon_reg r =
    match Hashtbl.find_opt reg_map r with
    | Some x -> x
    | None ->
      let x = !next in
      incr next;
      Hashtbl.replace reg_map r x;
      x
  in
  let label_map = Hashtbl.create 8 in
  let lnext = ref 0 in
  let canon_label l =
    match Hashtbl.find_opt label_map l with
    | Some x -> x
    | None ->
      let x = Printf.sprintf "L%d" !lnext in
      incr lnext;
      Hashtbl.replace label_map l x;
      x
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (String.concat ","
       (List.map (fun (p, ty) -> Printf.sprintf "%d:%s" (canon_reg p) (Ty.to_string ty)) f.Func.params));
  Buffer.add_string buf
    (match f.Func.ret with None -> ":void" | Some t -> ":" ^ Ty.to_string t);
  List.iter
    (fun (b : Block.t) ->
      Buffer.add_string buf ("\n" ^ canon_label b.Block.label ^ ":");
      List.iter
        (fun i ->
          let i =
            Instr.map_def canon_reg
              (Instr.map_values
                 (fun v ->
                   match v with
                   | Value.Reg r -> Value.Reg (canon_reg r)
                   | v -> v)
                 i)
          in
          Buffer.add_string buf ("\n  " ^ Printer.instr i))
        b.Block.instrs;
      Buffer.add_string buf
        ("\n  "
        ^ Printer.term
            (Instr.map_term_labels canon_label
               (Instr.map_term_values
                  (fun v ->
                    match v with
                    | Value.Reg r -> Value.Reg (canon_reg r)
                    | v -> v)
                  b.Block.term))))
    f.Func.blocks;
  Buffer.contents buf

let run_mergefunc (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  let seen = Hashtbl.create 8 in
  let replaced = Hashtbl.create 4 in
  List.iter
    (fun (f : Func.t) ->
      if (not (String.equal f.Func.name "main")) && f.Func.attrs.Func.internal
      then begin
        let key = canonical_print f in
        match Hashtbl.find_opt seen key with
        | Some canonical -> Hashtbl.replace replaced f.Func.name canonical
        | None -> Hashtbl.replace seen key f.Func.name
      end)
    m.Modul.funcs;
  if Hashtbl.length replaced > 0 then begin
    changed := true;
    List.iter
      (fun (f : Func.t) ->
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  match i with
                  | Instr.Call r -> begin
                    match Hashtbl.find_opt replaced r.callee with
                    | Some target -> Instr.Call { r with callee = target }
                    | None -> i
                  end
                  | i -> i)
                b.Block.instrs))
      m.Modul.funcs;
    m.Modul.funcs <-
      List.filter
        (fun (f : Func.t) -> not (Hashtbl.mem replaced f.Func.name))
        m.Modul.funcs
  end;
  !changed

(* self tail calls become loops *)
let run_tailcallelim (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let entry_label = (Func.entry f).Block.label in
      let rewrite (b : Block.t) =
        match (List.rev b.Block.instrs, b.Block.term) with
        | Instr.Call { dst; callee; args } :: rest, Instr.Ret ret
          when String.equal callee f.Func.name
               && (match (dst, ret) with
                  | Some d, Some (Value.Reg r) -> d = r
                  | None, None -> true
                  | _ -> false) ->
          (* args -> temps -> params, then loop *)
          let temps =
            List.map2
              (fun (_, ty) arg ->
                let t = Func.fresh_reg f in
                (t, ty, arg))
              f.Func.params args
          in
          let movs_in =
            List.map (fun (t, ty, arg) -> Instr.Mov { dst = t; ty; src = arg }) temps
          in
          let movs_back =
            List.map2
              (fun (p, ty) (t, _, _) ->
                Instr.Mov { dst = p; ty; src = Value.Reg t })
              f.Func.params temps
          in
          b.Block.instrs <- List.rev rest @ movs_in @ movs_back;
          b.Block.term <- Instr.Br entry_label;
          changed := true
        | _ -> ()
      in
      List.iter rewrite f.Func.blocks)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* purity-based call CSE (function-attrs / attributor)                 *)
(* ------------------------------------------------------------------ *)

let pure_functions (m : Modul.t) =
  (* a function is pure if it (transitively) performs no stores,
     precompiles, or calls to impure functions *)
  let impure = Hashtbl.create 8 in
  let mark_progress = ref true in
  let is_locally_impure (f : Func.t) =
    let found = ref false in
    Func.iter_instrs f (fun _ i ->
        match i with
        | Instr.Store _ | Precompile _ | Load _ ->
          (* loads make a function non-CSE-able across stores; treat as
             impure for call-CSE purposes *)
          found := true
        | Call { callee; _ } when Hashtbl.mem impure callee -> found := true
        | _ -> ());
    !found
  in
  List.iter
    (fun (f : Func.t) -> if is_locally_impure f then Hashtbl.replace impure f.Func.name ())
    m.Modul.funcs;
  while !mark_progress do
    mark_progress := false;
    List.iter
      (fun (f : Func.t) ->
        if (not (Hashtbl.mem impure f.Func.name)) && is_locally_impure f then begin
          Hashtbl.replace impure f.Func.name ();
          mark_progress := true
        end)
      m.Modul.funcs
  done;
  fun name -> not (Hashtbl.mem impure name)

let run_function_attrs (_config : Pass.config) (m : Modul.t) =
  (* block-local CSE of pure calls with stable identical arguments *)
  let is_pure = pure_functions m in
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      Func.iter_blocks f (fun b ->
          let seen : (string * Value.t list, Value.reg) Hashtbl.t =
            Hashtbl.create 4
          in
          b.Block.instrs <-
            List.map
              (fun i ->
                match i with
                | Instr.Call { dst = Some d; callee; args }
                  when is_pure callee
                       && List.for_all (Defs.is_stable defs) args -> begin
                  match Hashtbl.find_opt seen (callee, args) with
                  | Some prev when Defs.is_single_def defs prev ->
                    changed := true;
                    let ty =
                      match Modul.find_func m callee with
                      | Some cf -> Option.value ~default:Ty.I32 cf.Func.ret
                      | None -> Ty.I32
                    in
                    Instr.Mov { dst = d; ty; src = Value.Reg prev }
                  | _ ->
                    if Defs.is_single_def defs d then
                      Hashtbl.replace seen (callee, args) d;
                    i
                end
                | i -> i)
              b.Block.instrs))
    m.Modul.funcs;
  !changed

(* attributor: same, dominator-scoped *)
let run_attributor (_config : Pass.config) (m : Modul.t) =
  let is_pure = pure_functions m in
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg in
      let kids = Dom.children dom in
      let table : (string * Value.t list, Value.reg) Hashtbl.t = Hashtbl.create 8 in
      let rec walk bi =
        let b = Cfg.block cfg bi in
        let added = ref [] in
        b.Block.instrs <-
          List.map
            (fun i ->
              match i with
              | Instr.Call { dst = Some d; callee; args }
                when is_pure callee && List.for_all (Defs.is_stable defs) args
                -> begin
                match Hashtbl.find_opt table (callee, args) with
                | Some prev when Defs.is_single_def defs prev ->
                  changed := true;
                  let ty =
                    match Modul.find_func m callee with
                    | Some cf -> Option.value ~default:Ty.I32 cf.Func.ret
                    | None -> Ty.I32
                  in
                  Instr.Mov { dst = d; ty; src = Value.Reg prev }
                | _ ->
                  if
                    Defs.is_single_def defs d
                    && not (Hashtbl.mem table (callee, args))
                  then begin
                    Hashtbl.replace table (callee, args) d;
                    added := (callee, args) :: !added
                  end;
                  i
              end
              | i -> i)
            b.Block.instrs;
        List.iter walk kids.(bi);
        List.iter (Hashtbl.remove table) !added
      in
      if Cfg.size cfg > 0 then walk 0)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* small scalar cleanups                                               *)
(* ------------------------------------------------------------------ *)

(* div-rem-pairs: a rem whose matching div exists becomes mul+sub (3
   cheap ops beat a second division on CPUs; the zkVM config disables
   this since both cost the same there) *)
let run_div_rem_pairs (config : Pass.config) (m : Modul.t) =
  if not config.Pass.div_to_shift then false
  else begin
    let changed = ref false in
    List.iter
      (fun (f : Func.t) ->
        let defs = Defs.compute f in
        (* single-def division results by (ty, op, a, b) *)
        let divs = Hashtbl.create 8 in
        Func.iter_instrs f (fun _ i ->
            match i with
            | Instr.Bin { dst; ty; op = (Instr.Div | Udiv) as op; a; b }
              when Defs.is_single_def defs dst && Defs.is_stable defs a
                   && Defs.is_stable defs b ->
              Hashtbl.replace divs (ty, op, a, b) dst
            | _ -> ());
        let cfg = Cfg.of_func f in
        let dom = Dom.compute cfg in
        let block_of_def = Hashtbl.create 16 in
        Array.iteri
          (fun bi (b : Block.t) ->
            List.iter
              (fun i ->
                Option.iter (fun d -> Hashtbl.replace block_of_def d bi) (Instr.def i))
              b.Block.instrs)
          cfg.Cfg.blocks;
        Array.iteri
          (fun bi (b : Block.t) ->
            b.Block.instrs <-
              List.concat_map
                (fun i ->
                  match i with
                  | Instr.Bin { dst; ty; op = (Instr.Rem | Urem) as op; a; b = bb }
                    when Defs.is_stable defs a && Defs.is_stable defs bb -> begin
                    let div_op =
                      if op = Instr.Rem then Instr.Div else Instr.Udiv
                    in
                    match Hashtbl.find_opt divs (ty, div_op, a, bb) with
                    | Some q
                      when (match Hashtbl.find_opt block_of_def q with
                           | Some qb -> Dom.dominates dom qb bi
                           | None -> false)
                           && q <> dst ->
                      changed := true;
                      let t = Func.fresh_reg f in
                      [ Instr.Bin
                          { dst = t; ty; op = Instr.Mul; a = Value.Reg q; b = bb };
                        Instr.Bin { dst; ty; op = Instr.Sub; a; b = Value.Reg t } ]
                    | _ -> [ i ]
                  end
                  | i -> [ i ])
                b.Block.instrs)
          cfg.Cfg.blocks)
      m.Modul.funcs;
    !changed
  end

(* consthoist: large immediates used several times in a function get a
   single materialization in the entry block *)
let run_consthoist (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let counts = Hashtbl.create 16 in
      Func.iter_instrs f (fun _ i ->
          List.iter
            (fun v ->
              match v with
              | Value.Imm c
                when Int64.compare (Int64.abs c) 2048L >= 0
                     && Int64.compare (Int64.abs c) 0xFFFF_FFFFL <= 0 ->
                Hashtbl.replace counts c
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
              | _ -> ())
            (match i with
            | Instr.Bin { a; b; _ } | Cmp { a; b; _ } -> [ a; b ]
            | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]
            | Mov _ -> [] (* movs are materializations already *)
            | Store { src; _ } -> [ src ]
            | _ -> []));
      let hoisted = Hashtbl.create 4 in
      Hashtbl.iter
        (fun c n ->
          if n >= 3 && Hashtbl.length hoisted < 4 then begin
            let r = Func.fresh_reg f in
            Hashtbl.replace hoisted c r
          end)
        counts;
      if Hashtbl.length hoisted > 0 then begin
        changed := true;
        let entry = Func.entry f in
        let movs =
          Hashtbl.fold
            (fun c r acc ->
              Instr.Mov { dst = r; ty = Ty.I32; src = Value.Imm c } :: acc)
            hoisted []
        in
        entry.Block.instrs <- movs @ entry.Block.instrs;
        let subst v =
          match v with
          | Value.Imm c -> begin
            match Hashtbl.find_opt hoisted c with
            | Some r -> Value.Reg r
            | None -> v
          end
          | v -> v
        in
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  match i with
                  | Instr.Bin ({ ty = Ty.I32; _ } as r) ->
                    Instr.Bin { r with a = subst r.a; b = subst r.b }
                  | Cmp ({ ty = Ty.I32; _ } as r) ->
                    Cmp { r with a = subst r.a; b = subst r.b }
                  | i -> i)
                b.Block.instrs)
      end)
    m.Modul.funcs;
  !changed

(* correlated-propagation: inside the true edge of [cbr (x == c)], x is c *)
let run_correlated (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let cfg = Cfg.of_func f in
      Array.iteri
        (fun _bi (b : Block.t) ->
          match b.Block.term with
          | Instr.Cbr { cond = Value.Reg c; if_true; if_false } -> begin
            match Defs.def_of defs c with
            | Some (Instr.Cmp { op = Instr.Eq; a = Value.Reg x; b = Value.Imm k;
                                ty = Ty.I32; _ })
              when Defs.is_stable defs (Value.Reg x)
                   && not (String.equal if_true if_false) -> begin
              match Cfg.index_of cfg if_true with
              | Some ti when cfg.Cfg.pred.(ti) = [ Cfg.index_of_exn cfg b.Block.label ]
                -> begin
                let tb = Cfg.block cfg ti in
                let subst v =
                  match v with
                  | Value.Reg r when r = x -> Value.Imm k
                  | v -> v
                in
                let before = tb.Block.instrs in
                tb.Block.instrs <- List.map (Instr.map_values subst) tb.Block.instrs;
                if tb.Block.instrs <> before then changed := true
              end
              | _ -> ()
            end
            | _ -> ()
          end
          | _ -> ())
        cfg.Cfg.blocks)
    m.Modul.funcs;
  !changed

(* sink: move single-use pure computations into the block of their use *)
let run_sink (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg in
      (* block containing every use of each reg (None if several) *)
      let use_block : (Value.reg, int option) Hashtbl.t = Hashtbl.create 32 in
      Array.iteri
        (fun bi (b : Block.t) ->
          let note r =
            match Hashtbl.find_opt use_block r with
            | None -> Hashtbl.replace use_block r (Some bi)
            | Some (Some bj) when bj = bi -> ()
            | _ -> Hashtbl.replace use_block r None
          in
          List.iter (fun i -> List.iter note (Instr.uses i)) b.Block.instrs;
          List.iter note (Instr.term_uses b.Block.term))
        cfg.Cfg.blocks;
      Array.iteri
        (fun bi (b : Block.t) ->
          let sunk = ref [] in
          b.Block.instrs <-
            List.filter
              (fun i ->
                match Instr.def i with
                | Some d
                  when Instr.is_pure i && Defs.is_single_def defs d
                       && List.for_all
                            (fun u -> Defs.is_stable defs (Value.Reg u))
                            (Instr.uses i) -> begin
                  match Hashtbl.find_opt use_block d with
                  | Some (Some target)
                    when target <> bi && Dom.dominates dom bi target
                         (* do not sink into loops: the target must not be
                            executed more often than the def *)
                         && not
                              (List.exists
                                 (fun l -> Intset.mem target l.Loops.body
                                           && not (Intset.mem bi l.Loops.body))
                                 (Loops.find cfg)) ->
                    sunk := (target, i) :: !sunk;
                    changed := true;
                    false
                  | _ -> true
                end
                | _ -> true)
              b.Block.instrs;
          (* !sunk is in reverse block order; prepending in that order
             restores the original relative order at the target *)
          List.iter
            (fun (target, i) ->
              let tb = Cfg.block cfg target in
              tb.Block.instrs <- i :: tb.Block.instrs)
            !sunk)
        cfg.Cfg.blocks)
    m.Modul.funcs;
  !changed

(* speculative-execution: hoist leading pure instructions of a branch
   target above the branch (reduces mispredict shadows on OoO hardware;
   pure overhead on zkVMs -> disabled by the zkVM config) *)
let run_speculative (config : Pass.config) (m : Modul.t) =
  if not config.Pass.speculate then false
  else begin
    let changed = ref false in
    List.iter
      (fun (f : Func.t) ->
        let defs = Defs.compute f in
        let cfg = Cfg.of_func f in
        Array.iteri
          (fun bi (b : Block.t) ->
            match b.Block.term with
            | Instr.Cbr { if_true; if_false; _ } ->
              let try_hoist label =
                match Cfg.index_of cfg label with
                | Some ti when cfg.Cfg.pred.(ti) = [ bi ] && ti <> bi ->
                  let tb = Cfg.block cfg ti in
                  let rec take n = function
                    | i :: rest
                      when n > 0 && Instr.is_pure i
                           && (match Instr.def i with
                              | Some d -> Defs.is_single_def defs d
                              | None -> false)
                           && List.for_all
                                (fun u -> Defs.is_stable defs (Value.Reg u))
                                (Instr.uses i) ->
                      let hoisted, rest' = take (n - 1) rest in
                      (i :: hoisted, rest')
                    | rest -> ([], rest)
                  in
                  let hoisted, rest = take 2 tb.Block.instrs in
                  if hoisted <> [] then begin
                    (* operands must be defined outside the target *)
                    let ok =
                      List.for_all
                        (fun i ->
                          List.for_all
                            (fun u ->
                              not
                                (List.exists
                                   (fun j -> Instr.def j = Some u)
                                   tb.Block.instrs))
                            (Instr.uses i))
                        hoisted
                    in
                    if ok then begin
                      b.Block.instrs <- b.Block.instrs @ hoisted;
                      tb.Block.instrs <- rest;
                      changed := true
                    end
                  end
                | _ -> ()
              in
              try_hoist if_true;
              if not (String.equal if_true if_false) then try_hoist if_false
            | _ -> ())
          cfg.Cfg.blocks)
      m.Modul.funcs;
    !changed
  end

let () =
  Pass.register "sccp" "sparse conditional constant propagation" run_sccp;
  Pass.register "ipsccp" "interprocedural constant argument propagation"
    run_ipsccp;
  Pass.register "globaldce" "remove functions unreachable from main"
    run_globaldce;
  Pass.register "globalopt" "fold loads of never-written initialized globals"
    run_globalopt;
  Pass.register "deadargelim" "drop unused parameters of internal functions"
    run_deadargelim;
  Pass.register "mergefunc" "merge structurally identical functions"
    run_mergefunc;
  Pass.register "tailcallelim" "turn self tail calls into loops" run_tailcallelim;
  Pass.register "function-attrs" "infer purity; CSE pure calls within blocks"
    run_function_attrs;
  Pass.register "attributor" "infer purity; CSE pure calls across dominators"
    run_attributor;
  Pass.register "div-rem-pairs" "compute rem from an existing matching div"
    run_div_rem_pairs;
  Pass.register "consthoist" "share materializations of large constants"
    run_consthoist;
  Pass.register "correlated-propagation"
    "propagate equality facts into branch targets" run_correlated;
  Pass.register "sink" "move computations next to their single use" run_sink;
  Pass.register "speculative-execution"
    "hoist pure code above conditional branches" run_speculative
