(** Control-flow passes: simplifycfg (merge, prune, if-convert),
    jump-threading, tail duplication, block placement, hot/cold layout
    splitting, and critical-edge splitting.

    If-conversion (branch -> select) is the paper's Fig. 12 subject: the
    zkVM-aware configuration disables it because both arms end up being
    evaluated inside the proof while the branch itself costs nothing. *)

open Zkopt_ir
open Zkopt_analysis

(* ------------------------------------------------------------------ *)
(* simplifycfg                                                         *)
(* ------------------------------------------------------------------ *)

(* merge B -> S when S is B's unique successor and B is S's unique
   predecessor *)
let merge_straightline (f : Func.t) =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let cfg = Cfg.of_func f in
    (try
       for i = 0 to Cfg.size cfg - 1 do
         match cfg.Cfg.succ.(i) with
         | [ s ] when s <> i && cfg.Cfg.pred.(s) = [ i ] && s <> 0 ->
           let b = Cfg.block cfg i and sb = Cfg.block cfg s in
           b.Block.instrs <- b.Block.instrs @ sb.Block.instrs;
           b.Block.term <- sb.Block.term;
           Func.remove_block f sb.Block.label;
           progress := true;
           changed := true;
           raise Exit
         | _ -> ()
       done
     with Exit -> ())
  done;
  !changed

(* remove blocks that only jump elsewhere *)
let remove_empty_blocks (f : Func.t) =
  let changed = ref false in
  let entry_label = (Func.entry f).Block.label in
  let rec loop () =
    let victim =
      List.find_opt
        (fun (b : Block.t) ->
          b.Block.instrs = []
          && (not (String.equal b.Block.label entry_label))
          &&
          match b.Block.term with
          | Instr.Br l -> not (String.equal l b.Block.label)
          | _ -> false)
        f.Func.blocks
    in
    match victim with
    | Some b ->
      let target = match b.Block.term with Instr.Br l -> l | _ -> assert false in
      Util.redirect_edges f ~from:b.Block.label ~to_:target;
      Func.remove_block f b.Block.label;
      changed := true;
      loop ()
    | None -> ()
  in
  loop ();
  !changed

(* if-conversion: diamond [A -> T|F -> J] or triangle [A -> T -> J, A -> J]
   with tiny, pure arms becomes straight-line selects *)
let if_convert (config : Pass.config) (f : Func.t) =
  if not config.Pass.simplifycfg_select then false
  else begin
    let changed = ref false in
    let progress = ref true in
    while !progress do
      progress := false;
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg in
      let arm_ok (b : Block.t) =
        List.length b.Block.instrs <= config.Pass.select_max_side_instrs
        && List.for_all Instr.is_pure b.Block.instrs
      in
      let single_pred i = match cfg.Cfg.pred.(i) with [ _ ] -> true | _ -> false in
      (* defs of the arm that are observable after it (not arm-local temps) *)
      let arm_exports (arm : Block.t) =
        let defs =
          List.filter_map Instr.def arm.Block.instrs |> List.sort_uniq compare
        in
        List.filter
          (fun r ->
            let outside = ref false in
            Func.iter_blocks f (fun blk ->
                if not (blk == arm) then begin
                  List.iter
                    (fun i -> if List.mem r (Instr.uses i) then outside := true)
                    blk.Block.instrs;
                  if List.mem r (Instr.term_uses blk.Block.term) then
                    outside := true
                end);
            !outside)
          defs
      in
      (* all defs of [r] outside blocks [t]/[fb] are in blocks dominating [a] *)
      let defined_before a skip r =
        let ok = ref false in
        Array.iteri
          (fun i (blk : Block.t) ->
            if not (List.mem i skip) then
              List.iter
                (fun ins ->
                  if Instr.def ins = Some r then
                    if i = a || Dom.dominates dom i a then ok := true)
                blk.Block.instrs)
          cfg.Cfg.blocks;
        !ok
      in
      let reg_tys = lazy (Func.reg_types f) in
      let try_convert a =
        let ab = Cfg.block cfg a in
        match ab.Block.term with
        | Instr.Cbr { cond; if_true; if_false }
          when not (String.equal if_true if_false) -> begin
          let ti = Cfg.index_of_exn cfg if_true in
          let fi = Cfg.index_of_exn cfg if_false in
          let tb = Cfg.block cfg ti and fb = Cfg.block cfg fi in
          let join_of (b : Block.t) =
            match b.Block.term with Instr.Br l -> Some l | _ -> None
          in
          let finish ~t_arm ~f_arm ~merged ~join =
            (* rename defs in each arm, hoist both, select merged regs *)
            let rename (arm : Instr.t list) =
              let map = Hashtbl.create 4 in
              let instrs =
                List.map
                  (fun i ->
                    let i =
                      Instr.map_values
                        (fun v ->
                          match v with
                          | Value.Reg r when Hashtbl.mem map r ->
                            Value.Reg (Hashtbl.find map r)
                          | v -> v)
                        i
                    in
                    Instr.map_def
                      (fun d ->
                        let d' = Func.fresh_reg f in
                        Hashtbl.replace map d d';
                        d')
                      i)
                  arm
              in
              (instrs, map)
            in
            let t_instrs, t_map = rename t_arm in
            let f_instrs, f_map = rename f_arm in
            let selects =
              List.map
                (fun r ->
                  let tv =
                    match Hashtbl.find_opt t_map r with
                    | Some r' -> Value.Reg r'
                    | None -> Value.Reg r
                  in
                  let fv =
                    match Hashtbl.find_opt f_map r with
                    | Some r' -> Value.Reg r'
                    | None -> Value.Reg r
                  in
                  let ty =
                    Option.value ~default:Ty.I32
                      (Hashtbl.find_opt (Lazy.force reg_tys) r)
                  in
                  Instr.Select { dst = r; ty; cond; if_true = tv; if_false = fv })
                merged
            in
            ab.Block.instrs <- ab.Block.instrs @ t_instrs @ f_instrs @ selects;
            ab.Block.term <- Instr.Br join;
            progress := true;
            changed := true
          in
          (* diamond *)
          match (join_of tb, join_of fb) with
          | Some jt, Some jf
            when String.equal jt jf && ti <> fi && single_pred ti && single_pred fi
                 && arm_ok tb && arm_ok fb
                 && (not (String.equal jt if_true))
                 && not (String.equal jt if_false) ->
            let dt = arm_exports tb and df = arm_exports fb in
            let merged = List.sort_uniq compare (dt @ df) in
            (* exported regs set by only one arm must be defined before A
               so the select's other input is well-defined *)
            let one_sided =
              List.filter (fun r -> not (List.mem r df)) dt
              @ List.filter (fun r -> not (List.mem r dt)) df
            in
            if
              List.for_all (fun r -> defined_before a [ ti; fi ] r) one_sided
            then begin
              finish ~t_arm:tb.Block.instrs ~f_arm:fb.Block.instrs ~merged
                ~join:jt;
              true
            end
            else false
          | _ -> begin
            (* triangle: A -> T -> J with A -> J *)
            let triangle arm_i arm_b other_label ~arm_is_true =
              match join_of arm_b with
              | Some j
                when String.equal j other_label && single_pred arm_i
                     && arm_ok arm_b
                     && not (String.equal j arm_b.Block.label) ->
                let merged = arm_exports arm_b in
                if List.for_all (fun r -> defined_before a [ arm_i ] r) merged
                then begin
                  if arm_is_true then
                    finish ~t_arm:arm_b.Block.instrs ~f_arm:[] ~merged ~join:j
                  else finish ~t_arm:[] ~f_arm:arm_b.Block.instrs ~merged ~join:j;
                  true
                end
                else false
              | _ -> false
            in
            triangle ti tb if_false ~arm_is_true:true
            || triangle fi fb if_true ~arm_is_true:false
          end
        end
        | _ -> false
      in
      (try
         for a = 0 to Cfg.size cfg - 1 do
           if try_convert a then raise Exit
         done
       with Exit -> ())
    done;
    !changed
  end

let run_simplifycfg (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      (* constant-branch folding first so pruning sees dead edges *)
      Func.iter_blocks f (fun b ->
          match b.Block.term with
          | Instr.Cbr { cond = Value.Imm c; if_true; if_false } ->
            b.Block.term <- Instr.Br (if Eval.to_bool c then if_true else if_false);
            changed := true
          | Cbr { if_true; if_false; _ } when String.equal if_true if_false ->
            b.Block.term <- Instr.Br if_true;
            changed := true
          | _ -> ());
      if Util.remove_unreachable_blocks f then changed := true;
      if remove_empty_blocks f then changed := true;
      if merge_straightline f then changed := true;
      if if_convert config f then changed := true;
      if Util.remove_unreachable_blocks f then changed := true)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* jump threading                                                      *)
(* ------------------------------------------------------------------ *)

(* end-of-block constant environment *)
let const_env (b : Block.t) =
  let env = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match (Instr.def i, i) with
      | Some d, Instr.Mov { src = Value.Imm c; _ } -> Hashtbl.replace env d (Some c)
      | Some d, _ -> Hashtbl.replace env d None
      | None, _ -> ())
    b.Block.instrs;
  env

let run_jump_threading (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let budget = ref 8 in
      let progress = ref true in
      while !progress && !budget > 0 do
        progress := false;
        decr budget;
        let cfg = Cfg.of_func f in
        (try
           for bi = 0 to Cfg.size cfg - 1 do
             let b = Cfg.block cfg bi in
             let small =
               List.length b.Block.instrs <= 4
               && List.for_all Instr.is_pure b.Block.instrs
             in
             match b.Block.term with
             | Instr.Cbr _ when small && List.length cfg.Cfg.pred.(bi) > 1 ->
               List.iter
                 (fun pi ->
                   let p = Cfg.block cfg pi in
                   match p.Block.term with
                   | Instr.Br l when String.equal l b.Block.label && pi <> bi ->
                     (* clone b, substitute constants known at the end of p,
                        and commit only when the branch folds *)
                     let env = const_env p in
                     let subst v =
                       match v with
                       | Value.Reg r -> begin
                         match Hashtbl.find_opt env r with
                         | Some (Some c) -> Value.Imm c
                         | _ -> v
                       end
                       | v -> v
                     in
                     (* the clone shares the original's registers so that
                        downstream uses observe the same definitions on
                        either path *)
                     let _, cloned, _ =
                       Util.clone_blocks ~rename_regs:false f [ b ]
                         ~label_suffix:".thread"
                     in
                     let nb = List.hd cloned in
                     nb.Block.instrs <-
                       List.map
                         (fun i ->
                           let i = Instr.map_values subst i in
                           match Constfold.fold_instr i with
                           | Some i' -> i'
                           | None -> i)
                         nb.Block.instrs;
                     (* local constant propagation within the clone *)
                     let env2 = const_env nb in
                     nb.Block.term <-
                       Instr.map_term_values
                         (fun v ->
                           match v with
                           | Value.Reg r -> begin
                             match Hashtbl.find_opt env2 r with
                             | Some (Some c) -> Value.Imm c
                             | _ -> subst v
                           end
                           | v -> subst v)
                         nb.Block.term;
                     (match nb.Block.term with
                     | Instr.Cbr { cond = Value.Imm c; if_true; if_false } ->
                       nb.Block.term <-
                         Instr.Br (if Eval.to_bool c then if_true else if_false);
                       Func.add_block f nb;
                       p.Block.term <- Instr.Br nb.Block.label;
                       progress := true;
                       changed := true;
                       raise Exit
                     | _ -> () (* no fold: discard the clone *))
                   | _ -> ())
                 cfg.Cfg.pred.(bi)
             | _ -> ()
           done
         with Exit -> ());
        if !progress then ignore (Util.remove_unreachable_blocks f)
      done)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* layout passes                                                       *)
(* ------------------------------------------------------------------ *)

(* tail duplication: a small pure block with several Br-predecessors is
   cloned into each, turning jumps into fallthrough opportunities *)
let run_tail_dup (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      for bi = 1 to Cfg.size cfg - 1 do
        let b = Cfg.block cfg bi in
        let small =
          List.length b.Block.instrs <= 3
          && List.for_all Instr.is_pure b.Block.instrs
          && match b.Block.term with Instr.Ret _ | Br _ -> true | Cbr _ -> false
        in
        let preds = cfg.Cfg.pred.(bi) in
        if small && List.length preds > 1 then
          List.iter
            (fun pi ->
              if pi <> bi then
                let p = Cfg.block cfg pi in
                match p.Block.term with
                | Instr.Br l when String.equal l b.Block.label ->
                  p.Block.instrs <- p.Block.instrs @ b.Block.instrs;
                  p.Block.term <- b.Block.term;
                  changed := true
                | _ -> ())
            preds
      done;
      ignore (Util.remove_unreachable_blocks f))
    m.Modul.funcs;
  !changed

(* block placement: lay blocks out in reverse postorder so likely paths
   fall through (the selector elides jumps to the next block) *)
let run_block_placement (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let order = Cfg.reverse_postorder cfg in
      let placed = List.map (fun i -> Cfg.block cfg i) order in
      let rest =
        List.filter (fun b -> not (List.memq b placed)) f.Func.blocks
      in
      let new_blocks = placed @ rest in
      let labels bs = List.map (fun (b : Block.t) -> b.Block.label) bs in
      if labels new_blocks <> labels f.Func.blocks then begin
        f.Func.blocks <- new_blocks;
        changed := true
      end)
    m.Modul.funcs;
  !changed

(* hot/cold splitting: blocks outside every loop sink to the end of the
   layout; loop bodies stay contiguous *)
let run_hot_cold (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let loops = Loops.find cfg in
      let in_loop i = List.exists (fun l -> Intset.mem i l.Loops.body) loops in
      if loops <> [] then begin
        let hot, cold =
          List.partition
            (fun (b : Block.t) ->
              match Cfg.index_of cfg b.Block.label with
              | Some i -> i = 0 || in_loop i
              | None -> true)
            f.Func.blocks
        in
        if cold <> [] then begin
          f.Func.blocks <- hot @ cold;
          changed := true
        end
      end)
    m.Modul.funcs;
  !changed

(* split critical edges (normalization; adds blocks and jumps) *)
let run_break_crit_edges (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      for bi = 0 to Cfg.size cfg - 1 do
        let b = Cfg.block cfg bi in
        match b.Block.term with
        | Instr.Cbr { cond; if_true; if_false } ->
          let split target =
            let ti = Cfg.index_of_exn cfg target in
            if List.length cfg.Cfg.pred.(ti) > 1 then begin
              let l = Func.fresh_label f "critedge" in
              Func.add_block f (Block.create ~term:(Instr.Br target) l);
              changed := true;
              l
            end
            else target
          in
          let t' = split if_true in
          let f' = split if_false in
          if not (String.equal t' if_true && String.equal f' if_false) then
            b.Block.term <- Instr.Cbr { cond; if_true = t'; if_false = f' }
        | _ -> ()
      done)
    m.Modul.funcs;
  !changed

let () =
  Pass.register "simplifycfg"
    "merge blocks, prune dead edges, and if-convert small diamonds"
    run_simplifycfg;
  Pass.register "jump-threading"
    "duplicate small branchy blocks into predecessors with known conditions"
    run_jump_threading;
  Pass.register "tail-dup" "duplicate small tails into their predecessors"
    run_tail_dup;
  Pass.register "block-placement" "lay out blocks in reverse postorder"
    run_block_placement;
  Pass.register "hot-cold-splitting" "sink non-loop blocks to the layout tail"
    run_hot_cold;
  Pass.register "break-crit-edges" "split critical CFG edges" run_break_crit_edges
