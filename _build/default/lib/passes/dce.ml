(** Dead-code elimination family: trivial DCE, aggressive (liveness-
    marking) DCE, and dead-store elimination. *)

open Zkopt_ir
open Zkopt_analysis

(* remove side-effect-free instructions whose results are never used *)
let run_dce (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let progress = ref true in
      while !progress do
        progress := false;
        let uses = Defs.use_counts f in
        let used r = Hashtbl.mem uses r in
        Func.iter_blocks f (fun b ->
            let keep =
              List.filter
                (fun i ->
                  match Instr.def i with
                  | Some d when Instr.has_no_side_effect i && not (used d) ->
                    progress := true;
                    changed := true;
                    false
                  | _ -> true)
                b.Block.instrs
            in
            b.Block.instrs <- keep)
      done)
    m.Modul.funcs;
  !changed

(* aggressive DCE: mark transitively-required instructions from effect
   roots; everything else goes, in one sweep *)
let run_adce (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let live_regs = Hashtbl.create 64 in
      let work = Queue.create () in
      let mark_reg r =
        if not (Hashtbl.mem live_regs r) then begin
          Hashtbl.replace live_regs r ();
          Queue.add r work
        end
      in
      (* roots: effectful instructions' operands, terminator operands *)
      Func.iter_blocks f (fun b ->
          List.iter
            (fun i ->
              if not (Instr.has_no_side_effect i) then
                List.iter mark_reg (Instr.uses i))
            b.Block.instrs;
          List.iter mark_reg (Instr.term_uses b.Block.term));
      (* propagate: all defs of a live reg are live; their operands too *)
      while not (Queue.is_empty work) do
        let r = Queue.pop work in
        Func.iter_instrs f (fun _ i ->
            if Instr.def i = Some r then List.iter mark_reg (Instr.uses i))
      done;
      Func.iter_blocks f (fun b ->
          let keep =
            List.filter
              (fun i ->
                match Instr.def i with
                | Some d
                  when Instr.has_no_side_effect i && not (Hashtbl.mem live_regs d)
                  ->
                  changed := true;
                  false
                | _ -> true)
              b.Block.instrs
          in
          b.Block.instrs <- keep))
    m.Modul.funcs;
  !changed

(* Dead-store elimination, per block, syntactic address equality.  A
   store is dead if a later store writes the same (address, type) with no
   intervening load/call/precompile. *)
let run_dse (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      Func.iter_blocks f (fun b ->
          (* scan backward: keep set of (addr, ty) already overwritten *)
          let overwritten : (Value.t * Ty.t) list ref = ref [] in
          let keep_rev =
            List.fold_left
              (fun acc i ->
                match i with
                | Instr.Store { ty; addr; _ } when Defs.is_stable defs addr ->
                  if
                    List.exists
                      (fun (a, t) -> Value.equal a addr && Ty.equal t ty)
                      !overwritten
                  then begin
                    changed := true;
                    acc (* dead store dropped *)
                  end
                  else begin
                    overwritten := (addr, ty) :: !overwritten;
                    i :: acc
                  end
                | Instr.Load _ | Call _ | Precompile _ | Store _ ->
                  overwritten := [];
                  i :: acc
                | _ -> i :: acc)
              []
              (List.rev b.Block.instrs)
          in
          b.Block.instrs <- keep_rev))
    m.Modul.funcs;
  !changed

let () =
  Pass.register "dce" "delete side-effect-free instructions with unused results"
    run_dce;
  Pass.register "adce"
    "aggressive DCE: liveness marking from effect roots, one sweep" run_adce;
  Pass.register "dse" "delete stores overwritten before any possible read"
    run_dse
