(** Loop restructuring: distribution (fission), fusion, extraction into
    functions, and the memset idiom.

    Fission is the paper's Fig. 2b subject: splitting a loop improves
    cache locality on the CPU model but duplicates the loop bookkeeping,
    which on zkVMs is pure extra proof work. *)

open Zkopt_ir
open Zkopt_analysis

(* An "elementwise" loop body: every load/store goes through an Addr of
   an invariant base indexed exactly by the induction variable. *)
let elementwise_accesses (cfg : Cfg.t) (defs : Defs.t) (loop : Loops.t)
    (c : Loops.counted) (body : Block.t) =
  let ok = ref true in
  let bases = ref [] in
  List.iter
    (fun i ->
      let base_of addr =
        match addr with
        | Value.Reg a -> begin
          match Defs.def_of defs a with
          | Some (Instr.Addr { base; index = Value.Reg idx; _ })
            when idx = c.Loops.iv
                 && Util.loop_invariant_value cfg defs loop base ->
            Some base
          | _ -> None
        end
        | _ -> None
      in
      match i with
      | Instr.Load { addr; _ } | Store { addr; _ } -> begin
        match base_of addr with
        | Some b -> bases := b :: !bases
        | None -> ok := false
      end
      | Call _ | Precompile _ -> ok := false
      | _ -> ())
    body.Block.instrs;
  if !ok then Some !bases else None

(* dependence groups: union-find over instructions connected by register
   def/use or by sharing a memory base *)
let body_groups (defs : Defs.t) (c : Loops.counted) (body : Block.t) =
  let instrs = Array.of_list body.Block.instrs in
  let n = Array.length instrs in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  (* reg edges: def at i, use at j (only regs defined in the body) *)
  let def_site = Hashtbl.create 16 in
  Array.iteri
    (fun i ins -> Option.iter (fun d -> Hashtbl.replace def_site d i) (Instr.def ins))
    instrs;
  Array.iteri
    (fun j ins ->
      List.iter
        (fun u ->
          match Hashtbl.find_opt def_site u with
          | Some i when u <> c.Loops.iv -> union i j
          | _ -> ())
        (Instr.uses ins))
    instrs;
  (* memory edges: same base value *)
  let base_site = Hashtbl.create 4 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Instr.Load { addr = Value.Reg a; _ } | Store { addr = Value.Reg a; _ }
        -> begin
        match Defs.def_of defs a with
        | Some (Instr.Addr { base; _ }) -> begin
          match Hashtbl.find_opt base_site base with
          | Some j -> union i j
          | None -> Hashtbl.replace base_site base i
        end
        | Some _ | None -> ()
      end
      | _ -> ())
    instrs;
  (* the iv update tail stays with every group: exclude it from grouping *)
  let tail_start =
    (* last two instructions are the canonical [t := iv+step; iv := t] *)
    max 0 (n - 2)
  in
  let groups = Hashtbl.create 4 in
  Array.iteri
    (fun i _ ->
      if i < tail_start then begin
        let r = find i in
        Hashtbl.replace groups r
          (i :: Option.value ~default:[] (Hashtbl.find_opt groups r))
      end)
    instrs;
  (instrs, Hashtbl.fold (fun _ l acc -> List.rev l :: acc) groups [], tail_start)

let single_body_block (cfg : Cfg.t) (loop : Loops.t) (c : Loops.counted) =
  (* loop with exactly two blocks: header + one body/latch block *)
  if Intset.cardinal loop.Loops.body = 2 then begin
    let body_i = c.Loops.latch in
    let b = Cfg.block cfg body_i in
    if String.equal b.Block.label c.Loops.body_label then Some b else None
  end
  else None

let run_fission (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      (try
         List.iter
           (fun loop ->
             match Loops.as_counted cfg defs loop with
             | None -> ()
             | Some c -> begin
               match single_body_block cfg loop c with
               | None -> ()
               | Some body ->
                 if
                   elementwise_accesses cfg defs loop c body <> None
                   (* no register values may escape the loop *)
                   && Hashtbl.length (Loopopts.defs_used_outside cfg loop) = 0
                 then begin
                   let _instrs, groups, _tail = body_groups defs c body in
                   if List.length groups >= 2 then begin
                     (* keep group 1 in this loop; move the rest to a clone
                        that runs afterwards *)
                     let group1 = List.hd groups in
                     let keep_set = Hashtbl.create 8 in
                     List.iter (fun i -> Hashtbl.replace keep_set i ()) group1;
                     let blocks =
                       List.map (fun i -> Cfg.block cfg i)
                         (Intset.elements loop.Loops.body)
                     in
                     let label_map, cloned, _ =
                       Util.clone_blocks ~rename_regs:false f blocks
                         ~label_suffix:".fis"
                     in
                     let header_label = Cfg.label cfg loop.Loops.header in
                     let clone_header = Hashtbl.find label_map header_label in
                     (* original loop: drop non-group1 body instructions,
                        then exit into the clone *)
                     let n = List.length body.Block.instrs in
                     body.Block.instrs <-
                       List.filteri
                         (fun i _ -> Hashtbl.mem keep_set i || i >= n - 2)
                         body.Block.instrs;
                     (* clone: drop group1 instructions *)
                     let clone_body =
                       List.find
                         (fun (b : Block.t) ->
                           String.equal b.Block.label
                             (Hashtbl.find label_map c.Loops.body_label))
                         cloned
                     in
                     clone_body.Block.instrs <-
                       List.filteri
                         (fun i _ ->
                           (not (Hashtbl.mem keep_set i)) || i >= n - 2)
                         clone_body.Block.instrs;
                     (* clone iv needs its own init: copy the original's *)
                     (match
                        List.find_opt
                          (fun (b : Block.t) ->
                            String.equal b.Block.label header_label)
                          f.Func.blocks
                      with
                     | Some header ->
                       (* original header's exit edge goes to the clone's
                          init block, which we synthesize *)
                       let init_label = Func.fresh_label f "fis.init" in
                       (* find the iv's initial value *)
                       let init_value =
                         match
                           Loopopts.iv_init cfg defs c
                         with
                         | Some v -> v
                         | None -> Value.Imm 0L
                       in
                       (* only transform when the init is known *)
                       if Loopopts.iv_init cfg defs c <> None then begin
                         (* clone uses the same iv register: re-initialize *)
                         let init_block =
                           Block.create
                             ~instrs:
                               [ Instr.Mov
                                   { dst = c.Loops.iv; ty = c.Loops.iv_ty;
                                     src = init_value } ]
                             ~term:(Instr.Br clone_header) init_label
                         in
                         Func.add_block f init_block;
                         List.iter (Func.add_block f) cloned;
                         header.Block.term <-
                           Instr.map_term_labels
                             (fun l ->
                               if String.equal l c.Loops.exit_label then init_label
                               else l)
                             header.Block.term;
                         (* the clone's exit keeps pointing at the original
                            exit label (unmapped) *)
                         changed := true;
                         raise Exit
                       end
                     | None -> ())
                   end
                 end
             end)
           (Loops.find cfg)
       with Exit -> ()))
    m.Modul.funcs;
  !changed

(* fusion: two consecutive identical-trip elementwise loops merge *)
let run_fusion (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let defs = Defs.compute f in
      let loops = Loops.find cfg in
      let counted = List.filter_map (Loops.as_counted cfg defs) loops in
      (try
         List.iter
           (fun c1 ->
             List.iter
               (fun c2 ->
                 if c1 != c2 then begin
                   match
                     ( single_body_block cfg c1.Loops.loop c1,
                       single_body_block cfg c2.Loops.loop c2 )
                   with
                   | Some b1, Some b2 -> begin
                     (* loop1's exit must be exactly loop2's init block:
                        [iv2 := init; br header2] *)
                     let exit1 = c1.Loops.exit_label in
                     match Func.find_block f exit1 with
                     | Some mid
                       when (match mid.Block.term with
                            | Instr.Br l ->
                              String.equal l
                                (Cfg.label cfg c2.Loops.loop.Loops.header)
                            | _ -> false)
                            && List.length mid.Block.instrs = 1 -> begin
                       match mid.Block.instrs with
                       | [ Instr.Mov { dst; src; _ } ]
                         when dst = c2.Loops.iv
                              && Value.equal c1.Loops.bound c2.Loops.bound
                              && c1.Loops.step = c2.Loops.step
                              && c1.Loops.cmp_op = c2.Loops.cmp_op
                              && Loopopts.iv_init cfg defs c1 = Some src
                              && c1.Loops.step = 1L ->
                         (* elementwise + disjoint or read-only-shared bases *)
                         let a1 = elementwise_accesses cfg defs c1.Loops.loop c1 b1 in
                         let a2 = elementwise_accesses cfg defs c2.Loops.loop c2 b2 in
                         (match (a1, a2) with
                         | Some _, Some _ ->
                           (* splice body2 (minus its iv tail) into body1
                              before its iv tail, substituting iv2 -> iv1 *)
                           let n1 = List.length b1.Block.instrs in
                           let head1, tail1 =
                             List.filteri (fun i _ -> i < n1 - 2) b1.Block.instrs,
                             List.filteri (fun i _ -> i >= n1 - 2) b1.Block.instrs
                           in
                           let n2 = List.length b2.Block.instrs in
                           let body2 =
                             List.filteri (fun i _ -> i < n2 - 2) b2.Block.instrs
                           in
                           let subst v =
                             match v with
                             | Value.Reg r when r = c2.Loops.iv ->
                               Value.Reg c1.Loops.iv
                             | v -> v
                           in
                           let body2 = List.map (Instr.map_values subst) body2 in
                           b1.Block.instrs <- head1 @ body2 @ tail1;
                           (* loop1 now exits straight to loop2's exit *)
                           let h1 = Cfg.block cfg c1.Loops.loop.Loops.header in
                           h1.Block.term <-
                             Instr.map_term_labels
                               (fun l ->
                                 if String.equal l exit1 then c2.Loops.exit_label
                                 else l)
                               h1.Block.term;
                           ignore (Util.remove_unreachable_blocks f);
                           changed := true;
                           raise Exit
                         | _ -> ())
                       | _ -> ()
                     end
                     | _ -> ()
                   end
                   | _ -> ()
                 end)
               counted)
           counted
       with Exit -> ()))
    m.Modul.funcs;
  !changed

(* loop-extract: outline a loop into its own function (hurts zkVMs via
   call/argument traffic; helps x86 nothing here, matching Fig. 8's
   direction for RISC Zero) *)
let run_loop_extract (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  (* operate on a snapshot: extraction adds functions to [m] *)
  let funcs = m.Modul.funcs in
  (try
     List.iter
       (fun (f : Func.t) ->
         let cfg = Cfg.of_func f in
         let defs = Defs.compute f in
         let reg_tys = Modul.reg_types m f in
         List.iter
           (fun loop ->
             match Loops.as_counted cfg defs loop with
             | None -> ()
             | Some c ->
               (* conditions: unique exit target, one escaping def at most,
                  few live-ins, no allocas inside *)
               let exits = Intset.elements (Loops.exit_targets cfg loop) in
               let has_alloca =
                 Intset.exists
                   (fun bi ->
                     List.exists
                       (fun i -> match i with Instr.Alloca _ -> true | _ -> false)
                       (Cfg.block cfg bi).Block.instrs)
                   loop.Loops.body
               in
               let escaping =
                 Hashtbl.fold (fun r () acc -> r :: acc)
                   (Loopopts.defs_used_outside cfg loop) []
               in
               (* live-ins: regs used in the loop that have at least one
                  definition outside it (params count as outside defs) *)
               let inside_count = Hashtbl.create 16 in
               Intset.iter
                 (fun bi ->
                   List.iter
                     (fun i ->
                       Option.iter
                         (fun d ->
                           Hashtbl.replace inside_count d
                             (1
                             + Option.value ~default:0
                                 (Hashtbl.find_opt inside_count d)))
                         (Instr.def i))
                     (Cfg.block cfg bi).Block.instrs)
                 loop.Loops.body;
               let live_ins = Hashtbl.create 8 in
               let outside_defs u =
                 Option.value ~default:0 (Hashtbl.find_opt defs.Defs.counts u)
                 - Option.value ~default:0 (Hashtbl.find_opt inside_count u)
               in
               Intset.iter
                 (fun bi ->
                   let b = Cfg.block cfg bi in
                   let note u =
                     if outside_defs u > 0 && not (Hashtbl.mem live_ins u) then
                       Hashtbl.replace live_ins u ()
                   in
                   List.iter (fun i -> List.iter note (Instr.uses i)) b.Block.instrs;
                   List.iter note (Instr.term_uses b.Block.term))
                 loop.Loops.body;
               let live_in_list = Hashtbl.fold (fun r () acc -> r :: acc) live_ins [] in
               let word_count =
                 List.fold_left
                   (fun acc r ->
                     acc
                     +
                     match Hashtbl.find_opt reg_tys r with
                     | Some Ty.I64 -> 2
                     | _ -> 1)
                   0 live_in_list
               in
               if
                 List.length exits = 1 && (not has_alloca)
                 && List.length escaping <= 1
                 && word_count <= 8 && loop.Loops.depth = 1
                 && Intset.cardinal loop.Loops.body >= 2
               then begin
                 let exit_label = c.Loops.exit_label in
                 let header_label = Cfg.label cfg loop.Loops.header in
                 (* build the outlined function *)
                 let fname = Func.fresh_label f (f.Func.name ^ ".outlined") in
                 let params =
                   List.map
                     (fun r ->
                       (r, Option.value ~default:Ty.I32 (Hashtbl.find_opt reg_tys r)))
                     live_in_list
                 in
                 let ret_reg =
                   match escaping with [ r ] -> Some r | _ -> None
                 in
                 let ret_ty =
                   Option.map
                     (fun r ->
                       Option.value ~default:Ty.I32 (Hashtbl.find_opt reg_tys r))
                     ret_reg
                 in
                 let blocks =
                   List.map (fun i -> Cfg.block cfg i)
                     (Intset.elements loop.Loops.body)
                 in
                 let nf = Func.create ~name:fname ~params ~ret:ret_ty in
                 nf.Func.next_reg <- f.Func.next_reg;
                 (* entry jumps to the header; exits become returns *)
                 let entry = Block.create ~term:(Instr.Br header_label) "entry" in
                 Func.add_block nf entry;
                 List.iter
                   (fun (b : Block.t) ->
                     let nb =
                       Block.create ~instrs:b.Block.instrs
                         ~term:
                           (Instr.map_term_labels
                              (fun l ->
                                if String.equal l exit_label then "__ret" else l)
                              b.Block.term)
                         b.Block.label
                     in
                     Func.add_block nf nb)
                   blocks;
                 Func.add_block nf
                   (Block.create
                      ~term:(Instr.Ret (Option.map (fun r -> Value.Reg r) ret_reg))
                      "__ret");
                 Modul.add_func m nf;
                 (* replace the loop in the caller with a call *)
                 let args = List.map (fun r -> Value.Reg r) live_in_list in
                 let call =
                   Instr.Call { dst = ret_reg; callee = fname; args }
                 in
                 let stub_label = Func.fresh_label f "extracted" in
                 let stub =
                   Block.create ~instrs:[ call ] ~term:(Instr.Br exit_label)
                     stub_label
                 in
                 Func.add_block f stub;
                 Util.redirect_edges f ~from:header_label ~to_:stub_label;
                 Intset.iter
                   (fun bi -> Func.remove_block f (Cfg.label cfg bi))
                   loop.Loops.body;
                 ignore (Util.remove_unreachable_blocks f);
                 changed := true;
                 raise Exit
               end)
           (Loops.find cfg))
       funcs
   with Exit -> ());
  !changed

(* loop-idiom: a loop storing an invariant value elementwise becomes a
   memset_w call.  Both the bound and the iv's initial value must be
   immediates so the element count is a compile-time constant. *)
let run_loop_idiom (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  let memset_ok =
    match Modul.find_func m "memset_w" with
    | Some f -> List.length f.Func.params = 3
    | None -> false
  in
  if memset_ok then
    List.iter
      (fun (f : Func.t) ->
        let cfg = Cfg.of_func f in
        let defs = Defs.compute f in
        (try
           List.iter
             (fun loop ->
               match Loops.as_counted cfg defs loop with
               | Some c
                 when c.Loops.step = 1L
                      && (c.Loops.cmp_op = Instr.Slt || c.Loops.cmp_op = Instr.Ult)
                      && Hashtbl.length (Loopopts.defs_used_outside cfg loop) = 0
                 -> begin
                 match single_body_block cfg loop c with
                 | None -> ()
                 | Some body -> begin
                   match (body.Block.instrs, Loopopts.iv_init cfg defs c, c.Loops.bound) with
                   | ( [ Instr.Addr
                           { dst = ad; base; index = Value.Reg idx; scale = 4;
                             offset };
                         Store { ty = Ty.I32; addr = Value.Reg ad2; src };
                         Bin _; Mov _ ],
                       Some (Value.Imm init),
                       Value.Imm bound )
                     when ad2 = ad && idx = c.Loops.iv
                          && Util.loop_invariant_value cfg defs loop base
                          && Util.loop_invariant_value cfg defs loop src ->
                     let count = Loops.trip_count c ~init:(Some init) in
                     (match count with
                     | Some n when n >= 0 ->
                       ignore bound;
                       let preheader_label = Util.ensure_preheader f cfg loop in
                       let pre = Func.find_block_exn f preheader_label in
                       let start = Func.fresh_reg f in
                       pre.Block.instrs <-
                         pre.Block.instrs
                         @ [ Instr.Addr
                               { dst = start; base; index = Value.Imm init;
                                 scale = 4; offset };
                             Instr.Call
                               { dst = None; callee = "memset_w";
                                 args =
                                   [ Value.Reg start; src;
                                     Value.Imm (Int64.of_int n) ] };
                             (* iv's observable exit value *)
                             Instr.Mov
                               { dst = c.Loops.iv; ty = c.Loops.iv_ty;
                                 src =
                                   Value.Imm
                                     (Eval.norm c.Loops.iv_ty
                                        (Int64.add init (Int64.of_int n))) } ];
                       pre.Block.term <- Instr.Br c.Loops.exit_label;
                       ignore (Util.remove_unreachable_blocks f);
                       changed := true;
                       raise Exit
                     | _ -> ())
                   | _ -> ()
                 end
               end
               | _ -> ())
             (Loops.find cfg)
         with Exit -> ()))
      m.Modul.funcs;
  !changed

let () =
  Pass.register "loop-fission" "split independent loop bodies (loop-distribute)"
    run_fission;
  Pass.register "loop-fusion" "merge adjacent identical-trip elementwise loops"
    run_fusion;
  Pass.register "loop-extract" "outline loops into functions" run_loop_extract;
  Pass.register "loop-idiom" "recognize memset-style loops" run_loop_idiom
