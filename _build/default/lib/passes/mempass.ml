(** Memory-oriented passes: promotion of stack slots to registers
    (mem2reg), the inverse demotion (reg2mem), scalar replacement of
    aggregates (sroa), and memcpy forwarding.

    In this non-SSA IR, promotion needs no phi construction: a
    non-escaping scalar alloca simply becomes a multiply-assigned
    register, which is exactly what the rest of the pipeline works on. *)

open Zkopt_ir
open Zkopt_analysis

(* An alloca's address "escapes" if it is used by anything other than a
   direct Load/Store address operand. *)
let alloca_escapes (f : Func.t) (r : Value.reg) =
  let escapes = ref false in
  let is_r v = match v with Value.Reg x -> x = r | _ -> false in
  Func.iter_blocks f (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Load { addr; _ } when is_r addr -> ()
          | Instr.Store { addr; src; _ } when is_r addr ->
            if is_r src then escapes := true
          | i -> if List.mem r (Instr.uses i) then escapes := true)
        b.Block.instrs;
      if List.mem r (Instr.term_uses b.Block.term) then escapes := true)

  ;
  !escapes

(* Loads/stores through the alloca must all use one access type. *)
let alloca_access_ty (f : Func.t) (r : Value.reg) : Ty.t option =
  let ty = ref None in
  let consistent = ref true in
  let is_r v = match v with Value.Reg x -> x = r | _ -> false in
  Func.iter_instrs f (fun _ i ->
      let note t =
        match !ty with
        | None -> ty := Some t
        | Some t' -> if not (Ty.equal t t') then consistent := false
      in
      match i with
      | Instr.Load { addr; ty = t; _ } when is_r addr -> note t
      | Instr.Store { addr; ty = t; _ } when is_r addr -> note t
      | _ -> ());
  if !consistent then !ty else None

let run_mem2reg (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      (* candidates: scalar-sized, non-escaping, consistently-typed *)
      let candidates = ref [] in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Alloca { dst; size } when size <= 8 ->
            if not (alloca_escapes f dst) then begin
              match alloca_access_ty f dst with
              | Some ty when Ty.size_bytes ty <= size ->
                candidates := (dst, ty) :: !candidates
              | _ -> ()
            end
          | _ -> ());
      List.iter
        (fun (slot, ty) ->
          changed := true;
          let cell = Func.fresh_reg f in
          let is_slot v = match v with Value.Reg x -> x = slot | _ -> false in
          Func.iter_blocks f (fun b ->
              b.Block.instrs <-
                List.filter_map
                  (fun i ->
                    match i with
                    | Instr.Alloca { dst; _ } when dst = slot ->
                      (* initialize the cell: memory starts zeroed *)
                      Some (Instr.Mov { dst = cell; ty; src = Value.Imm 0L })
                    | Load { dst; addr; _ } when is_slot addr ->
                      Some (Instr.Mov { dst; ty; src = Value.Reg cell })
                    | Store { addr; src; _ } when is_slot addr ->
                      Some (Instr.Mov { dst = cell; ty; src })
                    | i -> Some i)
                  b.Block.instrs))
        !candidates)
    m.Modul.funcs;
  !changed

(* reg2mem: demote registers that are live across block boundaries to
   stack slots — the LLVM pass used to simplify CFG transforms, which the
   paper finds can help x86 but hurts RISC Zero (Fig. 8). *)
let run_reg2mem (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      let live = Liveness.compute cfg in
      let cross = Liveness.cross_block_regs live in
      let params = List.map fst f.Func.params in
      let reg_tys = Modul.reg_types m f in
      let targets =
        Intset.elements cross
        |> List.filter (fun r -> not (List.mem r params))
        |> List.filter (fun r -> Hashtbl.mem reg_tys r)
      in
      if targets <> [] then begin
        changed := true;
        let entry = Func.entry f in
        List.iter
          (fun r ->
            let ty = Hashtbl.find reg_tys r in
            let slot = Func.fresh_reg f in
            (* allocate the slot at function entry *)
            entry.Block.instrs <-
              Instr.Alloca { dst = slot; size = Ty.size_bytes ty }
              :: entry.Block.instrs;
            (* defs write through; uses read through *)
            Func.iter_blocks f (fun b ->
                b.Block.instrs <-
                  List.concat_map
                    (fun i ->
                        let loads = ref [] in
                        let subst v =
                          match v with
                          | Value.Reg x when x = r ->
                            let t = Func.fresh_reg f in
                            loads :=
                              Instr.Load { dst = t; ty; addr = Value.Reg slot }
                              :: !loads;
                            Value.Reg t
                          | v -> v
                        in
                        let i' = Instr.map_values subst i in
                        let stores =
                          if Instr.def i' = Some r then
                            [ Instr.Store
                                { ty; addr = Value.Reg slot; src = Value.Reg r } ]
                          else []
                        in
                        List.rev !loads @ [ i' ] @ stores)
                    b.Block.instrs;
                let loads = ref [] in
                let subst v =
                  match v with
                  | Value.Reg x when x = r ->
                    let t = Func.fresh_reg f in
                    loads := Instr.Load { dst = t; ty; addr = Value.Reg slot } :: !loads;
                    Value.Reg t
                  | v -> v
                in
                let term' = Instr.map_term_values subst b.Block.term in
                if !loads <> [] then begin
                  b.Block.instrs <- b.Block.instrs @ List.rev !loads;
                  b.Block.term <- term'
                end))
          targets
      end)
    m.Modul.funcs;
  !changed

(* sroa: split a multi-word alloca accessed only at constant offsets into
   per-word allocas, unlocking mem2reg. *)
let run_sroa (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      (* find allocas whose every use is an Addr with constant index and
         offset, feeding only aligned non-escaping loads/stores *)
      let candidates = ref [] in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Alloca { dst; size } when size > 8 && size <= 64 ->
            let ok = ref true in
            let offsets = ref [] in
            Func.iter_instrs f (fun _ j ->
                match j with
                | Instr.Addr { dst = addr_dst; base = Value.Reg b;
                               index = Value.Imm idx; scale; offset }
                  when b = dst ->
                  let off = (Int64.to_int idx * scale) + offset in
                  if off mod 4 <> 0 || off < 0 || off + 4 > size
                     || not (Defs.is_single_def defs addr_dst)
                  then ok := false
                  else begin
                    (* the derived address must itself not escape *)
                    if alloca_escapes f addr_dst then ok := false;
                    (match alloca_access_ty f addr_dst with
                    | Some Ty.I32 | Some Ty.Ptr -> ()
                    | _ -> ok := false);
                    offsets := (addr_dst, off) :: !offsets
                  end
                | j when List.mem dst (Instr.uses j) ->
                  (* anything else — variable-index addrs, direct loads,
                     stores of the pointer, calls — blocks splitting *)
                  ok := false
                | _ -> ())
            ;
            if !ok && !offsets <> [] then candidates := (dst, !offsets) :: !candidates
          | _ -> ());
      List.iter
        (fun (slot, derived) ->
          changed := true;
          (* one fresh scalar alloca per distinct offset *)
          let by_off = Hashtbl.create 8 in
          List.iter
            (fun (_, off) ->
              if not (Hashtbl.mem by_off off) then
                Hashtbl.replace by_off off (Func.fresh_reg f))
            derived;
          Func.iter_blocks f (fun b ->
              b.Block.instrs <-
                List.concat_map
                  (fun i ->
                    match i with
                    | Instr.Alloca { dst; _ } when dst = slot ->
                      Hashtbl.fold
                        (fun _off r acc -> Instr.Alloca { dst = r; size = 4 } :: acc)
                        by_off []
                    | Instr.Addr { dst = d; base = Value.Reg bb; _ }
                      when bb = slot ->
                      let off = List.assoc d derived in
                      [ Instr.Mov
                          { dst = d; ty = Ty.Ptr;
                            src = Value.Reg (Hashtbl.find by_off off) } ]
                    | i -> [ i ])
                  b.Block.instrs))
        !candidates;
      (* promote the freshly split scalars *)
      if !changed then ignore (run_mem2reg config m))
    m.Modul.funcs;
  !changed

(* memcpyopt: forward a word-copy loop... our IR sees memcpy as the
   runtime function; forward calls of memcpy_w from a just-written source
   are rare, so this pass does store-to-load forwarding within a block
   instead (the practical effect LLVM's memcpyopt has on our kernels). *)
let run_memcpyopt (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      Func.iter_blocks f (fun b ->
          (* forward: store ty v, p ... load ty d, p  =>  d := v *)
          let known : (Value.t * Ty.t * Value.t) list ref = ref [] in
          b.Block.instrs <-
            List.map
              (fun i ->
                match i with
                | Instr.Store { ty; addr; src }
                  when Defs.is_stable defs addr && Defs.is_stable defs src ->
                  known :=
                    (addr, ty, src)
                    :: List.filter (fun (a, _, _) -> not (Value.equal a addr)) !known;
                  i
                | Instr.Store _ | Call _ | Precompile _ ->
                  known := [];
                  i
                | Instr.Load { dst; ty; addr } when Defs.is_stable defs addr -> begin
                  match
                    List.find_opt
                      (fun (a, t, _) -> Value.equal a addr && Ty.equal t ty)
                      !known
                  with
                  | Some (_, _, v) ->
                    changed := true;
                    Instr.Mov { dst; ty; src = v }
                  | None -> i
                end
                | i -> i)
              b.Block.instrs))
    m.Modul.funcs;
  !changed

let () =
  Pass.register "mem2reg" "promote non-escaping scalar allocas to registers"
    run_mem2reg;
  Pass.register "reg2mem" "demote cross-block registers to stack slots"
    run_reg2mem;
  Pass.register "sroa" "split constant-indexed aggregates into scalars"
    run_sroa;
  Pass.register "memcpyopt" "forward stored values to subsequent loads"
    run_memcpyopt
