(** Value numbering: block-local common-subexpression elimination
    (early-cse, including store-to-load awareness) and dominator-scoped
    global value numbering (gvn / newgvn).

    Expressions participate only when every operand is stable (constant,
    parameter, or single-definition register): stable operands have one
    value for the whole execution, so availability reduces to dominance. *)

open Zkopt_ir
open Zkopt_analysis

type expr_key =
  | KBin of Ty.t * Instr.binop * Value.t * Value.t
  | KCmp of Ty.t * Instr.cmpop * Value.t * Value.t
  | KSelect of Ty.t * Value.t * Value.t * Value.t
  | KCast of Instr.castop * Value.t
  | KAddr of Value.t * Value.t * int * int

let key_of (defs : Defs.t) (i : Instr.t) : (expr_key * Value.reg * Ty.t) option =
  let stable = Defs.is_stable defs in
  match i with
  | Instr.Bin { dst; ty; op; a; b } when stable a && stable b ->
    (* normalize commutative operand order *)
    let a, b =
      if Instr.is_commutative op && compare a b > 0 then (b, a) else (a, b)
    in
    Some (KBin (ty, op, a, b), dst, ty)
  | Cmp { dst; ty; op; a; b } when stable a && stable b ->
    Some (KCmp (ty, op, a, b), dst, Ty.I32)
  | Select { dst; ty; cond; if_true; if_false }
    when stable cond && stable if_true && stable if_false ->
    Some (KSelect (ty, cond, if_true, if_false), dst, ty)
  | Cast { dst; op; src } when stable src ->
    let ty = match op with Instr.Trunc -> Ty.I32 | _ -> Ty.I64 in
    Some (KCast (op, src), dst, ty)
  | Addr { dst; base; index; scale; offset } when stable base && stable index ->
    Some (KAddr (base, index, scale, offset), dst, Ty.Ptr)
  | _ -> None

(* block-local CSE with store-to-load forwarding and redundant-load
   elimination *)
let run_early_cse (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      Func.iter_blocks f (fun b ->
          let exprs : (expr_key, Value.reg) Hashtbl.t = Hashtbl.create 16 in
          let avail_loads : (Value.t * Ty.t, Value.reg) Hashtbl.t =
            Hashtbl.create 8
          in
          b.Block.instrs <-
            List.map
              (fun i ->
                match key_of defs i with
                | Some (key, dst, ty) -> begin
                  match Hashtbl.find_opt exprs key with
                  | Some prev when Defs.is_single_def defs prev ->
                    changed := true;
                    Instr.Mov { dst; ty; src = Value.Reg prev }
                  | _ ->
                    if Defs.is_single_def defs dst then
                      Hashtbl.replace exprs key dst;
                    i
                end
                | None -> begin
                  match i with
                  | Instr.Load { dst; ty; addr } when Defs.is_stable defs addr
                    -> begin
                    match Hashtbl.find_opt avail_loads (addr, ty) with
                    | Some prev when Defs.is_single_def defs prev ->
                      changed := true;
                      Instr.Mov { dst; ty; src = Value.Reg prev }
                    | _ ->
                      if Defs.is_single_def defs dst then
                        Hashtbl.replace avail_loads (addr, ty) dst;
                      i
                  end
                  | Instr.Store _ | Call _ | Precompile _ ->
                    Hashtbl.reset avail_loads;
                    i
                  | i -> i
                end)
              b.Block.instrs))
    m.Modul.funcs;
  !changed

(* dominator-scoped GVN over pure expressions *)
let run_gvn (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let cfg = Cfg.of_func f in
      let dom = Dom.compute cfg in
      let kids = Dom.children dom in
      let table : (expr_key, Value.reg) Hashtbl.t = Hashtbl.create 32 in
      let rec walk bi =
        let b = Cfg.block cfg bi in
        let added = ref [] in
        b.Block.instrs <-
          List.map
            (fun i ->
              match key_of defs i with
              | Some (key, dst, ty) -> begin
                match Hashtbl.find_opt table key with
                | Some prev when Defs.is_single_def defs prev ->
                  changed := true;
                  Instr.Mov { dst; ty; src = Value.Reg prev }
                | _ ->
                  if Defs.is_single_def defs dst && not (Hashtbl.mem table key)
                  then begin
                    Hashtbl.replace table key dst;
                    added := key :: !added
                  end;
                  i
              end
              | None -> i)
            b.Block.instrs;
        List.iter walk kids.(bi);
        List.iter (Hashtbl.remove table) !added
      in
      if Cfg.size cfg > 0 then walk 0)
    m.Modul.funcs;
  !changed

let () =
  Pass.register "early-cse" "block-local CSE with redundant-load elimination"
    run_early_cse;
  Pass.register "gvn" "dominator-scoped global value numbering" run_gvn;
  Pass.register "newgvn" "global value numbering (alternative pipeline entry)"
    run_gvn
