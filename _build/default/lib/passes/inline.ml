(** Function inlining.

    The cost heuristic mirrors LLVM's shape: inline when
    [callee_size - call_penalty <= threshold], with always-inline and
    single-call-site bonuses.  The zkVM-aware configuration raises the
    threshold to the paper's autotuned 4328 (Insight 2): on zkVMs the
    usual icache-pressure argument against inlining does not exist, while
    removed call/return/argument traffic directly shrinks the proof —
    except when inlining drives 64-bit register pressure into spills
    (Fig. 10), which is a backend effect this pass cannot see, exactly as
    in the paper. *)

open Zkopt_ir
open Zkopt_analysis

let partial_inline_max = 12
(* "partial-inliner" entry: only bodies this small *)

type mode = Always_only | Threshold | Partial

let should_inline (config : Pass.config) (mode : mode) (cg : Callgraph.t)
    (callee : Func.t) =
  let size = Util.size_of_func callee in
  let attrs = callee.Func.attrs in
  if attrs.Func.no_inline then false
  else if Callgraph.is_recursive cg callee.Func.name then false
  else
    match mode with
    | Always_only -> attrs.Func.always_inline
    | Partial -> size <= partial_inline_max
    | Threshold ->
      attrs.Func.always_inline
      ||
      let single_site = Callgraph.call_site_count cg callee.Func.name = 1 in
      let bonus = if single_site then 3 * config.Pass.inline_call_penalty else 0 in
      size - config.Pass.inline_call_penalty - bonus <= config.Pass.inline_threshold

(** Inline one call site: split the block at the call, splice a renamed
    copy of the callee between the halves. *)
let inline_site (caller : Func.t) (block : Block.t) ~(call_idx : int)
    ~(callee : Func.t) =
  let dst, args =
    match List.nth block.Block.instrs call_idx with
    | Instr.Call { dst; args; _ } -> (dst, args)
    | _ -> invalid_arg "inline_site: not a call"
  in
  (* tail = code after the call *)
  let tail = Util.split_block caller block ~idx:(call_idx + 1) in
  (* drop the call itself (last instruction of the head block now) *)
  block.Block.instrs <-
    List.filteri
      (fun i _ -> i <> List.length block.Block.instrs - 1)
      block.Block.instrs;
  (* clone callee body; parameters are renamed along with local defs *)
  let label_map, body, reg_map =
    Util.clone_blocks caller callee.Func.blocks ~label_suffix:".inl"
      ~also_rename:(List.map fst callee.Func.params)
  in
  let entry_label =
    Hashtbl.find label_map (Func.entry callee).Block.label
  in
  (* parameter binding: mov cloned-param := arg *)
  let param_movs =
    List.map2
      (fun (p, ty) arg ->
        let p' =
          match Hashtbl.find_opt reg_map p with
          | Some p' -> p'
          | None -> (* parameter unused in body *) Func.fresh_reg caller
        in
        Instr.Mov { dst = p'; ty; src = arg })
      callee.Func.params args
  in
  block.Block.instrs <- block.Block.instrs @ param_movs;
  block.Block.term <- Instr.Br entry_label;
  (* rewrite cloned returns into (result mov +) jump to tail *)
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Ret v ->
        (match (dst, v) with
        | Some d, Some value ->
          let ty = Option.value ~default:Ty.I32 callee.Func.ret in
          b.Block.instrs <- b.Block.instrs @ [ Instr.Mov { dst = d; ty; src = value } ]
        | _ -> ());
        b.Block.term <- Instr.Br tail.Block.label
      | _ -> ())
    body;
  (* splice the body between head and tail in layout order *)
  let rec ins = function
    | [] -> body
    | (b : Block.t) :: tl when b == block -> b :: (body @ tl)
    | b :: tl -> b :: ins tl
  in
  caller.Func.blocks <- ins caller.Func.blocks

let run_mode (mode : mode) (config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  let budget = ref 1000 in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let cg = Callgraph.compute m in
    (try
       List.iter
         (fun (caller : Func.t) ->
           List.iter
             (fun (b : Block.t) ->
               List.iteri
                 (fun idx i ->
                   match i with
                   | Instr.Call { callee; _ } -> begin
                     match Modul.find_func m callee with
                     | Some callee_f
                       when (not (String.equal callee_f.Func.name caller.Func.name))
                            && should_inline config mode cg callee_f ->
                       inline_site caller b ~call_idx:idx ~callee:callee_f;
                       decr budget;
                       changed := true;
                       progress := true;
                       raise Exit
                     | _ -> ()
                   end
                   | _ -> ())
                 b.Block.instrs)
             caller.Func.blocks)
         m.Modul.funcs
     with Exit -> ())
  done;
  !changed

let run_inline config m = run_mode Threshold config m
let run_always_inline config m = run_mode Always_only config m
let run_partial config m = run_mode Partial config m

let () =
  Pass.register "inline" "threshold-driven function inlining" run_inline;
  Pass.register "always-inline" "inline only always_inline functions"
    run_always_inline;
  Pass.register "partial-inliner" "inline very small functions only" run_partial
