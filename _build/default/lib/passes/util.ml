(** Shared transformation machinery for the passes. *)

open Zkopt_ir
open Zkopt_analysis

(** Substitute value [to_] for every use of register [from] across the
    function (instruction operands and terminators). *)
let replace_uses (f : Func.t) ~(from : Value.reg) ~(to_ : Value.t) =
  let subst v = match v with Value.Reg r when r = from -> to_ | _ -> v in
  Func.iter_blocks f (fun b ->
      b.Block.instrs <- List.map (Instr.map_values subst) b.Block.instrs;
      b.Block.term <- Instr.map_term_values subst b.Block.term)

(** Rewrite each instruction of every block with [fn]; [fn] returns the
    replacement list ([] deletes, singleton keeps/modifies, longer lists
    expand).  Returns whether anything changed. *)
let rewrite_instrs (f : Func.t) fn =
  let changed = ref false in
  Func.iter_blocks f (fun b ->
      let out =
        List.concat_map
          (fun i ->
            let r = fn b i in
            (match r with [ i' ] when i' == i -> () | _ -> changed := true);
            r)
          b.Block.instrs
      in
      b.Block.instrs <- out);
  !changed

(** Fold a value through known constants: returns [Some imm] if [v] is an
    immediate. *)
let const_of = function Value.Imm i -> Some i | _ -> None

(** Delete blocks unreachable from the entry, fixing nothing else (no
    branch can target them, by definition). *)
let remove_unreachable_blocks (f : Func.t) =
  let cfg = Cfg.of_func f in
  match Cfg.unreachable cfg with
  | [] -> false
  | dead ->
    let dead_labels = List.map (Cfg.label cfg) dead in
    List.iter (Func.remove_block f) dead_labels;
    true

(** Redirect every branch to [from] so it targets [to_] instead. *)
let redirect_edges (f : Func.t) ~(from : string) ~(to_ : string) =
  Func.iter_blocks f (fun b ->
      b.Block.term <-
        Instr.map_term_labels (fun l -> if String.equal l from then to_ else l)
          b.Block.term)

(** Split [block] before instruction index [idx]; the tail (instructions
    from [idx] on, plus the original terminator) moves to a fresh block,
    and [block] falls through to it.  Returns the new tail block.  The new
    block is inserted right after [block] in layout order. *)
let split_block (f : Func.t) (block : Block.t) ~(idx : int) : Block.t =
  let rec take k = function
    | [] -> ([], [])
    | x :: tl when k > 0 ->
      let a, b = take (k - 1) tl in
      (x :: a, b)
    | rest -> ([], rest)
  in
  let head, tail = take idx block.Block.instrs in
  let tail_label = Func.fresh_label f (block.Block.label ^ ".split") in
  let tail_block = Block.create ~instrs:tail ~term:block.Block.term tail_label in
  block.Block.instrs <- head;
  block.Block.term <- Instr.Br tail_label;
  (* insert after block in layout order *)
  let rec ins = function
    | [] -> [ tail_block ]
    | b :: tl when b == block -> b :: tail_block :: tl
    | b :: tl -> b :: ins tl
  in
  f.Func.blocks <- ins f.Func.blocks;
  tail_block

(** Clone [blocks] into [caller]'s namespace with fresh labels.

    Register renaming policy: when [rename_regs] (default), registers
    *defined within the cloned set* — plus [also_rename] (e.g. the
    callee's parameters for inlining) — get fresh names; registers
    defined outside (loop invariants, caller values) are left alone.
    With [rename_regs:false] only labels change: the clone shares every
    register with the original, which is what loop unrolling needs so
    loop-carried state flows between the copies.

    Returns (label map, cloned blocks, register map). *)
let clone_blocks ?(rename_regs = true) ?(locals_only = false)
    ?(also_rename = []) (caller : Func.t) (blocks : Block.t list)
    ~(label_suffix : string) =
  let renameable = Hashtbl.create 32 in
  if rename_regs then begin
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun i -> Option.iter (fun d -> Hashtbl.replace renameable d ()) (Instr.def i))
          b.Block.instrs)
      blocks;
    List.iter (fun r -> Hashtbl.replace renameable r ()) also_rename;
    if locals_only then begin
      (* keep only iteration-local temporaries: single static definition in
         the whole function, with every use inside the cloned set.  The
         loop-carried state (multi-def registers, escaping values) keeps
         its name so unrolled copies chain correctly. *)
      let defs = Zkopt_analysis.Defs.compute caller in
      let inside_uses = Hashtbl.create 32 in
      let outside = Hashtbl.create 32 in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun i -> List.iter (fun u -> Hashtbl.replace inside_uses u ()) (Instr.uses i))
            b.Block.instrs;
          List.iter (fun u -> Hashtbl.replace inside_uses u ()) (Instr.term_uses b.Block.term))
        blocks;
      Func.iter_blocks caller (fun b ->
          if not (List.memq b blocks) then begin
            List.iter
              (fun i -> List.iter (fun u -> Hashtbl.replace outside u ()) (Instr.uses i))
              b.Block.instrs;
            List.iter (fun u -> Hashtbl.replace outside u ()) (Instr.term_uses b.Block.term)
          end);
      Hashtbl.iter
        (fun r () ->
          if
            (not (Zkopt_analysis.Defs.is_single_def defs r))
            || Hashtbl.mem outside r
          then Hashtbl.remove renameable r)
        (Hashtbl.copy renameable)
    end
  end;
  let reg_map = Hashtbl.create 32 in
  let map_reg r =
    if not (Hashtbl.mem renameable r) then r
    else
      match Hashtbl.find_opt reg_map r with
      | Some r' -> r'
      | None ->
        let r' = Func.fresh_reg caller in
        Hashtbl.replace reg_map r r';
        r'
  in
  let label_map = Hashtbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace label_map b.Block.label
        (Func.fresh_label caller (b.Block.label ^ label_suffix)))
    blocks;
  let map_label l = Option.value ~default:l (Hashtbl.find_opt label_map l) in
  let map_value = function
    | Value.Reg r -> Value.Reg (map_reg r)
    | v -> v
  in
  let cloned =
    List.map
      (fun (b : Block.t) ->
        let instrs =
          List.map
            (fun i -> Instr.map_def map_reg (Instr.map_values map_value i))
            b.Block.instrs
        in
        let term =
          Instr.map_term_labels map_label
            (Instr.map_term_values map_value b.Block.term)
        in
        Block.create ~instrs ~term (map_label b.Block.label))
      blocks
  in
  (label_map, cloned, reg_map)

(** Ensure the loop has a dedicated preheader block (single edge into the
    header from outside).  Returns its label, creating the block if
    needed.  This is the useful half of LLVM's loop-simplify. *)
let ensure_preheader (f : Func.t) (cfg : Cfg.t) (loop : Loops.t) : string =
  match Loops.preheader cfg loop with
  | Some p ->
    (* reuse only when it branches unconditionally to the header *)
    let pb = Cfg.block cfg p in
    let header_label = Cfg.label cfg loop.Loops.header in
    (match pb.Block.term with
    | Instr.Br l when String.equal l header_label -> pb.Block.label
    | _ ->
      let label = Func.fresh_label f "preheader" in
      let nb = Block.create ~term:(Instr.Br header_label) label in
      (* redirect only out-of-loop edges *)
      Func.iter_blocks f (fun b ->
          let in_loop =
            match Cfg.index_of cfg b.Block.label with
            | Some i -> Intset.mem i loop.Loops.body
            | None -> false
          in
          if not in_loop then
            b.Block.term <-
              Instr.map_term_labels
                (fun l -> if String.equal l header_label then label else l)
                b.Block.term);
      (* place before the header *)
      let rec ins = function
        | [] -> [ nb ]
        | (b : Block.t) :: tl when String.equal b.Block.label header_label ->
          nb :: b :: tl
        | b :: tl -> b :: ins tl
      in
      f.Func.blocks <- ins f.Func.blocks;
      label)
  | None ->
    let header_label = Cfg.label cfg loop.Loops.header in
    let label = Func.fresh_label f "preheader" in
    let nb = Block.create ~term:(Instr.Br header_label) label in
    Func.iter_blocks f (fun b ->
        let in_loop =
          match Cfg.index_of cfg b.Block.label with
          | Some i -> Intset.mem i loop.Loops.body
          | None -> false
        in
        if not in_loop then
          b.Block.term <-
            Instr.map_term_labels
              (fun l -> if String.equal l header_label then label else l)
              b.Block.term);
    let rec ins = function
      | [] -> [ nb ]
      | (b : Block.t) :: tl when String.equal b.Block.label header_label ->
        nb :: b :: tl
      | b :: tl -> b :: ins tl
    in
    f.Func.blocks <- ins f.Func.blocks;
    label

(** Is [v] invariant with respect to [loop]: constant, or a register whose
    single definition lies outside the loop body (multi-def registers are
    never invariant). *)
let loop_invariant_value (cfg : Cfg.t) (defs : Defs.t) (loop : Loops.t) v =
  match v with
  | Value.Imm _ | Value.Glob _ -> true
  | Value.Reg r ->
    if Defs.is_param defs r && Defs.is_stable defs (Value.Reg r) then true
    else begin
      (* invariant iff no definition of [r] lies inside the loop: an outer
         induction variable is multi-def yet perfectly invariant with
         respect to an inner loop *)
      let defined_inside = ref false in
      let has_def = ref (Defs.is_param defs r) in
      Array.iteri
        (fun i (b : Block.t) ->
          List.iter
            (fun ins ->
              if Instr.def ins = Some r then begin
                has_def := true;
                if Intset.mem i loop.Loops.body then defined_inside := true
              end)
            b.Block.instrs)
        cfg.Cfg.blocks;
      !has_def && not !defined_inside
    end

(** Does the loop body contain any store, call or precompile?  (Barrier
    for load hoisting and several loop transforms.) *)
let loop_has_memory_effects (cfg : Cfg.t) (loop : Loops.t) =
  Intset.exists
    (fun i ->
      List.exists
        (fun ins ->
          match ins with
          | Instr.Store _ | Call _ | Precompile _ -> true
          | _ -> false)
        (Cfg.block cfg i).Block.instrs)
    loop.Loops.body

(** Instruction-count estimate of a function (the unit used by inline and
    unroll thresholds). *)
let size_of_func (f : Func.t) = Func.instr_count f
