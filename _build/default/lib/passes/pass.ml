(** Pass infrastructure: configuration (including the zkVM-aware cost
    model of §6.1), the pass type, and the registry the catalog and the
    autotuner draw from. *)

open Zkopt_ir

(** Which machine the middle-end optimizes for.  [Zkvm_aware] is the
    paper's modified toolchain: uniform instruction costs, expensive
    paging, free branches (change sets 1-3 in §6.1). *)
type cost_model = Standard | Zkvm_aware

type config = {
  cost_model : cost_model;
  inline_threshold : int;
      (** max callee instruction count considered profitable (LLVM default
          225; the paper's autotuned zkVM value is 4328) *)
  inline_call_penalty : int;
      (** estimated instructions saved per removed call *)
  unroll_threshold : int;
      (** max unrolled-body size (instructions) *)
  unroll_max_factor : int;
  unroll_only_if_smaller : bool;
      (** zkVM rule (Insight 3): unroll only when it reduces the dynamic
          instruction count, i.e. full unrolls and small constant trips *)
  simplifycfg_select : bool;
      (** convert branches to selects (if-conversion) *)
  select_max_side_instrs : int;
      (** maximum speculated instructions per branch side *)
  div_to_shift : bool;
      (** strength-reduce division by constants (Fig. 2a) *)
  licm_max_hoist : int;
      (** cap on instructions hoisted per loop (zkVM model keeps register
          pressure bounded, Insight 1) *)
  speculate : bool;
      (** speculative-execution style hoisting is profitable *)
  prefetch : bool;
      (** loop-data-prefetch inserts prefetch ops *)
}

let standard_config =
  {
    cost_model = Standard;
    inline_threshold = 225;
    inline_call_penalty = 25;
    unroll_threshold = 150;
    unroll_max_factor = 8;
    unroll_only_if_smaller = false;
    simplifycfg_select = true;
    select_max_side_instrs = 4;
    div_to_shift = true;
    licm_max_hoist = 64;
    speculate = true;
    prefetch = true;
  }

(** §6.1 change sets: aggressive inlining (I2), instruction-count-driven
    unrolling (I3), conservative branch elimination (I4), no division
    strength reduction (cost model, change set 1), paging-aware licm cap
    (I1), and the hardware-oriented passes disabled (change set 3). *)
let zkvm_config =
  {
    cost_model = Zkvm_aware;
    inline_threshold = 4328;
    inline_call_penalty = 40;
    unroll_threshold = 400;
    unroll_max_factor = 16;
    unroll_only_if_smaller = true;
    simplifycfg_select = false;
    select_max_side_instrs = 1;
    div_to_shift = false;
    licm_max_hoist = 6;
    speculate = false;
    prefetch = false;
  }

type t = {
  name : string;
  descr : string;
  run : config -> Modul.t -> bool;  (** returns whether anything changed *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64

let register name descr run =
  if Hashtbl.mem registry name then
    invalid_arg (Printf.sprintf "Pass.register: duplicate pass %s" name);
  Hashtbl.replace registry name { name; descr; run }

let find name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Pass.find: unknown pass %S" name)

let names () =
  Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort compare

(** Run one pass by name. *)
let run_one ?(config = standard_config) name m = (find name).run config m

(** Run a sequence of passes in order; returns whether any changed. *)
let run_sequence ?(config = standard_config) names m =
  List.fold_left (fun changed n -> run_one ~config n m || changed) false names
