(** Peephole rewrites: instsimplify (pure identities), instcombine
    (algebraic rewrites), strength reduction of multiplication/division by
    constants (the paper's Fig. 2a subject), reassociation, and 64->32-bit
    narrowing.

    Strength reduction is gated by [config.div_to_shift]: the zkVM-aware
    cost model disables it because divisions cost the same as shifts
    inside a proof while the replacement sequences add instructions. *)

open Zkopt_ir
open Zkopt_analysis

let imm = Value.imm64

let is_pow2 (x : int64) = Int64.compare x 0L > 0 && Int64.logand x (Int64.sub x 1L) = 0L

let log2_64 (x : int64) =
  let rec go n v = if Int64.equal v 1L then n else go (n + 1) (Int64.shift_right_logical v 1) in
  go 0 x

(* ------------------------------------------------------------------ *)
(* instsimplify: identities that erase the operation                   *)
(* ------------------------------------------------------------------ *)

let simplify_instr (i : Instr.t) : Instr.t option =
  let mov dst ty src = Some (Instr.Mov { dst; ty; src }) in
  match i with
  | Instr.Bin { dst; ty; op; a; b } -> begin
    let zero = Value.Imm 0L in
    let minus1 = Value.Imm (Eval.norm ty (-1L)) in
    match (op, a, b) with
    | (Instr.Add | Sub | Or | Xor | Shl | Lshr | Ashr), x, Value.Imm 0L ->
      mov dst ty x
    | (Instr.Add | Or | Xor), Value.Imm 0L, x -> mov dst ty x
    | Instr.Mul, x, Value.Imm 1L | Instr.Mul, Value.Imm 1L, x -> mov dst ty x
    | (Instr.Div | Udiv), x, Value.Imm 1L -> mov dst ty x
    | Instr.Mul, _, Value.Imm 0L | Instr.Mul, Value.Imm 0L, _ -> mov dst ty zero
    | Instr.And, _, Value.Imm 0L | Instr.And, Value.Imm 0L, _ -> mov dst ty zero
    | Instr.And, x, Value.Imm m when Int64.equal m (Eval.norm ty (-1L)) -> mov dst ty x
    | Instr.Or, x, Value.Imm m when Int64.equal m (Eval.norm ty (-1L)) ->
      ignore x;
      mov dst ty minus1
    | (Instr.Sub | Xor), Value.Reg x, Value.Reg y when x = y -> mov dst ty zero
    | (Instr.And | Or), Value.Reg x, Value.Reg y when x = y ->
      mov dst ty (Value.Reg x)
    | (Instr.Rem | Urem), _, Value.Imm 1L -> mov dst ty zero
    | _ -> None
  end
  | Cmp { dst; op; a = Value.Reg x; b = Value.Reg y; _ } when x = y -> begin
    match op with
    | Instr.Eq | Sle | Sge | Ule | Uge -> mov dst Ty.I32 (Value.Imm 1L)
    | Ne | Slt | Sgt | Ult | Ugt -> mov dst Ty.I32 (Value.Imm 0L)
  end
  | Select { dst; ty; if_true; if_false; _ } when Value.equal if_true if_false ->
    mov dst ty if_true
  | _ -> None

let run_instsimplify (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks f (fun b ->
          b.Block.instrs <-
            List.map
              (fun i ->
                match simplify_instr i with
                | Some i' ->
                  changed := true;
                  i'
                | None -> i)
              b.Block.instrs))
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* instcombine: rewrites that keep the op but in cheaper/canonical form *)
(* ------------------------------------------------------------------ *)

(* canonicalize constants to the right of commutative ops *)
let canonicalize (i : Instr.t) : Instr.t =
  match i with
  | Instr.Bin ({ op; a = Value.Imm _ as ia; b = Value.Reg _ as rb; _ } as r)
    when Instr.is_commutative op ->
    Instr.Bin { r with a = rb; b = ia }
  | Cmp ({ op; a = Value.Imm _ as ia; b = Value.Reg _ as rb; _ } as r) ->
    Cmp { r with op = Instr.cmpop_swap op; a = rb; b = ia }
  | _ -> i

let combine_one (defs : Defs.t) (i : Instr.t) : Instr.t option =
  match i with
  (* constant reassociation: (x op c1) op c2 -> x op (c1 op c2) *)
  | Instr.Bin { dst; ty; op = Instr.Add as op; a = Value.Reg r; b = Value.Imm c2 }
  | Instr.Bin { dst; ty; op = (Instr.And | Or | Xor | Mul) as op; a = Value.Reg r;
                b = Value.Imm c2 } -> begin
    match Defs.def_of defs r with
    | Some (Instr.Bin { ty = ty'; op = op'; a = inner; b = Value.Imm c1; _ })
      when op' = op && Ty.equal ty ty' && Defs.is_stable defs inner ->
      Some (Instr.Bin { dst; ty; op; a = inner; b = Value.Imm (Eval.binop ty op c1 c2) })
    | _ -> None
  end
  (* trunc (zext x) / trunc (sext x) -> x *)
  | Cast { dst; op = Instr.Trunc; src = Value.Reg r } -> begin
    match Defs.def_of defs r with
    | Some (Instr.Cast { op = Instr.Zext | Sext; src; _ }) ->
      Some (Instr.Mov { dst; ty = Ty.I32; src })
    | _ -> None
  end
  (* addr with constant index folds into the offset *)
  | Addr { dst; base; index = Value.Imm idx; scale; offset } when idx <> 0L ->
    Some
      (Instr.Addr
         { dst; base; index = Value.Imm 0L; scale = 0;
           offset = offset + (Int64.to_int idx * scale) })
  (* addr of addr: combine chains with constant displacement *)
  | Addr { dst; base = Value.Reg r; index; scale; offset } -> begin
    match Defs.def_of defs r with
    | Some (Instr.Addr { base = inner_base; index = Value.Imm 0L; scale = _;
                         offset = inner_off; _ })
      when Defs.is_stable defs inner_base ->
      Some (Instr.Addr { dst; base = inner_base; index; scale; offset = offset + inner_off })
    | _ -> None
  end
  (* select of a compare against zero: select (x != 0) a b over i32 cond *)
  | Select { dst; ty; cond = Value.Reg c; if_true; if_false } -> begin
    match Defs.def_of defs c with
    | Some (Instr.Cmp { op = Instr.Eq; a; b = Value.Imm 0L; ty = Ty.I32; _ })
      when Defs.is_stable defs a ->
      (* select (a == 0) t f  ->  select (a) f t, when a itself is 0/1 *)
      (match Defs.def_of defs (match a with Value.Reg r -> r | _ -> -1) with
      | Some (Instr.Cmp _) ->
        Some (Instr.Select { dst; ty; cond = a; if_true = if_false; if_false = if_true })
      | _ -> None)
    | _ -> None
  end
  (* double negation: 0 - (0 - x) -> x *)
  | Bin { dst; ty; op = Instr.Sub; a = Value.Imm 0L; b = Value.Reg r } -> begin
    match Defs.def_of defs r with
    | Some (Instr.Bin { op = Instr.Sub; a = Value.Imm 0L; b = inner; _ })
      when Defs.is_stable defs inner ->
      Some (Instr.Mov { dst; ty; src = inner })
    | _ -> None
  end
  | _ -> None

let run_instcombine (config : Pass.config) (m : Modul.t) =
  let changed = run_instsimplify config m in
  let changed = ref changed in
  List.iter
    (fun (f : Func.t) ->
      let progress = ref true in
      let rounds = ref 0 in
      while !progress && !rounds < 4 do
        progress := false;
        incr rounds;
        let defs = Defs.compute f in
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  let i = canonicalize i in
                  match combine_one defs i with
                  | Some i' ->
                    progress := true;
                    changed := true;
                    i'
                  | None -> i)
                b.Block.instrs)
      done)
    m.Modul.funcs;
  !changed

(* ------------------------------------------------------------------ *)
(* strength reduction (Fig. 2a): mul/div/rem by constants              *)
(* ------------------------------------------------------------------ *)

(* Magic-number unsigned division by constant (Hacker's Delight 10-9,
   simplified): for 32-bit d > 1, find (m, s) with
   floor(n/d) = floor(m*n / 2^(32+s)) for all n < 2^32.  We use the
   conservative m = ceil(2^(32+s)/d) search with a 33-bit check. *)
let magic_u32 (d : int64) : (int64 * int) option =
  if Int64.compare d 2L < 0 then None
  else begin
    let two32 = 0x1_0000_0000L in
    let rec search s =
      if s > 31 then None
      else
        let p = Int64.shift_left two32 s in
        let m = Int64.unsigned_div (Int64.add p (Int64.sub d 1L)) d in
        (* valid iff m*d - p < 2^s * (p/2^32) slack; verify with the
           standard sufficient condition m < 2^33 and error bound *)
        let err = Int64.sub (Int64.mul m d) p in
        if Int64.unsigned_compare err (Int64.shift_left 1L s) <= 0
           && Int64.unsigned_compare m two32 < 0
        then Some (m, s)
        else search (s + 1)
    in
    search 0
  end

(* When no 32-bit magic exists, the 33-bit constant with the add-shift
   fixup (Granlund--Montgomery / Hacker's Delight 10-10) always does:
   with L = ceil(log2 d), m = ceil(2^(32+L)/d) < 2^33, and
   q = (((x - t) >> 1) + t) >> (L - 1) where t = mulhu(x, m - 2^32). *)
let magic_u32_fixup (d : int64) : (int64 * int) option =
  if Int64.compare d 3L < 0 then None
  else begin
    let rec ceil_log2 acc v =
      if Int64.unsigned_compare v d >= 0 then acc
      else ceil_log2 (acc + 1) (Int64.shift_left v 1)
    in
    let el = ceil_log2 0 1L in
    if el < 1 || el > 31 then None
    else begin
      let two32 = 0x1_0000_0000L in
      let p = Int64.shift_left two32 el in
      (* ceil(p / d) in unsigned 64-bit arithmetic *)
      let m = Int64.add (Int64.unsigned_div (Int64.sub p 1L) d) 1L in
      let m' = Int64.sub m two32 in
      if Int64.compare m' 0L >= 0 && Int64.unsigned_compare m' two32 < 0 then
        Some (m', el)
      else None
    end
  end

let strength_reduce_instr (f : Func.t) (i : Instr.t) : Instr.t list option =
  let fresh () = Func.fresh_reg f in
  match i with
  (* mul by power of two -> shift; mul by (2^k +/- 1) -> shift and add/sub *)
  | Instr.Bin { dst; ty; op = Instr.Mul; a; b = Value.Imm c } when is_pow2 c ->
    Some [ Instr.Bin { dst; ty; op = Instr.Shl; a; b = imm (Int64.of_int (log2_64 c)) } ]
  | Instr.Bin { dst; ty; op = Instr.Mul; a; b = Value.Imm c }
    when is_pow2 (Int64.sub c 1L) && Int64.compare c 2L > 0 ->
    let t = fresh () in
    Some
      [ Instr.Bin { dst = t; ty; op = Instr.Shl; a;
                    b = imm (Int64.of_int (log2_64 (Int64.sub c 1L))) };
        Instr.Bin { dst; ty; op = Instr.Add; a = Value.Reg t; b = a } ]
  | Instr.Bin { dst; ty; op = Instr.Mul; a; b = Value.Imm c }
    when is_pow2 (Int64.add c 1L)
         (* i32: c = 0xFFFFFFFF would need an invalid shift by 32 *)
         && log2_64 (Int64.add c 1L) <= (match ty with Ty.I64 -> 63 | _ -> 31) ->
    let t = fresh () in
    Some
      [ Instr.Bin { dst = t; ty; op = Instr.Shl; a;
                    b = imm (Int64.of_int (log2_64 (Int64.add c 1L))) };
        Instr.Bin { dst; ty; op = Instr.Sub; a = Value.Reg t; b = a } ]
  (* unsigned division by power of two -> logical shift *)
  | Instr.Bin { dst; ty; op = Instr.Udiv; a; b = Value.Imm c } when is_pow2 c ->
    Some [ Instr.Bin { dst; ty; op = Instr.Lshr; a; b = imm (Int64.of_int (log2_64 c)) } ]
  | Instr.Bin { dst; ty; op = Instr.Urem; a; b = Value.Imm c } when is_pow2 c ->
    Some [ Instr.Bin { dst; ty; op = Instr.And; a; b = Value.Imm (Int64.sub c 1L) } ]
  (* signed division by power of two: bias then arithmetic shift *)
  | Instr.Bin { dst; ty = Ty.I32 as ty; op = Instr.Div; a; b = Value.Imm c }
    when is_pow2 c && Int64.compare c 2L >= 0
         (* 0x80000000 is a *negative* i32 divisor, not 2^31 *)
         && Int64.compare c 0x4000_0000L <= 0 ->
    let k = log2_64 c in
    let t1 = fresh () and t2 = fresh () and t3 = fresh () in
    Some
      [ Instr.Bin { dst = t1; ty; op = Instr.Ashr; a; b = imm 31L };
        Instr.Bin { dst = t2; ty; op = Instr.Lshr; a = Value.Reg t1;
                    b = imm (Int64.of_int (32 - k)) };
        Instr.Bin { dst = t3; ty; op = Instr.Add; a; b = Value.Reg t2 };
        Instr.Bin { dst; ty; op = Instr.Ashr; a = Value.Reg t3;
                    b = imm (Int64.of_int k) } ]
  (* unsigned division by other constants: magic multiply *)
  | Instr.Bin { dst; ty = Ty.I32; op = Instr.Udiv; a; b = Value.Imm c }
    when Int64.compare c 2L >= 0 && not (is_pow2 c) -> begin
    (* the expansion reads [a] several times, which is safe: the reads
       replace a single original instruction, so no definition of [a] can
       intervene *)
    match magic_u32 c with
    | Some (magic, s) ->
      (* q = mulhu(x, magic) >> s, the classic 2-instruction idiom *)
      let hi = fresh () in
      Some
        [ Instr.Bin { dst = hi; ty = Ty.I32; op = Instr.Mulhu; a;
                      b = Value.Imm magic };
          Instr.Bin { dst; ty = Ty.I32; op = Instr.Lshr; a = Value.Reg hi;
                      b = imm (Int64.of_int s) } ]
    | None -> begin
      match magic_u32_fixup c with
      | None -> None
      | Some (m', el) ->
        (* q = (((x - t) >> 1) + t) >> (el - 1), t = mulhu(x, m') *)
        let t = fresh () and u1 = fresh () and u2 = fresh () and u3 = fresh () in
        Some
          [ Instr.Bin { dst = t; ty = Ty.I32; op = Instr.Mulhu; a;
                        b = Value.Imm m' };
            Instr.Bin { dst = u1; ty = Ty.I32; op = Instr.Sub; a;
                        b = Value.Reg t };
            Instr.Bin { dst = u2; ty = Ty.I32; op = Instr.Lshr;
                        a = Value.Reg u1; b = imm 1L };
            Instr.Bin { dst = u3; ty = Ty.I32; op = Instr.Add;
                        a = Value.Reg u2; b = Value.Reg t };
            Instr.Bin { dst; ty = Ty.I32; op = Instr.Lshr; a = Value.Reg u3;
                        b = imm (Int64.of_int (el - 1)) } ]
    end
  end
  (* unsigned remainder by constant: n - (n/c)*c *)
  | Instr.Bin { dst; ty = Ty.I32 as ty; op = Instr.Urem; a = Value.Reg _ as a;
                b = Value.Imm c }
    when Int64.compare c 2L >= 0 && not (is_pow2 c)
         && (magic_u32 c <> None || magic_u32_fixup c <> None) ->
    let q = fresh () and qc = fresh () in
    Some
      [ Instr.Bin { dst = q; ty; op = Instr.Udiv; a; b = Value.Imm c };
        Instr.Bin { dst = qc; ty; op = Instr.Mul; a = Value.Reg q; b = Value.Imm c };
        Instr.Bin { dst; ty; op = Instr.Sub; a; b = Value.Reg qc } ]
  | _ -> None

let run_strength_reduce (config : Pass.config) (m : Modul.t) =
  if not config.Pass.div_to_shift then false
  else begin
    let changed = ref false in
    List.iter
      (fun (f : Func.t) ->
        (* two rounds so urem's introduced udiv is itself reduced *)
        for _ = 1 to 2 do
          ignore
            (Util.rewrite_instrs f (fun _ i ->
                 match strength_reduce_instr f i with
                 | Some is ->
                   changed := true;
                   is
                 | None -> [ i ]))
        done)
      m.Modul.funcs;
    !changed
  end

(* ------------------------------------------------------------------ *)
(* reassociate: rank-based grouping of constants in op chains          *)
(* ------------------------------------------------------------------ *)

let run_reassociate (config : Pass.config) (m : Modul.t) =
  (* our instcombine already folds (x op c1) op c2; reassociate
     additionally rewrites (c1 op x) op (c2 op y) shapes by
     re-canonicalizing and re-running the combine to fixpoint *)
  run_instcombine config m

(* ------------------------------------------------------------------ *)
(* narrowing: i64 ops whose results are only truncated                 *)
(* ------------------------------------------------------------------ *)

let narrow_ok = function
  | Instr.Add | Sub | Mul | And | Or | Xor -> true
  | Mulhu | Div | Rem | Udiv | Urem | Shl | Lshr | Ashr -> false

let run_narrow (_config : Pass.config) (m : Modul.t) =
  let changed = ref false in
  List.iter
    (fun (f : Func.t) ->
      let defs = Defs.compute f in
      let uses = Defs.use_counts f in
      let all_uses_are_trunc r =
        let count = Option.value ~default:0 (Hashtbl.find_opt uses r) in
        let trunc_uses = ref 0 in
        Func.iter_instrs f (fun _ i ->
            match i with
            | Instr.Cast { op = Instr.Trunc; src = Value.Reg s; _ } when s = r ->
              incr trunc_uses
            | _ -> ());
        count > 0 && !trunc_uses = count
      in
      (* the low 32 bits of [v], when they fully determine it *)
      let low_source v =
        match v with
        | Value.Imm i -> Some (Value.Imm (Eval.norm32 i))
        | Value.Reg r -> begin
          match Defs.def_of defs r with
          | Some (Instr.Cast { op = Instr.Zext | Sext; src; _ })
            when Defs.is_stable defs src ->
            Some src
          | _ -> None
        end
        | Value.Glob _ -> None
      in
      (* phase 1: pick candidates, allocate their 32-bit twins *)
      let twins : (Value.reg, Value.reg) Hashtbl.t = Hashtbl.create 8 in
      let replacement : (Value.reg, Instr.t) Hashtbl.t = Hashtbl.create 8 in
      Func.iter_instrs f (fun _ i ->
          match i with
          | Instr.Bin { dst; ty = Ty.I64; op; a; b = bb }
            when narrow_ok op && Defs.is_single_def defs dst
                 && (not (Hashtbl.mem twins dst))
                 && all_uses_are_trunc dst -> begin
            match (low_source a, low_source bb) with
            | Some a32, Some b32 ->
              let t = Func.fresh_reg f in
              Hashtbl.replace twins dst t;
              Hashtbl.replace replacement dst
                (Instr.Bin { dst = t; ty = Ty.I32; op; a = a32; b = b32 })
            | _ -> ()
          end
          | _ -> ());
      (* phase 2: swap in the 32-bit op and turn the truncs into moves *)
      if Hashtbl.length twins > 0 then begin
        changed := true;
        Func.iter_blocks f (fun b ->
            b.Block.instrs <-
              List.map
                (fun i ->
                  match i with
                  | Instr.Bin { dst; ty = Ty.I64; _ } when Hashtbl.mem twins dst
                    ->
                    Hashtbl.find replacement dst
                  | Instr.Cast { dst; op = Instr.Trunc; src = Value.Reg s }
                    when Hashtbl.mem twins s ->
                    Instr.Mov
                      { dst; ty = Ty.I32;
                        src = Value.Reg (Hashtbl.find twins s) }
                  | _ -> i)
                b.Block.instrs)
      end)
    m.Modul.funcs;
  !changed

let () =
  Pass.register "instsimplify" "erase operations that are identities"
    run_instsimplify;
  Pass.register "instcombine"
    "algebraic peephole rewrites (includes instsimplify)" run_instcombine;
  Pass.register "strength-reduction"
    "replace mul/div/rem by constants with shift/add/magic sequences"
    run_strength_reduce;
  Pass.register "reassociate" "reassociate chains to expose constant folding"
    run_reassociate;
  Pass.register "narrowing" "demote 64-bit ops whose results are only truncated"
    run_narrow
