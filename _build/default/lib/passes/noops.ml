(** Passes that exist in the LLVM catalog the paper sweeps but have no
    applicable constructs on an RV32IM zkVM guest.  Each performs its
    honest applicability scan and bails; the paper finds 39 of the 64
    passes have negligible impact (§4.1), and this family is a large part
    of why. *)

open Zkopt_ir

(* the target has no vector unit: vectorizers never fire *)
let target_has_vectors = false

let scan_adjacent_word_ops (m : Modul.t) =
  (* what a vectorizer would look for: adjacent same-op word operations
     feeding adjacent stores *)
  let candidates = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_blocks f (fun b ->
          let rec scan = function
            | Instr.Store _ :: (Instr.Store _ :: _ as rest) ->
              incr candidates;
              scan rest
            | _ :: rest -> scan rest
            | [] -> ()
          in
          scan b.Block.instrs))
    m.Modul.funcs;
  !candidates

let vectorizer _config m =
  if target_has_vectors then ignore (scan_adjacent_word_ops m);
  false

let no_construct (_config : Pass.config) (_m : Modul.t) = false

let () =
  Pass.register "slp-vectorizer"
    "superword-level parallelism (no vector unit on the target: no-op)"
    vectorizer;
  Pass.register "loop-vectorize"
    "loop auto-vectorization (no vector unit on the target: no-op)" vectorizer;
  Pass.register "load-store-vectorizer"
    "memory-access vectorization (no vector unit on the target: no-op)"
    vectorizer;
  Pass.register "vector-combine"
    "vector op combining (no vector unit on the target: no-op)" vectorizer;
  Pass.register "loweratomic"
    "lower atomics (single-threaded zkVM guests have none: no-op)" no_construct;
  Pass.register "lower-expect"
    "strip llvm.expect hints (the IR carries none: no-op)" no_construct;
  Pass.register "alignment-from-assumptions"
    "alignment annotation propagation (all accesses word-aligned: no-op)"
    no_construct;
  Pass.register "mergeicmps"
    "merge compare chains into memcmp (no memcmp libcall: no-op)" no_construct;
  Pass.register "called-value-propagation"
    "indirect-call target propagation (no indirect calls in the IR: no-op)"
    no_construct;
  Pass.register "libcalls-shrinkwrap"
    "libcall error-path shrink-wrapping (no errno libcalls: no-op)" no_construct
