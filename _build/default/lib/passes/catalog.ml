(** The catalog of the 64 individually-benchmarked passes (matching the
    paper's RQ1 sweep) and the standard optimization levels.

    Referencing each implementation module here forces its registration
    side effects to be linked into any executable using this library. *)

let _force_linkage : (Pass.config -> Zkopt_ir.Modul.t -> bool) list =
  [ Constfold.run_constfold; Dce.run_dce; Peephole.run_instcombine;
    Mempass.run_mem2reg; Cfgopts.run_simplifycfg; Gvn.run_gvn;
    Inline.run_inline; Loopopts.run_licm; Loopopts2.run_fission;
    Interproc.run_sccp; Noops.vectorizer ]

(** The 64 passes of the RQ1 sweep, in a stable order. *)
let swept_passes =
  [
    (* inlining *)
    "inline"; "always-inline"; "partial-inliner";
    (* memory *)
    "mem2reg"; "reg2mem"; "sroa"; "memcpyopt"; "dse";
    (* scalar *)
    "constprop"; "copyprop"; "instsimplify"; "instcombine";
    "strength-reduction"; "reassociate"; "narrowing"; "dce"; "adce";
    "early-cse"; "gvn"; "newgvn"; "sccp"; "div-rem-pairs"; "consthoist";
    "correlated-propagation"; "sink"; "speculative-execution";
    (* control flow *)
    "simplifycfg"; "jump-threading"; "tail-dup"; "block-placement";
    "hot-cold-splitting"; "break-crit-edges";
    (* loops *)
    "licm"; "loop-unroll"; "loop-unroll-and-jam"; "loop-deletion";
    "loop-rotate"; "loop-simplify"; "lcssa"; "indvars"; "loop-reduce";
    "loop-data-prefetch"; "loop-fission"; "loop-fusion"; "loop-extract";
    "loop-idiom";
    (* interprocedural *)
    "ipsccp"; "globaldce"; "globalopt"; "deadargelim"; "mergefunc";
    "tailcallelim"; "function-attrs"; "attributor";
    (* target-gated no-ops *)
    "slp-vectorizer"; "loop-vectorize"; "load-store-vectorizer";
    "vector-combine"; "loweratomic"; "lower-expect";
    "alignment-from-assumptions"; "mergeicmps"; "called-value-propagation";
    "libcalls-shrinkwrap";
  ]

let () =
  (* "loop-unroll-and-jam": the unroller applied after fusion degrades to
     ordinary unrolling of whatever is innermost; exposed as the same
     engine (documented alias) *)
  Pass.register "loop-unroll-and-jam"
    "outer-loop unrolling (shares the unrolling engine)" Loopopts.run_unroll

let () =
  assert (List.length swept_passes = 64);
  List.iter (fun n -> ignore (Pass.find n)) swept_passes

(** All registered pass names (the swept 64 plus internal helpers such as
    copyprop used by pipelines). *)
let all_passes () = Pass.names ()

(* ------------------------------------------------------------------ *)
(* Standard optimization levels                                        *)
(* ------------------------------------------------------------------ *)

type level = O0 | O1 | O2 | O3 | Os | Oz

let level_name = function
  | O0 -> "-O0" | O1 -> "-O1" | O2 -> "-O2" | O3 -> "-O3"
  | Os -> "-Os" | Oz -> "-Oz"

let all_levels = [ O0; O1; O2; O3; Os; Oz ]

let cleanup = [ "constprop"; "copyprop"; "instsimplify"; "dce"; "simplifycfg" ]

(** Pass pipelines per level, modeled on LLVM's pipelines.  [-O0] mirrors
    "Rust MIR opts only": a handful of cheap local cleanups, including the
    select-forming simplifycfg that the paper observes regressing some
    programs on zkVMs. *)
let pipeline = function
  | O0 -> [ "constprop"; "instsimplify"; "simplifycfg"; "dce" ]
  | O1 ->
    [ "mem2reg"; "instcombine"; "simplifycfg"; "early-cse"; "always-inline";
      "partial-inliner"; "licm"; "dce" ]
    @ cleanup
  | O2 ->
    [ "mem2reg"; "sroa"; "ipsccp"; "globalopt"; "deadargelim"; "inline";
      "instcombine"; "simplifycfg"; "early-cse"; "jump-threading";
      "correlated-propagation"; "tailcallelim"; "reassociate"; "loop-simplify";
      "loop-rotate"; "licm"; "indvars"; "loop-idiom"; "loop-deletion";
      "loop-unroll"; "strength-reduction"; "gvn"; "memcpyopt"; "sccp";
      "div-rem-pairs"; "dse"; "adce"; "simplifycfg"; "instcombine";
      "block-placement"; "globaldce" ]
    @ cleanup
  | O3 ->
    [ "mem2reg"; "sroa"; "ipsccp"; "globalopt"; "deadargelim"; "inline";
      "instcombine"; "simplifycfg"; "early-cse"; "jump-threading";
      "correlated-propagation"; "tailcallelim"; "reassociate"; "loop-simplify";
      "loop-rotate"; "licm"; "indvars"; "loop-idiom"; "loop-deletion";
      "loop-unroll"; "strength-reduction"; "gvn"; "memcpyopt"; "sccp";
      "div-rem-pairs"; "dse"; "adce"; "simplifycfg"; "instcombine";
      "speculative-execution"; "loop-data-prefetch"; "narrowing"; "sink";
      "function-attrs"; "loop-unroll"; "instcombine"; "block-placement";
      "globaldce" ]
    @ cleanup
  | Os ->
    [ "mem2reg"; "sroa"; "ipsccp"; "deadargelim"; "partial-inliner";
      "instcombine"; "simplifycfg"; "early-cse"; "tailcallelim"; "reassociate";
      "loop-simplify"; "licm"; "loop-idiom"; "loop-deletion"; "gvn"; "sccp";
      "dse"; "adce"; "mergefunc"; "simplifycfg"; "globaldce" ]
    @ cleanup
  | Oz ->
    [ "mem2reg"; "sroa"; "ipsccp"; "deadargelim"; "instcombine"; "simplifycfg";
      "early-cse"; "tailcallelim"; "loop-simplify"; "loop-idiom";
      "loop-deletion"; "gvn"; "sccp"; "dse"; "adce"; "mergefunc";
      "hot-cold-splitting"; "simplifycfg"; "globaldce" ]
    @ cleanup

(** The threshold/heuristic configuration each level runs under. *)
let level_config (l : level) : Pass.config =
  match l with
  | O0 | O1 -> { Pass.standard_config with inline_threshold = 45 }
  | O2 -> Pass.standard_config
  | O3 ->
    { Pass.standard_config with inline_threshold = 275; unroll_max_factor = 8 }
  | Os ->
    { Pass.standard_config with inline_threshold = 50; unroll_max_factor = 2 }
  | Oz ->
    { Pass.standard_config with
      inline_threshold = 5;
      unroll_max_factor = 1;
      simplifycfg_select = false }

(** Run a standard level on a module. *)
let run_level ?config (l : level) m =
  let config = Option.value ~default:(level_config l) config in
  ignore (Pass.run_sequence ~config (pipeline l) m)

(** The paper's modified toolchain (§6.1): the -O3 pipeline minus the
    hardware-centric passes (change set 3), under the zkVM-aware cost
    model (change sets 1 and 2). *)
let zkvm_o3_pipeline =
  List.filter
    (fun p ->
      not
        (List.mem p
           [ "speculative-execution"; "loop-data-prefetch";
             "hot-cold-splitting" ]))
    (pipeline O3)

let run_zkvm_o3 m =
  ignore (Pass.run_sequence ~config:Pass.zkvm_config zkvm_o3_pipeline m)
