lib/passes/loopopts.ml: Array Block Cfg Defs Eval Func Hashtbl Instr Int64 Intset List Loops Modul Option Pass Printf String Ty Util Value Zkopt_analysis Zkopt_ir
