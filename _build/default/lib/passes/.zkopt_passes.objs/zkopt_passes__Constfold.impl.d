lib/passes/constfold.ml: Block Defs Eval Func Instr List Modul Pass String Ty Util Value Zkopt_analysis Zkopt_ir
