lib/passes/inline.ml: Block Callgraph Func Hashtbl Instr List Modul Option Pass String Ty Util Zkopt_analysis Zkopt_ir
