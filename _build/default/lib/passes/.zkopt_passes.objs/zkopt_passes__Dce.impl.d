lib/passes/dce.ml: Block Defs Func Hashtbl Instr List Modul Pass Queue Ty Value Zkopt_analysis Zkopt_ir
