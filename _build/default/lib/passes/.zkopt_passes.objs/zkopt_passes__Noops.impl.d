lib/passes/noops.ml: Block Func Instr List Modul Pass Zkopt_ir
