lib/passes/loopopts2.ml: Array Block Cfg Defs Eval Func Hashtbl Instr Int64 Intset List Loopopts Loops Modul Option Pass String Ty Util Value Zkopt_analysis Zkopt_ir
