lib/passes/pass.ml: Hashtbl List Modul Printf Zkopt_ir
