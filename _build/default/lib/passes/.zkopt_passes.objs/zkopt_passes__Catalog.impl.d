lib/passes/catalog.ml: Cfgopts Constfold Dce Gvn Inline Interproc List Loopopts Loopopts2 Mempass Noops Option Pass Peephole Zkopt_ir
