lib/passes/gvn.ml: Array Block Cfg Defs Dom Func Hashtbl Instr List Modul Pass Ty Value Zkopt_analysis Zkopt_ir
