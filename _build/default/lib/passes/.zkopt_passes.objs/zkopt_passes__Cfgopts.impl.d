lib/passes/cfgopts.ml: Array Block Cfg Constfold Dom Eval Func Hashtbl Instr Intset Lazy List Loops Modul Option Pass String Ty Util Value Zkopt_analysis Zkopt_ir
