lib/passes/peephole.ml: Block Defs Eval Func Hashtbl Instr Int64 List Modul Option Pass Ty Util Value Zkopt_analysis Zkopt_ir
