lib/passes/mempass.ml: Block Cfg Defs Func Hashtbl Instr Int64 Intset List Liveness Modul Pass Ty Value Zkopt_analysis Zkopt_ir
