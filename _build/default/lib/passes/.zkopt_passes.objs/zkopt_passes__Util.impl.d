lib/passes/util.ml: Array Block Cfg Defs Func Hashtbl Instr Intset List Loops Option String Value Zkopt_analysis Zkopt_ir
