lib/core/measure.ml: Eval Int64 List Modul Profile Verify Zkopt_cpu Zkopt_ir Zkopt_passes Zkopt_riscv Zkopt_runtime Zkopt_zkvm
