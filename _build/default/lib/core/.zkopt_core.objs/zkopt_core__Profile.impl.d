lib/core/profile.ml: Catalog List Pass String Zkopt_ir Zkopt_passes
