lib/autotune/autotune.ml: Array Catalog List Pass Random String Zkopt_core Zkopt_ir Zkopt_passes Zkopt_zkvm
