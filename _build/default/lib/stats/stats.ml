(** Descriptive statistics and correlation, as used by the evaluation:
    mean/std for Fig. 3's bands, Pearson/Spearman for the cycle-to-time
    correlation claims (§4.1), and the gain/loss bucketing of Table 1 and
    Fig. 4. *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let minimum xs = List.fold_left min infinity xs
let maximum xs = List.fold_left max neg_infinity xs

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let pearson xs ys =
  let n = List.length xs in
  if n < 2 || n <> List.length ys then nan
  else begin
    let mx = mean xs and my = mean ys in
    let num =
      List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
    in
    let dx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.)) 0.0 xs) in
    let dy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.)) 0.0 ys) in
    if dx = 0.0 || dy = 0.0 then nan else num /. (dx *. dy)
  end

(* average ranks, with ties sharing the mean rank *)
let ranks xs =
  let indexed = List.mapi (fun i x -> (x, i)) xs in
  let sorted = List.sort compare indexed in
  let n = List.length xs in
  let rank_arr = Array.make n 0.0 in
  let arr = Array.of_list sorted in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n - 1 && fst arr.(!j + 1) = fst arr.(!i) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      rank_arr.(snd arr.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  Array.to_list rank_arr

let spearman xs ys = pearson (ranks xs) (ranks ys)

(** Percentage improvement of [v] over [base]: positive = faster/smaller.
    This is the sign convention of the paper's Figs. 3/5/7. *)
let improvement_pct ~base v =
  if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0

type bucket = Severe_loss | Moderate_loss | Neutral | Moderate_gain | Severe_gain

(** Fig. 4 buckets over improvement percentages. *)
let bucket_of pct =
  if pct <= -5.0 then Severe_loss
  else if pct <= -2.0 then Moderate_loss
  else if pct < 2.0 then Neutral
  else if pct < 5.0 then Moderate_gain
  else Severe_gain

let count_buckets pcts =
  List.fold_left
    (fun (sl, ml, n, mg, sg) p ->
      match bucket_of p with
      | Severe_loss -> (sl + 1, ml, n, mg, sg)
      | Moderate_loss -> (sl, ml + 1, n, mg, sg)
      | Neutral -> (sl, ml, n + 1, mg, sg)
      | Moderate_gain -> (sl, ml, n, mg + 1, sg)
      | Severe_gain -> (sl, ml, n, mg, sg + 1))
    (0, 0, 0, 0, 0) pcts

(** Table 1 counts: instances with >2% gain and <-2% loss. *)
let gain_loss_counts pcts =
  ( List.length (List.filter (fun p -> p > 2.0) pcts),
    List.length (List.filter (fun p -> p < -2.0) pcts) )
