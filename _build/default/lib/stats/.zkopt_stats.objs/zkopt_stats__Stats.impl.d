lib/stats/stats.ml: Array List
